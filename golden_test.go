package acd_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"testing"

	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/refine"
)

// The golden determinism tests pin the exact observable behavior of the
// crowd phases — the PC-Pivot clustering, its per-round (k, issued,
// wasted) sequence, the post-PC-Refine clustering, and the session's
// crowdsourcing accounting — for every experiment dataset at fixed
// seeds. The committed hashes were generated from the pre-optimization
// (map-based graph, re-enumerating drain loop) implementation, so any
// data-plane rewrite must reproduce its output byte for byte to pass.
//
// Regenerate with:
//
//	go test -run TestGoldenDeterminism -update-golden .

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_determinism.json from the current implementation")

const goldenPath = "testdata/golden_determinism.json"

// goldenEntry holds the four hashes pinned for one (dataset, seed) run.
type goldenEntry struct {
	// Pivot is the hash of the PC-Pivot clustering (canonical sets).
	Pivot string `json:"pivot"`
	// Rounds is the hash of the per-round (k, issued, wasted) sequence
	// plus the PCStats totals.
	Rounds string `json:"rounds"`
	// Refined is the hash of the post-PC-Refine clustering.
	Refined string `json:"refined"`
	// Stats is the hash of the session's final crowd accounting.
	Stats string `json:"stats"`
}

// goldenConfigs enumerates the pinned runs: every experiment dataset at
// two instance seeds, 3-worker answers, the default ε and x.
var goldenConfigs = []struct {
	Dataset string
	Seed    int64
}{
	{"Paper", 1}, {"Paper", 2},
	{"Restaurant", 1}, {"Restaurant", 2},
	{"Product", 1}, {"Product", 2},
}

func goldenKey(dataset string, seed int64) string {
	return fmt.Sprintf("%s/seed%d/3w", dataset, seed)
}

// hashString returns the hex sha256 of a canonical string.
func hashString(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// hashClustering canonicalizes a clustering via Sets (sorted members,
// sorted by smallest member), independent of internal cluster indices.
func hashClustering(c *cluster.Clustering) string {
	var b strings.Builder
	for _, set := range c.Sets() {
		for i, r := range set {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", r)
		}
		b.WriteByte(';')
	}
	return hashString(b.String())
}

func hashRounds(stats core.PCStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "batches=%d issued=%d wasted=%d|", stats.Batches, stats.Issued, stats.Wasted)
	for _, r := range stats.Rounds {
		fmt.Fprintf(&b, "%d,%d,%d;", r.K, r.Issued, r.Wasted)
	}
	return hashString(b.String())
}

func hashStats(s crowd.Stats) string {
	return hashString(fmt.Sprintf("pairs=%d iters=%d hits=%d cents=%d votes=%d",
		s.Pairs, s.Iterations, s.HITs, s.Cents, s.Votes))
}

// runGolden executes the pinned pipeline for one config and returns its
// hashes.
func runGolden(t *testing.T, dataset string, seed int64) goldenEntry {
	t.Helper()
	in := instanceSeed(t, dataset, seed)
	sess := crowd.NewSession(in.Answers(3))
	rng := rand.New(rand.NewSource(seed))
	c, stats := core.PCPivot(in.Cands, sess, core.DefaultEpsilon, rng)
	e := goldenEntry{
		Pivot:  hashClustering(c),
		Rounds: hashRounds(stats),
	}
	refined := refine.PCRefine(c, in.Cands, sess, refine.DefaultX)
	e.Refined = hashClustering(refined)
	e.Stats = hashStats(sess.Stats())
	return e
}

func TestGoldenDeterminism(t *testing.T) {
	if *updateGolden {
		golden := make(map[string]goldenEntry, len(goldenConfigs))
		for _, cfg := range goldenConfigs {
			golden[goldenKey(cfg.Dataset, cfg.Seed)] = runGolden(t, cfg.Dataset, cfg.Seed)
		}
		keys := make([]string, 0, len(golden))
		for k := range golden {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out, err := json.MarshalIndent(golden, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries to %s", len(keys), goldenPath)
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing goldens (run with -update-golden to generate): %v", err)
	}
	var golden map[string]goldenEntry
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatalf("corrupt %s: %v", goldenPath, err)
	}
	for _, cfg := range goldenConfigs {
		cfg := cfg
		t.Run(goldenKey(cfg.Dataset, cfg.Seed), func(t *testing.T) {
			want, ok := golden[goldenKey(cfg.Dataset, cfg.Seed)]
			if !ok {
				t.Fatalf("no golden entry (run with -update-golden)")
			}
			got := runGolden(t, cfg.Dataset, cfg.Seed)
			if got.Pivot != want.Pivot {
				t.Errorf("PC-Pivot clustering diverged from golden:\n got %s\nwant %s", got.Pivot, want.Pivot)
			}
			if got.Rounds != want.Rounds {
				t.Errorf("per-round (k, issued, wasted) sequence diverged from golden:\n got %s\nwant %s", got.Rounds, want.Rounds)
			}
			if got.Refined != want.Refined {
				t.Errorf("post-PC-Refine clustering diverged from golden:\n got %s\nwant %s", got.Refined, want.Refined)
			}
			if got.Stats != want.Stats {
				t.Errorf("crowd accounting diverged from golden:\n got %s\nwant %s", got.Stats, want.Stats)
			}
		})
	}
}
