// Command acdcampaign drives a complete simulated crowdsourcing
// campaign, end to end: generate (or load) a dataset, prune it, post the
// candidate pairs to a simulated worker pool under AMT-style
// qualification rules, aggregate the raw votes (majority or Dawid–Skene
// weighting), optionally persist the answers for replay, and run ACD on
// the result.
//
// Usage:
//
//	acdcampaign [-dataset Restaurant | -in records.csv]
//	            [-pool 200] [-mean-error 0.25] [-spread 0.15]
//	            [-qualification none|basic|strict] [-workers 3|5]
//	            [-aggregate majority|ds] [-save-answers F] [-seed 1]
//	            [-metrics] [-metrics-json] [-trace FILE] [-metrics-http ADDR]
//
// With -metrics, a per-phase observability snapshot — including the
// worker-pool occupancy gauges and the crowd question accounting — is
// printed to stderr after the campaign finishes.
package main

import (
	"flag"
	"fmt"
	"os"

	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/dataset"
	"acd/internal/obs"
	"acd/internal/pruning"
	"acd/internal/quality"
	"acd/internal/record"
)

func main() {
	name := flag.String("dataset", "Restaurant", "built-in dataset to generate (Paper, Restaurant, Product)")
	in := flag.String("in", "", "load records from this CSV instead of generating")
	poolSize := flag.Int("pool", 200, "worker pool size")
	meanError := flag.Float64("mean-error", 0.25, "mean per-worker error rate")
	spread := flag.Float64("spread", 0.15, "spread of per-worker error rates")
	qual := flag.String("qualification", "basic", "worker admission: none, basic (test), strict (test + track record)")
	workers := flag.Int("workers", 5, "votes per pair (odd)")
	aggregate := flag.String("aggregate", "ds", "vote aggregation: majority or ds (Dawid-Skene)")
	saveAnswers := flag.String("save-answers", "", "persist aggregated answers to this file")
	seed := flag.Int64("seed", 1, "campaign seed")
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	rec := obs.New()
	if obsFlags.Enabled() {
		if err := obsFlags.Activate(rec, os.Stderr); err != nil {
			fatal(err)
		}
		rec.PublishExpvar("acd")
		defer obsFlags.Finish(os.Stderr)
	}

	d, err := loadOrGenerate(*in, *name, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "campaign: %d records", len(d.Records))
	if d.NumEntities > 0 {
		fmt.Fprintf(os.Stderr, " (%d entities)", d.NumEntities)
	}
	fmt.Fprintln(os.Stderr)

	cands := pruning.Prune(d.Records, pruning.Options{Obs: rec})
	fmt.Fprintf(os.Stderr, "campaign: pruning kept %d candidate pairs\n", len(cands.Pairs))

	q, err := qualificationByName(*qual)
	if err != nil {
		fatal(err)
	}
	pool := crowd.NewPool(crowd.PoolConfig{
		Size:                  *poolSize,
		MeanError:             *meanError,
		ErrorSpread:           *spread,
		QualificationPassRate: 0.7,
		Seed:                  *seed,
	})
	fmt.Fprintf(os.Stderr, "campaign: %d of %d workers admitted (mean error %.1f%%)\n",
		len(pool.Eligible(q)), pool.Size(), 100*pool.MeanEligibleError(q))
	crowd.RecordPoolMetrics(rec, pool, q)

	cfg := crowd.Config{Workers: *workers, PairsPerHIT: 10, CentsPerHIT: 2, Seed: *seed + 1}
	truth := d.TruthFn()
	votes := crowd.CollectVotes(cands.PairList(), truth, crowd.UniformDifficulty(0.02), pool, q, cfg)
	fmt.Fprintf(os.Stderr, "campaign: collected %d votes over %d pairs\n", len(votes), len(cands.Pairs))

	var scores map[record.Pair]float64
	switch *aggregate {
	case "majority":
		scores = crowd.MajorityScores(votes)
	case "ds":
		model := quality.Estimate(votes, 30)
		scores = model.Posterior
		rec.Gauge("quality/ds_em_rounds", float64(model.Iterations))
		fmt.Fprintf(os.Stderr, "campaign: Dawid-Skene fitted in %d EM rounds (prior %.3f)\n",
			model.Iterations, model.Prior)
	default:
		fatal(fmt.Errorf("unknown aggregation %q", *aggregate))
	}
	answers := crowd.FixedAnswers(scores, cfg)
	answers.SetRecorder(rec)
	fmt.Fprintf(os.Stderr, "campaign: aggregated answer error rate %.2f%% vs ground truth\n",
		100*quality.ErrorRate(scores, truth))

	if *saveAnswers != "" {
		f, err := os.Create(*saveAnswers)
		if err != nil {
			fatal(err)
		}
		if err := crowd.SaveAnswers(f, answers); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "campaign: answers saved to %s\n", *saveAnswers)
	}

	out := core.ACD(cands, answers, core.Config{Seed: *seed})
	for _, set := range out.Clusters.Sets() {
		clusterID := set[0]
		for _, r := range set {
			fmt.Printf("%d,%d\n", r, clusterID)
		}
	}
	fmt.Fprintf(os.Stderr, "campaign: ACD produced %d clusters using %d pairs in %d iterations\n",
		out.Clusters.NumClusters(), out.Stats.Pairs, out.Stats.Iterations)
	e := cluster.Evaluate(out.Clusters, d.Truth())
	fmt.Fprintf(os.Stderr, "campaign: precision %.3f, recall %.3f, F1 %.3f\n",
		e.Precision, e.Recall, e.F1)
}

func loadOrGenerate(in, name string, seed int64) (*dataset.Dataset, error) {
	if in == "" {
		return dataset.ByName(name, seed)
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f, in)
}

func qualificationByName(name string) (crowd.Qualification, error) {
	switch name {
	case "none":
		return crowd.Qualification{}, nil
	case "basic":
		return crowd.BasicQualification, nil
	case "strict":
		return crowd.StrictQualification, nil
	default:
		return crowd.Qualification{}, fmt.Errorf("unknown qualification %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "acdcampaign: %v\n", err)
	os.Exit(1)
}
