// Command acdcampaign drives a complete simulated crowdsourcing
// campaign, end to end: generate (or load) a dataset, prune it, post the
// candidate pairs to a simulated worker pool under AMT-style
// qualification rules, aggregate the raw votes (majority or Dawid–Skene
// weighting), optionally persist the answers for replay, and run ACD on
// the result.
//
// Usage:
//
//	acdcampaign [-dataset Restaurant | -in records.csv]
//	            [-pool 200] [-mean-error 0.25] [-spread 0.15]
//	            [-qualification none|basic|strict] [-workers 3|5]
//	            [-aggregate majority|ds] [-save-answers F] [-seed 1]
//	            [-metrics] [-metrics-json] [-trace FILE] [-metrics-http ADDR]
//
// With -metrics, a per-phase observability snapshot — including the
// worker-pool occupancy gauges and the crowd question accounting — is
// printed to stderr after the campaign finishes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/dataset"
	"acd/internal/obs"
	"acd/internal/pruning"
	"acd/internal/quality"
	"acd/internal/record"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable seam: it parses args on its own FlagSet, runs
// the whole campaign, and returns the process exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("acdcampaign", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("dataset", "Restaurant", "built-in dataset to generate (Paper, Restaurant, Product)")
	in := fs.String("in", "", "load records from this CSV instead of generating")
	poolSize := fs.Int("pool", 200, "worker pool size")
	meanError := fs.Float64("mean-error", 0.25, "mean per-worker error rate")
	spread := fs.Float64("spread", 0.15, "spread of per-worker error rates")
	qual := fs.String("qualification", "basic", "worker admission: none, basic (test), strict (test + track record)")
	workers := fs.Int("workers", 5, "votes per pair (odd)")
	aggregate := fs.String("aggregate", "ds", "vote aggregation: majority or ds (Dawid-Skene)")
	saveAnswers := fs.String("save-answers", "", "persist aggregated answers to this file")
	seed := fs.Int64("seed", 1, "campaign seed")
	obsFlags := obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	rec := obs.New()
	if obsFlags.Enabled() {
		if err := obsFlags.Activate(rec, stderr); err != nil {
			fmt.Fprintf(stderr, "acdcampaign: %v\n", err)
			return 1
		}
		rec.PublishExpvar("acd")
		defer obsFlags.Finish(stderr)
	}

	d, err := loadOrGenerate(*in, *name, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "acdcampaign: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "campaign: %d records", len(d.Records))
	if d.NumEntities > 0 {
		fmt.Fprintf(stderr, " (%d entities)", d.NumEntities)
	}
	fmt.Fprintln(stderr)

	cands := pruning.Prune(d.Records, pruning.Options{Obs: rec})
	fmt.Fprintf(stderr, "campaign: pruning kept %d candidate pairs\n", len(cands.Pairs))

	q, err := qualificationByName(*qual)
	if err != nil {
		fmt.Fprintf(stderr, "acdcampaign: %v\n", err)
		return 2
	}
	pool := crowd.NewPool(crowd.PoolConfig{
		Size:                  *poolSize,
		MeanError:             *meanError,
		ErrorSpread:           *spread,
		QualificationPassRate: 0.7,
		Seed:                  *seed,
	})
	fmt.Fprintf(stderr, "campaign: %d of %d workers admitted (mean error %.1f%%)\n",
		len(pool.Eligible(q)), pool.Size(), 100*pool.MeanEligibleError(q))
	crowd.RecordPoolMetrics(rec, pool, q)

	cfg := crowd.Config{Workers: *workers, PairsPerHIT: 10, CentsPerHIT: 2, Seed: *seed + 1}
	truth := d.TruthFn()
	votes := crowd.CollectVotes(cands.PairList(), truth, crowd.UniformDifficulty(0.02), pool, q, cfg)
	fmt.Fprintf(stderr, "campaign: collected %d votes over %d pairs\n", len(votes), len(cands.Pairs))

	var scores map[record.Pair]float64
	switch *aggregate {
	case "majority":
		scores = crowd.MajorityScores(votes)
	case "ds":
		model := quality.Estimate(votes, 30)
		scores = model.Posterior
		rec.Gauge("quality/ds_em_rounds", float64(model.Iterations))
		fmt.Fprintf(stderr, "campaign: Dawid-Skene fitted in %d EM rounds (prior %.3f)\n",
			model.Iterations, model.Prior)
	default:
		fmt.Fprintf(stderr, "acdcampaign: unknown aggregation %q\n", *aggregate)
		return 2
	}
	answers := crowd.FixedAnswers(scores, cfg)
	answers.SetRecorder(rec)
	fmt.Fprintf(stderr, "campaign: aggregated answer error rate %.2f%% vs ground truth\n",
		100*quality.ErrorRate(scores, truth))

	if *saveAnswers != "" {
		f, err := os.Create(*saveAnswers)
		if err != nil {
			fmt.Fprintf(stderr, "acdcampaign: %v\n", err)
			return 1
		}
		if err := crowd.SaveAnswers(f, answers); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "acdcampaign: %v\n", err)
			return 1
		}
		f.Close()
		fmt.Fprintf(stderr, "campaign: answers saved to %s\n", *saveAnswers)
	}

	out := core.ACD(cands, answers, core.Config{Seed: *seed})
	for _, set := range out.Clusters.Sets() {
		clusterID := set[0]
		for _, r := range set {
			fmt.Fprintf(stdout, "%d,%d\n", r, clusterID)
		}
	}
	fmt.Fprintf(stderr, "campaign: ACD produced %d clusters using %d pairs in %d iterations\n",
		out.Clusters.NumClusters(), out.Stats.Pairs, out.Stats.Iterations)
	e := cluster.Evaluate(out.Clusters, d.Truth())
	fmt.Fprintf(stderr, "campaign: precision %.3f, recall %.3f, F1 %.3f\n",
		e.Precision, e.Recall, e.F1)
	return 0
}

func loadOrGenerate(in, name string, seed int64) (*dataset.Dataset, error) {
	if in == "" {
		return dataset.ByName(name, seed)
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f, in)
}

func qualificationByName(name string) (crowd.Qualification, error) {
	switch name {
	case "none":
		return crowd.Qualification{}, nil
	case "basic":
		return crowd.BasicQualification, nil
	case "strict":
		return crowd.StrictQualification, nil
	default:
		return crowd.Qualification{}, fmt.Errorf("unknown qualification %q", name)
	}
}
