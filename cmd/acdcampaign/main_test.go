package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"acd/internal/dataset"
)

// writeTinyCSV generates a small labeled dataset in the datagen CSV
// format acdcampaign consumes with -in.
func writeTinyCSV(t *testing.T) string {
	t.Helper()
	d, err := dataset.Synthetic(dataset.SyntheticConfig{
		Entities: 25, Records: 60, Skew: 0.5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiny.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteCSV(f, d); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunCampaignSmoke drives the full campaign over a tiny CSV with a
// small pool and majority aggregation: one assignment line per record
// on stdout, the campaign narration and F1 on stderr, exit 0, and the
// answers file saved for replay.
func TestRunCampaignSmoke(t *testing.T) {
	path := writeTinyCSV(t)
	answers := filepath.Join(t.TempDir(), "answers.txt")
	var out, errb bytes.Buffer
	code := run([]string{
		"-in", path, "-pool", "40", "-workers", "3",
		"-aggregate", "majority", "-save-answers", answers, "-seed", "2",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 60 {
		t.Errorf("stdout has %d assignment lines, want 60", len(lines))
	}
	for _, want := range []string{"workers admitted", "collected", "F1"} {
		if !strings.Contains(errb.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, errb.String())
		}
	}
	if st, err := os.Stat(answers); err != nil || st.Size() == 0 {
		t.Errorf("answers not saved: %v", err)
	}
}

// TestRunCampaignErrors: flag and validation failures exit non-zero
// without panicking, on an injected FlagSet (no os.Exit, no global
// flag state).
func TestRunCampaignErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"-in", "/does/not/exist.csv"}, &out, &errb); code != 1 {
		t.Errorf("unreadable input: exit %d, want 1", code)
	}
	path := writeTinyCSV(t)
	errb.Reset()
	if code := run([]string{"-in", path, "-qualification", "bogus"}, &out, &errb); code != 2 {
		t.Errorf("unknown qualification: exit %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"-in", path, "-pool", "20", "-aggregate", "bogus"}, &out, &errb); code != 2 {
		t.Errorf("unknown aggregation: exit %d, want 2", code)
	}
}
