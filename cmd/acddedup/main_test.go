package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"acd/internal/crowd"
	"acd/internal/dataset"
)

// writeTinyCSV generates a small labeled dataset and writes it in the
// datagen CSV format acddedup consumes.
func writeTinyCSV(t *testing.T) string {
	t.Helper()
	d, err := dataset.Synthetic(dataset.SyntheticConfig{
		Entities: 30, Records: 80, Skew: 0.5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiny.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteCSV(f, d); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunACDMode smoke-tests the full pipeline: one cluster assignment
// per record on stdout, summary and F1 on stderr, exit 0.
func TestRunACDMode(t *testing.T) {
	path := writeTinyCSV(t)
	var out, errb bytes.Buffer
	code := run([]string{"-in", path, "-mode", "acd", "-seed", "1"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 80 {
		t.Errorf("stdout has %d assignment lines, want 80", len(lines))
	}
	for _, want := range []string{"candidate pairs", "crowd cost", "F1"} {
		if !strings.Contains(errb.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, errb.String())
		}
	}
}

// TestRunMachineModeParallel smoke-tests the crowd-free pipeline across
// pruning parallelism settings; the assignments must be identical.
func TestRunMachineModeParallel(t *testing.T) {
	path := writeTinyCSV(t)
	var base string
	for _, parallel := range []string{"1", "0", "4"} {
		var out, errb bytes.Buffer
		code := run([]string{"-in", path, "-mode", "machine", "-parallel", parallel}, &out, &errb)
		if code != 0 {
			t.Fatalf("parallel=%s: exit %d, stderr: %s", parallel, code, errb.String())
		}
		if out.Len() == 0 {
			t.Fatalf("parallel=%s: no output", parallel)
		}
		if base == "" {
			base = out.String()
		} else if out.String() != base {
			t.Errorf("parallel=%s changed the clustering output", parallel)
		}
	}
}

// TestRunExplicitTauZero checks that -tau 0 is honored as a true τ = 0
// rather than silently becoming the default: the candidate set must be
// at least as large as under the default threshold.
func TestRunExplicitTauZero(t *testing.T) {
	path := writeTinyCSV(t)
	pairs := func(args ...string) string {
		var out, errb bytes.Buffer
		if code := run(append(args, "-in", path, "-mode", "machine"), &out, &errb); code != 0 {
			t.Fatalf("exit %d: %s", code, errb.String())
		}
		for _, line := range strings.Split(errb.String(), "\n") {
			if strings.Contains(line, "candidate pairs") {
				return line
			}
		}
		t.Fatalf("no candidate-pair summary in %s", errb.String())
		return ""
	}
	def := pairs()
	zero := pairs("-tau", "0")
	if def == zero {
		t.Errorf("-tau 0 produced the same candidate count as the default threshold:\n%s", def)
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("missing -in: exit %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"-in", "/does/not/exist.csv"}, &out, &errb); code != 1 {
		t.Errorf("unreadable input: exit %d, want 1", code)
	}
	path := writeTinyCSV(t)
	errb.Reset()
	if code := run([]string{"-in", path, "-mode", "bogus"}, &out, &errb); code != 2 {
		t.Errorf("unknown mode: exit %d, want 2", code)
	}
}

// TestRunChaosFlags smoke-tests the fault-injection path: chaos flags
// route the simulated crowd through the fault-tolerant layer, the run
// completes with every record assigned, and the fault summary appears.
func TestRunChaosFlags(t *testing.T) {
	path := writeTinyCSV(t)
	var out, errb bytes.Buffer
	code := run([]string{
		"-in", path, "-mode", "acd", "-seed", "1",
		"-chaos-drop", "0.2", "-chaos-error", "0.1", "-chaos-seed", "3",
		"-crowd-retries", "3", "-crowd-timeout", "20s",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 80 {
		t.Errorf("stdout has %d assignment lines, want 80", len(lines))
	}
	if !strings.Contains(errb.String(), "crowd faults survived") {
		t.Errorf("stderr missing the fault summary:\n%s", errb.String())
	}
	// Determinism: the same chaos seed replays the same campaign.
	var out2, errb2 bytes.Buffer
	run([]string{
		"-in", path, "-mode", "acd", "-seed", "1",
		"-chaos-drop", "0.2", "-chaos-error", "0.1", "-chaos-seed", "3",
		"-crowd-retries", "3", "-crowd-timeout", "20s",
	}, &out2, &errb2)
	if out.String() != out2.String() {
		t.Errorf("same chaos seed produced different clusterings")
	}
}

// TestRunMarket smoke-tests the marketplace path: the run completes
// with every record assigned, the spend summary appears, a saved
// answer file round-trips with charge provenance, and bad
// spec/flag combinations are rejected.
func TestRunMarket(t *testing.T) {
	path := writeTinyCSV(t)
	saved := filepath.Join(t.TempDir(), "answers.v3")
	var out, errb bytes.Buffer
	code := run([]string{
		"-in", path, "-mode", "acd", "-seed", "1",
		"-market", "default", "-save-answers", saved,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 80 {
		t.Errorf("stdout has %d assignment lines, want 80", len(lines))
	}
	for _, want := range []string{"market:", "cents spent", "F1"} {
		if !strings.Contains(errb.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, errb.String())
		}
	}
	raw, err := os.ReadFile(saved)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), ",fast,") && !strings.Contains(string(raw), ",careful,") {
		t.Error("saved answer file carries no backend charge provenance")
	}
	af, err := os.Open(saved)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := crowd.LoadAnswers(af)
	af.Close()
	if err != nil {
		t.Fatal(err)
	}
	if answers.Len() == 0 {
		t.Error("saved answer file is empty")
	}

	errb.Reset()
	if code := run([]string{"-in", path, "-market", "nonsense"}, &out, &errb); code != 2 {
		t.Errorf("bad fleet spec: exit %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"-in", path, "-market", "default", "-answers", saved}, &out, &errb); code != 2 {
		t.Errorf("-market with -answers: exit %d, want 2", code)
	}

	// A tight budget must cap the spend and still assign every record.
	var out3, errb3 bytes.Buffer
	code = run([]string{
		"-in", path, "-mode", "acd", "-seed", "1",
		"-market", "careful:6:10:0.02", "-market-budget", "12",
	}, &out3, &errb3)
	if code != 0 {
		t.Fatalf("budgeted run: exit %d, stderr: %s", code, errb3.String())
	}
	if lines := strings.Split(strings.TrimSpace(out3.String()), "\n"); len(lines) != 80 {
		t.Errorf("budgeted run assigned %d records, want 80", len(lines))
	}
}
