// Command acddedup deduplicates a CSV of records with the full ACD
// pipeline. The crowd is simulated: with ground-truth entity labels in
// the input (entity column ≥ 0), workers answer according to the truth
// with a configurable per-worker error rate; without labels the tool
// falls back to a pure machine pipeline (Pivot + BOEM over the machine
// scores).
//
// Usage:
//
//	acddedup -in records.csv [-mode acd|machine] [-tau 0.3] [-parallel N]
//	         [-workers 3|5] [-error 0.1] [-eps 0.1] [-x 8] [-seed 1]
//	         [-answers FILE] [-save-answers FILE]
//	         [-market SPEC|default] [-market-budget CENTS]
//	         [-crowd-timeout 1m] [-crowd-retries 2] [-chaos-drop P]
//	         [-chaos-error P] [-chaos-dup P] [-chaos-spike P]
//	         [-chaos-seed N] [-chaos-burst N] [-chaos-burst-len N]
//	         [-metrics] [-metrics-json] [-trace FILE] [-metrics-http ADDR]
//
// The input format is datagen's: a header "id,entity,<fields...>" and
// one record per row. Output is "record_id,cluster_id" per line on
// stdout; a summary (and F1 when ground truth is present) goes to
// stderr. With -metrics, a per-phase observability snapshot follows the
// summary on stderr; see internal/obs and the README's metrics
// reference.
//
// With -market, the simulated crowd becomes a heterogeneous
// marketplace: the spec (internal/market's fleet grammar, or the
// keyword "default" for the reference mixed fleet) describes backends
// with per-HIT prices, batch sizes, and calibrated error rates, and
// every question is routed to the backend with the best information
// value per cent under the optional -market-budget spend ceiling.
// -save-answers then writes a v3 answer file carrying each answer's
// backend and price. -market is incompatible with -answers, and the
// global -chaos-*/-crowd-* flags are ignored in favor of per-backend
// drop=/fault= spec options.
//
// The -chaos-* flags inject deterministic, seeded crowd faults (dropped
// answers, transient errors, duplicated deliveries, latency spikes,
// adversarial bursts) into the simulated crowd and route it through the
// fault-tolerant execution layer (-crowd-timeout, -crowd-retries), with
// questions that exhaust their retry budget degrading to the machine
// probability. Simulated fault latency runs on a virtual clock — the
// command never sleeps.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/dataset"
	"acd/internal/machine"
	"acd/internal/market"
	"acd/internal/obs"
	"acd/internal/pruning"
	"acd/internal/refine"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable seam: it parses args, runs the pipeline, and
// returns the process exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("acddedup", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "input CSV (required; datagen format)")
	mode := fs.String("mode", "acd", "pipeline: acd (simulated crowd) or machine (no crowd)")
	tau := fs.Float64("tau", pruning.DefaultTau, "pruning threshold (0 keeps every overlapping pair)")
	parallel := fs.Int("parallel", 0, "pruning-phase worker pool: 0 = one per CPU, 1 = sequential, N = N workers")
	workers := fs.Int("workers", 3, "workers per pair for the simulated crowd (odd)")
	errRate := fs.Float64("error", 0.1, "per-worker error probability for the simulated crowd")
	eps := fs.Float64("eps", core.DefaultEpsilon, "PC-Pivot wasted-pair budget")
	x := fs.Int("x", refine.DefaultX, "refinement budget divisor (T = N_m/x)")
	seed := fs.Int64("seed", 1, "random seed")
	answersIn := fs.String("answers", "", "replay crowd answers from this file (crowd.SaveAnswers format)")
	answersOut := fs.String("save-answers", "", "write the simulated crowd answers to this file for later replay")
	marketSpec := fs.String("market", "", "route questions through a marketplace fleet spec (internal/market grammar; \"default\" = reference mixed fleet)")
	marketBudget := fs.Int("market-budget", 0, "marketplace spend ceiling in cents (0 = unlimited; needs -market)")
	faultFlags := crowd.RegisterFaultFlags(fs)
	obsFlags := obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *in == "" {
		fmt.Fprintln(stderr, "acddedup: -in is required")
		return 2
	}
	rec := obs.New()
	if obsFlags.Enabled() {
		if err := obsFlags.Activate(rec, stderr); err != nil {
			fmt.Fprintf(stderr, "acddedup: %v\n", err)
			return 2
		}
		rec.PublishExpvar("acd")
		defer obsFlags.Finish(stderr)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(stderr, "acddedup: %v\n", err)
		return 1
	}
	d, err := dataset.ReadCSV(f, *in)
	f.Close()
	if err != nil {
		fmt.Fprintf(stderr, "acddedup: %v\n", err)
		return 1
	}

	// TauSet: the flag value is explicit, so -tau 0 genuinely means
	// τ = 0 (keep every overlapping pair) rather than the default.
	cands := pruning.Prune(d.Records, pruning.Options{
		Tau:         *tau,
		TauSet:      true,
		Parallelism: *parallel,
		Obs:         rec,
	})
	truth := d.Truth()
	hasTruth := true
	for _, e := range truth {
		if e < 0 {
			hasTruth = false
			break
		}
	}

	var result *cluster.Clustering
	var stats crowd.Stats
	switch {
	case *mode == "machine" || !hasTruth:
		if *mode == "acd" {
			fmt.Fprintln(stderr, "acddedup: no ground-truth entities; falling back to machine mode")
		}
		rng := rand.New(rand.NewSource(*seed))
		result = machine.BOEMObs(machine.BestPivotObs(cands.N, cands.Machine, 10, rng, rec), cands.Machine, rec)
	case *mode == "acd" && *marketSpec != "":
		if *answersIn != "" {
			fmt.Fprintln(stderr, "acddedup: -market and -answers are mutually exclusive")
			return 2
		}
		if faultFlags.Enabled() {
			fmt.Fprintln(stderr, "acddedup: note: -chaos-*/-crowd-* flags are ignored with -market; use per-backend drop=/fault= spec options")
		}
		spec := *marketSpec
		if spec == "default" {
			spec = market.DefaultFleetSpec
		}
		specs, err := market.ParseFleet(spec)
		if err != nil {
			fmt.Fprintf(stderr, "acddedup: %v\n", err)
			return 2
		}
		backends := make([]market.Backend, len(specs))
		for i, s := range specs {
			backends[i] = s.AnswerBackend(cands.PairList(), d.TruthFn(), *seed)
		}
		budget := market.Unlimited
		if *marketBudget > 0 {
			budget = *marketBudget
		}
		mkt := market.New(market.Config{
			Backends:     backends,
			BudgetCents:  budget,
			Order:        market.OrderConfidence,
			ShortCircuit: true,
			Prior:        cands.Score,
			Seed:         *seed,
		})
		mkt.SetRecorder(rec)
		out := core.ACD(cands, mkt, core.Config{Epsilon: *eps, RefineX: *x, Seed: *seed})
		result = out.Clusters
		stats = out.Stats
		if *answersOut != "" {
			// Saved after the run, so the v3 file carries the charge
			// provenance (backend id + price) of every answer the
			// marketplace actually sold.
			if !saveAnswers(*answersOut, mkt.AnswerSet(), stderr) {
				return 1
			}
		}
		m := rec.Snapshot()
		fmt.Fprintf(stderr, "acddedup: market: %d cents spent, %d routed, %d inferred free, %d budget fallbacks\n",
			mkt.Spent(), m.Counters[market.MetricRouted],
			m.Counters[market.MetricShortCircuited], m.Counters[market.MetricFallbacks])
		if mkt.Exhausted() {
			fmt.Fprintln(stderr, "acddedup: market: budget exhausted; remaining questions degraded to the machine prior")
		}
	case *mode == "acd":
		var answers *crowd.AnswerSet
		if *answersIn != "" {
			af, err := os.Open(*answersIn)
			if err != nil {
				fmt.Fprintf(stderr, "acddedup: %v\n", err)
				return 1
			}
			answers, err = crowd.LoadAnswers(af)
			af.Close()
			if err != nil {
				fmt.Fprintf(stderr, "acddedup: %v\n", err)
				return 1
			}
		} else {
			cfg := crowd.Config{Workers: *workers, PairsPerHIT: 20, CentsPerHIT: 2, Seed: *seed}
			answers = crowd.BuildAnswers(cands.PairList(), d.TruthFn(), crowd.UniformDifficulty(*errRate), cfg)
		}
		if *answersOut != "" {
			if !saveAnswers(*answersOut, answers, stderr) {
				return 1
			}
		}
		answers.SetRecorder(rec)
		var src crowd.Source = answers
		var chaosClock *crowd.VirtualClock
		if faultFlags.Enabled() {
			// Inject the requested faults and survive them: chaos under
			// the retry/hedge/fallback machine, simulated latency on a
			// virtual clock.
			chaosClock = crowd.NewVirtualClock(time.Time{})
			src = faultFlags.Wrap(answers, cands.Score, chaosClock)
		}
		out := core.ACD(cands, src, core.Config{Epsilon: *eps, RefineX: *x, Seed: *seed})
		result = out.Clusters
		stats = out.Stats
		if chaosClock != nil {
			m := rec.Snapshot()
			fmt.Fprintf(stderr, "acddedup: crowd faults survived: %d retries, %d hedges, %d timeouts, %d fallbacks (%s simulated)\n",
				m.Counters[crowd.MetricRetries], m.Counters[crowd.MetricHedges],
				m.Counters[crowd.MetricTimeouts], m.Counters[crowd.MetricFallbacks],
				chaosClock.Elapsed().Round(time.Second))
		}
	default:
		fmt.Fprintf(stderr, "acddedup: unknown mode %q\n", *mode)
		return 2
	}

	for _, set := range result.Sets() {
		clusterID := set[0]
		for _, r := range set {
			fmt.Fprintf(stdout, "%d,%d\n", r, clusterID)
		}
	}
	fmt.Fprintf(stderr, "acddedup: %d records -> %d clusters (%d candidate pairs)\n",
		result.Len(), result.NumClusters(), len(cands.Pairs))
	if stats.Pairs > 0 {
		fmt.Fprintf(stderr, "acddedup: crowd cost: %d pairs, %d iterations, %d HITs, %d cents\n",
			stats.Pairs, stats.Iterations, stats.HITs, stats.Cents)
		if obsFlags.Enabled() {
			lat := crowd.RecordSimulatedLatency(rec, crowd.LatencyModel{Seed: *seed}, stats, *workers)
			fmt.Fprintf(stderr, "acddedup: simulated crowd latency: %s\n", lat)
		}
	}
	if hasTruth {
		e := cluster.Evaluate(result, truth)
		fmt.Fprintf(stderr, "acddedup: precision %.3f, recall %.3f, F1 %.3f\n",
			e.Precision, e.Recall, e.F1)
	}
	return 0
}

// saveAnswers writes an answer set to path, reporting failure on stderr.
func saveAnswers(path string, a *crowd.AnswerSet, stderr io.Writer) bool {
	af, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(stderr, "acddedup: %v\n", err)
		return false
	}
	defer af.Close()
	if err := crowd.SaveAnswers(af, a); err != nil {
		fmt.Fprintf(stderr, "acddedup: %v\n", err)
		return false
	}
	return true
}
