// Command acddedup deduplicates a CSV of records with the full ACD
// pipeline. The crowd is simulated: with ground-truth entity labels in
// the input (entity column ≥ 0), workers answer according to the truth
// with a configurable per-worker error rate; without labels the tool
// falls back to a pure machine pipeline (Pivot + BOEM over the machine
// scores).
//
// Usage:
//
//	acddedup -in records.csv [-mode acd|machine] [-tau 0.3]
//	         [-workers 3|5] [-error 0.1] [-eps 0.1] [-x 8] [-seed 1]
//
// The input format is datagen's: a header "id,entity,<fields...>" and
// one record per row. Output is "record_id,cluster_id" per line on
// stdout; a summary (and F1 when ground truth is present) goes to
// stderr.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/dataset"
	"acd/internal/machine"
	"acd/internal/pruning"
)

func main() {
	in := flag.String("in", "", "input CSV (required; datagen format)")
	mode := flag.String("mode", "acd", "pipeline: acd (simulated crowd) or machine (no crowd)")
	tau := flag.Float64("tau", pruning.DefaultTau, "pruning threshold")
	workers := flag.Int("workers", 3, "workers per pair for the simulated crowd (odd)")
	errRate := flag.Float64("error", 0.1, "per-worker error probability for the simulated crowd")
	eps := flag.Float64("eps", core.DefaultEpsilon, "PC-Pivot wasted-pair budget")
	x := flag.Int("x", 8, "refinement budget divisor (T = N_m/x)")
	seed := flag.Int64("seed", 1, "random seed")
	answersIn := flag.String("answers", "", "replay crowd answers from this file (crowd.SaveAnswers format)")
	answersOut := flag.String("save-answers", "", "write the simulated crowd answers to this file for later replay")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "acddedup: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acddedup: %v\n", err)
		os.Exit(1)
	}
	d, err := dataset.ReadCSV(f, *in)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "acddedup: %v\n", err)
		os.Exit(1)
	}

	cands := pruning.Prune(d.Records, pruning.Options{Tau: *tau})
	truth := d.Truth()
	hasTruth := true
	for _, e := range truth {
		if e < 0 {
			hasTruth = false
			break
		}
	}

	var result *cluster.Clustering
	var stats crowd.Stats
	switch {
	case *mode == "machine" || !hasTruth:
		if *mode == "acd" {
			fmt.Fprintln(os.Stderr, "acddedup: no ground-truth entities; falling back to machine mode")
		}
		rng := rand.New(rand.NewSource(*seed))
		result = machine.BOEM(machine.BestPivot(cands.N, cands.Machine, 10, rng), cands.Machine)
	case *mode == "acd":
		var answers *crowd.AnswerSet
		if *answersIn != "" {
			af, err := os.Open(*answersIn)
			if err != nil {
				fmt.Fprintf(os.Stderr, "acddedup: %v\n", err)
				os.Exit(1)
			}
			answers, err = crowd.LoadAnswers(af)
			af.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "acddedup: %v\n", err)
				os.Exit(1)
			}
		} else {
			cfg := crowd.Config{Workers: *workers, PairsPerHIT: 20, CentsPerHIT: 2, Seed: *seed}
			answers = crowd.BuildAnswers(cands.PairList(), d.TruthFn(), crowd.UniformDifficulty(*errRate), cfg)
		}
		if *answersOut != "" {
			af, err := os.Create(*answersOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "acddedup: %v\n", err)
				os.Exit(1)
			}
			if err := crowd.SaveAnswers(af, answers); err != nil {
				fmt.Fprintf(os.Stderr, "acddedup: %v\n", err)
				os.Exit(1)
			}
			af.Close()
		}
		out := core.ACD(cands, answers, core.Config{Epsilon: *eps, RefineX: *x, Seed: *seed})
		result = out.Clusters
		stats = out.Stats
	default:
		fmt.Fprintf(os.Stderr, "acddedup: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	for _, set := range result.Sets() {
		clusterID := set[0]
		for _, r := range set {
			fmt.Printf("%d,%d\n", r, clusterID)
		}
	}
	fmt.Fprintf(os.Stderr, "acddedup: %d records -> %d clusters (%d candidate pairs)\n",
		result.Len(), result.NumClusters(), len(cands.Pairs))
	if stats.Pairs > 0 {
		fmt.Fprintf(os.Stderr, "acddedup: crowd cost: %d pairs, %d iterations, %d HITs, %d cents\n",
			stats.Pairs, stats.Iterations, stats.HITs, stats.Cents)
	}
	if hasTruth {
		e := cluster.Evaluate(result, truth)
		fmt.Fprintf(os.Stderr, "acddedup: precision %.3f, recall %.3f, F1 %.3f\n",
			e.Precision, e.Recall, e.F1)
	}
}
