package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunTable3 smoke-tests the cheapest real experiment end to end:
// exit status 0 and the expected table on stdout, under both the
// sequential and the parallel pruning path.
func TestRunTable3(t *testing.T) {
	for _, parallel := range []string{"1", "0"} {
		var out, errb bytes.Buffer
		code := run([]string{"-exp", "table3", "-seed", "1", "-parallel", parallel}, &out, &errb)
		if code != 0 {
			t.Fatalf("parallel=%s: exit %d, stderr: %s", parallel, code, errb.String())
		}
		if !strings.Contains(out.String(), "Table 3") {
			t.Errorf("parallel=%s: output missing Table 3 header:\n%s", parallel, out.String())
		}
		for _, ds := range []string{"Paper", "Restaurant", "Product"} {
			if !strings.Contains(out.String(), ds) {
				t.Errorf("parallel=%s: output missing dataset %s", parallel, ds)
			}
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	cases := [][]string{
		{"-exp", "nope"},
		{"-workers", "4"},
		{"-definitely-not-a-flag"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
		if errb.Len() == 0 {
			t.Errorf("run(%v) produced no diagnostics", args)
		}
	}
}
