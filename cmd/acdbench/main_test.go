package main

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestRunTable3 smoke-tests the cheapest real experiment end to end:
// exit status 0 and the expected table on stdout, under both the
// sequential and the parallel pruning path.
func TestRunTable3(t *testing.T) {
	for _, parallel := range []string{"1", "0"} {
		var out, errb bytes.Buffer
		code := run([]string{"-exp", "table3", "-seed", "1", "-parallel", parallel}, &out, &errb)
		if code != 0 {
			t.Fatalf("parallel=%s: exit %d, stderr: %s", parallel, code, errb.String())
		}
		if !strings.Contains(out.String(), "Table 3") {
			t.Errorf("parallel=%s: output missing Table 3 header:\n%s", parallel, out.String())
		}
		for _, ds := range []string{"Paper", "Restaurant", "Product"} {
			if !strings.Contains(out.String(), ds) {
				t.Errorf("parallel=%s: output missing dataset %s", parallel, ds)
			}
		}
	}
}

// TestRunMetrics checks the observability surface end to end: -metrics
// prints a snapshot with the crowd accounting on stderr, and the
// question counters satisfy the oracle-invocation invariant even when
// accumulated across a whole experiment (many algorithms, many
// sessions, shared answer sets). fig10 is the cheapest experiment that
// exercises the full crowd pipeline.
func TestRunMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full experiment")
	}
	var out, errb bytes.Buffer
	code := run([]string{"-exp", "fig10", "-seed", "1", "-metrics"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	se := errb.String()
	if !strings.Contains(se, "== metrics ==") {
		t.Fatalf("stderr missing metrics snapshot:\n%s", se)
	}
	for _, metric := range []string{
		"crowd/questions_answered", "crowd/oracle_invocations",
		"pivot/rounds", "pivot/pairs_wasted", "pivot/batch_k",
		"pruning/candidates", "refine/ops_applied", "crowd/batch_size",
	} {
		if !strings.Contains(se, metric) {
			t.Errorf("snapshot missing %s:\n%s", metric, se)
		}
	}
	answered := counterValue(t, se, "crowd/questions_answered")
	oracle := counterValue(t, se, "crowd/oracle_invocations")
	if answered != oracle || answered == 0 {
		t.Errorf("questions_answered = %d, oracle_invocations = %d; want equal and nonzero",
			answered, oracle)
	}
}

// counterValue extracts a counter's value from the text snapshot.
func counterValue(t *testing.T, snapshot, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(snapshot, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			var v int64
			if _, err := fmt.Sscan(fields[1], &v); err != nil {
				t.Fatalf("unparseable value for %s: %q", name, fields[1])
			}
			return v
		}
	}
	t.Fatalf("counter %s not found in snapshot", name)
	return 0
}

// TestRunProfiles smoke-tests -cpuprofile/-memprofile: exit 0 and
// non-empty pprof files, on the cheapest experiment.
func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := dir + "/cpu.pprof"
	mem := dir + "/mem.pprof"
	var out, errb bytes.Buffer
	code := run([]string{"-exp", "table3", "-seed", "1", "-cpuprofile", cpu, "-memprofile", mem}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	cases := [][]string{
		{"-exp", "nope"},
		{"-workers", "4"},
		{"-definitely-not-a-flag"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
		if errb.Len() == 0 {
			t.Errorf("run(%v) produced no diagnostics", args)
		}
	}
}

// TestRunChaos smoke-tests the fault-tolerance experiment end to end on
// the cheapest dataset setting.
func TestRunChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full pipelines under four fault regimes per dataset")
	}
	var out, errb bytes.Buffer
	code := run([]string{"-exp", "chaos", "-seed", "1", "-workers", "3"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"Fault tolerance", "regime", "none", "spikes", "flaky", "severe", "fallbacks"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
