// Command acdbench regenerates the paper's evaluation tables and
// figures (Table 3, Figures 5-8, Figure 10) on the synthetic workloads.
//
// Usage:
//
//	acdbench [-exp all|table3|fig5|fig6|fig7|fig8|fig10] [-seed N] [-workers 3|5]
//
// fig6, fig7 and fig8 share the same runs (one comparison produces the
// F1, pair-count and iteration series), so requesting any of them prints
// the full comparison block.
package main

import (
	"flag"
	"fmt"
	"os"

	"acd/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table3, fig5, fig6, fig7, fig8, fig10, ablation")
	seed := flag.Int64("seed", 1, "dataset and crowd seed")
	workers := flag.Int("workers", 0, "restrict comparisons to one worker setting (3 or 5); 0 = both")
	chart := flag.Bool("chart", false, "render figure comparisons as bar charts")
	flag.Parse()
	chartMode = *chart

	settings := []int{3, 5}
	switch *workers {
	case 0:
	case 3, 5:
		settings = []int{*workers}
	default:
		fmt.Fprintf(os.Stderr, "acdbench: -workers must be 3 or 5\n")
		os.Exit(2)
	}

	out := os.Stdout
	switch *exp {
	case "all":
		runTable3(*seed)
		runFigure5(*seed)
		runComparison(*seed, settings)
		runFigure10(*seed)
	case "table3":
		runTable3(*seed)
	case "fig5":
		runFigure5(*seed)
	case "fig6", "fig7", "fig8":
		runComparison(*seed, settings)
	case "fig10":
		runFigure10(*seed)
	case "ablation":
		runAblations(*seed)
	default:
		fmt.Fprintf(os.Stderr, "acdbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	_ = out
}

func runTable3(seed int64) {
	experiments.RenderTable3(os.Stdout, experiments.Table3(seed))
	experiments.Rule(os.Stdout)
}

func runFigure5(seed int64) {
	for _, name := range experiments.DatasetNames {
		inst := experiments.MustInstance(name, seed)
		experiments.RenderFigure5(os.Stdout, experiments.Figure5(inst, 3))
		experiments.Rule(os.Stdout)
	}
}

// chartMode switches figure comparisons to bar-chart rendering.
var chartMode bool

func runComparison(seed int64, settings []int) {
	for _, name := range experiments.DatasetNames {
		inst := experiments.MustInstance(name, seed)
		for _, w := range settings {
			rows := experiments.Comparison(inst, w)
			if chartMode {
				experiments.RenderComparisonCharts(os.Stdout, name, w, rows)
			} else {
				experiments.RenderComparison(os.Stdout, name, w, rows)
			}
			experiments.Rule(os.Stdout)
		}
	}
}

func runFigure10(seed int64) {
	for _, name := range experiments.DatasetNames {
		inst := experiments.MustInstance(name, seed)
		experiments.RenderFigure10(os.Stdout, name, experiments.Figure10(inst, 3))
		experiments.Rule(os.Stdout)
	}
}

func runAblations(seed int64) {
	// The sequential Crowd-Refine and Crowd-BOEM variants are quadratic
	// in crowd rounds, so the refinement ablation uses the two faster
	// datasets; the adaptive-allocation ablation runs everywhere.
	for _, name := range []string{"Restaurant", "Product"} {
		inst := experiments.MustInstance(name, seed)
		experiments.RenderRefineVariants(os.Stdout, name, 3, experiments.RefineVariants(inst, 3))
		experiments.Rule(os.Stdout)
	}
	for _, name := range experiments.DatasetNames {
		inst := experiments.MustInstance(name, seed)
		experiments.RenderAdaptive(os.Stdout, name, experiments.AdaptiveWorkers(inst, seed))
		experiments.Rule(os.Stdout)
	}
	for _, name := range []string{"Restaurant", "Product"} {
		inst := experiments.MustInstance(name, seed)
		experiments.RenderAggregation(os.Stdout, name, experiments.Aggregation(inst, seed))
		experiments.Rule(os.Stdout)
	}
	for _, name := range experiments.DatasetNames {
		inst := experiments.MustInstance(name, seed)
		experiments.RenderProcessingTime(os.Stdout, name, experiments.ProcessingTime(inst, 3))
		experiments.Rule(os.Stdout)
	}
	{
		inst := experiments.MustInstance("Paper", seed)
		experiments.RenderRobustness(os.Stdout, "Paper", experiments.Robustness(inst, seed))
		experiments.Rule(os.Stdout)
	}
}
