// Command acdbench regenerates the paper's evaluation tables and
// figures (Table 3, Figures 5-8, Figure 10) on the synthetic workloads.
//
// Usage:
//
//	acdbench [-exp all|table3|fig5|fig6|fig7|fig8|fig10|ablation|chaos|market]
//	         [-seed N] [-workers 3|5] [-parallel N] [-chart]
//	         [-bench-out BENCH_N.json]
//	         [-metrics] [-metrics-json] [-trace FILE] [-metrics-http ADDR]
//	         [-cpuprofile FILE] [-memprofile FILE]
//
// fig6, fig7 and fig8 share the same runs (one comparison produces the
// F1, pair-count and iteration series), so requesting any of them prints
// the full comparison block.
//
// With -metrics, a per-phase observability snapshot (pruning funnel,
// PC-Pivot rounds and wasted pairs, refine operations, crowd question
// accounting) is printed to stderr after the experiments finish; -trace
// streams per-round JSONL events as they happen.
//
// -exp chaos runs the fault-tolerance experiment: the full pipeline
// under escalating injected crowd-fault regimes (latency spikes, drops,
// transient errors, adversarial bursts), fully simulated on a virtual
// clock; see internal/crowd's ChaosSource and ReliableSource.
//
// -exp market runs the marketplace cost-per-F1 comparison: the full
// pipeline buying answers from an expensive accurate channel, a cheap
// noisy one, and a mixed fleet with budget-aware routing (see
// internal/market). With -bench-out, the results merge into the named
// BENCH_N.json under the "market" label.
//
// -cpuprofile and -memprofile write pprof profiles of the run, the
// companion knobs to the benchmark suite's -cpuprofile: acdbench is the
// repo's end-to-end workload, so its profiles show where the pipeline
// spends time outside any single benchmark's scope.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"acd/internal/benchfmt"
	"acd/internal/experiments"
	"acd/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable seam: it parses args, executes the requested
// experiments, writes results to stdout, and returns the process exit
// status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("acdbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment to run: all, table3, fig5, fig6, fig7, fig8, fig10, ablation, chaos, market")
	benchOut := fs.String("bench-out", "", "with -exp market: merge the cost-per-F1 results into this BENCH_N.json under the \"market\" label")
	seed := fs.Int64("seed", 1, "dataset and crowd seed")
	workers := fs.Int("workers", 0, "restrict comparisons to one worker setting (3 or 5); 0 = both")
	chart := fs.Bool("chart", false, "render figure comparisons as bar charts")
	parallel := fs.Int("parallel", 0, "pruning-phase worker pool: 0 = one per CPU, 1 = sequential, N = N workers")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile (after the run) to this file")
	obsFlags := obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	experiments.SetPruneParallelism(*parallel)
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "acdbench: cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "acdbench: cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(stderr, "acdbench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "acdbench: memprofile: %v\n", err)
			}
		}()
	}
	if obsFlags.Enabled() {
		rec := obs.New()
		if err := obsFlags.Activate(rec, stderr); err != nil {
			fmt.Fprintf(stderr, "acdbench: %v\n", err)
			return 2
		}
		rec.PublishExpvar("acd")
		experiments.SetRecorder(rec)
		defer experiments.SetRecorder(nil)
		defer obsFlags.Finish(stderr)
	}

	settings := []int{3, 5}
	switch *workers {
	case 0:
	case 3, 5:
		settings = []int{*workers}
	default:
		fmt.Fprintf(stderr, "acdbench: -workers must be 3 or 5\n")
		return 2
	}

	switch *exp {
	case "all":
		runTable3(stdout, *seed)
		runFigure5(stdout, *seed)
		runComparison(stdout, *seed, settings, *chart)
		runFigure10(stdout, *seed)
	case "table3":
		runTable3(stdout, *seed)
	case "fig5":
		runFigure5(stdout, *seed)
	case "fig6", "fig7", "fig8":
		runComparison(stdout, *seed, settings, *chart)
	case "fig10":
		runFigure10(stdout, *seed)
	case "ablation":
		runAblations(stdout, *seed)
	case "chaos":
		runFaultTolerance(stdout, *seed, settings)
	case "market":
		if err := runMarket(stdout, *seed, *benchOut); err != nil {
			fmt.Fprintf(stderr, "acdbench: %v\n", err)
			return 1
		}
	default:
		fmt.Fprintf(stderr, "acdbench: unknown experiment %q\n", *exp)
		return 2
	}
	return 0
}

func runTable3(out io.Writer, seed int64) {
	experiments.RenderTable3(out, experiments.Table3(seed))
	experiments.Rule(out)
}

func runFigure5(out io.Writer, seed int64) {
	for _, name := range experiments.DatasetNames {
		inst := experiments.MustInstance(name, seed)
		experiments.RenderFigure5(out, experiments.Figure5(inst, 3))
		experiments.Rule(out)
	}
}

func runComparison(out io.Writer, seed int64, settings []int, chart bool) {
	for _, name := range experiments.DatasetNames {
		inst := experiments.MustInstance(name, seed)
		for _, w := range settings {
			rows := experiments.Comparison(inst, w)
			if chart {
				experiments.RenderComparisonCharts(out, name, w, rows)
			} else {
				experiments.RenderComparison(out, name, w, rows)
			}
			experiments.Rule(out)
		}
	}
}

func runFigure10(out io.Writer, seed int64) {
	for _, name := range experiments.DatasetNames {
		inst := experiments.MustInstance(name, seed)
		experiments.RenderFigure10(out, name, experiments.Figure10(inst, 3))
		experiments.Rule(out)
	}
}

func runFaultTolerance(out io.Writer, seed int64, settings []int) {
	for _, name := range experiments.DatasetNames {
		inst := experiments.MustInstance(name, seed)
		for _, w := range settings {
			experiments.RenderFaultTolerance(out, name, w, experiments.FaultTolerance(inst, w, seed))
			experiments.Rule(out)
		}
	}
}

// runMarket runs the marketplace cost-per-F1 comparison on every
// dataset and, when benchOut is set, merges the results into that
// BENCH_N.json trajectory file under the "market" label.
func runMarket(out io.Writer, seed int64, benchOut string) error {
	rows := experiments.CostPerF1All(seed)
	for _, row := range rows {
		experiments.RenderCostPerF1(out, row)
		experiments.Rule(out)
	}
	if benchOut == "" {
		return nil
	}
	doc, err := benchfmt.Read(benchOut)
	if err != nil {
		return err
	}
	doc.Set("market", experiments.BenchResults(rows))
	return doc.Write(benchOut)
}

func runAblations(out io.Writer, seed int64) {
	// The sequential Crowd-Refine and Crowd-BOEM variants are quadratic
	// in crowd rounds, so the refinement ablation uses the two faster
	// datasets; the adaptive-allocation ablation runs everywhere.
	for _, name := range []string{"Restaurant", "Product"} {
		inst := experiments.MustInstance(name, seed)
		experiments.RenderRefineVariants(out, name, 3, experiments.RefineVariants(inst, 3))
		experiments.Rule(out)
	}
	for _, name := range experiments.DatasetNames {
		inst := experiments.MustInstance(name, seed)
		experiments.RenderAdaptive(out, name, experiments.AdaptiveWorkers(inst, seed))
		experiments.Rule(out)
	}
	for _, name := range []string{"Restaurant", "Product"} {
		inst := experiments.MustInstance(name, seed)
		experiments.RenderAggregation(out, name, experiments.Aggregation(inst, seed))
		experiments.Rule(out)
	}
	for _, name := range experiments.DatasetNames {
		inst := experiments.MustInstance(name, seed)
		experiments.RenderProcessingTime(out, name, experiments.ProcessingTime(inst, 3))
		experiments.Rule(out)
	}
	{
		inst := experiments.MustInstance("Paper", seed)
		experiments.RenderRobustness(out, "Paper", experiments.Robustness(inst, seed))
		experiments.Rule(out)
	}
}
