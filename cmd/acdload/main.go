// Command acdload is the YCSB-style workload generator for the serving
// layer. It drives an acdserve HTTP API — either a remote one
// (-target) or a self-hosted in-process server (-journal/-shards) —
// with a configurable operation mix under a closed-loop or open-loop
// Poisson arrival process, and reports per-endpoint throughput and
// latency percentiles. -scenario runs the curated benchmark suite
// instead (baseline, high-load, bursty, read-heavy, degraded-crowd,
// crash-restart, crash-restart-groupcommit, replica-reads,
// replica-failover). -read-targets fans the snapshot reads out over
// follower replicas while writes stay on -target. -commit-window and
// -rotate-bytes turn on journal group commit and WAL segment rotation
// on the servers acdload hosts itself, for before/after write-path
// comparisons. Reports are written as a suite JSON (-out) that
// `benchjson -load` folds into the committed BENCH_N.json trajectory.
// The methodology handbook is docs/serving.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"acd/internal/dataset"
	"acd/internal/load"
	"acd/internal/load/scenarios"
	"acd/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// flags builds acdload's flag set over a destination struct; main and
// the flag↔documentation parity test share it.
type options struct {
	target       string
	readTargets  string
	journal      string
	shards       int
	scenario     string
	list         bool
	smoke        bool
	mix          string
	arrival      string
	rate         float64
	burstRate    float64
	burstPeriod  time.Duration
	burstDuty    float64
	concurrency  int
	duration     time.Duration
	warmup       time.Duration
	recordBatch  int
	answerBatch  int
	resolveEvery time.Duration
	churnRecords int
	churnEnts    int
	churnNoise   float64
	seed         int64
	commitWindow time.Duration
	rotateBytes  int64
	out          string
	label        string
	labelSuffix  string
}

// flags registers every acdload flag on a fresh FlagSet.
func flags(o *options, errw io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet("acdload", flag.ContinueOnError)
	fs.SetOutput(errw)
	fs.StringVar(&o.target, "target", "", "base URL of a running acdserve to drive (empty = self-host an in-process server)")
	fs.StringVar(&o.readTargets, "read-targets", "", "comma-separated base URLs that take the snapshot reads round-robin (follower replicas; empty = reads go to -target)")
	fs.StringVar(&o.journal, "journal", "", "journal directory for the self-hosted server, and scratch root for scenarios (empty = temp dir)")
	fs.IntVar(&o.shards, "shards", 1, "shard count of the self-hosted server")
	fs.StringVar(&o.scenario, "scenario", "", "run a named benchmark scenario, or \"all\" for the whole suite")
	fs.BoolVar(&o.list, "list", false, "list the benchmark scenarios and exit")
	fs.BoolVar(&o.smoke, "smoke", false, "seconds-scale scenario mode for CI smoke runs")
	fs.StringVar(&o.mix, "mix", "60,20,15,5", "operation mix weights records,answers,clusters,metrics")
	fs.StringVar(&o.arrival, "arrival", "closed", "arrival process: closed or poisson")
	fs.Float64Var(&o.rate, "rate", 200, "open-loop arrival rate in ops/sec (poisson only)")
	fs.Float64Var(&o.burstRate, "burst-rate", 0, "burst-window arrival rate in ops/sec (0 = no bursts)")
	fs.DurationVar(&o.burstPeriod, "burst-period", 2*time.Second, "burst cycle length")
	fs.Float64Var(&o.burstDuty, "burst-duty", 0.3, "fraction of each burst period spent at the burst rate")
	fs.IntVar(&o.concurrency, "concurrency", 16, "closed-loop workers, or the open-loop in-flight cap")
	fs.DurationVar(&o.duration, "duration", 10*time.Second, "measured window length")
	fs.DurationVar(&o.warmup, "warmup", 2*time.Second, "unrecorded warmup before the measured window")
	fs.IntVar(&o.recordBatch, "record-batch", 8, "records per POST /records")
	fs.IntVar(&o.answerBatch, "answer-batch", 4, "answers per POST /answers")
	fs.DurationVar(&o.resolveEvery, "resolve-every", 0, "background POST /resolve cadence (0 = never)")
	fs.IntVar(&o.churnRecords, "churn-records", 5000, "synthetic churn pool size in records")
	fs.IntVar(&o.churnEnts, "churn-entities", 500, "ground-truth entities in the churn pool")
	fs.Float64Var(&o.churnNoise, "churn-noise", 0.15, "per-token corruption probability of churned duplicates")
	fs.Int64Var(&o.seed, "seed", 1, "seed for the request sequence (arrivals, op picks, churn, answer pairs)")
	fs.DurationVar(&o.commitWindow, "commit-window", 0, "journal group-commit window on self-hosted/scenario servers (0 = fsync per event)")
	fs.Int64Var(&o.rotateBytes, "rotate-bytes", 0, "WAL segment rotation size on self-hosted/scenario servers (0 = no rotation)")
	fs.StringVar(&o.out, "out", "", "write the suite report JSON here (merge into BENCH files with benchjson -load)")
	fs.StringVar(&o.label, "label", "adhoc", "scenario label for ad-hoc (non -scenario) runs")
	fs.StringVar(&o.labelSuffix, "label-suffix", "", "string appended to every report's scenario label (keeps before/after runs distinct in one BENCH file)")
	return fs
}

// run is the testable entrypoint; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	var o options
	fs := flags(&o, stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if o.list {
		for _, s := range scenarios.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", s.Name, s.Desc)
		}
		return 0
	}
	var reports []*load.Report
	var err error
	if o.scenario != "" {
		reports, err = runScenarios(o, stdout, stderr)
	} else {
		reports, err = runAdhoc(o, stderr)
	}
	if err != nil {
		fmt.Fprintf(stderr, "acdload: %v\n", err)
		return 1
	}
	for _, rep := range reports {
		rep.Scenario += o.labelSuffix
		rep.Render(stdout)
	}
	if o.out != "" {
		if err := load.WriteSuite(o.out, &load.Suite{Reports: reports}); err != nil {
			fmt.Fprintf(stderr, "acdload: writing %s: %v\n", o.out, err)
			return 1
		}
		fmt.Fprintf(stderr, "acdload: wrote %d reports to %s\n", len(reports), o.out)
	}
	return 0
}

// runScenarios runs one named scenario or the whole suite.
func runScenarios(o options, stdout, stderr io.Writer) ([]*load.Report, error) {
	dir := o.journal
	if dir == "" {
		tmp, err := os.MkdirTemp("", "acdload-scenarios-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	opts := scenarios.Options{
		Dir: dir, Shards: o.shards, Smoke: o.smoke, Seed: o.seed,
		CommitWindow: o.commitWindow, RotateBytes: o.rotateBytes,
		Log: stderr,
	}
	var todo []scenarios.Scenario
	if o.scenario == "all" {
		todo = scenarios.All()
	} else {
		s, ok := scenarios.Find(o.scenario)
		if !ok {
			return nil, fmt.Errorf("unknown scenario %q (use -list)", o.scenario)
		}
		todo = []scenarios.Scenario{s}
	}
	var reports []*load.Report
	for _, s := range todo {
		rep, err := s.Run(opts)
		if err != nil {
			return nil, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// runAdhoc drives one workload built from the flags, against -target or
// a self-hosted server.
func runAdhoc(o options, stderr io.Writer) ([]*load.Report, error) {
	mix, err := parseMix(o.mix)
	if err != nil {
		return nil, err
	}
	pool, err := load.SyntheticPool(dataset.SyntheticConfig{
		Entities: o.churnEnts,
		Records:  o.churnRecords,
		Noise:    o.churnNoise,
		Seed:     o.seed,
	})
	if err != nil {
		return nil, err
	}
	target := o.target
	shards := 0
	if target == "" {
		l, err := serve.StartLocal(serve.Config{
			Journal: o.journal, Shards: o.shards, Seed: o.seed,
			CommitWindow: o.commitWindow, RotateBytes: o.rotateBytes,
		})
		if err != nil {
			return nil, err
		}
		defer l.Close()
		target = l.URL
		shards = l.Server.Shards()
		fmt.Fprintf(stderr, "acdload: self-hosted server at %s (%d shards)\n", target, shards)
	}
	cfg := load.Config{
		Target:       target,
		ReadTargets:  splitTargets(o.readTargets),
		Mix:          mix,
		Arrival:      load.ArrivalKind(o.arrival),
		Rate:         o.rate,
		Concurrency:  o.concurrency,
		Warmup:       o.warmup,
		Duration:     o.duration,
		RecordBatch:  o.recordBatch,
		AnswerBatch:  o.answerBatch,
		ResolveEvery: o.resolveEvery,
		Pool:         pool,
		Seed:         o.seed,
	}
	if o.burstRate > 0 {
		cfg.Burst = &load.Burst{Rate: o.burstRate, Period: o.burstPeriod, Duty: o.burstDuty}
	}
	g, err := load.New(cfg)
	if err != nil {
		return nil, err
	}
	rep, err := g.Run(context.Background())
	if err != nil {
		return nil, err
	}
	rep.Scenario = o.label
	rep.Shards = shards
	return []*load.Report{rep}, nil
}

// splitTargets parses the -read-targets comma list.
func splitTargets(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseMix parses "records,answers,clusters,metrics" integer weights.
func parseMix(s string) (load.Mix, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return load.Mix{}, fmt.Errorf("-mix wants 4 comma-separated weights, got %q", s)
	}
	var w [4]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return load.Mix{}, fmt.Errorf("-mix weight %q invalid", p)
		}
		w[i] = v
	}
	return load.Mix{Records: w[0], Answers: w[1], Clusters: w[2], Metrics: w[3]}, nil
}
