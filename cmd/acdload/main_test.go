package main

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"acd/internal/load"
	"acd/internal/serve"
	"acd/internal/testutil"
)

// TestList: -list prints every scenario and exits 0.
func TestList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit %d, stderr: %s", code, errb.String())
	}
	for _, name := range scenariosAll() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestBadFlags: parse errors and bad values exit non-zero without
// panicking.
func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-mix", "1,2,3"},
		{"-mix", "a,b,c,d", "-duration", "100ms"},
		{"-arrival", "weird", "-duration", "100ms"},
		{"-scenario", "no-such-scenario"},
	}
	for _, args := range cases {
		var out, errb strings.Builder
		if code := run(args, &out, &errb); code == 0 {
			t.Errorf("run(%v) = 0, want non-zero", args)
		}
	}
}

// TestAdhocLoopback: a short self-hosted ad-hoc run against an
// in-process server produces a rendered report and a suite file, and
// leaks no goroutines.
func TestAdhocLoopback(t *testing.T) {
	baseline := testutil.Baseline()
	dir := t.TempDir()
	out := filepath.Join(dir, "suite.json")
	var stdout, stderr strings.Builder
	code := run([]string{
		"-journal", filepath.Join(dir, "j"),
		"-shards", "2",
		"-duration", "400ms", "-warmup", "50ms",
		"-concurrency", "4",
		"-churn-records", "200", "-churn-entities", "40",
		"-resolve-every", "150ms",
		"-label", "smoketest",
		"-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "scenario smoketest") || !strings.Contains(stdout.String(), "p99ms") {
		t.Errorf("rendered report missing expected content:\n%s", stdout.String())
	}
	suite, err := load.ReadSuite(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Reports) != 1 || suite.Reports[0].Scenario != "smoketest" || suite.Reports[0].Shards != 2 {
		t.Fatalf("suite contents: %+v", suite.Reports)
	}
	if suite.Reports[0].Counters.AckedRecords == 0 {
		t.Error("no records acked")
	}
	testutil.CheckGoroutines(t, baseline)
}

// TestAdhocPoissonAgainstTarget: open-loop mode with bursts against an
// externally-started server (the -target path).
func TestAdhocPoissonAgainstTarget(t *testing.T) {
	l, err := serve.StartLocal(serve.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var stdout, stderr strings.Builder
	code := run([]string{
		"-target", l.URL,
		"-arrival", "poisson", "-rate", "300",
		"-burst-rate", "900", "-burst-period", "200ms", "-burst-duty", "0.3",
		"-duration", "400ms", "-warmup", "0s",
		"-concurrency", "8",
		"-churn-records", "120", "-churn-entities", "30",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "records") {
		t.Errorf("report missing records endpoint:\n%s", stdout.String())
	}
}

// TestScenarioSmoke: the -scenario path end to end (one scenario, smoke
// mode, suite written).
func TestScenarioSmoke(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "suite.json")
	var stdout, stderr strings.Builder
	code := run([]string{"-scenario", "baseline", "-smoke", "-journal", dir, "-out", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	suite, err := load.ReadSuite(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Reports) != 1 || suite.Reports[0].Scenario != "baseline" {
		t.Fatalf("suite contents: %+v", suite.Reports)
	}
}

// docsPath locates docs/serving.md relative to this package.
func docsPath(t *testing.T) string {
	t.Helper()
	return filepath.Join("..", "..", "docs", "serving.md")
}

// TestFlagsDocumented: every acdload flag appears in docs/serving.md as
// `-name` — the handbook documents the whole CLI surface, enforced.
func TestFlagsDocumented(t *testing.T) {
	raw, err := os.ReadFile(docsPath(t))
	if err != nil {
		t.Fatalf("reading docs/serving.md: %v", err)
	}
	doc := string(raw)
	var o options
	fs := flags(&o, io.Discard)
	fs.VisitAll(func(f *flag.Flag) {
		if !strings.Contains(doc, "`-"+f.Name+"`") {
			t.Errorf("flag -%s is not documented in docs/serving.md", f.Name)
		}
	})
}

// TestEndpointsDocumented: every acdserve endpoint appears in
// docs/serving.md verbatim.
func TestEndpointsDocumented(t *testing.T) {
	raw, err := os.ReadFile(docsPath(t))
	if err != nil {
		t.Fatalf("reading docs/serving.md: %v", err)
	}
	doc := string(raw)
	for _, ep := range serve.Endpoints() {
		if !strings.Contains(doc, "`"+ep+"`") {
			t.Errorf("endpoint %q is not documented in docs/serving.md", ep)
		}
	}
}

// TestScenariosDocumented: every scenario name appears in
// docs/serving.md.
func TestScenariosDocumented(t *testing.T) {
	raw, err := os.ReadFile(docsPath(t))
	if err != nil {
		t.Fatalf("reading docs/serving.md: %v", err)
	}
	doc := string(raw)
	var o options
	_ = o
	for _, s := range scenariosAll() {
		if !strings.Contains(doc, "`"+s+"`") {
			t.Errorf("scenario %q is not documented in docs/serving.md", s)
		}
	}
}

// scenariosAll returns the scenario names (kept separate so the doc
// test reads naturally).
func scenariosAll() []string {
	return []string{"baseline", "high-load", "bursty", "read-heavy", "degraded-crowd", "crash-restart", "crash-restart-groupcommit", "replica-reads", "replica-failover", "mixed-fleet", "backend-outage"}
}
