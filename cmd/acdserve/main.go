// Command acdserve exposes the sharded incremental dedup engine over
// HTTP: a long-running service that accepts records as they arrive,
// caches crowd answers, and folds pending work into the live clustering
// on demand. Records are partitioned across -shards engines by blocking
// token, so ingest on different shards never contends; a global resolve
// pass keeps the clustering — and every crowd question — identical to a
// single engine's. With -journal DIR the state is durable: every
// record, answer, and resolve effect is written ahead to per-shard WALs
// (plus a router WAL for cross-shard state) with periodic compacted
// checkpoints, and a restarted server recovers the exact clustering it
// had before the crash. With -commit-window the per-shard WALs group
// commit: concurrent appends inside the window share a single fsync
// and acknowledgments are pipelined, multiplying ingest throughput
// while preserving the committed-prefix contract — an id is reported
// only once its event's group is durable.
//
// The engine, handlers, and HTTP API live in internal/serve (so the
// acdload scenario suite can embed the same server in-process); this
// command adds flags, the listener, and the graceful-shutdown
// lifecycle. The API and operations are documented in docs/serving.md.
//
// Usage:
//
//	acdserve [-addr 127.0.0.1:8080] [-journal DIR] [-shards N] [-tau 0.3]
//	         [-eps 0.1] [-x 8] [-seed 1] [-checkpoint-every N]
//	         [-commit-window D] [-commit-events N] [-commit-bytes N]
//	         [-rotate-bytes N] [-follow URL] [-replica-id NAME]
//	         [-crowd-sim] [-crowd-latency D] [-crowd-spike F] [-crowd-drop F]
//	         [-crowd-error F] [-crowd-timeout D] [-crowd-retries N]
//	         [-fleet SPEC] [-fleet-budget CENTS]
//	         [-metrics] [-metrics-json] [-trace FILE] [-metrics-http ADDR]
//
// Endpoints:
//
//	POST /records  {"records":[{"fields":{...},"entity":"l"}]} -> {"ids":[...]}
//	POST /answers  {"answers":[{"lo":0,"hi":1,"fc":0.9,"source":"s"}]} -> {"accepted":n}
//	POST /resolve  -> incremental.ResolveStats (runs one resolve pass)
//	GET  /clusters -> {"round":r,"resolved_up_to":n,"clusters":[[...]]}
//	GET  /healthz  -> {"status":"ok","records":n,"round":r}
//	GET  /metrics  -> observability snapshot (JSON)
//	GET  /replica/stream   -> journal tail batches for followers (long-poll)
//	GET  /replica/status   -> replication role, epoch, and lag
//	POST /replica/promote  -> turn this follower into the leader
//
// GET /clusters and GET /healthz are served from an immutable snapshot
// behind an atomic pointer: reads never take a write lock and return
// immediately even while a resolve pass or an ingest burst is running.
// With -follow the server is a read-only replica instead: it mirrors
// the leader's journals, answers reads from a warm standby with an
// X-Replication-Lag header, refuses writes with 503, and becomes the
// leader on POST /replica/promote (fencing the deposed leader's epoch
// and replaying its surviving tail when the body names its journal
// directory). See docs/serving.md for the replication runbook.
// Crowd answers are optional: /resolve primes every cached answer and
// falls back to machine similarity scores for residual pairs, so the
// service is useful standalone and gets strictly better as answers
// stream in. With -crowd-sim the residual questions go to a simulated
// crowd instead (deterministic pseudo-answers with real injected
// latency and faults per the -crowd-* knobs) — the degraded-crowd
// configuration the load scenarios exercise. With -fleet the residual
// questions instead route through the heterogeneous crowd marketplace
// (internal/market): each backend in the spec answers from the same
// pseudo-crowd with its own price, latency, and calibrated noise, and
// the router buys each answer from whichever backend offers the best
// information value per cent under the -fleet-budget cap; per-backend
// spend and accuracy appear under market/* and crowd/backend/* in
// GET /metrics. On SIGINT/SIGTERM the
// server drains in-flight requests, writes a final checkpoint, and
// closes the journals.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"acd/internal/core"
	"acd/internal/market"
	"acd/internal/obs"
	"acd/internal/pruning"
	"acd/internal/refine"
	"acd/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is main's testable seam: it parses args, builds the server core
// (recovering from the journal when one is configured), serves HTTP
// until ctx is cancelled, then shuts down gracefully. When ready is
// non-nil the bound listen address is sent on it once the server
// accepts connections — tests pass -addr 127.0.0.1:0 and read the
// real port from here.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("acdserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "HTTP listen address")
	dir := fs.String("journal", "", "journal directory for durable state (empty = volatile, in-memory only)")
	shards := fs.Int("shards", 0, "shard count for the online engine (0 = what the journal has, or 1; an existing journal pins its count)")
	tau := fs.Float64("tau", pruning.DefaultTau, "candidate threshold for the incremental blocking index")
	eps := fs.Float64("eps", core.DefaultEpsilon, "PC-Pivot wasted-pair budget")
	x := fs.Int("x", refine.DefaultX, "refinement budget divisor (T = N_m/x)")
	seed := fs.Int64("seed", 1, "random seed for resolve permutations")
	ckpt := fs.Int("checkpoint-every", 256, "journal events between automatic checkpoints (0 disables)")
	commitWindow := fs.Duration("commit-window", 0, "journal group-commit window: concurrent appends within it share one fsync (0 = fsync per event)")
	commitEvents := fs.Int("commit-events", 0, "max events per commit group before an early fsync (0 = 256; needs -commit-window)")
	commitBytes := fs.Int64("commit-bytes", 0, "max WAL bytes per commit group before an early fsync (0 = 1 MiB; needs -commit-window)")
	rotateBytes := fs.Int64("rotate-bytes", serve.DefaultRotateBytes, "rotate each live WAL segment past this size in bytes (0 disables rotation)")
	follow := fs.String("follow", "", "leader replication stream URL (http://LEADER/replica/stream): start as a read-only follower mirroring that leader's journals")
	replicaID := fs.String("replica-id", "", "replica name reported by GET /replica/status")
	crowdSim := fs.Bool("crowd-sim", false, "answer residual resolve questions from a simulated crowd (deterministic pseudo-answers with real injected latency) instead of machine scores")
	crowdLatency := fs.Duration("crowd-latency", 500*time.Microsecond, "with -crowd-sim: median simulated answer latency per question")
	crowdSpike := fs.Float64("crowd-spike", 0, "with -crowd-sim: probability a simulated answer's latency spikes 25x")
	crowdDrop := fs.Float64("crowd-drop", 0, "with -crowd-sim: probability a simulated answer never arrives (forces timeout+retry)")
	crowdError := fs.Float64("crowd-error", 0, "with -crowd-sim: probability of a transient simulated platform error")
	crowdTimeout := fs.Duration("crowd-timeout", 50*time.Millisecond, "with -crowd-sim: per-question deadline before retry/fallback")
	crowdRetries := fs.Int("crowd-retries", 1, "with -crowd-sim: re-issues after a failed question")
	fleet := fs.String("fleet", "", "marketplace fleet spec (\"default\" = the built-in mixed fleet): route residual resolve questions across heterogeneous crowd backends by information value per cent")
	fleetBudget := fs.Int("fleet-budget", 0, "with -fleet: total marketplace spend cap in cents (0 = unlimited)")
	obsFlags := obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	rec := obs.New()
	if obsFlags.Enabled() {
		if err := obsFlags.Activate(rec, stderr); err != nil {
			fmt.Fprintf(stderr, "acdserve: %v\n", err)
			return 2
		}
		rec.PublishExpvar("acdserve")
		defer obsFlags.Finish(stderr)
	}

	cfg := serve.Config{
		Journal: *dir,
		Shards:  *shards,
		Tau:     *tau, TauSet: true,
		Epsilon: *eps, RefineX: *x,
		Seed:            *seed,
		CheckpointEvery: *ckpt,
		CommitWindow:    *commitWindow,
		CommitEvents:    *commitEvents,
		CommitBytes:     *commitBytes,
		RotateBytes:     *rotateBytes,
		Obs:             rec,
		Follow:          *follow,
		ReplicaID:       *replicaID,
	}
	if *fleet != "" {
		if *crowdSim {
			fmt.Fprintln(stderr, "acdserve: -fleet and -crowd-sim are mutually exclusive")
			return 2
		}
		spec := *fleet
		if spec == "default" {
			spec = market.DefaultFleetSpec
		}
		cfg.Fleet, cfg.FleetBudget = spec, *fleetBudget
	}
	if *crowdSim {
		cfg.Source = serve.DegradedCrowd(serve.SimCrowdConfig{
			Seed:        *seed,
			BaseLatency: *crowdLatency,
			Spike:       *crowdSpike,
			Drop:        *crowdDrop,
			Error:       *crowdError,
			Timeout:     *crowdTimeout,
			Retries:     *crowdRetries,
		})
	}
	srv, err := serve.Open(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "acdserve: %v\n", err)
		return 1
	}
	if *follow != "" {
		fmt.Fprintf(stderr, "acdserve: following %s (%d shards): standby at %d records, round %d\n",
			*follow, srv.Shards(), srv.Recovered.Records, srv.Recovered.Round)
	} else if srv.Recovered.FromJournal {
		fmt.Fprintf(stderr, "acdserve: journal %s (%d shards): recovered %d records, round %d\n",
			*dir, srv.Shards(), srv.Recovered.Records, srv.Recovered.Round)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "acdserve: %v\n", err)
		srv.Close()
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stderr, "acdserve: listening on http://%s (%d shards)\n", ln.Addr(), srv.Shards())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	status := 0
	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "acdserve: %v\n", err)
		status = 1
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(stderr, "acdserve: shutdown: %v\n", err)
			status = 1
		}
		cancel()
		<-serveErr // Serve has returned http.ErrServerClosed
	}

	// Drained: checkpoint every journal so the next start replays a
	// compact prefix, then release them.
	if err := srv.Checkpoint(); err != nil {
		fmt.Fprintf(stderr, "acdserve: final checkpoint: %v\n", err)
		status = 1
	}
	final := srv.Snapshot()
	if err := srv.Close(); err != nil {
		fmt.Fprintf(stderr, "acdserve: closing journal: %v\n", err)
		status = 1
	}
	fmt.Fprintf(stdout, "acdserve: stopped after %d records, round %d\n", final.Records, final.Round)
	return status
}
