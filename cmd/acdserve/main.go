// Command acdserve exposes the sharded incremental dedup engine over
// HTTP: a long-running service that accepts records as they arrive,
// caches crowd answers, and folds pending work into the live clustering
// on demand. Records are partitioned across -shards engines by blocking
// token, so ingest on different shards never contends; a global resolve
// pass keeps the clustering — and every crowd question — identical to a
// single engine's. With -journal DIR the state is durable: every
// record, answer, and resolve effect is written ahead to per-shard WALs
// (plus a router WAL for cross-shard state) with periodic compacted
// checkpoints, and a restarted server recovers the exact clustering it
// had before the crash.
//
// Usage:
//
//	acdserve [-addr 127.0.0.1:8080] [-journal DIR] [-shards N] [-tau 0.3]
//	         [-eps 0.1] [-x 8] [-seed 1] [-checkpoint-every N]
//	         [-metrics] [-metrics-json] [-trace FILE] [-metrics-http ADDR]
//
// Endpoints:
//
//	POST /records  {"records":[{"fields":{...},"entity":"l"}]} -> {"ids":[...]}
//	POST /answers  {"answers":[{"lo":0,"hi":1,"fc":0.9,"source":"s"}]} -> {"accepted":n}
//	POST /resolve  -> incremental.ResolveStats (runs one resolve pass)
//	GET  /clusters -> {"round":r,"resolved_up_to":n,"clusters":[[...]]}
//	GET  /healthz  -> {"status":"ok","records":n,"round":r}
//	GET  /metrics  -> observability snapshot (JSON)
//
// GET /clusters and GET /healthz are served from an immutable snapshot
// behind an atomic pointer: reads never take a write lock and return
// immediately even while a resolve pass or an ingest burst is running.
// Crowd answers are optional: /resolve primes every cached answer and
// falls back to machine similarity scores for residual pairs, so the
// service is useful standalone and gets strictly better as answers
// stream in. On SIGINT/SIGTERM the server drains in-flight requests,
// writes a final checkpoint, and closes the journals.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"acd/internal/core"
	"acd/internal/incremental"
	"acd/internal/journal"
	"acd/internal/obs"
	"acd/internal/pruning"
	"acd/internal/refine"
	"acd/internal/shard"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is main's testable seam: it parses args, builds the shard group
// (recovering from the journal when one is configured), serves HTTP
// until ctx is cancelled, then shuts down gracefully. When ready is
// non-nil the bound listen address is sent on it once the server
// accepts connections — tests pass -addr 127.0.0.1:0 and read the
// real port from here.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("acdserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "HTTP listen address")
	dir := fs.String("journal", "", "journal directory for durable state (empty = volatile, in-memory only)")
	shards := fs.Int("shards", 0, "shard count for the online engine (0 = what the journal has, or 1; an existing journal pins its count)")
	tau := fs.Float64("tau", pruning.DefaultTau, "candidate threshold for the incremental blocking index")
	eps := fs.Float64("eps", core.DefaultEpsilon, "PC-Pivot wasted-pair budget")
	x := fs.Int("x", refine.DefaultX, "refinement budget divisor (T = N_m/x)")
	seed := fs.Int64("seed", 1, "random seed for resolve permutations")
	ckpt := fs.Int("checkpoint-every", 256, "journal events between automatic checkpoints (0 disables)")
	obsFlags := obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	rec := obs.New()
	if obsFlags.Enabled() {
		if err := obsFlags.Activate(rec, stderr); err != nil {
			fmt.Fprintf(stderr, "acdserve: %v\n", err)
			return 2
		}
		rec.PublishExpvar("acdserve")
		defer obsFlags.Finish(stderr)
	}

	cfg := shard.Config{
		Shards: *shards,
		Engine: incremental.Config{
			Tau: *tau, TauSet: true,
			Epsilon: *eps, RefineX: *x,
			Seed: *seed, Obs: rec,
			CheckpointEvery: *ckpt,
		},
	}
	var group *shard.Group
	if *dir != "" {
		tree, err := journal.NewDirTree(*dir)
		if err != nil {
			fmt.Fprintf(stderr, "acdserve: %v\n", err)
			return 1
		}
		group, err = shard.Open(cfg, tree)
		if err != nil {
			fmt.Fprintf(stderr, "acdserve: recovering journal: %v\n", err)
			return 1
		}
		snap := group.Snapshot()
		fmt.Fprintf(stderr, "acdserve: journal %s (%d shards): recovered %d records, round %d\n",
			*dir, group.Shards(), snap.Records, snap.Round)
	} else {
		var err error
		group, err = shard.New(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "acdserve: %v\n", err)
			return 1
		}
	}

	srv := &server{group: group}
	mux := http.NewServeMux()
	mux.HandleFunc("/records", srv.handleRecords)
	mux.HandleFunc("/answers", srv.handleAnswers)
	mux.HandleFunc("/resolve", srv.handleResolve)
	mux.HandleFunc("/clusters", srv.handleClusters)
	mux.HandleFunc("/healthz", srv.handleHealthz)
	mux.Handle("/metrics", rec)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "acdserve: %v\n", err)
		group.Close()
		return 1
	}
	httpSrv := &http.Server{Handler: mux}
	fmt.Fprintf(stderr, "acdserve: listening on http://%s (%d shards)\n", ln.Addr(), group.Shards())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	status := 0
	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "acdserve: %v\n", err)
		status = 1
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(stderr, "acdserve: shutdown: %v\n", err)
			status = 1
		}
		cancel()
		<-serveErr // Serve has returned http.ErrServerClosed
	}

	// Drained: checkpoint every journal so the next start replays a
	// compact prefix, then release them.
	if err := group.Checkpoint(); err != nil {
		fmt.Fprintf(stderr, "acdserve: final checkpoint: %v\n", err)
		status = 1
	}
	final := group.Snapshot()
	if err := group.Close(); err != nil {
		fmt.Fprintf(stderr, "acdserve: closing journal: %v\n", err)
		status = 1
	}
	fmt.Fprintf(stdout, "acdserve: stopped after %d records, round %d\n", final.Records, final.Round)
	return status
}

// server wires the HTTP handlers to the shard group. The group is
// internally synchronized: writes route through per-shard queues and
// reads load the immutable snapshot pointer, so the server itself
// holds no lock anywhere.
type server struct {
	group *shard.Group
}

// recordPayload is one record in a POST /records body.
type recordPayload struct {
	Fields map[string]string `json:"fields"`
	Entity string            `json:"entity,omitempty"`
}

// answerPayload is one crowd answer in a POST /answers body.
type answerPayload struct {
	Lo     int     `json:"lo"`
	Hi     int     `json:"hi"`
	FC     float64 `json:"fc"`
	Source string  `json:"source,omitempty"`
}

func (s *server) handleRecords(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var body struct {
		Records []recordPayload `json:"records"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(body.Records) == 0 {
		writeError(w, http.StatusBadRequest, "no records")
		return
	}
	recs := make([]incremental.Record, len(body.Records))
	for i, p := range body.Records {
		recs[i] = incremental.Record{Fields: p.Fields, Entity: p.Entity}
	}
	ids, err := s.group.Add(recs...)
	if err != nil {
		// A mid-batch journal failure leaves a durable prefix applied;
		// tell the client exactly which records made it in.
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error": err.Error(), "committed_ids": ids,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ids": ids, "pending_pairs": s.group.Snapshot().PendingPairs})
}

func (s *server) handleAnswers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var body struct {
		Answers []answerPayload `json:"answers"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	// Validate the whole batch up front: a 400 means nothing was
	// applied. Records are never removed, so a validated answer cannot
	// become invalid before it is applied below.
	for i, a := range body.Answers {
		if err := s.group.ValidateAnswer(a.Lo, a.Hi, a.FC); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("answer %d: %v", i, err))
			return
		}
	}
	accepted := 0
	for i, a := range body.Answers {
		if err := s.group.AddAnswer(a.Lo, a.Hi, a.FC, a.Source); err != nil {
			// Validation passed, so this is a journal failure; the first
			// `accepted` answers are already durable.
			writeJSON(w, http.StatusInternalServerError, map[string]any{
				"error": fmt.Sprintf("answer %d: %v", i, err), "committed": accepted,
			})
			return
		}
		accepted++
	}
	writeJSON(w, http.StatusOK, map[string]any{"accepted": accepted, "known": s.group.Snapshot().Answers})
}

func (s *server) handleResolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	st, err := s.group.Resolve(r.Context())
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusRequestTimeout
		}
		writeError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *server) handleClusters(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	snap := s.group.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"round":          snap.Round,
		"resolved_up_to": snap.ResolvedUpTo,
		"records":        snap.Records,
		"shards":         snap.Shards,
		"clusters":       snap.Clusters,
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.group.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"records": snap.Records,
		"round":   snap.Round,
		"pending": snap.PendingPairs,
		"shards":  snap.Shards,
	})
}

// writeJSON writes v as the JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck — response is best-effort past this point
}

// writeError writes a JSON error envelope.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
