// Command acdserve exposes the incremental dedup engine over HTTP: a
// long-running service that accepts records as they arrive, caches
// crowd answers, and folds pending work into the live clustering on
// demand. With -journal DIR the engine state is durable — every record,
// answer, and resolve effect is written ahead to a WAL with periodic
// compacted checkpoints, and a restarted server recovers the exact
// clustering it had before the crash.
//
// Usage:
//
//	acdserve [-addr 127.0.0.1:8080] [-journal DIR] [-tau 0.3]
//	         [-eps 0.1] [-x 8] [-seed 1] [-checkpoint-every N]
//	         [-metrics] [-metrics-json] [-trace FILE] [-metrics-http ADDR]
//
// Endpoints:
//
//	POST /records  {"records":[{"fields":{...},"entity":"l"}]} -> {"ids":[...]}
//	POST /answers  {"answers":[{"lo":0,"hi":1,"fc":0.9,"source":"s"}]} -> {"accepted":n}
//	POST /resolve  -> incremental.ResolveStats (runs one resolve pass)
//	GET  /clusters -> {"round":r,"resolved_up_to":n,"clusters":[[...]]}
//	GET  /healthz  -> {"status":"ok","records":n,"round":r}
//	GET  /metrics  -> observability snapshot (JSON)
//
// Crowd answers are optional: /resolve primes every cached answer and
// falls back to machine similarity scores for residual pairs, so the
// service is useful standalone and gets strictly better as answers
// stream in. On SIGINT/SIGTERM the server drains in-flight requests,
// writes a final checkpoint, and closes the journal.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"acd/internal/core"
	"acd/internal/incremental"
	"acd/internal/journal"
	"acd/internal/obs"
	"acd/internal/pruning"
	"acd/internal/refine"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is main's testable seam: it parses args, builds the engine
// (recovering from the journal when one is configured), serves HTTP
// until ctx is cancelled, then shuts down gracefully. When ready is
// non-nil the bound listen address is sent on it once the server
// accepts connections — tests pass -addr 127.0.0.1:0 and read the
// real port from here.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("acdserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "HTTP listen address")
	dir := fs.String("journal", "", "journal directory for durable state (empty = volatile, in-memory only)")
	tau := fs.Float64("tau", pruning.DefaultTau, "candidate threshold for the incremental blocking index")
	eps := fs.Float64("eps", core.DefaultEpsilon, "PC-Pivot wasted-pair budget")
	x := fs.Int("x", refine.DefaultX, "refinement budget divisor (T = N_m/x)")
	seed := fs.Int64("seed", 1, "random seed for resolve permutations")
	ckpt := fs.Int("checkpoint-every", 256, "journal events between automatic checkpoints (0 disables)")
	obsFlags := obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	rec := obs.New()
	if obsFlags.Enabled() {
		if err := obsFlags.Activate(rec, stderr); err != nil {
			fmt.Fprintf(stderr, "acdserve: %v\n", err)
			return 2
		}
		rec.PublishExpvar("acdserve")
		defer obsFlags.Finish(stderr)
	}

	cfg := incremental.Config{
		Tau: *tau, TauSet: true,
		Epsilon: *eps, RefineX: *x,
		Seed: *seed, Obs: rec,
		CheckpointEvery: *ckpt,
	}
	var eng *incremental.Engine
	if *dir != "" {
		dfs, err := journal.NewDirFS(*dir)
		if err != nil {
			fmt.Fprintf(stderr, "acdserve: %v\n", err)
			return 1
		}
		eng, err = incremental.Open(cfg, dfs)
		if err != nil {
			fmt.Fprintf(stderr, "acdserve: recovering journal: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "acdserve: journal %s: recovered %d records, round %d\n",
			*dir, eng.Len(), eng.Round())
	} else {
		eng = incremental.New(cfg)
	}

	srv := &server{eng: eng}
	mux := http.NewServeMux()
	mux.HandleFunc("/records", srv.handleRecords)
	mux.HandleFunc("/answers", srv.handleAnswers)
	mux.HandleFunc("/resolve", srv.handleResolve)
	mux.HandleFunc("/clusters", srv.handleClusters)
	mux.HandleFunc("/healthz", srv.handleHealthz)
	mux.Handle("/metrics", rec)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "acdserve: %v\n", err)
		eng.Close()
		return 1
	}
	httpSrv := &http.Server{Handler: mux}
	fmt.Fprintf(stderr, "acdserve: listening on http://%s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	status := 0
	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "acdserve: %v\n", err)
		status = 1
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(stderr, "acdserve: shutdown: %v\n", err)
			status = 1
		}
		cancel()
		<-serveErr // Serve has returned http.ErrServerClosed
	}

	// Drained: checkpoint so the next start replays a compact journal,
	// then release it.
	srv.mu.Lock()
	if err := eng.Checkpoint(); err != nil {
		fmt.Fprintf(stderr, "acdserve: final checkpoint: %v\n", err)
		status = 1
	}
	if err := eng.Close(); err != nil {
		fmt.Fprintf(stderr, "acdserve: closing journal: %v\n", err)
		status = 1
	}
	srv.mu.Unlock()
	fmt.Fprintf(stdout, "acdserve: stopped after %d records, round %d\n", eng.Len(), eng.Round())
	return status
}

// server wires the HTTP handlers to one engine. The engine is not
// concurrency-safe, so a mutex serializes every touch; resolve passes
// hold it for their full duration and other requests queue behind them
// (cancel a stuck resolve by cancelling its request).
type server struct {
	mu  sync.Mutex
	eng *incremental.Engine
}

// recordPayload is one record in a POST /records body.
type recordPayload struct {
	Fields map[string]string `json:"fields"`
	Entity string            `json:"entity,omitempty"`
}

// answerPayload is one crowd answer in a POST /answers body.
type answerPayload struct {
	Lo     int     `json:"lo"`
	Hi     int     `json:"hi"`
	FC     float64 `json:"fc"`
	Source string  `json:"source,omitempty"`
}

func (s *server) handleRecords(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var body struct {
		Records []recordPayload `json:"records"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(body.Records) == 0 {
		writeError(w, http.StatusBadRequest, "no records")
		return
	}
	recs := make([]incremental.Record, len(body.Records))
	for i, p := range body.Records {
		recs[i] = incremental.Record{Fields: p.Fields, Entity: p.Entity}
	}
	s.mu.Lock()
	ids, err := s.eng.Add(recs...)
	pending := s.eng.PendingPairs()
	s.mu.Unlock()
	if err != nil {
		// A mid-batch journal failure leaves a durable prefix applied;
		// tell the client exactly which records made it in.
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error": err.Error(), "committed_ids": ids,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ids": ids, "pending_pairs": pending})
}

func (s *server) handleAnswers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var body struct {
		Answers []answerPayload `json:"answers"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Validate the whole batch up front: a 400 means nothing was applied.
	for i, a := range body.Answers {
		if err := s.eng.ValidateAnswer(a.Lo, a.Hi, a.FC); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("answer %d: %v", i, err))
			return
		}
	}
	accepted := 0
	for i, a := range body.Answers {
		if err := s.eng.AddAnswer(a.Lo, a.Hi, a.FC, a.Source); err != nil {
			// Validation passed, so this is a journal failure; the first
			// `accepted` answers are already durable.
			writeJSON(w, http.StatusInternalServerError, map[string]any{
				"error": fmt.Sprintf("answer %d: %v", i, err), "committed": accepted,
			})
			return
		}
		accepted++
	}
	writeJSON(w, http.StatusOK, map[string]any{"accepted": accepted, "known": s.eng.AnswerCount()})
}

func (s *server) handleResolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	s.mu.Lock()
	st, err := s.eng.Resolve(r.Context())
	s.mu.Unlock()
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusRequestTimeout
		}
		writeError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *server) handleClusters(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	resp := map[string]any{
		"round":          s.eng.Round(),
		"resolved_up_to": s.eng.ResolvedUpTo(),
		"records":        s.eng.Len(),
		"clusters":       s.eng.Clusters(),
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	resp := map[string]any{
		"status":  "ok",
		"records": s.eng.Len(),
		"round":   s.eng.Round(),
		"pending": s.eng.PendingPairs(),
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// writeJSON writes v as the JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck — response is best-effort past this point
}

// writeError writes a JSON error envelope.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
