package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"acd/internal/testutil"
)

// testServer runs the real run() seam on an ephemeral port and gives
// the test its base URL plus a graceful-stop handle.
type testServer struct {
	base string
	out  *bytes.Buffer
	errb *bytes.Buffer
	stop func() int
}

func startServer(t *testing.T, extra ...string) *testServer {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan int, 1)
	var out, errb bytes.Buffer
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	go func() { done <- run(ctx, args, &out, &errb, ready) }()
	select {
	case addr := <-ready:
		ts := &testServer{base: "http://" + addr, out: &out, errb: &errb}
		ts.stop = func() int {
			cancel()
			select {
			case code := <-done:
				return code
			case <-time.After(15 * time.Second):
				t.Fatalf("server did not shut down; stderr:\n%s", errb.String())
				return -1
			}
		}
		return ts
	case code := <-done:
		cancel()
		t.Fatalf("server exited early with %d; stderr:\n%s", code, errb.String())
	case <-time.After(15 * time.Second):
		cancel()
		t.Fatalf("server never became ready; stderr:\n%s", errb.String())
	}
	return nil
}

// call makes one request and decodes the JSON response body.
func call(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	return resp.StatusCode, m
}

func recordsBody(texts ...string) string {
	var recs []string
	for _, s := range texts {
		recs = append(recs, fmt.Sprintf(`{"fields":{"text":%q}}`, s))
	}
	return `{"records":[` + strings.Join(recs, ",") + `]}`
}

// TestServeRestart is the end-to-end smoke, run at several shard
// counts: a journaled server ingests records and answers, resolves, is
// stopped gracefully, and a second server over the same journal
// directory recovers the identical clustering and keeps working. Also
// checks no goroutines leak across the full lifecycle.
func TestServeRestart(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("%dshards", shards), func(t *testing.T) {
			testServeRestart(t, shards)
		})
	}
}

func testServeRestart(t *testing.T, shards int) {
	baseline := testutil.Baseline()
	dir := t.TempDir()

	ts := startServer(t, "-journal", dir, "-seed", "3", "-checkpoint-every", "0", "-shards", fmt.Sprint(shards))
	code, m := call(t, http.MethodPost, ts.base+"/records", recordsBody(
		"golden dragon palace chinese broadway",
		"golden dragon palace chinese broadway ave",
		"chez olive bistro french sunset blvd",
		"chez olive bistro french sunset",
		"harbor seafood grill market st",
	))
	if code != http.StatusOK || len(m["ids"].([]any)) != 5 {
		t.Fatalf("POST /records: %d %v", code, m)
	}
	if code, m = call(t, http.MethodPost, ts.base+"/answers", `{"answers":[{"lo":0,"hi":1,"fc":1,"source":"test"}]}`); code != http.StatusOK || m["accepted"].(float64) != 1 {
		t.Fatalf("POST /answers: %d %v", code, m)
	}
	if code, m = call(t, http.MethodPost, ts.base+"/resolve", ""); code != http.StatusOK || m["Round"].(float64) != 1 {
		t.Fatalf("POST /resolve: %d %v", code, m)
	}
	code, before := call(t, http.MethodGet, ts.base+"/clusters", "")
	if code != http.StatusOK || before["records"].(float64) != 5 || before["round"].(float64) != 1 {
		t.Fatalf("GET /clusters: %d %v", code, before)
	}

	// Error paths while we're here.
	if code, _ = call(t, http.MethodGet, ts.base+"/records", ""); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /records = %d, want 405", code)
	}
	if code, _ = call(t, http.MethodPost, ts.base+"/answers", `{"answers":[{"lo":9,"hi":4,"fc":2}]}`); code != http.StatusBadRequest {
		t.Errorf("bad answer = %d, want 400", code)
	}
	// A batch with a valid entry followed by an invalid one is rejected
	// whole: the valid prefix must NOT be applied.
	_, m = call(t, http.MethodPost, ts.base+"/answers", `{"answers":[]}`)
	knownBefore := m["known"].(float64)
	if code, _ = call(t, http.MethodPost, ts.base+"/answers", `{"answers":[{"lo":0,"hi":4,"fc":1},{"lo":9,"hi":4,"fc":2}]}`); code != http.StatusBadRequest {
		t.Errorf("mixed answer batch = %d, want 400", code)
	}
	if _, m = call(t, http.MethodPost, ts.base+"/answers", `{"answers":[]}`); m["known"].(float64) != knownBefore {
		t.Errorf("mixed batch partially applied: known %v -> %v", knownBefore, m["known"])
	}
	if code, m = call(t, http.MethodGet, ts.base+"/healthz", ""); code != http.StatusOK || m["status"] != "ok" {
		t.Errorf("GET /healthz: %d %v", code, m)
	}
	if code, _ = call(t, http.MethodGet, ts.base+"/metrics", ""); code != http.StatusOK {
		t.Errorf("GET /metrics = %d", code)
	}
	if ec := ts.stop(); ec != 0 {
		t.Fatalf("first server exit code %d; stderr:\n%s", ec, ts.errb.String())
	}

	// Restart over the same journal without -shards: the pinned count
	// is adopted and state survives byte-for-byte.
	ts2 := startServer(t, "-journal", dir, "-seed", "3", "-checkpoint-every", "0")
	code, after := call(t, http.MethodGet, ts2.base+"/clusters", "")
	if code != http.StatusOK || !reflect.DeepEqual(after, before) {
		t.Fatalf("clusters after restart:\n got %v\nwant %v", after, before)
	}
	if !strings.Contains(ts2.errb.String(), "recovered 5 records, round 1") {
		t.Errorf("restart did not report recovery; stderr:\n%s", ts2.errb.String())
	}

	// The recovered engine keeps working: one more near-duplicate of
	// record 4 merges into its cluster in round 2.
	if code, m = call(t, http.MethodPost, ts2.base+"/records", recordsBody("harbor seafood grill market st s")); code != http.StatusOK {
		t.Fatalf("POST /records after restart: %d %v", code, m)
	}
	if code, m = call(t, http.MethodPost, ts2.base+"/resolve", ""); code != http.StatusOK || m["Round"].(float64) != 2 {
		t.Fatalf("POST /resolve after restart: %d %v", code, m)
	}
	code, m = call(t, http.MethodGet, ts2.base+"/clusters", "")
	if code != http.StatusOK {
		t.Fatalf("GET /clusters: %d", code)
	}
	found := false
	for _, c := range m["clusters"].([]any) {
		if reflect.DeepEqual(c, []any{4.0, 5.0}) {
			found = true
		}
	}
	if !found {
		t.Errorf("expected cluster [4 5] after wave 2, got %v", m["clusters"])
	}
	if ec := ts2.stop(); ec != 0 {
		t.Fatalf("second server exit code %d; stderr:\n%s", ec, ts2.errb.String())
	}

	// Everything the two servers started must be gone.
	testutil.CheckGoroutines(t, baseline)
}

// copyTree copies a journal directory tree (one level of
// subdirectories, as the sharded layout uses) byte by byte. Copying
// while a server is appending yields some prefix of each file —
// exactly the disk image a hard kill at that moment could leave.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		from, to := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			if err := os.MkdirAll(to, 0o755); err != nil {
				t.Fatal(err)
			}
			copyTree(t, from, to)
			continue
		}
		b, err := os.ReadFile(from)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(to, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRestartUnderLoad snapshots the journal directory while writers
// are streaming records into a 3-shard server — the moral equivalent of
// kill -9 between a record's ack and the next checkpoint — and starts a
// second server from the copy. Every record acknowledged before the
// copy began must be recovered (acks follow the WAL fsync), the
// recovered clustering must be a consistent partition, and the
// recovered server must keep working.
func TestRestartUnderLoad(t *testing.T) {
	dir, dir2 := t.TempDir(), t.TempDir()
	ts := startServer(t, "-journal", dir, "-seed", "3", "-checkpoint-every", "0", "-shards", "3")

	code, m := call(t, http.MethodPost, ts.base+"/records", recordsBody(
		"golden dragon palace chinese broadway",
		"golden dragon palace chinese broadway ave",
		"chez olive bistro french sunset blvd",
		"chez olive bistro french sunset",
		"harbor seafood grill market st",
	))
	if code != http.StatusOK || len(m["ids"].([]any)) != 5 {
		t.Fatalf("POST /records: %d %v", code, m)
	}
	if code, m = call(t, http.MethodPost, ts.base+"/resolve", ""); code != http.StatusOK {
		t.Fatalf("POST /resolve: %d %v", code, m)
	}

	// Writers stream records (records only — record appends are the one
	// event class with no cross-journal dependencies, so any per-shard
	// prefix combination the copy catches is a reachable crash image).
	var acked atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				code, m := call(t, http.MethodPost, ts.base+"/records",
					recordsBody(fmt.Sprintf("stream writer %d record %d unique tokens", w, i)))
				if code != http.StatusOK {
					t.Errorf("streamed POST /records: %d %v", code, m)
					return
				}
				acked.Add(1)
			}
		}(w)
	}

	for acked.Load() < 20 { // let the stream actually overlap the copy
		time.Sleep(time.Millisecond)
	}
	floor := 5 + int(acked.Load())
	copyTree(t, dir, dir2)
	close(stop)
	wg.Wait()

	// The copy is a crash image: bring it up while the original is
	// still running and check the durable floor.
	ts2 := startServer(t, "-journal", dir2, "-seed", "3", "-checkpoint-every", "0")
	if !strings.Contains(ts2.errb.String(), "(3 shards): recovered") {
		t.Errorf("recovery did not report the sharded layout; stderr:\n%s", ts2.errb.String())
	}
	code, m = call(t, http.MethodGet, ts2.base+"/clusters", "")
	if code != http.StatusOK {
		t.Fatalf("GET /clusters: %d", code)
	}
	records := int(m["records"].(float64))
	if records < floor {
		t.Errorf("recovered %d records, but %d were acked before the copy", records, floor)
	}
	members := 0
	for _, c := range m["clusters"].([]any) {
		members += len(c.([]any))
	}
	if members != records {
		t.Errorf("recovered clustering lists %d members over %d records", members, records)
	}

	// The recovered server keeps working.
	if code, m = call(t, http.MethodPost, ts2.base+"/records", recordsBody("post crash record")); code != http.StatusOK {
		t.Fatalf("POST /records after crash recovery: %d %v", code, m)
	}
	if code, m = call(t, http.MethodPost, ts2.base+"/resolve", ""); code != http.StatusOK {
		t.Fatalf("POST /resolve after crash recovery: %d %v", code, m)
	}
	if ec := ts2.stop(); ec != 0 {
		t.Fatalf("recovered server exit code %d; stderr:\n%s", ec, ts2.errb.String())
	}
	if ec := ts.stop(); ec != 0 {
		t.Fatalf("original server exit code %d; stderr:\n%s", ec, ts.errb.String())
	}
}

// TestReshardRefused: a journal directory pins its shard count; asking
// for a different one must fail fast instead of scrambling the layout.
func TestReshardRefused(t *testing.T) {
	dir := t.TempDir()
	ts := startServer(t, "-journal", dir, "-shards", "2")
	if ec := ts.stop(); ec != 0 {
		t.Fatalf("exit code %d; stderr:\n%s", ec, ts.errb.String())
	}
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-journal", dir, "-shards", "3"}, &out, &errb, nil); code != 1 {
		t.Fatalf("re-shard exit = %d, want 1; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "re-sharding") {
		t.Errorf("re-shard error not surfaced; stderr:\n%s", errb.String())
	}
}

// TestFollowAndFailover: the -follow flag end to end. A journaled
// leader streams to a follower started with -follow/-replica-id; the
// follower serves stale-ok reads with the lag header and refuses
// writes; after the leader dies, POST /replica/promote with the old
// journal directory turns the follower into a leader holding every
// acknowledged record — and it takes writes.
func TestFollowAndFailover(t *testing.T) {
	baseline := testutil.Baseline()
	leaderDir := filepath.Join(t.TempDir(), "leader")
	leader := startServer(t, "-journal", leaderDir, "-shards", "2", "-seed", "3")
	follower := startServer(t,
		"-follow", leader.base+"/replica/stream",
		"-replica-id", "dr-site",
		"-journal", filepath.Join(t.TempDir(), "standby"),
		"-seed", "3")

	code, m := call(t, http.MethodPost, leader.base+"/records", recordsBody(
		"golden dragon palace chinese broadway",
		"golden dragon palace chinese broadway ave",
		"harbor seafood grill market st",
	))
	if code != http.StatusOK || len(m["ids"].([]any)) != 3 {
		t.Fatalf("leader ingest: %d %v", code, m)
	}
	if code, m = call(t, http.MethodPost, leader.base+"/resolve", ""); code != http.StatusOK {
		t.Fatalf("leader resolve: %d %v", code, m)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		code, m = call(t, http.MethodGet, follower.base+"/replica/status", "")
		if code == http.StatusOK && m["mode"] == "follower" && m["lag"] == float64(0) {
			if code, cm := call(t, http.MethodGet, follower.base+"/clusters", ""); code == http.StatusOK && cm["records"] == float64(3) {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %v", m)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if m["replica_id"] != "dr-site" {
		t.Errorf("replica_id %v", m["replica_id"])
	}
	if code, m = call(t, http.MethodPost, follower.base+"/records", recordsBody("x")); code != http.StatusServiceUnavailable {
		t.Errorf("follower write: %d %v, want 503", code, m)
	}

	if ec := leader.stop(); ec != 0 {
		t.Fatalf("leader exit %d; stderr:\n%s", ec, leader.errb.String())
	}
	code, m = call(t, http.MethodPost, follower.base+"/replica/promote",
		fmt.Sprintf(`{"source_journal":%q}`, leaderDir))
	if code != http.StatusOK || m["mode"] != "leader" || m["records"] != float64(3) {
		t.Fatalf("promote: %d %v", code, m)
	}
	if code, m = call(t, http.MethodPost, follower.base+"/records", recordsBody("chez olive bistro french sunset")); code != http.StatusOK {
		t.Fatalf("promoted write: %d %v", code, m)
	}
	if code, m = call(t, http.MethodGet, follower.base+"/healthz", ""); code != http.StatusOK || m["records"] != float64(4) || m["status"] != "ok" {
		t.Fatalf("promoted healthz: %d %v", code, m)
	}

	if ec := follower.stop(); ec != 0 {
		t.Fatalf("follower exit %d; stderr:\n%s", ec, follower.errb.String())
	}
	testutil.CheckGoroutines(t, baseline)
}

// TestBadFlags: unknown flags exit 2 without touching the network.
func TestBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-bogus"}, &out, &errb, nil); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr:\n%s", code, errb.String())
	}
}
