package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"
)

// testServer runs the real run() seam on an ephemeral port and gives
// the test its base URL plus a graceful-stop handle.
type testServer struct {
	base string
	out  *bytes.Buffer
	errb *bytes.Buffer
	stop func() int
}

func startServer(t *testing.T, extra ...string) *testServer {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan int, 1)
	var out, errb bytes.Buffer
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	go func() { done <- run(ctx, args, &out, &errb, ready) }()
	select {
	case addr := <-ready:
		ts := &testServer{base: "http://" + addr, out: &out, errb: &errb}
		ts.stop = func() int {
			cancel()
			select {
			case code := <-done:
				return code
			case <-time.After(15 * time.Second):
				t.Fatalf("server did not shut down; stderr:\n%s", errb.String())
				return -1
			}
		}
		return ts
	case code := <-done:
		cancel()
		t.Fatalf("server exited early with %d; stderr:\n%s", code, errb.String())
	case <-time.After(15 * time.Second):
		cancel()
		t.Fatalf("server never became ready; stderr:\n%s", errb.String())
	}
	return nil
}

// call makes one request and decodes the JSON response body.
func call(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	return resp.StatusCode, m
}

func recordsBody(texts ...string) string {
	var recs []string
	for _, s := range texts {
		recs = append(recs, fmt.Sprintf(`{"fields":{"text":%q}}`, s))
	}
	return `{"records":[` + strings.Join(recs, ",") + `]}`
}

// TestServeRestart is the end-to-end smoke: a journaled server ingests
// records and answers, resolves, is stopped gracefully, and a second
// server over the same journal directory recovers the identical
// clustering and keeps working. Also checks no goroutines leak across
// the full lifecycle.
func TestServeRestart(t *testing.T) {
	runtime.GC()
	baseline := runtime.NumGoroutine()
	dir := t.TempDir()

	ts := startServer(t, "-journal", dir, "-seed", "3", "-checkpoint-every", "0")
	code, m := call(t, http.MethodPost, ts.base+"/records", recordsBody(
		"golden dragon palace chinese broadway",
		"golden dragon palace chinese broadway ave",
		"chez olive bistro french sunset blvd",
		"chez olive bistro french sunset",
		"harbor seafood grill market st",
	))
	if code != http.StatusOK || len(m["ids"].([]any)) != 5 {
		t.Fatalf("POST /records: %d %v", code, m)
	}
	if code, m = call(t, http.MethodPost, ts.base+"/answers", `{"answers":[{"lo":0,"hi":1,"fc":1,"source":"test"}]}`); code != http.StatusOK || m["accepted"].(float64) != 1 {
		t.Fatalf("POST /answers: %d %v", code, m)
	}
	if code, m = call(t, http.MethodPost, ts.base+"/resolve", ""); code != http.StatusOK || m["Round"].(float64) != 1 {
		t.Fatalf("POST /resolve: %d %v", code, m)
	}
	code, before := call(t, http.MethodGet, ts.base+"/clusters", "")
	if code != http.StatusOK || before["records"].(float64) != 5 || before["round"].(float64) != 1 {
		t.Fatalf("GET /clusters: %d %v", code, before)
	}

	// Error paths while we're here.
	if code, _ = call(t, http.MethodGet, ts.base+"/records", ""); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /records = %d, want 405", code)
	}
	if code, _ = call(t, http.MethodPost, ts.base+"/answers", `{"answers":[{"lo":9,"hi":4,"fc":2}]}`); code != http.StatusBadRequest {
		t.Errorf("bad answer = %d, want 400", code)
	}
	// A batch with a valid entry followed by an invalid one is rejected
	// whole: the valid prefix must NOT be applied.
	_, m = call(t, http.MethodPost, ts.base+"/answers", `{"answers":[]}`)
	knownBefore := m["known"].(float64)
	if code, _ = call(t, http.MethodPost, ts.base+"/answers", `{"answers":[{"lo":0,"hi":4,"fc":1},{"lo":9,"hi":4,"fc":2}]}`); code != http.StatusBadRequest {
		t.Errorf("mixed answer batch = %d, want 400", code)
	}
	if _, m = call(t, http.MethodPost, ts.base+"/answers", `{"answers":[]}`); m["known"].(float64) != knownBefore {
		t.Errorf("mixed batch partially applied: known %v -> %v", knownBefore, m["known"])
	}
	if code, m = call(t, http.MethodGet, ts.base+"/healthz", ""); code != http.StatusOK || m["status"] != "ok" {
		t.Errorf("GET /healthz: %d %v", code, m)
	}
	if code, _ = call(t, http.MethodGet, ts.base+"/metrics", ""); code != http.StatusOK {
		t.Errorf("GET /metrics = %d", code)
	}
	if ec := ts.stop(); ec != 0 {
		t.Fatalf("first server exit code %d; stderr:\n%s", ec, ts.errb.String())
	}

	// Restart over the same journal: state survives byte-for-byte.
	ts2 := startServer(t, "-journal", dir, "-seed", "3", "-checkpoint-every", "0")
	code, after := call(t, http.MethodGet, ts2.base+"/clusters", "")
	if code != http.StatusOK || !reflect.DeepEqual(after, before) {
		t.Fatalf("clusters after restart:\n got %v\nwant %v", after, before)
	}
	if !strings.Contains(ts2.errb.String(), "recovered 5 records, round 1") {
		t.Errorf("restart did not report recovery; stderr:\n%s", ts2.errb.String())
	}

	// The recovered engine keeps working: one more near-duplicate of
	// record 4 merges into its cluster in round 2.
	if code, m = call(t, http.MethodPost, ts2.base+"/records", recordsBody("harbor seafood grill market st s")); code != http.StatusOK {
		t.Fatalf("POST /records after restart: %d %v", code, m)
	}
	if code, m = call(t, http.MethodPost, ts2.base+"/resolve", ""); code != http.StatusOK || m["Round"].(float64) != 2 {
		t.Fatalf("POST /resolve after restart: %d %v", code, m)
	}
	code, m = call(t, http.MethodGet, ts2.base+"/clusters", "")
	if code != http.StatusOK {
		t.Fatalf("GET /clusters: %d", code)
	}
	found := false
	for _, c := range m["clusters"].([]any) {
		if reflect.DeepEqual(c, []any{4.0, 5.0}) {
			found = true
		}
	}
	if !found {
		t.Errorf("expected cluster [4 5] after wave 2, got %v", m["clusters"])
	}
	if ec := ts2.stop(); ec != 0 {
		t.Fatalf("second server exit code %d; stderr:\n%s", ec, ts2.errb.String())
	}

	// Everything the two servers started must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Errorf("goroutine leak: %d running, baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
}

// TestBadFlags: unknown flags exit 2 without touching the network.
func TestBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-bogus"}, &out, &errb, nil); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr:\n%s", code, errb.String())
	}
}
