// Command datagen generates the synthetic benchmark datasets (Paper,
// Restaurant, Product) as CSV, for inspection or for feeding into
// acddedup.
//
// Usage:
//
//	datagen -dataset Paper [-seed N] [-out paper.csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"acd/internal/dataset"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable seam: it parses args, writes the dataset CSV to
// stdout (or -out), and returns the process exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("dataset", "Paper", "dataset to generate: Paper, Restaurant, Product")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	d, err := dataset.ByName(*name, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "datagen: %v\n", err)
		return 2
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "datagen: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteCSV(w, d); err != nil {
		fmt.Fprintf(stderr, "datagen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "datagen: wrote %d records (%d entities, %d duplicate pairs)\n",
		len(d.Records), d.NumEntities, d.DuplicatePairs())
	return 0
}
