// Command datagen generates the synthetic benchmark datasets (Paper,
// Restaurant, Product) as CSV, for inspection or for feeding into
// acddedup.
//
// Usage:
//
//	datagen -dataset Paper [-seed N] [-out paper.csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"acd/internal/dataset"
)

func main() {
	name := flag.String("dataset", "Paper", "dataset to generate: Paper, Restaurant, Product")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	d, err := dataset.ByName(*name, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteCSV(w, d); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d records (%d entities, %d duplicate pairs)\n",
		len(d.Records), d.NumEntities, d.DuplicatePairs())
}
