package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunStdout smoke-tests CSV generation to stdout: exit 0, a header
// row, and one row per record.
func TestRunStdout(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-dataset", "Restaurant", "-seed", "1"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 859 { // header + 858 Restaurant records
		t.Errorf("output has %d lines, want 859", len(lines))
	}
	if !strings.HasPrefix(lines[0], "id,entity") {
		t.Errorf("missing CSV header, got %q", lines[0])
	}
	if !strings.Contains(errb.String(), "858 records") {
		t.Errorf("stderr summary missing record count: %s", errb.String())
	}
}

// TestRunOutFile smoke-tests the -out path and checks the file parses
// back through acddedup's reader (round-trip handled in dataset tests;
// here just non-empty).
func TestRunOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	var out, errb bytes.Buffer
	code := run([]string{"-dataset", "Product", "-out", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("-out should leave stdout empty, got %d bytes", out.Len())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("output file is empty")
	}
}

func TestRunUnknownDataset(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-dataset", "Nope"}, &out, &errb); code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	if errb.Len() == 0 {
		t.Error("no diagnostics for unknown dataset")
	}
}
