module acd

go 1.22
