package shard

import (
	"fmt"

	"acd/internal/incremental"
	"acd/internal/journal"
	"acd/internal/record"
)

// recover rebuilds the group from a sharded journal layout: each shard
// engine recovers from its own journal, the router journal supplies
// cross-shard answers and the authoritative global resolve history,
// the global id maps are re-derived from the GIDs stored in shard
// journals, and the probe index + handoff queue are recomputed from
// the records themselves (they are pure functions of the record
// stream, so they are never journaled). Shards that crashed between
// the router's resolve commit and their own are repaired from the
// router's record.
func (g *Group) recover(layout *journal.Layout) error {
	for i, s := range g.shards {
		eng, err := incremental.Open(g.cfg.Engine, layout.ShardFS[i])
		if err != nil {
			return fmt.Errorf("shard: recovering shard %d: %w", i, err)
		}
		s.eng = eng
	}

	// Re-derive the global id maps. The stored assignment is
	// authoritative — it must survive even if the routing hash ever
	// changes — and within a shard gids must ascend, because arrival
	// order is what keeps local order and gid order aligned.
	type loc struct{ sid, lid int }
	byGID := make(map[int]loc)
	maxGID := -1
	for _, s := range g.shards {
		prev := -1
		for l := 0; l < s.eng.Len(); l++ {
			gid := s.eng.Record(l).GID
			if g.n == 1 && layout.Legacy {
				gid = l // pre-sharding journals carry no gids
			}
			if gid <= prev {
				return fmt.Errorf("shard: shard %d record %d has gid %d, not above predecessor %d", s.id, l, gid, prev)
			}
			if other, dup := byGID[gid]; dup {
				return fmt.Errorf("shard: gid %d claimed by shard %d record %d and shard %d record %d", gid, other.sid, other.lid, s.id, l)
			}
			byGID[gid] = loc{sid: s.id, lid: l}
			prev = gid
			if gid > maxGID {
				maxGID = gid
			}
		}
	}

	// Router journal: cross-shard answers and the global resolve
	// history. Single-shard groups have neither — the one engine's own
	// journal is the complete history.
	var globalClusters [][]int
	if g.n > 1 {
		store, recovered, err := journal.Open(layout.RouterFS)
		if err != nil {
			return fmt.Errorf("shard: recovering router journal: %w", err)
		}
		g.router = store
		if cp := recovered.Checkpoint; cp != nil {
			if len(cp.Records) != 0 {
				return fmt.Errorf("shard: router checkpoint holds %d records; the router owns none", len(cp.Records))
			}
			g.round = cp.Round
			g.resolvedUpTo = cp.ResolvedUpTo
			globalClusters = cp.Clusters
			for _, a := range cp.Answers {
				p := record.MakePair(record.ID(a.Lo), record.ID(a.Hi))
				if err := g.cacheCrossAnswerLocked(p, a.FC, a.Source, false); err != nil {
					return err
				}
			}
		}
		for _, ev := range recovered.Events {
			switch ev.Type {
			case journal.EventAnswer:
				if ev.Answer == nil {
					return fmt.Errorf("shard: router event %d: answer without payload", ev.Seq)
				}
				p := record.MakePair(record.ID(ev.Answer.Lo), record.ID(ev.Answer.Hi))
				if err := g.cacheCrossAnswerLocked(p, ev.Answer.FC, ev.Answer.Source, false); err != nil {
					return err
				}
			case journal.EventResolve:
				if ev.Resolve == nil {
					return fmt.Errorf("shard: router event %d: resolve without payload", ev.Seq)
				}
				g.round = ev.Resolve.Round
				g.resolvedUpTo = ev.Resolve.ResolvedUpTo
				globalClusters = ev.Resolve.Clusters
			default:
				return fmt.Errorf("shard: router event %d: unexpected type %q", ev.Seq, ev.Type)
			}
		}
	}

	// The id space covers every stored gid and everything the resolve
	// history claims to have covered; ids in neither are permanent
	// holes (records that were routed but whose WAL append never
	// became durable — they were never acknowledged).
	g.nextGID = maxGID + 1
	if g.resolvedUpTo > g.nextGID {
		g.nextGID = g.resolvedUpTo
	}
	g.home = make([]int, g.nextGID)
	g.local = make([]int, g.nextGID)
	for gid := range g.local {
		g.local[gid] = -1
	}
	for gid, at := range byGID {
		g.home[gid] = at.sid
		g.local[gid] = at.lid
	}
	for _, s := range g.shards {
		g.gids[s.id] = make([]int, s.eng.Len())
	}
	for gid, at := range byGID {
		g.gids[at.sid][at.lid] = gid
	}

	if g.n == 1 {
		s := g.shards[0]
		g.round = s.eng.Round()
		if s.eng.ResolvedUpTo() < s.eng.Len() {
			g.resolvedUpTo = g.gids[0][s.eng.ResolvedUpTo()]
		} else {
			g.resolvedUpTo = g.nextGID
		}
		g.clusters = forestOf(g.liftClusters(s.eng.Clusters(), 0), g.nextGID)
		return nil
	}

	for _, set := range globalClusters {
		for _, gid := range set {
			if gid < 0 || gid >= g.nextGID {
				return fmt.Errorf("shard: router clusters reference gid %d outside universe [0,%d)", gid, g.nextGID)
			}
		}
	}
	g.clusters = forestOf(globalClusters, g.nextGID)

	// Rebuild the probe index and handoff queue by replaying the
	// record stream in gid order; holes contribute an empty text (no
	// tokens, no pairs), which keeps the index ids aligned with gids.
	for gid := 0; gid < g.nextGID; gid++ {
		text := ""
		if g.local[gid] >= 0 {
			data := g.shards[g.home[gid]].eng.Record(g.local[gid])
			text = record.New(0, data.Fields).Text()
		}
		for _, sp := range g.probe.Add(text) {
			lo, hi := int(sp.Pair.Lo), int(sp.Pair.Hi)
			if g.local[lo] < 0 || g.local[hi] < 0 || g.home[lo] == g.home[hi] {
				continue
			}
			if hi >= g.resolvedUpTo {
				g.handoff = append(g.handoff, sp)
			}
		}
	}

	// Repair shards that lost the fan-out of the last resolve: the
	// router's record is authoritative, so re-commit its restriction
	// to the lagging shard's journal. A shard ahead of the router is
	// impossible under the commit order (router first) — it means the
	// journals do not belong together.
	for _, s := range g.shards {
		switch {
		case s.eng.Round() > g.round:
			return fmt.Errorf("shard: shard %d at round %d is ahead of the router (round %d)", s.id, s.eng.Round(), g.round)
		case s.eng.Round() < g.round:
			if err := s.eng.ApplyResolve(g.round, g.restrictClusters(globalClusters, s.id)); err != nil {
				return fmt.Errorf("shard: repairing shard %d to round %d: %w", s.id, g.round, err)
			}
		}
	}
	return nil
}
