// Package shard partitions the online dedup subsystem into N
// independent shards routed over the blocking-token space, while
// provably asking the crowd the same questions as a single engine.
//
// Each shard owns an incremental.Engine with its own journal directory,
// fed by a single-owner goroutine so writes to different shards never
// contend — the expensive part of a write (the WAL fsync) runs in
// parallel across shards. A record's home shard is the owner of its
// minimum normalized token, so routing is deterministic and derivable
// from the record alone.
//
// Same-shard candidate pairs are discovered by each shard's own
// blocking index. Cross-shard pairs cannot be: no shard sees both
// records. The router therefore keeps a global probe index over every
// record (in global-id order) and diverts the cross-shard pairs it
// emits into a handoff queue, so the union of per-shard candidates and
// the handoff queue is exactly the candidate set a single engine would
// have produced — no candidate pair is lost to partitioning.
//
// Resolve passes are global: PC-Pivot's Equation-4 batch boundaries
// couple candidate components through the shared wasted-pair budget, so
// independent per-shard resolves could never reproduce the single
// engine's question sequence. The router instead gathers every shard's
// pending pairs and cached answers into one incremental.ResolveState
// and runs the exact same incremental.RunResolve the single engine
// runs — equivalence by construction, gated by the shard-golden test.
// The resolve effect is committed router-journal-first, then fanned out
// to each shard's journal; recovery repairs any shard that crashed
// between the two.
//
// Reads never take a write lock: every mutation publishes an immutable
// Snapshot behind an atomic pointer, and GET /clusters-style readers
// load it wait-free.
package shard
