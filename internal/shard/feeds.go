package shard

import "acd/internal/journal"

// Feed describes one journal a journaled group exposes for
// replication: the name followers file it under, a read-only view of
// its directory, and the durable watermark bounding what a streamer
// may ship.
type Feed struct {
	// Name is the journal's directory name within the layout
	// (shard-XXX, or the router's).
	Name string
	// FS is the journal's directory. Streamers only read from it.
	FS journal.FS
	// Durable reports the journal's current durable sequence watermark.
	// It is safe to call from any goroutine.
	Durable func() int64
}

// Feeds lists every journal in the group's layout — one per shard plus
// the router — for a replication streamer. Nil for volatile groups:
// with no durable log there is nothing to ship.
func (g *Group) Feeds() []Feed {
	if g.layout == nil {
		return nil
	}
	feeds := make([]Feed, 0, g.n+1)
	for i, s := range g.shards {
		feeds = append(feeds, Feed{
			Name:    journal.ShardDirName(i),
			FS:      g.layout.ShardFS[i],
			Durable: s.eng.DurableSeq,
		})
	}
	feeds = append(feeds, Feed{
		Name:    journal.RouterDir,
		FS:      g.layout.RouterFS,
		Durable: g.routerDurable,
	})
	return feeds
}

// routerDurable reads the router journal's durable watermark (0 for
// single-shard groups, which keep no router journal).
func (g *Group) routerDurable() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.router == nil {
		return 0
	}
	return g.router.DurableSeq()
}

// Epoch returns the replication epoch stamped in the layout's
// meta.json when the group was opened (0 for volatile groups and
// never-fenced layouts).
func (g *Group) Epoch() int64 {
	if g.layout == nil {
		return 0
	}
	return g.layout.Epoch
}
