package shard

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"acd/internal/crowd"
	"acd/internal/incremental"
	"acd/internal/record"
)

// synthRecord makes a small record whose tokens are drawn from a pool,
// so records collide into candidate pairs across shard boundaries.
func synthRecord(rng *rand.Rand, i int) incremental.Record {
	a, b := rng.Intn(24), rng.Intn(24)
	return incremental.Record{Fields: map[string]string{
		"name": fmt.Sprintf("token%02d token%02d item%d", a, b, i),
	}}
}

// checkSnapshot asserts a snapshot is internally consistent — a valid
// canonical partition whose member count matches its record count. Any
// violation means a reader observed a torn clustering.
func checkSnapshot(t *testing.T, s *Snapshot) {
	t.Helper()
	if s == nil {
		t.Fatal("nil snapshot published")
	}
	seen := make(map[int]bool)
	lastFirst := -1
	for _, c := range s.Clusters {
		if len(c) == 0 {
			t.Fatal("empty cluster in snapshot")
		}
		if c[0] <= lastFirst {
			t.Fatalf("clusters out of canonical order: first member %d after %d", c[0], lastFirst)
		}
		lastFirst = c[0]
		prev := -1
		for _, id := range c {
			if id <= prev {
				t.Fatalf("cluster members out of order: %v", c)
			}
			prev = id
			if seen[id] {
				t.Fatalf("gid %d appears in two clusters", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != s.Records {
		t.Fatalf("snapshot lists %d gids across clusters but claims %d records", len(seen), s.Records)
	}
}

// TestConcurrentMixedLoad hammers a 4-shard group with concurrent
// record and answer writers while snapshot readers spin, interleaved
// with resolve passes, under -race. Readers must never observe a torn
// clustering and progress must be monotone; on Close, every goroutine
// the group started must exit.
func TestConcurrentMixedLoad(t *testing.T) {
	baseline := runtime.NumGoroutine()
	g, err := New(Config{Shards: 4, Engine: incremental.Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const perWriter = 40
	var stop atomic.Bool
	var wg, readerWg sync.WaitGroup

	// Readers: spin on the snapshot pointer asserting consistency and
	// monotonicity. No lock is involved, so these must never block on
	// writers or resolves. They run until the writers are done, so they
	// get their own WaitGroup.
	for r := 0; r < 2; r++ {
		readerWg.Add(1)
		go func() {
			defer readerWg.Done()
			lastRecords, lastRound := 0, 0
			for !stop.Load() {
				s := g.Snapshot()
				checkSnapshot(t, s)
				if s.Records < lastRecords {
					t.Errorf("records went backwards: %d -> %d", lastRecords, s.Records)
					return
				}
				if s.Round < lastRound {
					t.Errorf("round went backwards: %d -> %d", lastRound, s.Round)
					return
				}
				lastRecords, lastRound = s.Records, s.Round
			}
		}()
	}

	// Writers: add records, and answer pairs drawn from the snapshot's
	// own cluster listing (those gids are guaranteed live).
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < perWriter; i++ {
				r := synthRecord(rng, w*perWriter+i)
				ids, err := g.Add(r)
				if err != nil {
					errCh <- err
					return
				}
				after := g.Snapshot()
				found := false
				for _, c := range after.Clusters {
					for _, id := range c {
						if id == ids[0] {
							found = true
						}
					}
				}
				if !found {
					errCh <- fmt.Errorf("gid %d invisible in snapshot after its own ack", ids[0])
					return
				}
				if i%5 == 0 && after.Records >= 2 {
					var live []int
					for _, c := range after.Clusters {
						live = append(live, c...)
					}
					lo := live[rng.Intn(len(live))]
					hi := live[rng.Intn(len(live))]
					if lo != hi {
						if lo > hi {
							lo, hi = hi, lo
						}
						if err := g.AddAnswer(lo, hi, float64(rng.Intn(2)), "test"); err != nil {
							errCh <- fmt.Errorf("answer (%d,%d): %w", lo, hi, err)
							return
						}
					}
				}
			}
		}(w)
	}

	// Resolver: a few passes while the writers are still pushing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			time.Sleep(5 * time.Millisecond)
			if _, err := g.Resolve(context.Background()); err != nil {
				errCh <- fmt.Errorf("resolve: %w", err)
				return
			}
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(60 * time.Second):
		t.Fatal("mixed load deadlocked")
	}
	stop.Store(true)
	readerWg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	if _, err := g.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	final := g.Snapshot()
	checkSnapshot(t, final)
	if final.Records != writers*perWriter {
		t.Fatalf("final snapshot has %d records, want %d", final.Records, writers*perWriter)
	}
	if final.ResolvedUpTo != writers*perWriter || final.PendingPairs != 0 {
		t.Fatalf("final resolve left state %+v", final)
	}

	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	// Drain check: the group's queue goroutines must all exit.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Errorf("goroutine leak after Close: %d running, baseline %d", n, baseline)
	}
}

// gateSource blocks every crowd question until released — a probe for
// lock coupling between resolves and readers.
type gateSource struct {
	gate    chan struct{}
	entered chan struct{}
	once    sync.Once
}

// Score implements crowd.Source.
func (s *gateSource) Score(p record.Pair) float64 {
	s.once.Do(func() { close(s.entered) })
	<-s.gate
	return 1.0
}

// Config implements crowd.Source.
func (s *gateSource) Config() crowd.Config { return crowd.ThreeWorker(0) }

// TestSnapshotLockFreeUnderResolve proves GET /clusters-style reads
// take no write lock: with a resolve pass parked inside a crowd
// question (holding the group mutex), Snapshot must still return
// immediately with the pre-resolve state.
func TestSnapshotLockFreeUnderResolve(t *testing.T) {
	src := &gateSource{gate: make(chan struct{}), entered: make(chan struct{})}
	g, err := New(Config{Shards: 2, Engine: incremental.Config{Source: src, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// Two records similar enough to force a crowd question.
	for _, text := range []string{"alpha beta gamma delta", "alpha beta gamma delt"} {
		if _, err := g.Add(incremental.Record{Fields: map[string]string{"name": text}}); err != nil {
			t.Fatal(err)
		}
	}
	before := g.Snapshot()
	checkSnapshot(t, before)

	resolveDone := make(chan error, 1)
	go func() {
		_, err := g.Resolve(context.Background())
		resolveDone <- err
	}()
	<-src.entered // the resolve now holds the write lock, mid-question

	for i := 0; i < 100; i++ {
		got := make(chan *Snapshot, 1)
		go func() { got <- g.Snapshot() }()
		select {
		case s := <-got:
			checkSnapshot(t, s)
			if s.Round != before.Round || s.Records != before.Records {
				t.Fatalf("mid-resolve snapshot %+v differs from pre-resolve %+v", s, before)
			}
		case <-time.After(time.Second):
			t.Fatal("Snapshot blocked while a resolve holds the write lock")
		}
	}

	close(src.gate)
	if err := <-resolveDone; err != nil {
		t.Fatal(err)
	}
	after := g.Snapshot()
	checkSnapshot(t, after)
	if after.Round != before.Round+1 {
		t.Fatalf("resolve did not advance the round: %+v", after)
	}
}
