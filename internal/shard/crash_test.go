package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"acd/internal/dataset"
	"acd/internal/incremental"
	"acd/internal/journal"
)

// crashCfg is the shared config for the sharded crash battery: machine
// answers only, so recovery replays never need a crowd.
func crashCfg() Config {
	return Config{Shards: 3, Engine: incremental.Config{Seed: 5}}
}

// crashRecords returns the fixture records for the crash battery.
func crashRecords() []incremental.Record {
	ds := dataset.Restaurant(1)
	recs := make([]incremental.Record, 18)
	for i, r := range ds.Records[:18] {
		recs[i] = incremental.Record{Fields: r.Fields, Entity: strconv.Itoa(r.Entity)}
	}
	return recs
}

// buildCrashImage runs the crash script against a fresh MemTree: wave 1
// (12 records + a spread of answers + a resolve), then — when withWave2
// is set — 6 more records whose WAL entries form the cuttable suffix.
// It returns the closed tree and the live group's final state digest.
func buildCrashImage(t *testing.T, withWave2 bool) (*journal.MemTree, string) {
	t.Helper()
	tree := journal.NewMemTree()
	g, err := Open(crashCfg(), tree)
	if err != nil {
		t.Fatal(err)
	}
	recs := crashRecords()
	if _, err := g.Add(recs[:12]...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := g.AddAnswer(i, i+4, float64(i%2), "client"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	if withWave2 {
		if _, err := g.Add(recs[12:]...); err != nil {
			t.Fatal(err)
		}
	}
	digest := snapDigest(t, g)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	// The battery's surgery assumes the fixture exercises both answer
	// homes: at least one answer at the router (cross-shard) and at
	// least one inside a shard journal. Fail loudly if the fixture ever
	// degrades to one path.
	if !walHasType(t, tree.Dir(journal.RouterDir), journal.EventAnswer) {
		t.Fatal("fixture too weak: no cross-shard answer reached the router journal")
	}
	inShard := false
	for s := 0; s < crashCfg().Shards; s++ {
		if walHasType(t, tree.Dir(journal.ShardDirName(s)), journal.EventAnswer) {
			inShard = true
		}
	}
	if !inShard {
		t.Fatal("fixture too weak: no same-shard answer reached a shard journal")
	}
	return tree, digest
}

// snapDigest serializes a group's published snapshot — the full
// externally-visible state — for equality comparisons.
func snapDigest(t *testing.T, g *Group) string {
	t.Helper()
	b, err := json.Marshal(g.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// walImage returns the name and synced bytes of a directory's single
// WAL segment (the battery runs without checkpoints, so there is
// exactly one).
func walImage(t *testing.T, fs *journal.MemFS) (string, []byte) {
	t.Helper()
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	seg := ""
	for _, n := range names {
		if strings.HasPrefix(n, "wal-") {
			if seg != "" {
				t.Fatalf("expected one WAL segment, found %v", names)
			}
			seg = n
		}
		if strings.HasPrefix(n, "snap-") {
			t.Fatalf("unexpected checkpoint %s — surgery assumes WAL-only state", n)
		}
	}
	if seg == "" {
		t.Fatalf("no WAL segment in %v", names)
	}
	return seg, fs.Bytes(seg)
}

// walLine is one journal line with its byte span (end is past the
// trailing newline).
type walLine struct {
	start, end int
	ev         journal.Event
}

// walLines parses a WAL image into lines with byte offsets.
func walLines(t *testing.T, b []byte) []walLine {
	t.Helper()
	var lines []walLine
	start := 0
	for start < len(b) {
		nl := bytes.IndexByte(b[start:], '\n')
		if nl < 0 {
			t.Fatalf("WAL image ends without newline at offset %d", start)
		}
		end := start + nl + 1
		var ev journal.Event
		if err := json.Unmarshal(b[start:end-1], &ev); err != nil {
			t.Fatalf("WAL line at %d: %v", start, err)
		}
		lines = append(lines, walLine{start: start, end: end, ev: ev})
		start = end
	}
	return lines
}

// walHasType reports whether any line of the directory's WAL has the
// given event type.
func walHasType(t *testing.T, fs *journal.MemFS, typ string) bool {
	t.Helper()
	_, b := walImage(t, fs)
	for _, l := range walLines(t, b) {
		if l.ev.Type == typ {
			return true
		}
	}
	return false
}

// completeEvents counts the events a truncated WAL prefix preserves:
// one per newline, plus a torn final line that happens to be complete
// JSON short of its newline (recovery keeps that one too).
func completeEvents(prefix []byte) int {
	k := bytes.Count(prefix, []byte("\n"))
	if tail := prefix[bytes.LastIndexByte(prefix, '\n')+1:]; len(tail) > 0 && json.Valid(tail) {
		k++
	}
	return k
}

// TestShardCrashSweepRecordSuffix cuts one shard's WAL at every byte
// offset inside its post-resolve record suffix while the other shards
// stay clean — every such image is a reachable power-loss state,
// because post-resolve record appends have no cross-journal dependents.
// Recovery must succeed at every cut, restore exactly the cut shard's
// durable prefix (and every other shard in full), and be byte-for-byte
// equivalent to recovering the event-aligned image — including after a
// further resolve, which exercises the rebuilt probe index and handoff
// queue over the surviving records.
func TestShardCrashSweepRecordSuffix(t *testing.T) {
	cfg := crashCfg()
	tree, finalDigest := buildCrashImage(t, true)

	fullSnapshots := make([]int, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		_, b := walImage(t, tree.Dir(journal.ShardDirName(s)))
		for _, l := range walLines(t, b) {
			if l.ev.Type == journal.EventRecordAdded {
				fullSnapshots[s]++
			}
		}
	}

	for s := 0; s < cfg.Shards; s++ {
		dir := journal.ShardDirName(s)
		seg, full := walImage(t, tree.Dir(dir))
		lines := walLines(t, full)
		sweepFrom := -1
		for _, l := range lines {
			if l.ev.Type == journal.EventResolve {
				sweepFrom = l.end
			}
		}
		if sweepFrom < 0 {
			t.Fatalf("shard %d WAL has no resolve event", s)
		}

		for cut := sweepFrom; cut <= len(full); cut++ {
			prefix := full[:cut]
			k := completeEvents(prefix)

			crash := tree.CrashCopy()
			crash.Dir(dir).Put(seg, prefix)
			g, err := Open(cfg, crash)
			if err != nil {
				t.Fatalf("shard %d cut %d: recovery failed: %v", s, cut, err)
			}

			survivors := 0
			for _, l := range lines[:k] {
				if l.ev.Type == journal.EventRecordAdded {
					survivors++
				}
			}
			snap := g.Snapshot()
			if got := snap.PerShard[s].Records; got != survivors {
				t.Fatalf("shard %d cut %d: recovered %d records, durable prefix holds %d", s, cut, got, survivors)
			}
			for o := 0; o < cfg.Shards; o++ {
				if o != s && snap.PerShard[o].Records != fullSnapshots[o] {
					t.Fatalf("shard %d cut %d: clean shard %d lost records (%d of %d)",
						s, cut, o, snap.PerShard[o].Records, fullSnapshots[o])
				}
			}

			// Event-aligned twin: the byte cut must be indistinguishable
			// from losing whole trailing events.
			aligned := tree.CrashCopy()
			var alignedBytes []byte
			if k > 0 {
				alignedBytes = full[:lines[k-1].end]
			}
			aligned.Dir(dir).Put(seg, alignedBytes)
			ref, err := Open(cfg, aligned)
			if err != nil {
				t.Fatalf("shard %d cut %d: event-aligned recovery failed: %v", s, cut, err)
			}
			if got, want := snapDigest(t, g), snapDigest(t, ref); got != want {
				t.Fatalf("shard %d cut %d: byte-cut recovery differs from event-aligned replay:\n got %s\nwant %s", s, cut, got, want)
			}
			if cut == len(full) && snapDigest(t, g) != finalDigest {
				t.Fatalf("shard %d: full-image recovery differs from live state:\n got %s\nwant %s", s, snapDigest(t, g), finalDigest)
			}

			// The surviving records must still resolve identically —
			// this walks the rebuilt probe index and handoff queue.
			if _, err := g.Resolve(context.Background()); err != nil {
				t.Fatalf("shard %d cut %d: resolve after recovery: %v", s, cut, err)
			}
			if _, err := ref.Resolve(context.Background()); err != nil {
				t.Fatalf("shard %d cut %d: resolve after aligned recovery: %v", s, cut, err)
			}
			if got, want := snapDigest(t, g), snapDigest(t, ref); got != want {
				t.Fatalf("shard %d cut %d: post-recovery resolve diverged:\n got %s\nwant %s", s, cut, got, want)
			}
			g.Close()
			ref.Close()
		}
	}
}

// TestShardCrashSweepResolveFanOut crashes the resolve fan-out at every
// byte: the router has committed the global resolve, shards below s
// have their restriction, shard s's append is torn at byte `cut`, and
// shards above s never started (fan-out runs in shard order). Recovery
// must repair every lagging shard from the router's record, land in
// exactly the no-crash state, and make the repair durable — a second
// reopen of the same image must agree.
func TestShardCrashSweepResolveFanOut(t *testing.T) {
	cfg := crashCfg()
	tree, finalDigest := buildCrashImage(t, false)

	type shardWAL struct {
		seg          string
		full         []byte
		resolveStart int
	}
	wals := make([]shardWAL, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		seg, full := walImage(t, tree.Dir(journal.ShardDirName(s)))
		lines := walLines(t, full)
		last := lines[len(lines)-1]
		if last.ev.Type != journal.EventResolve {
			t.Fatalf("shard %d WAL does not end with the resolve fan-out", s)
		}
		wals[s] = shardWAL{seg: seg, full: full, resolveStart: last.start}
	}

	for s := 0; s < cfg.Shards; s++ {
		for cut := wals[s].resolveStart; cut <= len(wals[s].full); cut++ {
			crash := tree.CrashCopy()
			crash.Dir(journal.ShardDirName(s)).Put(wals[s].seg, wals[s].full[:cut])
			for o := s + 1; o < cfg.Shards; o++ {
				crash.Dir(journal.ShardDirName(o)).Put(wals[o].seg, wals[o].full[:wals[o].resolveStart])
			}

			g, err := Open(cfg, crash)
			if err != nil {
				t.Fatalf("shard %d cut %d: recovery failed: %v", s, cut, err)
			}
			if got := snapDigest(t, g); got != finalDigest {
				t.Fatalf("shard %d cut %d: repaired state differs from no-crash state:\n got %s\nwant %s", s, cut, got, finalDigest)
			}
			if err := g.Close(); err != nil {
				t.Fatalf("shard %d cut %d: close after repair: %v", s, cut, err)
			}

			// The repair itself must be durable: reopening the same tree
			// (no further surgery) must land in the same state.
			g2, err := Open(cfg, crash)
			if err != nil {
				t.Fatalf("shard %d cut %d: reopen after repair failed: %v", s, cut, err)
			}
			if got := snapDigest(t, g2); got != finalDigest {
				t.Fatalf("shard %d cut %d: repair did not stick across reopen:\n got %s\nwant %s", s, cut, got, finalDigest)
			}
			g2.Close()
		}
	}
}

// TestGroupCommitWALBytesIdentical replays the crash fixture's script
// with group commit enabled and asserts every journal — router and all
// shards — is BYTE-identical to the unbatched run after a clean close.
// Group commit changes when fsyncs happen, never what is written or in
// what order; this is what keeps the whole crash battery's reachable
// image space (and the recovery code) one and the same for both modes.
func TestGroupCommitWALBytesIdentical(t *testing.T) {
	run := func(cfg Config) *journal.MemTree {
		tree := journal.NewMemTree()
		g, err := Open(cfg, tree)
		if err != nil {
			t.Fatal(err)
		}
		recs := crashRecords()
		if _, err := g.Add(recs[:12]...); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if err := g.AddAnswer(i, i+4, float64(i%2), "client"); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := g.Resolve(context.Background()); err != nil {
			t.Fatal(err)
		}
		if _, err := g.Add(recs[12:]...); err != nil {
			t.Fatal(err)
		}
		if err := g.Close(); err != nil {
			t.Fatal(err)
		}
		return tree
	}

	plain := run(crashCfg())
	batched := crashCfg()
	batched.Engine.Commit = journal.GroupPolicy{Window: 2 * time.Millisecond, MaxEvents: 16}
	grouped := run(batched)

	dirs := []string{journal.RouterDir}
	for s := 0; s < crashCfg().Shards; s++ {
		dirs = append(dirs, journal.ShardDirName(s))
	}
	for _, d := range dirs {
		seg, want := walImage(t, plain.Dir(d))
		segG, got := walImage(t, grouped.Dir(d))
		if seg != segG {
			t.Errorf("%s: segment name %q vs %q", d, segG, seg)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: WAL bytes differ under group commit (%d vs %d bytes)", d, len(got), len(want))
		}
	}
}

// TestShardAheadOfRouterRejected pairs journals that violate the commit
// order: the router's resolve record is gone but the shards already
// applied theirs. No crash can produce this (the router commits first),
// so recovery must refuse the directory rather than guess.
func TestShardAheadOfRouterRejected(t *testing.T) {
	cfg := crashCfg()
	tree, _ := buildCrashImage(t, false)

	seg, full := walImage(t, tree.Dir(journal.RouterDir))
	lines := walLines(t, full)
	last := lines[len(lines)-1]
	if last.ev.Type != journal.EventResolve {
		t.Fatal("router WAL does not end with the resolve commit")
	}
	tree.Dir(journal.RouterDir).Put(seg, full[:last.start])

	if _, err := Open(cfg, tree.CrashCopy()); err == nil {
		t.Fatal("recovery accepted shards ahead of the router")
	} else if !strings.Contains(err.Error(), "ahead of the router") {
		t.Fatalf("wrong rejection: %v", err)
	}
}

// TestLegacyJournalAdoption opens a pre-sharding single-engine journal
// through the sharded stack: the group must adopt it in place (shard 0
// at the tree root), derive identity global ids, accept new work, and
// keep the directory reopenable — while a multi-shard open of the same
// directory is refused.
func TestLegacyJournalAdoption(t *testing.T) {
	tree := journal.NewMemTree()
	recs := crashRecords()

	// A PR-5-era engine writes its journal at the directory root.
	eng, err := incremental.Open(incremental.Config{Seed: 5}, tree.Root())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[:6] {
		if _, err := eng.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := eng.Clusters()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(Config{Shards: 2, Engine: incremental.Config{Seed: 5}}, tree); err == nil {
		t.Fatal("re-sharding a legacy journal must be refused")
	}

	g, err := Open(Config{Shards: 1, Engine: incremental.Config{Seed: 5}}, tree)
	if err != nil {
		t.Fatal(err)
	}
	snap := g.Snapshot()
	if snap.Records != 6 || snap.Round != 1 {
		t.Fatalf("adopted legacy journal as %+v", snap)
	}
	if fmt.Sprint(snap.Clusters) != fmt.Sprint(want) {
		t.Fatalf("adopted clustering %v, engine had %v", snap.Clusters, want)
	}
	ids, err := g.Add(recs[6])
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 6 {
		t.Fatalf("legacy adoption broke gid assignment: %v", ids)
	}
	if _, err := g.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	digest := snapDigest(t, g)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	g2, err := Open(Config{Shards: 1, Engine: incremental.Config{Seed: 5}}, tree)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if got := snapDigest(t, g2); got != digest {
		t.Fatalf("legacy-adopted directory did not reopen identically:\n got %s\nwant %s", got, digest)
	}
}
