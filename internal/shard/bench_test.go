package shard

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"acd/internal/incremental"
	"acd/internal/journal"
)

// benchSink keeps snapshot reads observable so the compiler cannot
// elide them.
var benchSink atomic.Int64

// BenchmarkGroupMixed measures one serving unit on a journaled group:
// 1024 records ingested by concurrent writers (each write followed by
// a snapshot read), then one global resolve, on a fresh directory every
// iteration so the cost per op is constant. The shard count comes from
// ACD_BENCH_SHARDS (default 4), so one benchmark name covers both
// sides of the single-vs-sharded comparison in BENCH_6.json:
//
//	ACD_BENCH_SHARDS=1 go test -bench GroupMixed ./internal/shard/   # single engine
//	ACD_BENCH_SHARDS=4 go test -bench GroupMixed ./internal/shard/   # sharded
//
// Sharding parallelizes the per-shard work (journal fsyncs, blocking
// index updates, pair scoring); the router's serial section and the
// global resolve pass are the invariant costs it cannot shard.
func BenchmarkGroupMixed(b *testing.B) {
	shards := 4
	if s := os.Getenv("ACD_BENCH_SHARDS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			b.Fatalf("ACD_BENCH_SHARDS=%q: %v", s, err)
		}
		shards = v
	}
	cfg := Config{Shards: shards, Engine: incremental.Config{Seed: 1}}

	// A fixed batch over a 96-token vocabulary: enough collisions to
	// keep the blocking indexes and the resolve pass honestly busy,
	// spread over every shard.
	rng := rand.New(rand.NewSource(11))
	batch := make([]incremental.Record, 1024)
	for i := range batch {
		batch[i] = incremental.Record{Fields: map[string]string{
			"name": fmt.Sprintf("tok%02d tok%02d item%04d", rng.Intn(96), rng.Intn(96), i),
		}}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tree, err := journal.NewDirTree(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		g, err := Open(cfg, tree)
		if err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for j := w; j < len(batch); j += workers {
					if _, err := g.Add(batch[j]); err != nil {
						b.Error(err)
						return
					}
					benchSink.Store(int64(g.Snapshot().Records))
				}
			}(w)
		}
		wg.Wait()
		if b.Failed() {
			b.FailNow()
		}
		if _, err := g.Resolve(context.Background()); err != nil {
			b.Fatal(err)
		}
		if err := g.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
