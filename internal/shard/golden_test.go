package shard

import (
	"context"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"acd/internal/crowd"
	"acd/internal/dataset"
	"acd/internal/incremental"
	"acd/internal/journal"
	"acd/internal/obs"
	"acd/internal/pruning"
	"acd/internal/record"
)

// Pinned question counts for the Restaurant prefix-split golden (wave
// 1, wave 2). Every shard count must hit these exactly; a change here
// is a change to what the crowd is asked and needs the same scrutiny
// as a golden-file update.
const (
	goldenWave1Questions = 935
	goldenWave2Questions = 3345
)

// captureSource wraps a crowd source and records the multiset of
// questions actually asked — the currency the sharded system must
// spend identically to the single engine.
type captureSource struct {
	mu    sync.Mutex
	inner crowd.Source
	asked map[record.Pair]int
}

func newCapture(inner crowd.Source) *captureSource {
	return &captureSource{inner: inner, asked: map[record.Pair]int{}}
}

// Score implements crowd.Source.
func (c *captureSource) Score(p record.Pair) float64 {
	c.mu.Lock()
	c.asked[p]++
	c.mu.Unlock()
	return c.inner.Score(p)
}

// Config implements crowd.Source.
func (c *captureSource) Config() crowd.Config { return c.inner.Config() }

// multiset returns a copy of the captured question counts.
func (c *captureSource) multiset() map[record.Pair]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[record.Pair]int, len(c.asked))
	for p, n := range c.asked {
		out[p] = n
	}
	return out
}

// goldenInput builds the shared Restaurant prefix-split fixture: the
// records, the simulated crowd answer file covering every full-set
// candidate pair, and the wave boundary.
func goldenInput(t *testing.T) (recs []incremental.Record, answers *crowd.AnswerSet, half int) {
	t.Helper()
	ds := dataset.Restaurant(1)
	cands := pruning.Prune(ds.Records, pruning.Options{})
	answers = crowd.BuildAnswers(cands.PairList(), ds.TruthFn(), crowd.UniformDifficulty(0), crowd.ThreeWorker(7))
	recs = make([]incremental.Record, len(ds.Records))
	for i, r := range ds.Records {
		recs[i] = incremental.Record{Fields: r.Fields, Entity: strconv.Itoa(r.Entity)}
	}
	return recs, answers, len(recs) / 2
}

const goldenSeed = 42

// goldenRun is one system's transcript of the two-wave run.
type goldenRun struct {
	clusters  [][]int
	questions map[record.Pair]int
	waveQ     [2]int
	stats     [2]incremental.ResolveStats
}

// runSingleGolden drives the reference: one incremental engine, no
// sharding, two waves with a resolve after each.
func runSingleGolden(t *testing.T, recs []incremental.Record, answers *crowd.AnswerSet, half int) goldenRun {
	t.Helper()
	cap := newCapture(answers)
	eng := incremental.New(incremental.Config{Source: cap, Seed: goldenSeed, Obs: obs.New()})
	var out goldenRun
	waves := [2][2]int{{0, half}, {half, len(recs)}}
	for w, span := range waves {
		for _, r := range recs[span[0]:span[1]] {
			if _, err := eng.Add(r); err != nil {
				t.Fatal(err)
			}
		}
		before := askedTotal(cap)
		st, err := eng.Resolve(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		out.stats[w] = st
		out.waveQ[w] = askedTotal(cap) - before
	}
	out.clusters = eng.Clusters()
	out.questions = cap.multiset()
	return out
}

// runShardedGolden drives the same two waves through an n-shard group.
func runShardedGolden(t *testing.T, n int, recs []incremental.Record, answers *crowd.AnswerSet, half int) goldenRun {
	t.Helper()
	cap := newCapture(answers)
	g, err := New(Config{Shards: n, Engine: incremental.Config{Source: cap, Seed: goldenSeed, Obs: obs.New()}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	var out goldenRun
	waves := [2][2]int{{0, half}, {half, len(recs)}}
	for w, span := range waves {
		for i, r := range recs[span[0]:span[1]] {
			ids, err := g.Add(r)
			if err != nil {
				t.Fatal(err)
			}
			if want := span[0] + i; len(ids) != 1 || ids[0] != want {
				t.Fatalf("record %d assigned gid %v", want, ids)
			}
		}
		before := askedTotal(cap)
		st, err := g.Resolve(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		out.stats[w] = st
		out.waveQ[w] = askedTotal(cap) - before
	}
	out.clusters = g.Snapshot().Clusters
	out.questions = cap.multiset()
	return out
}

func askedTotal(c *captureSource) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.asked {
		n += v
	}
	return n
}

// TestShardGolden is the PR's gate: for N ∈ {1,2,4,8}, the sharded
// run over the Restaurant prefix-split must produce the identical
// clustering and the identical multiset of crowd questions as the
// single engine — sharding changes where work happens, never what the
// crowd is asked.
func TestShardGolden(t *testing.T) {
	recs, answers, half := goldenInput(t)
	ref := runSingleGolden(t, recs, answers, half)

	if ref.waveQ[0] != goldenWave1Questions || ref.waveQ[1] != goldenWave2Questions {
		t.Errorf("single-engine questions (%d, %d) drifted from pinned golden (%d, %d)",
			ref.waveQ[0], ref.waveQ[1], goldenWave1Questions, goldenWave2Questions)
	}

	for _, n := range []int{1, 2, 4, 8} {
		n := n
		t.Run(strconv.Itoa(n)+"shards", func(t *testing.T) {
			got := runShardedGolden(t, n, recs, answers, half)
			if !reflect.DeepEqual(got.clusters, ref.clusters) {
				t.Errorf("clustering differs from single engine (%d vs %d clusters)", len(got.clusters), len(ref.clusters))
			}
			if !reflect.DeepEqual(got.questions, ref.questions) {
				t.Errorf("question multiset differs from single engine: asked %d distinct pairs, want %d",
					len(got.questions), len(ref.questions))
			}
			if got.waveQ != ref.waveQ {
				t.Errorf("per-wave question counts %v, want %v", got.waveQ, ref.waveQ)
			}
			for w := range got.stats {
				if got.stats[w] != ref.stats[w] {
					t.Errorf("wave %d resolve stats %+v, want %+v", w+1, got.stats[w], ref.stats[w])
				}
			}
		})
	}
}

// TestShardGoldenGroupCommit reruns the golden equivalence with the
// batched write path fully on — journaled shards, a 2ms commit window,
// and segment rotation — and additionally requires the journal to
// recover the identical clustering after a clean close. Group commit
// moves fsyncs around; it must never move what the crowd is asked or
// what the clustering says.
func TestShardGoldenGroupCommit(t *testing.T) {
	recs, answers, half := goldenInput(t)
	ref := runSingleGolden(t, recs, answers, half)

	for _, n := range []int{1, 2, 4, 8} {
		n := n
		t.Run(strconv.Itoa(n)+"shards", func(t *testing.T) {
			cap := newCapture(answers)
			cfg := Config{Shards: n, Engine: incremental.Config{
				Source: cap, Seed: goldenSeed, Obs: obs.New(),
				Commit:      journal.GroupPolicy{Window: 2 * time.Millisecond, MaxEvents: 32},
				RotateBytes: 16 << 10,
			}}
			tree := journal.NewMemTree()
			g, err := Open(cfg, tree)
			if err != nil {
				t.Fatal(err)
			}
			var got goldenRun
			waves := [2][2]int{{0, half}, {half, len(recs)}}
			for w, span := range waves {
				for _, r := range recs[span[0]:span[1]] {
					if _, err := g.Add(r); err != nil {
						t.Fatal(err)
					}
				}
				before := askedTotal(cap)
				st, err := g.Resolve(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				got.stats[w] = st
				got.waveQ[w] = askedTotal(cap) - before
			}
			got.clusters = g.Snapshot().Clusters
			got.questions = cap.multiset()
			if err := g.Close(); err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(got.clusters, ref.clusters) {
				t.Errorf("clustering differs from single engine (%d vs %d clusters)", len(got.clusters), len(ref.clusters))
			}
			if !reflect.DeepEqual(got.questions, ref.questions) {
				t.Errorf("question multiset differs from single engine: asked %d distinct pairs, want %d",
					len(got.questions), len(ref.questions))
			}
			if got.waveQ != ref.waveQ {
				t.Errorf("per-wave question counts %v, want %v", got.waveQ, ref.waveQ)
			}

			// The rotated, group-committed journal must recover the exact
			// clustering (no crowd needed: replay applies logged effects).
			g2, err := Open(Config{Shards: n, Engine: incremental.Config{Seed: goldenSeed}}, tree)
			if err != nil {
				t.Fatalf("reopening group-committed journal: %v", err)
			}
			defer g2.Close()
			if rec := g2.Snapshot().Clusters; !reflect.DeepEqual(rec, ref.clusters) {
				t.Errorf("recovered clustering differs (%d vs %d clusters)", len(rec), len(ref.clusters))
			}
		})
	}
}

// TestShardGoldenSpread guards the golden against degenerate routing:
// with 8 shards the Restaurant records must actually spread out, and
// cross-shard candidate pairs must actually arise — otherwise the
// equivalence test would be vacuously passing on a single busy shard.
func TestShardGoldenSpread(t *testing.T) {
	recs, answers, _ := goldenInput(t)
	cap := newCapture(answers)
	g, err := New(Config{Shards: 8, Engine: incremental.Config{Source: cap, Seed: goldenSeed}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for _, r := range recs {
		if _, err := g.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	snap := g.Snapshot()
	occupied := 0
	for _, st := range snap.PerShard {
		if st.Records > 0 {
			occupied++
		}
	}
	if occupied < 4 {
		t.Errorf("only %d of 8 shards hold records — routing is degenerate", occupied)
	}
	g.mu.Lock()
	handoff := len(g.handoff)
	g.mu.Unlock()
	if handoff == 0 {
		t.Error("no cross-shard handoff pairs arose — the handoff path is untested by the golden")
	}
	if snap.PendingPairs == 0 {
		t.Error("no pending pairs at all")
	}
}
