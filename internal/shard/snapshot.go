package shard

import "fmt"

// Snapshot is an immutable view of the group's clustering state,
// published behind an atomic pointer on every mutation. Readers load
// it wait-free: serving GET /clusters from a snapshot never touches
// the group mutex, the shard queues, or any engine. All ids are
// global ids.
type Snapshot struct {
	// Shards is the group's shard count.
	Shards int
	// Records counts live (durably acknowledged) records.
	Records int
	// Round is the number of completed resolve passes.
	Round int
	// ResolvedUpTo is the global-id watermark of the last resolve.
	ResolvedUpTo int
	// PendingPairs counts candidate pairs awaiting the next resolve,
	// across all shards plus the cross-shard handoff queue.
	PendingPairs int
	// Answers counts cached crowd answers (shard-local plus
	// cross-shard).
	Answers int
	// Clusters is the clustering over live global ids in canonical
	// form (members ascending, clusters by first member).
	Clusters [][]int
	// PerShard holds per-shard occupancy, indexed by shard.
	PerShard []ShardStats
}

// ShardStats is one shard's slice of a Snapshot.
type ShardStats struct {
	// Records is the shard's record count.
	Records int
	// PendingPairs counts the shard's own pending candidate pairs
	// (cross-shard pairs live at the router, not here).
	PendingPairs int
	// Answers counts the shard's cached answers.
	Answers int
}

// Snapshot returns the current published snapshot. It never blocks and
// never observes a half-applied mutation: snapshots are immutable and
// replaced wholesale.
func (g *Group) Snapshot() *Snapshot { return g.snap.Load() }

// publishSnapshotLocked rebuilds the immutable snapshot from current
// state and swaps it in. Callers hold mu, so every published snapshot
// is some fully-applied state — readers can never see a torn one. The
// per-shard figures come from the stats mirrors (maintained by each
// engine's owner), never from the engines directly: another shard's
// engine may be mid-append when this runs.
func (g *Group) publishSnapshotLocked() {
	snap := &Snapshot{
		Shards:       g.n,
		Round:        g.round,
		ResolvedUpTo: g.resolvedUpTo,
		PerShard:     append([]ShardStats(nil), g.stats...),
	}
	for _, st := range snap.PerShard {
		snap.Records += st.Records
		snap.PendingPairs += st.PendingPairs
		snap.Answers += st.Answers
	}
	snap.Answers += len(g.xord)
	for _, sp := range g.handoff {
		if g.local[int(sp.Pair.Lo)] >= 0 && g.local[int(sp.Pair.Hi)] >= 0 {
			snap.PendingPairs++
		}
	}
	g.clusters.Grow(g.nextGID)
	for _, set := range g.clusters.Sets(g.nextGID) {
		live := make([]int, 0, len(set))
		for _, gid := range set {
			if g.local[gid] >= 0 {
				live = append(live, gid)
			}
		}
		if len(live) > 0 {
			snap.Clusters = append(snap.Clusters, live)
		}
	}
	g.snap.Store(snap)
	g.publishGaugesLocked(snap)
}

// publishGaugesLocked exports per-shard occupancy gauges.
func (g *Group) publishGaugesLocked(snap *Snapshot) {
	rec := g.cfg.Engine.Obs
	if rec == nil {
		return
	}
	rec.Gauge(GaugeShards, float64(g.n))
	rec.Gauge(GaugeHandoffPairs, float64(len(g.handoff)))
	for i, st := range snap.PerShard {
		rec.Gauge(ShardGauge(GaugeShardRecords, i), float64(st.Records))
		rec.Gauge(ShardGauge(GaugeShardPending, i), float64(st.PendingPairs))
		rec.Gauge(ShardGauge(GaugeShardAnswers, i), float64(st.Answers))
	}
}

// Gauge names the group exports through its configured obs.Recorder.
// Per-shard gauges are derived with ShardGauge.
const (
	// GaugeShards is the group's shard count.
	GaugeShards = "shard/shards"
	// GaugeHandoffPairs is the cross-shard handoff queue length.
	GaugeHandoffPairs = "shard/handoff_pairs"
	// GaugeShardRecords is the per-shard record count.
	GaugeShardRecords = "shard/%03d/records"
	// GaugeShardPending is the per-shard pending candidate pair count.
	GaugeShardPending = "shard/%03d/pending_pairs"
	// GaugeShardAnswers is the per-shard cached answer count.
	GaugeShardAnswers = "shard/%03d/answers"
)

// ShardGauge instantiates a per-shard gauge name for shard i.
func ShardGauge(pattern string, i int) string { return fmt.Sprintf(pattern, i) }
