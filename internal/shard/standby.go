package shard

import (
	"fmt"
	"sync"

	"acd/internal/incremental"
	"acd/internal/journal"
	"acd/internal/record"
)

// Standby is a follower's warm replica of a Group: one volatile engine
// per shard plus the router's global state, advanced one journal event
// at a time by Apply — the apply-from-stream entry point replication
// uses. Each event goes through exactly the recovery fold, so a
// standby's engines are byte-identical to what a leader restart would
// rebuild at the same sequences. A standby only ever reads and folds;
// at promotion it is discarded and the follower's own journals are
// re-opened through the normal recovery path, which recomputes the
// derived structures (probe index, handoff queue) a standby does not
// maintain.
//
// Standby is safe for concurrent use: the replication loop applies
// events while HTTP handlers read snapshots.
type Standby struct {
	mu  sync.Mutex
	cfg Config
	n   int

	engines []*incremental.Engine

	// Global id space, mirroring Group: local is -1 for ids the
	// standby has not (yet) seen a record for — in-flight on the
	// leader, or permanent holes.
	nextGID int
	home    []int
	local   []int
	gids    [][]int

	// Router state (n > 1): global resolve history plus cross-shard
	// answer pairs.
	round        int
	resolvedUpTo int
	clusters     [][]int
	xans         map[record.Pair]bool

	applied map[string]int64 // journal name -> last applied seq
}

// NewStandby returns an empty warm replica shaped like a Group with
// the same Config. The engine config's journal knobs are ignored —
// standby engines are always volatile.
func NewStandby(cfg Config) (*Standby, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 1 || cfg.Shards > journal.MaxShards {
		return nil, fmt.Errorf("shard: shard count %d outside [1,%d]", cfg.Shards, journal.MaxShards)
	}
	s := &Standby{
		cfg:     cfg,
		n:       cfg.Shards,
		gids:    make([][]int, cfg.Shards),
		xans:    make(map[record.Pair]bool),
		applied: make(map[string]int64),
	}
	s.engines = make([]*incremental.Engine, cfg.Shards)
	for i := range s.engines {
		s.engines[i] = incremental.New(cfg.Engine)
	}
	return s, nil
}

// shardIndex resolves a journal name to its shard index, -1 for the
// router.
func (s *Standby) shardIndex(name string) (int, error) {
	if name == journal.RouterDir {
		return -1, nil
	}
	for i := 0; i < s.n; i++ {
		if name == journal.ShardDirName(i) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("shard: unknown journal %q", name)
}

// Applied returns the last event sequence folded from the named
// journal (0 when nothing has been).
func (s *Standby) Applied(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied[name]
}

// Apply folds one replicated event from the named journal into the
// replica. Events of one journal must arrive in sequence (the follower
// skips duplicates and refuses gaps before calling); events of
// different journals may interleave arbitrarily, exactly as recovery
// tolerates.
func (s *Standby) Apply(name string, ev journal.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, err := s.shardIndex(name)
	if err != nil {
		return err
	}
	if last := s.applied[name]; ev.Seq != last+1 {
		return fmt.Errorf("shard: %s event %d applied after %d", name, ev.Seq, last)
	}
	if i < 0 {
		err = s.applyRouter(ev)
	} else {
		err = s.applyShard(i, ev)
	}
	if err != nil {
		return err
	}
	s.applied[name] = ev.Seq
	return nil
}

// ApplyCheckpoint installs a shipped checkpoint from the named journal
// — the catch-up path when the leader compacted past the follower's
// cursor. The corresponding engine (or router state) must still be
// empty: checkpoints replace history, they do not merge into it.
func (s *Standby) ApplyCheckpoint(name string, cp *journal.Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, err := s.shardIndex(name)
	if err != nil {
		return err
	}
	if s.applied[name] != 0 {
		return fmt.Errorf("shard: %s checkpoint at seq %d after events were applied", name, cp.Seq)
	}
	if i < 0 {
		if err := s.applyRouterCheckpoint(cp); err != nil {
			return err
		}
	} else {
		if err := s.engines[i].ApplyLoggedCheckpoint(cp); err != nil {
			return err
		}
		for lid, data := range cp.Records {
			if err := s.registerGID(i, s.gidOf(data), lid); err != nil {
				return err
			}
		}
	}
	s.applied[name] = cp.Seq
	return nil
}

// gidOf extracts a record's global id. Single-shard groups assign
// gid == local id in arrival order, so the id field itself is the gid
// (this also covers legacy journals, which carry no gids at all).
func (s *Standby) gidOf(data journal.RecordData) int {
	if s.n == 1 {
		return data.ID
	}
	return data.GID
}

func (s *Standby) applyShard(i int, ev journal.Event) error {
	if err := s.engines[i].ApplyLogged(ev); err != nil {
		return err
	}
	if ev.Type == journal.EventRecordAdded && ev.Record != nil {
		return s.registerGID(i, s.gidOf(*ev.Record), ev.Record.ID)
	}
	return nil
}

// registerGID claims a global id for shard i's record lid, growing the
// id space with holes as needed. Within a shard gids ascend with local
// ids, mirroring recovery's invariant.
func (s *Standby) registerGID(i, gid, lid int) error {
	if lid != len(s.gids[i]) {
		return fmt.Errorf("shard: shard %d record %d arrived after %d records", i, lid, len(s.gids[i]))
	}
	if n := len(s.gids[i]); n > 0 && s.gids[i][n-1] >= gid {
		return fmt.Errorf("shard: shard %d record %d has gid %d, not above predecessor %d", i, lid, gid, s.gids[i][n-1])
	}
	s.growGIDs(gid + 1)
	if s.local[gid] != -1 {
		return fmt.Errorf("shard: gid %d claimed twice", gid)
	}
	s.home[gid] = i
	s.local[gid] = lid
	s.gids[i] = append(s.gids[i], gid)
	return nil
}

// growGIDs extends the id space to n ids, new ones as holes.
func (s *Standby) growGIDs(n int) {
	for s.nextGID < n {
		s.home = append(s.home, 0)
		s.local = append(s.local, -1)
		s.nextGID++
	}
}

func (s *Standby) applyRouter(ev journal.Event) error {
	switch ev.Type {
	case journal.EventAnswer:
		if ev.Answer == nil {
			return fmt.Errorf("shard: router event %d: answer without payload", ev.Seq)
		}
		s.xans[record.MakePair(record.ID(ev.Answer.Lo), record.ID(ev.Answer.Hi))] = true
	case journal.EventResolve:
		if ev.Resolve == nil {
			return fmt.Errorf("shard: router event %d: resolve without payload", ev.Seq)
		}
		s.round = ev.Resolve.Round
		s.resolvedUpTo = ev.Resolve.ResolvedUpTo
		s.clusters = ev.Resolve.Clusters
		// A resolve may cover gids whose records the standby has not
		// seen yet (its shard stream lags the router's): they are holes
		// until the records arrive, exactly as in recovery.
		s.growGIDs(s.resolvedUpTo)
	default:
		return fmt.Errorf("shard: router event %d: unexpected type %q", ev.Seq, ev.Type)
	}
	return nil
}

func (s *Standby) applyRouterCheckpoint(cp *journal.Checkpoint) error {
	if len(cp.Records) != 0 {
		return fmt.Errorf("shard: router checkpoint holds %d records; the router owns none", len(cp.Records))
	}
	s.round = cp.Round
	s.resolvedUpTo = cp.ResolvedUpTo
	s.clusters = cp.Clusters
	s.growGIDs(s.resolvedUpTo)
	for _, a := range cp.Answers {
		s.xans[record.MakePair(record.ID(a.Lo), record.ID(a.Hi))] = true
	}
	return nil
}

// Engine returns shard i's volatile engine for inspection — the
// replication tests' byte-identity oracle. Callers must not mutate it
// and must not race it against Apply.
func (s *Standby) Engine(i int) *incremental.Engine { return s.engines[i] }

// Snapshot computes an immutable view of the replica's state in the
// same shape a leader Group publishes. It is some prefix-consistent
// state of the leader: every count and cluster follows from a
// committed prefix of each journal. PendingPairs excludes the leader's
// cross-shard handoff queue — the standby does not maintain the probe
// index it derives from (promotion recomputes it via recovery).
func (s *Standby) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := &Snapshot{Shards: s.n}
	for _, e := range s.engines {
		snap.PerShard = append(snap.PerShard, statsOf(e))
	}
	for _, st := range snap.PerShard {
		snap.Records += st.Records
		snap.PendingPairs += st.PendingPairs
		snap.Answers += st.Answers
	}
	snap.Answers += len(s.xans)

	clusters := s.clusters
	nextGID := s.nextGID
	if s.n == 1 {
		e := s.engines[0]
		snap.Round = e.Round()
		snap.ResolvedUpTo = e.ResolvedUpTo()
		clusters = e.Clusters()
		if e.Len() > nextGID {
			nextGID = e.Len()
		}
	} else {
		snap.Round = s.round
		snap.ResolvedUpTo = s.resolvedUpTo
	}
	uf := forestOf(clusters, nextGID)
	for _, set := range uf.Sets(nextGID) {
		live := make([]int, 0, len(set))
		for _, gid := range set {
			if s.liveLocked(gid) {
				live = append(live, gid)
			}
		}
		if len(live) > 0 {
			snap.Clusters = append(snap.Clusters, live)
		}
	}
	return snap
}

// liveLocked reports whether a gid has a durably applied record.
func (s *Standby) liveLocked(gid int) bool {
	if s.n == 1 {
		return gid < s.engines[0].Len()
	}
	return gid < len(s.local) && s.local[gid] >= 0
}
