package shard

import "sync"

// opQueue is a single-owner FIFO work queue: one goroutine (run)
// executes pushed ops in order, so everything an op touches — notably
// the shard's engine — needs no lock of its own. The queue is
// unbounded on purpose: push is called under the group mutex, and a
// bounded queue could block there while the consumer waits for that
// same mutex to acknowledge a record — a deadlock, not backpressure.
type opQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ops    []func()
	busy   bool // an op is executing right now
	closed bool
	done   chan struct{} // closed when run exits
}

func newOpQueue() *opQueue {
	q := &opQueue{done: make(chan struct{})}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues an op. Ops pushed after close are silently dropped
// (the group rejects intake before closing, so none should arrive).
func (q *opQueue) push(op func()) {
	q.mu.Lock()
	if !q.closed {
		q.ops = append(q.ops, op)
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

// run executes ops in FIFO order until close, draining what remains.
func (q *opQueue) run() {
	defer close(q.done)
	q.mu.Lock()
	for {
		for len(q.ops) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.ops) == 0 {
			q.mu.Unlock()
			return
		}
		op := q.ops[0]
		q.ops = q.ops[1:]
		q.busy = true
		q.mu.Unlock()
		op()
		q.mu.Lock()
		q.busy = false
		q.cond.Broadcast()
	}
}

// waitIdle blocks until the queue is empty and no op is executing —
// the quiescence point resolve barriers rely on.
func (q *opQueue) waitIdle() {
	q.mu.Lock()
	for len(q.ops) > 0 || q.busy {
		q.cond.Wait()
	}
	q.mu.Unlock()
}

// close stops the queue after draining it and waits for the goroutine
// to exit. Safe to call more than once.
func (q *opQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
	<-q.done
}
