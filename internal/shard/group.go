package shard

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"acd/internal/blocking"
	"acd/internal/incremental"
	"acd/internal/journal"
	"acd/internal/record"
	"acd/internal/unionfind"
)

// Config configures a Group.
type Config struct {
	// Shards is the shard count; 0 means 1. Opening an existing journal
	// directory pins the count — reopening with a different one fails.
	Shards int
	// Engine configures every shard engine and the global resolve pass
	// (threshold, epsilon, seed, crowd source, observability). One
	// config everywhere is what makes the sharded system equivalent to
	// a single engine with the same config.
	Engine incremental.Config
}

// Group is a sharded online dedup engine: Add routes records to their
// home shards, AddAnswer routes crowd answers, Resolve runs a global
// resolve pass, and Snapshot serves the current clustering without
// taking any write lock. All ids exposed by Group are global ids,
// dense across shards in arrival order.
//
// Concurrency: mu guards all routing state and the router journal;
// each shard engine is touched only by its own queue goroutine — or by
// Resolve/Checkpoint/Close after draining every queue. Reads go
// through the atomic snapshot pointer and never block.
type Group struct {
	cfg Config
	n   int

	mu        sync.Mutex
	intakeOK  *sync.Cond // broadcast when resolving clears
	resolving bool       // a resolve/checkpoint barrier is active
	closed    bool
	failed    error // sticky: a half-committed resolve fan-out

	shards []*shardState

	// Global id space. home is set at route time (routing never
	// fails); local is -1 until the shard's fsync acks the record, and
	// stays -1 forever if the append fails or the record's WAL entry
	// is lost in a crash — a hole. Holes are permanent: global ids are
	// never reassigned once potentially durable.
	nextGID int
	home    []int   // gid -> shard
	local   []int   // gid -> local id within home shard, -1 = hole/in-flight
	gids    [][]int // shard -> local id -> gid

	// stats mirrors each engine's occupancy so snapshots never read an
	// engine another goroutine may be mutating; each shard's entry is
	// written only by that engine's owner (its queue goroutine, or a
	// barrier holder).
	stats []ShardStats

	// probe is the global blocking index over every record in gid
	// order; the cross-shard pairs it emits accumulate in handoff
	// until the next resolve. nil for single-shard groups (no pair can
	// cross).
	probe   *blocking.IncrementalIndex
	handoff []blocking.ScoredPair // cross-shard pending pairs, gid space

	// Cross-shard answers live at the router (neither shard holds both
	// records); same-shard answers live in the home shard's engine.
	xans map[record.Pair]float64
	xord []record.Pair
	xsrc map[record.Pair]string

	router       *journal.Store // cross answers + global resolve effects; nil when n==1 or volatile
	routerEvents int            // events since the last router checkpoint
	layout       *journal.Layout // the opened journal layout; nil when volatile

	clusters     *unionfind.Growable // global clustering, gid space (n>1)
	round        int
	resolvedUpTo int // gid-space watermark of the last resolve

	snap atomic.Pointer[Snapshot]
}

type shardState struct {
	id  int
	eng *incremental.Engine
	q   *opQueue // single-owner op queue: the only goroutine touching eng
	ack *opQueue // FIFO acknowledgment dispatcher for pipelined commits
}

// New returns a volatile group: shard state lives only in memory.
func New(cfg Config) (*Group, error) {
	g, err := newGroup(cfg, nil)
	if err != nil {
		return nil, err
	}
	g.start()
	return g, nil
}

// Open recovers a group from the sharded journal layout in tree (fresh
// directories start empty) and attaches the per-shard and router
// journals so every state transition is durable. Close the group to
// release them.
func Open(cfg Config, tree journal.Tree) (*Group, error) {
	layout, err := journal.OpenLayout(tree, cfg.Shards)
	if err != nil {
		return nil, err
	}
	cfg.Shards = layout.Shards
	g, err := newGroup(cfg, layout)
	if err != nil {
		return nil, err
	}
	g.start()
	return g, nil
}

// newGroup builds the group, recovering from layout when non-nil. The
// queue goroutines are not yet running.
func newGroup(cfg Config, layout *journal.Layout) (*Group, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 1 || cfg.Shards > journal.MaxShards {
		return nil, fmt.Errorf("shard: shard count %d outside [1,%d]", cfg.Shards, journal.MaxShards)
	}
	g := &Group{
		cfg:      cfg,
		n:        cfg.Shards,
		xans:     make(map[record.Pair]float64),
		xsrc:     make(map[record.Pair]string),
		clusters: &unionfind.Growable{},
	}
	g.intakeOK = sync.NewCond(&g.mu)
	if g.n > 1 {
		g.probe = blocking.NewIncrementalIndex(cfg.Engine.EffectiveTau())
	}
	g.shards = make([]*shardState, g.n)
	g.gids = make([][]int, g.n)
	g.stats = make([]ShardStats, g.n)
	for i := range g.shards {
		g.shards[i] = &shardState{id: i, q: newOpQueue(), ack: newOpQueue()}
	}
	g.layout = layout
	if layout == nil {
		for _, s := range g.shards {
			s.eng = incremental.New(cfg.Engine)
		}
	} else if err := g.recover(layout); err != nil {
		for _, s := range g.shards {
			if s.eng != nil {
				s.eng.Close()
			}
		}
		if g.router != nil {
			g.router.Close()
		}
		return nil, err
	}
	g.refreshStatsLocked()
	g.publishSnapshotLocked()
	return g, nil
}

// refreshStatsLocked resyncs every stats mirror from its engine. Legal
// only while all engines are quiescent (construction or a barrier).
func (g *Group) refreshStatsLocked() {
	for i, s := range g.shards {
		g.stats[i] = statsOf(s.eng)
	}
}

// statsOf reads one engine's occupancy; the caller must own the engine.
func statsOf(e *incremental.Engine) ShardStats {
	return ShardStats{Records: e.Len(), PendingPairs: e.PendingPairs(), Answers: e.AnswerCount()}
}

// start launches the shard queue and acknowledgment goroutines.
func (g *Group) start() {
	for _, s := range g.shards {
		go s.q.run()
		go s.ack.run()
	}
}

// Shards returns the shard count.
func (g *Group) Shards() int { return g.n }

// usableLocked rejects operations on a closed or failed group.
func (g *Group) usableLocked() error {
	if g.closed {
		return fmt.Errorf("shard: group closed")
	}
	if g.failed != nil {
		return fmt.Errorf("shard: group failed (restart to recover): %w", g.failed)
	}
	return nil
}

// awaitIntakeLocked blocks while a resolve/checkpoint barrier holds,
// then re-checks usability.
func (g *Group) awaitIntakeLocked() error {
	for g.resolving && !g.closed {
		g.intakeOK.Wait()
	}
	return g.usableLocked()
}

// homeShard returns the shard owning the record's minimum normalized
// token. Tokenless records go to shard 0.
func (g *Group) homeShard(text string) int {
	if g.n == 1 {
		return 0
	}
	toks := record.SortedTokens(text)
	if len(toks) == 0 {
		return 0
	}
	return ownerOf(toks[0], g.n)
}

// ownerOf maps a token to its owning shard by FNV-1a hash.
func ownerOf(token string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(token))
	return int(h.Sum32() % uint32(n))
}

// Add routes each record to its home shard, assigns dense global ids,
// and acknowledges after the home shard's journal fsync. Records bound
// for different shards are appended (and fsynced) in parallel. It
// returns the assigned global ids; on error, ids holds the prefix that
// was durably committed.
func (g *Group) Add(recs ...incremental.Record) ([]int, error) {
	type ack struct {
		gid  int
		done chan error
	}
	acks := make([]ack, 0, len(recs))

	g.mu.Lock()
	if err := g.awaitIntakeLocked(); err != nil {
		g.mu.Unlock()
		return nil, err
	}
	for _, r := range recs {
		r := r
		gid := g.nextGID
		g.nextGID++
		text := record.New(0, r.Fields).Text()
		sid := g.homeShard(text)
		g.home = append(g.home, sid)
		g.local = append(g.local, -1)
		if g.probe != nil {
			// The probe index is fed in gid order inside the serial
			// section, so every emitted pair's earlier endpoint is
			// already routed; pairs whose endpoints live on different
			// shards are the ones no shard can discover on its own.
			for _, sp := range g.probe.Add(text) {
				if g.home[int(sp.Pair.Lo)] != sid {
					g.handoff = append(g.handoff, sp)
				}
			}
		}
		r.GID = gid
		s := g.shards[sid]
		done := make(chan error, 1)
		acks = append(acks, ack{gid: gid, done: done})
		// Two phases: the queue op appends + applies without blocking
		// on the fsync, so the queue goroutine moves straight on to the
		// next record and the journal's committer batches their events
		// into one group. The ack op — FIFO on the shard's ack queue,
		// so acknowledgment order matches append order — waits for the
		// group sync and only then exposes the gid as live.
		s.q.push(func() {
			lid, wait, err := s.eng.AddBuffered(r)
			st := statsOf(s.eng)
			s.ack.push(func() {
				aerr := err
				if aerr == nil {
					aerr = <-wait
				}
				if aerr == nil {
					g.mu.Lock()
					if lid != len(g.gids[s.id]) {
						aerr = fmt.Errorf("shard %d: local id %d out of order (expected %d)", s.id, lid, len(g.gids[s.id]))
					} else {
						g.local[gid] = lid
						g.gids[s.id] = append(g.gids[s.id], gid)
						g.stats[s.id] = st
						g.publishSnapshotLocked()
					}
					g.mu.Unlock()
				}
				done <- aerr
			})
		})
	}
	g.mu.Unlock()

	ids := make([]int, 0, len(acks))
	for _, a := range acks {
		if err := <-a.done; err != nil {
			// Remaining acks must still be reaped so no goroutine
			// blocks, but the failed record's gid is now a hole and
			// later ids in this batch are not reported as committed.
			for _, rest := range acks[len(ids)+1:] {
				<-rest.done
			}
			return ids, err
		}
		ids = append(ids, a.gid)
	}
	return ids, nil
}

// ValidateAnswer checks whether (lo,hi,fc) — in global ids — is an
// answer AddAnswer would accept, without changing any state.
func (g *Group) ValidateAnswer(lo, hi int, fc float64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.validateAnswerLocked(lo, hi, fc)
}

func (g *Group) validateAnswerLocked(lo, hi int, fc float64) error {
	if lo < 0 || lo >= hi || hi >= g.nextGID {
		return fmt.Errorf("shard: answer pair (%d,%d) outside the record universe [0,%d)", lo, hi, g.nextGID)
	}
	if g.local[lo] < 0 || g.local[hi] < 0 {
		return fmt.Errorf("shard: answer pair (%d,%d) references an unknown record", lo, hi)
	}
	if fc < 0 || fc > 1 || fc != fc {
		return fmt.Errorf("shard: answer fc %v outside [0,1]", fc)
	}
	return nil
}

// AddAnswer feeds an externally-obtained crowd answer, keyed by global
// ids, into the cache of the pair's home shard — or into the router's
// cross-shard cache when the records live on different shards. First
// answer wins; re-adding a known pair is a silent no-op.
func (g *Group) AddAnswer(lo, hi int, fc float64, source string) error {
	g.mu.Lock()
	if err := g.awaitIntakeLocked(); err != nil {
		g.mu.Unlock()
		return err
	}
	if err := g.validateAnswerLocked(lo, hi, fc); err != nil {
		g.mu.Unlock()
		return err
	}
	sLo, sHi := g.home[lo], g.home[hi]
	if sLo == sHi {
		s := g.shards[sLo]
		llo, lhi := g.local[lo], g.local[hi]
		done := make(chan error, 1)
		// Same two-phase shape as Add: append + apply on the queue
		// goroutine, acknowledgment after the commit group syncs.
		s.q.push(func() {
			wait, err := s.eng.AddAnswerBuffered(llo, lhi, fc, source)
			st := statsOf(s.eng)
			s.ack.push(func() {
				aerr := err
				if aerr == nil {
					aerr = <-wait
				}
				if aerr == nil {
					g.mu.Lock()
					g.stats[s.id] = st
					g.publishSnapshotLocked()
					g.mu.Unlock()
				}
				done <- aerr
			})
		})
		g.mu.Unlock()
		return <-done
	}
	defer g.mu.Unlock()
	return g.cacheCrossAnswerLocked(record.MakePair(record.ID(lo), record.ID(hi)), fc, source, true)
}

// cacheCrossAnswerLocked stores a cross-shard answer at the router,
// journaling it first (WAL discipline) when asked to. Keep-first.
func (g *Group) cacheCrossAnswerLocked(p record.Pair, fc float64, source string, journalIt bool) error {
	if _, known := g.xans[p]; known {
		return nil
	}
	if journalIt {
		if err := g.routerAppendLocked(journal.Event{Type: journal.EventAnswer, Answer: &journal.AnswerData{
			Lo: int(p.Lo), Hi: int(p.Hi), FC: fc, Source: source,
		}}); err != nil {
			return err
		}
	}
	g.xans[p] = fc
	g.xord = append(g.xord, p)
	if source != "" {
		g.xsrc[p] = source
	}
	if journalIt {
		g.publishSnapshotLocked()
	}
	return nil
}

// routerAppendLocked journals one router event; a no-op when volatile.
func (g *Group) routerAppendLocked(ev journal.Event) error {
	if g.router == nil {
		return nil
	}
	if _, err := g.router.Append(ev); err != nil {
		return err
	}
	g.routerEvents++
	return nil
}

// globalPair translates a shard-local pair to global ids. Global ids
// are assigned in arrival order, so within one shard the local order
// and the gid order agree and Lo/Hi survive translation.
func (g *Group) globalPair(sid int, p record.Pair) record.Pair {
	return record.MakePair(record.ID(g.gids[sid][int(p.Lo)]), record.ID(g.gids[sid][int(p.Hi)]))
}

// barrier blocks intake, waits for every shard queue to drain, flushes
// every engine's commit group, and waits for the ack queues to finish
// their bookkeeping, then takes mu. The caller must call release when
// done. While the barrier holds, shard engines are quiescent, every
// applied event is durable, and every durable record is visible in the
// gid maps — without the flush + ack drain, a resolve could see
// records applied in an engine but still holes in g.local, and lift
// their clusters out of range.
func (g *Group) barrier() error {
	g.mu.Lock()
	for g.resolving && !g.closed {
		g.intakeOK.Wait()
	}
	if err := g.usableLocked(); err != nil {
		g.mu.Unlock()
		return err
	}
	g.resolving = true
	g.mu.Unlock()
	for _, s := range g.shards {
		s.q.waitIdle()
	}
	var flushErr error
	for _, s := range g.shards {
		if err := s.eng.Flush(); err != nil && flushErr == nil {
			flushErr = fmt.Errorf("shard %d flush: %w", s.id, err)
		}
	}
	for _, s := range g.shards {
		s.ack.waitIdle()
	}
	g.mu.Lock()
	if flushErr != nil {
		// Some engine applied events whose durability failed: its
		// in-memory state can no longer be trusted to match any
		// journal. Fail sticky; restart recovers the durable prefix.
		g.failed = flushErr
		g.resolving = false
		g.intakeOK.Broadcast()
		g.mu.Unlock()
		return flushErr
	}
	return nil
}

// release ends a barrier and republishes the snapshot. Engines are
// still quiescent here, so the stats mirrors can be resynced.
func (g *Group) release() {
	g.refreshStatsLocked()
	g.resolving = false
	g.publishSnapshotLocked()
	g.intakeOK.Broadcast()
	g.mu.Unlock()
}

// Resolve folds all pending work — every shard's candidate pairs plus
// the cross-shard handoff queue — into the global clustering with one
// RunResolve pass, exactly the pass a single engine holding all the
// records would run. The effect is journaled router-first, then fanned
// out to each shard's journal; recovery repairs a crash between the
// two. ctx cancels the pass mid-crowd-iteration, leaving all state as
// before the call (answers already received stay cached).
func (g *Group) Resolve(ctx context.Context) (incremental.ResolveStats, error) {
	if err := g.barrier(); err != nil {
		return incremental.ResolveStats{}, err
	}
	defer g.release()

	if g.n == 1 {
		// One shard is a single engine; its own resolve path already
		// journals answers and the effect into the shard journal.
		s := g.shards[0]
		st, err := s.eng.Resolve(ctx)
		if err == nil {
			g.round = s.eng.Round()
			g.resolvedUpTo = g.nextGID
			g.clusters = forestOf(g.liftClusters(s.eng.Clusters(), 0), g.nextGID)
		}
		return st, err
	}

	n := g.nextGID
	pend := make([]blocking.ScoredPair, 0)
	for _, s := range g.shards {
		for _, sp := range s.eng.PendingScored() {
			pend = append(pend, blocking.ScoredPair{Pair: g.globalPair(s.id, sp.Pair), Score: sp.Score})
		}
	}
	for _, sp := range g.handoff {
		// A hole endpoint means the record was never acked: the pair
		// must not become a candidate (the record does not exist).
		if g.local[int(sp.Pair.Lo)] >= 0 && g.local[int(sp.Pair.Hi)] >= 0 {
			pend = append(pend, sp)
		}
	}
	answered := append([]record.Pair(nil), g.xord...)
	for _, s := range g.shards {
		for _, p := range s.eng.AnsweredPairs() {
			answered = append(answered, g.globalPair(s.id, p))
		}
	}

	clusters, stats, err := incremental.RunResolve(g.cfg.Engine, incremental.ResolveState{
		N:            n,
		Round:        g.round + 1,
		ResolvedUpTo: g.resolvedUpTo,
		Clusters:     g.clusters,
		Pending:      pend,
		Answered:     answered,
		Answer:       g.lookupAnswerLocked,
		Sink:         g.sinkAnswerLocked,
		Ctx:          ctx,
	})
	if err != nil {
		return stats, err
	}

	// Commit order: the router journal records the global effect first,
	// then each shard journals its restriction. A crash in between
	// leaves lagging shards, which recovery repairs from the router's
	// record — the reverse order could lose the global clustering with
	// shards already advanced, which nothing could repair.
	if err := g.routerAppendLocked(journal.Event{Type: journal.EventResolve, Resolve: &journal.ResolveData{
		Round: stats.Round, ResolvedUpTo: n, Clusters: clusters,
	}}); err != nil {
		return stats, err
	}
	for _, s := range g.shards {
		if err := s.eng.ApplyResolve(stats.Round, g.restrictClusters(clusters, s.id)); err != nil {
			// Some shards committed, some did not: in-memory state can
			// no longer be trusted to match any journal. Fail sticky;
			// recovery reconciles from the router journal.
			g.failed = fmt.Errorf("resolve fan-out to shard %d: %w", s.id, err)
			return stats, g.failed
		}
	}

	g.clusters = forestOf(clusters, n)
	g.round = stats.Round
	g.resolvedUpTo = n
	g.handoff = nil // every handoff pair has Hi < n and is now covered
	if err := g.routerMaybeCheckpointLocked(); err != nil {
		return stats, err
	}
	return stats, nil
}

// lookupAnswerLocked finds a cached answer for a global pair: the
// router's cross-shard cache, or the home shard's when both ends live
// together.
func (g *Group) lookupAnswerLocked(p record.Pair) (float64, bool) {
	if fc, ok := g.xans[p]; ok {
		return fc, true
	}
	lo, hi := int(p.Lo), int(p.Hi)
	if g.local[lo] < 0 || g.local[hi] < 0 {
		return 0, false
	}
	if g.home[lo] != g.home[hi] {
		return 0, false
	}
	return g.shards[g.home[lo]].eng.Answer(g.local[lo], g.local[hi])
}

// sinkAnswerLocked routes one fresh resolve answer to its durable home:
// the owning shard's journal for same-shard pairs (the engine caches
// and journals it), the router journal otherwise. Safe to call only
// under a barrier (shard queues drained).
func (g *Group) sinkAnswerLocked(p record.Pair, fc float64, source string) error {
	lo, hi := int(p.Lo), int(p.Hi)
	if g.local[lo] >= 0 && g.local[hi] >= 0 && g.home[lo] == g.home[hi] {
		return g.shards[g.home[lo]].eng.AddAnswer(g.local[lo], g.local[hi], fc, source)
	}
	return g.cacheCrossAnswerLocked(p, fc, source, true)
}

// liftClusters translates one shard's local-id clustering into global
// ids — the inverse of restrictClusters. Gid order preserves local
// order within a shard, so canonical form survives the lift.
func (g *Group) liftClusters(clusters [][]int, sid int) [][]int {
	out := make([][]int, len(clusters))
	for i, set := range clusters {
		lifted := make([]int, len(set))
		for j, l := range set {
			lifted[j] = g.gids[sid][l]
		}
		out[i] = lifted
	}
	return out
}

// restrictClusters projects a global clustering onto one shard's local
// id space, dropping other shards' members and hole gids.
func (g *Group) restrictClusters(clusters [][]int, sid int) [][]int {
	var out [][]int
	for _, set := range clusters {
		var loc []int
		for _, gid := range set {
			if g.home[gid] == sid && g.local[gid] >= 0 {
				loc = append(loc, g.local[gid])
			}
		}
		if len(loc) > 0 {
			out = append(out, loc)
		}
	}
	return out
}

// forestOf builds a union-find over n elements from a cluster listing.
func forestOf(clusters [][]int, n int) *unionfind.Growable {
	uf := &unionfind.Growable{}
	uf.Grow(n)
	for _, set := range clusters {
		for _, m := range set[1:] {
			uf.Union(set[0], m)
		}
	}
	return uf
}

// routerMaybeCheckpointLocked compacts the router journal once enough
// events accumulate, mirroring the per-engine checkpoint cadence.
func (g *Group) routerMaybeCheckpointLocked() error {
	if g.router == nil || g.cfg.Engine.CheckpointEvery <= 0 || g.routerEvents < g.cfg.Engine.CheckpointEvery {
		return nil
	}
	return g.routerCheckpointLocked()
}

// routerCheckpointLocked writes the router's compacted state: the
// cross-shard answer cache and the latest global clustering.
func (g *Group) routerCheckpointLocked() error {
	if g.router == nil {
		return nil
	}
	answers := make([]journal.AnswerData, 0, len(g.xord))
	for _, p := range g.xord {
		answers = append(answers, journal.AnswerData{
			Lo: int(p.Lo), Hi: int(p.Hi), FC: g.xans[p], Source: g.xsrc[p],
		})
	}
	g.clusters.Grow(g.nextGID)
	cp := &journal.Checkpoint{
		Seq:          g.router.NextSeq() - 1,
		Round:        g.round,
		ResolvedUpTo: g.resolvedUpTo,
		Answers:      answers,
		Clusters:     g.clusters.Sets(g.nextGID),
	}
	if err := g.router.WriteCheckpoint(cp); err != nil {
		return err
	}
	g.routerEvents = 0
	return nil
}

// Checkpoint drains all shards and writes a compacted snapshot to every
// journal (each shard's plus the router's). No-op when volatile.
func (g *Group) Checkpoint() error {
	if err := g.barrier(); err != nil {
		return err
	}
	defer g.release()
	for _, s := range g.shards {
		if err := s.eng.Checkpoint(); err != nil {
			return fmt.Errorf("shard %d checkpoint: %w", s.id, err)
		}
	}
	return g.routerCheckpointLocked()
}

// Close drains every shard, stops the queue goroutines, and closes all
// journals. The group rejects further mutations.
func (g *Group) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	g.intakeOK.Broadcast()
	g.mu.Unlock()

	var first error
	for _, s := range g.shards {
		s.q.close() // drains queued ops, then the goroutine exits
		// Closing the engine flushes its committer, resolving every
		// outstanding ack wait — only then can the ack queue drain.
		if err := s.eng.Close(); err != nil && first == nil {
			first = err
		}
		s.ack.close()
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.router != nil {
		if err := g.router.Close(); err != nil && first == nil {
			first = err
		}
		g.router = nil
	}
	return first
}
