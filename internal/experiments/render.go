package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"acd/internal/dataset"
)

// RenderTable3 prints the measured Table 3 next to the paper's figures.
func RenderTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3: dataset characteristics and crowd answers (measured vs paper)")
	fmt.Fprintf(w, "%-11s %9s %9s %18s %18s %18s\n",
		"dataset", "records", "entities", "candidate pairs", "err rate (3w)", "err rate (5w)")
	for _, r := range rows {
		tgt, _ := dataset.Target(r.Dataset)
		fmt.Fprintf(w, "%-11s %9d %9d %9d %-8s %7.1f%% %-9s %7.1f%% %-9s\n",
			r.Dataset, r.Records, r.Entities,
			r.CandidatePairs, fmt.Sprintf("(%d)", tgt.CandidatePairs),
			100*r.ErrorRate3W, fmt.Sprintf("(%.1f%%)", 100*tgt.ErrorRate3W),
			100*r.ErrorRate5W, fmt.Sprintf("(%.1f%%)", 100*tgt.ErrorRate5W))
	}
}

// RenderFigure5 prints a dataset's ε sweep (Figures 5a–5d).
func RenderFigure5(w io.Writer, res Figure5Result) {
	fmt.Fprintf(w, "Figure 5: PC-Pivot vs epsilon on %s\n", res.Dataset)
	fmt.Fprintf(w, "%-9s %18s %18s\n", "epsilon", "crowd iterations", "pairs issued")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%-9.2f %18.1f %18.1f\n", p.Epsilon, p.Iterations, p.Pairs)
	}
	fmt.Fprintf(w, "%-9s %18.1f %18.1f\n", "Crowd-Pivot", res.CrowdPivotIterations, res.CrowdPivotPairs)
}

// RenderComparison prints one dataset/setting block of Figures 6–8.
func RenderComparison(w io.Writer, dataset string, workers int, rows []MethodResult) {
	fmt.Fprintf(w, "Figures 6-8: %s (%dw)\n", dataset, workers)
	fmt.Fprintf(w, "%-10s %8s %10s %8s %12s %12s\n",
		"method", "F1", "precision", "recall", "pairs", "iterations")
	for _, r := range rows {
		iter := fmt.Sprintf("%12.1f", r.Iterations)
		if !r.HasIterations {
			iter = fmt.Sprintf("%12s", "-")
		}
		fmt.Fprintf(w, "%-10s %8.3f %10.3f %8.3f %12.1f %s\n",
			r.Method, r.F1, r.Precision, r.Recall, r.Pairs, iter)
	}
}

// RenderFigure10 prints the refinement-budget sweep (Figures 10a–10c).
func RenderFigure10(w io.Writer, dataset string, points []Figure10Point) {
	fmt.Fprintf(w, "Figure 10: ACD vs refinement budget T = N_m/x on %s\n", dataset)
	fmt.Fprintf(w, "%-9s %12s %8s %12s\n", "x", "pairs", "F1", "iterations")
	for _, p := range points {
		fmt.Fprintf(w, "N_m/%-5d %12.1f %8.3f %12.1f\n", p.X, p.Pairs, p.F1, p.Iterations)
	}
}

// RenderRefineVariants prints the refinement-strategy ablation.
func RenderRefineVariants(w io.Writer, dataset string, workers int, rows []RefineVariantResult) {
	fmt.Fprintf(w, "Ablation: refinement strategies on %s (%dw), from a shared PC-Pivot start\n", dataset, workers)
	fmt.Fprintf(w, "%-13s %8s %12s %12s\n", "variant", "F1", "pairs", "iterations")
	for _, r := range rows {
		fmt.Fprintf(w, "%-13s %8.3f %12.1f %12.1f\n", r.Variant, r.F1, r.Pairs, r.Iterations)
	}
}

// RenderAdaptive prints the adaptive worker-allocation ablation.
func RenderAdaptive(w io.Writer, dataset string, rows []AdaptiveResult) {
	fmt.Fprintf(w, "Ablation: worker allocation on %s (Section 8 future work)\n", dataset)
	fmt.Fprintf(w, "%-14s %12s %14s %8s\n", "allocation", "error rate", "votes/pair", "ACD F1")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %11.2f%% %14.2f %8.3f\n", r.Allocation, 100*r.ErrorRate, r.VotesPerPair, r.F1)
	}
}

// RenderRobustness prints the error-sensitivity sweep.
func RenderRobustness(w io.Writer, dataset string, points []RobustnessPoint) {
	fmt.Fprintf(w, "Ablation: error sensitivity on %s (uniform worker error, 3 workers)\n", dataset)
	fmt.Fprintf(w, "%-13s %13s %8s %10s %8s %10s\n",
		"worker error", "majority err", "ACD", "CrowdER+", "TransM", "TransNode")
	for _, p := range points {
		fmt.Fprintf(w, "%12.0f%% %12.1f%% %8.3f %10.3f %8.3f %10.3f\n",
			100*p.WorkerError, 100*p.MajorityErr,
			p.F1["ACD"], p.F1["CrowdER+"], p.F1["TransM"], p.F1["TransNode"])
	}
}

// RenderProcessingTime prints the simulated wall-clock comparison.
func RenderProcessingTime(w io.Writer, dataset string, rows []TimeResult) {
	fmt.Fprintf(w, "Ablation: simulated crowd time on %s (5-minute mean HIT latency)\n", dataset)
	fmt.Fprintf(w, "%-13s %12s %14s\n", "method", "iterations", "hours")
	for _, r := range rows {
		fmt.Fprintf(w, "%-13s %12.1f %14.1f\n", r.Method, r.Iterations, r.Hours)
	}
}

// RenderAggregation prints the vote-aggregation ablation.
func RenderAggregation(w io.Writer, dataset string, rows []AggregationResult) {
	fmt.Fprintf(w, "Ablation: vote aggregation on %s (open worker pool, 5 votes/pair)\n", dataset)
	fmt.Fprintf(w, "%-13s %12s %8s\n", "aggregation", "error rate", "ACD F1")
	for _, r := range rows {
		fmt.Fprintf(w, "%-13s %11.2f%% %8.3f\n", r.Aggregation, 100*r.ErrorRate, r.F1)
	}
}

// RenderCostPerF1 prints one dataset's marketplace comparison: each
// arm's quality, spend, cost per F1 point, and where the money went.
func RenderCostPerF1(w io.Writer, row CostPerF1Row) {
	fmt.Fprintf(w, "Marketplace cost per F1 on %s (err: fast %.1f%%, careful %.1f%%, machine %.1f%%)\n",
		row.Dataset, 100*row.FastErr, 100*row.CarefulErr, 100*row.MachineErr)
	fmt.Fprintf(w, "%-13s %8s %10s %10s %10s %10s  %s\n",
		"arm", "F1", "cents", "cents/F1", "pairs", "inferred", "spend by backend")
	for _, a := range row.Arms {
		ids := make([]string, 0, len(a.Spend))
		for id := range a.Spend {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		var split strings.Builder
		for i, id := range ids {
			if i > 0 {
				split.WriteByte(' ')
			}
			fmt.Fprintf(&split, "%s=%.1f", id, a.Spend[id])
		}
		fmt.Fprintf(w, "%-13s %8.3f %10.1f %10.1f %10.1f %10.1f  %s\n",
			a.Name, a.F1, a.Cents, a.CostPerF1, a.Pairs, a.ShortCircuited, split.String())
	}
}

// Rule prints a separator line.
func Rule(w io.Writer) { fmt.Fprintln(w, strings.Repeat("-", 78)) }
