package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bar is one labeled value in a text bar chart.
type Bar struct {
	Label string
	Value float64
}

// ChartOptions controls text-chart rendering.
type ChartOptions struct {
	// Width is the maximum bar width in characters (default 50).
	Width int
	// Log renders bar lengths on a log10 scale (the paper's iteration
	// plots are log-scale); zero and negative values get empty bars.
	Log bool
	// Format formats the numeric value after the bar (default "%.3g").
	Format string
}

// RenderBars draws a horizontal bar chart. Bars are scaled to the
// maximum value (or its log); every row shows label, bar and value.
func RenderBars(w io.Writer, title string, bars []Bar, opts ChartOptions) {
	if opts.Width <= 0 {
		opts.Width = 50
	}
	if opts.Format == "" {
		opts.Format = "%.3g"
	}
	fmt.Fprintln(w, title)
	labelW := 0
	for _, b := range bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	max := 0.0
	for _, b := range bars {
		v := scaleValue(b.Value, opts.Log)
		if v > max {
			max = v
		}
	}
	for _, b := range bars {
		n := 0
		if max > 0 {
			n = int(math.Round(scaleValue(b.Value, opts.Log) / max * float64(opts.Width)))
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(w, "  %-*s |%s%s "+opts.Format+"\n",
			labelW, b.Label,
			strings.Repeat("#", n), strings.Repeat(" ", opts.Width-n),
			b.Value)
	}
}

func scaleValue(v float64, log bool) float64 {
	if !log {
		return v
	}
	if v <= 0 {
		return 0
	}
	// log10(1 + v) keeps small positive values visible and zero empty.
	return math.Log10(1 + v)
}

// RenderComparisonCharts draws one dataset/setting block of Figures 6-8
// as bar charts: F1 (linear), crowdsourced pairs (linear), and crowd
// iterations (log scale, as in the paper's Figure 8).
func RenderComparisonCharts(w io.Writer, dataset string, workers int, rows []MethodResult) {
	var f1s, pairs, iters []Bar
	for _, r := range rows {
		f1s = append(f1s, Bar{Label: r.Method, Value: r.F1})
		pairs = append(pairs, Bar{Label: r.Method, Value: r.Pairs})
		if r.HasIterations {
			iters = append(iters, Bar{Label: r.Method, Value: r.Iterations})
		}
	}
	RenderBars(w, fmt.Sprintf("Figure 6 — F1 on %s (%dw)", dataset, workers), f1s,
		ChartOptions{Format: "%.3f"})
	RenderBars(w, fmt.Sprintf("Figure 7 — pairs crowdsourced on %s (%dw)", dataset, workers), pairs,
		ChartOptions{Format: "%.0f"})
	RenderBars(w, fmt.Sprintf("Figure 8 — crowd iterations on %s (%dw, log scale)", dataset, workers), iters,
		ChartOptions{Log: true, Format: "%.0f"})
}
