package experiments

import (
	"fmt"

	"acd/internal/crowd"
	"acd/internal/dataset"
	"acd/internal/obs"
	"acd/internal/pruning"
)

// DatasetNames lists the evaluation datasets in the paper's order.
var DatasetNames = []string{"Paper", "Restaurant", "Product"}

// pruneParallelism is the pruning.Options.Parallelism setting every
// instance is built with (0 = auto). It is configured once at startup
// (acdbench's -parallel flag) before any instance is built.
var pruneParallelism int

// SetPruneParallelism sets the worker-pool size of the pruning phase for
// subsequently built instances: 0 = one worker per CPU, 1 = sequential,
// n > 1 = exactly n workers. Pruning output — and therefore every
// experiment result — is identical at every setting; only the wall-clock
// time of instance construction changes. Not safe to call concurrently
// with NewInstance.
func SetPruneParallelism(p int) { pruneParallelism = p }

// recorder is the obs sink subsequently built instances report to (nil =
// none). Like pruneParallelism it is configured once at startup
// (acdbench's -metrics/-trace flags) before any instance is built.
var recorder *obs.Recorder

// SetRecorder routes the pruning-phase metrics and the crowd accounting
// of every subsequently built instance to rec. All sessions opened on an
// instance's answer sets inherit the recorder, so a whole experiment
// run accumulates into one snapshot. Recording never changes results.
// Not safe to call concurrently with NewInstance.
func SetRecorder(rec *obs.Recorder) { recorder = rec }

// Instance is a fully prepared experimental setup for one dataset: the
// generated records, the shared pruning-phase output, and one answer set
// per AMT setting (the paper's files Paper(3w), Paper(5w), ...).
type Instance struct {
	Data    *dataset.Dataset
	Cands   *pruning.Candidates
	Mixture crowd.Mixture
	answers map[int]*crowd.AnswerSet
}

// NewInstance generates a dataset, runs the pruning phase (Jaccard,
// τ = 0.3, as in Section 6.1), calibrates the worker-difficulty mixture
// to Table 3's error rates, and draws the 3-worker and 5-worker answer
// sets.
func NewInstance(name string, seed int64) (*Instance, error) {
	d, err := dataset.ByName(name, seed)
	if err != nil {
		return nil, err
	}
	tgt, _ := dataset.Target(name)
	cands := pruning.Prune(d.Records, pruning.Options{Parallelism: pruneParallelism, Obs: recorder})
	mix, _ := crowd.Calibrate(tgt.ErrorRate3W, tgt.ErrorRate5W)
	truth := d.TruthFn()
	diff := crowd.DifficultyAssignment(cands.PairList(), cands.Score, truth, mix)

	inst := &Instance{
		Data:    d,
		Cands:   cands,
		Mixture: mix,
		answers: make(map[int]*crowd.AnswerSet, 2),
	}
	inst.answers[3] = crowd.BuildAnswers(cands.PairList(), truth, diff, crowd.ThreeWorker(seed+101))
	inst.answers[5] = crowd.BuildAnswers(cands.PairList(), truth, diff, crowd.FiveWorker(seed+102))
	inst.answers[3].SetRecorder(recorder)
	inst.answers[5].SetRecorder(recorder)
	return inst, nil
}

// MustInstance is NewInstance for known-good names; it panics on error.
func MustInstance(name string, seed int64) *Instance {
	inst, err := NewInstance(name, seed)
	if err != nil {
		panic(err)
	}
	return inst
}

// Answers returns the answer set for a worker setting (3 or 5).
func (in *Instance) Answers(workers int) *crowd.AnswerSet {
	a, ok := in.answers[workers]
	if !ok {
		panic(fmt.Sprintf("experiments: no %d-worker answers", workers))
	}
	return a
}
