package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"acd/internal/dataset"
)

func TestTable3Shape(t *testing.T) {
	rows := Table3(1)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		tgt, ok := dataset.Target(r.Dataset)
		if !ok {
			t.Fatalf("unknown dataset %q", r.Dataset)
		}
		if r.Records != tgt.Records || r.Entities != tgt.Entities {
			t.Errorf("%s: records/entities %d/%d, want %d/%d",
				r.Dataset, r.Records, r.Entities, tgt.Records, tgt.Entities)
		}
		ratio := float64(r.CandidatePairs) / float64(tgt.CandidatePairs)
		if ratio < 0.6 || ratio > 1.4 {
			t.Errorf("%s: candidate pairs %d vs paper %d", r.Dataset, r.CandidatePairs, tgt.CandidatePairs)
		}
		if math.Abs(r.ErrorRate3W-tgt.ErrorRate3W) > 0.03 {
			t.Errorf("%s: 3w error %.3f vs paper %.3f", r.Dataset, r.ErrorRate3W, tgt.ErrorRate3W)
		}
		if math.Abs(r.ErrorRate5W-tgt.ErrorRate5W) > 0.03 {
			t.Errorf("%s: 5w error %.3f vs paper %.3f", r.Dataset, r.ErrorRate5W, tgt.ErrorRate5W)
		}
	}
}

// TestFigure5Shape encodes Section 6.2's observations on the ε sweep:
// PC-Pivot needs far fewer crowd iterations than Crowd-Pivot (≥5× at
// ε = 0.1); iterations fall as ε grows, with the largest drop between 0
// and 0.1; pairs issued grow with ε.
func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	inst := MustInstance("Restaurant", 1)
	res := Figure5(inst, 3)
	if len(res.Points) != len(EpsilonSweep) {
		t.Fatalf("%d points", len(res.Points))
	}
	at := func(eps float64) Figure5Point {
		for _, p := range res.Points {
			if p.Epsilon == eps {
				return p
			}
		}
		t.Fatalf("no point for eps %v", eps)
		return Figure5Point{}
	}
	if r := res.CrowdPivotIterations / at(0.1).Iterations; r < 5 {
		t.Errorf("Crowd-Pivot/PC-Pivot(0.1) iteration ratio = %.1f, want ≥ 5", r)
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Iterations > res.Points[i-1].Iterations+1 {
			t.Errorf("iterations grew from eps %.2f to %.2f: %.1f -> %.1f",
				res.Points[i-1].Epsilon, res.Points[i].Epsilon,
				res.Points[i-1].Iterations, res.Points[i].Iterations)
		}
		if res.Points[i].Pairs+1 < res.Points[i-1].Pairs {
			t.Errorf("pairs shrank from eps %.2f to %.2f: %.1f -> %.1f",
				res.Points[i-1].Epsilon, res.Points[i].Epsilon,
				res.Points[i-1].Pairs, res.Points[i].Pairs)
		}
	}
	// The drop from 0 to 0.1 is the steepest part of the curve: per unit
	// of ε it must far exceed the drop over the remaining 0.1→0.8 span.
	drop01 := (at(0).Iterations - at(0.1).Iterations) / 0.1
	drop18 := (at(0.1).Iterations - at(0.8).Iterations) / 0.7
	if drop01 < 2*drop18 {
		t.Errorf("per-ε iteration drop 0→0.1 (%.1f) should dwarf 0.1→0.8 (%.1f)", drop01, drop18)
	}
}

// TestComparisonShapePaper encodes Section 6.3's headline claims on the
// hardest dataset: CrowdER+ and ACD lead in F1 and stay close; PC-Pivot
// alone is much worse; TransM and TransNode collapse; GCER trails ACD at
// the same budget; ACD crowdsources far fewer pairs than CrowdER+;
// CrowdER+ needs exactly one iteration.
func TestComparisonShapePaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison")
	}
	inst := MustInstance("Paper", 1)
	rows := Comparison(inst, 3)
	get := func(m string) MethodResult {
		for _, r := range rows {
			if r.Method == m {
				return r
			}
		}
		t.Fatalf("missing method %s", m)
		return MethodResult{}
	}
	acd, pc, ce := get("ACD"), get("PC-Pivot"), get("CrowdER+")
	gc, tm, tn := get("GCER"), get("TransM"), get("TransNode")

	if math.Abs(acd.F1-ce.F1) > 0.08 {
		t.Errorf("ACD (%.3f) should be comparable to CrowdER+ (%.3f)", acd.F1, ce.F1)
	}
	if acd.F1-pc.F1 < 0.1 {
		t.Errorf("refinement gain too small: ACD %.3f vs PC-Pivot %.3f", acd.F1, pc.F1)
	}
	if tm.F1 > acd.F1-0.2 || tn.F1 > acd.F1-0.2 {
		t.Errorf("transitivity methods should collapse on Paper: TransM %.3f TransNode %.3f ACD %.3f",
			tm.F1, tn.F1, acd.F1)
	}
	if gc.F1 >= acd.F1 {
		t.Errorf("GCER (%.3f) should trail ACD (%.3f) at the same budget", gc.F1, acd.F1)
	}
	if acd.Pairs > ce.Pairs/2 {
		t.Errorf("ACD pairs (%.0f) should be well below CrowdER+ (%.0f)", acd.Pairs, ce.Pairs)
	}
	if ce.Iterations != 1 {
		t.Errorf("CrowdER+ iterations = %.1f, want 1", ce.Iterations)
	}
	if math.Abs(gc.Pairs-acd.Pairs) > acd.Pairs*0.05 {
		t.Errorf("GCER budget (%.0f) not matched to ACD (%.0f)", gc.Pairs, acd.Pairs)
	}
}

// TestComparisonShapeEasyDatasets: on Restaurant and Product the
// transitivity methods are competitive and PC-Pivot is close to full ACD
// (Section 6.3).
func TestComparisonShapeEasyDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison")
	}
	for _, name := range []string{"Restaurant", "Product"} {
		inst := MustInstance(name, 1)
		rows := Comparison(inst, 3)
		get := func(m string) MethodResult {
			for _, r := range rows {
				if r.Method == m {
					return r
				}
			}
			t.Fatalf("missing method %s", m)
			return MethodResult{}
		}
		acd, pc, tm := get("ACD"), get("PC-Pivot"), get("TransM")
		if acd.F1-pc.F1 > 0.07 {
			t.Errorf("%s: PC-Pivot (%.3f) should be close to ACD (%.3f)", name, pc.F1, acd.F1)
		}
		if acd.F1-tm.F1 > 0.12 {
			t.Errorf("%s: TransM (%.3f) should be competitive with ACD (%.3f)", name, tm.F1, acd.F1)
		}
		// "the numbers of record pairs crowdsourced by TransNode and
		// TransM are almost the same as that by ACD".
		if tm.Pairs > acd.Pairs*1.3 {
			t.Errorf("%s: TransM pairs (%.0f) far above ACD (%.0f)", name, tm.Pairs, acd.Pairs)
		}
	}
}

// TestFiveWorkerImproves: every method's F1 improves (or stays within
// noise) moving from the 3-worker to the 5-worker answers, and the
// transitivity-based methods improve the most on Paper (Section 6.3).
func TestFiveWorkerImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison")
	}
	inst := MustInstance("Product", 1)
	r3 := Comparison(inst, 3)
	r5 := Comparison(inst, 5)
	for i := range r3 {
		if r5[i].F1 < r3[i].F1-0.05 {
			t.Errorf("%s degraded from 3w (%.3f) to 5w (%.3f)", r3[i].Method, r3[i].F1, r5[i].F1)
		}
	}
}

// TestFigure10Shape encodes Appendix C: F1 is insensitive to T, and the
// crowdsourced pairs do not grow as T shrinks (x grows).
func TestFigure10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	inst := MustInstance("Product", 1)
	points := Figure10(inst, 3)
	if len(points) != len(XSweep) {
		t.Fatalf("%d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if math.Abs(points[i].F1-points[0].F1) > 0.05 {
			t.Errorf("F1 sensitive to T: x=%d gives %.3f vs x=%d gives %.3f",
				points[i].X, points[i].F1, points[0].X, points[0].F1)
		}
	}
}

func TestRenderers(t *testing.T) {
	var buf bytes.Buffer
	RenderTable3(&buf, []Table3Row{{Dataset: "Paper", Records: 997, Entities: 191, CandidatePairs: 30000, ErrorRate3W: 0.23, ErrorRate5W: 0.21}})
	if !strings.Contains(buf.String(), "Paper") {
		t.Errorf("Table 3 render missing dataset name")
	}
	buf.Reset()
	RenderFigure5(&buf, Figure5Result{Dataset: "X", Points: []Figure5Point{{Epsilon: 0.1, Iterations: 5, Pairs: 10}}})
	if !strings.Contains(buf.String(), "Crowd-Pivot") {
		t.Errorf("Figure 5 render missing reference row")
	}
	buf.Reset()
	RenderComparison(&buf, "X", 3, []MethodResult{{Method: "ACD", F1: 0.9, HasIterations: true}, {Method: "TransNode"}})
	out := buf.String()
	if !strings.Contains(out, "ACD") || !strings.Contains(out, "-") {
		t.Errorf("comparison render wrong:\n%s", out)
	}
	buf.Reset()
	RenderFigure10(&buf, "X", []Figure10Point{{X: 8, Pairs: 100, F1: 0.9, Iterations: 3}})
	if !strings.Contains(buf.String(), "N_m/8") {
		t.Errorf("Figure 10 render wrong")
	}
}

func TestAblationRenderers(t *testing.T) {
	var buf bytes.Buffer
	RenderRefineVariants(&buf, "X", 3, []RefineVariantResult{{Variant: "PC-Refine", F1: 0.9, Pairs: 10, Iterations: 2}})
	if !strings.Contains(buf.String(), "PC-Refine") {
		t.Errorf("refine-variant render missing row")
	}
	buf.Reset()
	RenderAdaptive(&buf, "X", []AdaptiveResult{{Allocation: "fixed-3w", ErrorRate: 0.1, VotesPerPair: 3, F1: 0.8}})
	if !strings.Contains(buf.String(), "fixed-3w") || !strings.Contains(buf.String(), "10.00%") {
		t.Errorf("adaptive render wrong:\n%s", buf.String())
	}
	buf.Reset()
	RenderAggregation(&buf, "X", []AggregationResult{{Aggregation: "majority", ErrorRate: 0.05, F1: 0.7}})
	if !strings.Contains(buf.String(), "majority") {
		t.Errorf("aggregation render missing row")
	}
	buf.Reset()
	RenderProcessingTime(&buf, "X", []TimeResult{{Method: "PC-Pivot", Iterations: 10, Hours: 2}})
	if !strings.Contains(buf.String(), "PC-Pivot") {
		t.Errorf("processing-time render missing row")
	}
}

func TestInstanceErrors(t *testing.T) {
	if _, err := NewInstance("Bogus", 1); err == nil {
		t.Errorf("unknown dataset accepted")
	}
	inst := MustInstance("Restaurant", 1)
	defer func() {
		if recover() == nil {
			t.Errorf("Answers(7) should panic")
		}
	}()
	inst.Answers(7)
}
