package experiments

import (
	"testing"
	"time"

	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/obs"
)

// faultMix is one column of the deterministic fault-injection sweep.
type faultMix struct {
	name string
	cfg  crowd.ChaosConfig
	// mayFallBack marks mixes whose failure modes can exhaust the retry
	// budget. Mixes that cannot (latency-only faults) must reproduce the
	// fault-free golden clustering bit for bit.
	mayFallBack bool
}

// sweepMixes are the fault regimes the pipeline is exercised under:
// latency-only (hedging territory, no possible fallback), a flaky
// platform (drops + transient errors the retry budget absorbs), and a
// hostile one (heavy drops, errors, and adversarial worker bursts).
var sweepMixes = []faultMix{
	{name: "spikes", cfg: crowd.ChaosConfig{SpikeProb: 0.15, SpikeFactor: 6}},
	{name: "flaky", cfg: crowd.ChaosConfig{DropProb: 0.10, ErrorProb: 0.10, SpikeProb: 0.05}, mayFallBack: true},
	{name: "severe", cfg: crowd.ChaosConfig{
		DropProb: 0.35, ErrorProb: 0.20,
		BurstEvery: 300, BurstLen: 30, BurstDropProb: 0.95,
	}, mayFallBack: true},
}

// fallbackF1Envelope bounds how far below the fault-free golden F1 a
// degraded run (one that answered some questions from the machine
// probability) may land. Graceful degradation means a bounded quality
// loss, not a collapse.
const fallbackF1Envelope = 0.05

// TestFaultToleranceSweep is the deterministic-simulation sweep of the
// fault-tolerant crowd layer: the full ACD pipeline runs on the
// Restaurant dataset across seeds × fault mixes, with every fault drawn
// from a seeded injector and every latency simulated on a virtual clock
// (no test sleeps). Cells whose retry budget absorbed all faults must
// reproduce the fault-free golden clustering exactly; cells that
// degraded to machine-probability fallbacks must stay within a pinned
// F1 envelope. The crowd accounting invariant — distinct questions
// answered equals oracle invocations — must hold in every cell, chaos
// notwithstanding.
func TestFaultToleranceSweep(t *testing.T) {
	inst := MustInstance("Restaurant", 1)
	answers := inst.Answers(3)
	truth := inst.Data.Truth()

	golden := core.ACD(inst.Cands, answers, core.Config{Seed: 7})
	goldenF1 := cluster.Evaluate(golden.Clusters, truth).F1

	sawExactCell, sawFallbackCell := false, false
	for _, mix := range sweepMixes {
		for seed := int64(1); seed <= 3; seed++ {
			name := mix.name + "/" + string(rune('0'+seed))
			rec := obs.New()
			clock := crowd.NewVirtualClock(time.Time{})
			cfg := mix.cfg
			cfg.Seed = seed
			chaos := crowd.NewChaos(answers, cfg)
			rel := crowd.NewReliable(chaos, crowd.ReliableConfig{
				Timeout:  20 * time.Second,
				Retries:  3,
				Backoff:  100 * time.Millisecond,
				Seed:     seed,
				Fallback: inst.Cands.Score,
				Clock:    clock,
			})
			out := core.ACD(inst.Cands, rel, core.Config{Seed: 7, Obs: rec})
			if out.Err != nil {
				t.Fatalf("%s: campaign aborted: %v", name, out.Err)
			}
			m := rec.Snapshot()
			f1 := cluster.Evaluate(out.Clusters, truth).F1
			fallbacks := m.Counters[crowd.MetricFallbacks]
			t.Logf("%s: F1=%.4f (golden %.4f) fallbacks=%d retries=%d hedges=%d timeouts=%d attempts=%d virtual=%s",
				name, f1, goldenF1, fallbacks,
				m.Counters[crowd.MetricRetries], m.Counters[crowd.MetricHedges],
				m.Counters[crowd.MetricTimeouts], m.Counters[crowd.MetricAttempts],
				clock.Elapsed())

			if !mix.mayFallBack && fallbacks != 0 {
				t.Errorf("%s: %d fallbacks under a latency-only mix", name, fallbacks)
			}
			if fallbacks == 0 {
				sawExactCell = true
				// Every question resolved to its true crowd answer, so
				// the run must be indistinguishable from the golden one.
				if !cluster.Equal(out.Clusters, golden.Clusters) {
					t.Errorf("%s: zero-fallback run diverged from the fault-free golden", name)
				}
				if out.Stats != golden.Stats {
					t.Errorf("%s: zero-fallback stats %+v != golden %+v", name, out.Stats, golden.Stats)
				}
			} else {
				sawFallbackCell = true
				if f1 < goldenF1-fallbackF1Envelope {
					t.Errorf("%s: degraded F1 %.4f breaches the envelope (golden %.4f - %.2f)",
						name, f1, goldenF1, fallbackF1Envelope)
				}
			}

			// The accounting invariant survives chaos: the injector
			// consults the oracle exactly once per distinct question.
			qa := m.Counters[crowd.MetricQuestionsAnswered]
			oi := m.Counters[crowd.MetricOracleInvocations]
			if qa != oi {
				t.Errorf("%s: questions_answered %d != oracle_invocations %d", name, qa, oi)
			}
			if qa == 0 {
				t.Errorf("%s: no questions answered", name)
			}
			// Simulated, not slept: the virtual timeline moved.
			if clock.Elapsed() <= 0 {
				t.Errorf("%s: virtual clock never advanced", name)
			}
		}
	}
	// The sweep must exercise both branches of the acceptance criterion.
	if !sawExactCell {
		t.Errorf("no zero-fallback cell: the exact-reproduction branch went untested")
	}
	if !sawFallbackCell {
		t.Errorf("no fallback cell: the degradation branch went untested")
	}
}

// TestFaultToleranceSweepDeterministic reruns one faulty cell and
// requires bit-identical results — the property that makes chaos
// failures debuggable.
func TestFaultToleranceSweepDeterministic(t *testing.T) {
	inst := MustInstance("Restaurant", 1)
	answers := inst.Answers(3)
	run := func() (*core.Output, time.Duration) {
		clock := crowd.NewVirtualClock(time.Time{})
		chaos := crowd.NewChaos(answers, crowd.ChaosConfig{
			Seed: 5, DropProb: 0.25, ErrorProb: 0.15, SpikeProb: 0.05,
		})
		rel := crowd.NewReliable(chaos, crowd.ReliableConfig{
			Timeout:  20 * time.Second,
			Retries:  2,
			Seed:     5,
			Fallback: inst.Cands.Score,
			Clock:    clock,
		})
		out := core.ACD(inst.Cands, rel, core.Config{Seed: 3})
		return &out, clock.Elapsed()
	}
	a, elapsedA := run()
	b, elapsedB := run()
	if !cluster.Equal(a.Clusters, b.Clusters) {
		t.Errorf("same seeds, different clusterings")
	}
	if a.Stats != b.Stats {
		t.Errorf("same seeds, different accounting: %+v vs %+v", a.Stats, b.Stats)
	}
	if elapsedA != elapsedB {
		t.Errorf("same seeds, different virtual timelines: %v vs %v", elapsedA, elapsedB)
	}
}
