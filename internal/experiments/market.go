package experiments

import (
	"math"
	"time"

	"acd/internal/benchfmt"
	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/market"
)

// This file is the marketplace cost experiment: on each Table 3
// dataset, the full ACD pipeline runs against three marketplace
// configurations and the figure of merit is cost per F1 point — cents
// spent divided by the F1 achieved. The expensive accurate fleet and
// the cheap noisy fleet are the single-channel baselines (each is a
// pure passthrough, identical to wiring its answer set directly into
// the session); the mixed fleet routes every question by information
// value per cent across both paid channels plus the free machine
// classifier, packs confidence-ordered HITs, and short-circuits
// transitively implied pairs. The claim under test: heterogeneous
// routing buys (nearly) the expensive fleet's accuracy at a fraction of
// its cost.

// MarketArm is one marketplace configuration's averaged outcome.
type MarketArm struct {
	// Name identifies the arm: "careful-only", "fast-only", "mixed".
	Name string
	// F1, Precision and Recall are the clustering quality (averaged
	// over Repeats runs).
	F1        float64
	Precision float64
	Recall    float64
	// Cents is the average marketplace spend; Pairs the average number
	// of questions the session issued.
	Cents float64
	Pairs float64
	// ShortCircuited is the average number of questions answered for
	// free by transitive inference.
	ShortCircuited float64
	// CostPerF1 is Cents / F1 — the experiment's figure of merit.
	CostPerF1 float64
	// Spend breaks the average spend down by backend id.
	Spend map[string]float64
}

// CostPerF1Row is one dataset's marketplace comparison.
type CostPerF1Row struct {
	Dataset string
	// FastErr, CarefulErr and MachineErr are the measured calibrated
	// error rates the router was given.
	FastErr    float64
	CarefulErr float64
	MachineErr float64
	Arms       []MarketArm
}

// Marketplace prices: the cheap noisy channel (Answers(3)) at 1¢ per
// 20-pair HIT, the expensive accurate channel (Answers(5)) at 6¢ per
// 10-pair HIT — the same 12× per-question price gap as the default
// fleet spec.
const (
	fastCentsPerHIT    = 1
	fastPairsPerHIT    = 20
	carefulCentsPerHIT = 6
	carefulPairsPerHIT = 10
)

// CostPerF1 runs the marketplace comparison on one instance.
func CostPerF1(inst *Instance) CostPerF1Row {
	truth := inst.Data.Truth()
	truthFn := inst.Data.TruthFn()
	row := CostPerF1Row{
		Dataset:    inst.Data.Name,
		FastErr:    inst.Answers(3).ErrorRate(),
		CarefulErr: inst.Answers(5).ErrorRate(),
	}
	wrong := 0
	for _, p := range inst.Cands.Pairs {
		if (inst.Cands.Score(p.Pair) > 0.5) != truthFn(p.Pair) {
			wrong++
		}
	}
	row.MachineErr = float64(wrong) / float64(len(inst.Cands.Pairs))

	fast := func() market.Backend {
		return market.Backend{
			ID: "fast", Source: inst.Answers(3),
			CentsPerHIT: fastCentsPerHIT, PairsPerHIT: fastPairsPerHIT,
			ErrorRate: row.FastErr, Workers: 3,
		}
	}
	careful := func() market.Backend {
		return market.Backend{
			ID: "careful", Source: inst.Answers(5),
			CentsPerHIT: carefulCentsPerHIT, PairsPerHIT: carefulPairsPerHIT,
			ErrorRate: row.CarefulErr, Workers: 5, Latency: 2 * time.Millisecond,
		}
	}
	machine := func() market.Backend {
		return market.Backend{ID: "machine", Machine: true, ErrorRate: row.MachineErr}
	}

	arm := func(name string, cfg func() market.Config) MarketArm {
		out := MarketArm{Name: name, Spend: map[string]float64{}}
		for r := 0; r < Repeats; r++ {
			c := cfg()
			c.Seed = int64(r) + 1
			m := market.New(c)
			if recorder != nil {
				m.SetRecorder(recorder)
			}
			res := core.ACD(inst.Cands, m, core.Config{Seed: int64(r) + 1})
			e := cluster.Evaluate(res.Clusters, truth)
			out.F1 += e.F1
			out.Precision += e.Precision
			out.Recall += e.Recall
			out.Cents += float64(res.Stats.Cents)
			out.Pairs += float64(res.Stats.Pairs)
			for _, ch := range m.Ledger() {
				if ch.Backend == market.ChargeInferred {
					out.ShortCircuited++
					continue
				}
				out.Spend[ch.Backend] += ch.Cents
			}
		}
		out.F1 /= Repeats
		out.Precision /= Repeats
		out.Recall /= Repeats
		out.Cents /= Repeats
		out.Pairs /= Repeats
		out.ShortCircuited /= Repeats
		for id := range out.Spend {
			out.Spend[id] /= Repeats
		}
		if out.F1 > 0 {
			out.CostPerF1 = out.Cents / out.F1
		} else {
			out.CostPerF1 = math.Inf(1)
		}
		return out
	}

	// The single-channel baselines are passthrough configurations:
	// arrival order, no short-circuiting, no routing alternatives — the
	// exact question stream the direct pipeline issues, priced at the
	// channel's rate.
	row.Arms = append(row.Arms, arm("careful-only", func() market.Config {
		return market.Config{Backends: []market.Backend{careful()}, BudgetCents: market.Unlimited}
	}))
	row.Arms = append(row.Arms, arm("fast-only", func() market.Config {
		return market.Config{Backends: []market.Backend{fast()}, BudgetCents: market.Unlimited}
	}))
	row.Arms = append(row.Arms, arm("mixed", func() market.Config {
		return market.Config{
			Backends:     []market.Backend{fast(), careful(), machine()},
			BudgetCents:  market.Unlimited,
			Order:        market.OrderConfidence,
			ShortCircuit: true,
			Prior:        inst.Cands.Score,
		}
	}))
	return row
}

// CostPerF1All runs the marketplace comparison on every dataset.
func CostPerF1All(seed int64) []CostPerF1Row {
	rows := make([]CostPerF1Row, 0, len(DatasetNames))
	for _, name := range DatasetNames {
		rows = append(rows, CostPerF1(MustInstance(name, seed)))
	}
	return rows
}

// BenchResults flattens the comparison into benchfmt results (one per
// dataset × arm, named "Market/<dataset>/<arm>") for merging into the
// repo's BENCH_N.json trajectory files.
func BenchResults(rows []CostPerF1Row) []benchfmt.Result {
	var out []benchfmt.Result
	for _, row := range rows {
		for _, a := range row.Arms {
			metrics := map[string]float64{
				"f1":                a.F1,
				"cents":             a.Cents,
				"cost_per_f1_cents": a.CostPerF1,
				"pairs":             a.Pairs,
				"short_circuited":   a.ShortCircuited,
			}
			for id, cents := range a.Spend {
				metrics["spend_"+id+"_cents"] = cents
			}
			out = append(out, benchfmt.Result{
				Name:    "Market/" + row.Dataset + "/" + a.Name,
				Samples: Repeats,
				Metrics: metrics,
			})
		}
	}
	return out
}
