package experiments

import (
	"math/rand"
	"testing"

	"acd/internal/baselines"
	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/dataset"
	"acd/internal/pruning"
)

// TestSmallIntegration is the fast (non-skippable) cross-module
// integration test: a small parametrizable synthetic workload run
// through the full pipeline and all baselines, with sanity bounds that
// hold at any seed.
func TestSmallIntegration(t *testing.T) {
	d, err := dataset.Synthetic(dataset.SyntheticConfig{
		Entities: 60,
		Records:  200,
		Skew:     0.5,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cands := pruning.Prune(d.Records, pruning.Options{})
	if len(cands.Pairs) == 0 {
		t.Fatal("no candidate pairs on synthetic workload")
	}
	truth := d.TruthFn()
	mix := crowd.Mixture{Alpha: 0.1, DHard: 0.55, DEasy: 0.08}
	diff := crowd.DifficultyAssignment(cands.PairList(), cands.Score, truth, mix)
	answers := crowd.BuildAnswers(cands.PairList(), truth, diff, crowd.ThreeWorker(5))
	entities := d.Truth()

	acdOut := core.ACD(cands, answers, core.Config{Seed: 2})
	acdF1 := cluster.Evaluate(acdOut.Clusters, entities).F1
	if acdF1 < 0.6 {
		t.Errorf("ACD F1 = %.3f on an easy synthetic workload", acdF1)
	}
	if acdOut.Stats.Pairs > len(cands.Pairs) {
		t.Errorf("ACD asked more than |S|")
	}

	ce := baselines.CrowdERPlus(cands, answers)
	ceF1 := cluster.Evaluate(ce.Clusters, entities).F1
	if acdF1 < ceF1-0.15 {
		t.Errorf("ACD (%.3f) too far below CrowdER+ (%.3f)", acdF1, ceF1)
	}
	if acdOut.Stats.Pairs >= ce.Stats.Pairs {
		t.Errorf("ACD (%d pairs) should undercut CrowdER+ (%d)", acdOut.Stats.Pairs, ce.Stats.Pairs)
	}

	for name, run := range map[string]baselines.Result{
		"TransM":    baselines.TransM(cands, answers),
		"TransNode": baselines.TransNode(cands, answers),
		"GCER":      baselines.GCER(cands, answers, acdOut.Stats.Pairs, 10),
	} {
		f1 := cluster.Evaluate(run.Clusters, entities).F1
		if f1 <= 0.2 {
			t.Errorf("%s F1 = %.3f, implausibly low", name, f1)
		}
	}
}

// TestFigure5FastSubset runs a single-ε spot check quickly enough for
// -short runs.
func TestFigure5FastSubset(t *testing.T) {
	d, err := dataset.Synthetic(dataset.SyntheticConfig{Entities: 40, Records: 140, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	cands := pruning.Prune(d.Records, pruning.Options{})
	answers := crowd.BuildAnswers(cands.PairList(), d.TruthFn(), crowd.UniformDifficulty(0.05), crowd.ThreeWorker(2))

	sessSeq := crowd.NewSession(answers)
	core.CrowdPivot(cands, sessSeq, newTestRand(1))
	sessPar := crowd.NewSession(answers)
	core.PCPivot(cands, sessPar, core.DefaultEpsilon, newTestRand(1))

	if sessPar.Stats().Iterations >= sessSeq.Stats().Iterations {
		t.Errorf("PC-Pivot iterations (%d) not below Crowd-Pivot (%d)",
			sessPar.Stats().Iterations, sessSeq.Stats().Iterations)
	}
}

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
