// Package experiments assembles the paper's evaluation (Section 6 and
// Appendix C): one runner per table and figure, shared by the acdbench
// command and the repository's testing.B benchmarks. Each runner returns
// the same rows/series the paper reports, so EXPERIMENTS.md can record
// paper-vs-measured side by side.
//
// Paper artifacts:
//
//   - Table3 — dataset statistics and crowd error rates.
//   - Figure5 — ε sensitivity of PC-Pivot (iterations vs. waste).
//   - Comparison — the shared runs behind Figures 6 (F1), 7
//     (crowdsourced pairs) and 8 (crowd iterations), ACD vs. the
//     baselines on all datasets and worker settings.
//   - Figure10 — the refinement budget sweep (x in T = N_m/x).
//   - RefineVariants, AdaptiveWorkers, Aggregation, ProcessingTime,
//     Robustness — the ablation suite (Appendix C style).
//
// An Instance fixes everything two methods must share to be comparable:
// the dataset, the pruned candidate set, and the seeded answer sets
// (the paper's answer file F, per worker setting). SetPruneParallelism
// and SetRecorder configure instance construction process-wide — the
// recorder flows into the pruning phase and every session opened on the
// instance's answer sets, so a whole acdbench run accumulates into one
// metrics snapshot.
package experiments
