package experiments

import (
	"math/rand"

	"acd/internal/baselines"
	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/crowd"
)

// Repeats is how many times the randomized methods (ACD, PC-Pivot) are
// run and averaged, following Section 6.1 ("we repeat each of them 5
// times in each experiment and report the average measurements").
const Repeats = 5

// GCERBatches is the number of question-selection rounds GCER uses; its
// pair budget is matched to ACD's measured cost (Section 6.1).
const GCERBatches = 10

// Table3Row is one measured row of Table 3.
type Table3Row struct {
	Dataset        string
	Records        int
	Entities       int
	CandidatePairs int
	ErrorRate3W    float64
	ErrorRate5W    float64
}

// Table3 measures the dataset characteristics and crowd error rates of
// every dataset (the reproduction of Table 3).
func Table3(seed int64) []Table3Row {
	rows := make([]Table3Row, 0, len(DatasetNames))
	for _, name := range DatasetNames {
		inst := MustInstance(name, seed)
		rows = append(rows, Table3Row{
			Dataset:        name,
			Records:        len(inst.Data.Records),
			Entities:       inst.Data.NumEntities,
			CandidatePairs: len(inst.Cands.Pairs),
			ErrorRate3W:    inst.Answers(3).ErrorRate(),
			ErrorRate5W:    inst.Answers(5).ErrorRate(),
		})
	}
	return rows
}

// EpsilonSweep is the ε grid of Figure 5.
var EpsilonSweep = []float64{0, 0.1, 0.2, 0.4, 0.8}

// Figure5Point is one point of Figure 5's series: PC-Pivot's crowd
// iterations and crowdsourced pairs at a given ε, averaged over Repeats
// runs, with the sequential Crowd-Pivot as reference.
type Figure5Point struct {
	Epsilon    float64
	Iterations float64
	Pairs      float64
}

// Figure5Result is a dataset's sweep plus the Crowd-Pivot reference line.
type Figure5Result struct {
	Dataset              string
	Points               []Figure5Point
	CrowdPivotIterations float64
	CrowdPivotPairs      float64
}

// Figure5 sweeps ε for PC-Pivot on one instance under the 3-worker
// answers (Section 6.2 reports the 3-worker setting; 5-worker results
// are similar).
func Figure5(inst *Instance, workers int) Figure5Result {
	res := Figure5Result{Dataset: inst.Data.Name}
	for _, eps := range EpsilonSweep {
		var iters, pairs float64
		for r := 0; r < Repeats; r++ {
			sess := crowd.NewSession(inst.Answers(workers))
			rng := rand.New(rand.NewSource(int64(r) + 1))
			_, _ = core.PCPivot(inst.Cands, sess, eps, rng)
			iters += float64(sess.Stats().Iterations)
			pairs += float64(sess.Stats().Pairs)
		}
		res.Points = append(res.Points, Figure5Point{
			Epsilon:    eps,
			Iterations: iters / Repeats,
			Pairs:      pairs / Repeats,
		})
	}
	var iters, pairs float64
	for r := 0; r < Repeats; r++ {
		sess := crowd.NewSession(inst.Answers(workers))
		rng := rand.New(rand.NewSource(int64(r) + 1))
		_ = core.CrowdPivot(inst.Cands, sess, rng)
		iters += float64(sess.Stats().Iterations)
		pairs += float64(sess.Stats().Pairs)
	}
	res.CrowdPivotIterations = iters / Repeats
	res.CrowdPivotPairs = pairs / Repeats
	return res
}

// Methods lists the compared methods in the paper's order. TransNode is
// excluded from iteration comparisons (it has no batching; Section 6.1).
var Methods = []string{"ACD", "PC-Pivot", "CrowdER+", "GCER", "TransM", "TransNode"}

// MethodResult is one bar of Figures 6–8: a method's accuracy and
// crowdsourcing overheads on one dataset under one worker setting.
// Randomized methods are averaged over Repeats runs.
type MethodResult struct {
	Method     string
	F1         float64
	Precision  float64
	Recall     float64
	Pairs      float64
	Iterations float64
	// HasIterations is false for TransNode, which issues pairs one at a
	// time and is omitted from Figure 8.
	HasIterations bool
}

// Comparison runs every method on one instance under one worker setting —
// the data behind Figures 6 (F1), 7 (pairs) and 8 (iterations).
func Comparison(inst *Instance, workers int) []MethodResult {
	truth := inst.Data.Truth()
	answers := inst.Answers(workers)

	average := func(run func(seed int64) (cluster.PRF1, crowd.Stats)) MethodResult {
		var out MethodResult
		for r := 0; r < Repeats; r++ {
			e, st := run(int64(r) + 1)
			out.F1 += e.F1
			out.Precision += e.Precision
			out.Recall += e.Recall
			out.Pairs += float64(st.Pairs)
			out.Iterations += float64(st.Iterations)
		}
		out.F1 /= Repeats
		out.Precision /= Repeats
		out.Recall /= Repeats
		out.Pairs /= Repeats
		out.Iterations /= Repeats
		out.HasIterations = true
		return out
	}
	once := func(run func() (cluster.PRF1, crowd.Stats)) MethodResult {
		e, st := run()
		return MethodResult{
			F1: e.F1, Precision: e.Precision, Recall: e.Recall,
			Pairs: float64(st.Pairs), Iterations: float64(st.Iterations),
			HasIterations: true,
		}
	}

	acd := average(func(seed int64) (cluster.PRF1, crowd.Stats) {
		out := core.ACD(inst.Cands, answers, core.Config{Seed: seed})
		return cluster.Evaluate(out.Clusters, truth), out.Stats
	})
	acd.Method = "ACD"

	pc := average(func(seed int64) (cluster.PRF1, crowd.Stats) {
		out := core.ACD(inst.Cands, answers, core.Config{Seed: seed, SkipRefinement: true})
		return cluster.Evaluate(out.Clusters, truth), out.Stats
	})
	pc.Method = "PC-Pivot"

	ce := once(func() (cluster.PRF1, crowd.Stats) {
		res := baselines.CrowdERPlus(inst.Cands, answers)
		return cluster.Evaluate(res.Clusters, truth), res.Stats
	})
	ce.Method = "CrowdER+"

	// GCER's budget is matched to ACD's measured crowdsourcing cost
	// (Section 6.1).
	budget := int(acd.Pairs)
	gc := once(func() (cluster.PRF1, crowd.Stats) {
		res := baselines.GCER(inst.Cands, answers, budget, GCERBatches)
		return cluster.Evaluate(res.Clusters, truth), res.Stats
	})
	gc.Method = "GCER"

	tm := once(func() (cluster.PRF1, crowd.Stats) {
		res := baselines.TransM(inst.Cands, answers)
		return cluster.Evaluate(res.Clusters, truth), res.Stats
	})
	tm.Method = "TransM"

	tn := once(func() (cluster.PRF1, crowd.Stats) {
		res := baselines.TransNode(inst.Cands, answers)
		return cluster.Evaluate(res.Clusters, truth), res.Stats
	})
	tn.Method = "TransNode"
	tn.HasIterations = false

	return []MethodResult{acd, pc, ce, gc, tm, tn}
}

// XSweep is the T = N_m/x grid of Figure 10 (Appendix C).
var XSweep = []int{2, 4, 8, 16}

// Figure10Point reports full-ACD behaviour at one refinement budget.
type Figure10Point struct {
	X          int // T = N_m/x
	Pairs      float64
	F1         float64
	Iterations float64
}

// Figure10 sweeps the refinement threshold divisor x on one instance
// (the paper uses the 3-worker answers).
func Figure10(inst *Instance, workers int) []Figure10Point {
	truth := inst.Data.Truth()
	var out []Figure10Point
	for _, x := range XSweep {
		var pairs, f1, iters float64
		for r := 0; r < Repeats; r++ {
			res := core.ACD(inst.Cands, inst.Answers(workers), core.Config{Seed: int64(r) + 1, RefineX: x})
			e := cluster.Evaluate(res.Clusters, truth)
			pairs += float64(res.Stats.Pairs)
			f1 += e.F1
			iters += float64(res.Stats.Iterations)
		}
		out = append(out, Figure10Point{
			X:          x,
			Pairs:      pairs / Repeats,
			F1:         f1 / Repeats,
			Iterations: iters / Repeats,
		})
	}
	return out
}
