package experiments

import (
	"fmt"
	"io"
	"time"

	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/obs"
)

// FaultRow is one cell of the fault-tolerance experiment: the full ACD
// pipeline under one injected fault regime, with the recovery machinery
// (retries, hedges, fallbacks) accounted and the end quality next to
// the fault-free baseline.
type FaultRow struct {
	// Regime names the fault mix ("none" is the fault-free baseline).
	Regime string
	// F1 is the pairwise F1 of the finished clustering.
	F1 float64
	// Pairs is the number of distinct pairs crowdsourced.
	Pairs int
	// Attempts, Retries, Hedges, Timeouts and Fallbacks are the
	// fault-layer counters for the run.
	Attempts  int64
	Retries   int64
	Hedges    int64
	Timeouts  int64
	Fallbacks int64
	// Elapsed is the simulated (virtual-clock) crowd time of the run.
	Elapsed time.Duration
}

// faultRegimes is the chaos schedule of the FaultTolerance experiment:
// the fault-free baseline plus escalating injected-fault mixes.
var faultRegimes = []struct {
	name string
	cfg  crowd.ChaosConfig
}{
	{name: "none"},
	{name: "spikes", cfg: crowd.ChaosConfig{SpikeProb: 0.15, SpikeFactor: 6}},
	{name: "flaky", cfg: crowd.ChaosConfig{DropProb: 0.10, ErrorProb: 0.10, SpikeProb: 0.05}},
	{name: "severe", cfg: crowd.ChaosConfig{
		DropProb: 0.35, ErrorProb: 0.20,
		BurstEvery: 300, BurstLen: 30, BurstDropProb: 0.95,
	}},
}

// FaultTolerance runs ACD on an instance under each fault regime, fully
// simulated: every fault is drawn from a seeded injector and every
// latency is virtual-clock arithmetic, so the whole experiment is
// deterministic and sleeps for nothing. The fallback for exhausted
// questions is the machine probability, mirroring the production
// wiring.
func FaultTolerance(inst *Instance, workers int, seed int64) []FaultRow {
	answers := inst.Answers(workers)
	truth := inst.Data.Truth()
	rows := make([]FaultRow, 0, len(faultRegimes))
	for _, regime := range faultRegimes {
		rec := obs.New()
		clock := crowd.NewVirtualClock(time.Time{})
		var src crowd.Source = answers
		if regime.name != "none" {
			cfg := regime.cfg
			cfg.Seed = seed
			chaos := crowd.NewChaos(answers, cfg)
			src = crowd.NewReliable(chaos, crowd.ReliableConfig{
				Timeout:  20 * time.Second,
				Retries:  3,
				Seed:     seed,
				Fallback: inst.Cands.Score,
				Clock:    clock,
			})
		}
		out := core.ACD(inst.Cands, src, core.Config{Seed: seed, Obs: rec})
		m := rec.Snapshot()
		rows = append(rows, FaultRow{
			Regime:    regime.name,
			F1:        cluster.Evaluate(out.Clusters, truth).F1,
			Pairs:     out.Stats.Pairs,
			Attempts:  m.Counters[crowd.MetricAttempts],
			Retries:   m.Counters[crowd.MetricRetries],
			Hedges:    m.Counters[crowd.MetricHedges],
			Timeouts:  m.Counters[crowd.MetricTimeouts],
			Fallbacks: m.Counters[crowd.MetricFallbacks],
			Elapsed:   clock.Elapsed(),
		})
	}
	return rows
}

// RenderFaultTolerance prints one dataset's fault-tolerance block.
func RenderFaultTolerance(w io.Writer, dataset string, workers int, rows []FaultRow) {
	fmt.Fprintf(w, "Fault tolerance: ACD on %s (%dw) under injected crowd faults\n", dataset, workers)
	fmt.Fprintf(w, "%-8s %8s %8s %9s %8s %8s %9s %10s %14s\n",
		"regime", "F1", "pairs", "attempts", "retries", "hedges", "timeouts", "fallbacks", "sim elapsed")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %8.3f %8d %9d %8d %8d %9d %10d %14s\n",
			r.Regime, r.F1, r.Pairs, r.Attempts, r.Retries, r.Hedges,
			r.Timeouts, r.Fallbacks, r.Elapsed.Round(time.Second))
	}
}
