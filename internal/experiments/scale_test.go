package experiments

import (
	"testing"
	"time"

	"acd/internal/blocking"
	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/dataset"
	"acd/internal/pruning"
	"acd/internal/record"
)

// TestScalePipeline pushes a 5000-record synthetic workload through the
// full pipeline to confirm the system holds up beyond paper-scale
// inputs: pruning stays sub-quadratic via the indexed join, the LSH path
// agrees with it, and ACD completes with a valid, accurate clustering in
// bounded time.
func TestScalePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	d, err := dataset.Synthetic(dataset.SyntheticConfig{
		Entities: 1800,
		Records:  5000,
		Skew:     0.6,
		Seed:     13,
	})
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	cands := pruning.Prune(d.Records, pruning.Options{})
	pruneTime := time.Since(start)
	if len(cands.Pairs) == 0 {
		t.Fatal("no candidates at scale")
	}
	if pruneTime > 30*time.Second {
		t.Errorf("pruning took %v on 5000 records", pruneTime)
	}

	// The LSH join must find nearly all of the exact join's pairs.
	lsh := blocking.MinHashJoin(d.Records, pruning.DefaultTau, blocking.MinHashConfig{Seed: 1})
	lshSet := make(map[record.Pair]bool, len(lsh))
	for _, sp := range lsh {
		lshSet[sp.Pair] = true
	}
	missed := 0
	for _, sp := range cands.Pairs {
		if sp.Score > 0.5 && !lshSet[sp.Pair] {
			missed++
		}
	}
	strong := 0
	for _, sp := range cands.Pairs {
		if sp.Score > 0.5 {
			strong++
		}
	}
	if strong > 0 && float64(missed)/float64(strong) > 0.05 {
		t.Errorf("LSH missed %d of %d strong pairs", missed, strong)
	}

	answers := crowd.BuildAnswers(cands.PairList(), d.TruthFn(), crowd.UniformDifficulty(0.05), crowd.ThreeWorker(3))
	start = time.Now()
	out := core.ACD(cands, answers, core.Config{Seed: 1})
	acdTime := time.Since(start)
	if acdTime > 2*time.Minute {
		t.Errorf("ACD took %v on 5000 records", acdTime)
	}
	e := cluster.Evaluate(out.Clusters, d.Truth())
	if e.F1 < 0.7 {
		t.Errorf("scale F1 = %.3f", e.F1)
	}
	if out.Clusters.Len() != 5000 {
		t.Errorf("clustering lost records")
	}
}
