package experiments

import (
	"testing"
)

// TestRefineVariantsShape asserts the refinement ablation's expected
// ordering on Product: every refiner improves on the raw generation
// output; Crowd-BOEM crowdsources the whole candidate set; sequential
// Crowd-Refine needs (far) more crowd iterations than PC-Refine for the
// same quality.
func TestRefineVariantsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full ablation")
	}
	inst := MustInstance("Product", 1)
	rows := RefineVariants(inst, 3)
	get := func(name string) RefineVariantResult {
		for _, r := range rows {
			if r.Variant == name {
				return r
			}
		}
		t.Fatalf("missing variant %s", name)
		return RefineVariantResult{}
	}
	none, pc, seq := get("None"), get("PC-Refine"), get("Crowd-Refine")
	ident, boem := get("Identity-Est"), get("Crowd-BOEM")

	for _, r := range []RefineVariantResult{pc, seq, ident, boem} {
		if r.F1 < none.F1 {
			t.Errorf("%s (F1 %.3f) below unrefined (%.3f)", r.Variant, r.F1, none.F1)
		}
	}
	if boem.Pairs != float64(len(inst.Cands.Pairs)) {
		t.Errorf("Crowd-BOEM pairs %.0f, want the full |S| = %d", boem.Pairs, len(inst.Cands.Pairs))
	}
	if pc.Pairs >= boem.Pairs {
		t.Errorf("PC-Refine (%.0f pairs) should undercut Crowd-BOEM (%.0f)", pc.Pairs, boem.Pairs)
	}
	if seq.Iterations < 2*pc.Iterations {
		t.Errorf("sequential refinement iterations (%.1f) should dwarf batched (%.1f)",
			seq.Iterations, pc.Iterations)
	}
	if seq.F1 < pc.F1-0.02 {
		t.Errorf("Crowd-Refine quality (%.3f) should match PC-Refine (%.3f)", seq.F1, pc.F1)
	}
}

// TestAdaptiveWorkersShape asserts the future-work proposal's payoff on
// Product: adaptive 3→5 escalation reaches (near-)fixed-5w error and F1
// while spending clearly fewer votes per pair.
func TestAdaptiveWorkersShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full ablation")
	}
	inst := MustInstance("Product", 1)
	rows := AdaptiveWorkers(inst, 1)
	get := func(name string) AdaptiveResult {
		for _, r := range rows {
			if r.Allocation == name {
				return r
			}
		}
		t.Fatalf("missing allocation %s", name)
		return AdaptiveResult{}
	}
	f3, f5, a5 := get("fixed-3w"), get("fixed-5w"), get("adaptive-3to5")

	if f3.VotesPerPair != 3 || f5.VotesPerPair != 5 {
		t.Fatalf("fixed vote rates wrong: %v, %v", f3.VotesPerPair, f5.VotesPerPair)
	}
	if a5.VotesPerPair <= 3 || a5.VotesPerPair >= 5 {
		t.Errorf("adaptive votes/pair = %.2f, want strictly between 3 and 5", a5.VotesPerPair)
	}
	if a5.ErrorRate > f5.ErrorRate+0.005 {
		t.Errorf("adaptive error %.4f should approach fixed-5w %.4f", a5.ErrorRate, f5.ErrorRate)
	}
	if a5.ErrorRate >= f3.ErrorRate {
		t.Errorf("adaptive error %.4f not below fixed-3w %.4f", a5.ErrorRate, f3.ErrorRate)
	}
	if a5.F1 < f5.F1-0.02 {
		t.Errorf("adaptive F1 %.3f should approach fixed-5w %.3f", a5.F1, f5.F1)
	}
}

// TestProcessingTimeShape: simulated wall-clock hours must mirror the
// iteration structure — sequential Crowd-Pivot far slower than PC-Pivot,
// CrowdER+'s single batch fastest.
func TestProcessingTimeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full ablation")
	}
	inst := MustInstance("Product", 1)
	rows := ProcessingTime(inst, 3)
	byName := map[string]TimeResult{}
	for _, r := range rows {
		byName[r.Method] = r
	}
	seq, par, all := byName["Crowd-Pivot"], byName["PC-Pivot"], byName["CrowdER+"]
	if seq.Hours < 5*par.Hours {
		t.Errorf("Crowd-Pivot %.1fh not ≫ PC-Pivot %.1fh", seq.Hours, par.Hours)
	}
	if all.Hours >= par.Hours {
		t.Errorf("CrowdER+ single batch (%.1fh) should be fastest (PC-Pivot %.1fh)", all.Hours, par.Hours)
	}
	if all.Iterations != 1 {
		t.Errorf("CrowdER+ iterations = %v", all.Iterations)
	}
}

// TestRobustnessShape encodes the error-sensitivity story on Paper:
// with a perfect crowd everyone is near-perfect; as worker error rises,
// the transitivity methods fall off a cliff while ACD and CrowdER+
// degrade gracefully and stay far ahead.
func TestRobustnessShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	inst := MustInstance("Paper", 1)
	points := Robustness(inst, 1)
	if len(points) != len(RobustnessErrorSweep) {
		t.Fatalf("%d points", len(points))
	}
	first, last := points[0], points[len(points)-1]
	for _, m := range []string{"ACD", "CrowdER+", "TransM", "TransNode"} {
		if first.F1[m] < 0.95 {
			t.Errorf("%s starts at %.3f with a perfect crowd", m, first.F1[m])
		}
	}
	if last.F1["TransM"] > last.F1["ACD"]-0.3 {
		t.Errorf("TransM (%.3f) should collapse far below ACD (%.3f) at high error",
			last.F1["TransM"], last.F1["ACD"])
	}
	if last.F1["ACD"] < 0.7 {
		t.Errorf("ACD degraded too hard: %.3f", last.F1["ACD"])
	}
	// Majority error grows monotonically with worker error.
	for i := 1; i < len(points); i++ {
		if points[i].MajorityErr < points[i-1].MajorityErr {
			t.Errorf("majority error not monotone at %v", points[i].WorkerError)
		}
	}
}

// TestAggregationShape: Dawid-Skene weighted aggregation must beat plain
// majority voting on an open (mixed-quality) worker pool, on both the
// answer error rate and the downstream deduplication F1.
func TestAggregationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full ablation")
	}
	inst := MustInstance("Product", 1)
	rows := Aggregation(inst, 1)
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	var maj, ds AggregationResult
	for _, r := range rows {
		switch r.Aggregation {
		case "majority":
			maj = r
		case "dawid-skene":
			ds = r
		}
	}
	if ds.ErrorRate >= maj.ErrorRate {
		t.Errorf("DS error %.4f not below majority %.4f", ds.ErrorRate, maj.ErrorRate)
	}
	if ds.F1 <= maj.F1 {
		t.Errorf("DS F1 %.3f not above majority %.3f", ds.F1, maj.F1)
	}
}
