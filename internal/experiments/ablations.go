package experiments

import (
	"math/rand"

	"acd/internal/baselines"
	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/quality"
	"acd/internal/record"
	"acd/internal/refine"
)

// This file implements the ablations DESIGN.md calls out beyond the
// paper's own figures: the refinement-strategy comparison (PC-Refine vs
// sequential Crowd-Refine vs the Crowd-BOEM strawman of Section 5.1),
// the histogram-vs-identity estimator comparison (Section 5.2), and the
// adaptive worker allocation the paper names as future work (Section 8).

// RefineVariantResult is one row of the refinement ablation.
type RefineVariantResult struct {
	Variant    string
	F1         float64
	Pairs      float64
	Iterations float64
}

// RefineVariants compares cluster refinement strategies on one instance:
// all start from the same PC-Pivot clustering (per seed) and refine with
// PC-Refine, sequential Crowd-Refine, the identity-estimator PC-Refine,
// and Crowd-BOEM. "None" reports the unrefined generation output.
func RefineVariants(inst *Instance, workers int) []RefineVariantResult {
	truth := inst.Data.Truth()
	variants := []struct {
		name string
		run  func(c *cluster.Clustering, sess *crowd.Session)
	}{
		{"None", func(c *cluster.Clustering, sess *crowd.Session) {}},
		{"PC-Refine", func(c *cluster.Clustering, sess *crowd.Session) {
			refine.PCRefine(c, inst.Cands, sess, refine.DefaultX)
		}},
		{"Crowd-Refine", func(c *cluster.Clustering, sess *crowd.Session) {
			refine.CrowdRefine(c, inst.Cands, sess)
		}},
		{"Identity-Est", func(c *cluster.Clustering, sess *crowd.Session) {
			refine.PCRefineMode(c, inst.Cands, sess, refine.DefaultX, refine.IdentityEstimator)
		}},
		{"Crowd-BOEM", func(c *cluster.Clustering, sess *crowd.Session) {
			refine.CrowdBOEM(c, inst.Cands, sess)
		}},
	}
	out := make([]RefineVariantResult, len(variants))
	for vi, v := range variants {
		res := RefineVariantResult{Variant: v.name}
		for r := 0; r < Repeats; r++ {
			sess := crowd.NewSession(inst.Answers(workers))
			rng := rand.New(rand.NewSource(int64(r) + 1))
			c, _ := core.PCPivot(inst.Cands, sess, core.DefaultEpsilon, rng)
			v.run(c, sess)
			c.Compact()
			e := cluster.Evaluate(c, truth)
			res.F1 += e.F1
			res.Pairs += float64(sess.Stats().Pairs)
			res.Iterations += float64(sess.Stats().Iterations)
		}
		res.F1 /= Repeats
		res.Pairs /= Repeats
		res.Iterations /= Repeats
		out[vi] = res
	}
	return out
}

// AdaptiveResult is one row of the adaptive worker-allocation ablation.
type AdaptiveResult struct {
	Allocation string
	ErrorRate  float64
	// VotesPerPair is the average number of worker votes per candidate
	// pair — the spending axis adaptive allocation optimizes.
	VotesPerPair float64
	F1           float64
}

// AdaptiveWorkers evaluates the paper's future-work proposal: fixed
// 3-worker and 5-worker panels versus adaptive escalation (3 votes, then
// 5 or 7 on a narrow margin). Each allocation draws its own answer set
// from the same difficulty assignment and runs full ACD.
func AdaptiveWorkers(inst *Instance, seed int64) []AdaptiveResult {
	truth := inst.Data.TruthFn()
	entities := inst.Data.Truth()
	diff := crowd.DifficultyAssignment(inst.Cands.PairList(), inst.Cands.Score, truth, inst.Mixture)
	pairs := inst.Cands.PairList()

	builds := []struct {
		name  string
		build func() *crowd.AnswerSet
	}{
		{"fixed-3w", func() *crowd.AnswerSet {
			return crowd.BuildAnswers(pairs, truth, diff, crowd.ThreeWorker(seed))
		}},
		{"fixed-5w", func() *crowd.AnswerSet {
			return crowd.BuildAnswers(pairs, truth, diff, crowd.FiveWorker(seed))
		}},
		{"adaptive-3to5", func() *crowd.AnswerSet {
			return crowd.BuildAdaptiveAnswers(pairs, truth, diff, crowd.ThreeWorker(seed), 5)
		}},
		{"adaptive-3to7", func() *crowd.AnswerSet {
			return crowd.BuildAdaptiveAnswers(pairs, truth, diff, crowd.ThreeWorker(seed), 7)
		}},
	}
	out := make([]AdaptiveResult, len(builds))
	for i, b := range builds {
		answers := b.build()
		var f1 float64
		for r := 0; r < Repeats; r++ {
			res := core.ACD(inst.Cands, answers, core.Config{Seed: int64(r) + 1})
			f1 += cluster.Evaluate(res.Clusters, entities).F1
		}
		out[i] = AdaptiveResult{
			Allocation:   b.name,
			ErrorRate:    answers.ErrorRate(),
			VotesPerPair: float64(answers.TotalVotes()) / float64(len(pairs)),
			F1:           f1 / Repeats,
		}
	}
	return out
}

// RobustnessPoint is one point of the error-sensitivity sweep: every
// method's F1 at a controlled worker error rate.
type RobustnessPoint struct {
	WorkerError float64
	MajorityErr float64
	F1          map[string]float64
}

// RobustnessErrorSweep is the worker error grid of the sensitivity
// experiment.
var RobustnessErrorSweep = []float64{0, 0.1, 0.2, 0.3, 0.4}

// Robustness sweeps a uniform per-worker error rate and measures each
// method's F1 under 3-worker majority votes — an error-sensitivity curve
// that goes beyond the paper's two fixed crowd settings and locates
// where the transitivity-based methods collapse relative to ACD and
// CrowdER+.
func Robustness(inst *Instance, seed int64) []RobustnessPoint {
	truth := inst.Data.TruthFn()
	entities := inst.Data.Truth()
	pairs := inst.Cands.PairList()

	out := make([]RobustnessPoint, 0, len(RobustnessErrorSweep))
	for _, d := range RobustnessErrorSweep {
		answers := crowd.BuildAnswers(pairs, truth, crowd.UniformDifficulty(d), crowd.ThreeWorker(seed))
		point := RobustnessPoint{
			WorkerError: d,
			MajorityErr: answers.ErrorRate(),
			F1:          make(map[string]float64, 4),
		}
		var acdF1 float64
		var acdPairs float64
		for r := 0; r < Repeats; r++ {
			res := core.ACD(inst.Cands, answers, core.Config{Seed: int64(r) + 1})
			acdF1 += cluster.Evaluate(res.Clusters, entities).F1
			acdPairs += float64(res.Stats.Pairs)
		}
		point.F1["ACD"] = acdF1 / Repeats

		ce := baselines.CrowdERPlus(inst.Cands, answers)
		point.F1["CrowdER+"] = cluster.Evaluate(ce.Clusters, entities).F1
		tm := baselines.TransM(inst.Cands, answers)
		point.F1["TransM"] = cluster.Evaluate(tm.Clusters, entities).F1
		tn := baselines.TransNode(inst.Cands, answers)
		point.F1["TransNode"] = cluster.Evaluate(tn.Clusters, entities).F1

		out = append(out, point)
	}
	return out
}

// TimeResult is one row of the simulated processing-time comparison.
type TimeResult struct {
	Method     string
	Iterations float64
	// Hours is the simulated end-to-end crowd time under the latency
	// model (5-minute mean HIT completion).
	Hours float64
}

// ProcessingTime closes the loop on the paper's motivation for
// parallelization: it converts the measured iteration counts of
// Crowd-Pivot, PC-Pivot (ε = 0.1) and CrowdER+ into simulated wall-clock
// hours under a log-normal HIT-latency model, showing the real-time cost
// of sequential crowdsourcing.
func ProcessingTime(inst *Instance, workers int) []TimeResult {
	model := crowd.LatencyModel{Seed: 7}
	run := func(name string, f func(sess *crowd.Session)) TimeResult {
		var iters, hours float64
		for r := 0; r < Repeats; r++ {
			sess := crowd.NewSession(inst.Answers(workers))
			f(sess)
			st := sess.Stats()
			iters += float64(st.Iterations)
			hours += model.TotalTime(st, workers).Hours()
		}
		return TimeResult{Method: name, Iterations: iters / Repeats, Hours: hours / Repeats}
	}
	seq := run("Crowd-Pivot", func(sess *crowd.Session) {
		var r int64 = 1
		core.CrowdPivot(inst.Cands, sess, rand.New(rand.NewSource(r)))
	})
	par := run("PC-Pivot", func(sess *crowd.Session) {
		core.PCPivot(inst.Cands, sess, core.DefaultEpsilon, rand.New(rand.NewSource(1)))
	})
	all := run("CrowdER+", func(sess *crowd.Session) {
		sess.Ask(inst.Cands.PairList())
	})
	return []TimeResult{seq, par, all}
}

// AggregationResult is one row of the vote-aggregation ablation.
type AggregationResult struct {
	Aggregation string
	ErrorRate   float64
	F1          float64
}

// Aggregation compares plain majority voting against Dawid–Skene
// weighted aggregation (internal/quality) on worker-level votes from a
// mixed-quality pool: the same raw votes are aggregated both ways, each
// aggregate drives a full ACD run, and the ablation reports the
// answer-level error rate and the resulting deduplication F1.
func Aggregation(inst *Instance, seed int64) []AggregationResult {
	truth := inst.Data.TruthFn()
	entities := inst.Data.Truth()
	pairs := inst.Cands.PairList()

	pool := crowd.NewPool(crowd.PoolConfig{
		Size:                  200,
		MeanError:             0.25,
		ErrorSpread:           0.18,
		QualificationPassRate: 1, // open pool: quality varies wildly
		Seed:                  seed,
	})
	votes := crowd.CollectVotes(pairs, truth, crowd.UniformDifficulty(0), pool, crowd.Qualification{}, crowd.FiveWorker(seed+1))

	majority := crowd.MajorityScores(votes)
	model := quality.Estimate(votes, 30)

	out := make([]AggregationResult, 0, 2)
	for _, agg := range []struct {
		name   string
		scores map[record.Pair]float64
	}{
		{"majority", majority},
		{"dawid-skene", model.Posterior},
	} {
		answers := crowd.FixedAnswers(agg.scores, crowd.FiveWorker(seed))
		var f1 float64
		for r := 0; r < Repeats; r++ {
			res := core.ACD(inst.Cands, answers, core.Config{Seed: int64(r) + 1})
			f1 += cluster.Evaluate(res.Clusters, entities).F1
		}
		out = append(out, AggregationResult{
			Aggregation: agg.name,
			ErrorRate:   quality.ErrorRate(agg.scores, truth),
			F1:          f1 / Repeats,
		})
	}
	return out
}
