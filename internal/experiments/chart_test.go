package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderBarsBasics(t *testing.T) {
	var buf bytes.Buffer
	RenderBars(&buf, "title", []Bar{
		{Label: "ACD", Value: 10},
		{Label: "CrowdER+", Value: 5},
		{Label: "zero", Value: 0},
	}, ChartOptions{Width: 20, Format: "%.0f"})
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "title" {
		t.Fatalf("missing title: %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	// The max bar fills the width; the half bar has half the hashes.
	if got := strings.Count(lines[1], "#"); got != 20 {
		t.Errorf("max bar %d hashes, want 20", got)
	}
	if got := strings.Count(lines[2], "#"); got != 10 {
		t.Errorf("half bar %d hashes, want 10", got)
	}
	if got := strings.Count(lines[3], "#"); got != 0 {
		t.Errorf("zero bar %d hashes, want 0", got)
	}
	// Labels aligned to the longest.
	if !strings.HasPrefix(lines[1], "  ACD      |") {
		t.Errorf("label alignment wrong: %q", lines[1])
	}
}

func TestRenderBarsLogScale(t *testing.T) {
	var buf bytes.Buffer
	RenderBars(&buf, "log", []Bar{
		{Label: "a", Value: 1000},
		{Label: "b", Value: 10},
		{Label: "c", Value: -5},
	}, ChartOptions{Width: 30, Log: true})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	big := strings.Count(lines[1], "#")
	small := strings.Count(lines[2], "#")
	if big != 30 {
		t.Errorf("max log bar %d, want 30", big)
	}
	// log10(11)/log10(1001) ≈ 0.347 → about 10 chars, far more than the
	// 0.9 chars a linear scale would draw.
	if small < 8 || small >= big {
		t.Errorf("log scaling wrong: small bar %d of %d", small, big)
	}
	if strings.Count(lines[3], "#") != 0 {
		t.Errorf("negative value should render empty")
	}
}

func TestRenderBarsAllZero(t *testing.T) {
	var buf bytes.Buffer
	RenderBars(&buf, "z", []Bar{{Label: "a", Value: 0}}, ChartOptions{})
	if strings.Count(buf.String(), "#") != 0 {
		t.Errorf("all-zero chart drew bars")
	}
}

func TestRenderComparisonCharts(t *testing.T) {
	var buf bytes.Buffer
	rows := []MethodResult{
		{Method: "ACD", F1: 0.9, Pairs: 100, Iterations: 50, HasIterations: true},
		{Method: "TransNode", F1: 0.5, Pairs: 80, Iterations: 0, HasIterations: false},
	}
	RenderComparisonCharts(&buf, "Paper", 3, rows)
	out := buf.String()
	for _, want := range []string{"Figure 6", "Figure 7", "Figure 8", "ACD"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in chart output", want)
		}
	}
	// TransNode appears in figures 6-7 but not the iterations chart.
	iterSection := out[strings.Index(out, "Figure 8"):]
	if strings.Contains(iterSection, "TransNode") {
		t.Errorf("TransNode should be omitted from the iterations chart")
	}
}
