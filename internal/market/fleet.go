package market

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"acd/internal/crowd"
	"acd/internal/record"
)

// This file is the CLI surface of the marketplace: a compact fleet-spec
// grammar shared by acddedup, acdserve, and the load scenarios, plus
// the helpers that turn a spec into live backends (noisy simulated
// answer functions, optional ChaosSource/ReliableSource fault
// wrapping).
//
// Grammar: backends are separated by ';', fields by ':'.
//
//	id:centsPerHIT:pairsPerHIT:errorRate[:opt...]
//
// Options: "machine" marks the free machine backend; "lat=DUR" sets
// the median HIT latency; "drop=P" and "fault=P" wrap the backend in
// ChaosSource with that drop/transient-error probability (plus
// ReliableSource retry/fallback); "timeout=DUR" overrides the
// per-question retry deadline for a faulty backend (default 8× its
// latency — tighten it to bound how long an outage can stall a
// question); "workers=N" sets votes per answer.
//
// Example (the default mixed fleet):
//
//	fast:1:20:0.12;careful:6:10:0.02:lat=2ms;machine:0:0:0.35:machine

// DefaultFleetSpec is the reference mixed fleet: a fast cheap noisy
// backend, a slow expensive accurate one, and the free machine
// classifier.
const DefaultFleetSpec = "fast:1:20:0.12;careful:6:10:0.02:lat=2ms;machine:0:0:0.35:machine"

// BackendSpec is one parsed backend description from a fleet spec:
// everything about a Backend except its answer source.
type BackendSpec struct {
	// ID, CentsPerHIT, PairsPerHIT, ErrorRate, Workers, Latency and
	// Machine mirror the Backend fields.
	ID          string
	CentsPerHIT int
	PairsPerHIT int
	ErrorRate   float64
	Workers     int
	Latency     time.Duration
	Machine     bool
	// Drop and Fault are ChaosSource probabilities for the backend's
	// fault wrapping (zero = no chaos layer).
	Drop  float64
	Fault float64
	// Timeout overrides the fault wrapper's per-question retry deadline
	// (zero = 8× the backend's latency).
	Timeout time.Duration
}

// ParseFleet parses a fleet spec (see the grammar above). Every
// backend needs a unique non-empty id; probabilities must lie in
// [0, 1]; prices must be non-negative.
func ParseFleet(spec string) ([]BackendSpec, error) {
	var out []BackendSpec
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 4 {
			return nil, fmt.Errorf("market: backend %q: want id:cents:pairs:errRate[:opt...]", part)
		}
		b := BackendSpec{ID: strings.TrimSpace(fields[0])}
		if b.ID == "" {
			return nil, fmt.Errorf("market: backend %q: empty id", part)
		}
		if seen[b.ID] {
			return nil, fmt.Errorf("market: duplicate backend id %q", b.ID)
		}
		seen[b.ID] = true
		var err error
		if b.CentsPerHIT, err = strconv.Atoi(fields[1]); err != nil || b.CentsPerHIT < 0 {
			return nil, fmt.Errorf("market: backend %q: bad centsPerHIT %q", b.ID, fields[1])
		}
		if b.PairsPerHIT, err = strconv.Atoi(fields[2]); err != nil || b.PairsPerHIT < 0 {
			return nil, fmt.Errorf("market: backend %q: bad pairsPerHIT %q", b.ID, fields[2])
		}
		if b.ErrorRate, err = strconv.ParseFloat(fields[3], 64); err != nil || b.ErrorRate < 0 || b.ErrorRate > 1 {
			return nil, fmt.Errorf("market: backend %q: bad errorRate %q", b.ID, fields[3])
		}
		for _, opt := range fields[4:] {
			opt = strings.TrimSpace(opt)
			key, val, hasVal := strings.Cut(opt, "=")
			switch {
			case key == "machine" && !hasVal:
				b.Machine = true
			case key == "lat" && hasVal:
				if b.Latency, err = time.ParseDuration(val); err != nil || b.Latency < 0 {
					return nil, fmt.Errorf("market: backend %q: bad lat %q", b.ID, val)
				}
			case key == "drop" && hasVal:
				if b.Drop, err = strconv.ParseFloat(val, 64); err != nil || b.Drop < 0 || b.Drop > 1 {
					return nil, fmt.Errorf("market: backend %q: bad drop %q", b.ID, val)
				}
			case key == "fault" && hasVal:
				if b.Fault, err = strconv.ParseFloat(val, 64); err != nil || b.Fault < 0 || b.Fault > 1 {
					return nil, fmt.Errorf("market: backend %q: bad fault %q", b.ID, val)
				}
			case key == "timeout" && hasVal:
				if b.Timeout, err = time.ParseDuration(val); err != nil || b.Timeout <= 0 {
					return nil, fmt.Errorf("market: backend %q: bad timeout %q", b.ID, val)
				}
			case key == "workers" && hasVal:
				if b.Workers, err = strconv.Atoi(val); err != nil || b.Workers < 1 {
					return nil, fmt.Errorf("market: backend %q: bad workers %q", b.ID, val)
				}
			default:
				return nil, fmt.Errorf("market: backend %q: unknown option %q", b.ID, opt)
			}
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("market: empty fleet spec %q", spec)
	}
	return out, nil
}

// skeleton copies the spec's pricing, accuracy, and latency fields into
// a Backend with no answer source yet.
func (s BackendSpec) skeleton() Backend {
	return Backend{
		ID:          s.ID,
		CentsPerHIT: s.CentsPerHIT,
		PairsPerHIT: s.PairsPerHIT,
		ErrorRate:   s.ErrorRate,
		Workers:     s.Workers,
		Latency:     s.Latency,
		Machine:     s.Machine,
	}
}

// wrap applies the spec's fault options (drop/fault) around src: the
// full ChaosSource + ReliableSource stack with fallback as the answer
// of last resort. Machine specs and specs without fault bits pass
// through untouched.
func (s BackendSpec) wrap(src crowd.Source, fallback func(record.Pair) float64, seed int64) crowd.Source {
	if s.Machine || (s.Drop <= 0 && s.Fault <= 0) {
		return src
	}
	chaos := crowd.NewChaos(src, crowd.ChaosConfig{
		Seed:        seed,
		BaseLatency: max(s.Latency, 200*time.Microsecond),
		DropProb:    s.Drop,
		ErrorProb:   s.Fault,
	})
	// Tight deadlines and backoff: these run inside load-scenario
	// resolve handlers, where crowd-scale defaults would wedge the
	// run (same sizing as serve.DegradedCrowd).
	timeout := 8 * max(s.Latency, 200*time.Microsecond)
	if s.Timeout > 0 {
		timeout = s.Timeout
	}
	return crowd.NewReliable(chaos, crowd.ReliableConfig{
		Timeout:    timeout,
		Retries:    1,
		Backoff:    timeout / 4,
		MaxBackoff: timeout,
		Seed:       seed,
		Fallback:   fallback,
	})
}

// Backend builds the live Backend for a spec over the given base answer
// function: answers are the base flipped with the spec's error rate,
// and a spec with fault bits (drop/fault) gets the full
// ChaosSource + ReliableSource stack with the base as fallback.
// Machine specs answer directly (no fault wrapping, no charge).
func (s BackendSpec) Backend(base func(record.Pair) float64, seed int64) Backend {
	b := s.skeleton()
	answer := Noisy(base, s.ErrorRate, seed+int64(len(s.ID)))
	setting := crowd.Config{Workers: max(1, s.Workers), PairsPerHIT: max(1, s.PairsPerHIT), CentsPerHIT: s.CentsPerHIT, Seed: seed}
	b.Source = s.wrap(crowd.SourceFunc{Fn: answer, Setting: setting}, answer, seed)
	return b
}

// AnswerBackend builds the live Backend for a spec over simulated
// ground truth: answers come from a crowd.AnswerSet drawn once, with
// the per-worker difficulty chosen so the majority vote's error rate
// matches the spec's advertised ErrorRate (the number routing trusts).
// Machine specs keep a nil source — the marketplace answers them from
// its prior. Fault options wrap the answer set exactly as Backend does.
func (s BackendSpec) AnswerBackend(pairs []record.Pair, truth func(record.Pair) bool, seed int64) Backend {
	b := s.skeleton()
	if s.Machine {
		return b
	}
	workers := s.Workers
	if workers < 1 {
		workers = 3
	} else if workers%2 == 0 {
		workers++
	}
	cfg := crowd.Config{
		Workers:     workers,
		PairsPerHIT: max(1, s.PairsPerHIT),
		CentsPerHIT: s.CentsPerHIT,
		Seed:        seed + int64(len(s.ID)),
	}
	d := perWorkerError(s.ErrorRate, workers)
	answers := crowd.BuildAnswers(pairs, truth, crowd.UniformDifficulty(d), cfg)
	b.Source = s.wrap(answers, answers.Score, seed)
	return b
}

// perWorkerError inverts crowd.MajorityError: the per-worker difficulty
// at which a majority of `workers` votes is wrong with probability
// target. Targets at or beyond a coin flip (or a single worker) need no
// inversion.
func perWorkerError(target float64, workers int) float64 {
	if workers <= 1 || target <= 0 || target >= 0.5 {
		return target
	}
	lo, hi := 0.0, 0.5
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if crowd.MajorityError(mid, workers) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Fleet builds a complete backend fleet from a spec string over one
// shared base answer function — the one-call path from a CLI flag to a
// Config.Backends value.
func Fleet(spec string, base func(record.Pair) float64, seed int64) ([]Backend, error) {
	specs, err := ParseFleet(spec)
	if err != nil {
		return nil, err
	}
	out := make([]Backend, len(specs))
	for i, s := range specs {
		out[i] = s.Backend(base, seed)
	}
	return out, nil
}

// Noisy flips a deterministic answer function's verdict with the given
// probability: a stable per-pair coin decides whether the base answer
// or its complement is returned, simulating a backend with a calibrated
// error rate without needing ground truth.
func Noisy(base func(record.Pair) float64, errRate float64, seed int64) func(record.Pair) float64 {
	if errRate <= 0 {
		return base
	}
	return func(p record.Pair) float64 {
		fc := base(p)
		if hash01(seed, p) < errRate {
			return 1 - fc
		}
		return fc
	}
}

// hash01 maps (seed, pair) to a uniform [0, 1) value, stable across
// runs.
func hash01(seed int64, p record.Pair) float64 {
	h := uint64(seed)*0x9e3779b97f4a7c15 + uint64(p.Lo)*0xbf58476d1ce4e5b9 + uint64(p.Hi)*0x94d049bb133111eb
	h ^= h >> 31
	h *= 0xd6e8feb86659fd93
	h ^= h >> 29
	return float64(h%1_000_000) / 1_000_000
}
