package market

import (
	"testing"
	"time"

	"acd/internal/crowd"
	"acd/internal/record"
)

func TestParseFleetDefault(t *testing.T) {
	specs, err := ParseFleet(DefaultFleetSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("default fleet has %d backends, want 3", len(specs))
	}
	fast, careful, machine := specs[0], specs[1], specs[2]
	if fast.ID != "fast" || fast.CentsPerHIT != 1 || fast.PairsPerHIT != 20 || fast.ErrorRate != 0.12 {
		t.Errorf("fast parsed as %+v", fast)
	}
	if careful.ID != "careful" || careful.CentsPerHIT != 6 || careful.Latency != 2*time.Millisecond {
		t.Errorf("careful parsed as %+v", careful)
	}
	if machine.ID != "machine" || !machine.Machine {
		t.Errorf("machine parsed as %+v", machine)
	}
}

func TestParseFleetOptions(t *testing.T) {
	specs, err := ParseFleet("flaky:2:5:0.1:drop=0.3:fault=0.2:workers=5:lat=10ms")
	if err != nil {
		t.Fatal(err)
	}
	s := specs[0]
	if s.Drop != 0.3 || s.Fault != 0.2 || s.Workers != 5 || s.Latency != 10*time.Millisecond {
		t.Errorf("options parsed as %+v", s)
	}
}

func TestParseFleetErrors(t *testing.T) {
	bad := []string{
		"",                      // empty spec
		"a:1:2",                 // too few fields
		":1:2:0.1",              // empty id
		"a:1:2:0.1;a:1:2:0.1",   // duplicate id
		"a:x:2:0.1",             // bad cents
		"a:-1:2:0.1",            // negative cents
		"a:1:x:0.1",             // bad pairs
		"a:1:2:1.5",             // error rate out of range
		"a:1:2:0.1:drop=2",      // drop out of range
		"a:1:2:0.1:fault=x",     // bad fault
		"a:1:2:0.1:workers=0",   // bad workers
		"a:1:2:0.1:lat=-1ms",    // negative latency
		"a:1:2:0.1:bogus",       // unknown option
		"a:1:2:0.1:machine=yes", // machine takes no value
	}
	for _, spec := range bad {
		if _, err := ParseFleet(spec); err == nil {
			t.Errorf("ParseFleet(%q) accepted a bad spec", spec)
		}
	}
}

func TestNoisy(t *testing.T) {
	base := func(record.Pair) float64 { return 0.8 }
	if got := Noisy(base, 0, 1)(record.MakePair(0, 1)); got != 0.8 {
		t.Errorf("zero error rate changed the answer to %v", got)
	}
	flipped := 0
	noisy := Noisy(base, 0.25, 1)
	for i := 0; i < 4000; i += 2 {
		p := record.MakePair(record.ID(i), record.ID(i+1))
		straight, complement := base(p), 1-base(p)
		switch noisy(p) {
		case straight:
		case complement:
			flipped++
		default:
			t.Fatalf("noisy answer for %v is neither base nor complement", p)
		}
		if noisy(p) != noisy(p) {
			t.Fatal("noisy answers are not stable per pair")
		}
	}
	if rate := float64(flipped) / 2000; rate < 0.2 || rate > 0.3 {
		t.Errorf("observed flip rate %v, want ≈ 0.25", rate)
	}
}

func TestPerWorkerError(t *testing.T) {
	for _, tc := range []struct {
		target  float64
		workers int
	}{{0.12, 3}, {0.02, 5}, {0.3, 3}} {
		d := perWorkerError(tc.target, tc.workers)
		got := crowd.MajorityError(d, tc.workers)
		if diff := got - tc.target; diff < -1e-6 || diff > 1e-6 {
			t.Errorf("perWorkerError(%v, %d) = %v gives majority error %v", tc.target, tc.workers, d, got)
		}
	}
	if d := perWorkerError(0.6, 3); d != 0.6 {
		t.Errorf("beyond-coin-flip target not passed through: %v", d)
	}
	if d := perWorkerError(0.1, 1); d != 0.1 {
		t.Errorf("single-worker target not passed through: %v", d)
	}
}

// TestAnswerBackend: the frozen-answer backend realizes its advertised
// error rate against ground truth, and machine specs stay source-less.
func TestAnswerBackend(t *testing.T) {
	pairs := make([]record.Pair, 4000)
	for i := range pairs {
		pairs[i] = record.MakePair(record.ID(2*i), record.ID(2*i+1))
	}
	truth := func(p record.Pair) bool { return p.Lo%4 == 0 }
	spec := BackendSpec{ID: "fast", CentsPerHIT: 1, PairsPerHIT: 20, ErrorRate: 0.12, Workers: 3}
	b := spec.AnswerBackend(pairs, truth, 9)
	if b.Source == nil {
		t.Fatal("paid AnswerBackend has no source")
	}
	wrong := 0
	for _, p := range pairs {
		if (b.Source.Score(p) > 0.5) != truth(p) {
			wrong++
		}
	}
	if rate := float64(wrong) / float64(len(pairs)); rate < 0.09 || rate > 0.15 {
		t.Errorf("realized error rate %v, want ≈ %v", rate, spec.ErrorRate)
	}

	machine := BackendSpec{ID: "m", Machine: true, ErrorRate: 0.35}
	if mb := machine.AnswerBackend(pairs, truth, 9); mb.Source != nil || !mb.Machine {
		t.Errorf("machine AnswerBackend = %+v, want nil source", mb)
	}
}

// TestFleetEndToEnd drives a parsed fleet, fault wrapping included,
// through a marketplace batch: every question gets a finite answer and
// the chaos-wrapped backend degrades via retry/fallback rather than
// wedging or dropping pairs.
func TestFleetEndToEnd(t *testing.T) {
	base := func(p record.Pair) float64 {
		if p.Hi-p.Lo == 1 {
			return 0.9
		}
		return 0.1
	}
	backends, err := Fleet("flaky:1:4:0.1:drop=0.5:fault=0.3:lat=1ms;machine:0:0:0.45:machine", base, 11)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Backends: backends, BudgetCents: Unlimited, Prior: base, MinValue: -1})
	pairs := disjointPairs(16)
	out := m.ScoreBatch(pairs)
	for i, fc := range out {
		if fc < 0 || fc > 1 {
			t.Errorf("answer %d = %v out of range", i, fc)
		}
	}
	if m.Spent() == 0 {
		t.Error("paid backend never used")
	}
	if len(m.Ledger()) != len(pairs) {
		t.Errorf("ledger holds %d pairs, want %d", len(m.Ledger()), len(pairs))
	}
}
