// Package market implements a heterogeneous crowd marketplace: a layer
// between the resolve pipeline and crowd.Source that buys answers from
// several backends with different cost, latency, and accuracy profiles
// instead of treating the crowd as one uniform oracle.
//
// The paper's pipeline (and every prior PR in this repo) charges all
// questions at a single Config() rate. Real deployments mix channels —
// a fast cheap noisy microtask pool, a slow expensive accurate expert
// queue, and the free machine classifier — and the dominant cost levers
// are (a) sending each question to the channel whose answer buys the
// most information per cent (routing), (b) packing related pairs into
// multi-pair HITs so workers amortize reading records (CrowdER, VLDB
// 2012), and (c) ordering questions so likely duplicates are asked
// first and later pairs are answered for free by transitive closure
// ("The Expected Optimal Labeling Order Problem", CIKM 2013).
//
// A Market implements crowd.Source, crowd.BatchSource, and crowd.Biller,
// so it slots into core.ACD, incremental.Config.Source, and
// serve.Config.Source unchanged; the session books the HITs and cents
// the marketplace actually spent rather than deriving them from a
// uniform rate. A single-backend market with arrival ordering, no
// short-circuiting, and an unlimited budget is a pure passthrough: it
// consults its backend exactly once per fresh pair, in batch order, so
// the question multiset and clustering are identical to the direct
// pipeline (the golden gate in golden_test.go).
package market

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"acd/internal/crowd"
	"acd/internal/obs"
	"acd/internal/record"
)

// Unlimited is the BudgetCents value that disables the global budget:
// the marketplace never refuses a paid backend for lack of funds. (Any
// negative budget means unlimited; a zero budget is a real zero — every
// question degrades to the machine prior.)
const Unlimited = -1

// Backend models one answer channel the marketplace can buy from.
type Backend struct {
	// ID names the backend in metrics, ledgers, and answer-file charge
	// provenance.
	ID string
	// Source answers the backend's questions — typically an AnswerSet
	// (experiments), a noisy deterministic simulator (serving), or
	// either wrapped in the ChaosSource/ReliableSource fault machinery.
	// A Machine backend may leave it nil to answer from Config.Prior.
	Source crowd.Source
	// CentsPerHIT and PairsPerHIT set the backend's price: a HIT packs
	// up to PairsPerHIT questions and costs CentsPerHIT (charged in
	// full when the HIT is opened, even if the batch ends before it
	// fills). Machine backends post no HITs and charge nothing.
	CentsPerHIT int
	PairsPerHIT int
	// ErrorRate is the backend's calibrated per-answer error
	// probability, the accuracy half of the routing value.
	ErrorRate float64
	// Workers is the number of worker votes behind each answer (for the
	// session's vote accounting); zero means 1. Machine backends report
	// zero votes regardless.
	Workers int
	// Latency is the median simulated HIT round-trip. It is accounting
	// only (recorded into the backend's latency histogram and the batch
	// makespan gauge), never slept; wrap Source in ChaosSource/
	// ReliableSource when real or simulated waiting is wanted.
	Latency time.Duration
	// Machine marks the free machine-classifier backend: answers come
	// from Source (or Config.Prior when Source is nil), cost nothing,
	// and carry no worker votes.
	Machine bool
}

// Spike models a price change mid-run: once the marketplace has routed
// After questions, the named backend's CentsPerHIT is multiplied by
// Factor (rounded up). The mixed-fleet load scenario uses it to make
// the cheap backend suddenly expensive and watch routing shift.
type Spike struct {
	// Backend is the ID of the backend whose price changes.
	Backend string
	// After is the routed-question count at which the spike takes
	// effect.
	After int
	// Factor multiplies CentsPerHIT (values <= 0 are ignored).
	Factor float64
}

// Order selects how a batch's questions are sequenced into HITs.
type Order int

const (
	// OrderArrival keeps the batch's own order — the passthrough mode
	// the golden gate requires.
	OrderArrival Order = iota
	// OrderConfidence implements the expected-optimal-labeling-order
	// heuristic: questions are grouped into clusters of pairs sharing a
	// record (CrowdER-style HIT generation) and clusters are asked
	// most-likely-duplicate first, so positive answers arrive early and
	// transitive short-circuiting cancels as many later questions as
	// possible.
	OrderConfidence
)

// Config parameterizes a Market.
type Config struct {
	// Backends is the fleet, consulted in order for routing ties.
	Backends []Backend
	// BudgetCents is the global spend ceiling across all paid backends.
	// Negative (Unlimited) disables it; zero buys nothing — every
	// question degrades gracefully to the machine prior.
	BudgetCents int
	// Order sequences each batch's questions (see Order).
	Order Order
	// ShortCircuit answers a question for free when its two records are
	// already transitively connected by earlier positive answers,
	// instead of consulting a backend. The marketplace itself is the
	// oracle for such answers (it counts the oracle invocation), so the
	// questions_answered == oracle_invocations invariant survives. Off
	// by default; the golden passthrough config keeps it off.
	ShortCircuit bool
	// Prior estimates P(duplicate) for a pair before buying anything —
	// the machine similarity score in the ACD pipeline. It drives both
	// routing (information value) and ordering, and is the answer of
	// last resort when the budget is exhausted. Nil means 0.5
	// everywhere (maximum uncertainty).
	Prior func(record.Pair) float64
	// OverheadCents is the fixed per-question handling cost added to
	// every backend's per-question price in the value denominator, so
	// the free machine backend has finite (not infinite) value and paid
	// backends can win when they buy enough information. Zero means
	// DefaultOverheadCents.
	OverheadCents float64
	// MinValue is the purchase floor, in bits per cent: when the best
	// paid backend's information value falls below it — the prior is
	// already near-certain, so even an accurate answer buys almost
	// nothing — and the fleet has a free machine backend to fall back
	// on, the question is not bought. Without a machine backend the
	// floor never applies (a fleet of only paid backends still answers
	// every question, which the golden passthrough depends on). Zero
	// means DefaultMinValue; negative disables the floor.
	MinValue float64
	// Spikes are scheduled price changes (see Spike).
	Spikes []Spike
	// Seed drives the simulated HIT latency draws.
	Seed int64
}

// DefaultOverheadCents is the per-question fixed handling cost used
// when Config.OverheadCents is zero.
const DefaultOverheadCents = 0.05

// DefaultMinValue is the purchase floor used when Config.MinValue is
// zero: with the default overhead it routes questions whose prior is
// within a few percent of certain to the free machine backend instead
// of paying for an answer that adds almost no information.
const DefaultMinValue = 0.5

// Charge records what one answer cost: the backend that sold it and the
// pair's share of its HIT's price in cents. Free answers (machine
// backend, budget fallback, short-circuit inference) have zero cents.
type Charge struct {
	// Backend is the selling backend's ID; "machine" for budget
	// fallbacks without a machine backend, "inferred" for transitive
	// short-circuits.
	Backend string
	// Cents is the price paid for this answer.
	Cents float64
}

// ChargeMachine and ChargeInferred are the ledger backend IDs for
// answers the marketplace produced itself: the budget/priors fallback
// and transitive short-circuit inference respectively.
const (
	ChargeMachine  = "machine"
	ChargeInferred = "inferred"
)

// backendState is a Backend plus its open-HIT buffer.
type backendState struct {
	cfg Backend
	buf []pendingQ // questions in the currently open (charged) HIT
	// openCents is the price the open HIT was charged at (captured at
	// open time, so a mid-HIT price spike does not re-bill it).
	openCents int
}

// pendingQ is one routed question waiting for its HIT to flush.
type pendingQ struct {
	p   record.Pair
	idx int // position in the caller's batch
}

// Market routes questions across a fleet of backends under a global
// budget. It is safe for concurrent use; each batch is processed
// atomically under one lock.
type Market struct {
	cfg      Config
	backends []*backendState
	rec      *obs.Recorder

	mu           sync.Mutex
	spent        int
	pendingHITs  int // since the last Bill
	pendingCents int
	routed       int // questions routed (drives price spikes)
	ledger       map[record.Pair]Charge
	answered     map[record.Pair]float64 // every answer sold, for AnswerSet
	parent       map[record.ID]record.ID // positive-closure union-find
	rng          *rand.Rand
	simLatency   time.Duration // accumulated per-batch HIT makespans
	exhausted    bool          // a paid route was ever refused for budget
}

// New builds a marketplace over the configured fleet. Backends with a
// non-positive PairsPerHIT are treated as PairsPerHIT = 1.
func New(cfg Config) *Market {
	if cfg.OverheadCents <= 0 {
		cfg.OverheadCents = DefaultOverheadCents
	}
	if cfg.MinValue == 0 {
		cfg.MinValue = DefaultMinValue
	} else if cfg.MinValue < 0 {
		cfg.MinValue = 0
	}
	m := &Market{
		cfg:      cfg,
		ledger:   make(map[record.Pair]Charge),
		answered: make(map[record.Pair]float64),
		parent:   make(map[record.ID]record.ID),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	for _, b := range cfg.Backends {
		if b.PairsPerHIT < 1 {
			b.PairsPerHIT = 1
		}
		if b.Workers < 1 {
			b.Workers = 1
		}
		m.backends = append(m.backends, &backendState{cfg: b})
	}
	return m
}

// Config implements crowd.Source with a representative collection
// setting: the first paid backend's price and worker count (HIT and
// cents accounting never uses it — the market bills itself through
// crowd.Biller — but vote defaults and latency models read it).
func (m *Market) Config() crowd.Config {
	for _, b := range m.backends {
		if !b.cfg.Machine {
			return crowd.Config{
				Workers:     b.cfg.Workers,
				PairsPerHIT: b.cfg.PairsPerHIT,
				CentsPerHIT: b.cfg.CentsPerHIT,
				Seed:        m.cfg.Seed,
			}
		}
	}
	return crowd.Config{Workers: 1, PairsPerHIT: 1, CentsPerHIT: 0, Seed: m.cfg.Seed}
}

// SetRecorder implements crowd.RecorderSetter: it instruments the
// marketplace and pushes the recorder down into every backend source,
// then publishes each backend's calibrated error rate as a gauge.
func (m *Market) SetRecorder(rec *obs.Recorder) {
	m.rec = rec
	for _, b := range m.backends {
		if s, ok := b.cfg.Source.(crowd.RecorderSetter); ok {
			s.SetRecorder(rec)
		}
		rec.Gauge(BackendMetric(b.cfg.ID, "error_rate"), b.cfg.ErrorRate)
	}
}

// Recorder implements crowd.RecorderCarrier.
func (m *Market) Recorder() *obs.Recorder { return m.rec }

// Bill implements crowd.Biller: it drains the HITs and cents spent
// since the last call, so the session books the marketplace's real
// spend instead of a uniform rate.
func (m *Market) Bill() (hits, cents int, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	hits, cents = m.pendingHITs, m.pendingCents
	m.pendingHITs, m.pendingCents = 0, 0
	return hits, cents, true
}

// Spent returns the total cents charged so far.
func (m *Market) Spent() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.spent
}

// Exhausted reports whether any question was ever denied its chosen
// paid backend because the remaining budget could not cover a new HIT.
func (m *Market) Exhausted() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.exhausted
}

// Ledger returns a copy of the per-pair charge ledger: which backend
// answered each pair and what it cost. Callers annotate saved answer
// files (AnswerSet.SetCharge) from it.
func (m *Market) Ledger() map[record.Pair]Charge {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[record.Pair]Charge, len(m.ledger))
	for p, c := range m.ledger {
		out[p] = c
	}
	return out
}

// AnswerSet materializes every answer the marketplace has sold as a
// replayable answer set with per-pair charge provenance (backend id and
// price) — the payload acddedup -save-answers writes as a v3 file when
// a marketplace is in play.
func (m *Market) AnswerSet() *crowd.AnswerSet {
	m.mu.Lock()
	defer m.mu.Unlock()
	a := crowd.FixedAnswers(m.answered, m.Config())
	for p, c := range m.ledger {
		a.SetCharge(p, c.Backend, c.Cents)
	}
	return a
}

// VoteCount implements crowd.VoteCounter: the worker count of the
// backend that sold the pair's answer, zero for free answers.
func (m *Market) VoteCount(p record.Pair) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.ledger[p]
	if !ok {
		return 0
	}
	for _, b := range m.backends {
		if b.cfg.ID == c.Backend && !b.cfg.Machine {
			return b.cfg.Workers
		}
	}
	return 0
}

// Score implements crowd.Source (a one-question batch).
func (m *Market) Score(p record.Pair) float64 {
	return m.ScoreBatch([]record.Pair{p})[0]
}

// ScoreBatch implements crowd.BatchSource: it routes, packs, and
// resolves a whole crowd iteration. Answers are returned aligned to the
// input order regardless of how HIT packing reorders the work.
func (m *Market) ScoreBatch(pairs []record.Pair) []float64 {
	out, _ := m.scoreBatch(context.Background(), pairs)
	return out
}

// ScoreBatchCtx implements crowd.ContextBatchSource: as ScoreBatch, but
// a cancelled context stops the batch between questions. Whatever was
// already charged stays charged — the spent prefix is real money.
func (m *Market) ScoreBatchCtx(ctx context.Context, pairs []record.Pair) ([]float64, error) {
	return m.scoreBatch(ctx, pairs)
}

func (m *Market) scoreBatch(ctx context.Context, pairs []record.Pair) ([]float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	out := make([]float64, len(pairs))
	priors := make([]float64, len(pairs))
	for i, p := range pairs {
		priors[i] = m.prior(p)
	}
	var makespan time.Duration
	for _, i := range m.orderBatch(pairs, priors) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p, prior := pairs[i], priors[i]

		// Transitive short-circuit: records already connected by earlier
		// positive answers need no backend. The marketplace is the oracle
		// for the inferred answer, so it counts the invocation itself —
		// the consult-once discipline ChaosSource established.
		if m.cfg.ShortCircuit && m.find(p.Lo) == m.find(p.Hi) {
			out[i] = 1
			m.answered[p] = 1
			m.ledger[p] = Charge{Backend: ChargeInferred}
			m.rec.Count(MetricShortCircuited, 1)
			m.rec.Count(crowd.MetricOracleInvocations, 1)
			continue
		}

		b := m.route(prior)
		m.routed++
		m.rec.Count(MetricRouted, 1)
		switch {
		case b == nil:
			// No affordable backend at all: degrade to the prior.
			out[i] = prior
			m.answered[p] = prior
			m.union(p, prior)
			m.ledger[p] = Charge{Backend: ChargeMachine}
			m.rec.Count(crowd.MetricOracleInvocations, 1)
			m.rec.Count(MetricFallbacks, 1)
		case b.cfg.Machine:
			fc := prior
			if b.cfg.Source != nil {
				fc = b.cfg.Source.Score(p)
			} else {
				m.rec.Count(crowd.MetricOracleInvocations, 1)
			}
			out[i] = fc
			m.answered[p] = fc
			m.union(p, fc)
			m.ledger[p] = Charge{Backend: b.cfg.ID}
			m.rec.Count(BackendMetric(b.cfg.ID, "questions"), 1)
		default:
			if len(b.buf) == 0 {
				m.openHIT(b)
			}
			b.buf = append(b.buf, pendingQ{p: p, idx: i})
			m.rec.Count(BackendMetric(b.cfg.ID, "questions"), 1)
			if len(b.buf) >= b.cfg.PairsPerHIT {
				if lat := m.flush(b, pairs, out); lat > makespan {
					makespan = lat
				}
			}
		}
	}
	// Batch over: flush the partial HITs (already charged at open).
	for _, b := range m.backends {
		if len(b.buf) > 0 {
			if lat := m.flush(b, pairs, out); lat > makespan {
				makespan = lat
			}
		}
	}
	if makespan > 0 {
		m.simLatency += makespan
		m.rec.Gauge(MetricSimLatencySeconds, m.simLatency.Seconds())
	}
	if m.cfg.BudgetCents >= 0 {
		m.rec.Gauge(MetricBudgetRemainingCents, float64(m.cfg.BudgetCents-m.spent))
	}
	return out, nil
}

// prior returns the pre-purchase duplicate probability for a pair.
func (m *Market) prior(p record.Pair) float64 {
	if m.cfg.Prior == nil {
		return 0.5
	}
	f := m.cfg.Prior(p)
	if math.IsNaN(f) {
		return 0.5
	}
	return math.Min(1, math.Max(0, f))
}

// route picks the backend with the best expected information value per
// cent that the budget can still afford, or nil when nothing is
// affordable. Value is the mutual information between the backend's
// answer and the truth given the prior, divided by the per-question
// price plus the fixed handling overhead; the free machine backend's
// denominator is the overhead alone.
func (m *Market) route(prior float64) *backendState {
	var best, bestFree *backendState
	bestV, bestFreeV := math.Inf(-1), math.Inf(-1)
	sawUnaffordable := false
	for _, b := range m.backends {
		if !m.affordable(b) {
			sawUnaffordable = true
			continue
		}
		g := infoGain(prior, b.cfg.ErrorRate)
		if b.cfg.Machine && b.cfg.Source == nil {
			// A machine backend without its own source answers from the
			// prior — re-reading a signal the router already has. It buys
			// no information; it is the free fallback, not a purchase.
			g = 0
		}
		v := g / (m.cfg.OverheadCents + m.perQuestionCents(b))
		if v > bestV {
			best, bestV = b, v
		}
		if b.cfg.Machine && v > bestFreeV {
			bestFree, bestFreeV = b, v
		}
	}
	// Exhaustion is a budget outcome, so judge it before the purchase
	// floor can demote a still-affordable paid backend.
	if sawUnaffordable && (best == nil || best.cfg.Machine) {
		m.exhausted = true
		m.rec.Count(MetricBudgetExhausted, 1)
	}
	// The purchase floor: near-certain priors make every answer nearly
	// worthless, so don't pay for one when a free fallback exists.
	if best != nil && !best.cfg.Machine && bestFree != nil && bestV < m.cfg.MinValue {
		best = bestFree
	}
	return best
}

// affordable reports whether routing one more question to b fits the
// budget: free for machine backends and already-open HITs, a full
// CentsPerHIT when a new HIT would have to be opened.
func (m *Market) affordable(b *backendState) bool {
	if b.cfg.Machine || m.cfg.BudgetCents < 0 {
		return true
	}
	if len(b.buf) > 0 {
		return true // the open HIT is already paid for
	}
	return m.spent+m.effCents(b) <= m.cfg.BudgetCents
}

// perQuestionCents is b's marginal price per question at full packing.
func (m *Market) perQuestionCents(b *backendState) float64 {
	if b.cfg.Machine {
		return 0
	}
	return float64(m.effCents(b)) / float64(b.cfg.PairsPerHIT)
}

// effCents is b's current CentsPerHIT with any active price spikes
// applied.
func (m *Market) effCents(b *backendState) int {
	c := b.cfg.CentsPerHIT
	for _, s := range m.cfg.Spikes {
		if s.Backend == b.cfg.ID && m.routed >= s.After && s.Factor > 0 {
			c = int(math.Ceil(float64(c) * s.Factor))
		}
	}
	return c
}

// openHIT charges a new HIT on b at the current effective price.
func (m *Market) openHIT(b *backendState) {
	b.openCents = m.effCents(b)
	m.spent += b.openCents
	m.pendingHITs++
	m.pendingCents += b.openCents
	m.rec.Count(BackendMetric(b.cfg.ID, "hits"), 1)
	m.rec.Count(BackendMetric(b.cfg.ID, "cents"), int64(b.openCents))
	m.rec.Count(MetricSpendCents, int64(b.openCents))
}

// flush consults b's source for every question in its open HIT,
// records the answers into out (indexed by the caller's batch
// positions), folds positives into the transitive closure, splits the
// HIT's price across its occupants in the ledger, and draws the HIT's
// simulated latency. A HIT is posted as a unit, so a source with a
// batch path (ReliableSource's bounded worker pool) answers its pairs
// concurrently — a faulty backend's retry deadlines then overlap
// instead of stacking serially.
func (m *Market) flush(b *backendState, pairs []record.Pair, out []float64) time.Duration {
	perPair := float64(b.openCents) / float64(len(b.buf))
	qp := make([]record.Pair, len(b.buf))
	for i, q := range b.buf {
		qp[i] = q.p
	}
	var scores []float64
	if bs, ok := b.cfg.Source.(crowd.BatchSource); ok {
		scores = bs.ScoreBatch(qp)
	} else {
		scores = make([]float64, len(qp))
		for i, p := range qp {
			scores[i] = b.cfg.Source.Score(p)
		}
	}
	for i, q := range b.buf {
		fc := scores[i]
		out[q.idx] = fc
		m.answered[q.p] = fc
		m.union(q.p, fc)
		m.ledger[q.p] = Charge{Backend: b.cfg.ID, Cents: perPair}
	}
	b.buf = b.buf[:0]
	lat := m.drawLatency(b.cfg.Latency)
	if lat > 0 {
		m.rec.Observe(BackendMetric(b.cfg.ID, "hit_latency_seconds"), lat.Seconds())
	}
	return lat
}

// drawLatency samples a log-normal latency around the backend's median.
func (m *Market) drawLatency(median time.Duration) time.Duration {
	if median <= 0 {
		return 0
	}
	return time.Duration(float64(median) * math.Exp(0.25*m.rng.NormFloat64()))
}

// unionThreshold is the minimum crowd confidence for an answer to
// enter the transitive closure.
const unionThreshold = 0.9

// union folds a positive answer into the transitive closure. Membership
// is gated conservatively — a near-unanimous crowd positive that the
// machine prior does not contradict — because inferred answers are free
// and wrong ones cascade: one bad link merges two entities and every
// short-circuit across the merge compounds the error. (A bare majority
// from a noisy backend is wrong far too often to propagate for free.)
func (m *Market) union(p record.Pair, fc float64) {
	if fc < unionThreshold || m.prior(p) < 0.5 {
		return
	}
	ra, rb := m.find(p.Lo), m.find(p.Hi)
	if ra != rb {
		m.parent[ra] = rb
	}
}

// find is the union-find root lookup with path compression.
func (m *Market) find(id record.ID) record.ID {
	r, ok := m.parent[id]
	if !ok || r == id {
		return id
	}
	root := m.find(r)
	m.parent[id] = root
	return root
}

// orderBatch returns batch indices in asking order. OrderArrival keeps
// the input order; OrderConfidence groups questions into CrowdER-style
// clusters (pairs sharing a record) and asks clusters most-likely-
// duplicate first, likeliest pair first within each cluster.
func (m *Market) orderBatch(pairs []record.Pair, priors []float64) []int {
	idx := make([]int, len(pairs))
	for i := range idx {
		idx[i] = i
	}
	if m.cfg.Order != OrderConfidence {
		return idx
	}
	// Connected components over the batch's record ids.
	root := make(map[record.ID]record.ID, 2*len(pairs))
	var find func(record.ID) record.ID
	find = func(id record.ID) record.ID {
		r, ok := root[id]
		if !ok || r == id {
			return id
		}
		rr := find(r)
		root[id] = rr
		return rr
	}
	for _, p := range pairs {
		ra, rb := find(p.Lo), find(p.Hi)
		if ra != rb {
			root[ra] = rb
		}
	}
	type comp struct {
		max   float64 // best prior in the component
		first int     // earliest arrival index (tiebreak)
	}
	comps := make(map[record.ID]*comp)
	compOf := make([]record.ID, len(pairs))
	for i, p := range pairs {
		r := find(p.Lo)
		compOf[i] = r
		c, ok := comps[r]
		if !ok {
			comps[r] = &comp{max: priors[i], first: i}
			continue
		}
		if priors[i] > c.max {
			c.max = priors[i]
		}
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ca, cb := comps[compOf[idx[a]]], comps[compOf[idx[b]]]
		if ca != cb {
			if ca.max != cb.max {
				return ca.max > cb.max
			}
			return ca.first < cb.first
		}
		if priors[idx[a]] != priors[idx[b]] {
			return priors[idx[a]] > priors[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}

// infoGain is the mutual information (in bits) between a backend's
// answer and the truth, given the prior duplicate probability p and the
// backend's symmetric error rate e: H(p(1-e) + (1-p)e) - H(e). It is
// zero when the prior is certain or the backend is a coin flip, and
// maximal for a hard question sent to an accurate backend.
func infoGain(p, e float64) float64 {
	q := p*(1-e) + (1-p)*e
	g := entropy(q) - entropy(e)
	if g < 0 {
		return 0
	}
	return g
}

// entropy is the binary entropy function in bits.
func entropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}
