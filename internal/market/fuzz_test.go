package market

import (
	"testing"

	"acd/internal/crowd"
	"acd/internal/record"
)

// FuzzHITPack fuzzes the batch → HIT packing → answer unpacking round
// trip. The fuzzer drives the HIT size, the ordering policy, the
// short-circuit switch, and a batch boundary; the invariants are the
// marketplace's packing contract: no question dropped, none consulted
// twice, every answer lands back on its own input index, arrival
// ordering never reorders consults across a HIT or batch boundary, and
// the per-pair ledger prices always sum to the total spend.
func FuzzHITPack(f *testing.F) {
	f.Add([]byte("\x05\x00\x03\x00\x01\x02\x03\x04\x05\x06\x07\x08"))
	f.Add([]byte("\x01\x01\x00\x01" + "abcdefghij"))
	f.Add([]byte("\x07\x00\xff\x01\x00\x01\x01\x02\x00\x02\x03\x04"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			return
		}
		pairsPerHIT := 1 + int(data[0]%8)
		order := Order(data[1] % 2)
		split := int(data[2])
		shortCircuit := data[3]%2 == 1

		// Decode the remaining bytes into a deduped pair sequence (the
		// form the session hands the marketplace).
		var pairs []record.Pair
		seen := make(map[record.Pair]bool)
		for i := 4; i+1 < len(data); i += 2 {
			lo, hi := record.ID(data[i]%32), record.ID(data[i+1]%32)
			if lo == hi {
				continue
			}
			p := record.MakePair(lo, hi)
			if seen[p] {
				continue
			}
			seen[p] = true
			pairs = append(pairs, p)
		}
		if len(pairs) == 0 {
			return
		}

		answer := func(p record.Pair) float64 {
			return float64((int(p.Lo)*7+int(p.Hi)*13)%10) / 10
		}
		cs := newCounting(crowd.SourceFunc{
			Fn:      answer,
			Setting: crowd.Config{Workers: 1, PairsPerHIT: pairsPerHIT, CentsPerHIT: 2},
		})
		m := New(Config{
			Backends:     []Backend{{ID: "b", Source: cs, CentsPerHIT: 2, PairsPerHIT: pairsPerHIT, ErrorRate: 0.1}},
			BudgetCents:  Unlimited,
			Order:        order,
			ShortCircuit: shortCircuit,
		})

		cut := split % (len(pairs) + 1)
		out := m.ScoreBatch(pairs[:cut])
		out = append(out, m.ScoreBatch(pairs[cut:])...)
		if len(out) != len(pairs) {
			t.Fatalf("%d answers for %d questions", len(out), len(pairs))
		}

		ledger := m.Ledger()
		consulted := 0
		for i, p := range pairs {
			c, ok := ledger[p]
			if !ok {
				t.Fatalf("pair %v dropped: no ledger entry", p)
			}
			switch c.Backend {
			case ChargeInferred:
				if out[i] != 1 {
					t.Errorf("inferred answer for %v = %v, want 1", p, out[i])
				}
				if n := cs.asked[p]; n != 0 {
					t.Errorf("inferred pair %v still consulted %d times", p, n)
				}
			case "b":
				consulted++
				if n := cs.asked[p]; n != 1 {
					t.Errorf("pair %v consulted %d times, want exactly once", p, n)
				}
				if want := answer(p); out[i] != want {
					t.Errorf("answer for %v landed as %v on index %d, want %v", p, out[i], i, want)
				}
			default:
				t.Errorf("pair %v charged to unexpected backend %q", p, c.Backend)
			}
		}
		if len(cs.order) != consulted {
			t.Errorf("backend saw %d consults, ledger says %d paid answers", len(cs.order), consulted)
		}

		// Arrival ordering without inference is a strict passthrough:
		// the backend must see the input sequence verbatim, across every
		// HIT and batch boundary.
		if order == OrderArrival && !shortCircuit {
			for i, p := range cs.order {
				if p != pairs[i] {
					t.Fatalf("arrival order broken: consult %d = %v, want %v", i, p, pairs[i])
				}
			}
		}

		var ledgerCents float64
		for _, c := range ledger {
			ledgerCents += c.Cents
		}
		if spent := float64(m.Spent()); ledgerCents < spent-1e-6 || ledgerCents > spent+1e-6 {
			t.Errorf("ledger prices sum to %v cents, marketplace spent %v", ledgerCents, spent)
		}
	})
}
