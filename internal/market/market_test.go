package market

import (
	"context"
	"math"
	"sync"
	"testing"

	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/obs"
	"acd/internal/pruning"
	"acd/internal/record"
)

// countingSource wraps a crowd source and records the multiset and
// order of consultations.
type countingSource struct {
	mu    sync.Mutex
	inner crowd.Source
	asked map[record.Pair]int
	order []record.Pair
}

func newCounting(inner crowd.Source) *countingSource {
	return &countingSource{inner: inner, asked: map[record.Pair]int{}}
}

// Score implements crowd.Source.
func (c *countingSource) Score(p record.Pair) float64 {
	c.mu.Lock()
	c.asked[p]++
	c.order = append(c.order, p)
	c.mu.Unlock()
	return c.inner.Score(p)
}

// Config implements crowd.Source.
func (c *countingSource) Config() crowd.Config { return c.inner.Config() }

// disjointPairs returns n pairs sharing no records: (0,1), (2,3), ...
func disjointPairs(n int) []record.Pair {
	out := make([]record.Pair, n)
	for i := range out {
		out[i] = record.MakePair(record.ID(2*i), record.ID(2*i+1))
	}
	return out
}

// fixedFor builds an AnswerSet holding the given score for every pair.
func fixedFor(pairs []record.Pair, fc float64) *crowd.AnswerSet {
	scores := make(map[record.Pair]float64, len(pairs))
	for _, p := range pairs {
		scores[p] = fc
	}
	return crowd.FixedAnswers(scores, crowd.ThreeWorker(1))
}

// TestBatchAlignment: answers come back aligned to the input order for
// both ordering policies, every pair is consulted exactly once, and
// with arrival ordering the backend sees the input sequence verbatim.
func TestBatchAlignment(t *testing.T) {
	pairs := disjointPairs(23)
	answers := fixedFor(pairs, 0) // overwritten below with distinct scores
	scores := make(map[record.Pair]float64, len(pairs))
	for i, p := range pairs {
		scores[p] = float64(i%7) / 10
	}
	answers = crowd.FixedAnswers(scores, crowd.ThreeWorker(1))

	for _, order := range []Order{OrderArrival, OrderConfidence} {
		cs := newCounting(answers)
		m := New(Config{
			Backends:    []Backend{{ID: "only", Source: cs, CentsPerHIT: 2, PairsPerHIT: 5, ErrorRate: 0.1}},
			BudgetCents: Unlimited,
			Order:       order,
		})
		got := m.ScoreBatch(pairs)
		for i, p := range pairs {
			if got[i] != scores[p] {
				t.Errorf("order %v: out[%d] = %v, want %v", order, i, got[i], scores[p])
			}
		}
		for p, n := range cs.asked {
			if n != 1 {
				t.Errorf("order %v: pair %v consulted %d times", order, p, n)
			}
		}
		if len(cs.asked) != len(pairs) {
			t.Errorf("order %v: consulted %d distinct pairs, want %d", order, len(cs.asked), len(pairs))
		}
		if order == OrderArrival {
			for i, p := range cs.order {
				if p != pairs[i] {
					t.Fatalf("arrival order: consult %d = %v, want %v", i, p, pairs[i])
				}
			}
		}
	}
}

// TestRoutingByValue: a confident prior routes to the free machine
// backend, a hard question routes to the accurate expensive backend
// when its information per cent wins, and the cheap noisy backend takes
// the middle ground.
func TestRoutingByValue(t *testing.T) {
	p := record.MakePair(0, 1)
	answers := fixedFor([]record.Pair{p}, 1)
	mk := func(prior float64) *Market {
		return New(Config{
			Backends: []Backend{
				{ID: "fast", Source: answers, CentsPerHIT: 1, PairsPerHIT: 20, ErrorRate: 0.12},
				{ID: "careful", Source: answers, CentsPerHIT: 6, PairsPerHIT: 10, ErrorRate: 0.02},
				{ID: "machine", ErrorRate: 0.35, Machine: true},
			},
			BudgetCents: Unlimited,
			Prior:       func(record.Pair) float64 { return prior },
		})
	}

	m := mk(0.999) // near-certain: nothing is worth paying for
	m.ScoreBatch([]record.Pair{p})
	if c := m.Ledger()[p]; c.Backend != "machine" {
		t.Errorf("confident prior routed to %q, want machine", c.Backend)
	}

	m = mk(0.5) // maximum uncertainty: buy the best information per cent
	m.ScoreBatch([]record.Pair{p})
	if c := m.Ledger()[p]; c.Backend == "machine" {
		t.Errorf("hard question routed to the machine backend")
	}
}

// TestZeroBudget: a zero budget buys nothing — every answer degrades to
// the machine prior gracefully, with zero spend.
func TestZeroBudget(t *testing.T) {
	pairs := disjointPairs(12)
	answers := fixedFor(pairs, 1)
	rec := obs.New()
	m := New(Config{
		Backends: []Backend{
			{ID: "paid", Source: answers, CentsPerHIT: 2, PairsPerHIT: 5, ErrorRate: 0.05},
			{ID: "machine", ErrorRate: 0.35, Machine: true},
		},
		BudgetCents: 0,
		Prior:       func(record.Pair) float64 { return 0.4 },
	})
	m.SetRecorder(rec)
	got := m.ScoreBatch(pairs)
	for i := range got {
		if got[i] != 0.4 {
			t.Fatalf("out[%d] = %v, want the 0.4 prior", i, got[i])
		}
	}
	if m.Spent() != 0 {
		t.Errorf("Spent() = %d, want 0", m.Spent())
	}
	if !m.Exhausted() {
		t.Error("Exhausted() = false after refusing paid routes")
	}
	for p, c := range m.Ledger() {
		if c.Backend != "machine" || c.Cents != 0 {
			t.Errorf("pair %v charged %+v, want free machine answer", p, c)
		}
	}
	if rec.Counter(MetricBudgetExhausted) == 0 {
		t.Error("budget_exhausted metric not counted")
	}
}

// TestMidBatchExhaustion: when the budget runs out mid-batch, the spent
// prefix keeps its paid answers and charges, the rest degrade to the
// machine prior, and total spend never exceeds the budget.
func TestMidBatchExhaustion(t *testing.T) {
	pairs := disjointPairs(30)
	answers := fixedFor(pairs, 1)
	rec := obs.New()
	m := New(Config{
		Backends: []Backend{
			{ID: "paid", Source: answers, CentsPerHIT: 2, PairsPerHIT: 5, ErrorRate: 0.05},
			{ID: "machine", ErrorRate: 0.35, Machine: true},
		},
		BudgetCents: 4, // exactly two 5-pair HITs
		Prior:       func(record.Pair) float64 { return 0.5 },
	})
	m.SetRecorder(rec)
	m.ScoreBatch(pairs)

	if m.Spent() != 4 {
		t.Errorf("Spent() = %d, want the full 4-cent budget", m.Spent())
	}
	paid, free := 0, 0
	var paidCents float64
	for _, c := range m.Ledger() {
		switch c.Backend {
		case "paid":
			paid++
			paidCents += c.Cents
		case "machine":
			free++
		default:
			t.Errorf("unexpected backend %q", c.Backend)
		}
	}
	if paid != 10 || free != 20 {
		t.Errorf("paid %d / free %d answers, want 10 / 20", paid, free)
	}
	if math.Abs(paidCents-4) > 1e-9 {
		t.Errorf("ledger paid prices sum to %v, want 4", paidCents)
	}
	if !m.Exhausted() {
		t.Error("Exhausted() = false")
	}
	hits, cents, ok := m.Bill()
	if !ok || hits != 2 || cents != 4 {
		t.Errorf("Bill() = (%d, %d, %v), want (2, 4, true)", hits, cents, ok)
	}
	if hits, cents, _ := m.Bill(); hits != 0 || cents != 0 {
		t.Errorf("second Bill() = (%d, %d), want drained", hits, cents)
	}
}

// TestPartialHITChargedInFull: a batch that ends mid-HIT still pays for
// the opened HIT, and the ledger splits its price across the actual
// occupants.
func TestPartialHITChargedInFull(t *testing.T) {
	pairs := disjointPairs(3)
	answers := fixedFor(pairs, 1)
	m := New(Config{
		Backends:    []Backend{{ID: "b", Source: answers, CentsPerHIT: 6, PairsPerHIT: 10, ErrorRate: 0.05}},
		BudgetCents: Unlimited,
		Prior:       func(record.Pair) float64 { return 0.5 },
	})
	m.ScoreBatch(pairs)
	if m.Spent() != 6 {
		t.Errorf("Spent() = %d, want 6 (one full HIT)", m.Spent())
	}
	for p, c := range m.Ledger() {
		if math.Abs(c.Cents-2) > 1e-9 {
			t.Errorf("pair %v priced %v, want 6/3 = 2", p, c.Cents)
		}
	}
}

// TestPriceSpike: once the spike fires, the cheap backend's effective
// price makes it lose the value race and routing shifts.
func TestPriceSpike(t *testing.T) {
	pairs := disjointPairs(40)
	answers := fixedFor(pairs, 1)
	m := New(Config{
		Backends: []Backend{
			{ID: "cheap", Source: answers, CentsPerHIT: 1, PairsPerHIT: 10, ErrorRate: 0.12},
			{ID: "careful", Source: answers, CentsPerHIT: 6, PairsPerHIT: 10, ErrorRate: 0.02},
		},
		BudgetCents: Unlimited,
		Prior:       func(record.Pair) float64 { return 0.5 },
		Spikes:      []Spike{{Backend: "cheap", After: 20, Factor: 50}},
	})
	m.ScoreBatch(pairs)
	led := m.Ledger()
	if got := led[pairs[0]].Backend; got != "cheap" {
		t.Errorf("pre-spike question routed to %q, want cheap", got)
	}
	if got := led[pairs[39]].Backend; got != "careful" {
		t.Errorf("post-spike question routed to %q, want careful", got)
	}
}

// TestShortCircuit: with transitive short-circuiting on, a pair whose
// records are already connected by earlier positive answers is answered
// for free without consulting any backend.
func TestShortCircuit(t *testing.T) {
	a, b, c := record.ID(0), record.ID(1), record.ID(2)
	chain := []record.Pair{record.MakePair(a, b), record.MakePair(b, c), record.MakePair(a, c)}
	answers := fixedFor(chain, 1)
	cs := newCounting(answers)
	rec := obs.New()
	m := New(Config{
		Backends:     []Backend{{ID: "b", Source: cs, CentsPerHIT: 1, PairsPerHIT: 1, ErrorRate: 0.05}},
		BudgetCents:  Unlimited,
		ShortCircuit: true,
		Prior:        func(record.Pair) float64 { return 0.9 },
	})
	m.SetRecorder(rec)
	got := m.ScoreBatch(chain)
	if got[2] != 1 {
		t.Errorf("inferred answer = %v, want 1", got[2])
	}
	if n := cs.asked[record.MakePair(a, c)]; n != 0 {
		t.Errorf("short-circuited pair consulted %d times", n)
	}
	if c := m.Ledger()[record.MakePair(a, c)]; c.Backend != ChargeInferred || c.Cents != 0 {
		t.Errorf("inferred pair charged %+v", c)
	}
	if rec.Counter(MetricShortCircuited) != 1 {
		t.Errorf("short_circuited = %d, want 1", rec.Counter(MetricShortCircuited))
	}
	// The invariant bookkeeping: 3 questions answered, 2 oracle consults
	// by the backend — the market itself counted the third.
	if rec.Counter(crowd.MetricOracleInvocations) != 1 {
		t.Errorf("market-side oracle invocations = %d, want 1 (the inferred answer)", rec.Counter(crowd.MetricOracleInvocations))
	}
}

// TestInvariantSurvivesRouting runs the full ACD pipeline over a mixed
// fleet — paid AnswerSet backends, a free machine backend, confidence
// ordering, short-circuiting, and a finite budget — and asserts the
// pinned accounting invariant: crowd/questions_answered equals
// crowd/oracle_invocations, and the session's cents equal the
// marketplace's spend.
func TestInvariantSurvivesRouting(t *testing.T) {
	// A synthetic 60-record instance: 20 entities of 3 records each,
	// with high in-entity machine scores and a few confusable cross
	// pairs.
	scores := make(cluster.Scores)
	truth := func(p record.Pair) bool { return p.Lo/3 == p.Hi/3 }
	for e := 0; e < 20; e++ {
		base := record.ID(3 * e)
		scores[record.MakePair(base, base+1)] = 0.9
		scores[record.MakePair(base, base+2)] = 0.55
		scores[record.MakePair(base+1, base+2)] = 0.62
		if e > 0 {
			scores[record.MakePair(base-1, base)] = 0.45
			scores[record.MakePair(base-2, base+1)] = 0.5
		}
	}
	cands := pruning.FromScores(60, scores, -1)
	answers := crowd.BuildAnswers(cands.PairList(), truth, crowd.UniformDifficulty(0.1), crowd.ThreeWorker(3))
	accurate := crowd.BuildAnswers(cands.PairList(), truth, crowd.UniformDifficulty(0.02), crowd.FiveWorker(4))

	rec := obs.New()
	m := New(Config{
		Backends: []Backend{
			{ID: "fast", Source: answers, CentsPerHIT: 1, PairsPerHIT: 20, ErrorRate: 0.12, Workers: 3},
			{ID: "careful", Source: accurate, CentsPerHIT: 6, PairsPerHIT: 10, ErrorRate: 0.02, Workers: 5},
			{ID: "machine", ErrorRate: 0.35, Machine: true},
		},
		BudgetCents:  25,
		Order:        OrderConfidence,
		ShortCircuit: true,
		Prior:        cands.Score,
	})
	out := core.ACD(cands, m, core.Config{Seed: 7, Obs: rec})
	if out.Err != nil {
		t.Fatalf("run failed: %v", out.Err)
	}
	qa := rec.Counter(crowd.MetricQuestionsAnswered)
	oi := rec.Counter(crowd.MetricOracleInvocations)
	if qa == 0 || qa != oi {
		t.Errorf("questions_answered = %d, oracle_invocations = %d; invariant broken", qa, oi)
	}
	if int64(out.Stats.Cents) != rec.Counter(MetricSpendCents) {
		t.Errorf("session cents %d != market spend %d", out.Stats.Cents, rec.Counter(MetricSpendCents))
	}
	if out.Stats.Cents != m.Spent() {
		t.Errorf("session cents %d != Spent() %d", out.Stats.Cents, m.Spent())
	}
	if m.Spent() > 25 {
		t.Errorf("spent %d cents over the 25-cent budget", m.Spent())
	}
	if rec.Counter(crowd.MetricCents) != rec.Counter(MetricSpendCents) {
		t.Errorf("crowd/cents %d != market/spend_cents %d", rec.Counter(crowd.MetricCents), rec.Counter(MetricSpendCents))
	}
}

// TestScoreBatchCtxCancel: a cancelled context stops the batch with the
// context's error and no further consults.
func TestScoreBatchCtxCancel(t *testing.T) {
	pairs := disjointPairs(5)
	answers := fixedFor(pairs, 1)
	m := New(Config{
		Backends:    []Backend{{ID: "b", Source: answers, CentsPerHIT: 1, PairsPerHIT: 1, ErrorRate: 0.1}},
		BudgetCents: Unlimited,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.ScoreBatchCtx(ctx, pairs); err == nil {
		t.Fatal("cancelled batch returned nil error")
	}
	if m.Spent() != 0 {
		t.Errorf("cancelled-before-start batch spent %d cents", m.Spent())
	}
}

// TestVoteCountAndConfig: votes reflect the selling backend's worker
// count, and Config() exposes the first paid backend's setting.
func TestVoteCountAndConfig(t *testing.T) {
	pairs := disjointPairs(2)
	answers := fixedFor(pairs, 1)
	m := New(Config{
		Backends: []Backend{
			{ID: "machine", ErrorRate: 0.3, Machine: true},
			{ID: "paid", Source: answers, CentsPerHIT: 2, PairsPerHIT: 20, ErrorRate: 0.05, Workers: 5},
		},
		BudgetCents: Unlimited,
		Prior:       func(record.Pair) float64 { return 0.5 },
	})
	if cfg := m.Config(); cfg.Workers != 5 || cfg.PairsPerHIT != 20 || cfg.CentsPerHIT != 2 {
		t.Errorf("Config() = %+v, want the paid backend's setting", cfg)
	}
	m.ScoreBatch(pairs[:1])
	if v := m.VoteCount(pairs[0]); v != 5 {
		t.Errorf("VoteCount(paid pair) = %d, want 5", v)
	}
	if v := m.VoteCount(pairs[1]); v != 0 {
		t.Errorf("VoteCount(unasked pair) = %d, want 0", v)
	}
}

// TestSessionBilling: driven through a crowd.Session, the session's
// stats book the marketplace's own HIT and cent accounting, not the
// uniform Config() rate.
func TestSessionBilling(t *testing.T) {
	pairs := disjointPairs(25)
	answers := fixedFor(pairs, 1)
	m := New(Config{
		Backends: []Backend{
			{ID: "cheap", Source: answers, CentsPerHIT: 1, PairsPerHIT: 20, ErrorRate: 0.12, Workers: 3},
		},
		BudgetCents: Unlimited,
		Prior:       func(record.Pair) float64 { return 0.5 },
	})
	sess := crowd.NewSession(m)
	sess.Ask(pairs)
	st := sess.Stats()
	if st.Pairs != 25 {
		t.Errorf("Pairs = %d, want 25", st.Pairs)
	}
	if st.HITs != 2 || st.Cents != 2 {
		t.Errorf("HITs/Cents = %d/%d, want 2/2 (two 20-pair HITs at 1c)", st.HITs, st.Cents)
	}
	if st.Votes != 25*3 {
		t.Errorf("Votes = %d, want 75", st.Votes)
	}
}

// TestInfoGain sanity: zero at certainty, increasing with backend
// accuracy, zero for a coin-flip backend.
func TestInfoGain(t *testing.T) {
	if g := infoGain(0, 0.1); g != 0 {
		t.Errorf("infoGain(0, .1) = %v, want 0", g)
	}
	if g := infoGain(1, 0.1); g != 0 {
		t.Errorf("infoGain(1, .1) = %v, want 0", g)
	}
	if g := infoGain(0.5, 0.5); g > 1e-12 {
		t.Errorf("infoGain(.5, .5) = %v, want 0", g)
	}
	if infoGain(0.5, 0.02) <= infoGain(0.5, 0.2) {
		t.Error("a more accurate backend should buy more information")
	}
	if infoGain(0.5, 0.1) <= infoGain(0.9, 0.1) {
		t.Error("a harder question should buy more information")
	}
}

// TestAnswerSet: the marketplace materializes everything it answered —
// paid, machine, and inferred — as a replayable AnswerSet whose scores
// match the batch output and whose charges match the ledger.
func TestAnswerSet(t *testing.T) {
	pairs := []record.Pair{
		record.MakePair(0, 1),
		record.MakePair(1, 2),
		record.MakePair(0, 2), // inferred once 0-1 and 1-2 are positive
		record.MakePair(3, 4),
	}
	m := New(Config{
		Backends: []Backend{
			{ID: "paid", Source: fixedFor(pairs, 0.9), CentsPerHIT: 2, PairsPerHIT: 1, ErrorRate: 0.1},
			{ID: "m", Machine: true, ErrorRate: 0.45},
		},
		BudgetCents:  Unlimited,
		ShortCircuit: true,
		MinValue:     -1,
	})
	out := m.ScoreBatch(pairs)

	a := m.AnswerSet()
	ledger := m.Ledger()
	if len(ledger) != len(pairs) {
		t.Fatalf("ledger holds %d pairs, want %d", len(ledger), len(pairs))
	}
	for i, p := range pairs {
		if got := a.Score(p); got != out[i] {
			t.Errorf("AnswerSet score for %v = %v, want batch answer %v", p, got, out[i])
		}
		backend, cents := a.Charge(p)
		want := ledger[p]
		if backend != want.Backend || cents != want.Cents {
			t.Errorf("AnswerSet charge for %v = (%q, %v), want (%q, %v)",
				p, backend, cents, want.Backend, want.Cents)
		}
	}
	if backend, _ := a.Charge(record.MakePair(0, 2)); backend != ChargeInferred {
		t.Errorf("pair (0,2) charged to %q, want %q", backend, ChargeInferred)
	}
	if cfg := a.Config(); cfg.CentsPerHIT != 2 || cfg.PairsPerHIT != 1 {
		t.Errorf("AnswerSet config = %+v, want the paid backend's setting", cfg)
	}
}
