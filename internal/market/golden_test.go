package market

import (
	"reflect"
	"testing"

	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/dataset"
	"acd/internal/pruning"
)

// goldenSeed matches the seed the repo's other golden gates pin.
const goldenSeed = 42

// TestMarketGolden is the marketplace's gate: a one-backend fleet with
// arrival ordering, no short-circuiting, and an unlimited budget must be
// a pure passthrough. On the Restaurant golden it reproduces the direct
// pipeline's clustering, question multiset, and HIT/cents accounting
// exactly — the marketplace changes who answers and what it costs only
// when configured to, never as a side effect of being in the path.
func TestMarketGolden(t *testing.T) {
	ds := dataset.Restaurant(1)
	cands := pruning.Prune(ds.Records, pruning.Options{})
	answers := crowd.BuildAnswers(cands.PairList(), ds.TruthFn(), crowd.UniformDifficulty(0), crowd.ThreeWorker(7))
	cfg := answers.Config()

	// Reference: the direct pipeline over the raw answer set.
	refCap := newCounting(answers)
	ref := core.ACD(cands, refCap, core.Config{Seed: goldenSeed})
	if ref.Err != nil {
		t.Fatal(ref.Err)
	}
	if len(refCap.asked) == 0 {
		t.Fatal("reference run asked no questions — the golden is vacuous")
	}

	// Marketplace passthrough: the same answer set behind a one-backend
	// fleet in golden mode.
	mktCap := newCounting(answers)
	m := New(Config{
		Backends: []Backend{{
			ID:          "crowd",
			Source:      mktCap,
			CentsPerHIT: cfg.CentsPerHIT,
			PairsPerHIT: cfg.PairsPerHIT,
			ErrorRate:   0.1,
			Workers:     cfg.Workers,
		}},
		BudgetCents: Unlimited,
		Order:       OrderArrival,
	})
	got := core.ACD(cands, m, core.Config{Seed: goldenSeed})
	if got.Err != nil {
		t.Fatal(got.Err)
	}

	if !reflect.DeepEqual(got.Clusters.Sets(), ref.Clusters.Sets()) {
		t.Errorf("clustering differs from the direct pipeline (%d vs %d clusters)",
			len(got.Clusters.Sets()), len(ref.Clusters.Sets()))
	}
	if !reflect.DeepEqual(mktCap.asked, refCap.asked) {
		t.Errorf("question multiset differs: asked %d distinct pairs, want %d",
			len(mktCap.asked), len(refCap.asked))
	}
	if got.Stats != ref.Stats {
		t.Errorf("crowd accounting differs: %+v, want %+v", got.Stats, ref.Stats)
	}

	// Passthrough means consult-once: no pair may be asked twice, and
	// the marketplace's own spend must agree with the session's books.
	for p, n := range mktCap.asked {
		if n != 1 {
			t.Errorf("pair %v consulted %d times through the marketplace", p, n)
		}
	}
	if m.Spent() != got.Stats.Cents {
		t.Errorf("marketplace spent %d cents, session booked %d", m.Spent(), got.Stats.Cents)
	}
	for p, c := range m.Ledger() {
		if c.Backend != "crowd" {
			t.Errorf("pair %v charged to %q in passthrough mode", p, c.Backend)
		}
	}
}
