package market

// Metric names emitted by the marketplace. Spend is the first-class
// counter here: crowd/cents (booked by the session through the Biller
// hook) and market/spend_cents (booked at HIT-open time by the
// marketplace) must agree on a completed run, and the per-backend
// crowd/backend/<id>/* families break the same spend out by channel.
const (
	// MetricSpendCents accumulates every cent the marketplace charged,
	// across all backends — the first-class spend counter.
	MetricSpendCents = "market/spend_cents"
	// MetricRouted counts questions that went through the router
	// (everything except short-circuited answers).
	MetricRouted = "market/routed"
	// MetricShortCircuited counts questions answered for free by
	// transitive closure over earlier positive answers.
	MetricShortCircuited = "market/short_circuited"
	// MetricBudgetExhausted counts questions that wanted a paid backend
	// but were demoted to the machine prior because the remaining
	// budget could not cover a new HIT.
	MetricBudgetExhausted = "market/budget_exhausted"
	// MetricFallbacks counts questions answered from the prior because
	// no backend at all was affordable (no machine backend in the
	// fleet and the budget spent).
	MetricFallbacks = "market/fallbacks"
	// MetricBudgetRemainingCents gauges the unspent budget (only
	// published when a finite budget is configured).
	MetricBudgetRemainingCents = "market/budget_remaining_cents"
	// MetricSimLatencySeconds gauges the accumulated simulated batch
	// makespan: per batch, the slowest HIT latency drawn across the
	// fleet (backends post HITs in parallel within an iteration).
	MetricSimLatencySeconds = "market/sim_latency_seconds"
)

// BackendMetric names one backend's per-channel metric: the
// crowd/backend/<id>/<name> families (questions, hits, cents,
// hit_latency_seconds, error_rate).
func BackendMetric(id, name string) string {
	return "crowd/backend/" + id + "/" + name
}
