package dataset

import (
	"fmt"
	"math/rand"

	"acd/internal/record"
)

// Word pools shared by the generators. They are intentionally small: the
// candidate-graph density of each dataset is governed by how often
// unrelated records collide on tokens, and pool sizes are the calibration
// knobs (see EXPERIMENTS.md for the measured candidate counts).
var (
	firstNames = []string{
		"james", "mary", "john", "patricia", "robert", "jennifer", "michael",
		"linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
		"joseph", "jessica", "thomas", "sarah", "charles", "karen", "wei",
		"lei", "hiroshi", "yuki", "anil", "priya", "olga", "ivan", "marta", "luis",
	}
	lastNames = []string{
		"smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
		"davis", "rodriguez", "martinez", "wilson", "anderson", "taylor",
		"thomas", "moore", "jackson", "martin", "lee", "thompson", "white",
		"chen", "wang", "kumar", "patel", "tanaka", "sato", "ivanov", "novak",
		"kim", "nguyen",
	}
)

// ---------------------------------------------------------------------------
// Paper: Cora-like citation records. Dense candidate graph: citations in
// the same research area share venue strings and topic vocabulary, so a
// large fraction of same-topic cross-entity pairs clears τ = 0.3.

var paperVenues = []string{
	"proceedings of the international conference on machine learning",
	"proceedings of the national conference on artificial intelligence",
	"advances in neural information processing systems conference",
	"proceedings of the international joint conference on artificial intelligence",
	"journal of artificial intelligence research",
	"machine learning journal",
	"proceedings of the international conference on knowledge discovery and data mining",
	"ieee transactions on pattern analysis and machine intelligence",
}

var paperTopics = [][]string{
	{"learning", "neural", "network", "backpropagation", "gradient", "training", "hidden", "layers", "weights", "activation", "convergence", "optimization"},
	{"reinforcement", "learning", "policy", "reward", "markov", "decision", "agent", "exploration", "temporal", "difference", "control", "dynamic"},
	{"bayesian", "inference", "probabilistic", "networks", "belief", "graphical", "models", "posterior", "prior", "likelihood", "sampling", "estimation"},
	{"genetic", "algorithms", "evolutionary", "computation", "population", "selection", "crossover", "mutation", "fitness", "search", "adaptive", "operators"},
	{"inductive", "logic", "programming", "rules", "first", "order", "clauses", "predicates", "knowledge", "representation", "reasoning", "induction"},
	{"decision", "trees", "classification", "pruning", "attributes", "splits", "ensemble", "boosting", "bagging", "accuracy", "splitting", "features"},
	{"speech", "recognition", "hidden", "markov", "models", "acoustic", "language", "phoneme", "vocabulary", "continuous", "discrete", "signal"},
	{"planning", "search", "heuristic", "constraint", "satisfaction", "scheduling", "domains", "operators", "state", "space", "abstraction", "goals"},
	{"clustering", "unsupervised", "density", "partitioning", "centroids", "hierarchical", "distance", "similarity", "mixture", "expectation", "maximization", "kmeans"},
	{"vision", "image", "object", "recognition", "segmentation", "edges", "texture", "features", "invariant", "matching", "stereo", "motion"},
	{"text", "information", "retrieval", "documents", "indexing", "query", "relevance", "ranking", "corpus", "terms", "frequency", "categorization"},
	{"robotics", "navigation", "localization", "mapping", "sensors", "odometry", "obstacle", "avoidance", "path", "autonomous", "mobile", "control"},
	{"support", "vector", "machines", "kernel", "margin", "classification", "regularization", "dual", "convex", "hyperplane", "generalization", "risk"},
	{"case", "based", "reasoning", "retrieval", "adaptation", "memory", "instances", "analogical", "similarity", "indexing", "episodes", "explanation"},
	{"knowledge", "discovery", "databases", "mining", "association", "rules", "frequent", "itemsets", "patterns", "transactions", "support", "confidence"},
	{"agents", "multiagent", "coordination", "negotiation", "auctions", "game", "theory", "equilibrium", "strategies", "cooperation", "distributed", "protocols"},
}

// Paper generates the Cora-like citation workload: 997 records over 191
// entities, heavy duplication skew, dense candidate graph.
func Paper(seed int64) *Dataset {
	const (
		numRecords  = 997
		numEntities = 191
	)
	rng := rand.New(rand.NewSource(seed))
	nz := &noiser{rng: rng}
	sizes := entitySizes(rng, numEntities, numRecords, 0.9)

	type paperEntity struct {
		authors []string // tokens: first last first last ...
		title   []string
		venue   []string
		year    string
		topic   int
	}
	entities := make([]paperEntity, numEntities)
	for e := range entities {
		topic := rng.Intn(len(paperTopics))
		vocab := paperTopics[topic]
		nAuthors := 2 + rng.Intn(2)
		var authors []string
		for a := 0; a < nAuthors; a++ {
			authors = append(authors, nz.pick(firstNames), nz.pick(lastNames))
		}
		titleLen := 5 + rng.Intn(3)
		title := nz.pickK(vocab, titleLen)
		venue := record.Tokens(paperVenues[topic%len(paperVenues)])
		entities[e] = paperEntity{
			authors: authors,
			title:   title,
			venue:   venue,
			year:    fmt.Sprintf("%d", 1988+rng.Intn(12)),
			topic:   topic,
		}
	}

	d := &Dataset{Name: "Paper", NumEntities: numEntities}
	id := record.ID(0)
	for e, size := range sizes {
		ent := entities[e]
		for k := 0; k < size; k++ {
			// Citations of the same paper differ in formatting: author
			// first names abbreviated, venue truncated, title typos.
			authors := nz.corruptTokens(ent.authors, 0.08, 0.25, 0.10)
			title := nz.corruptTokens(ent.title, 0.10, 0.0, 0.08)
			venue := ent.venue
			if rng.Float64() < 0.35 {
				// Truncated venue ("Proc. ICML" style): keep a prefix.
				keep := 2 + rng.Intn(len(venue)-1)
				venue = venue[:keep]
			}
			fields := map[string]string{
				"authors": joinTokens(authors),
				"title":   joinTokens(title),
				"venue":   joinTokens(venue),
				"year":    ent.year,
			}
			r := record.New(id, fields)
			r.Entity = e
			d.Records = append(d.Records, r)
			id++
		}
	}
	return d
}

// ---------------------------------------------------------------------------
// Restaurant: Fodors/Zagat-like listings. Mostly singleton entities;
// duplicates are two near-identical listings of the same restaurant.

var (
	restaurantNameWords = []string{
		"golden", "dragon", "palace", "garden", "house", "grill", "kitchen",
		"cafe", "bistro", "corner", "royal", "little", "blue", "red", "star",
		"ocean", "harbor", "villa", "casa", "chez", "olive", "basil", "pepper",
		"ginger", "lotus",
	}
	restaurantStreets = []string{
		"main", "broadway", "sunset", "wilshire", "melrose", "market",
		"mission", "columbus", "grant", "madison", "park", "fifth", "beach",
		"hill", "oak",
	}
	restaurantCities = []string{
		"new york", "los angeles", "san francisco", "las vegas", "santa monica", "san diego",
	}
	restaurantCuisines = []string{
		"italian", "french", "chinese", "japanese", "mexican", "thai",
		"indian", "american", "seafood", "steakhouse", "korean", "greek",
	}
	streetSuffixes = []string{"st", "ave", "blvd", "rd", "dr"}
)

// Restaurant generates the Fodors/Zagat-like workload: 858 records over
// 752 entities (106 duplicated listings), sparse easy candidate graph.
func Restaurant(seed int64) *Dataset {
	const (
		numRecords  = 858
		numEntities = 752
	)
	rng := rand.New(rand.NewSource(seed))
	nz := &noiser{rng: rng}
	sizes := entitySizes(rng, numEntities, numRecords, 0)

	type restEntity struct {
		name    []string
		number  string
		street  string
		suffix  string
		city    string
		cuisine string
	}
	entities := make([]restEntity, numEntities)
	for e := range entities {
		nameLen := 2 + rng.Intn(2)
		entities[e] = restEntity{
			name:    nz.pickK(restaurantNameWords, nameLen),
			number:  fmt.Sprintf("%d", 10+rng.Intn(990)),
			street:  nz.pick(restaurantStreets),
			suffix:  nz.pick(streetSuffixes),
			city:    nz.pick(restaurantCities),
			cuisine: nz.pick(restaurantCuisines),
		}
	}

	d := &Dataset{Name: "Restaurant", NumEntities: numEntities}
	id := record.ID(0)
	for e, size := range sizes {
		ent := entities[e]
		for k := 0; k < size; k++ {
			name := ent.name
			street := ent.street
			suffix := ent.suffix
			if k > 0 {
				// The duplicate listing differs slightly: occasional typo
				// in the name, abbreviated or alternate street suffix.
				name = nz.corruptTokens(ent.name, 0.15, 0.0, 0.0)
				if rng.Float64() < 0.4 {
					suffix = nz.pick(streetSuffixes)
				}
				if rng.Float64() < 0.15 {
					street = nz.typo(street)
				}
			}
			fields := map[string]string{
				"name":    joinTokens(name),
				"address": ent.number + " " + street + " " + suffix,
				"city":    ent.city,
				"cuisine": ent.cuisine,
			}
			r := record.New(id, fields)
			r.Entity = e
			d.Records = append(d.Records, r)
			id++
		}
	}
	return d
}

// ---------------------------------------------------------------------------
// Product: Abt-Buy-like product names. Model numbers are distinctive
// tokens, so cross-entity similarity is low and the candidate set barely
// exceeds the duplicate set.

var (
	productBrands = []string{
		"sony", "samsung", "panasonic", "toshiba", "canon", "nikon", "apple",
		"dell", "hewlett", "packard", "lenovo", "asus", "acer", "logitech",
		"philips", "sharp", "sanyo", "jvc", "pioneer", "kenwood", "yamaha",
		"denon", "onkyo", "bose", "garmin", "tomtom", "motorola", "nokia",
		"siemens", "whirlpool", "frigidaire", "kitchenaid", "cuisinart",
		"hamilton", "oster", "braun", "norelco", "remington", "dyson", "hoover",
	}
	productCategories = [][]string{
		{"lcd", "tv", "television", "hdtv", "widescreen", "flat", "panel", "inch", "screen", "plasma", "resolution", "contrast", "hdmi", "tuner", "remote", "wall", "mountable", "progressive", "scan", "aspect", "ratio", "black", "speakers", "integrated"},
		{"digital", "camera", "zoom", "megapixel", "optical", "compact", "lens", "silver", "stabilization", "viewfinder", "flash", "slr", "shutter", "aperture", "burst", "mode", "face", "detection", "wide", "angle", "macro", "video", "memory", "card"},
		{"laptop", "notebook", "computer", "processor", "memory", "ghz", "gb", "display", "battery", "dual", "core", "hard", "drive", "graphics", "webcam", "widescreen", "keyboard", "windows", "wireless", "dvd", "burner", "fingerprint", "reader", "slim"},
		{"speaker", "audio", "stereo", "surround", "sound", "system", "home", "theater", "subwoofer", "channel", "receiver", "amplifier", "bookshelf", "tower", "satellite", "woofer", "tweeter", "dolby", "digital", "watts", "wireless", "dock", "bass", "remote"},
		{"vacuum", "cleaner", "bagless", "upright", "cyclone", "filter", "cordless", "handheld", "pet", "hepa", "canister", "brush", "attachment", "hose", "suction", "lightweight", "rechargeable", "stick", "carpet", "hardwood", "floor", "allergen", "dust", "bin"},
		{"printer", "inkjet", "laser", "wireless", "photo", "color", "scanner", "copier", "duplex", "fax", "multifunction", "cartridge", "ppm", "dpi", "ethernet", "usb", "borderless", "tray", "sheet", "feeder", "monochrome", "network", "compact", "office"},
		{"phone", "cordless", "handset", "answering", "machine", "bluetooth", "caller", "id", "expandable", "dect", "speakerphone", "keypad", "backlit", "voicemail", "conference", "mute", "redial", "wall", "mountable", "battery", "talk", "time", "range", "digital"},
		{"microwave", "oven", "countertop", "stainless", "steel", "watt", "convection", "grill", "compact", "turntable", "defrost", "sensor", "cooking", "preset", "timer", "child", "lock", "interior", "cubic", "feet", "power", "levels", "door", "handle"},
	}
)

// Product generates the Abt-Buy-like workload: 3073 records over 1076
// entities, very sparse candidate graph dominated by true duplicates.
func Product(seed int64) *Dataset {
	const (
		numRecords  = 3073
		numEntities = 1076
	)
	rng := rand.New(rand.NewSource(seed))
	nz := &noiser{rng: rng}
	sizes := entitySizes(rng, numEntities, numRecords, 0)

	type prodEntity struct {
		brand    string
		model    string
		attr     string
		category int
		descr    []string
	}
	entities := make([]prodEntity, numEntities)
	for e := range entities {
		cat := rng.Intn(len(productCategories))
		// Model numbers like "kdl40v2500": letters + digits, unique-ish.
		model := fmt.Sprintf("%c%c%d%c%d",
			'a'+rng.Intn(26), 'a'+rng.Intn(26), 10+rng.Intn(90),
			'a'+rng.Intn(26), 100+rng.Intn(9900))
		// A numeric attribute ("42in", "w1200"): shared by listings of
		// the same product, almost never across products.
		attr := fmt.Sprintf("%c%d", 'a'+rng.Intn(26), 100+rng.Intn(900))
		entities[e] = prodEntity{
			brand:    nz.pick(productBrands),
			model:    model,
			attr:     attr,
			category: cat,
			descr:    nz.pickK(productCategories[cat], 4+rng.Intn(3)),
		}
	}

	d := &Dataset{Name: "Product", NumEntities: numEntities}
	id := record.ID(0)
	for e, size := range sizes {
		ent := entities[e]
		for k := 0; k < size; k++ {
			descr := ent.descr
			model := ent.model
			if k > 0 {
				// Vendor listings describe the same product with fewer or
				// reworded descriptors and occasionally a typo'd model.
				descr = nz.corruptTokens(ent.descr, 0.10, 0.0, 0.15)
				if rng.Float64() < 0.10 {
					model = nz.typo(model)
				}
			}
			fields := map[string]string{
				"name": ent.brand + " " + joinTokens(descr) + " " + ent.attr + " " + model,
			}
			r := record.New(id, fields)
			r.Entity = e
			d.Records = append(d.Records, r)
			id++
		}
	}
	return d
}
