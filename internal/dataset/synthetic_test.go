package dataset

import (
	"testing"
)

func TestSyntheticBasics(t *testing.T) {
	d, err := Synthetic(SyntheticConfig{Entities: 50, Records: 160, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Records) != 160 || d.NumEntities != 50 {
		t.Fatalf("%d records / %d entities", len(d.Records), d.NumEntities)
	}
	seen := make([]bool, 50)
	for i, r := range d.Records {
		if int(r.ID) != i {
			t.Fatalf("IDs not dense")
		}
		if r.Entity < 0 || r.Entity >= 50 {
			t.Fatalf("entity %d out of range", r.Entity)
		}
		seen[r.Entity] = true
		if r.Text() == "" {
			t.Fatalf("record %d empty", i)
		}
	}
	for e, ok := range seen {
		if !ok {
			t.Errorf("entity %d empty", e)
		}
	}
}

func TestSyntheticValidation(t *testing.T) {
	cases := []SyntheticConfig{
		{Entities: 0, Records: 10},
		{Entities: 10, Records: 5},
		{Entities: 5, Records: 10, Noise: 0.95},
	}
	for i, cfg := range cases {
		if _, err := Synthetic(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestSyntheticDeterministicAndSkew(t *testing.T) {
	cfg := SyntheticConfig{Entities: 30, Records: 200, Skew: 1.2, Seed: 4}
	a, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Synthetic(cfg)
	for i := range a.Records {
		if a.Records[i].Text() != b.Records[i].Text() {
			t.Fatalf("not deterministic at %d", i)
		}
	}
	// Skew concentrates duplicates.
	bySize := map[int]int{}
	for _, r := range a.Records {
		bySize[r.Entity]++
	}
	max := 0
	for _, k := range bySize {
		if k > max {
			max = k
		}
	}
	flat, _ := Synthetic(SyntheticConfig{Entities: 30, Records: 200, Skew: 0, Seed: 4})
	bySizeFlat := map[int]int{}
	for _, r := range flat.Records {
		bySizeFlat[r.Entity]++
	}
	maxFlat := 0
	for _, k := range bySizeFlat {
		if k > maxFlat {
			maxFlat = k
		}
	}
	if max <= maxFlat {
		t.Errorf("skewed head %d not above flat head %d", max, maxFlat)
	}
}

// TestSyntheticDuplicatesSurvivePruning: duplicates of the same entity
// must stay similar enough to be candidates at the paper's τ = 0.3.
func TestSyntheticDuplicatesStaySimilar(t *testing.T) {
	d, err := Synthetic(SyntheticConfig{Entities: 40, Records: 120, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check within-entity token overlap via record text equality of
	// core tokens: every entity's records share most tokens.
	byEnt := map[int][]string{}
	for _, r := range d.Records {
		byEnt[r.Entity] = append(byEnt[r.Entity], r.Text())
	}
	low := 0
	for _, texts := range byEnt {
		for i := 1; i < len(texts); i++ {
			if jaccardText(texts[0], texts[i]) <= 0.3 {
				low++
			}
		}
	}
	dupPairs := d.DuplicatePairs()
	if low > dupPairs/10 {
		t.Errorf("%d of ~%d duplicate links below tau", low, dupPairs)
	}
}

func jaccardText(a, b string) float64 {
	sa := map[string]struct{}{}
	sb := map[string]struct{}{}
	for _, t := range splitWords(a) {
		sa[t] = struct{}{}
	}
	for _, t := range splitWords(b) {
		sb[t] = struct{}{}
	}
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

func splitWords(s string) []string {
	var out []string
	cur := ""
	for _, c := range s {
		if c == ' ' {
			if cur != "" {
				out = append(out, cur)
				cur = ""
			}
		} else {
			cur += string(c)
		}
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
