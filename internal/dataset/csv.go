package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"acd/internal/record"
)

// WriteCSV writes a dataset as CSV: the header row is "id,entity" plus
// the union of field names (sorted); each record follows. Entity is -1
// when unknown.
func WriteCSV(w io.Writer, d *Dataset) error {
	fieldSet := map[string]struct{}{}
	for _, r := range d.Records {
		for k := range r.Fields {
			fieldSet[k] = struct{}{}
		}
	}
	fields := make([]string, 0, len(fieldSet))
	for k := range fieldSet {
		fields = append(fields, k)
	}
	sort.Strings(fields)

	cw := csv.NewWriter(w)
	header := append([]string{"id", "entity"}, fields...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing header: %w", err)
	}
	for _, r := range d.Records {
		row := make([]string, 0, len(header))
		row = append(row, strconv.Itoa(int(r.ID)), strconv.Itoa(r.Entity))
		for _, f := range fields {
			row = append(row, r.Fields[f])
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: writing record %d: %w", r.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a dataset written by WriteCSV. Records are renumbered
// densely in file order; the original "id" column is ignored. Entity
// labels are preserved; a missing or non-numeric entity column value is
// an error. The dataset name is set by the caller.
func ReadCSV(r io.Reader, name string) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	if len(header) < 2 || header[0] != "id" || header[1] != "entity" {
		return nil, fmt.Errorf("dataset: header must start with id,entity; got %v", header)
	}
	fields := header[2:]
	d := &Dataset{Name: name}
	entities := map[int]struct{}{}
	for i := 0; ; i++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading row %d: %w", i, err)
		}
		entity, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("dataset: row %d: bad entity %q: %w", i, row[1], err)
		}
		fv := make(map[string]string, len(fields))
		for j, f := range fields {
			if v := row[2+j]; v != "" {
				fv[f] = v
			}
		}
		rec := record.New(record.ID(i), fv)
		rec.Entity = entity
		d.Records = append(d.Records, rec)
		if entity >= 0 {
			entities[entity] = struct{}{}
		}
	}
	d.NumEntities = len(entities)
	return d, nil
}
