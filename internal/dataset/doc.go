// Package dataset provides the three benchmark workloads of the paper's
// evaluation (Section 6.1): Paper (Cora citations [1]), Restaurant
// (Fodors/Zagat [2]), and Product (Abt-Buy [3]).
//
// The originals are external downloads unavailable offline, so this
// package generates synthetic stand-ins calibrated to Table 3: the
// record and entity counts match exactly, and the candidate-pair counts
// under the paper's pruning setting (Jaccard, τ = 0.3) match in scale
// (see EXPERIMENTS.md for measured values). Each generator reproduces
// the structural property that drives its original's behaviour:
//
//   - Paper: citations of related papers share venue strings and topic
//     vocabulary, so the candidate graph is dense (~30× more candidate
//     pairs than true duplicate pairs) and full of misleading pairs.
//   - Restaurant: mostly singleton entities; duplicates are near-exact
//     (Fodors vs Zagat listings), so candidates are sparse and easy.
//   - Product: distinctive model numbers keep cross-entity similarity
//     low; the candidate set is barely larger than the duplicate set.
//
// Synthetic builds arbitrary-size workloads beyond paper scale;
// ReadCSV/WriteCSV define the on-disk format the cmd/ tools exchange.
package dataset
