package dataset_test

import (
	"math"
	"testing"

	"acd/internal/crowd"
	"acd/internal/dataset"
	"acd/internal/pruning"
)

// TestCandidateCalibration checks that each generator's candidate set
// under the paper's pruning setting (Jaccard, τ = 0.3) lands within 35%
// of Table 3's candidate-pair count, and that nearly all true duplicate
// pairs survive pruning. The measured values are recorded in
// EXPERIMENTS.md.
func TestCandidateCalibration(t *testing.T) {
	for _, name := range []string{"Paper", "Restaurant", "Product"} {
		d, err := dataset.ByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		tgt, _ := dataset.Target(name)
		c := pruning.Prune(d.Records, pruning.Options{})
		ratio := float64(len(c.Pairs)) / float64(tgt.CandidatePairs)
		if ratio < 0.65 || ratio > 1.35 {
			t.Errorf("%s: %d candidate pairs, target %d (ratio %.2f)",
				name, len(c.Pairs), tgt.CandidatePairs, ratio)
		}
		truth := d.TruthFn()
		inS := 0
		for _, sp := range c.Pairs {
			if truth(sp.Pair) {
				inS++
			}
		}
		recallBound := float64(inS) / float64(d.DuplicatePairs())
		if recallBound < 0.9 {
			t.Errorf("%s: only %.0f%% of duplicate pairs survive pruning", name, 100*recallBound)
		}
	}
}

// TestCrowdCalibration builds answer sets for every dataset under both
// AMT settings and checks the measured majority-vote error rate against
// Table 3 within an absolute tolerance of 2.5 percentage points.
func TestCrowdCalibration(t *testing.T) {
	for _, name := range []string{"Paper", "Restaurant", "Product"} {
		d, err := dataset.ByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		tgt, _ := dataset.Target(name)
		c := pruning.Prune(d.Records, pruning.Options{})
		mix, _ := crowd.Calibrate(tgt.ErrorRate3W, tgt.ErrorRate5W)
		truth := d.TruthFn()
		diff := crowd.DifficultyAssignment(c.PairList(), c.Score, truth, mix)

		for _, cfg := range []crowd.Config{crowd.ThreeWorker(11), crowd.FiveWorker(11)} {
			answers := crowd.BuildAnswers(c.PairList(), truth, diff, cfg)
			want := tgt.ErrorRate3W
			if cfg.Workers == 5 {
				want = tgt.ErrorRate5W
			}
			got := answers.ErrorRate()
			if math.Abs(got-want) > 0.025 {
				t.Errorf("%s %dw: error rate %.3f, Table 3 says %.3f",
					name, cfg.Workers, got, want)
			}
		}
	}
}
