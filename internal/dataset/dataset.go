package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"acd/internal/record"
)

// Dataset is a set of records with ground-truth entity labels.
type Dataset struct {
	// Name identifies the workload ("Paper", "Restaurant", "Product").
	Name string
	// Records holds the records with dense IDs 0..len-1; each carries
	// its ground-truth Entity label.
	Records []record.Record
	// NumEntities is the number of distinct real-world entities.
	NumEntities int
}

// Truth returns the entity label of every record, indexed by record ID.
func (d *Dataset) Truth() []int {
	out := make([]int, len(d.Records))
	for i, r := range d.Records {
		out[i] = r.Entity
	}
	return out
}

// TruthFn returns a predicate reporting whether a pair is a true
// duplicate.
func (d *Dataset) TruthFn() func(record.Pair) bool {
	truth := d.Truth()
	return func(p record.Pair) bool { return truth[p.Lo] == truth[p.Hi] }
}

// DuplicatePairs returns the number of true duplicate pairs.
func (d *Dataset) DuplicatePairs() int {
	bySize := make(map[int]int)
	for _, r := range d.Records {
		bySize[r.Entity]++
	}
	total := 0
	for _, k := range bySize {
		total += k * (k - 1) / 2
	}
	return total
}

// Table3 records the characteristics the paper reports for each dataset
// (Table 3). Candidate-pair counts are properties of the original data;
// our generators target the same scale, not the exact figure.
type Table3 struct {
	Records        int
	Entities       int
	CandidatePairs int
	ErrorRate3W    float64
	ErrorRate5W    float64
}

// PaperTable3, RestaurantTable3 and ProductTable3 are the rows of
// Table 3.
var (
	PaperTable3      = Table3{Records: 997, Entities: 191, CandidatePairs: 29581, ErrorRate3W: 0.23, ErrorRate5W: 0.21}
	RestaurantTable3 = Table3{Records: 858, Entities: 752, CandidatePairs: 4788, ErrorRate3W: 0.008, ErrorRate5W: 0.002}
	ProductTable3    = Table3{Records: 3073, Entities: 1076, CandidatePairs: 3154, ErrorRate3W: 0.09, ErrorRate5W: 0.05}
)

// Target returns the Table 3 row for a dataset name, or false for
// unknown names.
func Target(name string) (Table3, bool) {
	switch name {
	case "Paper":
		return PaperTable3, true
	case "Restaurant":
		return RestaurantTable3, true
	case "Product":
		return ProductTable3, true
	default:
		return Table3{}, false
	}
}

// ByName generates the named dataset ("Paper", "Restaurant", "Product")
// with the given seed. It returns an error for unknown names.
func ByName(name string, seed int64) (*Dataset, error) {
	switch name {
	case "Paper":
		return Paper(seed), nil
	case "Restaurant":
		return Restaurant(seed), nil
	case "Product":
		return Product(seed), nil
	default:
		return nil, fmt.Errorf("dataset: unknown dataset %q", name)
	}
}

// entitySizes splits total records across n entities. The skew parameter
// picks the distribution: 0 gives near-uniform sizes, larger values give
// a heavier head (a few entities with many duplicates), matching Cora's
// shape. Sizes always sum to total, and every entity gets at least one
// record.
func entitySizes(rng *rand.Rand, entities, total int, skew float64) []int {
	weights := make([]float64, entities)
	sum := 0.0
	for i := range weights {
		w := 1.0
		if skew > 0 {
			// Zipf-like weight with random jitter so ties break
			// differently across seeds.
			w = 1.0 / math.Pow(float64(i+1), skew)
			w *= 0.5 + rng.Float64()
		}
		weights[i] = w
		sum += w
	}
	sizes := make([]int, entities)
	assigned := 0
	for i := range sizes {
		sizes[i] = 1
		assigned++
	}
	// Distribute the remaining records proportionally to weight via
	// largest-remainder.
	remaining := total - assigned
	if remaining < 0 {
		panic("dataset: more entities than records")
	}
	type frac struct {
		idx  int
		frac float64
	}
	extra := make([]int, entities)
	fr := make([]frac, entities)
	used := 0
	for i, w := range weights {
		exact := w / sum * float64(remaining)
		extra[i] = int(exact)
		used += extra[i]
		fr[i] = frac{idx: i, frac: exact - float64(extra[i])}
	}
	// Hand the leftovers to the largest fractional parts.
	for i := 0; i < len(fr); i++ {
		for j := i + 1; j < len(fr); j++ {
			if fr[j].frac > fr[i].frac {
				fr[i], fr[j] = fr[j], fr[i]
			}
		}
	}
	for i := 0; used < remaining; i++ {
		extra[fr[i%len(fr)].idx]++
		used++
	}
	for i := range sizes {
		sizes[i] += extra[i]
	}
	return sizes
}
