package dataset

import (
	"math/rand"
	"strings"
)

// noiser applies the corruption operations that make duplicate records of
// the same entity differ: typos, abbreviations, token drops, and token
// swaps. All operations are driven by the supplied RNG for determinism.
type noiser struct {
	rng *rand.Rand
}

// typo corrupts one character of w: delete, duplicate, substitute, or
// transpose, chosen uniformly. Words of length < 2 are returned
// unchanged.
func (n *noiser) typo(w string) string {
	if len(w) < 2 {
		return w
	}
	i := n.rng.Intn(len(w))
	switch n.rng.Intn(4) {
	case 0: // delete
		return w[:i] + w[i+1:]
	case 1: // duplicate
		return w[:i] + w[i:i+1] + w[i:]
	case 2: // substitute
		c := byte('a' + n.rng.Intn(26))
		return w[:i] + string(c) + w[i+1:]
	default: // transpose
		if i == len(w)-1 {
			i--
		}
		return w[:i] + w[i+1:i+2] + w[i:i+1] + w[i+2:]
	}
}

// abbreviate reduces a word to its initial ("john" -> "j").
func (n *noiser) abbreviate(w string) string {
	if len(w) == 0 {
		return w
	}
	return w[:1]
}

// corruptTokens applies per-token noise to a copy of tokens: each token
// independently suffers a typo with probability pTypo, abbreviation with
// probability pAbbrev, and deletion with probability pDrop. At least one
// token always survives.
func (n *noiser) corruptTokens(tokens []string, pTypo, pAbbrev, pDrop float64) []string {
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		r := n.rng.Float64()
		switch {
		case r < pDrop:
			continue
		case r < pDrop+pAbbrev:
			out = append(out, n.abbreviate(t))
		case r < pDrop+pAbbrev+pTypo:
			out = append(out, n.typo(t))
		default:
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		out = append(out, tokens[0])
	}
	return out
}

// pick returns a uniformly random element of pool.
func (n *noiser) pick(pool []string) string {
	return pool[n.rng.Intn(len(pool))]
}

// pickK returns k distinct elements of pool (k ≤ len(pool)), preserving a
// random order.
func (n *noiser) pickK(pool []string, k int) []string {
	idx := n.rng.Perm(len(pool))
	if k > len(pool) {
		k = len(pool)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = pool[idx[i]]
	}
	return out
}

func joinTokens(tokens []string) string { return strings.Join(tokens, " ") }
