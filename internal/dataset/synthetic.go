package dataset

import (
	"fmt"
	"math/rand"

	"acd/internal/record"
)

// SyntheticConfig parameterizes a generic synthetic workload, for users
// who want dedup benchmarks at scales or noise levels the three built-in
// datasets don't cover. The generator produces single-field records made
// of entity-specific core tokens plus shared background vocabulary, with
// configurable duplicate noise.
type SyntheticConfig struct {
	// Entities and Records set the universe size (Records ≥ Entities;
	// every entity receives at least one record).
	Entities int
	Records  int
	// Skew shapes the duplicate distribution: 0 spreads records evenly,
	// larger values concentrate duplicates on a heavy head (Cora-like).
	Skew float64
	// CoreTokens is the number of entity-identifying tokens per entity
	// (model numbers, names); more core tokens make entities easier to
	// tell apart. Default 4.
	CoreTokens int
	// SharedTokens is the number of tokens drawn from the shared
	// background vocabulary per record; more shared tokens densify the
	// candidate graph. Default 3.
	SharedTokens int
	// SharedVocabulary is the size of the background vocabulary; smaller
	// values mean more cross-entity collisions. Default 50.
	SharedVocabulary int
	// Noise is the per-token corruption probability applied to duplicate
	// records (split across typos and drops). Default 0.15.
	Noise float64
	// Seed drives generation.
	Seed int64
}

func (c SyntheticConfig) withDefaults() (SyntheticConfig, error) {
	if c.Entities <= 0 || c.Records < c.Entities {
		return c, fmt.Errorf("dataset: need Records ≥ Entities ≥ 1, got %d/%d", c.Records, c.Entities)
	}
	if c.CoreTokens == 0 {
		c.CoreTokens = 4
	}
	if c.SharedTokens == 0 {
		c.SharedTokens = 3
	}
	if c.SharedVocabulary == 0 {
		c.SharedVocabulary = 50
	}
	if c.Noise == 0 {
		c.Noise = 0.15
	}
	if c.Noise < 0 || c.Noise > 0.9 {
		return c, fmt.Errorf("dataset: Noise %v out of [0, 0.9]", c.Noise)
	}
	return c, nil
}

// Synthetic generates a workload from the config. Records get dense IDs
// and ground-truth entity labels.
func Synthetic(cfg SyntheticConfig) (*Dataset, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nz := &noiser{rng: rng}
	sizes := entitySizes(rng, cfg.Entities, cfg.Records, cfg.Skew)

	shared := make([]string, cfg.SharedVocabulary)
	for i := range shared {
		shared[i] = fmt.Sprintf("w%03d", i)
	}

	type entity struct {
		core   []string
		shared []string
	}
	entities := make([]entity, cfg.Entities)
	for e := range entities {
		core := make([]string, cfg.CoreTokens)
		for i := range core {
			core[i] = fmt.Sprintf("e%d t%d %c%d", e, i, 'a'+rng.Intn(26), rng.Intn(1000))
			core[i] = record.Normalize(core[i])
		}
		entities[e] = entity{
			core:   core,
			shared: nz.pickK(shared, cfg.SharedTokens),
		}
	}

	d := &Dataset{
		Name:        fmt.Sprintf("Synthetic(%d/%d)", cfg.Records, cfg.Entities),
		NumEntities: cfg.Entities,
	}
	id := record.ID(0)
	for e, size := range sizes {
		ent := entities[e]
		for k := 0; k < size; k++ {
			tokens := append([]string{}, ent.core...)
			tokens = append(tokens, ent.shared...)
			if k > 0 {
				tokens = nz.corruptTokens(tokens, cfg.Noise/2, 0, cfg.Noise/2)
			}
			r := record.New(id, map[string]string{"text": joinTokens(tokens)})
			r.Entity = e
			d.Records = append(d.Records, r)
			id++
		}
	}
	return d, nil
}
