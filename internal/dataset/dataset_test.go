package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"acd/internal/record"
)

func TestExactCounts(t *testing.T) {
	cases := []struct {
		name string
		gen  func(int64) *Dataset
	}{
		{"Paper", Paper},
		{"Restaurant", Restaurant},
		{"Product", Product},
	}
	for _, c := range cases {
		d := c.gen(1)
		tgt, ok := Target(c.name)
		if !ok {
			t.Fatalf("no target for %s", c.name)
		}
		if len(d.Records) != tgt.Records {
			t.Errorf("%s: %d records, want %d", c.name, len(d.Records), tgt.Records)
		}
		if d.NumEntities != tgt.Entities {
			t.Errorf("%s: %d entities, want %d", c.name, d.NumEntities, tgt.Entities)
		}
		// Every entity label in range, every entity non-empty.
		seen := make([]bool, d.NumEntities)
		for _, r := range d.Records {
			if r.Entity < 0 || r.Entity >= d.NumEntities {
				t.Fatalf("%s: record %d has entity %d out of range", c.name, r.ID, r.Entity)
			}
			seen[r.Entity] = true
		}
		for e, ok := range seen {
			if !ok {
				t.Errorf("%s: entity %d has no records", c.name, e)
			}
		}
		// Dense IDs in order.
		for i, r := range d.Records {
			if int(r.ID) != i {
				t.Fatalf("%s: record %d has ID %d", c.name, i, r.ID)
			}
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, b := Paper(7), Paper(7)
	for i := range a.Records {
		if a.Records[i].Text() != b.Records[i].Text() || a.Records[i].Entity != b.Records[i].Entity {
			t.Fatalf("generation not deterministic at record %d", i)
		}
	}
	c := Paper(8)
	diff := false
	for i := range a.Records {
		if a.Records[i].Text() != c.Records[i].Text() {
			diff = true
			break
		}
	}
	if !diff {
		t.Errorf("different seeds produced identical datasets")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Paper", "Restaurant", "Product"} {
		d, err := ByName(name, 3)
		if err != nil || d.Name != name {
			t.Errorf("ByName(%s) = %v, %v", name, d, err)
		}
	}
	if _, err := ByName("Nope", 3); err == nil {
		t.Errorf("unknown dataset accepted")
	}
}

func TestTruthAndDuplicatePairs(t *testing.T) {
	d := Restaurant(2)
	truth := d.Truth()
	if len(truth) != len(d.Records) {
		t.Fatalf("Truth length %d", len(truth))
	}
	fn := d.TruthFn()
	p := record.MakePair(0, 1)
	if fn(p) != (truth[0] == truth[1]) {
		t.Errorf("TruthFn inconsistent with Truth")
	}
	// Restaurant: 858 records, 752 entities, sizes near-uniform →
	// 106 duplicate pairs.
	if got := d.DuplicatePairs(); got != 106 {
		t.Errorf("Restaurant duplicate pairs = %d, want 106", got)
	}
}

func TestEntitySizes(t *testing.T) {
	for _, skew := range []float64{0, 0.9} {
		sizes := entitySizes(newTestRNG(), 100, 450, skew)
		if len(sizes) != 100 {
			t.Fatalf("len = %d", len(sizes))
		}
		sum := 0
		for _, s := range sizes {
			if s < 1 {
				t.Fatalf("entity with %d records", s)
			}
			sum += s
		}
		if sum != 450 {
			t.Errorf("skew %v: sizes sum to %d, want 450", skew, sum)
		}
	}
	// Skewed distribution must produce a heavier head than uniform.
	uni := entitySizes(newTestRNG(), 50, 500, 0)
	skewed := entitySizes(newTestRNG(), 50, 500, 1.2)
	maxOf := func(xs []int) int {
		m := 0
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	if maxOf(skewed) <= maxOf(uni) {
		t.Errorf("skewed max %d not above uniform max %d", maxOf(skewed), maxOf(uni))
	}
}

func TestSkewedPaperHead(t *testing.T) {
	d := Paper(1)
	bySize := map[int]int{}
	for _, r := range d.Records {
		bySize[r.Entity]++
	}
	max := 0
	for _, k := range bySize {
		if k > max {
			max = k
		}
	}
	// Cora-like: the head entity should hold a sizable share of records.
	if max < 15 {
		t.Errorf("head entity has only %d records; expected heavy skew", max)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := Restaurant(5)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf, "Restaurant")
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(got.Records) != len(d.Records) || got.NumEntities != d.NumEntities {
		t.Fatalf("round trip: %d records %d entities", len(got.Records), got.NumEntities)
	}
	for i := range d.Records {
		if got.Records[i].Text() != d.Records[i].Text() {
			t.Errorf("record %d text changed: %q -> %q", i, d.Records[i].Text(), got.Records[i].Text())
		}
		if got.Records[i].Entity != d.Records[i].Entity {
			t.Errorf("record %d entity changed", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("nope,header\n"), "x"); err == nil {
		t.Errorf("bad header accepted")
	}
	if _, err := ReadCSV(strings.NewReader("id,entity\n0,notanumber\n"), "x"); err == nil {
		t.Errorf("bad entity accepted")
	}
	if _, err := ReadCSV(strings.NewReader(""), "x"); err == nil {
		t.Errorf("empty input accepted")
	}
}

func TestNoiser(t *testing.T) {
	n := &noiser{rng: newTestRNG()}
	// typo changes length by at most 1 and never panics on short words.
	for _, w := range []string{"a", "ab", "abcdef"} {
		for i := 0; i < 50; i++ {
			got := n.typo(w)
			if math.Abs(float64(len(got)-len(w))) > 1 {
				t.Fatalf("typo(%q) = %q", w, got)
			}
		}
	}
	if n.abbreviate("john") != "j" || n.abbreviate("") != "" {
		t.Errorf("abbreviate wrong")
	}
	// corruptTokens never returns empty output.
	for i := 0; i < 50; i++ {
		out := n.corruptTokens([]string{"only"}, 0, 0, 1)
		if len(out) == 0 {
			t.Fatalf("corruptTokens emptied the token list")
		}
	}
	// pickK returns distinct elements.
	pool := []string{"a", "b", "c", "d"}
	got := n.pickK(pool, 3)
	if len(got) != 3 {
		t.Fatalf("pickK returned %v", got)
	}
	seen := map[string]bool{}
	for _, g := range got {
		if seen[g] {
			t.Fatalf("pickK duplicated %q", g)
		}
		seen[g] = true
	}
	if len(n.pickK(pool, 10)) != len(pool) {
		t.Errorf("pickK should clamp k to pool size")
	}
}

func newTestRNG() *rand.Rand { return rand.New(rand.NewSource(99)) }
