package baselines

import (
	"sort"

	"acd/internal/cluster"
	"acd/internal/crowd"
	"acd/internal/machine"
	"acd/internal/pruning"
	"acd/internal/record"
	"acd/internal/unionfind"
)

// Result is a baseline run's clustering plus its crowdsourcing
// accounting.
type Result struct {
	Clusters *cluster.Clustering
	Stats    crowd.Stats
}

// transMMaxBatch bounds the pairs TransM issues per crowd round.
const transMMaxBatch = 100

// CrowdERPlus implements CrowdER+ as in Section 6.1: it crowdsources
// every candidate pair in a single batch (one crowd iteration) and then
// clusters the answers with a machine algorithm. The paper uses [48]'s
// sorted-neighborhood step whose pseudo-code is not given; we use
// average-linkage agglomerative clustering over the complete crowd
// scores, which reproduces the reported behaviour — the highest accuracy
// of all methods at the full |S| crowdsourcing cost (see DESIGN.md,
// substitution 3).
func CrowdERPlus(cands *pruning.Candidates, answers crowd.Source) Result {
	sess := crowd.NewSession(answers)
	pairs := cands.PairList()
	fc := sess.Ask(pairs)
	scores := make(cluster.Scores, len(pairs))
	for i, p := range pairs {
		scores[p] = fc[i]
	}
	c := machine.Agglomerative(cands.N, scores, 0.5)
	return Result{Clusters: c, Stats: sess.Stats()}
}

// Naive implements the brute-force approach from the paper's
// introduction: crowdsource every candidate pair (after pruning — the
// truly naive variant would ask all O(n²) pairs) and cluster by
// transitive closure of the positive answers. It pays CrowdER+'s full
// cost while inheriting the error amplification of Figure 1: one
// erroneous "duplicate" bridges two entities irrevocably.
func Naive(cands *pruning.Candidates, answers crowd.Source) Result {
	sess := crowd.NewSession(answers)
	pairs := cands.PairList()
	fc := sess.Ask(pairs)
	scores := make(cluster.Scores, len(pairs))
	for i, p := range pairs {
		scores[p] = fc[i]
	}
	c := machine.Components(cands.N, scores, 0.5)
	return Result{Clusters: c, Stats: sess.Stats()}
}

// TransM implements the transitivity-based method of [47]: candidate
// pairs are examined in decreasing machine-similarity order; a pair whose
// answer is already implied by the positive (duplicate) or negative
// (distinct-cluster) transitive closure of earlier answers is skipped,
// and everything else is crowdsourced. Batching follows [47]'s
// expectation-based strategy: within one batch, the algorithm simulates
// the closure that would result if every batched pair were answered the
// way its machine score predicts (f > 0.5 ⇒ duplicate), and defers any
// pair whose answer that simulated closure already implies. When the
// crowd answers as predicted, the batch resolves exactly what the
// sequential algorithm would have; mispredictions only cost extra
// questions in later batches. The inspection order — and with it TransM's
// error amplification on misleading high-similarity pairs (Figure 1) —
// is preserved. Each round issues at most transMMaxBatch pairs, modeling
// the bounded number of HITs a requester keeps open concurrently.
func TransM(cands *pruning.Candidates, answers crowd.Source) Result {
	sess := crowd.NewSession(answers)
	tc := newTransClosure(cands.N)

	remaining := cands.PairList() // already in descending machine score
	for len(remaining) > 0 {
		expected := tc.clone()
		var batch []record.Pair
		var next []record.Pair
		for i, p := range remaining {
			if len(batch) == transMMaxBatch {
				next = append(next, remaining[i:]...)
				break
			}
			if tc.decided(p) {
				continue
			}
			if expected.decided(p) {
				next = append(next, p)
				continue
			}
			batch = append(batch, p)
			if cands.Score(p) > 0.5 {
				expected.markSame(p)
			} else {
				expected.markDifferent(p)
			}
		}
		if len(batch) == 0 {
			break
		}
		fc := sess.Ask(batch)
		for i, p := range batch {
			if fc[i] > 0.5 {
				tc.markSame(p)
			} else {
				tc.markDifferent(p)
			}
		}
		remaining = next
	}

	var sets [][]record.ID
	for _, s := range tc.uf.Sets() {
		ids := make([]record.ID, len(s))
		for i, v := range s {
			ids[i] = record.ID(v)
		}
		sets = append(sets, ids)
	}
	c := setsToClustering(cands.N, sets)
	return Result{Clusters: c, Stats: sess.Stats()}
}

// transClosure maintains TransM's positive closure (union-find over
// crowd-confirmed duplicates) and negative closure (pairs of cluster
// roots the crowd marked distinct).
type transClosure struct {
	uf   *unionfind.UF
	diff map[int]map[int]struct{} // root -> set of roots known different
}

func newTransClosure(n int) *transClosure {
	return &transClosure{uf: unionfind.New(n), diff: make(map[int]map[int]struct{})}
}

func (t *transClosure) clone() *transClosure {
	cp := &transClosure{uf: t.uf.Clone(), diff: make(map[int]map[int]struct{}, len(t.diff))}
	for k, v := range t.diff {
		m := make(map[int]struct{}, len(v))
		for d := range v {
			m[d] = struct{}{}
		}
		cp.diff[k] = m
	}
	return cp
}

func (t *transClosure) decided(p record.Pair) bool {
	ra, rb := t.uf.Find(int(p.Lo)), t.uf.Find(int(p.Hi))
	if ra == rb {
		return true
	}
	_, d := t.diff[ra][rb]
	return d
}

func (t *transClosure) markSame(p record.Pair) {
	ra, rb := t.uf.Find(int(p.Lo)), t.uf.Find(int(p.Hi))
	if ra == rb {
		return
	}
	t.uf.Union(ra, rb)
	root := t.uf.Find(ra)
	other := ra
	if root == ra {
		other = rb
	}
	// Fold `other`'s difference set into the surviving root's. A
	// contradictory answer (crowd merging two clusters earlier marked
	// different) can make `root` appear in that set; the union wins and
	// the stale difference edge is dropped.
	for d := range t.diff[other] {
		delete(t.diff[d], other)
		if d != root {
			t.link(root, d)
		}
	}
	delete(t.diff, other)
}

func (t *transClosure) markDifferent(p record.Pair) {
	ra, rb := t.uf.Find(int(p.Lo)), t.uf.Find(int(p.Hi))
	if ra == rb {
		return
	}
	t.link(ra, rb)
}

func (t *transClosure) link(a, b int) {
	if a == b {
		return
	}
	if t.diff[a] == nil {
		t.diff[a] = make(map[int]struct{})
	}
	if t.diff[b] == nil {
		t.diff[b] = make(map[int]struct{})
	}
	t.diff[a][b] = struct{}{}
	t.diff[b][a] = struct{}{}
}

// TransNode implements the node-based framework of [44]: records are
// inserted one at a time; each new record is compared against the
// already-formed clusters it has candidate edges to, in decreasing order
// of its best machine similarity into the cluster, joining the first
// cluster whose probe the crowd confirms. Transitivity answers the rest
// of the cluster for free. TransNode issues probes individually — the
// paper notes it "does not incorporate any parallel mechanism" and omits
// it from the iteration plots.
func TransNode(cands *pruning.Candidates, answers crowd.Source) Result {
	sess := crowd.NewSession(answers)

	// Candidate adjacency with machine scores.
	adj := make(map[record.ID][]record.ID)
	for _, sp := range cands.Pairs {
		adj[sp.Pair.Lo] = append(adj[sp.Pair.Lo], sp.Pair.Hi)
		adj[sp.Pair.Hi] = append(adj[sp.Pair.Hi], sp.Pair.Lo)
	}

	assign := make([]int, cands.N) // record -> cluster id
	for i := range assign {
		assign[i] = -1
	}
	var clusters [][]record.ID

	for r := record.ID(0); int(r) < cands.N; r++ {
		// Rank the clusters of r's already-inserted neighbors by the
		// best machine similarity edge into them.
		type cand struct {
			cluster int
			best    float64
			probe   record.ID
		}
		byCluster := make(map[int]*cand)
		for _, nb := range adj[r] {
			cl := assign[nb]
			if cl == -1 {
				continue
			}
			f := cands.Score(record.MakePair(r, nb))
			if c, ok := byCluster[cl]; !ok || f > c.best {
				byCluster[cl] = &cand{cluster: cl, best: f, probe: nb}
			}
		}
		ranked := make([]*cand, 0, len(byCluster))
		for _, c := range byCluster {
			ranked = append(ranked, c)
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].best != ranked[j].best {
				return ranked[i].best > ranked[j].best
			}
			return ranked[i].cluster < ranked[j].cluster
		})

		joined := -1
		for _, c := range ranked {
			if sess.AskOne(record.MakePair(r, c.probe)) > 0.5 {
				joined = c.cluster
				break
			}
		}
		if joined == -1 {
			joined = len(clusters)
			clusters = append(clusters, nil)
		}
		assign[r] = joined
		clusters[joined] = append(clusters[joined], r)
	}
	c := setsToClustering(cands.N, clusters)
	return Result{Clusters: c, Stats: sess.Stats()}
}

// GCER implements the question-selection approach of [48] under a fixed
// crowdsourcing budget (the paper matches it to the number of pairs ACD
// crowdsources, Section 6.1). It iteratively crowdsources the most
// uncertain candidate pairs — those whose current estimated crowd score
// is closest to 0.5 — refining the machine-to-crowd histogram after every
// batch, and finally clusters with the combined scores (exact crowd
// scores where known, histogram-adjusted machine scores elsewhere).
// Because the crowd's answers directly retrain the estimator, crowd
// errors propagate into unasked pairs — the weakness Section 2.2
// describes.
func GCER(cands *pruning.Candidates, answers crowd.Source, budget, batches int) Result {
	if batches < 1 {
		batches = 1
	}
	sess := crowd.NewSession(answers)
	est := newEstimator(cands, sess)

	for b := 0; b < batches; b++ {
		left := budget - sess.Stats().Pairs
		if left <= 0 {
			break
		}
		size := (budget + batches - 1) / batches
		if size > left {
			size = left
		}
		batch := est.mostUncertain(size)
		if len(batch) == 0 {
			break
		}
		sess.Ask(batch)
		est.refresh()
	}

	scores := make(cluster.Scores, len(cands.Pairs))
	for _, sp := range cands.Pairs {
		scores[sp.Pair] = est.score(sp.Pair)
	}
	c := machine.Agglomerative(cands.N, scores, 0.5)
	return Result{Clusters: c, Stats: sess.Stats()}
}

// setsToClustering converts member sets over 0..n-1 to a Clustering,
// adding singletons for any record not covered.
func setsToClustering(n int, sets [][]record.ID) *cluster.Clustering {
	covered := make([]bool, n)
	var all [][]record.ID
	for _, s := range sets {
		if len(s) == 0 {
			continue
		}
		for _, r := range s {
			covered[r] = true
		}
		all = append(all, s)
	}
	for i := 0; i < n; i++ {
		if !covered[i] {
			all = append(all, []record.ID{record.ID(i)})
		}
	}
	c, err := cluster.FromSets(n, all)
	if err != nil {
		panic("baselines: non-partition: " + err.Error())
	}
	return c
}
