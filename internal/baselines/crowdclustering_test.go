package baselines

import (
	"testing"

	"acd/internal/cluster"
	"acd/internal/crowd"
	"acd/internal/dataset"
	"acd/internal/pruning"
	"acd/internal/record"
)

func TestCrowdclusteringRuns(t *testing.T) {
	d, cands, answers := perfectRestaurant(t)
	res := Crowdclustering(cands, answers, 20, 10, 1)
	// Valid partition.
	seen := map[record.ID]bool{}
	total := 0
	for _, s := range res.Clusters.Sets() {
		for _, r := range s {
			if seen[r] {
				t.Fatalf("record %d duplicated", r)
			}
			seen[r] = true
			total++
		}
	}
	if total != cands.N {
		t.Fatalf("covered %d of %d", total, cands.N)
	}
	// One crowd iteration per subset at most.
	if res.Stats.Iterations > 20 {
		t.Errorf("iterations = %d with 20 subsets", res.Stats.Iterations)
	}
	_ = d
}

// TestCrowdclusteringUnderperforms reproduces Section 2.2's critique: on
// a dataset where entities have few duplicates (Restaurant), small
// random subsets contain almost no duplicate pairs, so the generalized
// clustering is much worse than CrowdER+ on the same answers.
func TestCrowdclusteringUnderperforms(t *testing.T) {
	d := dataset.Restaurant(6)
	cands := pruning.Prune(d.Records, pruning.Options{})
	answers := crowd.BuildAnswers(cands.PairList(), d.TruthFn(), crowd.UniformDifficulty(0.02), crowd.ThreeWorker(2))

	cc := Crowdclustering(cands, answers, 20, 10, 1)
	ce := CrowdERPlus(cands, answers)
	ccF1 := cluster.Evaluate(cc.Clusters, d.Truth()).F1
	ceF1 := cluster.Evaluate(ce.Clusters, d.Truth()).F1
	if ccF1 >= ceF1 {
		t.Errorf("Crowdclustering (%.3f) should trail CrowdER+ (%.3f) on sparse duplicates", ccF1, ceF1)
	}
}

func TestLearnThreshold(t *testing.T) {
	// Clean separation at 0.6.
	obs := []labeledPair{
		{0.2, false}, {0.3, false}, {0.5, false},
		{0.7, true}, {0.8, true}, {0.9, true},
	}
	th := learnThreshold(obs)
	if th <= 0.5 || th > 0.7 {
		t.Errorf("threshold = %v, want in (0.5, 0.7]", th)
	}
	// No observations or no positives: fall back to 0.5.
	if learnThreshold(nil) != 0.5 {
		t.Errorf("empty fallback wrong")
	}
	if learnThreshold([]labeledPair{{0.9, false}}) != 0.5 {
		t.Errorf("no-positive fallback wrong")
	}
}
