package baselines

import (
	"math"
	"sort"

	"acd/internal/crowd"
	"acd/internal/histogram"
	"acd/internal/pruning"
	"acd/internal/record"
)

// estimator is GCER's evolving crowd-score model: exact crowd scores for
// asked pairs, histogram-mapped machine scores for the rest. With no
// crowd data yet, the histogram is the identity, so scores start as the
// raw machine similarities (the "straightforward solution" of
// Section 5.2).
type estimator struct {
	cands *pruning.Candidates
	sess  *crowd.Session
	hist  *histogram.Histogram
}

func newEstimator(cands *pruning.Candidates, sess *crowd.Session) *estimator {
	e := &estimator{cands: cands, sess: sess}
	e.refresh()
	return e
}

// refresh rebuilds the histogram from everything crowdsourced so far.
func (e *estimator) refresh() {
	// First-crowdsourced order keeps the equi-depth bucketing of tied
	// machine scores reproducible; ranging over the known map would not.
	known := e.sess.KnownOrdered()
	samples := make([]histogram.Sample, 0, len(known))
	for _, p := range known {
		fc, _ := e.sess.Known(p)
		samples = append(samples, histogram.Sample{Machine: e.cands.Score(p), Crowd: fc})
	}
	e.hist = histogram.Build(samples, histogram.DefaultBuckets)
}

// score returns the current best estimate of a candidate pair's crowd
// score.
func (e *estimator) score(p record.Pair) float64 {
	if fc, ok := e.sess.Known(p); ok {
		return fc
	}
	return e.hist.Estimate(e.cands.Score(p))
}

// mostUncertain returns up to k unasked candidate pairs whose estimated
// score is closest to the 0.5 decision boundary, ties broken by pair
// order for determinism.
func (e *estimator) mostUncertain(k int) []record.Pair {
	type scored struct {
		p record.Pair
		u float64 // |estimate − 0.5|: smaller is more uncertain
	}
	var all []scored
	for _, sp := range e.cands.Pairs {
		if _, known := e.sess.Known(sp.Pair); known {
			continue
		}
		all = append(all, scored{p: sp.Pair, u: math.Abs(e.score(sp.Pair) - 0.5)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].u != all[j].u {
			return all[i].u < all[j].u
		}
		if all[i].p.Lo != all[j].p.Lo {
			return all[i].p.Lo < all[j].p.Lo
		}
		return all[i].p.Hi < all[j].p.Hi
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]record.Pair, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].p
	}
	return out
}
