// Package baselines implements the four state-of-the-art competitors the
// paper evaluates ACD against (Section 6.1): CrowdER+ [46]+[48],
// TransM [47], TransNode [44], and GCER [48]. Each baseline shares the
// pruning phase's candidate set and reads crowd answers from the same
// answer set as ACD, mirroring the paper's fairness setup.
//
// Paper artifacts:
//
//   - CrowdERPlus — CrowdER [46] with the answer-clustering step of [48]
//     (one crowd iteration over all candidates, then agglomerative
//     clustering of the answers); the accuracy yardstick of Figure 6.
//   - TransM — transitivity-based labeling [47]: issue pairs in
//     descending machine-score order, inferring what transitivity
//     implies; the pair-count yardstick of Figure 7.
//   - TransNode — the node-parallel transitive strategy of [44].
//   - GCER — the graph-based crowdsourced entity resolution of [48].
//   - Naive and Crowdclustering — the extra reference points (ask
//     everything; crowd-clustered subsets) used by the ablations.
//

// Every baseline draws its answers through a crowd.Session, so the
// crowd/* metrics and the oracle-invocation invariant (see
// internal/crowd) hold for baseline runs too.
package baselines
