package baselines

import (
	"math/rand"
	"sort"

	"acd/internal/cluster"
	"acd/internal/crowd"
	"acd/internal/machine"
	"acd/internal/pruning"
	"acd/internal/record"
)

// Crowdclustering implements the fifth crowd-based method the paper
// reviews (Section 2.2, [25]). The paper excludes it from the
// experimental figures because it targets data categorization rather
// than deduplication; it is implemented here for completeness, with
// exactly the failure mode Section 2.2 describes.
//
// The method: (1) draw `subsets` random subsets of `subsetSize` records;
// (2) have crowd workers cluster each subset (simulated by majority
// votes on the subset's candidate pairs plus transitive closure —
// workers see the whole subset at once, so their partition is
// internally consistent); (3) generalize: learn the machine-similarity
// threshold that best agrees with the crowd's within-subset decisions,
// then cluster all of R by average-linkage at that threshold.
//
// When entities have few duplicates (Restaurant, Product), random
// subsets contain almost no duplicate pairs, the learned threshold is
// fit to noise, and accuracy collapses — the paper's critique.
func Crowdclustering(cands *pruning.Candidates, answers crowd.Source, subsets, subsetSize int, seed int64) Result {
	sess := crowd.NewSession(answers)
	rng := rand.New(rand.NewSource(seed))
	n := cands.N

	// Step 1-2: crowd-cluster each subset; collect labeled pairs
	// (machine score, crowd duplicate decision).
	var observations []labeledPair
	for s := 0; s < subsets; s++ {
		size := subsetSize
		if size > n {
			size = n
		}
		perm := rng.Perm(n)[:size]
		members := make([]record.ID, size)
		for i, v := range perm {
			members[i] = record.ID(v)
		}
		// The subset's candidate pairs go to the crowd in one batch (one
		// clustering HIT).
		var pairs []record.Pair
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				p := record.MakePair(members[i], members[j])
				if cands.Contains(p) {
					pairs = append(pairs, p)
				}
			}
		}
		fc := sess.Ask(pairs)
		positive := cluster.Scores{}
		for i, p := range pairs {
			positive[p] = fc[i]
		}
		// The worker's subset partition: transitive closure of the
		// positive answers (a worker physically groups the records).
		part := machine.Components(n, positive, 0.5)
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				p := record.MakePair(members[i], members[j])
				observations = append(observations, labeledPair{
					f:   cands.Score(p),
					dup: part.Same(p.Lo, p.Hi),
				})
			}
		}
	}

	// Step 3: learn the threshold minimizing disagreement with the
	// observations, scanning candidate thresholds at observation scores.
	threshold := learnThreshold(observations)
	c := machine.Agglomerative(n, cands.Machine, threshold)
	return Result{Clusters: c, Stats: sess.Stats()}
}

// labeledPair is one within-subset observation: a pair's machine score
// and the crowd's duplicate decision for it.
type labeledPair struct {
	f   float64
	dup bool
}

// learnThreshold returns the machine-score cutoff that minimizes
// classification disagreement with the labeled pairs; with no
// observations (or none positive) it falls back to 0.5.
func learnThreshold(obs []labeledPair) float64 {
	if len(obs) == 0 {
		return 0.5
	}
	sort.Slice(obs, func(i, j int) bool { return obs[i].f < obs[j].f })
	totalDup := 0
	for _, o := range obs {
		if o.dup {
			totalDup++
		}
	}
	if totalDup == 0 {
		return 0.5
	}
	// Sweeping the cutoff from above all scores downward: errors =
	// duplicates below cutoff + non-duplicates at/above cutoff.
	bestErrors := totalDup // cutoff above everything: all dups misclassified
	best := 1.0
	dupBelow, nonAbove := totalDup, 0
	for i := len(obs) - 1; i >= 0; i-- {
		if obs[i].dup {
			dupBelow--
		} else {
			nonAbove++
		}
		if errors := dupBelow + nonAbove; errors < bestErrors {
			bestErrors = errors
			// The cutoff sits just below obs[i].f.
			best = obs[i].f - 1e-9
		}
	}
	if best < 0 {
		best = 0
	}
	return best
}
