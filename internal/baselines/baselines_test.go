package baselines

import (
	"testing"

	"acd/internal/cluster"
	"acd/internal/crowd"
	"acd/internal/dataset"
	"acd/internal/pruning"
	"acd/internal/record"
)

// fixedInstance builds a candidate set with machine scores and a fixed
// answer set.
func fixedInstance(n int, machine map[record.Pair]float64, fc map[record.Pair]float64) (*pruning.Candidates, *crowd.AnswerSet) {
	ms := cluster.Scores{}
	for p, f := range machine {
		ms[p] = f
	}
	return pruning.FromScores(n, ms, 0.3), crowd.FixedAnswers(fc, crowd.Config{})
}

func perfectRestaurant(t *testing.T) (*dataset.Dataset, *pruning.Candidates, *crowd.AnswerSet) {
	t.Helper()
	d := dataset.Restaurant(4)
	cands := pruning.Prune(d.Records, pruning.Options{})
	answers := crowd.BuildAnswers(cands.PairList(), d.TruthFn(), crowd.UniformDifficulty(0), crowd.ThreeWorker(1))
	return d, cands, answers
}

func TestCrowdERPlusPerfectCrowd(t *testing.T) {
	d, cands, answers := perfectRestaurant(t)
	res := CrowdERPlus(cands, answers)
	e := cluster.Evaluate(res.Clusters, d.Truth())
	if e.Precision < 1 || e.Recall < 0.95 {
		t.Errorf("CrowdER+ perfect-crowd scores: %+v", e)
	}
	// Exactly one crowd iteration over all of S.
	if res.Stats.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", res.Stats.Iterations)
	}
	if res.Stats.Pairs != len(cands.Pairs) {
		t.Errorf("pairs = %d, want |S| = %d", res.Stats.Pairs, len(cands.Pairs))
	}
}

func TestTransMPerfectCrowd(t *testing.T) {
	d, cands, answers := perfectRestaurant(t)
	res := TransM(cands, answers)
	e := cluster.Evaluate(res.Clusters, d.Truth())
	if e.Precision < 1 || e.Recall < 0.95 {
		t.Errorf("TransM perfect-crowd scores: %+v", e)
	}
	if res.Stats.Pairs > len(cands.Pairs) {
		t.Errorf("TransM issued more than |S| pairs")
	}
}

// TestTransMTransitivitySavings: with perfect answers on a clique of
// duplicates, TransM asks only a spanning set, not all pairs.
func TestTransMTransitivitySavings(t *testing.T) {
	// 4 records, one entity, all 6 pairs candidates, crowd says yes to
	// everything.
	machine := map[record.Pair]float64{}
	fc := map[record.Pair]float64{}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			p := record.MakePair(record.ID(i), record.ID(j))
			machine[p] = 0.9
			fc[p] = 1.0
		}
	}
	cands, answers := fixedInstance(4, machine, fc)
	res := TransM(cands, answers)
	if res.Stats.Pairs != 3 {
		t.Errorf("TransM asked %d pairs on a 4-clique, want 3 (spanning tree)", res.Stats.Pairs)
	}
	if res.Clusters.NumClusters() != 1 {
		t.Errorf("clique not merged: %v", res.Clusters.Sets())
	}
	// Negative transitivity: two cliques with cross pairs; once one
	// cross pair is answered no, the rest are inferred.
	machine2 := map[record.Pair]float64{}
	fc2 := map[record.Pair]float64{}
	add := func(a, b record.ID, m, f float64) {
		p := record.MakePair(a, b)
		machine2[p] = m
		fc2[p] = f
	}
	add(0, 1, 0.95, 1)
	add(2, 3, 0.94, 1)
	add(0, 2, 0.8, 0)
	add(0, 3, 0.7, 0)
	add(1, 2, 0.6, 0)
	add(1, 3, 0.5, 0)
	cands2, answers2 := fixedInstance(4, machine2, fc2)
	res2 := TransM(cands2, answers2)
	// 2 positive pairs + 1 cross question; the other 3 cross pairs are
	// inferred different.
	if res2.Stats.Pairs != 3 {
		t.Errorf("TransM asked %d pairs, want 3 with negative inference", res2.Stats.Pairs)
	}
	want := cluster.MustFromSets(4, [][]record.ID{{0, 1}, {2, 3}})
	if !cluster.Equal(res2.Clusters, want) {
		t.Errorf("clusters = %v", res2.Clusters.Sets())
	}
}

// TestTransMErrorAmplification reproduces Figure 1: two clean groups plus
// one erroneous cross answer collapse into one cluster under TransM,
// while CrowdER+ (average linkage over all answers) keeps them apart.
func TestTransMErrorAmplification(t *testing.T) {
	machine := map[record.Pair]float64{}
	fc := map[record.Pair]float64{}
	add := func(a, b record.ID, m, f float64) {
		p := record.MakePair(a, b)
		machine[p] = m
		fc[p] = f
	}
	// Group {0,1,2} and group {3,4,5}, all within-group answers perfect.
	add(0, 1, 0.95, 1)
	add(1, 2, 0.94, 1)
	add(0, 2, 0.93, 1)
	add(3, 4, 0.92, 1)
	add(4, 5, 0.91, 1)
	add(3, 5, 0.90, 1)
	// Cross pairs: the highest-ranked one gets an erroneous "yes".
	add(2, 3, 0.85, 1) // crowd error!
	add(0, 3, 0.4, 0)
	add(1, 4, 0.4, 0)
	add(2, 5, 0.4, 0)

	cands, answers := fixedInstance(6, machine, fc)
	res := TransM(cands, answers)
	if res.Clusters.NumClusters() != 1 {
		t.Errorf("TransM should amplify the single error into one big cluster, got %v",
			res.Clusters.Sets())
	}

	res2 := CrowdERPlus(cands, answers)
	want := cluster.MustFromSets(6, [][]record.ID{{0, 1, 2}, {3, 4, 5}})
	if !cluster.Equal(res2.Clusters, want) {
		t.Errorf("CrowdER+ should resist the single error, got %v", res2.Clusters.Sets())
	}
}

func TestTransNodePerfectCrowd(t *testing.T) {
	d, cands, answers := perfectRestaurant(t)
	res := TransNode(cands, answers)
	e := cluster.Evaluate(res.Clusters, d.Truth())
	if e.Precision < 1 || e.Recall < 0.95 {
		t.Errorf("TransNode perfect-crowd scores: %+v", e)
	}
	// Node-based: at most one question per (record, adjacent cluster).
	if res.Stats.Pairs > len(cands.Pairs) {
		t.Errorf("TransNode issued more than |S| pairs")
	}
	// No batching: iterations equal pairs asked.
	if res.Stats.Iterations != res.Stats.Pairs {
		t.Errorf("TransNode should ask one pair at a time: %+v", res.Stats)
	}
}

func TestTransNodeClusterProbes(t *testing.T) {
	// Three duplicates 0,1,2 (clique) and a singleton 3 with one
	// candidate edge to the cluster. Perfect crowd: records 1,2 join via
	// one probe each; record 3 probes once, is rejected, forms its own
	// cluster.
	machine := map[record.Pair]float64{}
	fc := map[record.Pair]float64{}
	add := func(a, b record.ID, m, f float64) {
		p := record.MakePair(a, b)
		machine[p] = m
		fc[p] = f
	}
	add(0, 1, 0.9, 1)
	add(0, 2, 0.8, 1)
	add(1, 2, 0.85, 1)
	add(2, 3, 0.6, 0)
	cands, answers := fixedInstance(4, machine, fc)
	res := TransNode(cands, answers)
	want := cluster.MustFromSets(4, [][]record.ID{{0, 1, 2}, {3}})
	if !cluster.Equal(res.Clusters, want) {
		t.Errorf("clusters = %v", res.Clusters.Sets())
	}
	if res.Stats.Pairs != 3 {
		t.Errorf("asked %d pairs, want 3 (one probe per insertion)", res.Stats.Pairs)
	}
}

func TestGCERBudget(t *testing.T) {
	d, cands, answers := perfectRestaurant(t)
	budget := len(cands.Pairs) / 4
	res := GCER(cands, answers, budget, 10)
	if res.Stats.Pairs > budget {
		t.Errorf("GCER exceeded budget: %d > %d", res.Stats.Pairs, budget)
	}
	e := cluster.Evaluate(res.Clusters, d.Truth())
	if e.F1 == 0 {
		t.Errorf("GCER produced a useless clustering: %+v", e)
	}
	// Zero budget degenerates to pure machine clustering, still valid.
	res0 := GCER(cands, answers, 0, 10)
	if res0.Stats.Pairs != 0 {
		t.Errorf("zero-budget GCER crowdsourced %d pairs", res0.Stats.Pairs)
	}
	if res0.Clusters.Len() != cands.N {
		t.Errorf("zero-budget GCER lost records")
	}
}

func TestGCERIterationsBounded(t *testing.T) {
	_, cands, answers := perfectRestaurant(t)
	res := GCER(cands, answers, len(cands.Pairs)/3, 10)
	if res.Stats.Iterations > 10 {
		t.Errorf("GCER used %d iterations with 10 batches", res.Stats.Iterations)
	}
	if res.Stats.Iterations == 0 {
		t.Errorf("GCER never crowdsourced")
	}
}

// TestNaiveFullCostAndAmplification: the intro's brute-force method pays
// the full candidate set and still collapses under a single error.
func TestNaive(t *testing.T) {
	d, cands, answers := perfectRestaurant(t)
	res := Naive(cands, answers)
	if res.Stats.Pairs != len(cands.Pairs) || res.Stats.Iterations != 1 {
		t.Errorf("naive stats %+v, want full |S| in one batch", res.Stats)
	}
	e := cluster.Evaluate(res.Clusters, d.Truth())
	if e.Precision < 1 || e.Recall < 0.95 {
		t.Errorf("perfect-crowd naive scored %+v", e)
	}
	// Figure 1 amplification: one wrong cross answer merges two
	// otherwise-clean entities (compare TestTransMErrorAmplification).
	machineScores := map[record.Pair]float64{}
	fc := map[record.Pair]float64{}
	add := func(a, b record.ID, m, f float64) {
		p := record.MakePair(a, b)
		machineScores[p] = m
		fc[p] = f
	}
	add(0, 1, 0.95, 1)
	add(2, 3, 0.94, 1)
	add(1, 2, 0.6, 1) // the single error
	cands2, answers2 := fixedInstance(4, machineScores, fc)
	res2 := Naive(cands2, answers2)
	if res2.Clusters.NumClusters() != 1 {
		t.Errorf("naive should amplify: %v", res2.Clusters.Sets())
	}
}

// TestAllBaselinesPartition: every baseline returns a disjoint cover on a
// noisy instance.
func TestAllBaselinesPartition(t *testing.T) {
	d := dataset.Product(2)
	cands := pruning.Prune(d.Records, pruning.Options{})
	answers := crowd.BuildAnswers(cands.PairList(), d.TruthFn(), crowd.UniformDifficulty(0.2), crowd.FiveWorker(3))
	runs := map[string]Result{
		"CrowdER+":  CrowdERPlus(cands, answers),
		"TransM":    TransM(cands, answers),
		"TransNode": TransNode(cands, answers),
		"GCER":      GCER(cands, answers, 1000, 10),
	}
	for name, res := range runs {
		seen := make(map[record.ID]bool)
		total := 0
		for _, s := range res.Clusters.Sets() {
			for _, r := range s {
				if seen[r] {
					t.Fatalf("%s: record %d duplicated", name, r)
				}
				seen[r] = true
				total++
			}
		}
		if total != cands.N {
			t.Errorf("%s: covered %d of %d records", name, total, cands.N)
		}
	}
}
