package blocking

import (
	"math"
	"sort"

	"acd/internal/record"
	"acd/internal/similarity"
)

// ScoredPair is a candidate pair with its machine similarity score.
type ScoredPair struct {
	Pair  record.Pair
	Score float64
}

// JaccardJoin returns all pairs of records whose token Jaccard similarity
// strictly exceeds tau, with their scores. Records are tokenized once;
// candidates are generated with a prefix-filtered inverted index and then
// verified exactly. Results are sorted by descending score, ties broken
// by pair order, so output is deterministic.
func JaccardJoin(records []record.Record, tau float64) []ScoredPair {
	n := len(records)
	tokens := make([][]string, n)
	for i, r := range records {
		tokens[i] = record.SortedTokens(r.Text())
	}
	return JaccardJoinTokens(tokens, tau)
}

// JaccardJoinTokens is JaccardJoin over pre-tokenized records. tokens[i]
// must be sorted and duplicate-free (record.SortedTokens form).
func JaccardJoinTokens(tokens [][]string, tau float64) []ScoredPair {
	n := len(tokens)

	// Global token frequency orders prefixes by rarity: rare tokens first
	// shrink the index postings dramatically.
	freq := make(map[string]int)
	for _, ts := range tokens {
		for _, t := range ts {
			freq[t]++
		}
	}
	ordered := make([][]string, n)
	for i, ts := range tokens {
		o := append([]string(nil), ts...)
		sort.Slice(o, func(a, b int) bool {
			fa, fb := freq[o[a]], freq[o[b]]
			if fa != fb {
				return fa < fb
			}
			return o[a] < o[b]
		})
		ordered[i] = o
	}

	index := make(map[string][]int) // token -> record ids (ascending)
	seen := make(map[record.Pair]struct{})
	var out []ScoredPair

	for i := 0; i < n; i++ {
		ts := ordered[i]
		if len(ts) == 0 {
			continue
		}
		p := prefixLen(len(ts), tau)
		cands := make(map[int]struct{})
		for _, t := range ts[:p] {
			for _, j := range index[t] {
				cands[j] = struct{}{}
			}
		}
		for j := range cands {
			pair := record.MakePair(record.ID(i), record.ID(j))
			if _, dup := seen[pair]; dup {
				continue
			}
			seen[pair] = struct{}{}
			// Length filter: Jaccard ≤ min/max of the sizes.
			la, lb := len(tokens[i]), len(tokens[j])
			lo, hi := la, lb
			if lo > hi {
				lo, hi = hi, lo
			}
			if float64(lo)/float64(hi) <= tau {
				continue
			}
			score := similarity.JaccardSorted(tokens[i], tokens[j])
			if score > tau {
				out = append(out, ScoredPair{Pair: pair, Score: score})
			}
		}
		for _, t := range ts[:p] {
			index[t] = append(index[t], i)
		}
	}
	sortScored(out)
	return out
}

// prefixLen is the prefix-filter length for a record of l tokens under
// threshold tau: for Jaccard > tau, two sets of sizes la, lb need overlap
// > tau/(1+tau) · (la+lb); a record can skip its last ceil(tau·la) tokens
// and still share a prefix token with any qualifying partner. Prefix =
// la − floor(tau·la) tokens. Shared by the sequential and parallel joins
// so both index exactly the same tokens.
func prefixLen(l int, tau float64) int {
	p := l - int(math.Floor(tau*float64(l)))
	if p < 1 && l > 0 {
		p = 1
	}
	return p
}

func sortScored(sp []ScoredPair) {
	sort.Slice(sp, func(i, j int) bool {
		if sp[i].Score != sp[j].Score {
			return sp[i].Score > sp[j].Score
		}
		if sp[i].Pair.Lo != sp[j].Pair.Lo {
			return sp[i].Pair.Lo < sp[j].Pair.Lo
		}
		return sp[i].Pair.Hi < sp[j].Pair.Hi
	})
}

// NaiveJoin computes the same result as JaccardJoin by scanning all
// O(n²) pairs with the given metric (nil means token Jaccard). It exists
// as the correctness oracle for JaccardJoin in tests and as the generic
// path for non-Jaccard metrics.
func NaiveJoin(records []record.Record, metric similarity.Metric, tau float64) []ScoredPair {
	if metric == nil {
		metric = similarity.Jaccard
	}
	var out []ScoredPair
	for i := range records {
		for j := i + 1; j < len(records); j++ {
			score := metric(records[i].Text(), records[j].Text())
			if score > tau {
				out = append(out, ScoredPair{
					Pair:  record.MakePair(records[i].ID, records[j].ID),
					Score: score,
				})
			}
		}
	}
	sortScored(out)
	return out
}

// SortedNeighborhoodKey returns the merge/purge sort key of a record: its
// distinct tokens in sorted order concatenated. Records with similar
// token sets sort near each other.
func SortedNeighborhoodKey(r record.Record) string {
	toks := record.SortedTokens(r.Text())
	key := ""
	for _, t := range toks {
		key += t
	}
	return key
}

// SortedNeighborhood returns the candidate pairs produced by a single
// sorted-neighborhood pass with the given window size: records are sorted
// by key and every pair within a sliding window of w records becomes a
// candidate. Scores are token Jaccard.
func SortedNeighborhood(records []record.Record, window int) []ScoredPair {
	n := len(records)
	type keyed struct {
		key string
		idx int
	}
	ks := make([]keyed, n)
	for i, r := range records {
		ks[i] = keyed{key: SortedNeighborhoodKey(r), idx: i}
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].key != ks[j].key {
			return ks[i].key < ks[j].key
		}
		return ks[i].idx < ks[j].idx
	})
	tokens := make([][]string, n)
	for i, r := range records {
		tokens[i] = record.SortedTokens(r.Text())
	}
	seen := make(map[record.Pair]struct{})
	var out []ScoredPair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n && j <= i+window-1; j++ {
			a, b := ks[i].idx, ks[j].idx
			pair := record.MakePair(records[a].ID, records[b].ID)
			if _, dup := seen[pair]; dup {
				continue
			}
			seen[pair] = struct{}{}
			out = append(out, ScoredPair{
				Pair:  pair,
				Score: similarity.JaccardSorted(tokens[a], tokens[b]),
			})
		}
	}
	sortScored(out)
	return out
}
