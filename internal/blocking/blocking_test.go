package blocking

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"acd/internal/record"
	"acd/internal/similarity"
)

func mkRecords(texts []string) []record.Record {
	out := make([]record.Record, len(texts))
	for i, s := range texts {
		out[i] = record.New(record.ID(i), map[string]string{"text": s})
	}
	return out
}

func TestJaccardJoinSmall(t *testing.T) {
	recs := mkRecords([]string{
		"apple banana cherry",
		"apple banana grape",
		"dog cat",
		"dog cat mouse",
		"zebra",
	})
	got := JaccardJoin(recs, 0.3)
	want := NaiveJoin(recs, similarity.Jaccard, 0.3)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("JaccardJoin = %v, want %v", got, want)
	}
	// (0,1): 2/4 = 0.5; (2,3): 2/3 ≈ 0.667 — both above 0.3.
	if len(got) != 2 {
		t.Fatalf("expected 2 candidate pairs, got %v", got)
	}
	// Sorted descending by score: (2,3) first.
	if got[0].Pair != record.MakePair(2, 3) || got[1].Pair != record.MakePair(0, 1) {
		t.Errorf("ordering wrong: %v", got)
	}
}

func TestJaccardJoinEmptyAndSingle(t *testing.T) {
	if got := JaccardJoin(nil, 0.3); len(got) != 0 {
		t.Errorf("empty input produced %v", got)
	}
	if got := JaccardJoin(mkRecords([]string{"only one"}), 0.3); len(got) != 0 {
		t.Errorf("single record produced %v", got)
	}
	// Records with empty text never pair (their similarity to anything
	// non-empty is 0, and pairs need score > tau ≥ 0).
	got := JaccardJoin(mkRecords([]string{"", "", "a"}), 0.0)
	if len(got) != 0 {
		t.Errorf("empty-text records paired: %v", got)
	}
}

// Property: the prefix-filtered join returns exactly the same pairs and
// scores as the naive all-pairs scan, for random vocabularies and
// thresholds.
func TestJoinMatchesNaive(t *testing.T) {
	vocab := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		recs := make([]record.Record, n)
		for i := range recs {
			k := 1 + rng.Intn(6)
			text := ""
			for w := 0; w < k; w++ {
				text += vocab[rng.Intn(len(vocab))] + " "
			}
			recs[i] = record.New(record.ID(i), map[string]string{"t": text})
		}
		tau := []float64{0.1, 0.3, 0.5, 0.8}[rng.Intn(4)]
		got := JaccardJoin(recs, tau)
		want := NaiveJoin(recs, similarity.Jaccard, tau)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Pair != want[i].Pair || got[i].Score != want[i].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNaiveJoinNilMetricDefaultsToJaccard(t *testing.T) {
	recs := mkRecords([]string{"a b c", "a b d", "x y"})
	got := NaiveJoin(recs, nil, 0.3)
	want := NaiveJoin(recs, similarity.Jaccard, 0.3)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("nil metric: %v, want %v", got, want)
	}
}

func TestSortedNeighborhoodKey(t *testing.T) {
	r1 := record.New(0, map[string]string{"t": "banana apple"})
	r2 := record.New(1, map[string]string{"t": "apple banana"})
	if SortedNeighborhoodKey(r1) != SortedNeighborhoodKey(r2) {
		t.Errorf("token order should not affect key")
	}
}

func TestSortedNeighborhood(t *testing.T) {
	recs := mkRecords([]string{
		"apple pie",
		"apple pies",
		"zebra zoo",
		"zebra zoos",
	})
	got := SortedNeighborhood(recs, 2)
	// With window 2 over sorted keys, adjacent similar records pair up.
	pairs := map[record.Pair]bool{}
	for _, sp := range got {
		pairs[sp.Pair] = true
	}
	if !pairs[record.MakePair(0, 1)] || !pairs[record.MakePair(2, 3)] {
		t.Errorf("expected adjacent pairs, got %v", got)
	}
	// Window 1 yields nothing.
	if got := SortedNeighborhood(recs, 1); len(got) != 0 {
		t.Errorf("window 1 produced %v", got)
	}
	// Window n covers all pairs exactly once.
	got = SortedNeighborhood(recs, 4)
	if len(got) != 6 {
		t.Errorf("full window produced %d pairs, want 6", len(got))
	}
}

// Property: sorted-neighborhood pairs are unique and scores match Jaccard.
func TestSortedNeighborhoodProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		recs := make([]record.Record, n)
		for i := range recs {
			recs[i] = record.New(record.ID(i), map[string]string{
				"t": fmt.Sprintf("tok%d tok%d", rng.Intn(5), rng.Intn(5)),
			})
		}
		w := 2 + rng.Intn(n)
		got := SortedNeighborhood(recs, w)
		seen := map[record.Pair]bool{}
		for _, sp := range got {
			if seen[sp.Pair] {
				return false
			}
			seen[sp.Pair] = true
			want := similarity.Jaccard(recs[sp.Pair.Lo].Text(), recs[sp.Pair.Hi].Text())
			if sp.Score != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
