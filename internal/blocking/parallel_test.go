package blocking

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"acd/internal/record"
	"acd/internal/similarity"
)

// parallelisms are the worker counts every equivalence property is
// checked under; 1 exercises the sequential fall-through, the rest the
// real fan-out (including counts above this machine's core count).
var parallelisms = []int{1, 2, 4, 8}

// randomRecords draws a record set with a small vocabulary so that token
// collisions — and therefore candidate pairs — are plentiful. Includes
// occasional empty-text records, the join's main edge case.
func randomRecords(rng *rand.Rand, maxN int) []record.Record {
	vocab := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	n := 2 + rng.Intn(maxN)
	recs := make([]record.Record, n)
	for i := range recs {
		text := ""
		if rng.Intn(12) != 0 { // 1-in-12 records are empty
			k := 1 + rng.Intn(6)
			for w := 0; w < k; w++ {
				text += vocab[rng.Intn(len(vocab))] + " "
			}
		}
		recs[i] = record.New(record.ID(i), map[string]string{"t": text})
	}
	return recs
}

func randomTau(rng *rand.Rand) float64 {
	return []float64{0, 0.1, 0.3, 0.5, 0.8}[rng.Intn(5)]
}

// equalScored reports exact equality: same pairs, same scores (bit-for-
// bit), same order.
func equalScored(a, b []ScoredPair) bool {
	return reflect.DeepEqual(a, b)
}

// TestJaccardJoinParallelMatchesSequential is the concurrency analogue
// of the Lemma 2 equivalence test in internal/core/pivot_test.go: for
// randomized record sets, the parallel join's output must be exactly
// equal — pairs, scores, and order — to the sequential reference path,
// at every parallelism level.
func TestJaccardJoinParallelMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := randomRecords(rng, 40)
		tau := randomTau(rng)
		want := JaccardJoin(recs, tau)
		for _, p := range parallelisms {
			if got := JaccardJoinParallel(recs, tau, p); !equalScored(got, want) {
				t.Logf("parallelism %d, tau %v: got %v, want %v", p, tau, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNaiveJoinParallelMatchesSequential(t *testing.T) {
	metrics := []similarity.Metric{nil, similarity.Jaccard, similarity.Levenshtein, similarity.JaroWinkler}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := randomRecords(rng, 25)
		tau := randomTau(rng)
		metric := metrics[rng.Intn(len(metrics))]
		want := NaiveJoin(recs, metric, tau)
		for _, p := range parallelisms {
			if got := NaiveJoinParallel(recs, metric, tau, p); !equalScored(got, want) {
				t.Logf("parallelism %d, tau %v: got %v, want %v", p, tau, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSortedNeighborhoodParallelMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := randomRecords(rng, 30)
		w := 1 + rng.Intn(len(recs)+2)
		want := SortedNeighborhood(recs, w)
		for _, p := range parallelisms {
			if got := SortedNeighborhoodParallel(recs, w, p); !equalScored(got, want) {
				t.Logf("parallelism %d, window %d: got %v, want %v", p, w, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestParallelJoinAuto exercises the auto (0) and negative settings,
// which resolve to GOMAXPROCS workers.
func TestParallelJoinAuto(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	recs := randomRecords(rng, 60)
	want := JaccardJoin(recs, 0.3)
	for _, p := range []int{0, -1} {
		if got := JaccardJoinParallel(recs, 0.3, p); !equalScored(got, want) {
			t.Errorf("parallelism %d: got %v, want %v", p, got, want)
		}
	}
}

func TestParallelJoinEdgeCases(t *testing.T) {
	for _, p := range parallelisms {
		t.Run(fmt.Sprintf("par%d", p), func(t *testing.T) {
			if got := JaccardJoinParallel(nil, 0.3, p); got != nil {
				t.Errorf("empty input produced %v", got)
			}
			one := []record.Record{record.New(0, map[string]string{"t": "only one"})}
			if got := JaccardJoinParallel(one, 0.3, p); got != nil {
				t.Errorf("single record produced %v", got)
			}
			empties := []record.Record{
				record.New(0, nil), record.New(1, nil),
				record.New(2, map[string]string{"t": "a"}),
			}
			if got := JaccardJoinParallel(empties, 0, p); len(got) != 0 {
				t.Errorf("empty-text records paired: %v", got)
			}
			if got := NaiveJoinParallel(nil, nil, 0.3, p); got != nil {
				t.Errorf("naive empty input produced %v", got)
			}
			if got := SortedNeighborhoodParallel(nil, 3, p); got != nil {
				t.Errorf("sorted-neighborhood empty input produced %v", got)
			}
		})
	}
}

// TestJaccardJoinTokensParallelDirect checks the pre-tokenized entry
// point against its sequential twin on a hand-built workload with heavy
// token skew (one hub token shared by everything).
func TestJaccardJoinTokensParallelDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tokens := make([][]string, 200)
	for i := range tokens {
		set := map[string]struct{}{"hub": {}}
		for k := 0; k < 1+rng.Intn(5); k++ {
			set[fmt.Sprintf("t%d", rng.Intn(30))] = struct{}{}
		}
		tokens[i] = sortedKeys(set)
	}
	want := JaccardJoinTokens(tokens, 0.3)
	for _, p := range parallelisms {
		if got := JaccardJoinTokensParallel(tokens, 0.3, p); !equalScored(got, want) {
			t.Errorf("parallelism %d diverged (got %d pairs, want %d)", p, len(got), len(want))
		}
	}
}

func sortedKeys(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	for i := 1; i < len(out); i++ { // insertion sort: tiny inputs
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestParallelJoinStress runs a larger join at high parallelism so the
// race detector (go test -race, wired into CI) sees real contention on
// the work queue, the sharded index build, and the merge.
func TestParallelJoinStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(11))
	recs := make([]record.Record, 1200)
	for i := range recs {
		text := ""
		for w := 0; w < 3+rng.Intn(8); w++ {
			text += fmt.Sprintf("w%d ", rng.Intn(150))
		}
		recs[i] = record.New(record.ID(i), map[string]string{"t": text})
	}
	want := JaccardJoin(recs, 0.3)
	if len(want) == 0 {
		t.Fatal("stress workload produced no pairs; tighten the vocabulary")
	}
	for _, p := range []int{2, 8, 16} {
		if got := JaccardJoinParallel(recs, 0.3, p); !equalScored(got, want) {
			t.Errorf("parallelism %d diverged (got %d pairs, want %d)", p, len(got), len(want))
		}
	}
}
