package blocking

import (
	"fmt"
	"math/rand"
	"testing"

	"acd/internal/record"
)

// benchRecords builds a synthetic workload shaped like a deduplication
// input: groups of near-duplicate records drawn from a shared vocabulary
// (so the join finds real pairs), plus singleton noise.
func benchRecords(n int) []record.Record {
	rng := rand.New(rand.NewSource(42))
	vocabSize := n / 2
	recs := make([]record.Record, 0, n)
	id := 0
	for id < n {
		// One entity: a base description plus 1-3 noisy copies.
		base := make([]string, 5+rng.Intn(8))
		for i := range base {
			base[i] = fmt.Sprintf("tok%d", rng.Intn(vocabSize))
		}
		copies := 1 + rng.Intn(3)
		for c := 0; c < copies && id < n; c++ {
			words := append([]string(nil), base...)
			if c > 0 { // perturb duplicates: drop one token, add one
				words[rng.Intn(len(words))] = fmt.Sprintf("tok%d", rng.Intn(vocabSize))
			}
			text := ""
			for _, w := range words {
				text += w + " "
			}
			recs = append(recs, record.New(record.ID(id), map[string]string{"t": text}))
			id++
		}
	}
	return recs
}

// BenchmarkJaccardJoinParallel measures the parallel sharded join
// against the sequential reference on a 5000-record synthetic workload.
// The seq and par1 variants are the baseline; parN and auto are the
// speedup claims (run on a multi-core machine: the fan-out degenerates
// to little more than queue overhead on a single core).
func BenchmarkJaccardJoinParallel(b *testing.B) {
	recs := benchRecords(5000)
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = JaccardJoin(recs, 0.3)
		}
	})
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("par%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = JaccardJoinParallel(recs, 0.3, p)
			}
		})
	}
	b.Run("auto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = JaccardJoinParallel(recs, 0.3, 0)
		}
	})
}

// BenchmarkNaiveJoinParallel measures the parallel all-pairs scan on a
// smaller workload (the scan is quadratic).
func BenchmarkNaiveJoinParallel(b *testing.B) {
	recs := benchRecords(1200)
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = NaiveJoin(recs, nil, 0.3)
		}
	})
	for _, p := range []int{2, 4} {
		b.Run(fmt.Sprintf("par%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = NaiveJoinParallel(recs, nil, 0.3, p)
			}
		})
	}
}

// BenchmarkSortedNeighborhoodParallel measures the parallel window scan.
func BenchmarkSortedNeighborhoodParallel(b *testing.B) {
	recs := benchRecords(5000)
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = SortedNeighborhood(recs, 10)
		}
	})
	for _, p := range []int{2, 4} {
		b.Run(fmt.Sprintf("par%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = SortedNeighborhoodParallel(recs, 10, p)
			}
		})
	}
}
