// Package blocking implements candidate-pair generation for the pruning
// phase: an inverted-index all-pairs Jaccard join with prefix filtering,
// plus sorted-neighborhood keying (the classic merge/purge discipline
// [28], also used by [48] to cluster crowd answers).
//
// The join avoids the O(n²) pair scan that a naive pruning phase would
// need: with threshold τ, a pair can reach Jaccard ≥ τ only if the two
// records share a token in their length-dependent prefixes, so only
// records colliding in the inverted index over prefixes are verified.
//
// Paper artifacts:
//
//   - JaccardJoin / JaccardJoinTokens — the machine-based similarity
//     join behind the pruning phase (Section 3; Section 6.1 fixes
//     Jaccard with τ = 0.3).
//   - MinHashJoin — an LSH approximation of the same join, for scale.
//   - SortedNeighborhood — merge/purge windowing [28].
//
// The *Parallel variants in parallel.go shard the join over a worker
// pool with byte-identical output; the *Obs variants additionally
// report the pruning/* funnel counters, per-stage phase timers, and
// per-shard build-time distributions defined in metrics.go.
package blocking
