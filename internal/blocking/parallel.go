// Parallel sharded variants of the similarity joins. Every function here
// is proven (by the equivalence property tests in parallel_test.go) to
// return output byte-identical to its sequential counterpart: the same
// pairs, the same scores, in the same order. Determinism comes from the
// structure, not from luck:
//
//   - candidate generation assigns each pair to exactly one worker (the
//     pair's larger record index, or a fixed position chunk), so no pair
//     is emitted twice and no cross-worker coordination is needed;
//   - workers append to private buffers, which are merged single-threaded
//     after all workers finish;
//   - the merged result goes through the same total-order sort
//     (descending score, then pair) as the sequential path, so the
//     nondeterministic completion order of workers never shows.
//
// The inverted index itself is built sharded by token: shard s owns the
// tokens with hash(token) mod shards == s, and builds the postings lists
// for exactly those tokens. Shards never write to each other's maps, so
// the build needs no locks, and each postings list is filled in ascending
// record order — the same order the sequential build produces.
package blocking

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"acd/internal/obs"
	"acd/internal/record"
	"acd/internal/similarity"
)

// normalizeParallelism maps the shared Parallelism knob (see
// pruning.Options) onto a worker count: values <= 0 mean "auto" (one
// worker per usable CPU), 1 selects the sequential reference path, and
// n > 1 requests exactly n workers.
func normalizeParallelism(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// chunk sizes for the work queues: small enough to rebalance when chunk
// costs are skewed (late rows of a triangular scan, hub records with huge
// postings), large enough to keep the atomic cursor off the hot path.
const (
	tokenizeChunk = 256
	verifyChunk   = 64
	naiveRowChunk = 16
	windowChunk   = 128
)

// parallelFor drains the half-open ranges of [0, n) in fixed-size chunks
// from a shared work queue with the given number of worker goroutines.
// fn receives the worker index (for per-worker state) and the chunk
// bounds [lo, hi). It returns when every chunk has been processed.
func parallelFor(n, workers, chunk int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > (n+chunk-1)/chunk {
		workers = (n + chunk - 1) / chunk
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				hi := int(cursor.Add(int64(chunk)))
				lo := hi - chunk
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				fn(w, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// tokenShard assigns a token to one of shards index shards (FNV-1a).
// The assignment only affects which shard builds a postings list, never
// the join output.
func tokenShard(t string, shards int) int {
	h := uint32(2166136261)
	for i := 0; i < len(t); i++ {
		h ^= uint32(t[i])
		h *= 16777619
	}
	return int(h % uint32(shards))
}

// JaccardJoinParallel is JaccardJoin fanned out over a worker pool.
// Parallelism follows normalizeParallelism; 1 falls through to the
// sequential reference implementation. Output is byte-identical to
// JaccardJoin(records, tau).
func JaccardJoinParallel(records []record.Record, tau float64, parallelism int) []ScoredPair {
	return JaccardJoinParallelObs(records, tau, parallelism, nil)
}

// JaccardJoinParallelObs is JaccardJoinParallel reporting phase timings,
// funnel counters and per-shard build times to a recorder (nil disables
// recording; output is identical either way).
func JaccardJoinParallelObs(records []record.Record, tau float64, parallelism int, rec *obs.Recorder) []ScoredPair {
	p := normalizeParallelism(parallelism)
	if p == 1 {
		out := JaccardJoin(records, tau)
		rec.Count(MetricPairsEmitted, int64(len(out)))
		return out
	}
	n := len(records)
	tokens := make([][]string, n)
	doneTok := rec.StartPhase(PhaseTokenize)
	parallelFor(n, p, tokenizeChunk, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			tokens[i] = record.SortedTokens(records[i].Text())
		}
	})
	doneTok()
	return JaccardJoinTokensParallelObs(tokens, tau, p, rec)
}

// JaccardJoinTokensParallel is JaccardJoinTokens with a sharded index
// build and parallel candidate verification. tokens[i] must be sorted and
// duplicate-free (record.SortedTokens form). Output is byte-identical to
// JaccardJoinTokens(tokens, tau).
func JaccardJoinTokensParallel(tokens [][]string, tau float64, parallelism int) []ScoredPair {
	return JaccardJoinTokensParallelObs(tokens, tau, parallelism, nil)
}

// JaccardJoinTokensParallelObs is JaccardJoinTokensParallel reporting to
// a recorder: wall-clock per pipeline stage (frequency count, rarity
// ordering, index build, verification), per-shard build-time
// distributions (skew here means hot token shards), and the verification
// funnel (pairs verified vs. pairs emitted). A nil recorder records
// nothing; output is identical either way.
func JaccardJoinTokensParallelObs(tokens [][]string, tau float64, parallelism int, rec *obs.Recorder) []ScoredPair {
	p := normalizeParallelism(parallelism)
	if p == 1 {
		out := JaccardJoinTokens(tokens, tau)
		rec.Count(MetricPairsEmitted, int64(len(out)))
		return out
	}
	n := len(tokens)
	if n < 2 {
		return nil
	}

	// Phase 1 — global token frequencies, sharded by token. Workers first
	// count their own record ranges into private maps, then each token
	// shard merges its slice of every private map; no map is ever written
	// by two goroutines.
	doneFreq := rec.StartPhase(PhaseFreq)
	locals := make([]map[string]int, p)
	parallelFor(n, p, tokenizeChunk, func(w, lo, hi int) {
		m := locals[w]
		if m == nil {
			m = make(map[string]int)
			locals[w] = m
		}
		for i := lo; i < hi; i++ {
			for _, t := range tokens[i] {
				m[t]++
			}
		}
	})
	freq := make([]map[string]int, p) // shard -> token -> count
	parallelFor(p, p, 1, func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			t0 := time.Now()
			shard := make(map[string]int)
			for _, m := range locals {
				for t, c := range m {
					if tokenShard(t, p) == s {
						shard[t] += c
					}
				}
			}
			freq[s] = shard
			rec.Observe(MetricShardFreqSeconds, time.Since(t0).Seconds())
		}
	})
	doneFreq()
	lookup := func(t string) int { return freq[tokenShard(t, p)][t] }

	// Phase 2 — per-record rarity ordering and prefix lengths, exactly as
	// the sequential join computes them (same comparator, same tie-break).
	doneOrder := rec.StartPhase(PhaseOrder)
	ordered := make([][]string, n)
	prefixes := make([]int, n)
	parallelFor(n, p, tokenizeChunk, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			o := append([]string(nil), tokens[i]...)
			sort.Slice(o, func(a, b int) bool {
				fa, fb := lookup(o[a]), lookup(o[b])
				if fa != fb {
					return fa < fb
				}
				return o[a] < o[b]
			})
			ordered[i] = o
			prefixes[i] = prefixLen(len(o), tau)
		}
	})
	doneOrder()

	// Phase 3 — sharded inverted index over prefix tokens. Shard s scans
	// records in ascending order and appends to postings of its own tokens
	// only, so every postings list ends up ascending with no locking.
	doneIndex := rec.StartPhase(PhaseIndex)
	postings := make([]map[string][]int32, p) // shard -> token -> record ids
	parallelFor(p, p, 1, func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			t0 := time.Now()
			idx := make(map[string][]int32)
			for i := 0; i < n; i++ {
				for _, t := range ordered[i][:prefixes[i]] {
					if tokenShard(t, p) == s {
						idx[t] = append(idx[t], int32(i))
					}
				}
			}
			postings[s] = idx
			rec.Observe(MetricShardIndexSeconds, time.Since(t0).Seconds())
		}
	})
	doneIndex()

	// Phase 4 — verification fan-out. Each record i verifies only
	// candidates j < i, so every pair is owned by exactly one chunk and
	// no cross-worker dedup is needed. Per-worker stamp arrays (a
	// generation counter instead of clearing) dedup candidates within one
	// record's postings walk.
	doneVerify := rec.StartPhase(PhaseVerify)
	bufs := make([][]ScoredPair, p)
	stamps := make([][]int, p)
	gens := make([]int, p)
	verified := make([]int64, p) // per-worker, merged after the fan-out
	parallelFor(n, p, verifyChunk, func(w, lo, hi int) {
		if stamps[w] == nil {
			stamps[w] = make([]int, n)
		}
		stamp := stamps[w]
		var cands []int32
		for i := lo; i < hi; i++ {
			gens[w]++
			gen := gens[w]
			cands = cands[:0]
			for _, t := range ordered[i][:prefixes[i]] {
				for _, j := range postings[tokenShard(t, p)][t] {
					if int(j) >= i {
						break // postings ascend: the rest are >= i too
					}
					if stamp[j] != gen {
						stamp[j] = gen
						cands = append(cands, j)
					}
				}
			}
			la := len(tokens[i])
			for _, j := range cands {
				// Length filter: Jaccard ≤ min/max of the sizes.
				lb := len(tokens[j])
				lmin, lmax := la, lb
				if lmin > lmax {
					lmin, lmax = lmax, lmin
				}
				if float64(lmin)/float64(lmax) <= tau {
					continue
				}
				verified[w]++
				score := similarity.JaccardSorted(tokens[i], tokens[j])
				if score > tau {
					bufs[w] = append(bufs[w], ScoredPair{
						Pair:  record.MakePair(record.ID(i), record.ID(int(j))),
						Score: score,
					})
				}
			}
		}
	})
	doneVerify()

	out := mergeBuffers(bufs)
	sortScored(out)
	var totalVerified int64
	for _, v := range verified {
		totalVerified += v
	}
	rec.Count(MetricPairsVerified, totalVerified)
	rec.Count(MetricPairsEmitted, int64(len(out)))
	return out
}

// NaiveJoinParallel is NaiveJoin with the triangular all-pairs scan
// fanned out row-chunk by row-chunk. Output is byte-identical to
// NaiveJoin(records, metric, tau).
func NaiveJoinParallel(records []record.Record, metric similarity.Metric, tau float64, parallelism int) []ScoredPair {
	return NaiveJoinParallelObs(records, metric, tau, parallelism, nil)
}

// NaiveJoinParallelObs is NaiveJoinParallel reporting phase timings and
// the verification funnel to a recorder (nil disables recording; output
// is identical either way). The naive scan verifies every pair, so
// MetricPairsVerified counts the full triangle n·(n−1)/2.
func NaiveJoinParallelObs(records []record.Record, metric similarity.Metric, tau float64, parallelism int, rec *obs.Recorder) []ScoredPair {
	p := normalizeParallelism(parallelism)
	if p == 1 {
		out := NaiveJoin(records, metric, tau)
		n := int64(len(records))
		rec.Count(MetricPairsVerified, n*(n-1)/2)
		rec.Count(MetricPairsEmitted, int64(len(out)))
		return out
	}
	if metric == nil {
		metric = similarity.Jaccard
	}
	n := len(records)
	texts := make([]string, n)
	doneTok := rec.StartPhase(PhaseTokenize)
	parallelFor(n, p, tokenizeChunk, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			texts[i] = records[i].Text()
		}
	})
	doneTok()
	doneVerify := rec.StartPhase(PhaseVerify)
	bufs := make([][]ScoredPair, p)
	parallelFor(n, p, naiveRowChunk, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := i + 1; j < n; j++ {
				score := metric(texts[i], texts[j])
				if score > tau {
					bufs[w] = append(bufs[w], ScoredPair{
						Pair:  record.MakePair(records[i].ID, records[j].ID),
						Score: score,
					})
				}
			}
		}
	})
	doneVerify()
	out := mergeBuffers(bufs)
	sortScored(out)
	rec.Count(MetricPairsVerified, int64(n)*int64(n-1)/2)
	rec.Count(MetricPairsEmitted, int64(len(out)))
	return out
}

// SortedNeighborhoodParallel is SortedNeighborhood with parallel key
// building and a parallel window scan. Chunk results are merged in
// position order through the same first-occurrence dedup the sequential
// pass applies, so output is byte-identical to
// SortedNeighborhood(records, window) even for degenerate inputs with
// duplicate record IDs.
func SortedNeighborhoodParallel(records []record.Record, window, parallelism int) []ScoredPair {
	p := normalizeParallelism(parallelism)
	if p == 1 {
		return SortedNeighborhood(records, window)
	}
	n := len(records)
	if n == 0 {
		return nil
	}
	type keyed struct {
		key string
		idx int
	}
	ks := make([]keyed, n)
	tokens := make([][]string, n)
	parallelFor(n, p, tokenizeChunk, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			tokens[i] = record.SortedTokens(records[i].Text())
			key := ""
			for _, t := range tokens[i] {
				key += t
			}
			ks[i] = keyed{key: key, idx: i}
		}
	})
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].key != ks[j].key {
			return ks[i].key < ks[j].key
		}
		return ks[i].idx < ks[j].idx
	})

	// Chunk-indexed buffers: chunk c covers positions [c·windowChunk,
	// (c+1)·windowChunk). Merging buffers in chunk order replays the
	// sequential scan order, which the first-occurrence dedup depends on.
	numChunks := (n + windowChunk - 1) / windowChunk
	bufs := make([][]ScoredPair, numChunks)
	parallelFor(n, p, windowChunk, func(_, lo, hi int) {
		var buf []ScoredPair
		for i := lo; i < hi; i++ {
			for j := i + 1; j < n && j <= i+window-1; j++ {
				a, b := ks[i].idx, ks[j].idx
				buf = append(buf, ScoredPair{
					Pair:  record.MakePair(records[a].ID, records[b].ID),
					Score: similarity.JaccardSorted(tokens[a], tokens[b]),
				})
			}
		}
		bufs[lo/windowChunk] = buf
	})
	seen := make(map[record.Pair]struct{})
	var out []ScoredPair
	for _, buf := range bufs {
		for _, sp := range buf {
			if _, dup := seen[sp.Pair]; dup {
				continue
			}
			seen[sp.Pair] = struct{}{}
			out = append(out, sp)
		}
	}
	sortScored(out)
	return out
}

// mergeBuffers concatenates per-worker result buffers into one slice. A
// nil result for an empty join matches the sequential functions, which
// never allocate their output before the first hit.
func mergeBuffers(bufs [][]ScoredPair) []ScoredPair {
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	if total == 0 {
		return nil
	}
	out := make([]ScoredPair, 0, total)
	for _, b := range bufs {
		out = append(out, b...)
	}
	return out
}
