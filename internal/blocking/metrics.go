package blocking

// Metric names emitted by the instrumented similarity joins (the *Obs
// variants in parallel.go). Phase timers use the same "pruning/" prefix
// so the whole machine phase renders as one group.
const (
	// MetricPairsVerified counts candidate pairs that reached similarity
	// verification (after the prefix filter and length filter for the
	// indexed join; every pair for the naive join) — the "pairs in" of
	// the pruning funnel.
	MetricPairsVerified = "pruning/pairs_verified"
	// MetricPairsEmitted counts pairs that survived the threshold — the
	// "pairs out", i.e. the candidate set size |S|.
	MetricPairsEmitted = "pruning/pairs_emitted"
	// MetricShardIndexSeconds is the distribution of per-shard inverted
	// index build times (seconds): skew here means hot token shards.
	MetricShardIndexSeconds = "pruning/shard_index_seconds"
	// MetricShardFreqSeconds is the distribution of per-shard token
	// frequency merge times (seconds).
	MetricShardFreqSeconds = "pruning/shard_freq_seconds"

	// Phase timer names of the join pipeline stages.
	PhaseTokenize = "pruning/tokenize"
	PhaseFreq     = "pruning/freq"
	PhaseOrder    = "pruning/order"
	PhaseIndex    = "pruning/index"
	PhaseVerify   = "pruning/verify"
)
