package blocking

import (
	"acd/internal/record"
	"acd/internal/similarity"
)

// IncrementalIndex is the online counterpart of JaccardJoin: an exact
// token-Jaccard similarity join maintained one record at a time. Each
// Add indexes one new record and returns every pair it forms with an
// already-indexed record whose Jaccard similarity strictly exceeds tau —
// verified exactly, so over any insertion order the union of emitted
// pairs equals JaccardJoin over the full record set (the equivalence
// property test pins this).
//
// The index stores every token of every indexed record (a full inverted
// index), while probes consult only the new record's prefix under the
// standard count argument: Jaccard(q, r) > tau implies
// |q ∩ r| > tau·|q|, so skipping the last floor(tau·|q|) probe tokens
// cannot skip every shared token, whatever the token order. Unlike the
// batch join's frequency-ordered prefix filter, this holds for any
// fixed per-record order — sorted order here, so probes are
// deterministic. Candidates then pass the length filter and exact
// verification, identical to the batch path.
//
// The incremental dedup engine feeds every Add through this index to
// maintain its candidate-pair frontier as records stream in.
type IncrementalIndex struct {
	tau      float64
	tokens   [][]string         // per record: sorted distinct tokens
	postings map[string][]int32 // token -> ids of indexed records, ascending
	nTokens  int                // total postings entries, for stats
}

// NewIncrementalIndex returns an empty index with the given pruning
// threshold. Records added later form a candidate pair when their token
// Jaccard similarity strictly exceeds tau.
func NewIncrementalIndex(tau float64) *IncrementalIndex {
	return &IncrementalIndex{
		tau:      tau,
		postings: make(map[string][]int32),
	}
}

// Len returns the number of records indexed so far; the next Add
// receives this value as its record ID.
func (ix *IncrementalIndex) Len() int { return len(ix.tokens) }

// Tau returns the index's pruning threshold.
func (ix *IncrementalIndex) Tau() float64 { return ix.tau }

// Postings returns the total number of (token, record) entries in the
// inverted index — the size stat checkpoints record.
func (ix *IncrementalIndex) Postings() int { return ix.nTokens }

// Add indexes the next record (its ID is the pre-call Len) given its
// canonical text, and returns all candidate pairs it forms with earlier
// records: exact Jaccard > tau, sorted by descending score with ties by
// ascending partner ID — deterministic, like the batch join's order.
func (ix *IncrementalIndex) Add(text string) []ScoredPair {
	id := int32(len(ix.tokens))
	toks := record.SortedTokens(text)
	ix.tokens = append(ix.tokens, toks)
	if len(toks) == 0 {
		return nil
	}

	// Probe the prefix against the full index, dedup candidate partners.
	p := prefixLen(len(toks), ix.tau)
	seen := make(map[int32]struct{})
	var out []ScoredPair
	for _, t := range toks[:p] {
		for _, j := range ix.postings[t] {
			if _, dup := seen[j]; dup {
				continue
			}
			seen[j] = struct{}{}
			other := ix.tokens[j]
			// Length filter: Jaccard ≤ min/max of the token-set sizes.
			lo, hi := len(toks), len(other)
			if lo > hi {
				lo, hi = hi, lo
			}
			if float64(lo)/float64(hi) <= ix.tau {
				continue
			}
			if score := similarity.JaccardSorted(toks, other); score > ix.tau {
				out = append(out, ScoredPair{
					Pair:  record.MakePair(record.ID(id), record.ID(j)),
					Score: score,
				})
			}
		}
	}
	// Index every token so future probes can find this record through
	// any of them.
	for _, t := range toks {
		ix.postings[t] = append(ix.postings[t], id)
	}
	ix.nTokens += len(toks)
	sortScored(out)
	return out
}
