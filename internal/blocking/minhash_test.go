package blocking

import (
	"fmt"
	"math/rand"
	"testing"

	"acd/internal/record"
)

func TestMinHashJoinNoFalsePositives(t *testing.T) {
	recs := mkRecords([]string{
		"apple banana cherry date",
		"apple banana cherry grape",
		"zebra yak xylophone",
		"zebra yak xylophone walrus",
	})
	got := MinHashJoin(recs, 0.3, MinHashConfig{Seed: 1})
	exact := map[record.Pair]float64{}
	for _, sp := range JaccardJoin(recs, 0.3) {
		exact[sp.Pair] = sp.Score
	}
	for _, sp := range got {
		want, ok := exact[sp.Pair]
		if !ok {
			t.Errorf("spurious pair %v (score %v)", sp.Pair, sp.Score)
		} else if sp.Score != want {
			t.Errorf("pair %v score %v, exact %v", sp.Pair, sp.Score, want)
		}
	}
}

func TestMinHashJoinRecall(t *testing.T) {
	// Vocabulary-sharing records: pairs above 0.5 similarity should
	// almost all be found with the default 16×4 scheme.
	rng := rand.New(rand.NewSource(9))
	vocab := make([]string, 40)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("tok%02d", i)
	}
	var texts []string
	for e := 0; e < 60; e++ {
		base := make([]string, 8)
		for i := range base {
			base[i] = vocab[rng.Intn(len(vocab))]
		}
		// Two noisy copies per entity.
		for c := 0; c < 2; c++ {
			cp := append([]string(nil), base...)
			cp[rng.Intn(len(cp))] = vocab[rng.Intn(len(vocab))]
			text := ""
			for _, w := range cp {
				text += w + " "
			}
			texts = append(texts, text)
		}
	}
	recs := mkRecords(texts)

	exact := JaccardJoin(recs, 0.5)
	lsh := map[record.Pair]bool{}
	for _, sp := range MinHashJoin(recs, 0.5, MinHashConfig{Seed: 2}) {
		lsh[sp.Pair] = true
	}
	missed := 0
	for _, sp := range exact {
		if !lsh[sp.Pair] {
			missed++
		}
	}
	if len(exact) == 0 {
		t.Fatal("test instance produced no exact pairs")
	}
	recall := 1 - float64(missed)/float64(len(exact))
	if recall < 0.95 {
		t.Errorf("LSH recall %.3f over %d pairs, want ≥ 0.95", recall, len(exact))
	}
}

func TestMinHashEmptyRecords(t *testing.T) {
	recs := mkRecords([]string{"", "a b c", "", "a b d"})
	got := MinHashJoin(recs, 0.3, MinHashConfig{})
	for _, sp := range got {
		if recs[sp.Pair.Lo].Text() == "" || recs[sp.Pair.Hi].Text() == "" {
			t.Errorf("empty record paired: %v", sp.Pair)
		}
	}
}

func TestMinHashDeterministic(t *testing.T) {
	recs := mkRecords([]string{"a b c", "a b d", "x y z"})
	a := MinHashJoin(recs, 0.1, MinHashConfig{Seed: 5})
	b := MinHashJoin(recs, 0.1, MinHashConfig{Seed: 5})
	if len(a) != len(b) {
		t.Fatalf("nondeterministic sizes %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestMinHashSignatureProperties(t *testing.T) {
	// Identical token sets have identical signatures regardless of
	// input order; signature length is honored.
	s1 := minhashSignature([]string{"a", "b", "c"}, 32, 7)
	s2 := minhashSignature([]string{"c", "a", "b"}, 32, 7)
	if len(s1) != 32 {
		t.Fatalf("signature length %d", len(s1))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("order-dependent signature at %d", i)
		}
	}
	if minhashSignature(nil, 8, 7) != nil {
		t.Errorf("empty token set should give nil signature")
	}
}
