package blocking

import (
	"math/rand"
	"reflect"
	"testing"

	"acd/internal/similarity"
)

func TestIncrementalIndexSmall(t *testing.T) {
	texts := []string{
		"apple banana cherry",
		"apple banana grape",
		"dog cat",
		"dog cat mouse",
		"zebra",
	}
	ix := NewIncrementalIndex(0.3)
	var all []ScoredPair
	for i, s := range texts {
		if ix.Len() != i {
			t.Fatalf("Len = %d before adding record %d", ix.Len(), i)
		}
		all = append(all, ix.Add(s)...)
	}
	if ix.Tau() != 0.3 {
		t.Errorf("Tau = %v", ix.Tau())
	}
	if ix.Postings() == 0 {
		t.Errorf("no postings after %d adds", ix.Len())
	}
	sortScored(all)
	want := JaccardJoin(mkRecords(texts), 0.3)
	if !reflect.DeepEqual(all, want) {
		t.Errorf("incremental = %v, want %v", all, want)
	}
}

func TestIncrementalIndexEmptyText(t *testing.T) {
	ix := NewIncrementalIndex(0.0)
	if got := ix.Add(""); len(got) != 0 {
		t.Errorf("empty record paired: %v", got)
	}
	if got := ix.Add("a b"); len(got) != 0 {
		t.Errorf("record paired with empty predecessor: %v", got)
	}
	if got := ix.Add(""); len(got) != 0 {
		t.Errorf("second empty record paired: %v", got)
	}
	if ix.Len() != 3 {
		t.Errorf("Len = %d, want 3 (empty records still consume ids)", ix.Len())
	}
}

// TestIncrementalIndexEachEmissionLocal pins the per-call contract: every
// pair an Add returns has the new record as its Hi side, with an exact
// score above tau.
func TestIncrementalIndexEachEmissionLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vocab := []string{"a", "b", "c", "d", "e", "f"}
	ix := NewIncrementalIndex(0.25)
	for i := 0; i < 40; i++ {
		text := ""
		for w := 0; w < 1+rng.Intn(5); w++ {
			text += vocab[rng.Intn(len(vocab))] + " "
		}
		for _, sp := range ix.Add(text) {
			if int(sp.Pair.Hi) != i {
				t.Fatalf("add %d emitted pair %v not incident to the new record", i, sp.Pair)
			}
			if sp.Score <= 0.25 {
				t.Fatalf("add %d emitted pair %v at score %v ≤ tau", i, sp.Pair, sp.Score)
			}
			want := similarity.Jaccard(text, textOf(t, ix, int(sp.Pair.Lo)))
			if sp.Score != want {
				t.Fatalf("add %d pair %v score %v, exact %v", i, sp.Pair, sp.Score, want)
			}
		}
	}
}

// textOf reconstructs a canonical text for the indexed record from its
// stored tokens — enough for an exact Jaccard recheck, since tokenizing
// is idempotent on space-joined sorted tokens.
func textOf(t *testing.T, ix *IncrementalIndex, id int) string {
	t.Helper()
	text := ""
	for _, tok := range ix.tokens[id] {
		text += tok + " "
	}
	return text
}

// Property: for random record streams, the union of pairs emitted across
// all Adds equals the batch JaccardJoin over the full set — same pairs,
// same scores — across seeds and thresholds including tau = 0.
func TestIncrementalMatchesBatch(t *testing.T) {
	vocab := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	taus := []float64{0, 0.1, 0.3, 0.5, 0.8}
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		texts := make([]string, n)
		for i := range texts {
			k := 1 + rng.Intn(6)
			text := ""
			for w := 0; w < k; w++ {
				text += vocab[rng.Intn(len(vocab))] + " "
			}
			texts[i] = text
		}
		// A sprinkling of empty records exercises the zero-token path.
		if n > 4 {
			texts[rng.Intn(n)] = ""
		}
		tau := taus[rng.Intn(len(taus))]

		ix := NewIncrementalIndex(tau)
		var got []ScoredPair
		for _, s := range texts {
			got = append(got, ix.Add(s)...)
		}
		sortScored(got)
		want := JaccardJoin(mkRecords(texts), tau)
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d tau %v: incremental union differs from batch:\n got %v\nwant %v",
				seed, tau, got, want)
		}
	}
}
