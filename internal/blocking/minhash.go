package blocking

import (
	"hash/fnv"

	"acd/internal/record"
	"acd/internal/similarity"
)

// MinHash + LSH candidate generation: an alternative to the exact
// prefix-filtered join for corpora too large to index exactly. Records
// are summarized as MinHash signatures (bands × rows hash minima);
// records colliding in any band become candidates and are then verified
// with the exact Jaccard score, so the output has perfect precision and
// probabilistic recall 1 − (1 − s^rows)^bands for a pair of true
// similarity s.

// MinHashConfig parameterizes the signature and banding scheme.
type MinHashConfig struct {
	// Bands and Rows define the LSH scheme; signature length is
	// Bands × Rows. Zero values default to 16 bands × 4 rows, tuned for
	// a τ ≈ 0.3 threshold (collision probability ≈ 99.5% at s = 0.5,
	// ≈ 74% at s = 0.3).
	Bands int
	Rows  int
	// Seed perturbs the hash family.
	Seed uint64
}

func (c MinHashConfig) withDefaults() MinHashConfig {
	if c.Bands == 0 {
		c.Bands = 16
	}
	if c.Rows == 0 {
		c.Rows = 4
	}
	return c
}

// MinHashJoin returns candidate pairs with exact Jaccard similarity
// above tau, generated via MinHash LSH. Output ordering matches
// JaccardJoin (descending score). Some qualifying pairs may be missed
// (LSH recall is probabilistic); none are spurious.
func MinHashJoin(records []record.Record, tau float64, cfg MinHashConfig) []ScoredPair {
	cfg = cfg.withDefaults()
	k := cfg.Bands * cfg.Rows

	tokens := make([][]string, len(records))
	sigs := make([][]uint64, len(records))
	for i, r := range records {
		tokens[i] = record.SortedTokens(r.Text())
		sigs[i] = minhashSignature(tokens[i], k, cfg.Seed)
	}

	seen := make(map[record.Pair]struct{})
	var out []ScoredPair
	for band := 0; band < cfg.Bands; band++ {
		buckets := make(map[uint64][]int)
		for i, sig := range sigs {
			if sig == nil {
				continue // empty record: no tokens, no candidates
			}
			key := bandKey(sig[band*cfg.Rows:(band+1)*cfg.Rows], uint64(band))
			buckets[key] = append(buckets[key], i)
		}
		for _, ids := range buckets {
			for x := 0; x < len(ids); x++ {
				for y := x + 1; y < len(ids); y++ {
					pair := record.MakePair(record.ID(ids[x]), record.ID(ids[y]))
					if _, dup := seen[pair]; dup {
						continue
					}
					seen[pair] = struct{}{}
					score := similarity.JaccardSorted(tokens[ids[x]], tokens[ids[y]])
					if score > tau {
						out = append(out, ScoredPair{Pair: pair, Score: score})
					}
				}
			}
		}
	}
	sortScored(out)
	return out
}

// minhashSignature computes k hash minima over the token set; nil for
// empty token sets.
func minhashSignature(tokens []string, k int, seed uint64) []uint64 {
	if len(tokens) == 0 {
		return nil
	}
	sig := make([]uint64, k)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for _, t := range tokens {
		base := hashToken(t)
		for i := 0; i < k; i++ {
			// A cheap universal-style family: mix the base hash with a
			// per-function odd multiplier derived from (seed, i).
			h := (base ^ (seed + uint64(i)*0x9e3779b97f4a7c15)) * 0xff51afd7ed558ccd
			h ^= h >> 33
			if h < sig[i] {
				sig[i] = h
			}
		}
	}
	return sig
}

func hashToken(t string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(t))
	return h.Sum64()
}

// bandKey hashes one band's rows into a bucket key.
func bandKey(rows []uint64, band uint64) uint64 {
	h := band*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	for _, r := range rows {
		h ^= r
		h *= 0x100000001b3
		h ^= h >> 29
	}
	return h
}
