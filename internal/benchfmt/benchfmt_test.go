package benchfmt

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writeRaw overwrites path with literal bytes (for corrupt-file cases).
func writeRaw(path, s string) error { return os.WriteFile(path, []byte(s), 0o644) }

const sample = `goos: linux
goarch: amd64
BenchmarkPCPivot-8   	     100	  11939086 ns/op	  152568 B/op	     633 allocs/op
BenchmarkPCPivot-8   	     100	  12060914 ns/op	  152568 B/op	     633 allocs/op
BenchmarkScaleACD-8  	       2	 662308452 ns/op	       3.5 rounds	98478144 B/op	  804382 allocs/op
PASS
`

// TestParseGoBench: repeated runs average, extra b.ReportMetric series
// land in Metrics, order is first-seen.
func TestParseGoBench(t *testing.T) {
	rs, err := ParseGoBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	want := []Result{
		{Name: "BenchmarkPCPivot", Samples: 2, NsPerOp: 12000000, BytesPerOp: 152568, AllocsPerOp: 633},
		{Name: "BenchmarkScaleACD", Samples: 1, NsPerOp: 662308452, BytesPerOp: 98478144, AllocsPerOp: 804382,
			Metrics: map[string]float64{"rounds": 3.5}},
	}
	if !reflect.DeepEqual(rs, want) {
		t.Errorf("parse:\n got %+v\nwant %+v", rs, want)
	}
}

// TestRoundTrip: Set + Write + Read reproduce the document exactly, and
// a second label merges without disturbing the first.
func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_T.json")
	doc, err := Read(path) // missing file = empty doc
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Labels) != 0 {
		t.Fatalf("fresh doc has labels: %v", doc.Labels)
	}
	first := []Result{{Name: "Load/baseline/records", Samples: 1, NsPerOp: 1.5e6,
		Metrics: map[string]float64{"ops/s": 1234.5, "p99_ms": 9.25}}}
	doc.Set("baseline-1shard", first)
	if err := doc.Write(path); err != nil {
		t.Fatal(err)
	}

	again, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Labels["baseline-1shard"], first) {
		t.Errorf("round trip:\n got %+v\nwant %+v", again.Labels["baseline-1shard"], first)
	}
	if again.Go == "" || again.GOMAXPROCS == 0 {
		t.Errorf("environment not stamped: %q/%d", again.Go, again.GOMAXPROCS)
	}

	second := []Result{{Name: "Load/baseline/records", Samples: 1, NsPerOp: 2.5e6}}
	again.Set("baseline-4shard", second)
	if err := again.Write(path); err != nil {
		t.Fatal(err)
	}
	merged, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Labels["baseline-1shard"], first) ||
		!reflect.DeepEqual(merged.Labels["baseline-4shard"], second) {
		t.Errorf("merge disturbed labels: %+v", merged.Labels)
	}
}

// TestReadCorrupt: a present-but-broken file errors instead of being
// silently replaced.
func TestReadCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := (&Document{}).Write(path); err != nil {
		t.Fatal(err)
	}
	if err := writeRaw(path, "{nope"); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Error("corrupt file read without error")
	}
}

// TestCompare renders a pre/post table.
func TestCompare(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_T.json")
	doc := &Document{}
	doc.Set("pre", []Result{{Name: "BenchmarkX", NsPerOp: 100, AllocsPerOp: 10}})
	doc.Set("post", []Result{{Name: "BenchmarkX", NsPerOp: 50, AllocsPerOp: 5}})
	if err := doc.Write(path); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Compare(path, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "| X | 100 | 50 | 2.00x | 10 | 5 | 2.0x |") {
		t.Errorf("comparison table wrong:\n%s", sb.String())
	}
	// Compare without both labels is an error.
	doc2 := &Document{}
	doc2.Set("pre", nil)
	if err := doc2.Write(path); err != nil {
		t.Fatal(err)
	}
	if err := Compare(path, &sb); err == nil {
		t.Error("compare without post label did not error")
	}
}
