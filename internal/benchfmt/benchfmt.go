// Package benchfmt is the shared schema of the repo's committed
// benchmark-trajectory files (BENCH_N.json). Two producers write it:
// the benchjson tool parses `go test -bench` text (BENCH_3/BENCH_6),
// and the acdload workload generator converts its scenario reports
// (BENCH_7) — both land in the same Document so the performance
// trajectory reads uniformly from the microbenchmarks up to the
// serving layer.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's averaged measurements.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// (for scenario reports: "Load/<scenario>/<endpoint>").
	Name string `json:"name"`
	// Samples is how many runs were averaged (the -count value; 1 for
	// scenario reports, which average internally).
	Samples int `json:"samples"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the standard testing
	// measurements (B/op and allocs/op require -benchmem). Scenario
	// reports store the mean request latency in NsPerOp and leave the
	// allocation columns zero.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds any extra series (unit -> value): b.ReportMetric
	// output for go-bench results; throughput and latency percentiles
	// ("ops/s", "p50_ms", "p99_ms", ...) for scenario reports.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Document is the schema of a BENCH_N.json file: one result list per
// label ("pre", "post", "baseline-4shard", ...), plus the recording
// environment.
type Document struct {
	// Go is the toolchain that produced the numbers.
	Go string `json:"go"`
	// GOMAXPROCS is the parallelism the benchmarks ran with.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Labels maps a label to its benchmark results.
	Labels map[string][]Result `json:"labels"`
}

// Read loads a document from path. A missing file yields an empty
// document (so the first merge of a trajectory file needs no special
// case); a present-but-corrupt file is an error.
func Read(path string) (*Document, error) {
	doc := &Document{Labels: map[string][]Result{}}
	raw, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return doc, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(raw, doc); err != nil {
		return nil, fmt.Errorf("corrupt %s: %w", path, err)
	}
	if doc.Labels == nil {
		doc.Labels = map[string][]Result{}
	}
	return doc, nil
}

// Set stores results under a label, replacing any previous list, and
// stamps the document with the current toolchain environment.
func (d *Document) Set(label string, results []Result) {
	d.Go = runtime.Version()
	d.GOMAXPROCS = runtime.GOMAXPROCS(0)
	if d.Labels == nil {
		d.Labels = map[string][]Result{}
	}
	d.Labels[label] = results
}

// Write marshals the document to path with a trailing newline.
func (d *Document) Write(path string) error {
	enc, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// ParseGoBench reads `go test -bench` output and returns per-name
// averaged results in first-seen order (repeated -count runs of one
// benchmark are averaged and the sample count recorded).
func ParseGoBench(r io.Reader) ([]Result, error) {
	type acc struct {
		Result
		order int
	}
	byName := map[string]*acc{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		a, ok := byName[name]
		if !ok {
			a = &acc{Result: Result{Name: name}, order: len(byName)}
			byName[name] = a
		}
		a.Samples++
		// The tail is a sequence of "<value> <unit>" measurement pairs.
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", sc.Text(), fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				a.NsPerOp += v
			case "B/op":
				a.BytesPerOp += v
			case "allocs/op":
				a.AllocsPerOp += v
			default:
				if a.Metrics == nil {
					a.Metrics = map[string]float64{}
				}
				a.Metrics[unit] += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	accs := make([]*acc, 0, len(byName))
	for _, a := range byName {
		accs = append(accs, a)
	}
	sort.Slice(accs, func(i, j int) bool { return accs[i].order < accs[j].order })
	out := make([]Result, 0, len(accs))
	for _, a := range accs {
		n := float64(a.Samples)
		a.NsPerOp /= n
		a.BytesPerOp /= n
		a.AllocsPerOp /= n
		for k := range a.Metrics {
			a.Metrics[k] /= n
		}
		out = append(out, a.Result)
	}
	return out, nil
}

// Compare renders the "pre" and "post" labels of the document at path
// as a markdown table with speedup and allocation-reduction ratios.
func Compare(path string, w io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return err
	}
	pre, post := doc.Labels["pre"], doc.Labels["post"]
	if pre == nil || post == nil {
		return fmt.Errorf("%s: need both \"pre\" and \"post\" labels", path)
	}
	postBy := make(map[string]Result, len(post))
	for _, r := range post {
		postBy[r.Name] = r
	}
	fmt.Fprintln(w, "| benchmark | ns/op (pre) | ns/op (post) | speedup | allocs/op (pre) | allocs/op (post) | alloc reduction |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|")
	for _, p := range pre {
		q, ok := postBy[p.Name]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "| %s | %.0f | %.0f | %.2fx | %.0f | %.0f | %.1fx |\n",
			strings.TrimPrefix(p.Name, "Benchmark"),
			p.NsPerOp, q.NsPerOp, ratio(p.NsPerOp, q.NsPerOp),
			p.AllocsPerOp, q.AllocsPerOp, ratio(p.AllocsPerOp, q.AllocsPerOp))
	}
	return nil
}

// ratio returns a/b guarded against division by zero.
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
