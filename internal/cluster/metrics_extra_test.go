package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"acd/internal/record"
)

func TestARIPerfectAndDegenerate(t *testing.T) {
	entity := []int{0, 0, 1, 1, 2}
	perfect := MustFromSets(5, [][]record.ID{{0, 1}, {2, 3}, {4}})
	if got := AdjustedRandIndex(perfect, entity); math.Abs(got-1) > 1e-9 {
		t.Errorf("perfect ARI = %v", got)
	}
	// Single record.
	if got := AdjustedRandIndex(NewSingletons(1), []int{0}); got != 1 {
		t.Errorf("single-record ARI = %v", got)
	}
	// Identical all-singleton partitions (degenerate maxIndex == expected).
	if got := AdjustedRandIndex(NewSingletons(4), []int{0, 1, 2, 3}); got != 1 {
		t.Errorf("all-singleton identical ARI = %v", got)
	}
}

func TestARIKnownValue(t *testing.T) {
	// Classic example: entity = {0,0,0,1,1,1}, clustering
	// {0,1},{2,3},{4,5}. Contingency rows: each cluster has one pair
	// either within one entity or crossing.
	entity := []int{0, 0, 0, 1, 1, 1}
	c := MustFromSets(6, [][]record.ID{{0, 1}, {2, 3}, {4, 5}})
	// sumComb = C(2,2)+ (1,1 split → 0) + C(2,2) = 1+0+1 = 2
	// sumA = 3·C(2,2) = 3; sumB = 2·C(3,2) = 6; total = C(6,2) = 15.
	// expected = 3·6/15 = 1.2; max = 4.5; ARI = (2−1.2)/(4.5−1.2) = 0.2424...
	want := (2.0 - 1.2) / (4.5 - 1.2)
	if got := AdjustedRandIndex(c, entity); math.Abs(got-want) > 1e-9 {
		t.Errorf("ARI = %v, want %v", got, want)
	}
}

func TestARIRandomIsNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 2000
	entity := make([]int, n)
	for i := range entity {
		entity[i] = rng.Intn(100)
	}
	sets := make([][]record.ID, 100)
	for i := 0; i < n; i++ {
		k := rng.Intn(100)
		sets[k] = append(sets[k], record.ID(i))
	}
	var nonEmpty [][]record.ID
	for _, s := range sets {
		if len(s) > 0 {
			nonEmpty = append(nonEmpty, s)
		}
	}
	c := MustFromSets(n, nonEmpty)
	if got := AdjustedRandIndex(c, entity); math.Abs(got) > 0.02 {
		t.Errorf("random-clustering ARI = %v, want ≈ 0", got)
	}
}

func TestPurityAndInversePurity(t *testing.T) {
	entity := []int{0, 0, 1, 1}
	// One big cluster: purity = max entity share = 0.5; inverse = 1.
	big := MustFromSets(4, [][]record.ID{{0, 1, 2, 3}})
	if got := Purity(big, entity); got != 0.5 {
		t.Errorf("purity = %v", got)
	}
	if got := InversePurity(big, entity); got != 1 {
		t.Errorf("inverse purity = %v", got)
	}
	// Singletons: purity 1, inverse purity 0.5.
	single := NewSingletons(4)
	if got := Purity(single, entity); got != 1 {
		t.Errorf("singleton purity = %v", got)
	}
	if got := InversePurity(single, entity); got != 0.5 {
		t.Errorf("singleton inverse purity = %v", got)
	}
}

func TestClusterF1(t *testing.T) {
	entity := []int{0, 0, 1, 1, 2}
	perfect := MustFromSets(5, [][]record.ID{{0, 1}, {2, 3}, {4}})
	p, r, f1 := ClusterF1(perfect, entity)
	if p != 1 || r != 1 || f1 != 1 {
		t.Errorf("perfect ClusterF1 = %v/%v/%v", p, r, f1)
	}
	// One record misplaced: clusters {0,1,4} and {2,3} — only {2,3}
	// matches an entity exactly: precision 1/3 (singleton {} no...).
	off := MustFromSets(5, [][]record.ID{{0, 1, 4}, {2, 3}})
	p, r, _ = ClusterF1(off, entity)
	if math.Abs(p-0.5) > 1e-9 { // 1 of 2 clusters exact
		t.Errorf("precision = %v, want 0.5", p)
	}
	if math.Abs(r-1.0/3) > 1e-9 { // 1 of 3 entities matched
		t.Errorf("recall = %v, want 1/3", r)
	}
}

// Property: all extra metrics stay within their ranges and agree with
// Evaluate on perfect clusterings, across random instances.
func TestExtraMetricsProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		entity := make([]int, n)
		for i := range entity {
			entity[i] = rng.Intn(n/2 + 1)
		}
		c := randomClustering(rng, n)
		ari := AdjustedRandIndex(c, entity)
		pur := Purity(c, entity)
		inv := InversePurity(c, entity)
		if ari < -1-1e-9 || ari > 1+1e-9 {
			return false
		}
		if pur < 0 || pur > 1 || inv < 0 || inv > 1 {
			return false
		}
		p, r, f1 := ClusterF1(c, entity)
		if p < 0 || p > 1 || r < 0 || r > 1 || f1 < 0 || f1 > 1 {
			return false
		}
		// Perfect clustering scores 1 everywhere.
		byEnt := map[int][]record.ID{}
		for i, e := range entity {
			byEnt[e] = append(byEnt[e], record.ID(i))
		}
		var sets [][]record.ID
		for _, s := range byEnt {
			sets = append(sets, s)
		}
		perfect := MustFromSets(n, sets)
		if AdjustedRandIndex(perfect, entity) < 1-1e-9 {
			return false
		}
		if Purity(perfect, entity) != 1 || InversePurity(perfect, entity) != 1 {
			return false
		}
		_, _, pf1 := ClusterF1(perfect, entity)
		return pf1 == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
