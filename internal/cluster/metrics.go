package cluster

import "acd/internal/record"

// Scores holds a similarity score per record pair. Pairs absent from the
// map have score 0, matching the paper's convention that f_c(r_i, r_j) = 0
// for pairs eliminated in the pruning phase (Section 3).
type Scores map[record.Pair]float64

// Get returns the score of a pair, 0 when unknown/pruned.
func (s Scores) Get(p record.Pair) float64 { return s[p] }

// Lambda computes the correlation-clustering cost of Equations 1–2:
//
//	Λ = Σ_{i<j} x_ij·(1 − f(i,j)) + (1 − x_ij)·f(i,j)
//
// where x_ij = 1 iff i and j are co-clustered. Pairs not present in
// scores contribute 1 when co-clustered and 0 otherwise, so the sum is
// computed in O(|scores| + Σ|C_k|) rather than O(n²): every co-clustered
// pair contributes 1 − f, every cut pair contributes f, and f = 0 for all
// absent pairs.
func Lambda(c *Clustering, scores Scores) float64 {
	// Start from the assumption that every co-clustered pair has f = 0
	// (contributing 1 each) and every cut pair contributes 0.
	total := 0.0
	for _, idx := range c.ClusterIndices() {
		s := float64(c.Size(idx))
		total += s * (s - 1) / 2
	}
	// Correct for the pairs whose scores are known.
	for p, f := range scores {
		if c.Same(p.Lo, p.Hi) {
			total -= f // 1 − f instead of 1
		} else {
			total += f // f instead of 0
		}
	}
	return total
}

// PRF1 holds pairwise precision, recall and F1 of a clustering against
// ground truth.
type PRF1 struct {
	Precision float64
	Recall    float64
	F1        float64
}

// Evaluate computes pairwise precision/recall/F1 of clustering c against
// the ground-truth entity labels (entity[r] is the true entity of record
// r). A pair counts as predicted-positive when co-clustered and as
// actual-positive when its records share an entity. Following Section 6.1
// of the paper ("we use the F1-measure to gauge the deduplication
// accuracy"), this is the standard pairwise variant used by [46, 47].
//
// The counts are computed in O(n + Σ cluster-entity group sizes) by
// grouping each cluster's members by entity, never materializing pairs.
func Evaluate(c *Clustering, entity []int) PRF1 {
	pairs2 := func(k int) float64 { return float64(k) * float64(k-1) / 2 }

	var predicted, actual, correct float64

	// Actual positives: pairs within each ground-truth entity.
	entSize := make(map[int]int)
	for _, e := range entity {
		entSize[e]++
	}
	for _, k := range entSize {
		actual += pairs2(k)
	}

	// Predicted positives and true positives per cluster.
	for _, idx := range c.ClusterIndices() {
		members := c.Members(idx)
		predicted += pairs2(len(members))
		byEnt := make(map[int]int)
		for _, r := range members {
			byEnt[entity[r]]++
		}
		for _, k := range byEnt {
			correct += pairs2(k)
		}
	}

	var res PRF1
	if predicted > 0 {
		res.Precision = correct / predicted
	} else if actual == 0 {
		res.Precision = 1
	}
	if actual > 0 {
		res.Recall = correct / actual
	} else {
		res.Recall = 1
	}
	if res.Precision+res.Recall > 0 {
		res.F1 = 2 * res.Precision * res.Recall / (res.Precision + res.Recall)
	}
	return res
}
