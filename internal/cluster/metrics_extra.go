package cluster

import "acd/internal/record"

// Additional clustering-quality metrics from the duplicate-detection
// evaluation framework of Hassanzadeh et al. [27], complementing the
// pairwise F1 the paper reports: the adjusted Rand index, purity /
// inverse purity, and cluster-level (closest-cluster) F1. The experiment
// harness reports pairwise F1 only (matching the paper), but the extra
// metrics are exposed for downstream users and exercised by the test
// suite.

// AdjustedRandIndex computes the ARI of clustering c against ground
// truth entity labels: the Rand index corrected for chance agreement.
// 1 means identical partitions, 0 means chance-level agreement; negative
// values mean worse than chance. A single-record universe scores 1.
func AdjustedRandIndex(c *Clustering, entity []int) float64 {
	n := len(entity)
	if n < 2 {
		return 1
	}
	pairs2 := func(k int) float64 { return float64(k) * float64(k-1) / 2 }

	// Contingency counts: cluster × entity.
	var sumComb float64 // Σ_ij C(n_ij, 2)
	var sumA float64    // Σ_i C(a_i, 2) over clusters
	var sumB float64    // Σ_j C(b_j, 2) over entities

	entSize := make(map[int]int)
	for _, e := range entity {
		entSize[e]++
	}
	for _, k := range entSize {
		sumB += pairs2(k)
	}
	for _, idx := range c.ClusterIndices() {
		members := c.Members(idx)
		sumA += pairs2(len(members))
		byEnt := make(map[int]int)
		for _, r := range members {
			byEnt[entity[r]]++
		}
		for _, k := range byEnt {
			sumComb += pairs2(k)
		}
	}
	total := pairs2(n)
	expected := sumA * sumB / total
	maxIndex := (sumA + sumB) / 2
	if maxIndex == expected {
		// Degenerate: both partitions all-singletons or one-cluster in a
		// way that leaves no room for chance correction.
		if sumComb == expected {
			return 1
		}
		return 0
	}
	return (sumComb - expected) / (maxIndex - expected)
}

// Purity returns the fraction of records whose cluster's majority entity
// matches their own — the precision-flavored cluster metric. All
// singletons give purity 1.
func Purity(c *Clustering, entity []int) float64 {
	n := len(entity)
	if n == 0 {
		return 1
	}
	correct := 0
	for _, idx := range c.ClusterIndices() {
		byEnt := make(map[int]int)
		for _, r := range c.Members(idx) {
			byEnt[entity[r]]++
		}
		max := 0
		for _, k := range byEnt {
			if k > max {
				max = k
			}
		}
		correct += max
	}
	return float64(correct) / float64(n)
}

// InversePurity returns purity computed the other way around: the
// fraction of records whose entity's majority cluster matches their own
// cluster — the recall-flavored counterpart (one big cluster gives 1).
func InversePurity(c *Clustering, entity []int) float64 {
	n := len(entity)
	if n == 0 {
		return 1
	}
	byEnt := make(map[int]map[int]int) // entity -> cluster -> count
	for r, e := range entity {
		if byEnt[e] == nil {
			byEnt[e] = make(map[int]int)
		}
		byEnt[e][c.Assignment(record.ID(r))]++
	}
	correct := 0
	for _, clusters := range byEnt {
		max := 0
		for _, k := range clusters {
			if k > max {
				max = k
			}
		}
		correct += max
	}
	return float64(correct) / float64(n)
}

// ClusterF1 computes the cluster-level (closest-cluster) F1 of [27]:
// precision is the fraction of predicted clusters that exactly equal
// some ground-truth entity's record set; recall is the fraction of
// entities whose record set is exactly some predicted cluster; F1 is
// their harmonic mean. It is a much stricter metric than pairwise F1 —
// a cluster missing one record counts as fully wrong.
func ClusterF1(c *Clustering, entity []int) (precision, recall, f1 float64) {
	// Fingerprint ground-truth entities by sorted member lists.
	entMembers := make(map[int][]int)
	for r, e := range entity {
		entMembers[e] = append(entMembers[e], r)
	}
	truthSet := make(map[string]struct{}, len(entMembers))
	for _, members := range entMembers {
		truthSet[fingerprint(members)] = struct{}{}
	}

	exact := 0
	clusters := c.ClusterIndices()
	for _, idx := range clusters {
		members := make([]int, 0, c.Size(idx))
		for _, r := range c.Members(idx) {
			members = append(members, int(r))
		}
		if _, ok := truthSet[fingerprint(members)]; ok {
			exact++
		}
	}
	if len(clusters) > 0 {
		precision = float64(exact) / float64(len(clusters))
	}
	if len(entMembers) > 0 {
		recall = float64(exact) / float64(len(entMembers))
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}

// fingerprint canonicalizes a member list (sorted, delimiter-joined).
func fingerprint(members []int) string {
	s := append([]int(nil), members...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	out := make([]byte, 0, len(s)*4)
	for _, m := range s {
		out = appendInt(out, m)
		out = append(out, ',')
	}
	return string(out)
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}
