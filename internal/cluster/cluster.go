package cluster

import (
	"fmt"
	"sort"

	"acd/internal/record"
)

// Clustering is a partition of the dense record universe 0..n-1 into
// disjoint clusters. Cluster indices are stable across Split and Merge
// operations; emptied clusters remain as tombstones until Compact is
// called. Use Assignment to map a record to its current cluster.
type Clustering struct {
	assign   []int         // record -> cluster index, -1 if unassigned
	clusters [][]record.ID // cluster index -> members (unordered)
	sizes    []int         // cluster index -> live size
	nonEmpty int           // count of clusters with size > 0
}

// NewSingletons returns the clustering where every record is alone.
func NewSingletons(n int) *Clustering {
	c := &Clustering{
		assign:   make([]int, n),
		clusters: make([][]record.ID, n),
		sizes:    make([]int, n),
	}
	for i := 0; i < n; i++ {
		c.assign[i] = i
		c.clusters[i] = []record.ID{record.ID(i)}
		c.sizes[i] = 1
	}
	c.nonEmpty = n
	return c
}

// FromSets builds a clustering of 0..n-1 from explicit member sets. Every
// record must appear in exactly one set; FromSets returns an error
// otherwise.
func FromSets(n int, sets [][]record.ID) (*Clustering, error) {
	c := &Clustering{
		assign: make([]int, n),
	}
	for i := range c.assign {
		c.assign[i] = -1
	}
	for _, set := range sets {
		idx := len(c.clusters)
		members := make([]record.ID, 0, len(set))
		for _, r := range set {
			if r < 0 || int(r) >= n {
				return nil, fmt.Errorf("cluster: record %d out of range [0,%d)", r, n)
			}
			if c.assign[r] != -1 {
				return nil, fmt.Errorf("cluster: record %d assigned twice", r)
			}
			c.assign[r] = idx
			members = append(members, r)
		}
		c.clusters = append(c.clusters, members)
		c.sizes = append(c.sizes, len(members))
		if len(members) > 0 {
			c.nonEmpty++
		}
	}
	for r, a := range c.assign {
		if a == -1 {
			return nil, fmt.Errorf("cluster: record %d unassigned", r)
		}
	}
	return c, nil
}

// MustFromSets is FromSets that panics on error; for tests and literals.
func MustFromSets(n int, sets [][]record.ID) *Clustering {
	c, err := FromSets(n, sets)
	if err != nil {
		panic(err)
	}
	return c
}

// Len returns the number of records in the universe.
func (c *Clustering) Len() int { return len(c.assign) }

// NumClusters returns the number of non-empty clusters. It is O(1): the
// count is maintained incrementally through Split, Merge and Compact, so
// per-batch budget computations in the refinement phase do not rescan
// every cluster slot.
func (c *Clustering) NumClusters() int { return c.nonEmpty }

// Assignment returns the cluster index of record r.
func (c *Clustering) Assignment(r record.ID) int { return c.assign[r] }

// Members returns the live members of cluster idx. The returned slice
// must not be modified.
func (c *Clustering) Members(idx int) []record.ID { return c.clusters[idx] }

// Size returns the number of records in cluster idx.
func (c *Clustering) Size(idx int) int { return c.sizes[idx] }

// Same reports whether two records are currently co-clustered.
func (c *Clustering) Same(a, b record.ID) bool { return c.assign[a] == c.assign[b] }

// Split removes record r from its cluster and places it in a fresh
// singleton cluster, returning the new cluster's index. Splitting a
// record that is already a singleton still allocates a new cluster.
func (c *Clustering) Split(r record.ID) int {
	old := c.assign[r]
	members := c.clusters[old]
	for i, m := range members {
		if m == r {
			members[i] = members[len(members)-1]
			c.clusters[old] = members[:len(members)-1]
			break
		}
	}
	c.sizes[old]--
	if c.sizes[old] == 0 {
		c.nonEmpty--
	}
	idx := len(c.clusters)
	c.clusters = append(c.clusters, []record.ID{r})
	c.sizes = append(c.sizes, 1)
	c.nonEmpty++
	c.assign[r] = idx
	return idx
}

// Merge combines clusters a and b, keeping index a and emptying b. It
// panics if a == b or either cluster is empty.
func (c *Clustering) Merge(a, b int) {
	if a == b {
		panic("cluster: merging a cluster with itself")
	}
	if c.sizes[a] == 0 || c.sizes[b] == 0 {
		panic("cluster: merging an empty cluster")
	}
	for _, r := range c.clusters[b] {
		c.assign[r] = a
	}
	c.clusters[a] = append(c.clusters[a], c.clusters[b]...)
	c.sizes[a] += c.sizes[b]
	c.clusters[b] = nil
	c.sizes[b] = 0
	c.nonEmpty--
}

// Sets returns the non-empty clusters as sorted member slices, themselves
// ordered by smallest member. The result is independent of internal
// cluster indices, so two logically equal clusterings produce equal Sets.
func (c *Clustering) Sets() [][]record.ID {
	out := make([][]record.ID, 0, len(c.clusters))
	for _, members := range c.clusters {
		if len(members) == 0 {
			continue
		}
		s := make([]record.ID, len(members))
		copy(s, members)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Equal reports whether two clusterings induce the same partition.
func Equal(a, b *Clustering) bool {
	if a.Len() != b.Len() {
		return false
	}
	as, bs := a.Sets(), b.Sets()
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if len(as[i]) != len(bs[i]) {
			return false
		}
		for j := range as[i] {
			if as[i][j] != bs[i][j] {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy of the clustering.
func (c *Clustering) Clone() *Clustering {
	cp := &Clustering{
		assign:   append([]int(nil), c.assign...),
		clusters: make([][]record.ID, len(c.clusters)),
		sizes:    append([]int(nil), c.sizes...),
		nonEmpty: c.nonEmpty,
	}
	for i, m := range c.clusters {
		if m != nil {
			cp.clusters[i] = append([]record.ID(nil), m...)
		}
	}
	return cp
}

// Compact renumbers clusters to remove tombstones left by Merge/Split.
func (c *Clustering) Compact() {
	newClusters := c.clusters[:0]
	newSizes := c.sizes[:0]
	for _, members := range c.clusters {
		if len(members) == 0 {
			continue
		}
		idx := len(newClusters)
		for _, r := range members {
			c.assign[r] = idx
		}
		newClusters = append(newClusters, members)
		newSizes = append(newSizes, len(members))
	}
	c.clusters = newClusters
	c.sizes = newSizes
	c.nonEmpty = len(newClusters)
}

// ClusterIndices returns the indices of all non-empty clusters.
func (c *Clustering) ClusterIndices() []int {
	out := make([]int, 0, len(c.clusters))
	for i, s := range c.sizes {
		if s > 0 {
			out = append(out, i)
		}
	}
	return out
}
