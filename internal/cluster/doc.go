// Package cluster defines clusterings (disjoint covers of a record set),
// the correlation-clustering objective Λ(R) from Equations 1–2 of the
// paper, and the evaluation metrics used in Section 6.
//
// Paper artifacts:
//
//   - Clustering — a partition of the record universe with the
//     Split/Merge mutations the refinement phase applies (Section 5.1).
//   - Lambda — Λ(R), Equations 1–2: the weighted pair disagreements a
//     clustering has with the (crowd) scores, the objective Crowd-Pivot
//     5-approximates and refinement further reduces.
//   - Evaluate — pairwise precision, recall and F1 (Section 6.1,
//     "Evaluation Metrics").
//   - AdjustedRandIndex, Purity, InversePurity, ClusterF1 — the extra
//     clustering-quality metrics the ablations report.
package cluster
