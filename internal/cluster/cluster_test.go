package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"acd/internal/record"
)

func TestNewSingletons(t *testing.T) {
	c := NewSingletons(4)
	if c.Len() != 4 || c.NumClusters() != 4 {
		t.Fatalf("singletons: len=%d clusters=%d", c.Len(), c.NumClusters())
	}
	for i := 0; i < 4; i++ {
		if c.Size(c.Assignment(record.ID(i))) != 1 {
			t.Errorf("record %d not in singleton", i)
		}
	}
}

func TestFromSetsValidation(t *testing.T) {
	if _, err := FromSets(3, [][]record.ID{{0, 1}, {2}}); err != nil {
		t.Errorf("valid sets rejected: %v", err)
	}
	if _, err := FromSets(3, [][]record.ID{{0, 1}}); err == nil {
		t.Errorf("missing record accepted")
	}
	if _, err := FromSets(3, [][]record.ID{{0, 1}, {1, 2}}); err == nil {
		t.Errorf("duplicate record accepted")
	}
	if _, err := FromSets(3, [][]record.ID{{0, 1}, {2, 5}}); err == nil {
		t.Errorf("out-of-range record accepted")
	}
}

func TestSplitMerge(t *testing.T) {
	c := MustFromSets(5, [][]record.ID{{0, 1, 2}, {3, 4}})
	if !c.Same(0, 2) || c.Same(2, 3) {
		t.Fatalf("initial Same wrong")
	}
	idx := c.Split(2)
	if c.Same(0, 2) {
		t.Errorf("split record still co-clustered")
	}
	if c.Size(idx) != 1 || c.Members(idx)[0] != 2 {
		t.Errorf("split cluster malformed")
	}
	c.Merge(idx, c.Assignment(3))
	if !c.Same(2, 3) || !c.Same(2, 4) {
		t.Errorf("merge failed")
	}
	if c.NumClusters() != 2 {
		t.Errorf("NumClusters = %d, want 2", c.NumClusters())
	}
	c.Compact()
	if got := len(c.ClusterIndices()); got != 2 {
		t.Errorf("after compact: %d clusters", got)
	}
	// Assignments still consistent after compact.
	for r := record.ID(0); r < 5; r++ {
		found := false
		for _, m := range c.Members(c.Assignment(r)) {
			if m == r {
				found = true
			}
		}
		if !found {
			t.Errorf("record %d lost after compact", r)
		}
	}
}

func TestMergePanics(t *testing.T) {
	c := NewSingletons(3)
	for _, fn := range []func(){
		func() { c.Merge(0, 0) },
		func() { c2 := NewSingletons(3); c2.Merge(0, 1); c2.Merge(2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestEqualAndClone(t *testing.T) {
	a := MustFromSets(4, [][]record.ID{{0, 1}, {2, 3}})
	b := MustFromSets(4, [][]record.ID{{2, 3}, {1, 0}})
	if !Equal(a, b) {
		t.Errorf("logically equal clusterings reported unequal")
	}
	cp := a.Clone()
	cp.Split(1)
	if Equal(a, cp) {
		t.Errorf("clone mutation affected original or Equal wrong")
	}
	if !Equal(a, MustFromSets(4, [][]record.ID{{0, 1}, {2, 3}})) {
		t.Errorf("original mutated by clone")
	}
}

// table2Scores returns the similarity scores of Table 2 / Example 1 with
// records a..f mapped to IDs 0..5.
func table2Scores() Scores {
	s := Scores{}
	add := func(a, b record.ID, f float64) { s[record.MakePair(a, b)] = f }
	add(0, 1, 0.81) // (a,b)
	add(1, 2, 0.75) // (b,c)
	add(0, 2, 0.73) // (a,c)
	add(3, 4, 0.72) // (d,e)
	add(3, 5, 0.70) // (d,f)
	add(4, 5, 0.69) // (e,f)
	add(2, 3, 0.45) // (c,d)
	add(0, 3, 0.43) // (a,d)
	add(0, 4, 0.37) // (a,e)
	return s
}

// partitions enumerates every partition of 0..n-1 (Bell-number many).
func partitions(n int) [][][]record.ID {
	var out [][][]record.ID
	var rec func(i int, cur [][]record.ID)
	rec = func(i int, cur [][]record.ID) {
		if i == n {
			cp := make([][]record.ID, len(cur))
			for k := range cur {
				cp[k] = append([]record.ID(nil), cur[k]...)
			}
			out = append(out, cp)
			return
		}
		for k := range cur {
			cur[k] = append(cur[k], record.ID(i))
			rec(i+1, cur)
			cur[k] = cur[k][:len(cur[k])-1]
		}
		cur = append(cur, []record.ID{record.ID(i)})
		rec(i+1, cur)
	}
	rec(0, nil)
	return out
}

// TestExample1 verifies the paper's Example 1: over all 203 partitions of
// the six records, Λ(R) is minimized by exactly {a,b,c}, {d,e,f}.
func TestExample1(t *testing.T) {
	scores := table2Scores()
	best := math.Inf(1)
	var bestC *Clustering
	for _, p := range partitions(6) {
		c := MustFromSets(6, p)
		if l := Lambda(c, scores); l < best {
			best = l
			bestC = c
		}
	}
	want := MustFromSets(6, [][]record.ID{{0, 1, 2}, {3, 4, 5}})
	if !Equal(bestC, want) {
		t.Errorf("Λ minimizer = %v, want {a,b,c},{d,e,f}", bestC.Sets())
	}
}

func TestLambdaValues(t *testing.T) {
	scores := table2Scores()
	// All singletons: Λ = sum of all f values.
	c := NewSingletons(6)
	sum := 0.0
	for _, f := range scores {
		sum += f
	}
	if got := Lambda(c, scores); math.Abs(got-sum) > 1e-9 {
		t.Errorf("singleton Λ = %v, want %v", got, sum)
	}
	// One big cluster: Λ = Σ(1 − f) over known pairs + 1 per unknown pair.
	all := MustFromSets(6, [][]record.ID{{0, 1, 2, 3, 4, 5}})
	want := 0.0
	for _, f := range scores {
		want += 1 - f
	}
	want += float64(15 - len(scores)) // 6 unknown pairs at f = 0
	if got := Lambda(all, scores); math.Abs(got-want) > 1e-9 {
		t.Errorf("one-cluster Λ = %v, want %v", got, want)
	}
}

// TestLambdaAgainstBruteForce checks the sparse Λ computation against a
// direct O(n²) evaluation of Equation 1 on random clusterings and scores.
func TestLambdaAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		scores := Scores{}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					scores[record.MakePair(record.ID(i), record.ID(j))] = rng.Float64()
				}
			}
		}
		c := randomClustering(rng, n)
		got := Lambda(c, scores)
		want := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				fij := scores.Get(record.MakePair(record.ID(i), record.ID(j)))
				if c.Same(record.ID(i), record.ID(j)) {
					want += 1 - fij
				} else {
					want += fij
				}
			}
		}
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func randomClustering(rng *rand.Rand, n int) *Clustering {
	k := 1 + rng.Intn(n)
	sets := make([][]record.ID, k)
	for i := 0; i < n; i++ {
		c := rng.Intn(k)
		sets[c] = append(sets[c], record.ID(i))
	}
	var nonEmpty [][]record.ID
	for _, s := range sets {
		if len(s) > 0 {
			nonEmpty = append(nonEmpty, s)
		}
	}
	return MustFromSets(n, nonEmpty)
}

func TestEvaluatePerfect(t *testing.T) {
	entity := []int{0, 0, 1, 1, 2}
	c := MustFromSets(5, [][]record.ID{{0, 1}, {2, 3}, {4}})
	r := Evaluate(c, entity)
	if r.Precision != 1 || r.Recall != 1 || r.F1 != 1 {
		t.Errorf("perfect clustering scored %+v", r)
	}
}

func TestEvaluateMixed(t *testing.T) {
	entity := []int{0, 0, 1, 1}
	// Everything in one cluster: 2 correct pairs of 6 predicted; recall 1.
	c := MustFromSets(4, [][]record.ID{{0, 1, 2, 3}})
	r := Evaluate(c, entity)
	if math.Abs(r.Precision-2.0/6) > 1e-9 || r.Recall != 1 {
		t.Errorf("got %+v", r)
	}
	wantF1 := 2 * (2.0 / 6) * 1 / ((2.0 / 6) + 1)
	if math.Abs(r.F1-wantF1) > 1e-9 {
		t.Errorf("F1 = %v, want %v", r.F1, wantF1)
	}
	// All singletons: no predicted pairs, recall 0.
	r = Evaluate(NewSingletons(4), entity)
	if r.Recall != 0 || r.F1 != 0 {
		t.Errorf("singletons scored %+v", r)
	}
}

func TestEvaluateNoDuplicates(t *testing.T) {
	entity := []int{0, 1, 2}
	r := Evaluate(NewSingletons(3), entity)
	if r.Precision != 1 || r.Recall != 1 || r.F1 != 1 {
		t.Errorf("no-duplicate dataset with singleton clustering scored %+v", r)
	}
}

// TestEvaluateAgainstBruteForce checks the grouped-count implementation
// against direct pair enumeration.
func TestEvaluateAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		entity := make([]int, n)
		for i := range entity {
			entity[i] = rng.Intn(n/2 + 1)
		}
		c := randomClustering(rng, n)
		got := Evaluate(c, entity)
		var pred, act, corr float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				same := c.Same(record.ID(i), record.ID(j))
				truth := entity[i] == entity[j]
				if same {
					pred++
				}
				if truth {
					act++
				}
				if same && truth {
					corr++
				}
			}
		}
		var want PRF1
		if pred > 0 {
			want.Precision = corr / pred
		} else if act == 0 {
			want.Precision = 1
		}
		if act > 0 {
			want.Recall = corr / act
		} else {
			want.Recall = 1
		}
		if want.Precision+want.Recall > 0 {
			want.F1 = 2 * want.Precision * want.Recall / (want.Precision + want.Recall)
		}
		return math.Abs(got.Precision-want.Precision) < 1e-9 &&
			math.Abs(got.Recall-want.Recall) < 1e-9 &&
			math.Abs(got.F1-want.F1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Sets always yields a disjoint cover with sorted members.
func TestSetsPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		c := randomClustering(rng, n)
		// Random walk of splits and merges.
		for k := 0; k < 10; k++ {
			if rng.Intn(2) == 0 {
				c.Split(record.ID(rng.Intn(n)))
			} else {
				idxs := c.ClusterIndices()
				if len(idxs) >= 2 {
					a := idxs[rng.Intn(len(idxs))]
					b := idxs[rng.Intn(len(idxs))]
					if a != b {
						c.Merge(a, b)
					}
				}
			}
		}
		seen := make([]bool, n)
		total := 0
		for _, set := range c.Sets() {
			for i, m := range set {
				if seen[m] {
					return false
				}
				seen[m] = true
				if i > 0 && set[i-1] >= m {
					return false
				}
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
