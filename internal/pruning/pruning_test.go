package pruning

import (
	"testing"

	"acd/internal/cluster"
	"acd/internal/record"
	"acd/internal/similarity"
)

func TestPruneJaccard(t *testing.T) {
	recs := []record.Record{
		record.New(0, map[string]string{"t": "chevrolet camaro sports car"}),
		record.New(1, map[string]string{"t": "chevy camaro sports car"}),
		record.New(2, map[string]string{"t": "chevron gas station"}),
		record.New(3, map[string]string{"t": "quantum physics textbook"}),
	}
	c := Prune(recs, Options{})
	if c.N != 4 {
		t.Fatalf("N = %d", c.N)
	}
	p01 := record.MakePair(0, 1)
	if !c.Contains(p01) {
		t.Fatalf("similar pair (0,1) pruned; candidates: %v", c.Pairs)
	}
	if c.Contains(record.MakePair(0, 3)) {
		t.Errorf("dissimilar pair (0,3) kept")
	}
	if c.Score(p01) <= DefaultTau {
		t.Errorf("candidate score %v not above tau", c.Score(p01))
	}
	if c.Score(record.MakePair(0, 3)) != 0 {
		t.Errorf("pruned pair score should be 0")
	}
	// Descending order.
	for i := 1; i < len(c.Pairs); i++ {
		if c.Pairs[i].Score > c.Pairs[i-1].Score {
			t.Errorf("pairs not in descending score order")
		}
	}
}

func TestPruneCustomMetricAndTau(t *testing.T) {
	recs := []record.Record{
		record.New(0, map[string]string{"t": "abcd"}),
		record.New(1, map[string]string{"t": "abce"}),
		record.New(2, map[string]string{"t": "zzzz"}),
	}
	c := Prune(recs, Options{Tau: 0.7, Metric: similarity.Levenshtein})
	if !c.Contains(record.MakePair(0, 1)) {
		t.Errorf("(0,1) with lev 0.75 should survive tau 0.7")
	}
	if len(c.Pairs) != 1 {
		t.Errorf("expected exactly 1 candidate, got %v", c.Pairs)
	}
}

func TestFromScores(t *testing.T) {
	scores := cluster.Scores{
		record.MakePair(0, 1): 0.9,
		record.MakePair(1, 2): 0.3,
		record.MakePair(0, 2): 0.5,
	}
	c := FromScores(3, scores, 0.3)
	if len(c.Pairs) != 2 {
		t.Fatalf("expected 2 pairs (strict threshold), got %v", c.Pairs)
	}
	if c.Pairs[0].Pair != record.MakePair(0, 1) || c.Pairs[1].Pair != record.MakePair(0, 2) {
		t.Errorf("ordering wrong: %v", c.Pairs)
	}
	if got := c.PairList(); len(got) != 2 || got[0] != record.MakePair(0, 1) {
		t.Errorf("PairList wrong: %v", got)
	}
}
