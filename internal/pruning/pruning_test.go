package pruning

import (
	"math/rand"
	"reflect"
	"testing"

	"acd/internal/cluster"
	"acd/internal/record"
	"acd/internal/similarity"
)

func TestPruneJaccard(t *testing.T) {
	recs := []record.Record{
		record.New(0, map[string]string{"t": "chevrolet camaro sports car"}),
		record.New(1, map[string]string{"t": "chevy camaro sports car"}),
		record.New(2, map[string]string{"t": "chevron gas station"}),
		record.New(3, map[string]string{"t": "quantum physics textbook"}),
	}
	c := Prune(recs, Options{})
	if c.N != 4 {
		t.Fatalf("N = %d", c.N)
	}
	p01 := record.MakePair(0, 1)
	if !c.Contains(p01) {
		t.Fatalf("similar pair (0,1) pruned; candidates: %v", c.Pairs)
	}
	if c.Contains(record.MakePair(0, 3)) {
		t.Errorf("dissimilar pair (0,3) kept")
	}
	if c.Score(p01) <= DefaultTau {
		t.Errorf("candidate score %v not above tau", c.Score(p01))
	}
	if c.Score(record.MakePair(0, 3)) != 0 {
		t.Errorf("pruned pair score should be 0")
	}
	// Descending order.
	for i := 1; i < len(c.Pairs); i++ {
		if c.Pairs[i].Score > c.Pairs[i-1].Score {
			t.Errorf("pairs not in descending score order")
		}
	}
}

func TestPruneCustomMetricAndTau(t *testing.T) {
	recs := []record.Record{
		record.New(0, map[string]string{"t": "abcd"}),
		record.New(1, map[string]string{"t": "abce"}),
		record.New(2, map[string]string{"t": "zzzz"}),
	}
	c := Prune(recs, Options{Tau: 0.7, Metric: similarity.Levenshtein})
	if !c.Contains(record.MakePair(0, 1)) {
		t.Errorf("(0,1) with lev 0.75 should survive tau 0.7")
	}
	if len(c.Pairs) != 1 {
		t.Errorf("expected exactly 1 candidate, got %v", c.Pairs)
	}
}

// TestTauZeroMeanings pins down both readings of Tau == 0: without
// TauSet it is shorthand for DefaultTau; with TauSet it is a real τ = 0
// that keeps every pair with any token overlap at all.
func TestTauZeroMeanings(t *testing.T) {
	recs := []record.Record{
		record.New(0, map[string]string{"t": "alpha beta gamma delta"}),
		record.New(1, map[string]string{"t": "alpha beta gamma epsilon"}),
		// (0,2) and (1,2) overlap on one token: Jaccard 1/7 ≈ 0.14,
		// below DefaultTau but above a true τ = 0.
		record.New(2, map[string]string{"t": "alpha zeta eta theta"}),
		record.New(3, map[string]string{"t": "unrelated words here"}),
	}
	weak01 := record.MakePair(0, 2)

	implicit := Prune(recs, Options{})
	if implicit.Contains(weak01) {
		t.Errorf("Tau=0 without TauSet should mean DefaultTau; weak pair kept")
	}
	if got := (Options{}).EffectiveTau(); got != DefaultTau {
		t.Errorf("EffectiveTau() = %v, want DefaultTau", got)
	}

	explicit := Prune(recs, Options{Tau: 0, TauSet: true})
	if !explicit.Contains(weak01) || !explicit.Contains(record.MakePair(1, 2)) {
		t.Errorf("explicit τ=0 should keep every overlapping pair; got %v", explicit.Pairs)
	}
	if explicit.Contains(record.MakePair(0, 3)) {
		t.Errorf("τ=0 still requires overlap (score > 0); disjoint pair kept")
	}
	if got := (Options{TauSet: true}).EffectiveTau(); got != 0 {
		t.Errorf("EffectiveTau() with TauSet = %v, want 0", got)
	}
	if len(explicit.Pairs) <= len(implicit.Pairs) {
		t.Errorf("τ=0 kept %d pairs, DefaultTau kept %d; want strictly more",
			len(explicit.Pairs), len(implicit.Pairs))
	}

	// TauSet with a nonzero Tau is a no-op relative to plain Tau.
	a := Prune(recs, Options{Tau: 0.5})
	b := Prune(recs, Options{Tau: 0.5, TauSet: true})
	if len(a.Pairs) != len(b.Pairs) {
		t.Errorf("TauSet changed a nonzero Tau: %d vs %d pairs", len(a.Pairs), len(b.Pairs))
	}
}

// TestPruneParallelismEquivalent checks the knob end to end: every
// parallelism setting yields the identical candidate set, for both the
// indexed Jaccard path and the naive path with a custom metric.
func TestPruneParallelismEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vocab := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	recs := make([]record.Record, 60)
	for i := range recs {
		text := ""
		for w := 0; w < 1+rng.Intn(5); w++ {
			text += vocab[rng.Intn(len(vocab))] + " "
		}
		recs[i] = record.New(record.ID(i), map[string]string{"t": text})
	}
	for _, opts := range []Options{
		{},
		{Metric: similarity.Levenshtein, Tau: 0.5},
	} {
		opts.Parallelism = 1
		want := Prune(recs, opts)
		for _, p := range []int{0, 2, 4, 8} {
			opts.Parallelism = p
			got := Prune(recs, opts)
			if !reflect.DeepEqual(got.Pairs, want.Pairs) {
				t.Errorf("parallelism %d diverged from sequential (metric %v)", p, opts.Metric != nil)
			}
			if got.N != want.N || len(got.Machine) != len(want.Machine) {
				t.Errorf("parallelism %d: candidates metadata diverged", p)
			}
		}
	}
}

func TestFromScores(t *testing.T) {
	scores := cluster.Scores{
		record.MakePair(0, 1): 0.9,
		record.MakePair(1, 2): 0.3,
		record.MakePair(0, 2): 0.5,
	}
	c := FromScores(3, scores, 0.3)
	if len(c.Pairs) != 2 {
		t.Fatalf("expected 2 pairs (strict threshold), got %v", c.Pairs)
	}
	if c.Pairs[0].Pair != record.MakePair(0, 1) || c.Pairs[1].Pair != record.MakePair(0, 2) {
		t.Errorf("ordering wrong: %v", c.Pairs)
	}
	if got := c.PairList(); len(got) != 2 || got[0] != record.MakePair(0, 1) {
		t.Errorf("PairList wrong: %v", got)
	}
}
