package pruning_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"acd/internal/obs"
	"acd/internal/pruning"
	"acd/internal/record"
)

// stressRecords builds a small synthetic universe with enough token
// overlap to exercise the indexed join's verification fan-out.
func stressRecords(n int) []record.Record {
	recs := make([]record.Record, n)
	for i := 0; i < n; i++ {
		recs[i] = record.New(record.ID(i), map[string]string{
			"name": fmt.Sprintf("entity %d common alpha beta", i/3),
			"city": fmt.Sprintf("town%d", i%7),
		})
	}
	return recs
}

// TestPruneObsConcurrent hammers one shared recorder from several
// concurrent Prune runs, each of which fans out over its own worker
// pool, with tracing enabled. Run under -race (CI does) this is the
// regression test that the obs layer is safe to share across the
// pruning phase's goroutines. It also checks the counters add up across
// runs: counts merge, they don't overwrite.
func TestPruneObsConcurrent(t *testing.T) {
	rec := obs.New()
	var traceBuf bytes.Buffer
	rec.SetTrace(&syncWriter{w: &traceBuf})

	recs := stressRecords(120)
	single := pruning.Prune(recs, pruning.Options{Parallelism: 4})

	const runs = 8
	var wg sync.WaitGroup
	results := make([]*pruning.Candidates, runs)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = pruning.Prune(recs, pruning.Options{Parallelism: 4, Obs: rec})
		}(i)
	}
	wg.Wait()

	for i, got := range results {
		if len(got.Pairs) != len(single.Pairs) {
			t.Errorf("run %d: %d pairs, want %d (recording changed the output?)",
				i, len(got.Pairs), len(single.Pairs))
		}
	}

	snap := rec.Snapshot()
	if got, want := snap.Counters[pruning.MetricRecords], int64(runs*len(recs)); got != want {
		t.Errorf("records counter = %d, want %d", got, want)
	}
	if got, want := snap.Counters[pruning.MetricCandidates], int64(runs*len(single.Pairs)); got != want {
		t.Errorf("candidates counter = %d, want %d", got, want)
	}
	if ph, ok := snap.Phases["pruning"]; !ok || ph.Count != runs {
		t.Errorf("pruning phase count = %+v, want %d timings", ph, runs)
	}
	if traceBuf.Len() == 0 {
		t.Error("no trace events written")
	}
}

// syncWriter makes a bytes.Buffer safe for the recorder's concurrent
// test use. (The recorder serializes its own writes; this guards the
// final Len read racing nothing in practice, but -race can't know.)
type syncWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
