// Package pruning implements the first phase of ACD (Section 3): it
// builds the machine-based similarity function f over a record set and
// emits the candidate set S of pairs with f(r_i, r_j) > τ. Everything
// downstream (the crowd phases, all baselines) consumes its Candidates
// result, matching the paper's setup where every method shares the same
// pruning phase (Section 6.1: Jaccard, τ = 0.3).
//
// Paper artifacts:
//
//   - Prune — the pruning phase itself; DefaultTau is the paper's
//     τ = 0.3. The join implementations live in internal/blocking.
//   - Candidates — the candidate set S with machine scores f, in the
//     descending-score issue order TransM depends on.
//
// Options.Obs routes the pruning/* funnel metrics and join-stage phase
// timers to a recorder; recording never changes the output.
package pruning
