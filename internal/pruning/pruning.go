package pruning

import (
	"sort"

	"acd/internal/blocking"
	"acd/internal/cluster"
	"acd/internal/obs"
	"acd/internal/record"
	"acd/internal/similarity"
)

// Metric names emitted by the pruning phase (the joins add the
// finer-grained pruning/* funnel and phase timers; see
// internal/blocking).
const (
	// MetricRecords is the input universe size |R| (a counter so repeated
	// runs under one recorder accumulate total records processed).
	MetricRecords = "pruning/records"
	// MetricCandidates counts the candidate pairs kept, |S|.
	MetricCandidates = "pruning/candidates"
	// MetricTau is the threshold the run used (a gauge).
	MetricTau = "pruning/tau"
)

// DefaultTau is the similarity threshold used throughout the paper's
// experiments (Section 6.1).
const DefaultTau = 0.3

// Candidates is the output of the pruning phase: the candidate set S with
// machine scores, in descending score order, plus a score lookup.
type Candidates struct {
	// Pairs holds the candidate set S sorted by descending machine score
	// (the issue order used by TransM).
	Pairs []blocking.ScoredPair
	// Machine maps each candidate pair to its machine similarity f. Pairs
	// outside the map were pruned and have f = 0 by convention.
	Machine cluster.Scores
	// N is the size of the record universe.
	N int
}

// Options configures a pruning run.
type Options struct {
	// Tau is the pruning threshold; pairs must satisfy f > Tau.
	// Unless TauSet is true, the zero value means DefaultTau.
	Tau float64
	// TauSet marks Tau as explicit. With TauSet false (the zero value),
	// Tau == 0 is shorthand for DefaultTau; with TauSet true, Tau is used
	// verbatim, so an explicit τ = 0 — keep every pair with any overlap
	// at all — is representable.
	TauSet bool
	// Metric scores record pairs. Nil means token Jaccard (run through
	// the indexed join); any other metric uses the naive all-pairs scan.
	Metric similarity.Metric
	// Parallelism fans the similarity join out over a worker pool:
	// 0 (or negative) sizes the pool to GOMAXPROCS, 1 forces the
	// sequential reference implementation, n > 1 uses exactly n workers.
	// Output is byte-identical across all settings (see the equivalence
	// property tests in internal/blocking).
	Parallelism int
	// Obs, when set, receives the phase's metrics: the pruning/* funnel
	// counters, join stage timers and per-shard build timings. Nil (the
	// zero value) records nothing. Recording never changes the output.
	Obs *obs.Recorder
}

// EffectiveTau resolves the threshold the run will use: Tau when TauSet
// (or nonzero), DefaultTau otherwise.
func (o Options) EffectiveTau() float64 {
	if o.TauSet || o.Tau != 0 {
		return o.Tau
	}
	return DefaultTau
}

// Prune runs the pruning phase over records and returns the candidate
// set.
func Prune(records []record.Record, opts Options) *Candidates {
	rec := opts.Obs
	done := rec.StartPhase("pruning")
	defer done()
	tau := opts.EffectiveTau()
	rec.Gauge(MetricTau, tau)
	rec.Count(MetricRecords, int64(len(records)))
	var scored []blocking.ScoredPair
	if opts.Metric == nil {
		scored = blocking.JaccardJoinParallelObs(records, tau, opts.Parallelism, rec)
	} else {
		scored = blocking.NaiveJoinParallelObs(records, opts.Metric, tau, opts.Parallelism, rec)
	}
	machine := make(cluster.Scores, len(scored))
	for _, sp := range scored {
		machine[sp.Pair] = sp.Score
	}
	rec.Count(MetricCandidates, int64(len(scored)))
	if rec.Tracing() {
		rec.Trace("pruning.done", map[string]any{
			"records": len(records), "tau": tau, "candidates": len(scored),
		})
	}
	return &Candidates{Pairs: scored, Machine: machine, N: len(records)}
}

// FromScores builds a Candidates directly from a score map, applying the
// threshold. Used by tests and by dataset fixtures where scores are
// prescribed rather than computed.
func FromScores(n int, scores cluster.Scores, tau float64) *Candidates {
	var pairs []blocking.ScoredPair
	machine := make(cluster.Scores)
	for p, f := range scores {
		if f > tau {
			pairs = append(pairs, blocking.ScoredPair{Pair: p, Score: f})
			machine[p] = f
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Score != pairs[j].Score {
			return pairs[i].Score > pairs[j].Score
		}
		if pairs[i].Pair.Lo != pairs[j].Pair.Lo {
			return pairs[i].Pair.Lo < pairs[j].Pair.Lo
		}
		return pairs[i].Pair.Hi < pairs[j].Pair.Hi
	})
	return &Candidates{Pairs: pairs, Machine: machine, N: n}
}

// PairList returns just the pairs of the candidate set, in the same
// descending-score order as Pairs.
func (c *Candidates) PairList() []record.Pair {
	out := make([]record.Pair, len(c.Pairs))
	for i, sp := range c.Pairs {
		out[i] = sp.Pair
	}
	return out
}

// Contains reports whether p survived pruning.
func (c *Candidates) Contains(p record.Pair) bool {
	_, ok := c.Machine[p]
	return ok
}

// Score returns the machine score f of a pair (0 if pruned).
func (c *Candidates) Score(p record.Pair) float64 { return c.Machine.Get(p) }
