// Package graph implements the undirected pair graph G = (V_R, E_S) from
// Section 3 of the paper: vertices are records, edges are candidate pairs
// surviving the pruning phase. Crowd-Pivot and its parallel variants
// consume and destructively shrink this graph as clusters form — Remove
// retires a vertex once it is clustered, and LiveCount drives the outer
// loop of Algorithms 1 and 3.
package graph
