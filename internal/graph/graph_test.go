package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"acd/internal/record"
)

// figure2a builds the example graph of Figure 2a: vertices a..f = 0..5,
// edges (a,b), (b,c), (a,c), (a,e), (e,d), (e,f), (d,f), (c,d).
func figure2a() *Graph {
	g := New(6)
	edges := [][2]record.ID{{0, 1}, {1, 2}, {0, 2}, {0, 4}, {4, 3}, {4, 5}, {3, 5}, {2, 3}}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func TestBasicOps(t *testing.T) {
	g := figure2a()
	if g.Len() != 6 || g.LiveCount() != 6 || g.EdgeCount() != 8 {
		t.Fatalf("len=%d live=%d edges=%d", g.Len(), g.LiveCount(), g.EdgeCount())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Errorf("edge (0,1) missing")
	}
	if g.HasEdge(0, 3) {
		t.Errorf("edge (0,3) should not exist")
	}
	want := []record.ID{1, 2, 4}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, want) {
		t.Errorf("Neighbors(0) = %v, want %v", got, want)
	}
	if g.Degree(4) != 3 {
		t.Errorf("Degree(4) = %d, want 3", g.Degree(4))
	}
}

func TestRemove(t *testing.T) {
	g := figure2a()
	g.Remove(4) // vertex e
	if g.LiveCount() != 5 {
		t.Errorf("live = %d, want 5", g.LiveCount())
	}
	if g.EdgeCount() != 5 { // edges (a,e),(e,d),(e,f) gone
		t.Errorf("edges = %d, want 5", g.EdgeCount())
	}
	if g.HasEdge(0, 4) || g.Live(4) {
		t.Errorf("removed vertex still visible")
	}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []record.ID{1, 2}) {
		t.Errorf("Neighbors(0) after removal = %v", got)
	}
	g.Remove(4) // idempotent
	if g.LiveCount() != 5 {
		t.Errorf("double remove changed live count")
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { g := New(3); g.AddEdge(1, 1) },
		func() { g := New(3); g.AddEdge(0, 1); g.AddEdge(1, 0) },
		func() { g := New(3); g.Remove(0); g.AddEdge(0, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestHopDistance(t *testing.T) {
	g := figure2a()
	// Figure 2 cases: d(b,f) > 2, d(b,e) = 2, d(b,c) = 1.
	if d := g.HopDistance(1, 5, 2); d != -1 {
		t.Errorf("d(b,f) capped at 2 = %d, want -1 (>2)", d)
	}
	if d := g.HopDistance(1, 5, 10); d != 3 {
		t.Errorf("d(b,f) = %d, want 3", d)
	}
	if d := g.HopDistance(1, 4, 2); d != 2 {
		t.Errorf("d(b,e) = %d, want 2", d)
	}
	if d := g.HopDistance(1, 2, 2); d != 1 {
		t.Errorf("d(b,c) = %d, want 1", d)
	}
	if d := g.HopDistance(0, 0, 2); d != 0 {
		t.Errorf("d(a,a) = %d, want 0", d)
	}
	g2 := New(4)
	g2.AddEdge(0, 1)
	if d := g2.HopDistance(0, 3, 10); d != -1 {
		t.Errorf("disconnected distance = %d, want -1", d)
	}
}

func TestEdgesAndVertices(t *testing.T) {
	g := New(4)
	g.AddEdge(2, 0)
	g.AddEdge(3, 1)
	want := []record.Pair{{Lo: 0, Hi: 2}, {Lo: 1, Hi: 3}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Errorf("Edges = %v, want %v", got, want)
	}
	g.Remove(0)
	if got := g.Edges(); !reflect.DeepEqual(got, []record.Pair{{Lo: 1, Hi: 3}}) {
		t.Errorf("Edges after removal = %v", got)
	}
	if got := g.LiveVertices(); !reflect.DeepEqual(got, []record.ID{1, 2, 3}) {
		t.Errorf("LiveVertices = %v", got)
	}
}

func TestComponents(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	want := [][]record.ID{{0, 1, 2}, {3}, {4, 5}, {6}}
	if got := g.Components(); !reflect.DeepEqual(got, want) {
		t.Errorf("Components = %v, want %v", got, want)
	}
	g.Remove(1)
	want = [][]record.ID{{0}, {2}, {3}, {4, 5}, {6}}
	if got := g.Components(); !reflect.DeepEqual(got, want) {
		t.Errorf("Components after removal = %v, want %v", got, want)
	}
}

func TestClone(t *testing.T) {
	g := figure2a()
	cp := g.Clone()
	cp.Remove(0)
	if !g.Live(0) || g.EdgeCount() != 8 {
		t.Errorf("clone mutation leaked into original")
	}
	if cp.LiveCount() != 5 {
		t.Errorf("clone remove failed")
	}
}

// randomGraph builds a random graph and returns it with its edge list.
func randomGraph(rng *rand.Rand, n int, p float64) (*Graph, []record.Pair) {
	g := New(n)
	var pairs []record.Pair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(record.ID(i), record.ID(j))
				pairs = append(pairs, record.Pair{Lo: record.ID(i), Hi: record.ID(j)})
			}
		}
	}
	return g, pairs
}

// Property: edge count and Edges() stay consistent under random removals.
func TestRemovalConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g, _ := randomGraph(rng, n, 0.4)
		for k := 0; k < n/2; k++ {
			g.Remove(record.ID(rng.Intn(n)))
		}
		edges := g.Edges()
		if len(edges) != g.EdgeCount() {
			return false
		}
		// Degrees sum to twice the edge count.
		degSum := 0
		for _, v := range g.LiveVertices() {
			degSum += g.Degree(v)
		}
		return degSum == 2*g.EdgeCount() && g.LiveCount() == len(g.LiveVertices())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Components partitions the live vertices.
func TestComponentsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		g, _ := randomGraph(rng, n, 0.2)
		for k := 0; k < n/3; k++ {
			g.Remove(record.ID(rng.Intn(n)))
		}
		seen := map[record.ID]struct{}{}
		total := 0
		for _, comp := range g.Components() {
			for _, v := range comp {
				if !g.Live(v) {
					return false
				}
				if _, dup := seen[v]; dup {
					return false
				}
				seen[v] = struct{}{}
				total++
			}
		}
		return total == g.LiveCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: HopDistance agrees with a naive BFS for small graphs.
func TestHopDistanceAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g, _ := randomGraph(rng, n, 0.3)
		a := record.ID(rng.Intn(n))
		b := record.ID(rng.Intn(n))
		got := g.HopDistance(a, b, n)
		// Naive BFS.
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[a] = 0
		queue := []record.ID{a}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				if dist[u] == -1 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
		return got == dist[b]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
