package graph

import (
	"fmt"
	"sort"

	"acd/internal/record"
)

// Graph is an undirected graph over the dense record universe 0..n-1.
// Vertices can be removed (as Crowd-Pivot clusters them); removed
// vertices keep their adjacency storage but are excluded from all
// queries.
//
// Adjacency is stored as sorted dense []record.ID slices rather than
// hash sets: Neighbors returns a zero-allocation sub-slice view, and
// removals tombstone lazily — each vertex tracks how many of its stored
// neighbors have been removed (dead counts) and compacts its slice in
// place the next time it is queried. This keeps Remove O(degree),
// Degree O(1), and the hot Neighbors call allocation-free, which is
// what the PC-Pivot inner loop spends its time in.
type Graph struct {
	n       int
	adj     [][]record.ID // sorted ascending; may hold tombstoned entries
	dead    []int         // removed entries still present in adj[v]
	removed []bool
	live    int
	edges   int
}

// New returns an edgeless graph with n live vertices.
func New(n int) *Graph {
	g := &Graph{
		n:       n,
		adj:     make([][]record.ID, n),
		dead:    make([]int, n),
		removed: make([]bool, n),
		live:    n,
	}
	return g
}

// FromPairs builds a graph over 0..n-1 with one edge per candidate pair.
// It bulk-loads the adjacency slices (exact-capacity allocation, one
// sort per vertex) instead of paying AddEdge's insertion shifts, so
// building from a large candidate set is O(E log d) with E small
// allocations.
func FromPairs(n int, pairs []record.Pair) *Graph {
	g := New(n)
	deg := make([]int, n)
	for _, p := range pairs {
		if p.Lo == p.Hi {
			panic(fmt.Sprintf("graph: self-loop at %d", p.Lo))
		}
		deg[p.Lo]++
		deg[p.Hi]++
	}
	for v, d := range deg {
		if d > 0 {
			g.adj[v] = make([]record.ID, 0, d)
		}
	}
	for _, p := range pairs {
		g.adj[p.Lo] = append(g.adj[p.Lo], p.Hi)
		g.adj[p.Hi] = append(g.adj[p.Hi], p.Lo)
	}
	for v := range g.adj {
		nbrs := g.adj[v]
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		for i := 1; i < len(nbrs); i++ {
			if nbrs[i] == nbrs[i-1] {
				panic(fmt.Sprintf("graph: duplicate edge (%d,%d)", v, nbrs[i]))
			}
		}
	}
	g.edges = len(pairs)
	return g
}

// Len returns the universe size (including removed vertices).
func (g *Graph) Len() int { return g.n }

// LiveCount returns the number of non-removed vertices.
func (g *Graph) LiveCount() int { return g.live }

// EdgeCount returns the number of live edges.
func (g *Graph) EdgeCount() int { return g.edges }

// Live reports whether vertex v has not been removed.
func (g *Graph) Live(v record.ID) bool { return !g.removed[v] }

// search returns the position of u in the sorted slice nbrs and whether
// it is present.
func search(nbrs []record.ID, u record.ID) (int, bool) {
	i := sort.Search(len(nbrs), func(k int) bool { return nbrs[k] >= u })
	return i, i < len(nbrs) && nbrs[i] == u
}

// insert places u into v's sorted adjacency slice, panicking on a
// duplicate.
func (g *Graph) insert(v, u record.ID) {
	nbrs := g.adj[v]
	i, ok := search(nbrs, u)
	if ok {
		panic(fmt.Sprintf("graph: duplicate edge (%d,%d)", v, u))
	}
	nbrs = append(nbrs, 0)
	copy(nbrs[i+1:], nbrs[i:])
	nbrs[i] = u
	g.adj[v] = nbrs
}

// AddEdge inserts the undirected edge (a, b). Inserting a duplicate edge
// or an edge touching a removed vertex panics: the clustering algorithms
// never do either, so it would indicate a bug.
func (g *Graph) AddEdge(a, b record.ID) {
	if a == b {
		panic(fmt.Sprintf("graph: self-loop at %d", a))
	}
	if g.removed[a] || g.removed[b] {
		panic(fmt.Sprintf("graph: edge (%d,%d) touches removed vertex", a, b))
	}
	g.insert(a, b)
	g.insert(b, a)
	g.edges++
}

// HasEdge reports whether the live edge (a, b) exists.
func (g *Graph) HasEdge(a, b record.ID) bool {
	if g.removed[a] || g.removed[b] {
		return false
	}
	_, ok := search(g.adj[a], b)
	return ok
}

// Neighbors returns the live neighbors of v in ascending order without
// allocating: the result is a view into the graph's own storage, valid
// until the next call that mutates the graph (AddEdge or Remove) or
// queries v again after a removal. Callers must not modify it. It
// returns nil if v itself is removed.
func (g *Graph) Neighbors(v record.ID) []record.ID {
	if g.removed[v] {
		return nil
	}
	if g.dead[v] > 0 {
		g.compact(v)
	}
	return g.adj[v]
}

// compact drops tombstoned entries from v's adjacency slice in place,
// preserving order.
func (g *Graph) compact(v record.ID) {
	nbrs := g.adj[v]
	w := 0
	for _, u := range nbrs {
		if !g.removed[u] {
			nbrs[w] = u
			w++
		}
	}
	g.adj[v] = nbrs[:w]
	g.dead[v] = 0
}

// Degree returns the number of live neighbors of v (0 if v is removed).
func (g *Graph) Degree(v record.ID) int {
	if g.removed[v] {
		return 0
	}
	return len(g.adj[v]) - g.dead[v]
}

// Remove deletes vertex v and all of its incident edges from the live
// graph. Removing an already-removed vertex is a no-op. Neighbors'
// storage is tombstoned, not rewritten, so Remove is O(degree) and the
// cost of dropping the entries is deferred to each neighbor's next
// Neighbors call.
func (g *Graph) Remove(v record.ID) {
	if g.removed[v] {
		return
	}
	for _, u := range g.adj[v] {
		if !g.removed[u] {
			g.edges--
			g.dead[u]++
		}
	}
	g.removed[v] = true
	g.live--
}

// LiveVertices returns the live vertices in ascending order.
func (g *Graph) LiveVertices() []record.ID {
	out := make([]record.ID, 0, g.live)
	for v := 0; v < g.n; v++ {
		if !g.removed[v] {
			out = append(out, record.ID(v))
		}
	}
	return out
}

// Edges returns the live edges as canonical pairs in lexicographic
// order. The adjacency slices are already sorted, so the output needs
// no sort of its own.
func (g *Graph) Edges() []record.Pair {
	out := make([]record.Pair, 0, g.edges)
	for v := 0; v < g.n; v++ {
		if g.removed[v] {
			continue
		}
		for _, u := range g.adj[record.ID(v)] {
			if int(u) > v && !g.removed[u] {
				out = append(out, record.Pair{Lo: record.ID(v), Hi: u})
			}
		}
	}
	return out
}

// Clone returns a deep copy of the graph, preserving removal state.
func (g *Graph) Clone() *Graph {
	cp := &Graph{
		n:       g.n,
		adj:     make([][]record.ID, g.n),
		dead:    append([]int(nil), g.dead...),
		removed: append([]bool(nil), g.removed...),
		live:    g.live,
		edges:   g.edges,
	}
	for v, nbrs := range g.adj {
		if nbrs != nil {
			cp.adj[v] = append([]record.ID(nil), nbrs...)
		}
	}
	return cp
}

// HopDistance returns the number of hops between a and b in the live
// graph via breadth-first search, or -1 if they are disconnected. It is
// the d_i(r_1, r_2) measure of Section 4.2. maxDepth bounds the search;
// pass a small bound (the pivot logic only distinguishes 1, 2, >2) to
// avoid scanning whole components.
func (g *Graph) HopDistance(a, b record.ID, maxDepth int) int {
	if g.removed[a] || g.removed[b] {
		return -1
	}
	if a == b {
		return 0
	}
	visited := make([]bool, g.n)
	visited[a] = true
	frontier := []record.ID{a}
	for depth := 1; depth <= maxDepth; depth++ {
		var next []record.ID
		for _, v := range frontier {
			for _, u := range g.adj[v] {
				if g.removed[u] {
					continue
				}
				if u == b {
					return depth
				}
				if !visited[u] {
					visited[u] = true
					next = append(next, u)
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	return -1
}

// Components returns the connected components of the live graph, each as
// an ascending vertex slice, ordered by smallest vertex. Isolated live
// vertices form singleton components.
func (g *Graph) Components() [][]record.ID {
	seen := make([]bool, g.n)
	var out [][]record.ID
	for v := 0; v < g.n; v++ {
		if g.removed[v] || seen[v] {
			continue
		}
		var comp []record.ID
		stack := []record.ID{record.ID(v)}
		seen[v] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, x)
			for _, u := range g.adj[x] {
				if !g.removed[u] && !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		out = append(out, comp)
	}
	return out
}
