package graph

import (
	"fmt"
	"sort"

	"acd/internal/record"
)

// Graph is an undirected graph over the dense record universe 0..n-1.
// Vertices can be removed (as Crowd-Pivot clusters them); removed
// vertices keep their adjacency storage but are excluded from all
// queries.
type Graph struct {
	n       int
	adj     []map[record.ID]struct{}
	removed []bool
	live    int
	edges   int
}

// New returns an edgeless graph with n live vertices.
func New(n int) *Graph {
	g := &Graph{
		n:       n,
		adj:     make([]map[record.ID]struct{}, n),
		removed: make([]bool, n),
		live:    n,
	}
	return g
}

// FromPairs builds a graph over 0..n-1 with one edge per candidate pair.
func FromPairs(n int, pairs []record.Pair) *Graph {
	g := New(n)
	for _, p := range pairs {
		g.AddEdge(p.Lo, p.Hi)
	}
	return g
}

// Len returns the universe size (including removed vertices).
func (g *Graph) Len() int { return g.n }

// LiveCount returns the number of non-removed vertices.
func (g *Graph) LiveCount() int { return g.live }

// EdgeCount returns the number of live edges.
func (g *Graph) EdgeCount() int { return g.edges }

// Live reports whether vertex v has not been removed.
func (g *Graph) Live(v record.ID) bool { return !g.removed[v] }

// AddEdge inserts the undirected edge (a, b). Inserting a duplicate edge
// or an edge touching a removed vertex panics: the clustering algorithms
// never do either, so it would indicate a bug.
func (g *Graph) AddEdge(a, b record.ID) {
	if a == b {
		panic(fmt.Sprintf("graph: self-loop at %d", a))
	}
	if g.removed[a] || g.removed[b] {
		panic(fmt.Sprintf("graph: edge (%d,%d) touches removed vertex", a, b))
	}
	if g.adj[a] == nil {
		g.adj[a] = make(map[record.ID]struct{})
	}
	if g.adj[b] == nil {
		g.adj[b] = make(map[record.ID]struct{})
	}
	if _, dup := g.adj[a][b]; dup {
		panic(fmt.Sprintf("graph: duplicate edge (%d,%d)", a, b))
	}
	g.adj[a][b] = struct{}{}
	g.adj[b][a] = struct{}{}
	g.edges++
}

// HasEdge reports whether the live edge (a, b) exists.
func (g *Graph) HasEdge(a, b record.ID) bool {
	if g.removed[a] || g.removed[b] {
		return false
	}
	_, ok := g.adj[a][b]
	return ok
}

// Neighbors returns the live neighbors of v in ascending order. It
// returns nil if v itself is removed.
func (g *Graph) Neighbors(v record.ID) []record.ID {
	if g.removed[v] {
		return nil
	}
	out := make([]record.ID, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		if !g.removed[u] {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Degree returns the number of live neighbors of v (0 if v is removed).
func (g *Graph) Degree(v record.ID) int {
	if g.removed[v] {
		return 0
	}
	d := 0
	for u := range g.adj[v] {
		if !g.removed[u] {
			d++
		}
	}
	return d
}

// Remove deletes vertex v and all of its incident edges from the live
// graph. Removing an already-removed vertex is a no-op.
func (g *Graph) Remove(v record.ID) {
	if g.removed[v] {
		return
	}
	for u := range g.adj[v] {
		if !g.removed[u] {
			g.edges--
		}
	}
	g.removed[v] = true
	g.live--
}

// LiveVertices returns the live vertices in ascending order.
func (g *Graph) LiveVertices() []record.ID {
	out := make([]record.ID, 0, g.live)
	for v := 0; v < g.n; v++ {
		if !g.removed[v] {
			out = append(out, record.ID(v))
		}
	}
	return out
}

// Edges returns the live edges as canonical pairs in lexicographic order.
func (g *Graph) Edges() []record.Pair {
	out := make([]record.Pair, 0, g.edges)
	for v := 0; v < g.n; v++ {
		if g.removed[v] {
			continue
		}
		for u := range g.adj[record.ID(v)] {
			if int(u) > v && !g.removed[u] {
				out = append(out, record.Pair{Lo: record.ID(v), Hi: u})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lo != out[j].Lo {
			return out[i].Lo < out[j].Lo
		}
		return out[i].Hi < out[j].Hi
	})
	return out
}

// Clone returns a deep copy of the graph, preserving removal state.
func (g *Graph) Clone() *Graph {
	cp := &Graph{
		n:       g.n,
		adj:     make([]map[record.ID]struct{}, g.n),
		removed: append([]bool(nil), g.removed...),
		live:    g.live,
		edges:   g.edges,
	}
	for v, nbrs := range g.adj {
		if nbrs == nil {
			continue
		}
		m := make(map[record.ID]struct{}, len(nbrs))
		for u := range nbrs {
			m[u] = struct{}{}
		}
		cp.adj[v] = m
	}
	return cp
}

// HopDistance returns the number of hops between a and b in the live
// graph via breadth-first search, or -1 if they are disconnected. It is
// the d_i(r_1, r_2) measure of Section 4.2. maxDepth bounds the search;
// pass a small bound (the pivot logic only distinguishes 1, 2, >2) to
// avoid scanning whole components.
func (g *Graph) HopDistance(a, b record.ID, maxDepth int) int {
	if g.removed[a] || g.removed[b] {
		return -1
	}
	if a == b {
		return 0
	}
	visited := map[record.ID]struct{}{a: {}}
	frontier := []record.ID{a}
	for depth := 1; depth <= maxDepth; depth++ {
		var next []record.ID
		for _, v := range frontier {
			for u := range g.adj[v] {
				if g.removed[u] {
					continue
				}
				if u == b {
					return depth
				}
				if _, seen := visited[u]; !seen {
					visited[u] = struct{}{}
					next = append(next, u)
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	return -1
}

// Components returns the connected components of the live graph, each as
// an ascending vertex slice, ordered by smallest vertex. Isolated live
// vertices form singleton components.
func (g *Graph) Components() [][]record.ID {
	seen := make([]bool, g.n)
	var out [][]record.ID
	for v := 0; v < g.n; v++ {
		if g.removed[v] || seen[v] {
			continue
		}
		var comp []record.ID
		stack := []record.ID{record.ID(v)}
		seen[v] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, x)
			for u := range g.adj[x] {
				if !g.removed[u] && !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		out = append(out, comp)
	}
	return out
}
