// Package machine implements the machine-only clustering algorithms the
// paper builds on or argues against: the classic randomized Pivot [5]
// (the base of Crowd-Pivot), the BOEM best-one-element-move
// postprocessor [22] (which Section 5.1 shows is too expensive to
// crowdsource), average-linkage agglomerative clustering (our stand-in
// for the clustering step of CrowdER+), and connected components.
//
// All algorithms consume a score function over a fixed pair set: they
// never ask the crowd.
//
// Paper artifacts:
//
//   - Pivot — the randomized Pivot of [5]; expected 5-approximation of
//     the Λ minimizer (the guarantee Lemma 1 lifts to Crowd-Pivot).
//   - BestPivot — Pivot with restarts, the machine-side variance remedy
//     Section 3 explains a crowd cannot afford.
//   - BOEM — best-one-element-move local search [22] (Section 5.1's
//     cost argument for why refinement replaces it under a crowd).
//   - Agglomerative — average-linkage clustering, the answer-clustering
//     step of CrowdER+ in the baselines.
//   - Components — transitive closure over a score threshold, the error
//     amplifier of Figure 1.
//
// The *Obs variants (BestPivotObs, BOEMObs) report the machine/* metric
// names in this package to a recorder; the plain names delegate with
// recording disabled.
package machine
