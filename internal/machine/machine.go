package machine

import (
	"math/rand"
	"sort"

	"acd/internal/cluster"
	"acd/internal/graph"
	"acd/internal/obs"
	"acd/internal/record"
	"acd/internal/unionfind"
)

// Metric names emitted by the instrumented machine-only algorithms (the
// *Obs variants). They cover the crowd-free pipeline acddedup falls back
// to without ground truth: Pivot restarts scored by Λ, then BOEM moves.
const (
	// MetricPivotRuns counts Pivot restarts and MetricPivotLambda is the
	// distribution of their Λ objective values — the variance the paper's
	// Section 3 argues makes machine-only Pivot need many restarts.
	MetricPivotRuns   = "machine/pivot_runs"
	MetricPivotLambda = "machine/pivot_lambda"
	// MetricBOEMMoves counts best-one-element moves applied.
	MetricBOEMMoves = "machine/boem_moves"
)

// Pivot runs the classic randomized Pivot correlation clustering over the
// pairs present in scores (absent pairs have score 0): repeatedly pick a
// random unclustered record, cluster it with every unclustered neighbor
// whose score exceeds 0.5, and remove them. Expected 5-approximation of
// the Λ-minimizer [5].
func Pivot(n int, scores cluster.Scores, rng *rand.Rand) *cluster.Clustering {
	g := graph.New(n)
	for p, f := range scores {
		if f > 0.5 {
			g.AddEdge(p.Lo, p.Hi)
		}
	}
	order := rng.Perm(n)
	var sets [][]record.ID
	for _, v := range order {
		r := record.ID(v)
		if !g.Live(r) {
			continue
		}
		members := append([]record.ID{r}, g.Neighbors(r)...)
		for _, m := range members {
			g.Remove(m)
		}
		sets = append(sets, members)
	}
	c, err := cluster.FromSets(n, sets)
	if err != nil {
		panic("machine: Pivot produced a non-partition: " + err.Error())
	}
	return c
}

// BestPivot runs Pivot `runs` times and returns the clustering with the
// smallest Λ — the standard machine-based remedy for Pivot's variance
// that Section 3 explains is unaffordable with a crowd.
func BestPivot(n int, scores cluster.Scores, runs int, rng *rand.Rand) *cluster.Clustering {
	return BestPivotObs(n, scores, runs, rng, nil)
}

// BestPivotObs is BestPivot reporting each restart's Λ to a recorder
// (nil records nothing), making Pivot's run-to-run variance a measurable
// histogram instead of a claim.
func BestPivotObs(n int, scores cluster.Scores, runs int, rng *rand.Rand, rec *obs.Recorder) *cluster.Clustering {
	if runs < 1 {
		runs = 1
	}
	done := rec.StartPhase("machine/pivot")
	defer done()
	var best *cluster.Clustering
	bestL := 0.0
	for i := 0; i < runs; i++ {
		c := Pivot(n, scores, rng)
		l := cluster.Lambda(c, scores)
		rec.Count(MetricPivotRuns, 1)
		rec.Observe(MetricPivotLambda, l)
		if best == nil || l < bestL {
			best, bestL = c, l
		}
	}
	return best
}

// BOEM post-processes a clustering with best-one-element moves [22]:
// while some single record can move to another cluster (or to a new
// singleton) with a strict decrease in Λ, perform the move with the
// largest decrease. It needs every pair score, which is why the paper's
// refinement phase replaces it under a crowd (Section 5.1).
func BOEM(c *cluster.Clustering, scores cluster.Scores) *cluster.Clustering {
	return BOEMObs(c, scores, nil)
}

// BOEMObs is BOEM counting each applied move on a recorder (nil records
// nothing) — the move count is the number of crowd rounds a naive
// Crowd-BOEM would need, which is the cost argument of Section 5.1.
func BOEMObs(c *cluster.Clustering, scores cluster.Scores, rec *obs.Recorder) *cluster.Clustering {
	done := rec.StartPhase("machine/boem")
	defer done()
	// Adjacency from the score map: only records connected by a scored
	// pair can profitably share a cluster.
	adj := make(map[record.ID][]record.ID)
	for p := range scores {
		adj[p.Lo] = append(adj[p.Lo], p.Hi)
		adj[p.Hi] = append(adj[p.Hi], p.Lo)
	}
	get := func(a, b record.ID) float64 { return scores.Get(record.MakePair(a, b)) }

	// moveGain computes the Λ decrease of moving r from its cluster to
	// target (-1 = new singleton): leaving saves Σ(1-2f) over old
	// co-members; joining costs Σ(1-2f) over new co-members.
	moveGain := func(r record.ID, target int) float64 {
		gain := 0.0
		for _, m := range c.Members(c.Assignment(r)) {
			if m != r {
				gain += 1 - 2*get(r, m)
			}
		}
		if target >= 0 {
			for _, m := range c.Members(target) {
				gain -= 1 - 2*get(r, m)
			}
		}
		return gain
	}

	for {
		bestGain := 1e-12
		var bestR record.ID
		bestTarget := -2
		for r := record.ID(0); int(r) < c.Len(); r++ {
			// Candidate targets: clusters of scored neighbors, plus a
			// fresh singleton when r is not already alone.
			targets := map[int]struct{}{}
			for _, nb := range adj[r] {
				if t := c.Assignment(nb); t != c.Assignment(r) {
					targets[t] = struct{}{}
				}
			}
			if c.Size(c.Assignment(r)) > 1 {
				targets[-1] = struct{}{}
			}
			for t := range targets {
				if g := moveGain(r, t); g > bestGain {
					bestGain, bestR, bestTarget = g, r, t
				}
			}
		}
		if bestTarget == -2 {
			break
		}
		rec.Count(MetricBOEMMoves, 1)
		newIdx := c.Split(bestR)
		if bestTarget >= 0 {
			c.Merge(bestTarget, newIdx)
		}
	}
	c.Compact()
	return c
}

// Agglomerative performs average-linkage agglomerative clustering:
// starting from singletons, repeatedly merge the pair of clusters with
// the highest average cross-pair score, while that average exceeds the
// threshold. Pairs absent from scores count as 0, so only clusters
// connected by scored pairs can merge. It is robust to a minority of
// erroneous scores, which is what makes CrowdER+ accurate in the paper's
// experiments despite crowd noise.
func Agglomerative(n int, scores cluster.Scores, threshold float64) *cluster.Clustering {
	c := cluster.NewSingletons(n)
	type linkKey [2]int
	// sum of cross scores per live cluster pair; cross size is
	// |A|·|B| implicitly.
	link := make(map[linkKey]float64)
	keyOf := func(a, b int) linkKey {
		if a > b {
			a, b = b, a
		}
		return linkKey{a, b}
	}
	for p, f := range scores {
		a, b := c.Assignment(p.Lo), c.Assignment(p.Hi)
		if a != b {
			link[keyOf(a, b)] += f
		}
	}
	for {
		bestAvg := threshold
		var best linkKey
		found := false
		// Deterministic iteration: collect and sort keys.
		keys := make([]linkKey, 0, len(link))
		for k := range link {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		for _, k := range keys {
			avg := link[k] / float64(c.Size(k[0])*c.Size(k[1]))
			if avg > bestAvg {
				bestAvg, best, found = avg, k, true
			}
		}
		if !found {
			break
		}
		a, b := best[0], best[1]
		// Fold b's links into a.
		for _, k := range keys {
			other := -1
			switch {
			case k[0] == b:
				other = k[1]
			case k[1] == b:
				other = k[0]
			}
			if other == -1 || other == a {
				continue
			}
			link[keyOf(a, other)] += link[k]
		}
		for _, k := range keys {
			if k[0] == b || k[1] == b {
				delete(link, k)
			}
		}
		delete(link, best)
		c.Merge(a, b)
	}
	c.Compact()
	return c
}

// Components clusters records by connected components over the pairs
// whose score exceeds the threshold — the transitive-closure clustering
// that amplifies errors (Figure 1's failure mode).
func Components(n int, scores cluster.Scores, threshold float64) *cluster.Clustering {
	uf := unionfind.New(n)
	for p, f := range scores {
		if f > threshold {
			uf.Union(int(p.Lo), int(p.Hi))
		}
	}
	sets := uf.Sets()
	asIDs := make([][]record.ID, len(sets))
	for i, s := range sets {
		ids := make([]record.ID, len(s))
		for j, v := range s {
			ids[j] = record.ID(v)
		}
		asIDs[i] = ids
	}
	c, err := cluster.FromSets(n, asIDs)
	if err != nil {
		panic("machine: Components produced a non-partition: " + err.Error())
	}
	return c
}
