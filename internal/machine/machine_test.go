package machine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"acd/internal/cluster"
	"acd/internal/record"
)

// table2 is the Example 1 instance (a..f = 0..5); optimal clustering is
// {a,b,c},{d,e,f}.
func table2() cluster.Scores {
	s := cluster.Scores{}
	add := func(a, b record.ID, f float64) { s[record.MakePair(a, b)] = f }
	add(0, 1, 0.81)
	add(1, 2, 0.75)
	add(0, 2, 0.73)
	add(3, 4, 0.72)
	add(3, 5, 0.70)
	add(4, 5, 0.69)
	add(2, 3, 0.45)
	add(0, 3, 0.43)
	add(0, 4, 0.37)
	return s
}

func TestPivotOnExample1(t *testing.T) {
	// On Table 2, every positive (>0.5) edge is within the true
	// clusters, so any pivot order yields exactly {a,b,c},{d,e,f}.
	want := cluster.MustFromSets(6, [][]record.ID{{0, 1, 2}, {3, 4, 5}})
	for seed := int64(0); seed < 10; seed++ {
		c := Pivot(6, table2(), rand.New(rand.NewSource(seed)))
		if !cluster.Equal(c, want) {
			t.Fatalf("seed %d: %v", seed, c.Sets())
		}
	}
}

func TestPivotPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		scores := cluster.Scores{}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					scores[record.MakePair(record.ID(i), record.ID(j))] = rng.Float64()
				}
			}
		}
		c := Pivot(n, scores, rng)
		seen := map[record.ID]bool{}
		total := 0
		for _, s := range c.Sets() {
			for _, r := range s {
				if seen[r] {
					return false
				}
				seen[r] = true
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBestPivotNotWorse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		scores := cluster.Scores{}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					scores[record.MakePair(record.ID(i), record.ID(j))] = rng.Float64()
				}
			}
		}
		single := Pivot(n, scores, rand.New(rand.NewSource(seed+1)))
		best := BestPivot(n, scores, 20, rand.New(rand.NewSource(seed+1)))
		// BestPivot's first run is exactly `single`, so it can only
		// improve.
		return cluster.Lambda(best, scores) <= cluster.Lambda(single, scores)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBOEMImprovesToExample1Optimum(t *testing.T) {
	scores := table2()
	// Start from a deliberately bad clustering.
	bad := cluster.MustFromSets(6, [][]record.ID{{0, 3}, {1, 4}, {2, 5}})
	got := BOEM(bad, scores)
	want := cluster.MustFromSets(6, [][]record.ID{{0, 1, 2}, {3, 4, 5}})
	if !cluster.Equal(got, want) {
		t.Errorf("BOEM result %v, want the Example 1 optimum", got.Sets())
	}
}

func TestBOEMNeverWorsens(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		scores := cluster.Scores{}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					scores[record.MakePair(record.ID(i), record.ID(j))] = rng.Float64()
				}
			}
		}
		start := Pivot(n, scores, rng)
		before := cluster.Lambda(start, scores)
		after := cluster.Lambda(BOEM(start, scores), scores)
		return after <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAgglomerativeExample1(t *testing.T) {
	got := Agglomerative(6, table2(), 0.5)
	want := cluster.MustFromSets(6, [][]record.ID{{0, 1, 2}, {3, 4, 5}})
	if !cluster.Equal(got, want) {
		t.Errorf("agglomerative = %v", got.Sets())
	}
}

func TestAgglomerativeRobustToMinorityError(t *testing.T) {
	// Two clear triangles plus one erroneous cross edge: average linkage
	// must not bridge them (cross average = (1.0 + 8·0)/9 ≪ 0.5).
	scores := cluster.Scores{}
	add := func(a, b record.ID, f float64) { scores[record.MakePair(a, b)] = f }
	for _, tri := range [][3]record.ID{{0, 1, 2}, {3, 4, 5}} {
		add(tri[0], tri[1], 1)
		add(tri[1], tri[2], 1)
		add(tri[0], tri[2], 1)
	}
	add(2, 3, 1.0) // crowd error
	got := Agglomerative(6, scores, 0.5)
	want := cluster.MustFromSets(6, [][]record.ID{{0, 1, 2}, {3, 4, 5}})
	if !cluster.Equal(got, want) {
		t.Errorf("agglomerative bridged on a single bad edge: %v", got.Sets())
	}
	// Components, by contrast, collapses everything — Figure 1's
	// amplification.
	comp := Components(6, scores, 0.5)
	if comp.NumClusters() != 1 {
		t.Errorf("components should merge everything here, got %v", comp.Sets())
	}
}

func TestAgglomerativeThresholdBoundary(t *testing.T) {
	scores := cluster.Scores{record.MakePair(0, 1): 0.5}
	// Strictly-above semantics: 0.5 does not merge at threshold 0.5.
	got := Agglomerative(2, scores, 0.5)
	if got.NumClusters() != 2 {
		t.Errorf("boundary merge happened")
	}
	got = Agglomerative(2, scores, 0.49)
	if got.NumClusters() != 1 {
		t.Errorf("above-threshold merge did not happen")
	}
}

func TestComponentsBasics(t *testing.T) {
	scores := cluster.Scores{
		record.MakePair(0, 1): 0.9,
		record.MakePair(1, 2): 0.2,
		record.MakePair(3, 4): 0.7,
	}
	got := Components(5, scores, 0.5)
	want := cluster.MustFromSets(5, [][]record.ID{{0, 1}, {2}, {3, 4}})
	if !cluster.Equal(got, want) {
		t.Errorf("components = %v", got.Sets())
	}
}

// TestAgglomerativeMatchesBruteForceAverage verifies the incremental link
// bookkeeping against a from-scratch average computation on random
// instances: after the algorithm stops, no remaining cluster pair may
// have average score above the threshold.
func TestAgglomerativeStopsOnlyWhenDone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		scores := cluster.Scores{}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					scores[record.MakePair(record.ID(i), record.ID(j))] = rng.Float64()
				}
			}
		}
		c := Agglomerative(n, scores, 0.5)
		idxs := c.ClusterIndices()
		for i := 0; i < len(idxs); i++ {
			for j := i + 1; j < len(idxs); j++ {
				sum := 0.0
				for _, a := range c.Members(idxs[i]) {
					for _, b := range c.Members(idxs[j]) {
						sum += scores.Get(record.MakePair(a, b))
					}
				}
				avg := sum / float64(c.Size(idxs[i])*c.Size(idxs[j]))
				if avg > 0.5+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBOEMGainExactness(t *testing.T) {
	// Each BOEM move must change Λ by its computed gain; verify overall
	// consistency by confirming BOEM reaches a local optimum: no single
	// move can improve further.
	scores := table2()
	c := BOEM(cluster.NewSingletons(6), scores)
	base := cluster.Lambda(c, scores)
	for r := record.ID(0); r < 6; r++ {
		for _, target := range append(c.ClusterIndices(), -1) {
			if target == c.Assignment(r) {
				continue
			}
			cp := c.Clone()
			ni := cp.Split(r)
			if target >= 0 && cp.Size(target) > 0 {
				cp.Merge(target, ni)
			}
			if cluster.Lambda(cp, scores) < base-1e-9 {
				t.Fatalf("BOEM left an improving move: record %d to cluster %d (%v -> %v)",
					r, target, base, cluster.Lambda(cp, scores))
			}
		}
	}
}
