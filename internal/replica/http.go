package replica

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Handler serves a leader's replication stream over HTTP — the
// server-side half of HTTPSource. Without a journal parameter it
// answers layout discovery (Info); with one it serves a Batch,
// long-polling up to the requested wait when the follower is caught
// up so idle links cost one open request instead of a poll storm.
type Handler struct {
	// Source is the leader's local source.
	Source *LocalSource
	// MaxWait caps the client-requested long-poll wait; 0 means 10s.
	MaxWait time.Duration
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	q := r.URL.Query()
	name := q.Get("journal")
	if name == "" {
		info, err := h.Source.Info(r.Context())
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		httpJSON(w, info)
		return
	}
	from := parseInt64(q.Get("from"), 1)
	max := int(parseInt64(q.Get("max"), DefaultMaxBatch))
	maxWait := h.MaxWait
	if maxWait <= 0 {
		maxWait = 10 * time.Second
	}
	wait := time.Duration(parseInt64(q.Get("wait"), 0)) * time.Millisecond
	if wait > maxWait {
		wait = maxWait
	}
	deadline := time.Now().Add(wait)
	for {
		b, err := h.Source.Fetch(r.Context(), name, from, max)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if len(b.Events) > 0 || b.Checkpoint != nil || !time.Now().Before(deadline) {
			httpJSON(w, b)
			return
		}
		select {
		case <-r.Context().Done():
			httpError(w, http.StatusRequestTimeout, "client gone")
			return
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// HTTPSource pulls a leader's replication stream over HTTP — the
// follower-side half of Handler.
type HTTPSource struct {
	// Base is the stream endpoint URL, e.g.
	// http://leader:8080/replica/stream.
	Base string
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
	// Wait is the server-side long-poll wait plain Fetch calls request;
	// 0 disables long-polling. FetchWait callers (the Follower) choose
	// the wait per fetch and bypass this default.
	Wait time.Duration
}

func (s *HTTPSource) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return http.DefaultClient
}

// Info implements Source.
func (s *HTTPSource) Info(ctx context.Context) (Info, error) {
	var info Info
	err := s.getJSON(ctx, s.Base, &info)
	return info, err
}

// Fetch implements Source with the configured default Wait.
func (s *HTTPSource) Fetch(ctx context.Context, name string, from int64, max int) (Batch, error) {
	return s.FetchWait(ctx, name, from, max, s.Wait)
}

// FetchWait implements WaitSource: one fetch with an explicit
// server-side long-poll wait (0 = return immediately).
func (s *HTTPSource) FetchWait(ctx context.Context, name string, from int64, max int, wait time.Duration) (Batch, error) {
	q := url.Values{}
	q.Set("journal", name)
	q.Set("from", strconv.FormatInt(from, 10))
	q.Set("max", strconv.Itoa(max))
	if wait > 0 {
		q.Set("wait", strconv.FormatInt(wait.Milliseconds(), 10))
	}
	var b Batch
	err := s.getJSON(ctx, s.Base+"?"+q.Encode(), &b)
	return b, err
}

// getJSON runs one GET and decodes the JSON response into out.
func (s *HTTPSource) getJSON(ctx context.Context, u string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := s.client().Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("replica: %s: status %d: %s", u, resp.StatusCode, body)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func parseInt64(s string, def int64) int64 {
	if s == "" {
		return def
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return def
	}
	return v
}

func httpJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
