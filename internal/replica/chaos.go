package replica

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// ErrInjected is the failure a ChaosLink injects in place of a real
// fetch — what a dropped connection or partitioned network surfaces.
var ErrInjected = errors.New("replica: injected link failure")

// ChaosConfig tunes a ChaosLink's fault mix. All probabilities are per
// fetch and drawn from one seeded stream, so a given (seed, workload)
// pair replays identically.
type ChaosConfig struct {
	// Seed seeds the fault stream.
	Seed int64
	// Drop is the probability a fetch fails outright.
	Drop float64
	// Duplicate is the probability a fetch is answered with the
	// previous batch served for that journal — a retransmitted or
	// reordered response the follower must skip idempotently.
	Duplicate float64
	// Truncate is the probability a fetch returns only a prefix of its
	// events — a slow follower draining in dribbles.
	Truncate float64
	// Partition is the probability a fetch starts a partition: this
	// and the next PartitionLen-1 fetches all fail.
	Partition float64
	// PartitionLen is the partition length in fetches; 0 means 4.
	PartitionLen int
}

// ChaosLink wraps a Source with seeded fault injection: drops,
// duplicated (stale) batches, truncated batches, and multi-fetch
// partitions. Faults never corrupt payloads — the protocol's job is to
// survive loss, staleness, and reordering, not byte flips (the journal
// fuzzer owns those).
type ChaosLink struct {
	inner Source
	cfg   ChaosConfig

	mu        sync.Mutex
	rng       *rand.Rand
	prev      map[string]Batch // last real batch served per journal
	partition int              // remaining fetches to fail
	injected  int              // total faults injected, for test visibility
}

// NewChaosLink wraps source with the configured fault mix.
func NewChaosLink(source Source, cfg ChaosConfig) *ChaosLink {
	if cfg.PartitionLen <= 0 {
		cfg.PartitionLen = 4
	}
	return &ChaosLink{
		inner: source,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		prev:  make(map[string]Batch),
	}
}

// Injected returns how many faults the link has injected so far.
func (c *ChaosLink) Injected() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injected
}

// Info implements Source, passing through unharmed: layout discovery
// failures are a connection-level concern the follower's caller owns.
func (c *ChaosLink) Info(ctx context.Context) (Info, error) {
	return c.inner.Info(ctx)
}

// Fetch implements Source with faults injected per ChaosConfig.
func (c *ChaosLink) Fetch(ctx context.Context, name string, from int64, max int) (Batch, error) {
	c.mu.Lock()
	if c.partition > 0 {
		c.partition--
		c.injected++
		c.mu.Unlock()
		return Batch{}, fmt.Errorf("%w: partitioned", ErrInjected)
	}
	roll := c.rng.Float64()
	switch {
	case roll < c.cfg.Drop:
		c.injected++
		c.mu.Unlock()
		return Batch{}, fmt.Errorf("%w: dropped", ErrInjected)
	case roll < c.cfg.Drop+c.cfg.Partition:
		c.partition = c.cfg.PartitionLen - 1
		c.injected++
		c.mu.Unlock()
		return Batch{}, fmt.Errorf("%w: partition start", ErrInjected)
	case roll < c.cfg.Drop+c.cfg.Partition+c.cfg.Duplicate:
		if b, ok := c.prev[name]; ok {
			c.injected++
			c.mu.Unlock()
			return b, nil
		}
	}
	truncate := roll >= 1-c.cfg.Truncate
	c.mu.Unlock()

	b, err := c.inner.Fetch(ctx, name, from, max)
	if err != nil {
		return b, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if truncate && len(b.Events) > 1 {
		keep := 1 + c.rng.Intn(len(b.Events))
		if keep < len(b.Events) {
			b.Events = b.Events[:keep]
			c.injected++
		}
	}
	c.prev[name] = b
	return b, nil
}
