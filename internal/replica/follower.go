package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"acd/internal/journal"
	"acd/internal/shard"
)

// Config configures a Follower.
type Config struct {
	// Shard is the replicated group's configuration; its shard count
	// must match the leader's (0 adopts the leader's).
	Shard shard.Config
	// Tree is the follower's own journal tree: shipped events are
	// persisted here verbatim, so a promotion recovers from it exactly
	// as the leader would from its own disk.
	Tree journal.Tree
	// Source is the leader link.
	Source Source
	// MaxBatch caps events per fetch; 0 means DefaultMaxBatch.
	MaxBatch int
	// Interval is Run's idle poll interval when a round advances
	// nothing; 0 means DefaultInterval. Sources that block server-side
	// (long-poll) make this a rare fallback.
	Interval time.Duration
	// Wait is the server-side long-poll wait requested while a pull
	// round has not yet advanced (WaitSource sources only; 0 disables
	// long-polling). Once any journal ships events the rest of the
	// round fetches without waiting, so an empty journal never gates a
	// busy one's replay throughput.
	Wait time.Duration
}

// Defaults for Config's zero fields.
const (
	// DefaultMaxBatch is the default per-fetch event cap.
	DefaultMaxBatch = 512
	// DefaultInterval is Run's default idle poll interval.
	DefaultInterval = 25 * time.Millisecond
)

// Follower replicates a leader into its own journal tree and a warm
// standby. It is safe for concurrent use: Step (or Run) advances
// replication while Standby-backed reads and Status run from other
// goroutines.
type Follower struct {
	cfg   Config
	names []string // canonical journal order: shards..., router

	mu       sync.Mutex
	stores   map[string]*journal.Store
	fs       map[string]journal.FS
	standby  *shard.Standby
	epoch    int64
	leaderWM map[string]int64 // leader durable watermark per journal, from the latest batch
	closed   bool
}

// NewFollower opens (or resumes) a follower over its own journal tree:
// it discovers the leader's layout, mirrors it locally, recovers
// whatever was already shipped, and seeds the warm standby from it.
func NewFollower(ctx context.Context, cfg Config) (*Follower, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("replica: Config.Source is required")
	}
	if cfg.Tree == nil {
		return nil, fmt.Errorf("replica: Config.Tree is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	info, err := cfg.Source.Info(ctx)
	if err != nil {
		return nil, fmt.Errorf("replica: discovering leader layout: %w", err)
	}
	if cfg.Shard.Shards != 0 && cfg.Shard.Shards != info.Shards {
		return nil, fmt.Errorf("replica: leader runs %d shards, follower configured for %d", info.Shards, cfg.Shard.Shards)
	}
	cfg.Shard.Shards = info.Shards
	layout, err := journal.OpenLayout(cfg.Tree, info.Shards)
	if err != nil {
		return nil, err
	}
	if layout.Legacy {
		return nil, fmt.Errorf("replica: legacy journal layouts cannot follow (migrate first)")
	}
	f := &Follower{
		cfg:      cfg,
		stores:   make(map[string]*journal.Store),
		fs:       make(map[string]journal.FS),
		leaderWM: make(map[string]int64),
		epoch:    layout.Epoch,
	}
	for i := 0; i < info.Shards; i++ {
		f.names = append(f.names, journal.ShardDirName(i))
		f.fs[journal.ShardDirName(i)] = layout.ShardFS[i]
	}
	f.names = append(f.names, journal.RouterDir)
	f.fs[journal.RouterDir] = layout.RouterFS

	// A leader at an epoch below one we durably recorded is deposed:
	// following it would fold a forked history.
	if info.Epoch < f.epoch {
		return nil, fmt.Errorf("%w: leader at %d, follower has seen %d", ErrStaleEpoch, info.Epoch, f.epoch)
	}
	if info.Epoch > f.epoch {
		if _, err := journal.SetEpoch(cfg.Tree.Root(), info.Epoch); err != nil {
			return nil, err
		}
		f.epoch = info.Epoch
	}

	for _, name := range f.names {
		st, _, err := journal.OpenOptions(f.fs[name], journal.Options{
			RotateBytes: cfg.Shard.Engine.RotateBytes,
			Obs:         cfg.Shard.Engine.Obs,
		})
		if err != nil {
			f.closeStoresLocked()
			return nil, fmt.Errorf("replica: opening %s: %w", name, err)
		}
		f.stores[name] = st
	}
	if err := f.reseedLocked(); err != nil {
		f.closeStoresLocked()
		return nil, err
	}
	return f, nil
}

// reseedLocked rebuilds the warm standby from the follower's own
// journals — at open, and whenever a shipped checkpoint replaces a
// journal's history wholesale.
func (f *Follower) reseedLocked() error {
	sb, err := shard.NewStandby(f.cfg.Shard)
	if err != nil {
		return err
	}
	for _, name := range f.names {
		// The follower is the only writer and every batch is committed
		// before this runs, so an unbounded tail is exactly the
		// journal's content.
		tb, err := journal.ReadTail(f.fs[name], 1, 0, 0)
		if err != nil {
			return fmt.Errorf("replica: reseeding from %s: %w", name, err)
		}
		if tb.Checkpoint != nil {
			if err := sb.ApplyCheckpoint(name, tb.Checkpoint); err != nil {
				return err
			}
		}
		for _, ev := range tb.Events {
			if err := sb.Apply(name, ev); err != nil {
				return err
			}
		}
	}
	f.standby = sb
	return nil
}

// Standby returns the warm replica the follower folds events into —
// the stale-ok read surface.
func (f *Follower) Standby() *shard.Standby {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.standby
}

// Shards returns the replicated group's shard count (adopted from the
// leader when the config left it 0).
func (f *Follower) Shards() int { return f.cfg.Shard.Shards }

// Epoch returns the highest leader epoch the follower has durably
// recorded.
func (f *Follower) Epoch() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// Step runs one pull round over every journal, applying whatever the
// leader has committed past the follower's cursors. It returns whether
// any journal advanced. Fetch failures are transient (the link or the
// leader hiccuped — retry); apply failures are fatal (the local
// journal or fold refused the batch) and are wrapped so Run can tell
// the difference.
func (f *Follower) Step(ctx context.Context) (bool, error) {
	advanced := false
	for _, name := range f.names {
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			return advanced, fatal(fmt.Errorf("replica: follower closed"))
		}
		from := f.stores[name].NextSeq()
		f.mu.Unlock()
		b, err := f.fetch(ctx, name, from, advanced)
		if err != nil {
			return advanced, err
		}
		n, err := f.apply(name, b)
		if err != nil {
			return advanced, err
		}
		if n > 0 {
			advanced = true
		}
	}
	return advanced, nil
}

// fetch pulls one batch, long-polling (Config.Wait) only while the
// round has advanced nothing — a journal with events returns
// immediately either way, so the wait only ever spends idle time.
func (f *Follower) fetch(ctx context.Context, name string, from int64, advanced bool) (Batch, error) {
	if ws, ok := f.cfg.Source.(WaitSource); ok {
		wait := f.cfg.Wait
		if advanced {
			wait = 0
		}
		return ws.FetchWait(ctx, name, from, f.cfg.MaxBatch, wait)
	}
	return f.cfg.Source.Fetch(ctx, name, from, f.cfg.MaxBatch)
}

// apply persists one batch into the follower's journal (commit before
// ack — the standby only ever folds durable events) and then folds it.
// Duplicated events are skipped and a gap stops the batch (the rest is
// re-fetched), which keeps replication idempotent under chaotic links.
// It returns how many events advanced the journal.
func (f *Follower) apply(name string, b Batch) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, fatal(fmt.Errorf("replica: follower closed"))
	}
	if b.Epoch < f.epoch {
		return 0, fatal(fmt.Errorf("%w: batch at %d, follower has seen %d", ErrStaleEpoch, b.Epoch, f.epoch))
	}
	if b.Epoch > f.epoch {
		if _, err := journal.SetEpoch(f.cfg.Tree.Root(), b.Epoch); err != nil {
			return 0, fatal(err)
		}
		f.epoch = b.Epoch
	}
	if b.Durable > f.leaderWM[name] {
		f.leaderWM[name] = b.Durable
	}
	st, ok := f.stores[name]
	if !ok {
		return 0, fatal(fmt.Errorf("replica: batch for unknown journal %q", name))
	}
	applied := 0
	if b.Checkpoint != nil && b.Checkpoint.Seq >= st.NextSeq() {
		if err := st.InstallCheckpoint(b.Checkpoint); err != nil {
			return 0, fatal(err)
		}
		if err := f.reseedLocked(); err != nil {
			return 0, fatal(err)
		}
		applied++
	}
	var fresh []journal.Event
	for _, ev := range b.Events {
		if ev.Seq < st.NextSeq() {
			continue // duplicate: already persisted
		}
		if ev.Seq > st.NextSeq() {
			break // gap (reordered or truncated batch): re-fetch later
		}
		if err := st.AppendShipped(ev); err != nil {
			return applied, fatal(err)
		}
		fresh = append(fresh, ev)
	}
	if len(fresh) > 0 {
		if err := st.Commit(); err != nil {
			return applied, fatal(err)
		}
		for _, ev := range fresh {
			if err := f.standby.Apply(name, ev); err != nil {
				return applied, fatal(err)
			}
		}
		applied += len(fresh)
	}
	return applied, nil
}

// Run pulls until the context ends or a fatal error stops replication.
// Transient fetch failures back off and retry; an idle round sleeps
// Config.Interval.
func (f *Follower) Run(ctx context.Context) error {
	backoff := f.cfg.Interval
	for {
		advanced, err := f.Step(ctx)
		if ctx.Err() != nil {
			return nil
		}
		switch {
		case err == nil:
			backoff = f.cfg.Interval
			if !advanced {
				if !sleepCtx(ctx, f.cfg.Interval) {
					return nil
				}
			}
		case isFatal(err):
			return err
		default:
			if !sleepCtx(ctx, backoff) {
				return nil
			}
			if backoff < time.Second {
				backoff *= 2
			}
		}
	}
}

// sleepCtx sleeps d or until ctx ends; false means the context ended.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// JournalStatus is one journal's replication position.
type JournalStatus struct {
	// Applied is the follower's last persisted-and-folded sequence.
	Applied int64 `json:"applied"`
	// LeaderDurable is the leader's durable watermark from the latest
	// batch (0 before the first fetch).
	LeaderDurable int64 `json:"leader_durable"`
}

// Status is a follower's replication position across all journals.
type Status struct {
	// Epoch is the highest leader epoch durably recorded.
	Epoch int64 `json:"epoch"`
	// Lag sums max(0, LeaderDurable-Applied) over the journals: the
	// number of committed leader events not yet folded here.
	Lag int64 `json:"lag"`
	// Journals maps journal name to its position.
	Journals map[string]JournalStatus `json:"journals"`
}

// Status reports the follower's current replication position.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := Status{Epoch: f.epoch, Journals: make(map[string]JournalStatus, len(f.names))}
	for _, name := range f.names {
		js := JournalStatus{LeaderDurable: f.leaderWM[name]}
		if s := f.stores[name]; s != nil {
			js.Applied = s.NextSeq() - 1
		}
		if d := js.LeaderDurable - js.Applied; d > 0 {
			st.Lag += d
		}
		st.Journals[name] = js
	}
	return st
}

// Lag returns the total replication lag in events (see Status.Lag).
func (f *Follower) Lag() int64 { return f.Status().Lag }

// Promote turns the follower into the leader. When old is non-nil —
// the deposed leader's journal tree, reachable on shared or recovered
// storage — promotion first fsync-fences the old epoch (so a revenant
// process reopening that tree stands down) and replays whatever tail
// the old disk still holds past the follower's cursors. The follower's
// own tree is then stamped with the new epoch and re-opened through
// the full recovery fold as a read-write group. The committed-prefix
// contract holds throughout: every event durable on the old tree is
// replayed, and nothing else is invented. The follower is closed
// either way; on success the returned group owns the journals.
func (f *Follower) Promote(old journal.Tree) (*shard.Group, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, fmt.Errorf("replica: follower closed")
	}
	newEpoch := f.epoch + 1
	if old != nil {
		fenced, err := journal.FenceEpoch(old.Root(), f.epoch+1)
		if err != nil {
			return nil, fmt.Errorf("replica: fencing old leader: %w", err)
		}
		newEpoch = fenced
		if err := f.replayOldLocked(old); err != nil {
			return nil, err
		}
	}
	if _, err := journal.SetEpoch(f.cfg.Tree.Root(), newEpoch); err != nil {
		return nil, err
	}
	f.closeStoresLocked()
	f.closed = true
	g, err := shard.Open(f.cfg.Shard, f.cfg.Tree)
	if err != nil {
		return nil, fmt.Errorf("replica: recovering promoted group: %w", err)
	}
	return g, nil
}

// replayOldLocked drains the old leader tree's journals into the
// follower's, from each follower cursor to whatever survives on the
// old disk. Unbounded reads are safe: the old leader is fenced and
// dead, so its files are frozen.
func (f *Follower) replayOldLocked(old journal.Tree) error {
	layout, err := journal.OpenLayout(old, f.cfg.Shard.Shards)
	if err != nil {
		return fmt.Errorf("replica: opening old leader tree: %w", err)
	}
	if layout.Legacy {
		return fmt.Errorf("replica: old leader tree is a legacy layout")
	}
	oldFS := make(map[string]journal.FS, len(f.names))
	for i := 0; i < f.cfg.Shard.Shards; i++ {
		oldFS[journal.ShardDirName(i)] = layout.ShardFS[i]
	}
	oldFS[journal.RouterDir] = layout.RouterFS
	for _, name := range f.names {
		st := f.stores[name]
		for {
			tb, err := journal.ReadTail(oldFS[name], st.NextSeq(), 0, 4096)
			if err != nil {
				return fmt.Errorf("replica: replaying %s tail: %w", name, err)
			}
			progressed := false
			if tb.Checkpoint != nil && tb.Checkpoint.Seq >= st.NextSeq() {
				if err := st.InstallCheckpoint(tb.Checkpoint); err != nil {
					return err
				}
				progressed = true
			}
			appended := false
			for _, ev := range tb.Events {
				if ev.Seq < st.NextSeq() {
					continue
				}
				if err := st.AppendShipped(ev); err != nil {
					return err
				}
				appended = true
			}
			if appended {
				if err := st.Commit(); err != nil {
					return err
				}
				progressed = true
			}
			if !progressed {
				break
			}
		}
	}
	return nil
}

// Close stops the follower and closes its journals. Safe to call after
// Promote (a no-op: the promoted group owns the journals).
func (f *Follower) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	f.closeStoresLocked()
	return nil
}

// closeStoresLocked closes every open journal store.
func (f *Follower) closeStoresLocked() {
	for name, st := range f.stores {
		if st != nil {
			st.Close()
			f.stores[name] = nil
		}
	}
}

// fatalErr wraps errors that must stop replication (local journal
// poisoned, fold refused, epoch fork) as opposed to transient link
// failures Run retries.
type fatalErr struct{ err error }

func (e fatalErr) Error() string { return e.err.Error() }
func (e fatalErr) Unwrap() error { return e.err }

func fatal(err error) error { return fatalErr{err: err} }

// isFatal reports whether err (anywhere in its chain) is fatal.
func isFatal(err error) bool {
	var fe fatalErr
	return errors.As(err, &fe)
}
