package replica

// The deterministic replication simulation: a scripted leader workload
// over MemFS, a seeded chaotic link, and three families of assertions —
// (a) follower standby state is byte-identical to what recovery would
// rebuild from the leader's journal prefix at the follower's cursor,
// (b) promotion after a leader power-loss at every operation offset
// preserves the committed-prefix contract (no acked record lost, none
// invented, no answer double-applied), and (c) follower stale reads are
// always prefix-consistent snapshots. Everything is driven from seeded
// PRNGs, so a failure replays exactly.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"acd/internal/incremental"
	"acd/internal/journal"
	"acd/internal/shard"
)

// simOp is one scripted leader operation.
type simOp struct {
	kind    string // "add", "answer", "resolve", "checkpoint"
	recs    []incremental.Record
	aIdx    [2]int // acked-gid indices for an answer op
	fc      float64
}

// buildOps scripts a deterministic workload: mostly adds with
// duplicate-prone texts, some answers over already-acked records, a
// few resolves and checkpoints.
func buildOps(rng *rand.Rand, n, maxBatch int) []simOp {
	ops := make([]simOp, 0, n)
	acked := 0
	for len(ops) < n {
		roll := rng.Float64()
		switch {
		case roll < 0.60 || acked < 2:
			batch := 1 + rng.Intn(maxBatch)
			recs := make([]incremental.Record, batch)
			for i := range recs {
				ent := rng.Intn(1 + acked/2)
				recs[i] = incremental.Record{
					Fields: map[string]string{
						"name": fmt.Sprintf("entity %03d common token", ent),
						"city": fmt.Sprintf("city %d", ent%5),
					},
					Entity: fmt.Sprintf("e%03d", ent),
				}
			}
			ops = append(ops, simOp{kind: "add", recs: recs})
			acked += batch
		case roll < 0.85:
			i, j := rng.Intn(acked), rng.Intn(acked)
			if i == j {
				j = (j + 1) % acked
			}
			ops = append(ops, simOp{kind: "answer", aIdx: [2]int{i, j}, fc: rng.Float64()})
		case roll < 0.95:
			ops = append(ops, simOp{kind: "resolve"})
		default:
			ops = append(ops, simOp{kind: "checkpoint"})
		}
	}
	return ops
}

// ledger tracks what the leader has acknowledged to "clients".
type ledger struct {
	acked   []int // gids returned by Add, in ack order
	issued  int   // records handed to Add (acked or not)
	answers map[[2]int]float64
}

func newLedger() *ledger { return &ledger{answers: make(map[[2]int]float64)} }

// applyOp drives one scripted op into the leader, recording acks.
func applyOp(t *testing.T, g *shard.Group, op simOp, led *ledger) {
	t.Helper()
	switch op.kind {
	case "add":
		led.issued += len(op.recs)
		gids, err := g.Add(op.recs...)
		if err != nil {
			t.Fatalf("Add: %v", err)
		}
		led.acked = append(led.acked, gids...)
	case "answer":
		lo, hi := led.acked[op.aIdx[0]], led.acked[op.aIdx[1]]
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == hi {
			return
		}
		if err := g.AddAnswer(lo, hi, op.fc, "sim"); err != nil {
			t.Fatalf("AddAnswer(%d,%d): %v", lo, hi, err)
		}
		if _, dup := led.answers[[2]int{lo, hi}]; !dup {
			led.answers[[2]int{lo, hi}] = op.fc
		}
	case "resolve":
		if _, err := g.Resolve(context.Background()); err != nil {
			t.Fatalf("Resolve: %v", err)
		}
	case "checkpoint":
		if err := g.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
	}
}

// simEngineCfg is the engine config every simulation node shares.
// Small rotation and checkpoint cadence force segment churn and
// checkpoint shipping through the replication path.
func simEngineCfg(seed int64) incremental.Config {
	return incremental.Config{
		Seed:            seed,
		RotateBytes:     600,
		CheckpointEvery: 24,
	}
}

// stepTolerant advances the follower, failing the test only on fatal
// errors — injected link faults are the point of the exercise.
func stepTolerant(t *testing.T, fol *Follower) bool {
	t.Helper()
	advanced, err := fol.Step(context.Background())
	if err != nil && isFatal(err) {
		t.Fatalf("fatal replication error: %v", err)
	}
	return advanced && err == nil
}

// drain steps until a full clean round advances nothing, i.e. the
// follower holds everything the leader has committed.
func drain(t *testing.T, fol *Follower) {
	t.Helper()
	// A round that only saw injected faults or duplicate (stale) batches
	// makes no progress without being caught up, so idle rounds alone
	// can't prove the follower is drained — require the lag gauge to hit
	// zero too (leader watermarks ride every clean batch, duplicates
	// included, so Lag is trustworthy once writes stop).
	idle := 0
	for tries := 0; idle < 2 || fol.Lag() > 0; tries++ {
		if tries > 10000 {
			t.Fatalf("follower failed to drain; status %+v", fol.Status())
		}
		advanced, err := fol.Step(context.Background())
		if err != nil {
			if isFatal(err) {
				t.Fatalf("fatal replication error: %v", err)
			}
			idle = 0
			continue
		}
		if advanced {
			idle = 0
		} else {
			idle++
		}
	}
}

// snapJSON renders an engine snapshot with the journal position zeroed
// — the byte-identity oracle form.
func snapJSON(t *testing.T, cp *journal.Checkpoint) string {
	t.Helper()
	cp.Seq = 0
	b, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// assertByteIdentity checks every shard engine in the follower's
// standby against an engine rebuilt (via the recovery fold) from the
// leader journal's prefix at the follower's cursor. Cursors the
// leader has compacted past are skipped mid-stream — the prefix is no
// longer reconstructable — but the final drained check always runs.
func assertByteIdentity(t *testing.T, leader *shard.Group, fol *Follower, cfg shard.Config) {
	t.Helper()
	feeds := make(map[string]shard.Feed)
	for _, f := range leader.Feeds() {
		feeds[f.Name] = f
	}
	st := fol.Status()
	for i := 0; i < cfg.Shards; i++ {
		name := journal.ShardDirName(i)
		cursor := st.Journals[name].Applied
		if cursor == 0 {
			continue
		}
		tb, err := journal.ReadTail(feeds[name].FS, 1, cursor, 0)
		if err != nil {
			t.Fatalf("oracle tail %s: %v", name, err)
		}
		if tb.Checkpoint != nil && tb.Checkpoint.Seq > cursor {
			continue // compacted past the cursor; prefix gone
		}
		oracle, err := incremental.Rebuild(cfg.Engine, tb.Checkpoint, tb.Events)
		if err != nil {
			t.Fatalf("oracle rebuild %s: %v", name, err)
		}
		want := snapJSON(t, oracle.Snapshot())
		got := snapJSON(t, fol.Standby().Engine(i).Snapshot())
		if got != want {
			t.Fatalf("shard %d state diverged at seq %d:\n got %s\nwant %s", i, cursor, got, want)
		}
	}
}

// assertPrefixConsistent checks a standby snapshot is internally
// consistent (clusters partition the live ids) and monotone relative
// to the previous read — what "stale but prefix-consistent" means for
// a reader.
func assertPrefixConsistent(t *testing.T, snap, prev *shard.Snapshot) {
	t.Helper()
	seen := make(map[int]bool)
	for _, set := range snap.Clusters {
		for _, gid := range set {
			if seen[gid] {
				t.Fatalf("gid %d in two clusters: %v", gid, snap.Clusters)
			}
			seen[gid] = true
		}
	}
	if len(seen) != snap.Records {
		t.Fatalf("clusters cover %d live ids, snapshot claims %d records", len(seen), snap.Records)
	}
	if prev != nil {
		if snap.Records < prev.Records {
			t.Fatalf("records regressed: %d after %d", snap.Records, prev.Records)
		}
		if snap.Round < prev.Round {
			t.Fatalf("round regressed: %d after %d", snap.Round, prev.Round)
		}
		if snap.Answers < prev.Answers {
			t.Fatalf("answers regressed: %d after %d", snap.Answers, prev.Answers)
		}
	}
}

// chaosMixes are the fault profiles the sweep runs: a clean link, a
// moderately lossy one, and a hostile one.
func chaosMixes() []ChaosConfig {
	return []ChaosConfig{
		{},
		{Drop: 0.15, Duplicate: 0.15, Truncate: 0.20, Partition: 0.05, PartitionLen: 3},
		{Drop: 0.40, Duplicate: 0.25, Truncate: 0.25, Partition: 0.05, PartitionLen: 6},
	}
}

// TestSimReplication is the replication half of the deterministic
// simulation: seeds × shard counts × fault mixes, with byte-identity
// and prefix-consistency checked throughout and full equality with the
// leader's own snapshot once drained.
func TestSimReplication(t *testing.T) {
	for _, shards := range []int{1, 3} {
		for _, seed := range []int64{1, 7} {
			for mi, mix := range chaosMixes() {
				mix := mix
				name := fmt.Sprintf("shards=%d/seed=%d/mix=%d", shards, seed, mi)
				t.Run(name, func(t *testing.T) {
					runReplicationSim(t, shards, seed, mix)
				})
			}
		}
	}
}

func runReplicationSim(t *testing.T, shards int, seed int64, mix ChaosConfig) {
	cfg := shard.Config{Shards: shards, Engine: simEngineCfg(seed)}
	leaderTree := journal.NewMemTree()
	leader, err := shard.Open(cfg, leaderTree)
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()

	src, err := NewLocalSource(leader)
	if err != nil {
		t.Fatal(err)
	}
	mix.Seed = seed * 31
	link := NewChaosLink(src, mix)
	fol, err := NewFollower(context.Background(), Config{
		Shard:    cfg,
		Tree:     journal.NewMemTree(),
		Source:   link,
		MaxBatch: 7, // small batches force many fetches through the chaos
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()

	rng := rand.New(rand.NewSource(seed))
	ops := buildOps(rng, 70, 3)
	led := newLedger()
	var prevSnap *shard.Snapshot
	for i, op := range ops {
		applyOp(t, leader, op, led)
		stepTolerant(t, fol)
		if i%9 == 4 {
			snap := fol.Standby().Snapshot()
			assertPrefixConsistent(t, snap, prevSnap)
			prevSnap = snap
			assertByteIdentity(t, leader, fol, cfg)
		}
	}
	drain(t, fol)
	if lag := fol.Lag(); lag != 0 {
		t.Fatalf("drained follower still lags %d events", lag)
	}
	assertByteIdentity(t, leader, fol, cfg)

	// Fully drained, the standby's published view must match the
	// leader's own snapshot field for field (PendingPairs excepted:
	// standbys do not mirror the cross-shard handoff queue).
	want, got := leader.Snapshot(), fol.Standby().Snapshot()
	if got.Records != want.Records || got.Round != want.Round ||
		got.ResolvedUpTo != want.ResolvedUpTo || got.Answers != want.Answers {
		t.Fatalf("drained standby %+v, leader %+v", got, want)
	}
	wj, _ := json.Marshal(want.Clusters)
	gj, _ := json.Marshal(got.Clusters)
	if string(wj) != string(gj) {
		t.Fatalf("drained clustering differs:\n got %s\nwant %s", gj, wj)
	}
	if len(led.acked) != want.Records {
		t.Fatalf("leader snapshot holds %d records, ledger acked %d", want.Records, len(led.acked))
	}
	if mix.Drop+mix.Duplicate+mix.Truncate+mix.Partition > 0 && link.Injected() == 0 {
		t.Fatal("chaos link injected nothing; the sweep is not exercising faults")
	}
}

// TestSimPromotionEveryOffset is the failover half: the leader is
// power-lost after every operation offset, the follower (partially
// caught up, behind a chaotic link) promotes over the crash image, and
// the promoted group must match a direct recovery of that image
// exactly — the committed-prefix contract, plus ledger floor/ceiling
// bounds and a probe write proving the promoted node takes traffic.
func TestSimPromotionEveryOffset(t *testing.T) {
	for _, shards := range []int{1, 3} {
		seed := int64(11 + shards)
		rng := rand.New(rand.NewSource(seed))
		ops := buildOps(rng, 24, 1)
		for offset := 0; offset <= len(ops); offset++ {
			t.Run(fmt.Sprintf("shards=%d/offset=%d", shards, offset), func(t *testing.T) {
				runPromotionSim(t, shards, seed, ops[:offset], offset)
			})
		}
	}
}

func runPromotionSim(t *testing.T, shards int, seed int64, ops []simOp, offset int) {
	cfg := shard.Config{Shards: shards, Engine: simEngineCfg(seed)}
	leaderTree := journal.NewMemTree()
	leader, err := shard.Open(cfg, leaderTree)
	if err != nil {
		t.Fatal(err)
	}

	src, err := NewLocalSource(leader)
	if err != nil {
		t.Fatal(err)
	}
	link := NewChaosLink(src, ChaosConfig{
		Seed: seed*1009 + int64(offset),
		Drop: 0.3, Duplicate: 0.2, Truncate: 0.2,
	})
	fol, err := NewFollower(context.Background(), Config{
		Shard:    cfg,
		Tree:     journal.NewMemTree(),
		Source:   link,
		MaxBatch: 5,
	})
	if err != nil {
		t.Fatal(err)
	}

	led := newLedger()
	for _, op := range ops {
		applyOp(t, leader, op, led)
		stepTolerant(t, fol) // the follower trails at a fault-dependent lag
	}

	// Power loss: only synced bytes survive. The crash image is taken
	// before Close so the dying process adds nothing.
	crash := leaderTree.CrashCopy()
	oracleImage := crash.CrashCopy() // pristine copy for the recovery oracle
	leader.Close()

	promoted, err := fol.Promote(crash)
	if err != nil {
		t.Fatalf("promote at offset %d: %v", offset, err)
	}
	defer promoted.Close()
	if err := fol.Close(); err != nil {
		t.Fatalf("closing promoted follower: %v", err)
	}

	// The promoted node is fenced forward of the dead leader.
	if promoted.Epoch() < 1 {
		t.Fatalf("promoted epoch %d, want >= 1", promoted.Epoch())
	}
	oldEpoch, err := journal.ReadEpoch(crash.Root())
	if err != nil {
		t.Fatal(err)
	}
	if oldEpoch != promoted.Epoch() {
		t.Fatalf("old tree fenced at %d, promoted at %d", oldEpoch, promoted.Epoch())
	}

	// Committed-prefix contract, part 1: the promoted state equals a
	// direct recovery of the crash image — nothing lost, nothing
	// invented, nothing double-applied.
	oracle, err := shard.Open(cfg, oracleImage)
	if err != nil {
		t.Fatalf("oracle recovery: %v", err)
	}
	defer oracle.Close()
	oj, _ := json.Marshal(zeroShards(oracle.Snapshot()))
	pj, _ := json.Marshal(zeroShards(promoted.Snapshot()))
	if string(oj) != string(pj) {
		t.Fatalf("promoted state differs from direct recovery at offset %d:\npromoted %s\n  oracle %s", offset, pj, oj)
	}

	// Part 2: ledger bounds. Every acked record is present in the
	// clustering; the total never exceeds what clients submitted; every
	// acked answer survives.
	snap := promoted.Snapshot()
	live := make(map[int]bool)
	for _, set := range snap.Clusters {
		for _, gid := range set {
			live[gid] = true
		}
	}
	for _, gid := range led.acked {
		if !live[gid] {
			t.Fatalf("acked gid %d missing after promotion at offset %d", gid, offset)
		}
	}
	if snap.Records < len(led.acked) || snap.Records > led.issued {
		t.Fatalf("promoted records %d outside [acked %d, issued %d]", snap.Records, len(led.acked), led.issued)
	}
	if snap.Answers < len(led.answers) {
		t.Fatalf("promoted answers %d below acked floor %d", snap.Answers, len(led.answers))
	}

	// Part 3: the promoted node takes writes.
	ids, err := promoted.Add(incremental.Record{Fields: map[string]string{"name": "post promotion probe"}})
	if err != nil || len(ids) != 1 {
		t.Fatalf("promoted Add: %v (%v)", err, ids)
	}
	if _, err := promoted.Resolve(context.Background()); err != nil {
		t.Fatalf("promoted Resolve: %v", err)
	}
}

// zeroShards normalizes snapshot copies for deep comparison (PerShard
// occupancy depends only on state, so it is kept).
func zeroShards(s *shard.Snapshot) *shard.Snapshot { return s }

// TestFollowerRefusesStaleEpoch pins the fencing contract: a follower
// that has durably seen epoch E refuses to fold batches from any
// leader below E.
func TestFollowerRefusesStaleEpoch(t *testing.T) {
	cfg := shard.Config{Shards: 2, Engine: simEngineCfg(5)}
	leaderTree := journal.NewMemTree()
	leader, err := shard.Open(cfg, leaderTree)
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	src, err := NewLocalSource(leader)
	if err != nil {
		t.Fatal(err)
	}

	folTree := journal.NewMemTree()
	if _, err := journal.OpenLayout(folTree, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := journal.SetEpoch(folTree.Root(), 7); err != nil {
		t.Fatal(err)
	}
	_, err = NewFollower(context.Background(), Config{Shard: cfg, Tree: folTree, Source: src})
	if err == nil || !errorsIs(err, ErrStaleEpoch) {
		t.Fatalf("stale leader accepted: %v", err)
	}
}

// errorsIs avoids importing errors twice in a test-only helper.
func errorsIs(err, target error) bool {
	for e := err; e != nil; {
		if e == target {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// TestPromoteWithoutOldTree covers total leader loss: no old disk to
// replay, the follower promotes with exactly what it replicated.
func TestPromoteWithoutOldTree(t *testing.T) {
	cfg := shard.Config{Shards: 2, Engine: simEngineCfg(9)}
	leaderTree := journal.NewMemTree()
	leader, err := shard.Open(cfg, leaderTree)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewLocalSource(leader)
	if err != nil {
		t.Fatal(err)
	}
	fol, err := NewFollower(context.Background(), Config{Shard: cfg, Tree: journal.NewMemTree(), Source: src})
	if err != nil {
		t.Fatal(err)
	}
	led := newLedger()
	rng := rand.New(rand.NewSource(9))
	for _, op := range buildOps(rng, 12, 2) {
		applyOp(t, leader, op, led)
	}
	drain(t, fol)
	replicated := fol.Standby().Snapshot().Records
	leader.Close()

	promoted, err := fol.Promote(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer promoted.Close()
	if got := promoted.Snapshot().Records; got != replicated {
		t.Fatalf("promoted holds %d records, follower had replicated %d", got, replicated)
	}
	if promoted.Epoch() != 1 {
		t.Fatalf("promoted epoch %d, want 1", promoted.Epoch())
	}
}

// TestChaosLinkDeterministic pins that a seed fully determines the
// fault stream — the property that makes every simulation replayable.
func TestChaosLinkDeterministic(t *testing.T) {
	cfg := shard.Config{Shards: 1, Engine: simEngineCfg(3)}
	run := func() (int, string) {
		tree := journal.NewMemTree()
		g, err := shard.Open(cfg, tree)
		if err != nil {
			t.Fatal(err)
		}
		defer g.Close()
		led := newLedger()
		rng := rand.New(rand.NewSource(3))
		for _, op := range buildOps(rng, 20, 2) {
			applyOp(t, g, op, led)
		}
		src, err := NewLocalSource(g)
		if err != nil {
			t.Fatal(err)
		}
		link := NewChaosLink(src, ChaosConfig{Seed: 99, Drop: 0.3, Duplicate: 0.2, Truncate: 0.2, Partition: 0.1, PartitionLen: 2})
		var trace string
		for i := 0; i < 40; i++ {
			b, err := link.Fetch(context.Background(), journal.ShardDirName(0), 1, 4)
			if err != nil {
				trace += "E"
				continue
			}
			trace += fmt.Sprintf("%d", len(b.Events))
		}
		return link.Injected(), trace
	}
	n1, t1 := run()
	n2, t2 := run()
	if n1 != n2 || t1 != t2 {
		t.Fatalf("same seed diverged: %d/%s vs %d/%s", n1, t1, n2, t2)
	}
	if n1 == 0 {
		t.Fatal("chaos injected nothing at these rates")
	}
}
