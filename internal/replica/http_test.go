package replica

// The HTTP transport's own battery: Handler and HTTPSource round-trip
// a real leader over a live httptest server, the Run loop drains it
// with long-polling on, and the error surfaces (bad methods, unknown
// journals, dead leaders, epoch regressions) behave as documented.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"acd/internal/incremental"
	"acd/internal/journal"
	"acd/internal/shard"
)

// startHTTPLeader boots a journaled leader group and serves its
// replication stream over a real HTTP server.
func startHTTPLeader(t *testing.T, shards int) (*shard.Group, *httptest.Server) {
	t.Helper()
	cfg := shard.Config{Shards: shards, Engine: simEngineCfg(1)}
	g, err := shard.Open(cfg, journal.NewMemTree())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	src, err := NewLocalSource(g)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(&Handler{Source: src})
	t.Cleanup(srv.Close)
	return g, srv
}

// TestHTTPTransport: a follower over HTTPSource replicates a live
// leader through the long-poll protocol — layout discovery, batch
// fetches, checkpoint shipping — and its drained standby matches the
// leader's snapshot exactly.
func TestHTTPTransport(t *testing.T) {
	leader, srv := startHTTPLeader(t, 2)
	src := &HTTPSource{Base: srv.URL}

	info, err := src.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Shards != 2 || len(info.Journals) != 3 {
		t.Fatalf("Info = %+v", info)
	}

	fol, err := NewFollower(context.Background(), Config{
		Tree:   journal.NewMemTree(),
		Source: src,
		Wait:   200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	if fol.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2 (adopted from the leader)", fol.Shards())
	}
	if fol.Epoch() != leader.Epoch() {
		t.Fatalf("Epoch() = %d, leader at %d", fol.Epoch(), leader.Epoch())
	}

	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- fol.Run(ctx) }()

	var acked []int
	for i := 0; i < 30; i++ {
		gids, err := leader.Add(incremental.Record{Fields: map[string]string{
			"name": fmt.Sprintf("entity %03d common token", i%7),
		}})
		if err != nil {
			t.Fatal(err)
		}
		acked = append(acked, gids...)
	}
	if err := leader.AddAnswer(acked[0], acked[1], 0.9, "test"); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	want := leader.Snapshot()
	deadline := time.Now().Add(10 * time.Second)
	for {
		got := fol.Standby().Snapshot()
		if got.Records == want.Records && got.Round == want.Round && fol.Lag() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never drained: %+v vs leader %+v (lag %d)", got, want, fol.Lag())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("Run returned %v on context cancel", err)
	}
}

// TestHTTPHandlerEdges: method and parameter policing on the stream
// endpoint, and the long-poll wait actually holding an empty fetch
// open instead of busy-answering.
func TestHTTPHandlerEdges(t *testing.T) {
	_, srv := startHTTPLeader(t, 1)

	resp, err := http.Post(srv.URL, "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST to stream = %d, want 405", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "?journal=no-such-journal")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("unknown journal = %d, want 500", resp.StatusCode)
	}

	// Caught-up fetch with a wait: the response must be held open for
	// roughly the wait, not answered immediately.
	src := &HTTPSource{Base: srv.URL}
	t0 := time.Now()
	b, err := src.FetchWait(context.Background(), journal.ShardDirName(0), 1, 10, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Events) != 0 || b.Checkpoint != nil {
		t.Fatalf("empty journal served a batch: %+v", b)
	}
	if d := time.Since(t0); d < 100*time.Millisecond {
		t.Fatalf("long-poll returned after %v, want ~150ms", d)
	}

	// Garbage parameters fall back to defaults rather than erroring.
	resp, err = http.Get(srv.URL + "?journal=" + journal.ShardDirName(0) + "&from=bogus&max=&wait=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("garbage params = %d, want 200", resp.StatusCode)
	}
}

// TestHTTPSourceErrors: non-200 responses and dead leaders surface as
// errors, not zero batches.
func TestHTTPSourceErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	src := &HTTPSource{Base: srv.URL, Client: srv.Client()}
	if _, err := src.Info(context.Background()); err == nil || !strings.Contains(err.Error(), "500") {
		t.Fatalf("Info against a 500 server: %v", err)
	}
	if _, err := src.Fetch(context.Background(), "shard-000", 1, 10); err == nil {
		t.Fatal("Fetch against a 500 server succeeded")
	}
	srv.Close()
	if _, err := src.Fetch(context.Background(), "shard-000", 1, 10); err == nil {
		t.Fatal("Fetch against a closed server succeeded")
	}
}

// regressingSource serves one batch at a raised epoch, then batches
// claiming an older epoch — the deposed-leader signature Run must
// treat as fatal. Early fetches inject transient errors to walk the
// retry/backoff path first.
type regressingSource struct {
	inner     Source
	transient int
	fetches   int
}

func (s *regressingSource) Info(ctx context.Context) (Info, error) { return s.inner.Info(ctx) }

func (s *regressingSource) Fetch(ctx context.Context, name string, from int64, max int) (Batch, error) {
	if s.transient > 0 {
		s.transient--
		return Batch{}, fmt.Errorf("flaky link")
	}
	b, err := s.inner.Fetch(ctx, name, from, max)
	if err != nil {
		return b, err
	}
	s.fetches++
	if s.fetches == 1 {
		b.Epoch = 7 // a newer leader generation appears...
	} else {
		b.Epoch = 3 // ...then an older one comes back: forked history
	}
	return b, nil
}

// TestRunFatalOnEpochRegression: Run retries transient fetch errors
// but stops permanently — returning the wrapped fatal error — when a
// batch arrives from an epoch below one the follower durably recorded.
func TestRunFatalOnEpochRegression(t *testing.T) {
	cfg := shard.Config{Shards: 1, Engine: simEngineCfg(1)}
	g, err := shard.Open(cfg, journal.NewMemTree())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Add(incremental.Record{Fields: map[string]string{"name": "a"}}); err != nil {
		t.Fatal(err)
	}
	local, err := NewLocalSource(g)
	if err != nil {
		t.Fatal(err)
	}
	src := &regressingSource{inner: local, transient: 2}
	fol, err := NewFollower(context.Background(), Config{
		Tree:     journal.NewMemTree(),
		Source:   src,
		Interval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = fol.Run(ctx)
	if err == nil || !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("Run = %v, want ErrStaleEpoch", err)
	}
	if !isFatal(err) {
		t.Fatalf("epoch regression not classified fatal: %v", err)
	}
	if fol.Epoch() != 7 {
		t.Fatalf("follower epoch %d, want the raised 7", fol.Epoch())
	}
}
