// Package replica replicates a journaled shard.Group across processes
// by shipping its journals: a leader exposes each journal's committed
// tail (per shard plus the router, respecting group-commit boundaries
// and segment rotation) through a Source, and a Follower pulls those
// tails, persists them verbatim into its own journal tree, and folds
// every event into a warm standby through exactly the recovery fold —
// so follower state is byte-identical to what the leader would rebuild
// at the same sequences. Followers serve stale-ok reads from the
// standby; Promote fences the deposed leader's epoch, replays whatever
// tail its disk still holds, and re-opens the follower's journals as a
// full read-write group.
//
// The protocol is pull-based and idempotent: cursors live on the
// follower (its own journal head), duplicated batches are skipped,
// reordered batches are refused and re-fetched, and only events at or
// below the leader's durable watermark are ever shipped — a follower
// can never be ahead of what the leader would itself recover.
package replica

import (
	"context"
	"fmt"
	"time"

	"acd/internal/journal"
	"acd/internal/shard"
)

// Info describes a leader's replicated layout: what a follower must
// mirror before it can pull.
type Info struct {
	// Shards is the leader's pinned shard count.
	Shards int `json:"shards"`
	// Epoch is the leader's replication epoch.
	Epoch int64 `json:"epoch"`
	// Journals names every journal in the layout (shard dirs plus the
	// router), in the canonical order followers iterate.
	Journals []string `json:"journals"`
}

// Batch is one fetched chunk of a journal's committed tail.
type Batch struct {
	// Journal names the journal the batch belongs to.
	Journal string `json:"journal"`
	// Epoch is the leader's epoch at fetch time. Followers refuse
	// batches from epochs below the highest they have seen.
	Epoch int64 `json:"epoch"`
	// From is the first sequence the fetch asked for.
	From int64 `json:"from"`
	// Checkpoint is non-nil when the leader compacted past From: the
	// follower must install it, then apply Events after it.
	Checkpoint *journal.Checkpoint `json:"checkpoint,omitempty"`
	// Events are contiguous committed events from From (or from
	// Checkpoint.Seq+1).
	Events []journal.Event `json:"events,omitempty"`
	// Durable is the leader journal's durable watermark at fetch time;
	// Durable minus the follower's applied sequence is its lag.
	Durable int64 `json:"durable"`
}

// Source is a follower's view of a leader: layout discovery plus
// per-journal tail fetches. Implementations must never return events
// beyond the leader's durable watermark.
type Source interface {
	// Info reports the leader's layout.
	Info(ctx context.Context) (Info, error)
	// Fetch reads the named journal's committed tail starting at from,
	// returning at most max events (0 = unbounded). An empty batch
	// means the follower is caught up.
	Fetch(ctx context.Context, name string, from int64, max int) (Batch, error)
}

// WaitSource is implemented by sources whose fetches can block
// server-side until events arrive (long-poll). Followers use it to
// wait only when a pull round has found nothing so far: a journal with
// a backlog is still served immediately, so one idle journal never
// throttles the others' replay throughput.
type WaitSource interface {
	Source
	// FetchWait is Fetch with an explicit long-poll wait; 0 returns
	// immediately.
	FetchWait(ctx context.Context, name string, from int64, max int, wait time.Duration) (Batch, error)
}

// LocalSource serves a leader group's journals in-process — the
// leader-side half of the HTTP transport, and the direct source the
// deterministic simulation drives.
type LocalSource struct {
	group *shard.Group
	feeds map[string]shard.Feed
	names []string
}

// NewLocalSource wraps a journaled group as a replication source.
// Volatile groups have no journals to ship and are refused.
func NewLocalSource(g *shard.Group) (*LocalSource, error) {
	feeds := g.Feeds()
	if feeds == nil {
		return nil, fmt.Errorf("replica: group has no journal layout to replicate")
	}
	s := &LocalSource{group: g, feeds: make(map[string]shard.Feed, len(feeds))}
	for _, f := range feeds {
		s.feeds[f.Name] = f
		s.names = append(s.names, f.Name)
	}
	return s, nil
}

// Info implements Source.
func (s *LocalSource) Info(ctx context.Context) (Info, error) {
	return Info{
		Shards:   s.group.Shards(),
		Epoch:    s.group.Epoch(),
		Journals: append([]string(nil), s.names...),
	}, nil
}

// Fetch implements Source. Only events at or below the journal's
// durable watermark are read, so a batch never contains an event the
// leader could lose in a crash.
func (s *LocalSource) Fetch(ctx context.Context, name string, from int64, max int) (Batch, error) {
	feed, ok := s.feeds[name]
	if !ok {
		return Batch{}, fmt.Errorf("replica: unknown journal %q", name)
	}
	durable := feed.Durable()
	b := Batch{Journal: name, Epoch: s.group.Epoch(), From: from, Durable: durable}
	if durable < from {
		return b, nil // caught up: nothing committed past the cursor
	}
	tb, err := journal.ReadTail(feed.FS, from, durable, max)
	if err != nil {
		return Batch{}, fmt.Errorf("replica: tailing %s: %w", name, err)
	}
	b.Checkpoint = tb.Checkpoint
	b.Events = tb.Events
	return b, nil
}

// ErrStaleEpoch reports a batch (or leader) at an epoch below the
// highest the follower has durably seen — a deposed leader still
// serving. Followers stop rather than fold its events.
var ErrStaleEpoch = fmt.Errorf("replica: stale leader epoch")
