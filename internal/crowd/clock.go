package crowd

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts time for the fault-tolerant crowd layer. Production
// code runs on the wall clock; the deterministic fault-injection tests
// run on a VirtualClock, where deadlines, backoff sleeps and hedge
// delays are pure arithmetic on a simulated timeline — no test ever
// calls time.Sleep, so the chaos sweeps are exactly reproducible and
// run in milliseconds of real time regardless of how many minutes of
// simulated crowd latency they model.
type Clock interface {
	// Now returns the clock's current instant.
	Now() time.Time
	// Sleep pauses the caller for d — or, on a virtual clock, advances
	// the timeline by d and returns immediately. It returns early with
	// the context's error if ctx is cancelled first.
	Sleep(ctx context.Context, d time.Duration) error
}

// wallClock is the production Clock: real time, real sleeps.
type wallClock struct{}

// WallClock returns the real-time Clock used outside tests.
func WallClock() Clock { return wallClock{} }

// Now implements Clock.
func (wallClock) Now() time.Time { return time.Now() }

// Sleep implements Clock: a context-aware time.Sleep.
func (wallClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// VirtualClock is a manually advanced Clock for deterministic
// simulation. Sleeping advances the timeline instead of blocking, so a
// simulated run that models hours of crowd latency completes in
// microseconds and always reads the same timestamps in the same order
// (when driven from a single goroutine, which the deterministic
// ReliableSource path guarantees). It is safe for concurrent use; under
// concurrency the total elapsed time is still the sum of all sleeps,
// though interleaving is scheduler-dependent.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
	t0  time.Time
}

// NewVirtualClock creates a virtual clock starting at start. A zero
// start uses the Unix epoch, which keeps simulated timestamps stable
// across runs.
func NewVirtualClock(start time.Time) *VirtualClock {
	if start.IsZero() {
		start = time.Unix(0, 0).UTC()
	}
	return &VirtualClock{now: start, t0: start}
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock by advancing the timeline; it never blocks.
func (c *VirtualClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.Advance(d)
	return nil
}

// Advance moves the timeline forward by d (negative d is ignored).
func (c *VirtualClock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Elapsed returns how much simulated time has passed since the clock
// was created — the virtual wall-clock cost of a simulated run.
func (c *VirtualClock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now.Sub(c.t0)
}
