package crowd

import (
	"math"
	"testing"

	"acd/internal/record"
)

func somePairs(n int) []record.Pair {
	var out []record.Pair
	for i := 0; i < n; i++ {
		out = append(out, record.MakePair(record.ID(i), record.ID(i+1000)))
	}
	return out
}

func TestBuildAnswersDeterministic(t *testing.T) {
	pairs := somePairs(50)
	truth := func(p record.Pair) bool { return p.Lo%2 == 0 }
	diff := UniformDifficulty(0.2)
	a1 := BuildAnswers(pairs, truth, diff, ThreeWorker(42))
	a2 := BuildAnswers(pairs, truth, diff, ThreeWorker(42))
	for _, p := range pairs {
		if a1.Score(p) != a2.Score(p) {
			t.Fatalf("answers not deterministic for %v", p)
		}
	}
	// Different seed should (with overwhelming probability) change
	// something.
	a3 := BuildAnswers(pairs, truth, diff, ThreeWorker(43))
	same := true
	for _, p := range pairs {
		if a1.Score(p) != a3.Score(p) {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds produced identical answers")
	}
}

func TestBuildAnswersOrderIndependent(t *testing.T) {
	pairs := somePairs(20)
	reversed := make([]record.Pair, len(pairs))
	for i, p := range pairs {
		reversed[len(pairs)-1-i] = p
	}
	truth := func(p record.Pair) bool { return p.Lo%2 == 0 }
	diff := UniformDifficulty(0.3)
	a1 := BuildAnswers(pairs, truth, diff, FiveWorker(7))
	a2 := BuildAnswers(reversed, truth, diff, FiveWorker(7))
	for _, p := range pairs {
		if a1.Score(p) != a2.Score(p) {
			t.Fatalf("answer for %v depends on build order", p)
		}
	}
}

func TestScoreGranularity(t *testing.T) {
	pairs := somePairs(200)
	truth := func(p record.Pair) bool { return true }
	a := BuildAnswers(pairs, truth, UniformDifficulty(0.5), ThreeWorker(1))
	for _, p := range pairs {
		fc := a.Score(p)
		scaled := fc * 3
		if math.Abs(scaled-math.Round(scaled)) > 1e-9 {
			t.Fatalf("3-worker score %v is not a multiple of 1/3", fc)
		}
	}
}

func TestPerfectAndAdversarialWorkers(t *testing.T) {
	pairs := somePairs(30)
	truth := func(p record.Pair) bool { return p.Lo < 15 }
	perfect := BuildAnswers(pairs, truth, UniformDifficulty(0), ThreeWorker(5))
	if perfect.ErrorRate() != 0 {
		t.Errorf("perfect workers error rate = %v", perfect.ErrorRate())
	}
	for _, p := range pairs {
		want := 0.0
		if truth(p) {
			want = 1.0
		}
		if perfect.Score(p) != want {
			t.Errorf("perfect worker score %v for %v", perfect.Score(p), p)
		}
	}
	adversarial := BuildAnswers(pairs, truth, UniformDifficulty(1), ThreeWorker(5))
	if adversarial.ErrorRate() != 1 {
		t.Errorf("adversarial workers error rate = %v", adversarial.ErrorRate())
	}
}

func TestUnknownPairPanics(t *testing.T) {
	a := BuildAnswers(somePairs(3), func(record.Pair) bool { return true }, UniformDifficulty(0), ThreeWorker(1))
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for unknown pair")
		}
	}()
	a.Score(record.MakePair(500, 501))
}

func TestEvenWorkersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for even worker count")
		}
	}()
	BuildAnswers(nil, nil, nil, Config{Workers: 4, PairsPerHIT: 10, CentsPerHIT: 2})
}

func TestSessionAccounting(t *testing.T) {
	pairs := somePairs(45)
	truth := func(p record.Pair) bool { return true }
	a := BuildAnswers(pairs, truth, UniformDifficulty(0), ThreeWorker(9)) // 20 pairs/HIT
	s := NewSession(a)

	// Batch of 25 fresh pairs: 1 iteration, 2 HITs (20+5), 4 cents.
	s.Ask(pairs[:25])
	st := s.Stats()
	if st.Pairs != 25 || st.Iterations != 1 || st.HITs != 2 || st.Cents != 4 {
		t.Fatalf("stats after first batch: %+v", st)
	}

	// Re-asking known pairs costs nothing.
	s.Ask(pairs[:10])
	if st2 := s.Stats(); st2 != st {
		t.Errorf("re-ask changed stats: %+v -> %+v", st, st2)
	}

	// Mixed batch charges only the fresh pairs.
	s.Ask(pairs[20:30]) // 5 fresh
	st = s.Stats()
	if st.Pairs != 30 || st.Iterations != 2 || st.HITs != 3 {
		t.Errorf("stats after mixed batch: %+v", st)
	}

	// Duplicates within a batch charge once.
	dup := []record.Pair{pairs[40], pairs[40], pairs[41]}
	s.Ask(dup)
	if st = s.Stats(); st.Pairs != 32 {
		t.Errorf("in-batch duplicate double-charged: %+v", st)
	}

	if s.KnownCount() != 32 {
		t.Errorf("KnownCount = %d, want 32", s.KnownCount())
	}
	if _, ok := s.Known(pairs[0]); !ok {
		t.Errorf("pair 0 should be known")
	}
	if _, ok := s.Known(pairs[44]); ok {
		t.Errorf("pair 44 should be unknown")
	}
}

func TestSessionAskOne(t *testing.T) {
	pairs := somePairs(2)
	a := BuildAnswers(pairs, func(record.Pair) bool { return true }, UniformDifficulty(0), FiveWorker(3))
	s := NewSession(a)
	if fc := s.AskOne(pairs[0]); fc != 1 {
		t.Errorf("AskOne = %v, want 1", fc)
	}
	if st := s.Stats(); st.Pairs != 1 || st.Iterations != 1 || st.HITs != 1 || st.Cents != 2 {
		t.Errorf("stats: %+v", st)
	}
}

func TestKnownPairsCopy(t *testing.T) {
	pairs := somePairs(3)
	a := BuildAnswers(pairs, func(record.Pair) bool { return true }, UniformDifficulty(0), ThreeWorker(3))
	s := NewSession(a)
	s.Ask(pairs[:2])
	kp := s.KnownPairs()
	if len(kp) != 2 {
		t.Fatalf("KnownPairs len = %d", len(kp))
	}
	delete(kp, pairs[0])
	if s.KnownCount() != 2 {
		t.Errorf("mutating the copy affected the session")
	}
}

func TestMajorityError(t *testing.T) {
	// Closed forms: M3(d) = d²(3−2d); M5(d) = d⁵+5d⁴(1−d)+10d³(1−d)².
	for _, d := range []float64{0, 0.1, 0.25, 0.5, 0.65, 1} {
		m3 := d * d * (3 - 2*d)
		if got := MajorityError(d, 3); math.Abs(got-m3) > 1e-12 {
			t.Errorf("M3(%v) = %v, want %v", d, got, m3)
		}
		m5 := math.Pow(d, 5) + 5*math.Pow(d, 4)*(1-d) + 10*math.Pow(d, 3)*(1-d)*(1-d)
		if got := MajorityError(d, 5); math.Abs(got-m5) > 1e-12 {
			t.Errorf("M5(%v) = %v, want %v", d, got, m5)
		}
	}
	// Majority amplifies: for d < 0.5 more workers help, for d > 0.5 they hurt.
	if MajorityError(0.3, 5) >= MajorityError(0.3, 3) {
		t.Errorf("more workers should reduce error below d=0.5")
	}
	if MajorityError(0.7, 5) <= MajorityError(0.7, 3) {
		t.Errorf("more workers should increase error above d=0.5")
	}
}

// TestCalibrateTable3 fits mixtures for the three datasets' Table 3 error
// rates and checks both residuals and empirical behaviour.
func TestCalibrateTable3(t *testing.T) {
	cases := []struct {
		name             string
		target3, target5 float64
	}{
		{"Paper", 0.23, 0.21},
		{"Restaurant", 0.008, 0.002},
		{"Product", 0.09, 0.05},
	}
	for _, c := range cases {
		m, residual := Calibrate(c.target3, c.target5)
		if residual > 1e-3 {
			t.Errorf("%s: residual %v too large (mixture %+v)", c.name, residual, m)
		}
		if got := m.ExpectedError(3); math.Abs(got-c.target3) > 0.02 {
			t.Errorf("%s: expected 3w error %v, want %v", c.name, got, c.target3)
		}
		if got := m.ExpectedError(5); math.Abs(got-c.target5) > 0.02 {
			t.Errorf("%s: expected 5w error %v, want %v", c.name, got, c.target5)
		}
	}
}

// TestEmpiricalErrorMatchesCalibration draws a large answer set under a
// calibrated mixture and checks the measured error rate against the
// analytic expectation.
func TestEmpiricalErrorMatchesCalibration(t *testing.T) {
	m, _ := Calibrate(0.23, 0.21)
	n := 20000
	pairs := make([]record.Pair, n)
	for i := range pairs {
		pairs[i] = record.MakePair(record.ID(i), record.ID(i+n))
	}
	truth := func(p record.Pair) bool { return p.Lo%3 == 0 }
	machine := func(p record.Pair) float64 { return float64(p.Lo%100) / 100 }
	diff := DifficultyAssignment(pairs, machine, truth, m)

	for _, workers := range []int{3, 5} {
		cfg := ThreeWorker(11)
		if workers == 5 {
			cfg = FiveWorker(11)
		}
		a := BuildAnswers(pairs, truth, diff, cfg)
		want := m.ExpectedError(workers)
		got := a.ErrorRate()
		if math.Abs(got-want) > 0.015 {
			t.Errorf("%dw empirical error %v, expected %v", workers, got, want)
		}
	}
}

// TestDifficultyAssignmentTargetsMisleadingPairs verifies that hard
// difficulty lands on the misleading pairs (high-f non-duplicates).
func TestDifficultyAssignmentTargetsMisleadingPairs(t *testing.T) {
	pairs := []record.Pair{
		record.MakePair(0, 1), // dup with high f: easy
		record.MakePair(2, 3), // non-dup with high f: misleading
		record.MakePair(4, 5), // non-dup with low f: easy
		record.MakePair(6, 7), // dup with low f: misleading
	}
	truth := func(p record.Pair) bool { return p.Lo == 0 || p.Lo == 6 }
	machine := func(p record.Pair) float64 {
		if p.Lo <= 3 {
			return 0.9
		}
		return 0.2
	}
	m := Mixture{Alpha: 0.5, DHard: 0.7, DEasy: 0.05}
	diff := DifficultyAssignment(pairs, machine, truth, m)
	if diff(pairs[1]) != 0.7 {
		t.Errorf("high-f non-dup should be hard")
	}
	if diff(pairs[3]) != 0.7 {
		t.Errorf("low-f dup should be hard")
	}
	if diff(pairs[0]) != 0.05 || diff(pairs[2]) != 0.05 {
		t.Errorf("consistent pairs should be easy")
	}
}

func TestErrorRateEmptySet(t *testing.T) {
	a := BuildAnswers(nil, func(record.Pair) bool { return true }, UniformDifficulty(0), ThreeWorker(1))
	if a.ErrorRate() != 0 {
		t.Errorf("empty answer set error rate = %v", a.ErrorRate())
	}
	if a.Len() != 0 {
		t.Errorf("Len = %d", a.Len())
	}
}
