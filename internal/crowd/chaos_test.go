package crowd

import (
	"errors"
	"testing"
	"time"

	"acd/internal/obs"
	"acd/internal/record"
)

// chaosAnswers builds a fixed answer set of n pairs with scores i/n.
func chaosAnswers(n int) (*AnswerSet, []record.Pair) {
	scores := make(map[record.Pair]float64, n)
	pairs := make([]record.Pair, n)
	for i := 0; i < n; i++ {
		p := record.MakePair(record.ID(i), record.ID(i+1000))
		pairs[i] = p
		scores[p] = float64(i) / float64(n)
	}
	return FixedAnswers(scores, ThreeWorker(0)), pairs
}

// TestChaosDeterministicAcrossCallOrder pins the injector's core
// property: without bursts, every (pair, attempt) outcome is a pure
// function of the seed, so two sources visited in opposite orders agree
// on every draw.
func TestChaosDeterministicAcrossCallOrder(t *testing.T) {
	cfg := ChaosConfig{Seed: 7, DropProb: 0.2, ErrorProb: 0.15, SpikeProb: 0.1, DupProb: 0.1}
	answersA, pairs := chaosAnswers(40)
	answersB, _ := chaosAnswers(40)
	a := NewChaos(answersA, cfg)
	b := NewChaos(answersB, cfg)

	type outcome struct {
		fc  float64
		lat time.Duration
		err error
	}
	grid := func(c *ChaosSource, reverse bool) map[record.Pair]map[int]outcome {
		out := make(map[record.Pair]map[int]outcome)
		order := make([]record.Pair, len(pairs))
		copy(order, pairs)
		if reverse {
			for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
				order[i], order[j] = order[j], order[i]
			}
		}
		for _, p := range order {
			out[p] = make(map[int]outcome)
			for attempt := 0; attempt < 4; attempt++ {
				fc, lat, err := c.TryScore(p, attempt)
				out[p][attempt] = outcome{fc, lat, err}
			}
		}
		return out
	}
	ga, gb := grid(a, false), grid(b, true)
	for p, attempts := range ga {
		for attempt, oa := range attempts {
			ob := gb[p][attempt]
			if oa.fc != ob.fc || oa.lat != ob.lat || !errors.Is(oa.err, ob.err) && !errors.Is(ob.err, oa.err) {
				t.Fatalf("pair %v attempt %d: %v vs %v across call orders", p, attempt, oa, ob)
			}
		}
	}
}

// TestChaosOracleOncePerPair pins the accounting invariant: however many
// attempts, retries or duplicates the fault machinery generates, the
// wrapped oracle is consulted exactly once per distinct pair.
func TestChaosOracleOncePerPair(t *testing.T) {
	answers, pairs := chaosAnswers(25)
	rec := obs.New()
	answers.SetRecorder(rec)
	c := NewChaos(answers, ChaosConfig{Seed: 3, DropProb: 0.3, ErrorProb: 0.2, DupProb: 0.5})

	attempts := 0
	for round := 0; round < 6; round++ {
		for _, p := range pairs {
			c.TryScore(p, round)
			attempts++
		}
	}
	m := rec.Snapshot()
	if got := m.Counters[MetricOracleInvocations]; got != int64(len(pairs)) {
		t.Errorf("oracle invocations = %d over %d attempts, want once per pair = %d",
			got, attempts, len(pairs))
	}
	if got := c.Calls(); got != int64(attempts) {
		t.Errorf("Calls() = %d, want %d", got, attempts)
	}
}

func TestChaosDropNeverArrives(t *testing.T) {
	answers, pairs := chaosAnswers(10)
	c := NewChaos(answers, ChaosConfig{Seed: 1, DropProb: 1})
	for _, p := range pairs {
		fc, lat, err := c.TryScore(p, 0)
		if err != nil {
			t.Fatalf("drop reported error %v; drops are silent", err)
		}
		if lat != dropLatency {
			t.Fatalf("dropped answer latency %v, want dropLatency", lat)
		}
		if fc != answers.fc[p] {
			t.Fatalf("dropped answer carried fc %v, want the real %v", fc, answers.fc[p])
		}
	}
}

func TestChaosTransientErrors(t *testing.T) {
	answers, pairs := chaosAnswers(10)
	rec := obs.New()
	c := NewChaos(answers, ChaosConfig{Seed: 2, ErrorProb: 1})
	c.SetRecorder(rec)
	for _, p := range pairs {
		if _, _, err := c.TryScore(p, 0); !errors.Is(err, ErrTransient) {
			t.Fatalf("err = %v, want ErrTransient", err)
		}
	}
	if m := rec.Snapshot(); m.Counters[MetricChaosFaults] != int64(len(pairs)) {
		t.Errorf("chaos faults = %d, want %d", m.Counters[MetricChaosFaults], len(pairs))
	}
}

func TestChaosSpikeStretchesLatency(t *testing.T) {
	answers, pairs := chaosAnswers(1)
	base := NewChaos(answers, ChaosConfig{Seed: 5, LatencySpread: -1})
	answers2, _ := chaosAnswers(1)
	spiked := NewChaos(answers2, ChaosConfig{Seed: 5, LatencySpread: -1, SpikeProb: 1, SpikeFactor: 10})
	_, lat0, _ := base.TryScore(pairs[0], 0)
	_, lat1, _ := spiked.TryScore(pairs[0], 0)
	if lat1 != 10*lat0 {
		t.Errorf("spiked latency %v, want 10× the base %v", lat1, lat0)
	}
}

// TestChaosBurstWindows pins the adversarial-burst schedule: with
// BurstEvery = 6 and BurstLen = 2, questions 0-1, 6-7, 12-13, ... fall
// into windows where (here) every answer is dropped.
func TestChaosBurstWindows(t *testing.T) {
	answers, pairs := chaosAnswers(18)
	c := NewChaos(answers, ChaosConfig{
		Seed: 4, BurstEvery: 6, BurstLen: 2, BurstDropProb: 1,
	})
	for i, p := range pairs {
		_, lat, err := c.TryScore(p, 0)
		if err != nil {
			t.Fatalf("question %d errored: %v", i, err)
		}
		inBurst := i%6 < 2
		if dropped := lat == dropLatency; dropped != inBurst {
			t.Errorf("question %d: dropped=%v, want inBurst=%v", i, dropped, inBurst)
		}
	}
}

func TestChaosDuplicateDeliveries(t *testing.T) {
	answers, pairs := chaosAnswers(5)
	rec := obs.New()
	c := NewChaos(answers, ChaosConfig{Seed: 6, DupProb: 1})
	c.SetRecorder(rec)
	for _, p := range pairs {
		a, _, _ := c.TryScore(p, 0) // first delivery
		b, _, _ := c.TryScore(p, 1) // duplicated delivery of the same answer
		if a != b {
			t.Fatalf("duplicate delivery changed the answer: %v vs %v", a, b)
		}
	}
	m := rec.Snapshot()
	if got := m.Counters[MetricChaosDuplicates]; got != int64(len(pairs)) {
		t.Errorf("duplicates = %d, want %d", got, len(pairs))
	}
}

func TestChaosZeroConfigIsFaultFree(t *testing.T) {
	answers, pairs := chaosAnswers(20)
	c := NewChaos(answers, ChaosConfig{Seed: 9})
	for _, p := range pairs {
		fc, lat, err := c.TryScore(p, 0)
		if err != nil {
			t.Fatalf("zero-config chaos errored: %v", err)
		}
		if fc != answers.fc[p] {
			t.Fatalf("fc = %v, want %v", fc, answers.fc[p])
		}
		if lat <= 0 || lat > time.Minute {
			t.Fatalf("latency %v implausible for a 2s base", lat)
		}
	}
}

func TestChaosScoreCheckedPropagatesNotCandidate(t *testing.T) {
	answers, _ := chaosAnswers(2)
	c := NewChaos(answers, ChaosConfig{Seed: 1})
	if _, err := c.ScoreChecked(record.MakePair(777, 778)); !errors.Is(err, ErrNotCandidate) {
		t.Fatalf("err = %v, want ErrNotCandidate", err)
	}
	// And through TryScore it surfaces as a fast permanent error.
	if _, _, err := c.TryScore(record.MakePair(777, 778), 0); !errors.Is(err, ErrNotCandidate) {
		t.Fatalf("TryScore err = %v, want ErrNotCandidate", err)
	}
}

// TestReliableOverChaosEndToEnd drives the full stack — answer set under
// chaos under the retry/hedge machine on a virtual clock — and checks
// every question either resolved to its true answer or degraded to the
// (sentinel) fallback, with the fallback count matching the metric.
func TestReliableOverChaosEndToEnd(t *testing.T) {
	answers, pairs := chaosAnswers(120)
	rec := obs.New()
	answers.SetRecorder(rec)
	chaos := NewChaos(answers, ChaosConfig{
		Seed: 11, DropProb: 0.2, ErrorProb: 0.1, SpikeProb: 0.05, DupProb: 0.1,
	})
	clock := NewVirtualClock(time.Time{})
	r := NewReliable(chaos, ReliableConfig{
		Timeout:  30 * time.Second,
		Retries:  3,
		Backoff:  100 * time.Millisecond,
		Seed:     11,
		Fallback: func(record.Pair) float64 { return -1 }, // sentinel
		Clock:    clock,
	})
	r.SetRecorder(rec)

	fallbacks := 0
	for _, p := range pairs {
		switch got := r.Score(p); got {
		case -1:
			fallbacks++
		case answers.fc[p]:
		default:
			t.Fatalf("pair %v scored %v, want %v or the fallback", p, got, answers.fc[p])
		}
	}
	m := rec.Snapshot()
	if got := m.Counters[MetricFallbacks]; got != int64(fallbacks) {
		t.Errorf("fallback metric = %d, observed %d sentinel answers", got, fallbacks)
	}
	// Chaos notwithstanding, the oracle answered each pair exactly once.
	if got := m.Counters[MetricOracleInvocations]; got != int64(len(pairs)) {
		t.Errorf("oracle invocations = %d, want %d", got, len(pairs))
	}
	if clock.Elapsed() <= 0 {
		t.Errorf("virtual clock did not advance")
	}
	if m.Counters[MetricAttempts] <= int64(len(pairs)) {
		t.Errorf("attempts = %d over %d pairs; expected retries/hedges under this fault mix",
			m.Counters[MetricAttempts], len(pairs))
	}
}
