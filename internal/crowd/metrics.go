package crowd

import (
	"time"

	"acd/internal/obs"
)

// Metric names emitted by this package. The crowd phase is where ACD
// spends money, so these are the repo's primary cost telemetry: the
// paper evaluates every method by crowdsourced pairs (Figure 7) and
// crowd iterations (Figures 5, 8), which correspond one-to-one to
// MetricQuestionsAnswered and MetricIterations.
const (
	// MetricQuestionsIssued counts every pair handed to Session.Ask,
	// including repeats the session cache absorbs.
	MetricQuestionsIssued = "crowd/questions_issued"
	// MetricQuestionsAnswered counts the distinct pairs actually sent to
	// the crowd source — the paper's "# crowdsourced pairs" (Figure 7).
	MetricQuestionsAnswered = "crowd/questions_answered"
	// MetricQuestionsCached counts issued pairs answered for free from
	// the session's known set A (asked in an earlier batch, duplicated
	// within a batch, or implied by an earlier crowd iteration).
	MetricQuestionsCached = "crowd/questions_cached"
	// MetricIterations counts crowd round-trips (Figures 5 and 8).
	MetricIterations = "crowd/iterations"
	// MetricHITs counts HITs posted (PairsPerHIT pairs per HIT).
	MetricHITs = "crowd/hits"
	// MetricCents accumulates the monetary cost (HITs × CentsPerHIT).
	MetricCents = "crowd/cents"
	// MetricVotes counts individual worker votes collected.
	MetricVotes = "crowd/votes"
	// MetricOracleInvocations counts actual calls into the answer oracle
	// (AnswerSet.Score). On a session-driven run it must equal
	// MetricQuestionsAnswered — the accounting invariant asserted by
	// TestMetricsMatchOracleInvocations — because the session is the only
	// component allowed to consult the oracle.
	MetricOracleInvocations = "crowd/oracle_invocations"
	// MetricBatchSize is the distribution of fresh pairs per crowd
	// iteration.
	MetricBatchSize = "crowd/batch_size"
	// MetricSimLatencySeconds is the simulated wall-clock crowd latency
	// of the run under the LatencyModel (a gauge, seconds).
	MetricSimLatencySeconds = "crowd/sim_latency_seconds"
	// MetricPoolSize, MetricPoolEligible and MetricPoolOccupancy are the
	// worker-pool gauges: population, workers admitted by the active
	// qualification, and their ratio.
	MetricPoolSize      = "crowd/pool_size"
	MetricPoolEligible  = "crowd/pool_eligible"
	MetricPoolOccupancy = "crowd/pool_occupancy"
	// MetricAttempts counts individual question issues made by the
	// fault-tolerant layer, including retries and hedges; without
	// faults it equals MetricQuestionsAnswered.
	MetricAttempts = "crowd/attempts"
	// MetricRetries counts re-issues of failed questions (timeouts or
	// transient errors) by ReliableSource.
	MetricRetries = "crowd/retries"
	// MetricHedges counts hedged second issues of straggling questions
	// (no answer by the configured latency percentile).
	MetricHedges = "crowd/hedges"
	// MetricTimeouts counts attempts whose answer (including any hedge)
	// missed the per-question deadline.
	MetricTimeouts = "crowd/timeouts"
	// MetricFallbacks counts questions whose retry budget was exhausted
	// and which degraded to the machine probability f instead of a
	// crowd answer — the graceful-degradation events; a fault-free run
	// has zero.
	MetricFallbacks = "crowd/fallbacks"
	// MetricAttemptLatency is the distribution of successful attempt
	// completion latencies (seconds; simulated under a VirtualClock).
	MetricAttemptLatency = "crowd/attempt_latency_seconds"
	// MetricChaosFaults counts faults injected by ChaosSource (transient
	// errors, drops, latency spikes).
	MetricChaosFaults = "crowd/chaos_faults"
	// MetricChaosDuplicates counts duplicated answer deliveries injected
	// by ChaosSource (absorbed idempotently downstream).
	MetricChaosDuplicates = "crowd/chaos_duplicates"
)

// RecorderCarrier is implemented by crowd sources that carry a metrics
// recorder. NewSession adopts the carrier's recorder, so instrumenting
// the answer set once instruments every algorithm run over it — including
// the sessions baselines open internally.
type RecorderCarrier interface {
	Recorder() *obs.Recorder
}

// RecorderSetter is implemented by crowd sources that accept a metrics
// recorder. Session.SetRecorder pushes its recorder down through this
// interface, so attaching a recorder at the session level also
// instruments the underlying oracle.
type RecorderSetter interface {
	SetRecorder(*obs.Recorder)
}

// RecordPoolMetrics publishes a pool's occupancy gauges under a
// qualification: how many workers exist, how many the qualification
// admits, and the admission ratio.
func RecordPoolMetrics(rec *obs.Recorder, p *Pool, q Qualification) {
	if rec == nil || p == nil {
		return
	}
	size := p.Size()
	eligible := len(p.Eligible(q))
	rec.Gauge(MetricPoolSize, float64(size))
	rec.Gauge(MetricPoolEligible, float64(eligible))
	if size > 0 {
		rec.Gauge(MetricPoolOccupancy, float64(eligible)/float64(size))
	}
}

// RecordSimulatedLatency runs the latency model over a finished run's
// stats and records the simulated end-to-end crowd time as a gauge.
// It returns the duration for callers that also want to print it.
func RecordSimulatedLatency(rec *obs.Recorder, m LatencyModel, stats Stats, workers int) time.Duration {
	d := m.TotalTime(stats, workers)
	rec.Gauge(MetricSimLatencySeconds, d.Seconds())
	return d
}
