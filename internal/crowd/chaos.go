package crowd

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"acd/internal/obs"
	"acd/internal/record"
)

// ChaosSource is a seeded, fully deterministic fault injector layered
// over any Source — the test substrate of the fault-tolerance layer. It
// implements FaultSource: every TryScore outcome (latency draw, spike,
// drop, transient error, duplicate delivery) is a pure function of
// (Seed, pair, attempt), so the same configuration replays the same
// faults regardless of wall-clock time, and nothing ever sleeps —
// latency is reported, not incurred. Adversarial worker bursts are the
// one order-dependent ingredient: they key off a global question
// counter, which is still deterministic on the sequential simulation
// path ReliableSource uses for FaultSources.
//
// The oracle-accounting invariant survives chaos by construction: the
// wrapped source is consulted exactly once per pair, on the pair's
// first attempt, whatever that attempt's fate (the worker answered; the
// platform may then drop, delay or duplicate the delivery). Retries,
// hedges and duplicates replay the cached answer, so on a completed run
// crowd/oracle_invocations still equals crowd/questions_answered.
type ChaosSource struct {
	inner Source
	cfg   ChaosConfig
	rec   *obs.Recorder

	mu    sync.Mutex
	cache map[record.Pair]float64
	errs  map[record.Pair]error
	seen  map[record.Pair]bool // a delivery already succeeded (for dup accounting)
	calls int64                // global question counter driving bursts
}

// ChaosConfig tunes the injected fault mix. All probabilities are in
// [0, 1]; the zero value injects nothing (an identity wrapper with a
// 2-second simulated latency).
type ChaosConfig struct {
	// Seed drives every fault draw.
	Seed int64
	// BaseLatency is the median simulated answer latency (default 2s).
	BaseLatency time.Duration
	// LatencySpread is the log-normal sigma of latency draws (default
	// 0.3; negative means 0, i.e. constant latency).
	LatencySpread float64
	// SpikeProb is the probability an answer's latency is multiplied by
	// SpikeFactor (default factor 25) — the straggler tail hedging is
	// built for.
	SpikeProb   float64
	SpikeFactor float64
	// DropProb is the probability an answer never arrives: the attempt
	// reports a latency beyond any deadline, so the client times out.
	DropProb float64
	// ErrorProb is the probability of a fast transient platform error
	// (ErrTransient) — the retryable failure mode.
	ErrorProb float64
	// DupProb is the probability a successful answer is delivered
	// twice; the duplicate is counted and must be absorbed
	// idempotently downstream.
	DupProb float64
	// BurstEvery opens an adversarial burst window every BurstEvery
	// questions (0 disables bursts); BurstLen is the window length
	// (default 8) and BurstDropProb the drop probability inside it
	// (default 0.9). Bursts model a cohort of workers abandoning their
	// HITs at once.
	BurstEvery    int
	BurstLen      int
	BurstDropProb float64
}

// withDefaults resolves the zero values.
func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.BaseLatency == 0 {
		c.BaseLatency = 2 * time.Second
	}
	if c.LatencySpread == 0 {
		c.LatencySpread = 0.3
	}
	if c.LatencySpread < 0 {
		c.LatencySpread = 0
	}
	if c.SpikeFactor == 0 {
		c.SpikeFactor = 25
	}
	if c.BurstLen == 0 {
		c.BurstLen = 8
	}
	if c.BurstDropProb == 0 {
		c.BurstDropProb = 0.9
	}
	return c
}

// dropLatency is the "never arrives" latency: far beyond any deadline.
const dropLatency = 365 * 24 * time.Hour

// NewChaos wraps inner in the fault injector. If inner carries a
// metrics recorder it is adopted.
func NewChaos(inner Source, cfg ChaosConfig) *ChaosSource {
	c := &ChaosSource{
		inner: inner,
		cfg:   cfg.withDefaults(),
		cache: make(map[record.Pair]float64),
		errs:  make(map[record.Pair]error),
		seen:  make(map[record.Pair]bool),
	}
	if rc, ok := inner.(RecorderCarrier); ok {
		c.rec = rc.Recorder()
	}
	return c
}

// Config implements Source by delegating to the wrapped source.
func (c *ChaosSource) Config() Config { return c.inner.Config() }

// SetRecorder implements RecorderSetter, pushing the recorder down the
// wrapper chain.
func (c *ChaosSource) SetRecorder(rec *obs.Recorder) {
	c.rec = rec
	if s, ok := c.inner.(RecorderSetter); ok {
		s.SetRecorder(rec)
	}
}

// Recorder implements RecorderCarrier.
func (c *ChaosSource) Recorder() *obs.Recorder { return c.rec }

// Score implements Source: the fault-free path through the answer
// cache, for callers that bypass the fault machinery.
func (c *ChaosSource) Score(p record.Pair) float64 {
	fc, err := c.answer(p)
	if err != nil {
		panic(err.Error())
	}
	return fc
}

// ScoreChecked implements CheckedSource without panicking on
// non-candidates.
func (c *ChaosSource) ScoreChecked(p record.Pair) (float64, error) {
	return c.answer(p)
}

// TryScore implements FaultSource: one deterministic attempt at p.
func (c *ChaosSource) TryScore(p record.Pair, attempt int) (float64, time.Duration, error) {
	c.mu.Lock()
	idx := c.calls
	c.calls++
	c.mu.Unlock()
	inBurst := c.cfg.BurstEvery > 0 && int(idx%int64(c.cfg.BurstEvery)) < c.cfg.BurstLen

	// The worker answers regardless of what happens to the delivery:
	// the oracle is consulted exactly once per pair, on its first
	// attempt.
	fc, aerr := c.answer(p)

	rng := rand.New(rand.NewSource(chaosSeed(c.cfg.Seed, p, attempt)))
	lat := c.latency(rng)
	if aerr != nil {
		// Non-candidate (or other permanent error): surfaces quickly.
		return 0, lat / 4, aerr
	}

	errP, dropP := c.cfg.ErrorProb, c.cfg.DropProb
	if inBurst && c.cfg.BurstDropProb > dropP {
		dropP = c.cfg.BurstDropProb
	}
	switch u := rng.Float64(); {
	case u < errP:
		c.rec.Count(MetricChaosFaults, 1)
		return 0, lat / 4, ErrTransient
	case u < errP+dropP:
		c.rec.Count(MetricChaosFaults, 1)
		return fc, dropLatency, nil // answer never arrives
	}
	if rng.Float64() < c.cfg.SpikeProb {
		c.rec.Count(MetricChaosFaults, 1)
		lat = time.Duration(float64(lat) * c.cfg.SpikeFactor)
	}
	if rng.Float64() < c.cfg.DupProb {
		// A second copy of an already-successful delivery: idempotent
		// by construction (same cached answer), counted so tests can
		// pin that duplicates occurred and changed nothing.
		c.mu.Lock()
		dup := c.seen[p]
		c.seen[p] = true
		c.mu.Unlock()
		if dup {
			c.rec.Count(MetricChaosDuplicates, 1)
		}
	} else {
		c.mu.Lock()
		c.seen[p] = true
		c.mu.Unlock()
	}
	return fc, lat, nil
}

// Calls returns the number of TryScore attempts the injector has seen —
// the denominator of a sweep's fault-rate accounting.
func (c *ChaosSource) Calls() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// answer consults the wrapped source exactly once per pair and caches
// the outcome (score or permanent error).
func (c *ChaosSource) answer(p record.Pair) (float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fc, ok := c.cache[p]; ok {
		return fc, nil
	}
	if err, ok := c.errs[p]; ok {
		return 0, err
	}
	fc, err := scoreOnce(c.inner, p)
	if err != nil {
		c.errs[p] = err
		return 0, err
	}
	c.cache[p] = fc
	return fc, nil
}

// latency draws a log-normal-ish simulated answer latency.
func (c *ChaosSource) latency(rng *rand.Rand) time.Duration {
	factor := 1.0
	if c.cfg.LatencySpread > 0 {
		x := c.cfg.LatencySpread * rng.NormFloat64()
		if x > 3 {
			x = 3
		}
		if x < -3 {
			x = -3
		}
		factor = math.Exp(x)
	}
	return time.Duration(float64(c.cfg.BaseLatency) * factor)
}

// chaosSeed derives the per-(pair, attempt) RNG seed, mixing the same
// way pairSeed does so outcomes are independent of call order.
func chaosSeed(seed int64, p record.Pair, attempt int) int64 {
	h := uint64(seed)*0x9e3779b97f4a7c15 + uint64(p.Lo)*0xbf58476d1ce4e5b9 +
		uint64(p.Hi)*0x94d049bb133111eb + uint64(attempt)*0xd6e8feb86659fd93
	h ^= h >> 32
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	return int64(h & 0x7fffffffffffffff)
}
