package crowd

import (
	"math"
	"testing"

	"acd/internal/obs"
	"acd/internal/record"
)

func TestFixedAnswers(t *testing.T) {
	scores := map[record.Pair]float64{
		record.MakePair(0, 1): 0.9,
		record.MakePair(2, 3): 0.2,
	}
	a := FixedAnswers(scores, Config{})
	// Zero config defaults to the 3-worker setting shape.
	if a.Config().Workers != 3 || a.Config().PairsPerHIT != 20 {
		t.Errorf("default config = %+v", a.Config())
	}
	if a.Score(record.MakePair(0, 1)) != 0.9 {
		t.Errorf("score wrong")
	}
	if !a.Has(record.MakePair(2, 3)) || a.Has(record.MakePair(4, 5)) {
		t.Errorf("Has wrong")
	}
	// Implied truth is fc > 0.5, so the error rate is 0 by construction.
	if a.ErrorRate() != 0 {
		t.Errorf("fixed answers error rate = %v", a.ErrorRate())
	}
	explicit := FixedAnswers(scores, FiveWorker(3))
	if explicit.Config().Workers != 5 {
		t.Errorf("explicit config ignored")
	}
}

func TestAsyncSourceScoreSingle(t *testing.T) {
	src := AsyncSource{Fn: func(p record.Pair) float64 { return 0.25 }, Setting: ThreeWorker(0)}
	if got := src.Score(record.MakePair(1, 2)); got != 0.25 {
		t.Errorf("Score = %v", got)
	}
	if src.Config().Workers != 3 {
		t.Errorf("Config passthrough wrong")
	}
}

// TestCollectVotesConsistentWithPoolAnswers: aggregating the raw votes
// reproduces BuildAnswersFromPool's scores exactly (same RNG path).
func TestCollectVotesConsistentWithPoolAnswers(t *testing.T) {
	pool := testPool()
	pairs := adaptivePairs(150)
	truth := func(p record.Pair) bool { return p.Lo%2 == 0 }
	diff := UniformDifficulty(0.1)
	cfg := ThreeWorker(9)

	agg := BuildAnswersFromPool(pairs, truth, diff, pool, BasicQualification, cfg)
	votes := CollectVotes(pairs, truth, diff, pool, BasicQualification, cfg)
	if len(votes) != len(pairs)*3 {
		t.Fatalf("%d votes for %d pairs", len(votes), len(pairs))
	}
	scores := MajorityScores(votes)
	for _, p := range pairs {
		if math.Abs(scores[p]-agg.Score(p)) > 1e-12 {
			t.Fatalf("vote aggregation differs from pool answers at %v: %v vs %v",
				p, scores[p], agg.Score(p))
		}
	}
}

func TestMajorityScoresEmpty(t *testing.T) {
	if got := MajorityScores(nil); len(got) != 0 {
		t.Errorf("empty votes produced %v", got)
	}
}

func TestCollectVotesPanics(t *testing.T) {
	pool := testPool()
	for i, fn := range []func(){
		func() { CollectVotes(nil, nil, nil, pool, Qualification{}, Config{Workers: 2, PairsPerHIT: 5}) },
		func() {
			tiny := NewPool(PoolConfig{Size: 1, MeanError: 0.1, QualificationPassRate: 1, Seed: 1})
			CollectVotes(nil, nil, nil, tiny, Qualification{}, ThreeWorker(1))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestSessionPrime: primed answers are served from the known set with
// zero accounting, zero metrics and zero source contact; asking a primed
// pair later is a free cache hit, and re-priming a known pair is a no-op.
func TestSessionPrime(t *testing.T) {
	calls := 0
	src := SourceFunc{
		Fn:      func(record.Pair) float64 { calls++; return 0.9 },
		Setting: ThreeWorker(1),
	}
	s := NewSession(src)
	rec := obs.New()
	s.SetRecorder(rec)

	p1 := record.MakePair(0, 1)
	p2 := record.MakePair(0, 2)
	s.Prime(p1, 1.0)
	if s.Stats() != (Stats{}) {
		t.Errorf("priming charged accounting: %+v", s.Stats())
	}
	if got := s.AskOne(p1); got != 1.0 {
		t.Errorf("AskOne(primed) = %v, want 1.0", got)
	}
	if calls != 0 {
		t.Errorf("primed ask contacted the source %d times", calls)
	}
	if n := rec.Counter(MetricQuestionsAnswered); n != 0 {
		t.Errorf("primed ask counted %d questions_answered", n)
	}
	if got := s.AskOne(p2); got != 0.9 || calls != 1 {
		t.Errorf("fresh ask = %v (%d calls), want 0.9 (1 call)", got, calls)
	}
	// Re-priming a known pair is a no-op: the first value sticks.
	s.Prime(p2, 0.0)
	if fc, _ := s.Known(p2); fc != 0.9 {
		t.Errorf("re-prime overwrote known answer: %v", fc)
	}
	if got := len(s.KnownOrdered()); got != 2 {
		t.Errorf("KnownOrdered has %d pairs, want 2", got)
	}
	if s.Stats().Pairs != 1 {
		t.Errorf("stats charged %d pairs, want only the fresh one", s.Stats().Pairs)
	}
}
