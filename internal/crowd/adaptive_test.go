package crowd

import (
	"testing"

	"acd/internal/record"
)

func adaptivePairs(n int) []record.Pair {
	out := make([]record.Pair, n)
	for i := range out {
		out[i] = record.MakePair(record.ID(i), record.ID(i+n))
	}
	return out
}

func TestAdaptiveEscalatesOnlyNarrowVotes(t *testing.T) {
	pairs := adaptivePairs(500)
	truth := func(p record.Pair) bool { return p.Lo%2 == 0 }
	// Uniform moderate difficulty: some 3-worker votes come out 2-1.
	a := BuildAdaptiveAnswers(pairs, truth, UniformDifficulty(0.3), ThreeWorker(7), 7)
	escalated, base := 0, 0
	for _, p := range pairs {
		switch a.VoteCount(p) {
		case 3:
			base++
			// A non-escalated 3-vote must be unanimous.
			fc := a.Score(p)
			if fc != 0 && fc != 1 {
				t.Fatalf("non-escalated pair %v has split vote %v", p, fc)
			}
		case 7:
			escalated++
		default:
			t.Fatalf("pair %v has %d votes, want 3 or 7", p, a.VoteCount(p))
		}
	}
	if escalated == 0 || base == 0 {
		t.Errorf("expected a mix of escalated (%d) and base (%d) pairs", escalated, base)
	}
}

func TestAdaptiveNoEscalationWhenUnanimous(t *testing.T) {
	pairs := adaptivePairs(100)
	truth := func(p record.Pair) bool { return true }
	a := BuildAdaptiveAnswers(pairs, truth, UniformDifficulty(0), ThreeWorker(1), 9)
	if a.TotalVotes() != 300 {
		t.Errorf("perfect workers escalated: %d votes", a.TotalVotes())
	}
	if a.ErrorRate() != 0 {
		t.Errorf("error rate %v", a.ErrorRate())
	}
}

// TestAdaptiveBeatsFixedBase: with hard pairs in the mix, adaptive
// allocation reaches (near-)5-worker accuracy at a fraction of the extra
// votes.
func TestAdaptiveAccuracyVsCost(t *testing.T) {
	pairs := adaptivePairs(20000)
	truth := func(p record.Pair) bool { return p.Lo%3 == 0 }
	mix := Mixture{Alpha: 0.2, DHard: 0.45, DEasy: 0.1}
	diffMap := map[record.Pair]float64{}
	for i, p := range pairs {
		if i%5 == 0 {
			diffMap[p] = mix.DHard
		} else {
			diffMap[p] = mix.DEasy
		}
	}
	diff := func(p record.Pair) float64 { return diffMap[p] }

	fixed3 := BuildAnswers(pairs, truth, diff, ThreeWorker(3))
	fixed5 := BuildAnswers(pairs, truth, diff, FiveWorker(3))
	adaptive := BuildAdaptiveAnswers(pairs, truth, diff, ThreeWorker(3), 5)

	if adaptive.ErrorRate() >= fixed3.ErrorRate() {
		t.Errorf("adaptive error %.4f not below fixed-3 %.4f", adaptive.ErrorRate(), fixed3.ErrorRate())
	}
	// Votes: fixed3 = 3n, fixed5 = 5n; adaptive must sit strictly
	// between, well below fixed5.
	n := len(pairs)
	if got := adaptive.TotalVotes(); got <= 3*n || got >= 5*n {
		t.Errorf("adaptive votes %d outside (3n, 5n) = (%d, %d)", got, 3*n, 5*n)
	}
	if fixed5.TotalVotes() != 5*n || fixed3.TotalVotes() != 3*n {
		t.Errorf("fixed vote counts wrong: %d, %d", fixed3.TotalVotes(), fixed5.TotalVotes())
	}
}

func TestAdaptiveValidation(t *testing.T) {
	cases := []func(){
		func() { BuildAdaptiveAnswers(nil, nil, nil, Config{Workers: 2, PairsPerHIT: 10}, 5) },
		func() { BuildAdaptiveAnswers(nil, nil, nil, ThreeWorker(1), 4) }, // even max
		func() { BuildAdaptiveAnswers(nil, nil, nil, FiveWorker(1), 3) },  // max < base
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSessionVotesAccounting(t *testing.T) {
	pairs := adaptivePairs(50)
	truth := func(p record.Pair) bool { return true }
	// Fixed allocation: votes = pairs × workers.
	fixed := BuildAnswers(pairs, truth, UniformDifficulty(0.1), ThreeWorker(2))
	s := NewSession(fixed)
	s.Ask(pairs[:20])
	if got := s.Stats().Votes; got != 60 {
		t.Errorf("fixed votes = %d, want 60", got)
	}
	// Adaptive allocation: votes reflect per-pair escalation.
	adaptive := BuildAdaptiveAnswers(pairs, truth, UniformDifficulty(0.35), ThreeWorker(2), 7)
	s2 := NewSession(adaptive)
	s2.Ask(pairs)
	want := adaptive.TotalVotes()
	if got := s2.Stats().Votes; got != want {
		t.Errorf("adaptive votes = %d, want %d", got, want)
	}
}

func TestSourceFunc(t *testing.T) {
	src := SourceFunc{
		Fn:      func(p record.Pair) float64 { return 0.75 },
		Setting: FiveWorker(0),
	}
	s := NewSession(src)
	if got := s.AskOne(record.MakePair(1, 2)); got != 0.75 {
		t.Errorf("SourceFunc score = %v", got)
	}
	st := s.Stats()
	if st.Pairs != 1 || st.Votes != 5 {
		t.Errorf("stats = %+v", st)
	}
}
