package crowd

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"acd/internal/record"
)

// This file implements the paper's collection methodology (Section 6.1):
// "we post all record pairs in the candidate set S to AMT, and record
// the crowd's answers in local file F. Then, during our experiments,
// whenever a method requests to crowdsource a record pair, we retrieve
// the answers from F." SaveAnswers/LoadAnswers are that file F: an
// answer set serialized as CSV so a collection (simulated or real) can
// be replayed across runs, tools, and machines.

// SaveAnswers writes an answer set as CSV: a header describing the
// collection setting (the RNG seed is collection-time state and is not
// persisted), then one row per pair with its crowd score, vote count,
// and ground-truth flag. Rows are sorted canonically so output is
// reproducible.
func SaveAnswers(w io.Writer, a *AnswerSet) error {
	cw := csv.NewWriter(w)
	header := []string{
		"lo", "hi", "fc", "votes", "truth",
		// The collection setting rides along in the header row's tail so
		// a single file is self-describing.
		strconv.Itoa(a.config.Workers),
		strconv.Itoa(a.config.PairsPerHIT),
		strconv.Itoa(a.config.CentsPerHIT),
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("crowd: writing header: %w", err)
	}
	pairs := make([]record.Pair, 0, len(a.fc))
	for p := range a.fc {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Lo != pairs[j].Lo {
			return pairs[i].Lo < pairs[j].Lo
		}
		return pairs[i].Hi < pairs[j].Hi
	})
	for _, p := range pairs {
		truth := "0"
		if a.truth[p] {
			truth = "1"
		}
		row := []string{
			strconv.Itoa(int(p.Lo)),
			strconv.Itoa(int(p.Hi)),
			strconv.FormatFloat(a.fc[p], 'g', -1, 64),
			strconv.Itoa(a.VoteCount(p)),
			truth,
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("crowd: writing pair %v: %w", p, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadAnswers reads an answer set written by SaveAnswers.
func LoadAnswers(r io.Reader) (*AnswerSet, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("crowd: reading header: %w", err)
	}
	if len(header) != 8 || header[0] != "lo" {
		return nil, fmt.Errorf("crowd: unrecognized answer-file header %v", header)
	}
	cfg := Config{}
	if cfg.Workers, err = strconv.Atoi(header[5]); err != nil {
		return nil, fmt.Errorf("crowd: bad workers in header: %w", err)
	}
	if cfg.PairsPerHIT, err = strconv.Atoi(header[6]); err != nil {
		return nil, fmt.Errorf("crowd: bad pairsPerHIT in header: %w", err)
	}
	if cfg.CentsPerHIT, err = strconv.Atoi(header[7]); err != nil {
		return nil, fmt.Errorf("crowd: bad centsPerHIT in header: %w", err)
	}
	a := &AnswerSet{
		fc:     make(map[record.Pair]float64),
		truth:  make(map[record.Pair]bool),
		votes:  make(map[record.Pair]int),
		config: cfg,
	}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("crowd: line %d: %w", line, err)
		}
		if len(row) != 5 {
			return nil, fmt.Errorf("crowd: line %d: %d fields, want 5", line, len(row))
		}
		lo, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("crowd: line %d: bad lo: %w", line, err)
		}
		hi, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("crowd: line %d: bad hi: %w", line, err)
		}
		fc, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("crowd: line %d: bad fc: %w", line, err)
		}
		votes, err := strconv.Atoi(row[3])
		if err != nil {
			return nil, fmt.Errorf("crowd: line %d: bad votes: %w", line, err)
		}
		p := record.MakePair(record.ID(lo), record.ID(hi))
		a.fc[p] = fc
		a.truth[p] = row[4] == "1"
		a.votes[p] = votes
	}
	return a, nil
}
