package crowd

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"acd/internal/record"
)

// This file implements the paper's collection methodology (Section 6.1):
// "we post all record pairs in the candidate set S to AMT, and record
// the crowd's answers in local file F. Then, during our experiments,
// whenever a method requests to crowdsource a record pair, we retrieve
// the answers from F." SaveAnswers/LoadAnswers are that file F: an
// answer set serialized as CSV so a collection (simulated or real) can
// be replayed across runs, tools, and machines.
//
// Three formats exist. v1 (the original) has an 8-field header
// lo,hi,fc,votes,truth,<workers>,<pairsPerHIT>,<centsPerHIT> and 5-field
// rows. v2 adds a per-pair provenance column and an explicit version tag
// as the final header field, so future format changes are detectable
// instead of silently misparsed: the header is
// lo,hi,fc,votes,truth,source,<workers>,<pairsPerHIT>,<centsPerHIT>,<version>
// with 6-field rows. v3 adds marketplace charge provenance — which
// backend sold each answer and the price paid in cents — as two more
// columns: the header is
// lo,hi,fc,votes,truth,source,backend,price,<workers>,<pairsPerHIT>,<centsPerHIT>,<version>
// with 8-field rows, both columns omit-default (empty backend, empty
// price) for answers that never went through a marketplace. LoadAnswers
// reads all three; SaveAnswers writes v3.

// FormatVersion is the version tag SaveAnswers writes as the final
// header field. Readers reject files tagged with a later version
// (ErrUnsupportedVersion) rather than misreading them.
const FormatVersion = "acd-answers-v3"

// formatVersionV2 tags the previous format generation, which
// LoadAnswers still accepts.
const formatVersionV2 = "acd-answers-v2"

// formatVersionPrefix identifies a version tag from any format
// generation, so an unknown future version is distinguishable from a
// corrupt header.
const formatVersionPrefix = "acd-answers-v"

// ErrUnsupportedVersion reports an answer file written by a newer format
// generation than this reader understands.
var ErrUnsupportedVersion = errors.New("crowd: unsupported answer-file version")

// SaveAnswers writes an answer set as CSV in the v3 format: a versioned
// header describing the collection setting (the RNG seed is
// collection-time state and is not persisted), then one row per pair
// with its crowd score, vote count, ground-truth flag, answer
// provenance, and marketplace charge (backend id and price paid). Rows
// are sorted canonically so output is reproducible.
func SaveAnswers(w io.Writer, a *AnswerSet) error {
	cw := csv.NewWriter(w)
	header := []string{
		"lo", "hi", "fc", "votes", "truth", "source", "backend", "price",
		// The collection setting rides along in the header row's tail so
		// a single file is self-describing; the version tag closes it.
		strconv.Itoa(a.config.Workers),
		strconv.Itoa(a.config.PairsPerHIT),
		strconv.Itoa(a.config.CentsPerHIT),
		FormatVersion,
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("crowd: writing header: %w", err)
	}
	pairs := make([]record.Pair, 0, len(a.fc))
	for p := range a.fc {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Lo != pairs[j].Lo {
			return pairs[i].Lo < pairs[j].Lo
		}
		return pairs[i].Hi < pairs[j].Hi
	})
	for _, p := range pairs {
		truth := "0"
		if a.truth[p] {
			truth = "1"
		}
		src := ""
		if s := a.Source(p); s != DefaultSource {
			src = s // DefaultSource is omit-default, keeping diffs small
		}
		backend, cents := a.Charge(p)
		price := ""
		if cents != 0 {
			price = strconv.FormatFloat(cents, 'g', -1, 64)
		}
		row := []string{
			strconv.Itoa(int(p.Lo)),
			strconv.Itoa(int(p.Hi)),
			strconv.FormatFloat(a.fc[p], 'g', -1, 64),
			strconv.Itoa(a.VoteCount(p)),
			truth,
			src,
			backend,
			price,
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("crowd: writing pair %v: %w", p, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadAnswers reads an answer set written by SaveAnswers, accepting the
// current v3 format, the v2 format (no charge columns), and the original
// unversioned v1 format (whose rows also lack the source column; their
// provenance defaults to DefaultSource). Malformed input is an explicit
// error, never a silent zero: a truncated or unrecognized header, a row
// with the wrong field count, non-numeric ids or votes, a non-finite or
// out-of-range crowd score, a non-canonical or duplicate pair, a truth
// flag outside {0, 1}, and a non-finite or negative price are all
// rejected with the offending line number.
func LoadAnswers(r io.Reader) (*AnswerSet, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err == io.EOF {
		return nil, errors.New("crowd: empty answer file (truncated header)")
	}
	if err != nil {
		return nil, fmt.Errorf("crowd: reading header: %w", err)
	}

	var rowFields, cfgAt int
	switch {
	case len(header) == 12 && headerNamed(header, "lo", "hi", "fc", "votes", "truth", "source", "backend", "price"):
		if err := checkVersion(header[11], FormatVersion); err != nil {
			return nil, err
		}
		rowFields, cfgAt = 8, 8
	case len(header) == 10 && headerNamed(header, "lo", "hi", "fc", "votes", "truth", "source"):
		if err := checkVersion(header[9], formatVersionV2); err != nil {
			return nil, err
		}
		rowFields, cfgAt = 6, 6
	case len(header) == 8 && headerNamed(header, "lo", "hi", "fc", "votes", "truth"):
		rowFields, cfgAt = 5, 5 // v1: no source column, no version tag
	case len(header) < 8 && len(header) > 0 && header[0] == "lo":
		return nil, fmt.Errorf("crowd: truncated answer-file header (%d fields): %v", len(header), header)
	default:
		return nil, fmt.Errorf("crowd: unrecognized answer-file header %v", header)
	}

	cfg := Config{}
	if cfg.Workers, err = strconv.Atoi(header[cfgAt]); err != nil {
		return nil, fmt.Errorf("crowd: bad workers in header: %w", err)
	}
	if cfg.PairsPerHIT, err = strconv.Atoi(header[cfgAt+1]); err != nil {
		return nil, fmt.Errorf("crowd: bad pairsPerHIT in header: %w", err)
	}
	if cfg.CentsPerHIT, err = strconv.Atoi(header[cfgAt+2]); err != nil {
		return nil, fmt.Errorf("crowd: bad centsPerHIT in header: %w", err)
	}

	a := &AnswerSet{
		fc:     make(map[record.Pair]float64),
		truth:  make(map[record.Pair]bool),
		votes:  make(map[record.Pair]int),
		config: cfg,
	}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("crowd: line %d: %w", line, err)
		}
		if len(row) != rowFields {
			return nil, fmt.Errorf("crowd: line %d: %d fields, want %d", line, len(row), rowFields)
		}
		lo, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("crowd: line %d: bad lo: %w", line, err)
		}
		hi, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("crowd: line %d: bad hi: %w", line, err)
		}
		if lo < 0 || hi < 0 {
			return nil, fmt.Errorf("crowd: line %d: negative record id (%d,%d)", line, lo, hi)
		}
		if lo >= hi {
			return nil, fmt.Errorf("crowd: line %d: non-canonical pair (%d,%d): want lo < hi", line, lo, hi)
		}
		fc, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("crowd: line %d: bad fc: %w", line, err)
		}
		if math.IsNaN(fc) || math.IsInf(fc, 0) {
			return nil, fmt.Errorf("crowd: line %d: non-finite fc %q", line, row[2])
		}
		votes, err := strconv.Atoi(row[3])
		if err != nil {
			return nil, fmt.Errorf("crowd: line %d: bad votes: %w", line, err)
		}
		if votes < 0 {
			return nil, fmt.Errorf("crowd: line %d: negative votes %d", line, votes)
		}
		if row[4] != "0" && row[4] != "1" {
			return nil, fmt.Errorf("crowd: line %d: bad truth flag %q (want 0 or 1)", line, row[4])
		}
		p := record.MakePair(record.ID(lo), record.ID(hi))
		if _, dup := a.fc[p]; dup {
			return nil, fmt.Errorf("crowd: line %d: duplicate pair %v", line, p)
		}
		a.fc[p] = fc
		a.truth[p] = row[4] == "1"
		a.votes[p] = votes
		if rowFields >= 6 && row[5] != "" {
			a.SetSource(p, row[5])
		}
		if rowFields == 8 {
			cents := 0.0
			if row[7] != "" {
				cents, err = strconv.ParseFloat(row[7], 64)
				if err != nil {
					return nil, fmt.Errorf("crowd: line %d: bad price: %w", line, err)
				}
				if math.IsNaN(cents) || math.IsInf(cents, 0) || cents < 0 {
					return nil, fmt.Errorf("crowd: line %d: bad price %q (want a finite non-negative cent amount)", line, row[7])
				}
			}
			if row[6] != "" || cents != 0 {
				a.SetCharge(p, row[6], cents)
			}
		}
	}
	return a, nil
}

// checkVersion validates one header shape's version tag: want is the
// only version that ships this shape, any other tagged version is
// explicitly unsupported, and anything else is a corrupt header.
func checkVersion(got, want string) error {
	if got == want {
		return nil
	}
	if strings.HasPrefix(got, formatVersionPrefix) {
		return fmt.Errorf("%w: %q (this reader understands up to %q)", ErrUnsupportedVersion, got, FormatVersion)
	}
	return fmt.Errorf("crowd: unrecognized answer-file version field %q", got)
}

// headerNamed reports whether the header's leading fields carry exactly
// the given column names.
func headerNamed(header []string, names ...string) bool {
	for i, n := range names {
		if header[i] != n {
			return false
		}
	}
	return true
}
