package crowd

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"acd/internal/record"
)

// This file models the worker-level structure of the paper's AMT setting
// (Section 6.1): a pool of workers with individual reliabilities, a
// qualification test, and the more stringent requirements of the
// 5-worker collection ("completed 100 approved HITs and has an approval
// rate at least 95%", following [24]). HITs pack PairsPerHIT pairs and
// each HIT is completed by `Workers` distinct workers, so one unreliable
// worker contaminates a whole HIT's worth of pairs — a correlation the
// flat per-pair model of BuildAnswers does not capture.

// Worker is one simulated crowd worker.
type Worker struct {
	// ID identifies the worker within its pool.
	ID int
	// Error is the worker's base probability of answering a pair
	// incorrectly (before pair difficulty is factored in).
	Error float64
	// ApprovedHITs and ApprovalRate are the worker's AMT track record,
	// used by qualification filters.
	ApprovedHITs int
	ApprovalRate float64
	// PassedQualification reports whether the worker passed the
	// requester's qualification test.
	PassedQualification bool
}

// PoolConfig describes a worker population.
type PoolConfig struct {
	// Size is the number of workers in the pool.
	Size int
	// MeanError and ErrorSpread shape the per-worker base error rates:
	// errors are drawn from a Beta-like distribution with the given mean
	// and spread (clamped to [0, 0.95]).
	MeanError   float64
	ErrorSpread float64
	// QualificationPassRate is the fraction of workers that pass the
	// qualification test; passing correlates with lower error (the test
	// screens out the careless).
	QualificationPassRate float64
	// Seed drives the population draw.
	Seed int64
}

// Pool is a population of simulated workers.
type Pool struct {
	workers []Worker
}

// NewPool draws a worker population. Workers who fail the qualification
// test are biased toward the high-error end, mirroring what a real
// qualification test screens for.
func NewPool(cfg PoolConfig) *Pool {
	if cfg.Size <= 0 {
		panic("crowd: pool size must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Pool{workers: make([]Worker, cfg.Size)}
	for i := range p.workers {
		e := cfg.MeanError + cfg.ErrorSpread*rng.NormFloat64()
		if e < 0 {
			e = 0
		}
		if e > 0.95 {
			e = 0.95
		}
		// Rank-correlate qualification with reliability: a worker's pass
		// probability shrinks with its error.
		passP := cfg.QualificationPassRate * (1 - e) / math.Max(1e-9, 1-cfg.MeanError)
		if passP > 1 {
			passP = 1
		}
		p.workers[i] = Worker{
			ID:                  i,
			Error:               e,
			ApprovedHITs:        rng.Intn(2000),
			ApprovalRate:        0.80 + 0.20*rng.Float64()*(1-e), // sloppier workers get rejected more
			PassedQualification: rng.Float64() < passP,
		}
	}
	return p
}

// Size returns the population size.
func (p *Pool) Size() int { return len(p.workers) }

// Workers returns a copy of the population.
func (p *Pool) Workers() []Worker { return append([]Worker(nil), p.workers...) }

// Qualification is a worker admission filter.
type Qualification struct {
	// RequireTest admits only workers who passed the qualification test
	// (both of the paper's settings require this).
	RequireTest bool
	// MinApprovedHITs and MinApprovalRate add the 5-worker setting's
	// stricter requirements (100 and 0.95 in the paper).
	MinApprovedHITs int
	MinApprovalRate float64
}

// BasicQualification is the paper's 3-worker admission rule: pass the
// qualification test.
var BasicQualification = Qualification{RequireTest: true}

// StrictQualification is the paper's 5-worker admission rule: pass the
// test, ≥100 approved HITs, ≥95% approval.
var StrictQualification = Qualification{RequireTest: true, MinApprovedHITs: 100, MinApprovalRate: 0.95}

// Admits reports whether a worker satisfies the qualification.
func (q Qualification) Admits(w Worker) bool {
	if q.RequireTest && !w.PassedQualification {
		return false
	}
	if w.ApprovedHITs < q.MinApprovedHITs {
		return false
	}
	if w.ApprovalRate < q.MinApprovalRate {
		return false
	}
	return true
}

// Eligible returns the workers admitted by a qualification, in ID order.
func (p *Pool) Eligible(q Qualification) []Worker {
	var out []Worker
	for _, w := range p.workers {
		if q.Admits(w) {
			out = append(out, w)
		}
	}
	return out
}

// MeanEligibleError returns the average base error of admitted workers
// (0 if none) — the quantity qualification requirements exist to reduce.
func (p *Pool) MeanEligibleError(q Qualification) float64 {
	sum, n := 0.0, 0
	for _, w := range p.workers {
		if q.Admits(w) {
			sum += w.Error
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// BuildAnswersFromPool simulates a full answer collection with
// HIT-level structure: pairs are packed into HITs of cfg.PairsPerHIT in
// the given order; each HIT is assigned to cfg.Workers distinct eligible
// workers (drawn without replacement per HIT); each worker answers every
// pair in their HIT, erring with probability 1−(1−e_w)(1−d_p) (wrong if
// either their own carelessness or the pair's inherent difficulty trips
// them). Scores are majority fractions as usual.
//
// It panics if fewer eligible workers exist than cfg.Workers.
func BuildAnswersFromPool(pairs []record.Pair, truth func(record.Pair) bool, difficulty func(record.Pair) float64, pool *Pool, q Qualification, cfg Config) *AnswerSet {
	if cfg.Workers <= 0 || cfg.Workers%2 == 0 {
		panic(fmt.Sprintf("crowd: Workers must be odd and positive, got %d", cfg.Workers))
	}
	eligible := pool.Eligible(q)
	if len(eligible) < cfg.Workers {
		panic(fmt.Sprintf("crowd: %d eligible workers, need %d", len(eligible), cfg.Workers))
	}
	a := &AnswerSet{
		fc:     make(map[record.Pair]float64, len(pairs)),
		truth:  make(map[record.Pair]bool, len(pairs)),
		config: cfg,
	}
	// Deterministic HIT packing: sort pairs canonically so the grouping
	// does not depend on caller order.
	sorted := append([]record.Pair(nil), pairs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Lo != sorted[j].Lo {
			return sorted[i].Lo < sorted[j].Lo
		}
		return sorted[i].Hi < sorted[j].Hi
	})
	rng := rand.New(rand.NewSource(cfg.Seed))
	for start := 0; start < len(sorted); start += cfg.PairsPerHIT {
		end := start + cfg.PairsPerHIT
		if end > len(sorted) {
			end = len(sorted)
		}
		hit := sorted[start:end]
		assignees := sampleWorkers(rng, eligible, cfg.Workers)
		yes := make([]int, len(hit))
		for _, w := range assignees {
			for i, p := range hit {
				d := difficulty(p)
				pWrong := 1 - (1-w.Error)*(1-d)
				correct := rng.Float64() >= pWrong
				if correct == truth(p) {
					yes[i]++
				}
			}
		}
		for i, p := range hit {
			a.fc[p] = float64(yes[i]) / float64(cfg.Workers)
			a.truth[p] = truth(p)
		}
	}
	return a
}

// sampleWorkers draws k distinct workers uniformly from eligible.
func sampleWorkers(rng *rand.Rand, eligible []Worker, k int) []Worker {
	idx := rng.Perm(len(eligible))[:k]
	out := make([]Worker, k)
	for i, j := range idx {
		out[i] = eligible[j]
	}
	return out
}

// Vote is one worker's raw answer to one pair — the assignment-level
// data that worker-quality estimation (internal/quality) consumes.
type Vote struct {
	Worker int
	Pair   record.Pair
	Yes    bool
}

// CollectVotes runs the same HIT-level simulation as
// BuildAnswersFromPool but returns the raw per-worker votes instead of
// aggregated scores. Votes are emitted in canonical pair order, workers
// within a HIT in assignment order. The same (pool, qualification, cfg)
// arguments produce votes consistent with BuildAnswersFromPool's
// majority scores.
func CollectVotes(pairs []record.Pair, truth func(record.Pair) bool, difficulty func(record.Pair) float64, pool *Pool, q Qualification, cfg Config) []Vote {
	if cfg.Workers <= 0 || cfg.Workers%2 == 0 {
		panic(fmt.Sprintf("crowd: Workers must be odd and positive, got %d", cfg.Workers))
	}
	eligible := pool.Eligible(q)
	if len(eligible) < cfg.Workers {
		panic(fmt.Sprintf("crowd: %d eligible workers, need %d", len(eligible), cfg.Workers))
	}
	sorted := append([]record.Pair(nil), pairs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Lo != sorted[j].Lo {
			return sorted[i].Lo < sorted[j].Lo
		}
		return sorted[i].Hi < sorted[j].Hi
	})
	rng := rand.New(rand.NewSource(cfg.Seed))
	var votes []Vote
	for start := 0; start < len(sorted); start += cfg.PairsPerHIT {
		end := start + cfg.PairsPerHIT
		if end > len(sorted) {
			end = len(sorted)
		}
		hit := sorted[start:end]
		assignees := sampleWorkers(rng, eligible, cfg.Workers)
		for _, w := range assignees {
			for _, p := range hit {
				d := difficulty(p)
				pWrong := 1 - (1-w.Error)*(1-d)
				correct := rng.Float64() >= pWrong
				votes = append(votes, Vote{Worker: w.ID, Pair: p, Yes: correct == truth(p)})
			}
		}
	}
	return votes
}

// MajorityScores aggregates raw votes into per-pair crowd scores (the
// fraction of yes votes) — the baseline aggregation the paper uses.
func MajorityScores(votes []Vote) map[record.Pair]float64 {
	yes := make(map[record.Pair]int)
	total := make(map[record.Pair]int)
	for _, v := range votes {
		total[v.Pair]++
		if v.Yes {
			yes[v.Pair]++
		}
	}
	out := make(map[record.Pair]float64, len(total))
	for p, t := range total {
		out[p] = float64(yes[p]) / float64(t)
	}
	return out
}
