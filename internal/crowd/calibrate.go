package crowd

import (
	"math"
	"math/rand"
	"sort"

	"acd/internal/record"
)

// MajorityError returns the probability that a majority vote of `workers`
// independent workers, each wrong with probability d, yields the wrong
// answer. workers must be odd.
func MajorityError(d float64, workers int) float64 {
	need := workers/2 + 1 // wrong votes needed for a wrong majority
	p := 0.0
	for k := need; k <= workers; k++ {
		p += binom(workers, k) * math.Pow(d, float64(k)) * math.Pow(1-d, float64(workers-k))
	}
	return p
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	res := 1.0
	for i := 0; i < k; i++ {
		res = res * float64(n-i) / float64(i+1)
	}
	return res
}

// Mixture is a two-point per-pair difficulty model: an Alpha fraction of
// pairs is "hard" with per-worker error DHard, the rest "easy" with
// per-worker error DEasy. Table 3's Paper dataset requires DHard > 0.5:
// on such pairs the majority is wrong more often than right regardless of
// the worker count, which is exactly why its error rate barely drops from
// the 3-worker to the 5-worker setting.
type Mixture struct {
	Alpha float64
	DHard float64
	DEasy float64
}

// ExpectedError returns the mixture's expected majority-vote error rate
// under the given worker count.
func (m Mixture) ExpectedError(workers int) float64 {
	return m.Alpha*MajorityError(m.DHard, workers) + (1-m.Alpha)*MajorityError(m.DEasy, workers)
}

// Calibrate fits a Mixture whose expected majority error matches target3
// under 3 workers and target5 under 5 workers, by grid search over
// (DHard, DEasy) with Alpha solved in closed form from the 3-worker
// target. The returned mixture minimizes the squared error against both
// targets; the fit residual is returned alongside.
func Calibrate(target3, target5 float64) (Mixture, float64) {
	best := Mixture{DEasy: 0.1}
	bestErr := math.Inf(1)
	for dh := 0.50; dh <= 0.901; dh += 0.01 {
		h3, h5 := MajorityError(dh, 3), MajorityError(dh, 5)
		for de := 0.0; de <= 0.401; de += 0.005 {
			e3, e5 := MajorityError(de, 3), MajorityError(de, 5)
			// Solve alpha from the 3-worker target: a·h3 + (1−a)·e3 = t3.
			var alpha float64
			if math.Abs(h3-e3) < 1e-12 {
				alpha = 0
			} else {
				alpha = (target3 - e3) / (h3 - e3)
			}
			if alpha < 0 {
				alpha = 0
			}
			if alpha > 1 {
				alpha = 1
			}
			m := Mixture{Alpha: alpha, DHard: dh, DEasy: de}
			r3 := alpha*h3 + (1-alpha)*e3 - target3
			r5 := alpha*h5 + (1-alpha)*e5 - target5
			err := r3*r3 + r5*r5
			if err < bestErr {
				bestErr = err
				best = m
			}
		}
	}
	return best, bestErr
}

// DifficultyAssignment maps every candidate pair to a per-worker error
// probability according to a mixture, choosing the hard pairs by weighted
// sampling without replacement where a pair's weight is its
// *misleadingness*: the machine score for non-duplicates, one minus it
// for duplicates. Genuinely confusing pairs (Chevy/Chevron lookalikes,
// mangled duplicates) are therefore the most likely to be hard — the
// systematic error pattern that amplifies through TransM's transitivity —
// without being deterministically worst-case, matching how real AMT
// errors concentrate but do not perfectly track machine similarity.
func DifficultyAssignment(pairs []record.Pair, machine func(record.Pair) float64, truth func(record.Pair) bool, m Mixture) func(record.Pair) float64 {
	// Efraimidis–Spirakis weighted sampling: the nHard largest values of
	// u^(1/w) form a weighted sample without replacement. A small weight
	// floor keeps every pair eligible.
	type keyed struct {
		p   record.Pair
		key float64
	}
	all := make([]keyed, len(pairs))
	for i, p := range pairs {
		f := machine(p)
		mis := f
		if truth(p) {
			mis = 1 - f
		}
		w := mis + 0.05
		rng := rand.New(rand.NewSource(pairSeed(0x5eed, p)))
		all[i] = keyed{p: p, key: math.Pow(rng.Float64(), 1/w)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].key != all[j].key {
			return all[i].key > all[j].key
		}
		if all[i].p.Lo != all[j].p.Lo {
			return all[i].p.Lo < all[j].p.Lo
		}
		return all[i].p.Hi < all[j].p.Hi
	})
	nHard := int(math.Round(m.Alpha * float64(len(pairs))))
	diff := make(map[record.Pair]float64, len(pairs))
	for i, s := range all {
		if i < nHard {
			diff[s.p] = m.DHard
		} else {
			diff[s.p] = m.DEasy
		}
	}
	return func(p record.Pair) float64 { return diff[p] }
}

// UniformDifficulty returns a difficulty function assigning the same
// per-worker error to every pair; useful for tests and ablations.
func UniformDifficulty(d float64) func(record.Pair) float64 {
	return func(record.Pair) float64 { return d }
}
