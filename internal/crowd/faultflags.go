package crowd

import (
	"flag"
	"time"

	"acd/internal/record"
)

// FaultFlags is the shared command-line surface of the fault-tolerance
// layer, registered by RegisterFaultFlags. acdbench and acddedup both
// use it, so the retry/hedge knobs and the chaos mix read the same way
// everywhere.
type FaultFlags struct {
	// Timeout and Retries tune the ReliableSource wrapper (zero values
	// mean DefaultTimeout / DefaultRetries).
	Timeout time.Duration
	Retries int
	// Drop, Error, Dup and Spike are the injected fault probabilities;
	// Seed drives every fault draw; Burst/BurstLen schedule adversarial
	// worker bursts. All zero means no chaos.
	Drop     float64
	Error    float64
	Dup      float64
	Spike    float64
	Seed     int64
	Burst    int
	BurstLen int
}

// RegisterFaultFlags registers the -crowd-* and -chaos-* flags on fs and
// returns the struct their values land in (read after fs.Parse).
func RegisterFaultFlags(fs *flag.FlagSet) *FaultFlags {
	f := &FaultFlags{}
	fs.DurationVar(&f.Timeout, "crowd-timeout", DefaultTimeout, "per-question crowd deadline (primary + hedge)")
	fs.IntVar(&f.Retries, "crowd-retries", DefaultRetries, "crowd question re-issues after the first attempt (-1 = none)")
	fs.Float64Var(&f.Drop, "chaos-drop", 0, "injected probability an answer never arrives")
	fs.Float64Var(&f.Error, "chaos-error", 0, "injected probability of a transient platform error")
	fs.Float64Var(&f.Dup, "chaos-dup", 0, "injected probability of a duplicated answer delivery")
	fs.Float64Var(&f.Spike, "chaos-spike", 0, "injected probability of a latency spike")
	fs.Int64Var(&f.Seed, "chaos-seed", 1, "seed for the deterministic fault injector")
	fs.IntVar(&f.Burst, "chaos-burst", 0, "open an adversarial drop burst every N questions (0 = off)")
	fs.IntVar(&f.BurstLen, "chaos-burst-len", 0, "length of each adversarial burst window")
	return f
}

// Enabled reports whether any fault injection was requested; the
// reliability wrapper is only worth paying for in a simulated pipeline
// when there are faults to tolerate.
func (f *FaultFlags) Enabled() bool {
	return f.Drop > 0 || f.Error > 0 || f.Dup > 0 || f.Spike > 0 || f.Burst > 0
}

// ChaosConfig assembles the injector configuration from the flag values.
func (f *FaultFlags) ChaosConfig() ChaosConfig {
	return ChaosConfig{
		Seed:       f.Seed,
		DropProb:   f.Drop,
		ErrorProb:  f.Error,
		DupProb:    f.Dup,
		SpikeProb:  f.Spike,
		BurstEvery: f.Burst,
		BurstLen:   f.BurstLen,
	}
}

// Wrap layers the configured fault injector and the fault-tolerance
// machine over src: chaos (per the -chaos-* flags) under a
// ReliableSource with the -crowd-* deadline and retry budget, falling
// back to the machine probability and running on clock (nil = wall
// clock; simulated pipelines pass a VirtualClock so injected latency is
// arithmetic, not sleeps). The returned source carries src's recorder.
func (f *FaultFlags) Wrap(src Source, fallback func(record.Pair) float64, clock Clock) *ReliableSource {
	retries := f.Retries
	if retries == 0 {
		retries = -1 // flag 0 literally means no retries
	}
	var inner Source = NewChaos(src, f.ChaosConfig())
	return NewReliable(inner, ReliableConfig{
		Timeout:  f.Timeout,
		Retries:  retries,
		Seed:     f.Seed,
		Fallback: fallback,
		Clock:    clock,
	})
}
