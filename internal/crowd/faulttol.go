package crowd

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"time"

	"acd/internal/obs"
	"acd/internal/record"
)

// The paper's evaluation runs against a live AMT deployment where
// workers time out, abandon HITs, and return noisy answers; CrowdER
// (VLDB 2012) and the transitive-relations work (SIGMOD 2013) both
// report that HIT latency variance and worker unreliability — not
// algorithmic cost — dominate end-to-end crowdsourcing runs. This file
// is the layer that lets the pipeline survive such a crowd: a
// ReliableSource wraps any Source with per-question deadlines, bounded
// retries with exponential backoff and jitter, hedged re-issue of
// stragglers, and graceful degradation to the machine probability when
// the retry budget is exhausted, so a misbehaving backend degrades
// accuracy instead of wedging the run.

// ErrCrowdTimeout reports a question whose answer did not arrive within
// the per-question deadline (including any hedged re-issue).
var ErrCrowdTimeout = errors.New("crowd: question timed out")

// ErrTransient reports a retryable platform failure (the simulated
// equivalent of an HTTP 5xx or an abandoned HIT). ChaosSource injects
// it; live adapters may return it from ScoreChecked-style paths.
var ErrTransient = errors.New("crowd: transient platform error")

// ErrNotCandidate reports a question about a pair outside the candidate
// set — the checked equivalent of AnswerSet.Score's panic. It is not
// retryable in any useful sense; ReliableSource exhausts its budget and
// falls back.
var ErrNotCandidate = errors.New("crowd: pair was never posted (not a candidate)")

// CheckedSource is implemented by sources that can answer a pair
// without panicking on non-candidates. The fault-tolerant path prefers
// it over Source.Score, which keeps AnswerSet's panic on out-of-set
// pairs unreachable from ReliableSource.
type CheckedSource interface {
	// ScoreChecked returns f_c for p, or an error (ErrNotCandidate for
	// pairs outside the candidate set, ErrTransient for retryable
	// platform failures).
	ScoreChecked(p record.Pair) (float64, error)
}

// FaultSource is implemented by sources that expose single attempts
// with explicit, simulated latency — the deterministic-simulation
// substrate. TryScore never sleeps: it reports how long the attempt
// *would* take, and ReliableSource advances its Clock by the resulting
// completion time. Attempt indices make outcomes independent of call
// order: attempt 2a is the a-th primary issue of p, 2a+1 its hedge.
type FaultSource interface {
	Source
	// TryScore makes one attempt at answering p. It returns the score,
	// the simulated latency until the outcome surfaces, and a non-nil
	// error for failed attempts (transient errors, non-candidates). A
	// "dropped" answer is modelled as a success with a latency beyond
	// any reasonable deadline.
	TryScore(p record.Pair, attempt int) (fc float64, latency time.Duration, err error)
}

// ContextBatchSource is the cancellable extension of BatchSource.
// Session.Ask resolves batches through it when the session carries a
// context, so a cancelled campaign stops mid-batch instead of draining
// the remaining questions.
type ContextBatchSource interface {
	Source
	// ScoreBatchCtx answers all pairs in order, stopping early with
	// ctx's error when the context is cancelled.
	ScoreBatchCtx(ctx context.Context, pairs []record.Pair) ([]float64, error)
}

// Defaults for ReliableConfig's zero values.
const (
	// DefaultTimeout is the per-question deadline.
	DefaultTimeout = time.Minute
	// DefaultRetries is the number of re-issues after the first attempt.
	DefaultRetries = 2
	// DefaultBackoff is the base backoff between retries.
	DefaultBackoff = 200 * time.Millisecond
	// DefaultBackoffFactor is the exponential backoff multiplier.
	DefaultBackoffFactor = 2.0
	// DefaultMaxBackoff caps the grown backoff.
	DefaultMaxBackoff = 5 * time.Second
	// DefaultJitterFrac is the ± fraction of jitter applied to backoff.
	DefaultJitterFrac = 0.2
	// DefaultHedgePercentile is the attempt-latency percentile after
	// which a straggling question is hedged with a second issue.
	DefaultHedgePercentile = 0.95
	// hedgeWarmup is how many latency samples the percentile estimate
	// needs before it replaces the boot hedge delay (Timeout/2).
	hedgeWarmup = 8
	// latencyWindow bounds the percentile sample buffer.
	latencyWindow = 128
)

// ReliableConfig tunes a ReliableSource. The zero value is usable: it
// means DefaultTimeout, DefaultRetries, the default backoff schedule,
// p95 hedging, no fallback function (failed questions score 0), and the
// wall clock.
type ReliableConfig struct {
	// Timeout is the per-question deadline covering the primary attempt
	// and its hedge together. Zero means DefaultTimeout.
	Timeout time.Duration
	// Retries is how many times a failed question is re-issued after
	// the first attempt. Zero means DefaultRetries; negative means no
	// retries at all.
	Retries int
	// Backoff, BackoffFactor and MaxBackoff shape the exponential
	// backoff between retries (zero values take the defaults).
	Backoff       time.Duration
	BackoffFactor float64
	MaxBackoff    time.Duration
	// JitterFrac spreads each backoff uniformly in ±JitterFrac around
	// its nominal value, decorrelating retry storms. Zero means
	// DefaultJitterFrac; negative disables jitter.
	JitterFrac float64
	// HedgePercentile picks the observed attempt-latency percentile at
	// which a still-unanswered question is re-issued (hedged). Zero
	// means DefaultHedgePercentile; negative disables hedging. Until
	// hedgeWarmup samples exist the hedge delay is Timeout/2.
	HedgePercentile float64
	// Seed drives the jitter RNG; equal seeds give equal backoff
	// sequences.
	Seed int64
	// Concurrency bounds the worker pool ScoreBatchCtx uses on the
	// live (non-FaultSource) path; values < 1 mean 8. The
	// deterministic-simulation path is always sequential, which is
	// what makes it reproducible.
	Concurrency int
	// Fallback supplies the degraded answer for a question whose retry
	// budget is exhausted — the machine probability f from the pruning
	// phase (Candidates.Score) in the ACD pipeline. Nil falls back to
	// 0 (treat the pair as a non-duplicate).
	Fallback func(record.Pair) float64
	// Clock is the time source: nil means the wall clock. Tests pass a
	// *VirtualClock so deadlines and backoff are simulated arithmetic.
	Clock Clock
}

// withDefaults resolves the zero values.
func (c ReliableConfig) withDefaults() ReliableConfig {
	if c.Timeout == 0 {
		c.Timeout = DefaultTimeout
	}
	if c.Retries == 0 {
		c.Retries = DefaultRetries
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.Backoff == 0 {
		c.Backoff = DefaultBackoff
	}
	if c.BackoffFactor == 0 {
		c.BackoffFactor = DefaultBackoffFactor
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = DefaultMaxBackoff
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = DefaultJitterFrac
	}
	if c.JitterFrac < 0 {
		c.JitterFrac = 0
	}
	if c.HedgePercentile == 0 {
		c.HedgePercentile = DefaultHedgePercentile
	}
	if c.Concurrency < 1 {
		c.Concurrency = 8
	}
	if c.Clock == nil {
		c.Clock = WallClock()
	}
	return c
}

// ReliableSource wraps a Source with the fault-tolerance state machine:
//
//	ask ──► attempt (deadline-bounded, hedged at the p-th latency
//	        percentile) ──► success: answer
//	          │ failure/timeout
//	          ▼
//	        retry with exponential backoff + jitter, up to Retries
//	          │ budget exhausted
//	          ▼
//	        fallback to the machine probability f (graceful degradation)
//
// Every retry, hedge, timeout and fallback is counted on the attached
// obs recorder. When the inner source implements FaultSource the whole
// machine runs in simulated time on the configured Clock — fully
// deterministic, no sleeps; otherwise attempts run as goroutines
// against the wall clock.
type ReliableSource struct {
	inner Source
	cfg   ReliableConfig
	rec   *obs.Recorder

	mu     sync.Mutex
	jitter *rand.Rand
	lats   []time.Duration // recent successful attempt latencies (ring)
	latPos int
	latN   int
}

// NewReliable wraps inner in the fault-tolerance layer. If inner
// carries a metrics recorder (RecorderCarrier) it is adopted, so an
// instrumented AnswerSet stays instrumented through the wrapper chain.
func NewReliable(inner Source, cfg ReliableConfig) *ReliableSource {
	r := &ReliableSource{
		inner:  inner,
		cfg:    cfg.withDefaults(),
		jitter: rand.New(rand.NewSource(cfg.Seed)),
		lats:   make([]time.Duration, latencyWindow),
	}
	if c, ok := inner.(RecorderCarrier); ok {
		r.rec = c.Recorder()
	}
	return r
}

// Config implements Source by delegating to the wrapped source.
func (r *ReliableSource) Config() Config { return r.inner.Config() }

// SetRecorder implements RecorderSetter: it attaches rec here and
// pushes it down the wrapper chain so oracle accounting stays in the
// same snapshot.
func (r *ReliableSource) SetRecorder(rec *obs.Recorder) {
	r.rec = rec
	if s, ok := r.inner.(RecorderSetter); ok {
		s.SetRecorder(rec)
	}
}

// Recorder implements RecorderCarrier.
func (r *ReliableSource) Recorder() *obs.Recorder { return r.rec }

// Score implements Source. Cancellation errors cannot occur under the
// background context, so the answer (possibly a fallback) is returned
// directly.
func (r *ReliableSource) Score(p record.Pair) float64 {
	fc, _ := r.ScoreCtx(context.Background(), p)
	return fc
}

// ScoreCtx answers one pair through the full retry/hedge/fallback
// machine. The only non-nil errors it returns are ctx's: every crowd
// failure mode ends in the fallback answer instead.
func (r *ReliableSource) ScoreCtx(ctx context.Context, p record.Pair) (float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for attempt := 0; attempt <= r.cfg.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		var fc float64
		var err error
		if fs, ok := r.inner.(FaultSource); ok {
			fc, err = r.attemptSim(ctx, fs, p, attempt)
		} else {
			fc, err = r.attemptLive(ctx, p)
		}
		if err == nil {
			return fc, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return 0, cerr
		}
		if attempt < r.cfg.Retries {
			r.rec.Count(MetricRetries, 1)
			if serr := r.cfg.Clock.Sleep(ctx, r.backoff(attempt)); serr != nil {
				return 0, serr
			}
		}
	}
	// Retry budget exhausted: degrade to the machine probability rather
	// than wedging the run.
	r.rec.Count(MetricFallbacks, 1)
	if r.cfg.Fallback != nil {
		return r.cfg.Fallback(p), nil
	}
	return 0, nil
}

// ScoreBatch implements BatchSource.
func (r *ReliableSource) ScoreBatch(pairs []record.Pair) []float64 {
	out, _ := r.ScoreBatchCtx(context.Background(), pairs)
	return out
}

// ScoreBatchCtx implements ContextBatchSource. Over a FaultSource it
// resolves pairs sequentially in simulated time (the deterministic
// path); over a live source it fans out across a fixed pool of
// Concurrency workers.
func (r *ReliableSource) ScoreBatchCtx(ctx context.Context, pairs []record.Pair) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if _, deterministic := r.inner.(FaultSource); deterministic || r.cfg.Concurrency == 1 {
		out := make([]float64, len(pairs))
		for i, p := range pairs {
			fc, err := r.ScoreCtx(ctx, p)
			if err != nil {
				return nil, err
			}
			out[i] = fc
		}
		return out, nil
	}
	return scorePool(ctx, pairs, r.cfg.Concurrency, func(p record.Pair) float64 {
		fc, _ := r.ScoreCtx(ctx, p)
		return fc
	})
}

// attemptSim runs one deadline-bounded, hedged attempt in simulated
// time: latencies are reported by the FaultSource, compared against the
// hedge delay and the deadline arithmetically, and the Clock advances
// by however long the client would have waited. Attempt a issues
// TryScore index 2a; its hedge, 2a+1.
func (r *ReliableSource) attemptSim(ctx context.Context, fs FaultSource, p record.Pair, a int) (float64, error) {
	timeout := r.cfg.Timeout
	hedgeAt := r.hedgeDelay()

	r.rec.Count(MetricAttempts, 1)
	fc1, lat1, err1 := fs.TryScore(p, 2*a)

	// The primary's outcome surfaces before the hedge would fire (or
	// hedging is disabled): no hedge.
	if hedgeAt >= timeout || lat1 <= hedgeAt {
		switch {
		case err1 == nil && lat1 <= timeout:
			r.observeLatency(lat1)
			return fc1, r.cfg.Clock.Sleep(ctx, lat1)
		case err1 != nil && lat1 <= timeout:
			if serr := r.cfg.Clock.Sleep(ctx, lat1); serr != nil {
				return 0, serr
			}
			return 0, err1
		default:
			r.rec.Count(MetricTimeouts, 1)
			if serr := r.cfg.Clock.Sleep(ctx, timeout); serr != nil {
				return 0, serr
			}
			return 0, ErrCrowdTimeout
		}
	}

	// Straggler: a second issue races the primary from hedgeAt.
	r.rec.Count(MetricHedges, 1)
	r.rec.Count(MetricAttempts, 1)
	fc2, lat2, err2 := fs.TryScore(p, 2*a+1)
	done2 := hedgeAt + lat2

	best := time.Duration(-1)
	bestFC := 0.0
	if err1 == nil && lat1 <= timeout {
		best, bestFC = lat1, fc1
	}
	if err2 == nil && done2 <= timeout && (best < 0 || done2 < best) {
		best, bestFC = done2, fc2
	}
	if best >= 0 {
		r.observeLatency(best)
		return bestFC, r.cfg.Clock.Sleep(ctx, best)
	}
	// No success inside the window: a definitive failure if both issues
	// errored before the deadline, a timeout otherwise.
	if err1 != nil && lat1 <= timeout && err2 != nil && done2 <= timeout {
		at := lat1
		if done2 > at {
			at = done2
		}
		if serr := r.cfg.Clock.Sleep(ctx, at); serr != nil {
			return 0, serr
		}
		return 0, err1
	}
	r.rec.Count(MetricTimeouts, 1)
	if serr := r.cfg.Clock.Sleep(ctx, timeout); serr != nil {
		return 0, serr
	}
	return 0, ErrCrowdTimeout
}

// attemptLive runs one deadline-bounded, hedged attempt against a live
// source on the wall clock. Abandoned issues deliver into a buffered
// channel and exit; a live adapter whose Score can block forever should
// enforce its own internal timeout (or implement FaultSource).
func (r *ReliableSource) attemptLive(ctx context.Context, p record.Pair) (float64, error) {
	type res struct {
		fc  float64
		err error
	}
	ch := make(chan res, 2) // primary + at most one hedge
	issue := func() {
		fc, err := scoreOnce(r.inner, p)
		ch <- res{fc, err}
	}
	start := r.cfg.Clock.Now()
	r.rec.Count(MetricAttempts, 1)
	go issue()

	deadline := time.NewTimer(r.cfg.Timeout)
	defer deadline.Stop()
	hedgeDelay := r.hedgeDelay()
	var hedgeC <-chan time.Time
	if hedgeDelay < r.cfg.Timeout {
		hedge := time.NewTimer(hedgeDelay)
		defer hedge.Stop()
		hedgeC = hedge.C
	}
	outstanding := 1
	for {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case v := <-ch:
			if v.err == nil {
				r.observeLatency(r.cfg.Clock.Now().Sub(start))
				return v.fc, nil
			}
			outstanding--
			if outstanding == 0 {
				return 0, v.err
			}
		case <-hedgeC:
			hedgeC = nil // fire once
			r.rec.Count(MetricHedges, 1)
			r.rec.Count(MetricAttempts, 1)
			outstanding++
			go issue()
		case <-deadline.C:
			r.rec.Count(MetricTimeouts, 1)
			return 0, ErrCrowdTimeout
		}
	}
}

// scoreOnce answers one pair through the panic-free path when the
// source provides it.
func scoreOnce(src Source, p record.Pair) (float64, error) {
	if cs, ok := src.(CheckedSource); ok {
		return cs.ScoreChecked(p)
	}
	return src.Score(p), nil
}

// backoff computes the jittered exponential backoff before re-issue
// number attempt+1.
func (r *ReliableSource) backoff(attempt int) time.Duration {
	d := float64(r.cfg.Backoff)
	for i := 0; i < attempt; i++ {
		d *= r.cfg.BackoffFactor
	}
	if max := float64(r.cfg.MaxBackoff); d > max {
		d = max
	}
	if r.cfg.JitterFrac > 0 {
		r.mu.Lock()
		u := r.jitter.Float64()
		r.mu.Unlock()
		d *= 1 + r.cfg.JitterFrac*(2*u-1)
	}
	return time.Duration(d)
}

// observeLatency records a successful attempt's completion latency into
// the percentile window and the obs histogram.
func (r *ReliableSource) observeLatency(d time.Duration) {
	r.rec.Observe(MetricAttemptLatency, d.Seconds())
	r.mu.Lock()
	r.lats[r.latPos] = d
	r.latPos = (r.latPos + 1) % len(r.lats)
	if r.latN < len(r.lats) {
		r.latN++
	}
	r.mu.Unlock()
}

// hedgeDelay returns the current straggler threshold: the configured
// percentile of recent attempt latencies, clamped below the deadline;
// Timeout/2 until enough samples exist; >= Timeout (never fires) when
// hedging is disabled.
func (r *ReliableSource) hedgeDelay() time.Duration {
	if r.cfg.HedgePercentile < 0 {
		return r.cfg.Timeout // never fires
	}
	boot := r.cfg.Timeout / 2
	r.mu.Lock()
	n := r.latN
	var sample []time.Duration
	if n >= hedgeWarmup {
		sample = append(sample, r.lats[:n]...)
	}
	r.mu.Unlock()
	if sample == nil {
		return boot
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	idx := int(float64(n)*r.cfg.HedgePercentile+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	d := sample[idx]
	if d >= r.cfg.Timeout {
		d = r.cfg.Timeout - 1
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}
