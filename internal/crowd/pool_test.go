package crowd

import (
	"testing"

	"acd/internal/record"
)

func testPool() *Pool {
	return NewPool(PoolConfig{
		Size:                  500,
		MeanError:             0.25,
		ErrorSpread:           0.15,
		QualificationPassRate: 0.6,
		Seed:                  7,
	})
}

func TestNewPool(t *testing.T) {
	p := testPool()
	if p.Size() != 500 {
		t.Fatalf("size = %d", p.Size())
	}
	for _, w := range p.Workers() {
		if w.Error < 0 || w.Error > 0.95 {
			t.Fatalf("worker %d error %v out of range", w.ID, w.Error)
		}
		if w.ApprovalRate < 0.8 || w.ApprovalRate > 1 {
			t.Fatalf("worker %d approval %v out of range", w.ID, w.ApprovalRate)
		}
	}
	// Deterministic.
	q := testPool()
	for i, w := range p.Workers() {
		if q.Workers()[i] != w {
			t.Fatalf("pool not deterministic at worker %d", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("zero-size pool should panic")
		}
	}()
	NewPool(PoolConfig{})
}

func TestQualificationFiltersImproveQuality(t *testing.T) {
	p := testPool()
	none := Qualification{}
	basic := BasicQualification
	strict := StrictQualification

	if len(p.Eligible(none)) != p.Size() {
		t.Errorf("empty qualification should admit everyone")
	}
	nBasic, nStrict := len(p.Eligible(basic)), len(p.Eligible(strict))
	if nBasic >= p.Size() || nStrict > nBasic || nStrict == 0 {
		t.Errorf("qualification sizes: all=%d basic=%d strict=%d", p.Size(), nBasic, nStrict)
	}
	// Each tightening of the requirements must lower mean worker error.
	eAll := p.MeanEligibleError(none)
	eBasic := p.MeanEligibleError(basic)
	eStrict := p.MeanEligibleError(strict)
	if !(eStrict < eBasic && eBasic < eAll) {
		t.Errorf("qualification did not improve quality: all=%.3f basic=%.3f strict=%.3f",
			eAll, eBasic, eStrict)
	}
}

func TestQualificationAdmits(t *testing.T) {
	w := Worker{PassedQualification: true, ApprovedHITs: 150, ApprovalRate: 0.97}
	if !StrictQualification.Admits(w) {
		t.Errorf("qualified worker rejected")
	}
	for _, bad := range []Worker{
		{PassedQualification: false, ApprovedHITs: 150, ApprovalRate: 0.97},
		{PassedQualification: true, ApprovedHITs: 50, ApprovalRate: 0.97},
		{PassedQualification: true, ApprovedHITs: 150, ApprovalRate: 0.90},
	} {
		if StrictQualification.Admits(bad) {
			t.Errorf("unqualified worker admitted: %+v", bad)
		}
	}
}

func TestBuildAnswersFromPool(t *testing.T) {
	p := testPool()
	pairs := adaptivePairs(300)
	truth := func(pr record.Pair) bool { return pr.Lo%2 == 0 }
	diff := UniformDifficulty(0.05)

	a := BuildAnswersFromPool(pairs, truth, diff, p, BasicQualification, ThreeWorker(3))
	if a.Len() != len(pairs) {
		t.Fatalf("answered %d of %d pairs", a.Len(), len(pairs))
	}
	for _, pr := range pairs {
		fc := a.Score(pr)
		scaled := fc * 3
		if scaled != float64(int(scaled)) {
			t.Fatalf("score %v is not a thirds fraction", fc)
		}
	}
	// Order independence: shuffled input gives identical answers.
	reversed := make([]record.Pair, len(pairs))
	for i, pr := range pairs {
		reversed[len(pairs)-1-i] = pr
	}
	b := BuildAnswersFromPool(reversed, truth, diff, p, BasicQualification, ThreeWorker(3))
	for _, pr := range pairs {
		if a.Score(pr) != b.Score(pr) {
			t.Fatalf("pool answers depend on pair order at %v", pr)
		}
	}
}

// TestStricterQualificationLowersErrorRate: the paper's rationale for
// the 5-worker setting's admission rules — measured end to end.
func TestStricterQualificationLowersErrorRate(t *testing.T) {
	p := testPool()
	pairs := adaptivePairs(4000)
	truth := func(pr record.Pair) bool { return pr.Lo%3 == 0 }
	diff := UniformDifficulty(0.05)

	loose := BuildAnswersFromPool(pairs, truth, diff, p, Qualification{}, ThreeWorker(5))
	strict := BuildAnswersFromPool(pairs, truth, diff, p, StrictQualification, ThreeWorker(5))
	if strict.ErrorRate() >= loose.ErrorRate() {
		t.Errorf("strict qualification error %.4f not below open-pool %.4f",
			strict.ErrorRate(), loose.ErrorRate())
	}
}

func TestBuildAnswersFromPoolPanics(t *testing.T) {
	p := NewPool(PoolConfig{Size: 3, MeanError: 0.1, QualificationPassRate: 0, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic with no eligible workers")
		}
	}()
	BuildAnswersFromPool(nil, nil, nil, p, BasicQualification, ThreeWorker(1))
}
