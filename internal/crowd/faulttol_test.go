package crowd

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"acd/internal/obs"
	"acd/internal/record"
)

// tryOutcome scripts one TryScore attempt of a scriptSource.
type tryOutcome struct {
	fc  float64
	lat time.Duration
	err error
}

// scriptSource is a FaultSource test double: attempt outcomes are looked
// up in a per-(pair, attempt) script, defaulting to a 1-second success
// with the pair's base answer. It counts attempts per pair.
type scriptSource struct {
	answers  map[record.Pair]float64
	script   map[record.Pair]map[int]tryOutcome
	attempts map[record.Pair][]int
}

func newScriptSource() *scriptSource {
	return &scriptSource{
		answers:  make(map[record.Pair]float64),
		script:   make(map[record.Pair]map[int]tryOutcome),
		attempts: make(map[record.Pair][]int),
	}
}

func (s *scriptSource) set(p record.Pair, attempt int, o tryOutcome) {
	if s.script[p] == nil {
		s.script[p] = make(map[int]tryOutcome)
	}
	s.script[p][attempt] = o
}

func (s *scriptSource) Score(p record.Pair) float64 { return s.answers[p] }
func (s *scriptSource) Config() Config              { return ThreeWorker(0) }

func (s *scriptSource) TryScore(p record.Pair, attempt int) (float64, time.Duration, error) {
	s.attempts[p] = append(s.attempts[p], attempt)
	if o, ok := s.script[p][attempt]; ok {
		return o.fc, o.lat, o.err
	}
	return s.answers[p], time.Second, nil
}

// reliableHarness wires a scripted source, a virtual clock and a fresh
// recorder into a ReliableSource with no jitter (so simulated elapsed
// time is exact arithmetic).
func reliableHarness(cfg ReliableConfig, src Source) (*ReliableSource, *VirtualClock, *obs.Recorder) {
	clock := NewVirtualClock(time.Time{})
	rec := obs.New()
	if cfg.Timeout == 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.JitterFrac == 0 {
		cfg.JitterFrac = -1
	}
	cfg.Clock = clock
	r := NewReliable(src, cfg)
	r.SetRecorder(rec)
	return r, clock, rec
}

func TestReliableFirstTrySuccess(t *testing.T) {
	src := newScriptSource()
	p := record.MakePair(1, 2)
	src.answers[p] = 0.8
	r, clock, rec := reliableHarness(ReliableConfig{}, src)

	if got := r.Score(p); got != 0.8 {
		t.Fatalf("Score = %v, want 0.8", got)
	}
	if e := clock.Elapsed(); e != time.Second {
		t.Errorf("elapsed %v, want 1s (the attempt latency)", e)
	}
	m := rec.Snapshot()
	if m.Counters[MetricAttempts] != 1 {
		t.Errorf("attempts = %d, want 1", m.Counters[MetricAttempts])
	}
	for _, k := range []string{MetricRetries, MetricHedges, MetricTimeouts, MetricFallbacks} {
		if m.Counters[k] != 0 {
			t.Errorf("%s = %d on a clean answer", k, m.Counters[k])
		}
	}
}

func TestReliableRetryAfterTransientError(t *testing.T) {
	src := newScriptSource()
	p := record.MakePair(3, 4)
	src.answers[p] = 0.6
	src.set(p, 0, tryOutcome{lat: 500 * time.Millisecond, err: ErrTransient})
	// Attempt index 2 is the second primary issue; the default outcome
	// (success, 1s) applies.
	r, clock, rec := reliableHarness(ReliableConfig{Retries: 2, Backoff: 200 * time.Millisecond}, src)

	if got := r.Score(p); got != 0.6 {
		t.Fatalf("Score = %v, want 0.6", got)
	}
	// 500ms failed attempt + 200ms backoff + 1s successful retry.
	if e, want := clock.Elapsed(), 1700*time.Millisecond; e != want {
		t.Errorf("elapsed %v, want %v", e, want)
	}
	m := rec.Snapshot()
	if m.Counters[MetricRetries] != 1 {
		t.Errorf("retries = %d, want 1", m.Counters[MetricRetries])
	}
	if m.Counters[MetricFallbacks] != 0 {
		t.Errorf("fallbacks = %d after a successful retry", m.Counters[MetricFallbacks])
	}
	if got := src.attempts[p]; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("attempt indices = %v, want [0 2]", got)
	}
}

func TestReliableDroppedAnswerTimesOutThenRetries(t *testing.T) {
	src := newScriptSource()
	p := record.MakePair(5, 6)
	src.answers[p] = 0.4
	// The primary's answer never arrives (latency beyond the deadline);
	// so does the hedge's. The retry succeeds.
	src.set(p, 0, tryOutcome{fc: 0.4, lat: time.Hour})
	src.set(p, 1, tryOutcome{fc: 0.4, lat: time.Hour})
	r, clock, rec := reliableHarness(ReliableConfig{Timeout: 10 * time.Second, Backoff: time.Second}, src)

	if got := r.Score(p); got != 0.4 {
		t.Fatalf("Score = %v, want 0.4", got)
	}
	// Full 10s deadline + 1s backoff + 1s retry.
	if e, want := clock.Elapsed(), 12*time.Second; e != want {
		t.Errorf("elapsed %v, want %v", e, want)
	}
	m := rec.Snapshot()
	if m.Counters[MetricTimeouts] != 1 {
		t.Errorf("timeouts = %d, want 1", m.Counters[MetricTimeouts])
	}
	if m.Counters[MetricRetries] != 1 {
		t.Errorf("retries = %d, want 1", m.Counters[MetricRetries])
	}
}

func TestReliableHedgeWinsRace(t *testing.T) {
	src := newScriptSource()
	p := record.MakePair(7, 8)
	// Straggling primary (8s, past the boot hedge delay of Timeout/2 =
	// 5s); the hedge issued at 5s answers in 1s, surfacing at 6s — it
	// wins. Distinct scores prove whose answer was used.
	src.set(p, 0, tryOutcome{fc: 0.3, lat: 8 * time.Second})
	src.set(p, 1, tryOutcome{fc: 0.9, lat: time.Second})
	r, clock, rec := reliableHarness(ReliableConfig{Timeout: 10 * time.Second}, src)

	if got := r.Score(p); got != 0.9 {
		t.Fatalf("Score = %v, want the hedge's 0.9", got)
	}
	if e, want := clock.Elapsed(), 6*time.Second; e != want {
		t.Errorf("elapsed %v, want %v (hedge delay 5s + hedge latency 1s)", e, want)
	}
	m := rec.Snapshot()
	if m.Counters[MetricHedges] != 1 {
		t.Errorf("hedges = %d, want 1", m.Counters[MetricHedges])
	}
	if m.Counters[MetricAttempts] != 2 {
		t.Errorf("attempts = %d, want 2", m.Counters[MetricAttempts])
	}
}

func TestReliablePrimaryBeatsHedge(t *testing.T) {
	src := newScriptSource()
	p := record.MakePair(9, 10)
	// Primary surfaces at 7s; the hedge (issued at 5s, 4s latency)
	// would surface at 9s. The primary wins the race.
	src.set(p, 0, tryOutcome{fc: 0.3, lat: 7 * time.Second})
	src.set(p, 1, tryOutcome{fc: 0.9, lat: 4 * time.Second})
	r, clock, _ := reliableHarness(ReliableConfig{Timeout: 10 * time.Second}, src)

	if got := r.Score(p); got != 0.3 {
		t.Fatalf("Score = %v, want the primary's 0.3", got)
	}
	if e, want := clock.Elapsed(), 7*time.Second; e != want {
		t.Errorf("elapsed %v, want %v", e, want)
	}
}

func TestReliableHedgeDisabled(t *testing.T) {
	src := newScriptSource()
	p := record.MakePair(11, 12)
	src.set(p, 0, tryOutcome{fc: 0.7, lat: 8 * time.Second})
	r, clock, rec := reliableHarness(ReliableConfig{Timeout: 10 * time.Second, HedgePercentile: -1}, src)

	if got := r.Score(p); got != 0.7 {
		t.Fatalf("Score = %v, want 0.7", got)
	}
	if e, want := clock.Elapsed(), 8*time.Second; e != want {
		t.Errorf("elapsed %v, want %v", e, want)
	}
	if m := rec.Snapshot(); m.Counters[MetricHedges] != 0 {
		t.Errorf("hedges = %d with hedging disabled", m.Counters[MetricHedges])
	}
	if got := src.attempts[p]; len(got) != 1 {
		t.Errorf("attempts = %v, want the primary only", got)
	}
}

func TestReliableHedgeDelayAdapts(t *testing.T) {
	src := newScriptSource()
	r, _, rec := reliableHarness(ReliableConfig{Timeout: 20 * time.Second}, src)

	// Warm the latency window past hedgeWarmup with 1-second successes:
	// the hedge delay drops from the 10s boot value to ~p95 of 1s.
	for i := 0; i < hedgeWarmup+2; i++ {
		p := record.MakePair(record.ID(100+i), record.ID(200+i))
		src.answers[p] = 0.5
		r.Score(p)
	}
	if d := r.hedgeDelay(); d < 500*time.Millisecond || d > 2*time.Second {
		t.Fatalf("adapted hedge delay = %v, want ≈1s", d)
	}

	// A 9s straggler now gets hedged at ~1s instead of 10s.
	p := record.MakePair(1, 2)
	src.set(p, 0, tryOutcome{fc: 0.2, lat: 9 * time.Second})
	src.set(p, 1, tryOutcome{fc: 0.8, lat: 100 * time.Millisecond})
	if got := r.Score(p); got != 0.8 {
		t.Fatalf("Score = %v, want the hedge's 0.8", got)
	}
	if m := rec.Snapshot(); m.Counters[MetricHedges] != 1 {
		t.Errorf("hedges = %d, want 1", m.Counters[MetricHedges])
	}
}

func TestReliableFallbackAfterBudgetExhausted(t *testing.T) {
	src := newScriptSource()
	p := record.MakePair(13, 14)
	// Every primary issue fails fast; latencies below the hedge delay
	// keep hedging out of the picture.
	for a := 0; a <= 4; a++ {
		src.set(p, 2*a, tryOutcome{lat: 100 * time.Millisecond, err: ErrTransient})
	}
	r, _, rec := reliableHarness(ReliableConfig{
		Retries:  2,
		Backoff:  100 * time.Millisecond,
		Fallback: func(record.Pair) float64 { return 0.42 },
	}, src)

	if got := r.Score(p); got != 0.42 {
		t.Fatalf("Score = %v, want the fallback 0.42", got)
	}
	m := rec.Snapshot()
	if m.Counters[MetricFallbacks] != 1 {
		t.Errorf("fallbacks = %d, want 1", m.Counters[MetricFallbacks])
	}
	if m.Counters[MetricRetries] != 2 {
		t.Errorf("retries = %d, want 2 (the full budget)", m.Counters[MetricRetries])
	}
}

func TestReliableNilFallbackScoresZero(t *testing.T) {
	src := newScriptSource()
	p := record.MakePair(15, 16)
	for a := 0; a <= 2; a++ {
		src.set(p, 2*a, tryOutcome{lat: 100 * time.Millisecond, err: ErrTransient})
	}
	r, _, _ := reliableHarness(ReliableConfig{Retries: 1}, src)
	if got := r.Score(p); got != 0 {
		t.Fatalf("Score = %v, want 0 (nil fallback treats the pair as a non-duplicate)", got)
	}
}

func TestReliableNegativeRetriesMeansNone(t *testing.T) {
	src := newScriptSource()
	p := record.MakePair(17, 18)
	src.set(p, 0, tryOutcome{lat: 100 * time.Millisecond, err: ErrTransient})
	r, _, rec := reliableHarness(ReliableConfig{Retries: -1, Fallback: func(record.Pair) float64 { return 0.9 }}, src)
	if got := r.Score(p); got != 0.9 {
		t.Fatalf("Score = %v, want immediate fallback 0.9", got)
	}
	if m := rec.Snapshot(); m.Counters[MetricRetries] != 0 {
		t.Errorf("retries = %d, want 0", m.Counters[MetricRetries])
	}
}

func TestReliableJitterDeterministicPerSeed(t *testing.T) {
	elapsed := func(seed int64) time.Duration {
		src := newScriptSource()
		p := record.MakePair(19, 20)
		for a := 0; a <= 6; a++ {
			src.set(p, 2*a, tryOutcome{lat: 50 * time.Millisecond, err: ErrTransient})
		}
		clock := NewVirtualClock(time.Time{})
		r := NewReliable(src, ReliableConfig{
			Timeout: 10 * time.Second,
			Retries: 3,
			Backoff: time.Second,
			Seed:    seed,
			Clock:   clock,
		})
		r.Score(p)
		return clock.Elapsed()
	}
	if a, b := elapsed(42), elapsed(42); a != b {
		t.Errorf("same seed, different jittered timelines: %v vs %v", a, b)
	}
	if a, b := elapsed(42), elapsed(43); a == b {
		t.Errorf("different seeds produced identical jitter (%v); suspicious", a)
	}
}

func TestReliableScoreCtxCancelled(t *testing.T) {
	src := newScriptSource()
	p := record.MakePair(21, 22)
	src.answers[p] = 0.5
	r, _, _ := reliableHarness(ReliableConfig{}, src)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.ScoreCtx(ctx, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(src.attempts[p]) != 0 {
		t.Errorf("a cancelled question still reached the source")
	}
}

func TestReliableScoreBatchCtxStopsMidBatch(t *testing.T) {
	src := newScriptSource()
	pairs := make([]record.Pair, 20)
	for i := range pairs {
		pairs[i] = record.MakePair(record.ID(i), record.ID(i+1000))
		src.answers[pairs[i]] = 0.5
	}
	ctx, cancel := context.WithCancel(context.Background())
	// The decorated source cancels the campaign while answering pair 5.
	n := 0
	cancelAfter := 5
	wrapped := faultFunc{
		src: src,
		hook: func() {
			n++
			if n == cancelAfter {
				cancel()
			}
		},
	}
	out, err := NewReliable(wrapped, ReliableConfig{Timeout: 10 * time.Second, Clock: NewVirtualClock(time.Time{})}).ScoreBatchCtx(ctx, pairs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Errorf("got partial scores %v on a cancelled batch, want nil", out)
	}
	if n > cancelAfter+1 {
		t.Errorf("batch kept issuing questions after cancellation: %d attempts", n)
	}
}

// faultFunc decorates a FaultSource with a per-attempt hook, for
// cancellation-injection tests.
type faultFunc struct {
	src  *scriptSource
	hook func()
}

func (f faultFunc) Score(p record.Pair) float64 { return f.src.Score(p) }
func (f faultFunc) Config() Config              { return f.src.Config() }
func (f faultFunc) TryScore(p record.Pair, attempt int) (float64, time.Duration, error) {
	f.hook()
	return f.src.TryScore(p, attempt)
}

func TestReliableScoreBatchDeterministic(t *testing.T) {
	build := func() (*ReliableSource, []record.Pair) {
		src := newScriptSource()
		pairs := make([]record.Pair, 30)
		for i := range pairs {
			pairs[i] = record.MakePair(record.ID(i), record.ID(i+500))
			src.answers[pairs[i]] = float64(i) / 30
			if i%7 == 0 {
				src.set(pairs[i], 0, tryOutcome{lat: 100 * time.Millisecond, err: ErrTransient})
			}
		}
		r, _, _ := reliableHarness(ReliableConfig{Retries: 2, Seed: 9}, src)
		return r, pairs
	}
	r1, pairs := build()
	a, err1 := r1.ScoreBatchCtx(context.Background(), pairs)
	r2, _ := build()
	b, err2 := r2.ScoreBatchCtx(context.Background(), pairs)
	if err1 != nil || err2 != nil {
		t.Fatalf("batch errors: %v, %v", err1, err2)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("batch not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] != float64(i)/30 {
			t.Errorf("score %d = %v, want %v", i, a[i], float64(i)/30)
		}
	}
}

// TestReliableAnswerSetPanicUnreachable pins the satellite guarantee:
// asking a ReliableSource-wrapped AnswerSet about a non-candidate takes
// the ScoreChecked path and degrades to the fallback — the AnswerSet
// panic is unreachable through the fault-tolerant layer.
func TestReliableAnswerSetPanicUnreachable(t *testing.T) {
	in := record.MakePair(1, 2)
	answers := FixedAnswers(map[record.Pair]float64{in: 1}, ThreeWorker(0))
	r := NewReliable(answers, ReliableConfig{
		Retries:  -1,
		Fallback: func(record.Pair) float64 { return 0.25 },
		Clock:    NewVirtualClock(time.Time{}),
	})

	if got := r.Score(in); got != 1 {
		t.Fatalf("candidate pair scored %v, want 1", got)
	}
	out := record.MakePair(8, 9)
	defer func() {
		if rec := recover(); rec != nil {
			t.Fatalf("non-candidate panicked through ReliableSource: %v", rec)
		}
	}()
	if got := r.Score(out); got != 0.25 {
		t.Fatalf("non-candidate scored %v, want the fallback 0.25", got)
	}
}

func TestAnswerSetScoreChecked(t *testing.T) {
	p := record.MakePair(1, 2)
	answers := FixedAnswers(map[record.Pair]float64{p: 0.7}, ThreeWorker(0))
	rec := obs.New()
	answers.SetRecorder(rec)

	if fc, err := answers.ScoreChecked(p); err != nil || fc != 0.7 {
		t.Fatalf("ScoreChecked = (%v, %v), want (0.7, nil)", fc, err)
	}
	if _, err := answers.ScoreChecked(record.MakePair(3, 4)); !errors.Is(err, ErrNotCandidate) {
		t.Fatalf("err = %v, want ErrNotCandidate", err)
	}
	// Only the successful lookup consulted the oracle.
	if m := rec.Snapshot(); m.Counters[MetricOracleInvocations] != 1 {
		t.Errorf("oracle invocations = %d, want 1", m.Counters[MetricOracleInvocations])
	}
}

func TestReliableLiveSourceRetries(t *testing.T) {
	// A live (non-FaultSource) source failing once transiently: the wall
	// clock path retries and succeeds.
	var calls int64
	src := checkedFunc{
		fn: func(p record.Pair) (float64, error) {
			if atomic.AddInt64(&calls, 1) == 1 {
				return 0, ErrTransient
			}
			return 0.75, nil
		},
	}
	r := NewReliable(src, ReliableConfig{
		Timeout: time.Second,
		Retries: 2,
		Backoff: time.Millisecond,
	})
	if got := r.Score(record.MakePair(1, 2)); got != 0.75 {
		t.Fatalf("Score = %v, want 0.75", got)
	}
	if c := atomic.LoadInt64(&calls); c != 2 {
		t.Errorf("source called %d times, want 2", c)
	}
}

func TestReliableLiveSourceTimeoutFallsBack(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	src := checkedFunc{
		fn: func(p record.Pair) (float64, error) {
			<-block
			return 1, nil
		},
	}
	r := NewReliable(src, ReliableConfig{
		Timeout:         10 * time.Millisecond,
		Retries:         -1,
		HedgePercentile: -1,
		Fallback:        func(record.Pair) float64 { return 0.33 },
	})
	if got := r.Score(record.MakePair(1, 2)); got != 0.33 {
		t.Fatalf("Score = %v, want the fallback 0.33", got)
	}
}

// checkedFunc is a minimal CheckedSource test double.
type checkedFunc struct {
	fn func(record.Pair) (float64, error)
}

func (c checkedFunc) Score(p record.Pair) float64 {
	fc, err := c.fn(p)
	if err != nil {
		panic(err)
	}
	return fc
}
func (c checkedFunc) Config() Config { return ThreeWorker(0) }
func (c checkedFunc) ScoreChecked(p record.Pair) (float64, error) {
	return c.fn(p)
}

func TestVirtualClockArithmetic(t *testing.T) {
	c := NewVirtualClock(time.Time{})
	start := c.Now()
	if err := c.Sleep(context.Background(), 3*time.Second); err != nil {
		t.Fatal(err)
	}
	c.Advance(2 * time.Second)
	c.Advance(-time.Hour) // ignored
	if e := c.Elapsed(); e != 5*time.Second {
		t.Errorf("elapsed %v, want 5s", e)
	}
	if got := c.Now().Sub(start); got != 5*time.Second {
		t.Errorf("Now advanced by %v, want 5s", got)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Sleep(ctx, time.Second); !errors.Is(err, context.Canceled) {
		t.Errorf("Sleep on cancelled ctx = %v, want context.Canceled", err)
	}
	if e := c.Elapsed(); e != 5*time.Second {
		t.Errorf("cancelled Sleep advanced the clock to %v", e)
	}
}
