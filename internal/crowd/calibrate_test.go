package crowd

import (
	"math"
	"testing"
)

// TestMajorityErrorEvenWorkers pins the "wrong votes needed" arithmetic
// on an even panel, where a tie (2 of 4) does NOT flip the majority:
// a wrong answer needs 3 or 4 wrong votes, so at d = 0.5 the error is
// C(4,3)/16 + C(4,4)/16 = 5/16 — not 1/2.
func TestMajorityErrorEvenWorkers(t *testing.T) {
	if got, want := MajorityError(0.5, 4), 5.0/16.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("MajorityError(0.5, 4) = %v, want %v", got, want)
	}
	// Because a tie is lenient (not wrong), the even panel needs a 3-of-4
	// supermajority to err: for d < 1/2 it beats the odd panel below it
	// AND the odd panel above it, which needs only 3 of 5.
	for _, d := range []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.49} {
		if m4, m3 := MajorityError(d, 4), MajorityError(d, 3); m4 > m3+1e-12 {
			t.Errorf("d=%v: MajorityError(4)=%v worse than MajorityError(3)=%v", d, m4, m3)
		}
		if m4, m5 := MajorityError(d, 4), MajorityError(d, 5); m4 > m5+1e-12 {
			t.Errorf("d=%v: MajorityError(4)=%v worse than MajorityError(5)=%v", d, m4, m5)
		}
	}
	// Degenerate worker competence: perfect workers never err, coin-flip
	// adversaries (d=1) always do.
	if got := MajorityError(0, 4); got != 0 {
		t.Errorf("MajorityError(0, 4) = %v, want 0", got)
	}
	if got := MajorityError(1, 4); math.Abs(got-1) > 1e-12 {
		t.Errorf("MajorityError(1, 4) = %v, want 1", got)
	}
}

// TestCalibrateInconsistentTargets feeds Calibrate a target pair no
// two-point mixture can reach (5-worker error far below what the
// 3-worker target permits): the fit must not crash or return garbage —
// it reports a clearly nonzero residual and a mixture within bounds.
func TestCalibrateInconsistentTargets(t *testing.T) {
	m, residual := Calibrate(0.5, 0.01)
	if residual <= 1e-4 {
		t.Errorf("residual = %v for unreachable targets, want clearly nonzero", residual)
	}
	if m.Alpha < 0 || m.Alpha > 1 {
		t.Errorf("Alpha = %v out of [0, 1]", m.Alpha)
	}
	if m.DHard < 0.5 || m.DHard > 0.91 {
		t.Errorf("DHard = %v outside the search grid", m.DHard)
	}
	if m.DEasy < 0 || m.DEasy > 0.41 {
		t.Errorf("DEasy = %v outside the search grid", m.DEasy)
	}
	// The fit still minimizes: it can't be worse than the trivial
	// all-easy candidate at the grid floor.
	trivial := Mixture{Alpha: 0, DHard: 0.5, DEasy: 0}
	r3 := trivial.ExpectedError(3) - 0.5
	r5 := trivial.ExpectedError(5) - 0.01
	if residual > r3*r3+r5*r5+1e-12 {
		t.Errorf("residual %v worse than the trivial candidate's %v", residual, r3*r3+r5*r5)
	}
}

// TestExpectedErrorMonotone pins the mixture-level monotonicity that the
// paper's Table 3 narrative rests on: with both difficulties below 1/2,
// adding workers can only help; when the hard mass has d > 1/2 and
// dominates (alpha = 1), adding workers makes the majority wronger.
func TestExpectedErrorMonotone(t *testing.T) {
	workers := []int{1, 3, 5, 7, 9}
	helped := Mixture{Alpha: 0.3, DHard: 0.4, DEasy: 0.05}
	for i := 1; i < len(workers); i++ {
		prev := helped.ExpectedError(workers[i-1])
		cur := helped.ExpectedError(workers[i])
		if cur > prev+1e-12 {
			t.Errorf("d<1/2 mixture: error rose from %v (%dw) to %v (%dw)",
				prev, workers[i-1], cur, workers[i])
		}
	}
	hurt := Mixture{Alpha: 1, DHard: 0.7}
	for i := 1; i < len(workers); i++ {
		prev := hurt.ExpectedError(workers[i-1])
		cur := hurt.ExpectedError(workers[i])
		if cur < prev-1e-12 {
			t.Errorf("d>1/2 mixture: error fell from %v (%dw) to %v (%dw)",
				prev, workers[i-1], cur, workers[i])
		}
	}
}
