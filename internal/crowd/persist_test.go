package crowd

import (
	"bytes"
	"strings"
	"testing"

	"acd/internal/record"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	pairs := adaptivePairs(200)
	truth := func(p record.Pair) bool { return p.Lo%2 == 0 }
	orig := BuildAdaptiveAnswers(pairs, truth, UniformDifficulty(0.3), ThreeWorker(5), 7)

	var buf bytes.Buffer
	if err := SaveAnswers(&buf, orig); err != nil {
		t.Fatalf("SaveAnswers: %v", err)
	}
	got, err := LoadAnswers(&buf)
	if err != nil {
		t.Fatalf("LoadAnswers: %v", err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("loaded %d pairs, want %d", got.Len(), orig.Len())
	}
	// The RNG seed is collection-time state and is not persisted; the
	// replay-relevant setting fields must survive.
	if got.Config().Workers != orig.Config().Workers ||
		got.Config().PairsPerHIT != orig.Config().PairsPerHIT ||
		got.Config().CentsPerHIT != orig.Config().CentsPerHIT {
		t.Errorf("config changed: %+v -> %+v", orig.Config(), got.Config())
	}
	for _, p := range pairs {
		if got.Score(p) != orig.Score(p) {
			t.Errorf("score for %v changed", p)
		}
		if got.VoteCount(p) != orig.VoteCount(p) {
			t.Errorf("votes for %v changed", p)
		}
	}
	if got.ErrorRate() != orig.ErrorRate() {
		t.Errorf("error rate changed: %v -> %v", orig.ErrorRate(), got.ErrorRate())
	}
	if got.TotalVotes() != orig.TotalVotes() {
		t.Errorf("total votes changed")
	}
}

func TestSaveDeterministic(t *testing.T) {
	pairs := adaptivePairs(50)
	truth := func(p record.Pair) bool { return true }
	a := BuildAnswers(pairs, truth, UniformDifficulty(0.2), FiveWorker(9))
	var b1, b2 bytes.Buffer
	if err := SaveAnswers(&b1, a); err != nil {
		t.Fatal(err)
	}
	if err := SaveAnswers(&b2, a); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Errorf("serialization not deterministic")
	}
}

func TestLoadAnswersErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus,header\n",
		"lo,hi,fc,votes,truth,x,20,2\n", // non-numeric workers
		"lo,hi,fc,votes,truth,3,20,2\n1,2,notafloat,3,1\n",
		"lo,hi,fc,votes,truth,3,20,2\nx,2,0.5,3,1\n",
		"lo,hi,fc,votes,truth,3,20,2\n1,x,0.5,3,1\n",
		"lo,hi,fc,votes,truth,3,20,2\n1,2,0.5,x,1\n",
	}
	for i, c := range cases {
		if _, err := LoadAnswers(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: malformed input accepted", i)
		}
	}
}

// TestLoadedAnswersDriveACD: a persisted collection replays through a
// session exactly like the original.
func TestLoadedAnswersReplay(t *testing.T) {
	pairs := adaptivePairs(100)
	truth := func(p record.Pair) bool { return p.Lo < 50 }
	orig := BuildAnswers(pairs, truth, UniformDifficulty(0.1), ThreeWorker(4))
	var buf bytes.Buffer
	if err := SaveAnswers(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAnswers(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := NewSession(orig), NewSession(loaded)
	got1 := s1.Ask(pairs)
	got2 := s2.Ask(pairs)
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("replayed answer %d differs", i)
		}
	}
	if s1.Stats() != s2.Stats() {
		t.Errorf("stats differ: %+v vs %+v", s1.Stats(), s2.Stats())
	}
}
