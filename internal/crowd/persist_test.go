package crowd

import (
	"bytes"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"acd/internal/record"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	pairs := adaptivePairs(200)
	truth := func(p record.Pair) bool { return p.Lo%2 == 0 }
	orig := BuildAdaptiveAnswers(pairs, truth, UniformDifficulty(0.3), ThreeWorker(5), 7)

	var buf bytes.Buffer
	if err := SaveAnswers(&buf, orig); err != nil {
		t.Fatalf("SaveAnswers: %v", err)
	}
	got, err := LoadAnswers(&buf)
	if err != nil {
		t.Fatalf("LoadAnswers: %v", err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("loaded %d pairs, want %d", got.Len(), orig.Len())
	}
	// The RNG seed is collection-time state and is not persisted; the
	// replay-relevant setting fields must survive.
	if got.Config().Workers != orig.Config().Workers ||
		got.Config().PairsPerHIT != orig.Config().PairsPerHIT ||
		got.Config().CentsPerHIT != orig.Config().CentsPerHIT {
		t.Errorf("config changed: %+v -> %+v", orig.Config(), got.Config())
	}
	for _, p := range pairs {
		if got.Score(p) != orig.Score(p) {
			t.Errorf("score for %v changed", p)
		}
		if got.VoteCount(p) != orig.VoteCount(p) {
			t.Errorf("votes for %v changed", p)
		}
	}
	if got.ErrorRate() != orig.ErrorRate() {
		t.Errorf("error rate changed: %v -> %v", orig.ErrorRate(), got.ErrorRate())
	}
	if got.TotalVotes() != orig.TotalVotes() {
		t.Errorf("total votes changed")
	}
}

func TestSaveDeterministic(t *testing.T) {
	pairs := adaptivePairs(50)
	truth := func(p record.Pair) bool { return true }
	a := BuildAnswers(pairs, truth, UniformDifficulty(0.2), FiveWorker(9))
	var b1, b2 bytes.Buffer
	if err := SaveAnswers(&b1, a); err != nil {
		t.Fatal(err)
	}
	if err := SaveAnswers(&b2, a); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Errorf("serialization not deterministic")
	}
}

func TestLoadAnswersErrors(t *testing.T) {
	v2 := "lo,hi,fc,votes,truth,source,3,20,2," + formatVersionV2 + "\n"
	v3 := "lo,hi,fc,votes,truth,source,backend,price,3,20,2," + FormatVersion + "\n"
	cases := []struct {
		name  string
		input string
		want  string // substring the error must contain ("" = any error)
	}{
		{"empty file", "", "truncated"},
		{"bogus header", "bogus,header\n", "unrecognized"},
		{"truncated header", "lo,hi,fc\n", "truncated"},
		{"truncated v1 header", "lo,hi,fc,votes,truth,3,20\n", "truncated"},
		{"non-numeric workers v1", "lo,hi,fc,votes,truth,x,20,2\n", "workers"},
		{"non-numeric workers v2", "lo,hi,fc,votes,truth,source,x,20,2," + formatVersionV2 + "\n", "workers"},
		{"non-numeric workers v3", "lo,hi,fc,votes,truth,source,backend,price,x,20,2," + FormatVersion + "\n", "workers"},
		{"future version", "lo,hi,fc,votes,truth,source,3,20,2,acd-answers-v99\n", "unsupported"},
		{"future version v3 shape", "lo,hi,fc,votes,truth,source,backend,price,3,20,2,acd-answers-v99\n", "unsupported"},
		{"v3 tag on v2 shape", "lo,hi,fc,votes,truth,source,3,20,2," + FormatVersion + "\n", "unsupported"},
		{"garbage version field", "lo,hi,fc,votes,truth,source,3,20,2,not-a-version\n", "version"},
		{"bad fc v1", "lo,hi,fc,votes,truth,3,20,2\n1,2,notafloat,3,1\n", "bad fc"},
		{"bad lo", "lo,hi,fc,votes,truth,3,20,2\nx,2,0.5,3,1\n", "bad lo"},
		{"bad hi", "lo,hi,fc,votes,truth,3,20,2\n1,x,0.5,3,1\n", "bad hi"},
		{"bad votes", "lo,hi,fc,votes,truth,3,20,2\n1,2,0.5,x,1\n", "bad votes"},
		{"negative votes", v2 + "1,2,0.5,-3,1,\n", "negative votes"},
		{"nan fc", v2 + "1,2,NaN,3,1,\n", "non-finite"},
		{"inf fc", v2 + "1,2,+Inf,3,1,\n", "non-finite"},
		{"negative id", v2 + "-1,2,0.5,3,1,\n", "negative record id"},
		{"self pair", v2 + "2,2,0.5,3,1,\n", "non-canonical"},
		{"swapped pair", v2 + "3,2,0.5,3,1,\n", "non-canonical"},
		{"duplicate pair", v2 + "1,2,0.5,3,1,\n1,2,0.7,3,1,\n", "duplicate pair"},
		{"bad truth flag", v2 + "1,2,0.5,3,2,\n", "truth flag"},
		{"short row v2", v2 + "1,2,0.5,3,1\n", "fields"},
		{"short row v3", v3 + "1,2,0.5,3,1,\n", "fields"},
		{"long row v1", "lo,hi,fc,votes,truth,3,20,2\n1,2,0.5,3,1,crowd\n", "fields"},
		{"bad price", v3 + "1,2,0.5,3,1,,fast,notaprice\n", "bad price"},
		{"negative price", v3 + "1,2,0.5,3,1,,fast,-0.1\n", "bad price"},
		{"nan price", v3 + "1,2,0.5,3,1,,fast,NaN\n", "bad price"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := LoadAnswers(strings.NewReader(c.input))
			if err == nil {
				t.Fatalf("malformed input accepted:\n%s", c.input)
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestLoadAnswersV1 pins backward compatibility: the unversioned v1
// format (no source column) still loads, with provenance defaulting to
// DefaultSource. The fixture is a file written by the v1 SaveAnswers.
func TestLoadAnswersV1(t *testing.T) {
	f, err := os.Open("testdata/answers_v1.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, err := LoadAnswers(f)
	if err != nil {
		t.Fatalf("LoadAnswers(v1 fixture): %v", err)
	}
	if a.Len() != 5 {
		t.Fatalf("loaded %d pairs, want 5", a.Len())
	}
	if cfg := a.Config(); cfg.Workers != 3 || cfg.PairsPerHIT != 20 || cfg.CentsPerHIT != 2 {
		t.Errorf("config = %+v, want 3-worker setting", cfg)
	}
	p := record.MakePair(0, 2)
	if got := a.Score(p); got != 2.0/3.0 {
		t.Errorf("Score(%v) = %v, want 2/3", p, got)
	}
	if got := a.Source(p); got != DefaultSource {
		t.Errorf("Source(%v) = %q, want %q", p, got, DefaultSource)
	}
}

// TestSaveLoadSourceProvenance checks the v2 source column round-trips,
// with DefaultSource omitted from the serialized form.
func TestSaveLoadSourceProvenance(t *testing.T) {
	a := FixedAnswers(map[record.Pair]float64{
		{Lo: 0, Hi: 1}: 1,
		{Lo: 0, Hi: 2}: 0.2,
		{Lo: 1, Hi: 3}: 0.8,
	}, ThreeWorker(1))
	a.SetSource(record.Pair{Lo: 0, Hi: 2}, "machine")
	a.SetSource(record.Pair{Lo: 1, Hi: 3}, "client")

	var buf bytes.Buffer
	if err := SaveAnswers(&buf, a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), FormatVersion) {
		t.Errorf("serialized form missing version tag %q:\n%s", FormatVersion, buf.String())
	}
	got, err := LoadAnswers(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for p, want := range map[record.Pair]string{
		{Lo: 0, Hi: 1}: DefaultSource,
		{Lo: 0, Hi: 2}: "machine",
		{Lo: 1, Hi: 3}: "client",
	} {
		if s := got.Source(p); s != want {
			t.Errorf("Source(%v) = %q, want %q", p, s, want)
		}
	}
	// Resetting to the default drops the explicit entry again.
	got.SetSource(record.Pair{Lo: 0, Hi: 2}, "")
	if s := got.Source(record.Pair{Lo: 0, Hi: 2}); s != DefaultSource {
		t.Errorf("after reset, Source = %q, want %q", s, DefaultSource)
	}
}

// TestLoadAnswersV2 pins backward compatibility for the previous
// versioned format: a v2 file (source column, no charge columns) still
// loads, with every pair's charge defaulting to ("", 0).
func TestLoadAnswersV2(t *testing.T) {
	in := "lo,hi,fc,votes,truth,source,3,20,2," + formatVersionV2 + "\n" +
		"0,2,0.6666666666666666,3,1,\n" +
		"1,3,0.2,5,0,machine\n"
	a, err := LoadAnswers(strings.NewReader(in))
	if err != nil {
		t.Fatalf("LoadAnswers(v2): %v", err)
	}
	if a.Len() != 2 {
		t.Fatalf("loaded %d pairs, want 2", a.Len())
	}
	p := record.MakePair(1, 3)
	if got := a.Source(p); got != "machine" {
		t.Errorf("Source(%v) = %q, want machine", p, got)
	}
	if backend, cents := a.Charge(p); backend != "" || cents != 0 {
		t.Errorf("Charge(%v) = (%q, %v), want zero charge", p, backend, cents)
	}
}

// TestSaveLoadChargeProvenance checks the v3 backend and price columns
// round-trip, with the zero charge omitted from the serialized form.
func TestSaveLoadChargeProvenance(t *testing.T) {
	a := FixedAnswers(map[record.Pair]float64{
		{Lo: 0, Hi: 1}: 1,
		{Lo: 0, Hi: 2}: 0.2,
		{Lo: 1, Hi: 3}: 0.8,
	}, ThreeWorker(1))
	a.SetCharge(record.Pair{Lo: 0, Hi: 2}, "fast", 0.05)
	a.SetCharge(record.Pair{Lo: 1, Hi: 3}, "careful", 0.6)

	var buf bytes.Buffer
	if err := SaveAnswers(&buf, a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), FormatVersion) {
		t.Errorf("serialized form missing version tag %q:\n%s", FormatVersion, buf.String())
	}
	got, err := LoadAnswers(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for p, want := range map[record.Pair]struct {
		backend string
		cents   float64
	}{
		{Lo: 0, Hi: 1}: {"", 0},
		{Lo: 0, Hi: 2}: {"fast", 0.05},
		{Lo: 1, Hi: 3}: {"careful", 0.6},
	} {
		if backend, cents := got.Charge(p); backend != want.backend || cents != want.cents {
			t.Errorf("Charge(%v) = (%q, %v), want (%q, %v)", p, backend, cents, want.backend, want.cents)
		}
	}
	// Resetting to the zero charge drops the explicit entry again.
	got.SetCharge(record.Pair{Lo: 0, Hi: 2}, "", 0)
	if backend, cents := got.Charge(record.Pair{Lo: 0, Hi: 2}); backend != "" || cents != 0 {
		t.Errorf("after reset, Charge = (%q, %v), want zero", backend, cents)
	}
}

// TestSaveLoadProperty is a seeded round-trip property test: random
// answer sets (random pairs, scores, truth, vote escalation, sources)
// survive Save -> Load -> Save with identical bytes and identical
// per-pair state.
func TestSaveLoadProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		scores := make(map[record.Pair]float64, n)
		for len(scores) < n {
			lo := record.ID(rng.Intn(200))
			hi := record.ID(rng.Intn(200))
			if lo == hi {
				continue
			}
			// Quantized scores so the g-format float round-trips exactly.
			scores[record.MakePair(lo, hi)] = float64(rng.Intn(16)) / 15
		}
		a := FixedAnswers(scores, Config{Workers: 3 + 2*rng.Intn(2), PairsPerHIT: 10 + rng.Intn(20), CentsPerHIT: 1 + rng.Intn(4)})
		for p := range scores {
			switch rng.Intn(3) {
			case 0:
				a.SetSource(p, "machine")
			case 1:
				a.SetSource(p, "client")
			}
			if rng.Intn(2) == 0 {
				// Quantized prices so the g-format float round-trips exactly.
				a.SetCharge(p, "b"+strconv.Itoa(rng.Intn(3)), float64(rng.Intn(8))/4)
			}
		}

		var b1 bytes.Buffer
		if err := SaveAnswers(&b1, a); err != nil {
			t.Fatalf("seed %d: save: %v", seed, err)
		}
		loaded, err := LoadAnswers(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: load: %v", seed, err)
		}
		var b2 bytes.Buffer
		if err := SaveAnswers(&b2, loaded); err != nil {
			t.Fatalf("seed %d: re-save: %v", seed, err)
		}
		if b1.String() != b2.String() {
			t.Fatalf("seed %d: save/load/save not a fixed point:\n%s\nvs\n%s", seed, b1.String(), b2.String())
		}
		if loaded.Len() != a.Len() || loaded.Config() != a.Config() {
			t.Fatalf("seed %d: shape changed: %d/%+v -> %d/%+v", seed, a.Len(), a.Config(), loaded.Len(), loaded.Config())
		}
		for p := range scores {
			if loaded.fc[p] != a.fc[p] || loaded.truth[p] != a.truth[p] ||
				loaded.VoteCount(p) != a.VoteCount(p) || loaded.Source(p) != a.Source(p) {
				t.Errorf("seed %d: pair %v changed across round trip", seed, p)
			}
			lb, lc := loaded.Charge(p)
			ab, ac := a.Charge(p)
			if lb != ab || lc != ac {
				t.Errorf("seed %d: charge for %v changed across round trip: (%q,%v) -> (%q,%v)", seed, p, ab, ac, lb, lc)
			}
		}
	}
}

// TestLoadedAnswersDriveACD: a persisted collection replays through a
// session exactly like the original.
func TestLoadedAnswersReplay(t *testing.T) {
	pairs := adaptivePairs(100)
	truth := func(p record.Pair) bool { return p.Lo < 50 }
	orig := BuildAnswers(pairs, truth, UniformDifficulty(0.1), ThreeWorker(4))
	var buf bytes.Buffer
	if err := SaveAnswers(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAnswers(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := NewSession(orig), NewSession(loaded)
	got1 := s1.Ask(pairs)
	got2 := s2.Ask(pairs)
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("replayed answer %d differs", i)
		}
	}
	if s1.Stats() != s2.Stats() {
		t.Errorf("stats differ: %+v vs %+v", s1.Stats(), s2.Stats())
	}
}
