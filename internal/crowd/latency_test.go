package crowd

import (
	"math/rand"
	"testing"
	"time"
)

func TestIterationTime(t *testing.T) {
	m := LatencyModel{MeanHIT: time.Minute, Spread: 0.5, Seed: 1}
	rng := rand.New(rand.NewSource(1))
	if got := m.IterationTime(rng, 0, 3); got != 0 {
		t.Errorf("zero HITs took %v", got)
	}
	one := m.IterationTime(rng, 1, 1)
	if one <= 0 {
		t.Errorf("single HIT took %v", one)
	}
	// More assignments can only push the max completion later (in
	// expectation); check a wide gap deterministically over many draws.
	var few, many time.Duration
	for i := 0; i < 50; i++ {
		few += m.IterationTime(rng, 1, 1)
		many += m.IterationTime(rng, 100, 5)
	}
	if many <= few {
		t.Errorf("500-assignment iterations (%v) not slower than single (%v)", many, few)
	}
}

func TestIterationTimeNoSpread(t *testing.T) {
	m := LatencyModel{MeanHIT: time.Minute, Spread: -1} // negative: no jitter path
	rng := rand.New(rand.NewSource(2))
	if got := m.IterationTime(rng, 5, 3); got != time.Minute {
		t.Errorf("spread-free iteration = %v, want 1m", got)
	}
}

func TestTotalTimeScalesWithIterations(t *testing.T) {
	m := LatencyModel{MeanHIT: 5 * time.Minute, Spread: 0.5, Seed: 3}
	// Same number of HITs, very different iteration counts: the
	// sequential run must take far longer — the paper's core motivation
	// for PC-Pivot.
	parallel := m.TotalTime(Stats{Pairs: 2000, Iterations: 10, HITs: 100}, 3)
	sequential := m.TotalTime(Stats{Pairs: 2000, Iterations: 100, HITs: 100}, 3)
	if sequential < 5*parallel {
		t.Errorf("sequential %v not ≫ parallel %v", sequential, parallel)
	}
	if m.TotalTime(Stats{}, 3) != 0 {
		t.Errorf("empty run took time")
	}
}

func TestTotalTimeDeterministic(t *testing.T) {
	m := LatencyModel{Seed: 9}
	st := Stats{Pairs: 500, Iterations: 7, HITs: 25}
	if m.TotalTime(st, 3) != m.TotalTime(st, 3) {
		t.Errorf("latency simulation not deterministic")
	}
}

// TestLatencyDefaults exercises the zero-value model.
func TestLatencyDefaults(t *testing.T) {
	var m LatencyModel
	got := m.TotalTime(Stats{Pairs: 10, Iterations: 1, HITs: 1}, 1)
	if got < time.Minute || got > time.Hour {
		t.Errorf("default single-HIT time %v implausible", got)
	}
}
