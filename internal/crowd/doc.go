// Package crowd simulates the Amazon Mechanical Turk substrate of the
// paper's experiments (Section 6.1, "AMT Setting").
//
// The paper never queries AMT live during algorithm runs: all candidate
// pairs are posted once, the answers are recorded in a local file F, and
// every algorithm replays answers from F so that all methods see
// identical crowd output. This package reproduces that design. An
// AnswerSet plays the role of F: it holds, for every candidate pair, the
// crowd score f_c (the fraction of workers marking the pair a duplicate)
// drawn once from a seeded worker-error model. A Session wraps an
// AnswerSet for one algorithm run and does the accounting the evaluation
// reports: distinct pairs crowdsourced, crowd iterations (batches of
// HITs), HITs, and monetary cost.
//
// Worker errors follow a per-pair difficulty d: each worker independently
// answers the pair incorrectly with probability d. Majority votes over 3
// or 5 workers then exhibit exactly the paper's observed behaviour —
// easy pairs are almost always right, while pairs with d > 0.5 are
// *systematically* wrong no matter how many workers vote (which is why
// Table 3's Paper dataset barely improves from 3 to 5 workers). See
// calibrate.go for how difficulties are fit to Table 3's error rates.
//
// The Session is also the accounting chokepoint of the observability
// layer: it is the only component that consults the answer oracle, so
// on an instrumented run crowd/questions_answered must equal
// crowd/oracle_invocations exactly (metrics.go documents the crowd/*
// names; TestMetricsMatchOracleInvocations in internal/core asserts the
// invariant end to end). Pool, Qualification and LatencyModel extend
// the simulation with AMT-style worker pools, admission rules, and
// wall-clock latency estimates.
//
// The fault-tolerant execution layer (faulttol.go) hardens any Source
// against a misbehaving crowd backend: ReliableSource adds per-question
// deadlines, bounded retries with jittered backoff, hedged re-issue of
// stragglers, and graceful degradation to the machine probability when
// the retry budget is exhausted. Its deterministic test substrate is
// ChaosSource (chaos.go), a seeded fault injector (drops, transient
// errors, latency spikes, duplicated deliveries, adversarial bursts)
// that runs entirely on a VirtualClock (clock.go) — simulated latency
// is arithmetic, never sleeps — so chaos campaigns replay exactly. See
// DESIGN.md section 5d for the state machine and the determinism
// argument.
package crowd
