package crowd

import (
	"math"
	"math/rand"
	"time"
)

// LatencyModel converts a run's crowd accounting into simulated
// wall-clock time. The paper motivates its parallel algorithms with
// processing time ("the running time of Crowd-Pivot mainly depends on
// the number of iterations", Section 4.2) but measures iterations as the
// proxy; this model closes the loop: each crowd iteration posts its HITs
// concurrently and completes when the slowest HIT's last assignment
// comes back, so total time ≈ Σ per-iteration max completion times —
// linear in iterations, nearly independent of batch width.
type LatencyModel struct {
	// MeanHIT is the mean time for one worker to pick up and complete
	// one HIT. AMT studies place this in minutes; default 5 minutes.
	MeanHIT time.Duration
	// Spread is the coefficient of variation of completion times
	// (log-normal-ish long tail). Default 0.5.
	Spread float64
	// Seed drives the simulated completion draws.
	Seed int64
}

func (m LatencyModel) withDefaults() LatencyModel {
	if m.MeanHIT == 0 {
		m.MeanHIT = 5 * time.Minute
	}
	if m.Spread == 0 {
		m.Spread = 0.5
	}
	return m
}

// IterationTime simulates the wall-clock duration of one crowd
// iteration that posts `hits` HITs, each completed by `workers`
// assignments: the iteration ends when the slowest assignment finishes.
func (m LatencyModel) IterationTime(rng *rand.Rand, hits, workers int) time.Duration {
	m = m.withDefaults()
	if hits <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = 1
	}
	var worst time.Duration
	for h := 0; h < hits*workers; h++ {
		// Log-normal-ish: exp(N(0, spread)) keeps a long right tail.
		factor := 1.0
		if m.Spread > 0 {
			// Clamp extreme draws so one outlier can't dominate.
			x := m.Spread * rng.NormFloat64()
			if x > 3 {
				x = 3
			}
			if x < -3 {
				x = -3
			}
			factor = math.Exp(x)
		}
		d := time.Duration(float64(m.MeanHIT) * factor)
		if d > worst {
			worst = d
		}
	}
	return worst
}

// TotalTime simulates the end-to-end crowd time of a run: iterations
// happen sequentially (each waits for the previous batch's answers), so
// the total is the sum of per-iteration times. HITs are split evenly
// across iterations — the accounting in Stats does not retain the
// per-iteration breakdown, and an even split matches the batched
// algorithms' behaviour closely.
func (m LatencyModel) TotalTime(stats Stats, workers int) time.Duration {
	m = m.withDefaults()
	if stats.Iterations == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(m.Seed))
	perIter := stats.HITs / stats.Iterations
	extra := stats.HITs % stats.Iterations
	var total time.Duration
	for i := 0; i < stats.Iterations; i++ {
		hits := perIter
		if i < extra {
			hits++
		}
		if hits == 0 {
			hits = 1
		}
		total += m.IterationTime(rng, hits, workers)
	}
	return total
}
