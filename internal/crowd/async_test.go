package crowd

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"acd/internal/record"
)

func TestAsyncSourceOrderPreserved(t *testing.T) {
	src := AsyncSource{
		Fn:          func(p record.Pair) float64 { return float64(p.Lo) / 1000 },
		Concurrency: 4,
		Setting:     ThreeWorker(0),
	}
	pairs := adaptivePairs(100)
	scores := src.ScoreBatch(pairs)
	for i, p := range pairs {
		if scores[i] != float64(p.Lo)/1000 {
			t.Fatalf("score %d out of order", i)
		}
	}
}

func TestAsyncSourceBoundedConcurrency(t *testing.T) {
	var inFlight, peak int64
	src := AsyncSource{
		Fn: func(p record.Pair) float64 {
			cur := atomic.AddInt64(&inFlight, 1)
			for {
				old := atomic.LoadInt64(&peak)
				if cur <= old || atomic.CompareAndSwapInt64(&peak, old, cur) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			atomic.AddInt64(&inFlight, -1)
			return 1
		},
		Concurrency: 3,
		Setting:     ThreeWorker(0),
	}
	src.ScoreBatch(adaptivePairs(30))
	if p := atomic.LoadInt64(&peak); p > 3 {
		t.Errorf("peak concurrency %d exceeds limit 3", p)
	}
	if p := atomic.LoadInt64(&peak); p < 2 {
		t.Errorf("peak concurrency %d suggests no parallelism", p)
	}
}

func TestAsyncSourceDefaultConcurrency(t *testing.T) {
	src := AsyncSource{Fn: func(p record.Pair) float64 { return 0.5 }}
	scores := src.ScoreBatch(adaptivePairs(20))
	if len(scores) != 20 {
		t.Fatalf("got %d scores", len(scores))
	}
}

// TestSessionUsesBatchSource: a session over an AsyncSource resolves an
// iteration with one concurrent fan-out, and accounting matches the
// non-batched path.
func TestSessionUsesBatchSource(t *testing.T) {
	var calls int64
	src := AsyncSource{
		Fn: func(p record.Pair) float64 {
			atomic.AddInt64(&calls, 1)
			if p.Lo%2 == 0 {
				return 1
			}
			return 0
		},
		Concurrency: 8,
		Setting:     ThreeWorker(0),
	}
	s := NewSession(src)
	pairs := adaptivePairs(45)
	got := s.Ask(pairs)
	for i, p := range pairs {
		want := 0.0
		if p.Lo%2 == 0 {
			want = 1
		}
		if got[i] != want {
			t.Fatalf("answer %d = %v, want %v", i, got[i], want)
		}
	}
	if atomic.LoadInt64(&calls) != 45 {
		t.Errorf("crowd function called %d times, want 45", calls)
	}
	st := s.Stats()
	if st.Pairs != 45 || st.Iterations != 1 || st.HITs != 3 {
		t.Errorf("stats = %+v", st)
	}
	// Re-asking costs nothing and calls no one.
	s.Ask(pairs[:10])
	if atomic.LoadInt64(&calls) != 45 {
		t.Errorf("re-ask invoked the crowd")
	}
}

// TestAsyncSourceScoreBatchCtxCancel: cancelling the batch stops the
// feed, returns the context's error, and leaks no pool goroutines.
func TestAsyncSourceScoreBatchCtxCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var calls int64
	src := AsyncSource{
		Fn: func(p record.Pair) float64 {
			if atomic.AddInt64(&calls, 1) == 10 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			return 1
		},
		Concurrency: 4,
		Setting:     ThreeWorker(0),
	}
	out, err := src.ScoreBatchCtx(ctx, adaptivePairs(500))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Errorf("cancelled batch returned scores")
	}
	// Far fewer calls than the batch size: the feed stopped.
	if c := atomic.LoadInt64(&calls); c > 50 {
		t.Errorf("%d calls after cancellation at 10", c)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("pool goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
