package crowd

import (
	"sync"

	"acd/internal/record"
)

// BatchSource is an optional extension of Source for crowds that can
// answer many pairs concurrently. Session.Ask resolves each batch
// through ScoreBatch when available, so a live platform's per-answer
// latency is paid once per crowd iteration instead of once per pair —
// which is the entire point of the paper's batched algorithms.
type BatchSource interface {
	Source
	// ScoreBatch returns f_c for each pair, in order.
	ScoreBatch(pairs []record.Pair) []float64
}

// AsyncSource adapts a blocking per-pair answer function (e.g. an HTTP
// call to a crowdsourcing platform that waits for worker consensus) into
// a BatchSource with bounded fan-out.
type AsyncSource struct {
	// Fn answers one pair; it may block for however long the crowd
	// takes. It must be safe for concurrent use.
	Fn func(record.Pair) float64
	// Concurrency bounds in-flight calls to Fn; values < 1 mean 8.
	Concurrency int
	// Setting describes the collection for accounting.
	Setting Config
}

// Score implements Source.
func (s AsyncSource) Score(p record.Pair) float64 { return s.Fn(p) }

// Config implements Source.
func (s AsyncSource) Config() Config { return s.Setting }

// ScoreBatch implements BatchSource: it answers all pairs with at most
// Concurrency calls in flight and returns scores in input order.
func (s AsyncSource) ScoreBatch(pairs []record.Pair) []float64 {
	limit := s.Concurrency
	if limit < 1 {
		limit = 8
	}
	out := make([]float64, len(pairs))
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for i, p := range pairs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, p record.Pair) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = s.Fn(p)
		}(i, p)
	}
	wg.Wait()
	return out
}
