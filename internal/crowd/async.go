package crowd

import (
	"context"
	"sync"

	"acd/internal/record"
)

// BatchSource is an optional extension of Source for crowds that can
// answer many pairs concurrently. Session.Ask resolves each batch
// through ScoreBatch when available, so a live platform's per-answer
// latency is paid once per crowd iteration instead of once per pair —
// which is the entire point of the paper's batched algorithms.
type BatchSource interface {
	Source
	// ScoreBatch returns f_c for each pair, in order.
	ScoreBatch(pairs []record.Pair) []float64
}

// AsyncSource adapts a blocking per-pair answer function (e.g. an HTTP
// call to a crowdsourcing platform that waits for worker consensus) into
// a BatchSource with bounded fan-out.
type AsyncSource struct {
	// Fn answers one pair; it may block for however long the crowd
	// takes. It must be safe for concurrent use.
	Fn func(record.Pair) float64
	// Concurrency bounds in-flight calls to Fn; values < 1 mean 8.
	Concurrency int
	// Setting describes the collection for accounting.
	Setting Config
}

// Score implements Source.
func (s AsyncSource) Score(p record.Pair) float64 { return s.Fn(p) }

// Config implements Source.
func (s AsyncSource) Config() Config { return s.Setting }

// ScoreBatch implements BatchSource: it answers all pairs with at most
// Concurrency calls in flight and returns scores in input order.
func (s AsyncSource) ScoreBatch(pairs []record.Pair) []float64 {
	out, _ := s.ScoreBatchCtx(context.Background(), pairs)
	return out
}

// ScoreBatchCtx implements ContextBatchSource: a fixed pool of
// Concurrency workers drains the batch (rather than one goroutine per
// pair), preserving input order in the output. When ctx is cancelled
// the feed stops, in-flight calls finish, the pool exits without
// leaking goroutines, and ctx's error is returned.
func (s AsyncSource) ScoreBatchCtx(ctx context.Context, pairs []record.Pair) ([]float64, error) {
	limit := s.Concurrency
	if limit < 1 {
		limit = 8
	}
	return scorePool(ctx, pairs, limit, s.Fn)
}

// scorePool fans a batch out over a fixed pool of `limit` workers
// draining an index channel, writing each answer to its input slot so
// output order matches input order. Shared by AsyncSource and the live
// path of ReliableSource. On cancellation the remaining indices are
// never fed, so workers drain what's left of the channel and exit; the
// partial result is discarded.
func scorePool(ctx context.Context, pairs []record.Pair, limit int, fn func(record.Pair) float64) ([]float64, error) {
	out := make([]float64, len(pairs))
	if len(pairs) == 0 {
		return out, ctx.Err()
	}
	if limit > len(pairs) {
		limit = len(pairs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(limit)
	for w := 0; w < limit; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = fn(pairs[i])
			}
		}()
	}
	done := ctx.Done()
feed:
	for i := range pairs {
		select {
		case idx <- i:
		case <-done:
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
