package crowd

import (
	"context"
	"fmt"
	"math/rand"

	"acd/internal/obs"
	"acd/internal/record"
)

// Config describes an AMT collection setting.
type Config struct {
	// Workers is the number of workers voting on each pair (3 or 5 in
	// the paper).
	Workers int
	// PairsPerHIT is how many record pairs are packed into a single HIT
	// (20 under the 3-worker setting, 10 under the 5-worker setting).
	PairsPerHIT int
	// CentsPerHIT is the reward per completed HIT (2 in the paper).
	CentsPerHIT int
	// Seed makes the simulated workers deterministic.
	Seed int64
}

// ThreeWorker returns the paper's 3-worker AMT setting.
func ThreeWorker(seed int64) Config {
	return Config{Workers: 3, PairsPerHIT: 20, CentsPerHIT: 2, Seed: seed}
}

// FiveWorker returns the paper's more stringent 5-worker setting.
func FiveWorker(seed int64) Config {
	return Config{Workers: 5, PairsPerHIT: 10, CentsPerHIT: 2, Seed: seed}
}

// AnswerSet is the simulated equivalent of the paper's answer file F: a
// fixed crowd score f_c for every candidate pair, drawn once.
type AnswerSet struct {
	fc      map[record.Pair]float64
	truth   map[record.Pair]bool
	votes   map[record.Pair]int     // per-pair vote counts; nil = config.Workers
	source  map[record.Pair]string  // per-pair provenance; nil = DefaultSource
	backend map[record.Pair]string  // per-pair marketplace backend; nil = none
	price   map[record.Pair]float64 // per-pair price paid in cents; nil = 0
	config  Config
	rec     *obs.Recorder
}

// DefaultSource is the provenance recorded for answers that never had an
// explicit one set: an ordinary crowd collection. Persisted answer files
// omit-default to it, which keeps v1 files (no source column) loadable.
const DefaultSource = "crowd"

// SetSource records where a pair's answer came from ("crowd", "machine",
// "client", ...). The journal of the incremental engine persists this
// provenance so a replayed answer keeps its origin across restarts.
// Setting the empty string resets the pair to DefaultSource.
func (a *AnswerSet) SetSource(p record.Pair, src string) {
	if src == "" || src == DefaultSource {
		if a.source != nil {
			delete(a.source, p)
		}
		return
	}
	if a.source == nil {
		a.source = make(map[record.Pair]string)
	}
	a.source[p] = src
}

// Source returns the recorded provenance of a pair's answer,
// DefaultSource when none was ever set.
func (a *AnswerSet) Source(p record.Pair) string {
	if a.source != nil {
		if s, ok := a.source[p]; ok {
			return s
		}
	}
	return DefaultSource
}

// SetCharge records marketplace provenance for a pair's answer: the id
// of the backend that sold it and the price paid in cents (fractional —
// a pair's share of its HIT's reward). The zero charge (empty backend,
// zero cents) resets the pair to unpriced, dropping it from the
// serialized form; answer files persist charges as the v3 backend and
// price columns.
func (a *AnswerSet) SetCharge(p record.Pair, backend string, cents float64) {
	if backend == "" && cents == 0 {
		if a.backend != nil {
			delete(a.backend, p)
		}
		if a.price != nil {
			delete(a.price, p)
		}
		return
	}
	if a.backend == nil {
		a.backend = make(map[record.Pair]string)
		a.price = make(map[record.Pair]float64)
	}
	a.backend[p] = backend
	a.price[p] = cents
}

// Charge returns the recorded marketplace provenance of a pair's answer:
// the backend id and the cents paid, or ("", 0) for a pair that never
// went through a marketplace.
func (a *AnswerSet) Charge(p record.Pair) (backend string, cents float64) {
	if a.backend == nil {
		return "", 0
	}
	return a.backend[p], a.price[p]
}

// BuildAnswers simulates the one-time posting of all candidate pairs to
// the crowd. truth reports ground-truth duplicates; difficulty gives each
// pair's per-worker error probability. Each pair's vote is drawn from an
// independent RNG keyed by (seed, pair), so answers do not depend on the
// iteration order of pairs.
func BuildAnswers(pairs []record.Pair, truth func(record.Pair) bool, difficulty func(record.Pair) float64, cfg Config) *AnswerSet {
	if cfg.Workers <= 0 || cfg.Workers%2 == 0 {
		panic(fmt.Sprintf("crowd: Workers must be odd and positive, got %d", cfg.Workers))
	}
	a := &AnswerSet{
		fc:     make(map[record.Pair]float64, len(pairs)),
		truth:  make(map[record.Pair]bool, len(pairs)),
		config: cfg,
	}
	for _, p := range pairs {
		isDup := truth(p)
		d := difficulty(p)
		rng := rand.New(rand.NewSource(pairSeed(cfg.Seed, p)))
		yes := 0
		for w := 0; w < cfg.Workers; w++ {
			correct := rng.Float64() >= d
			if correct == isDup {
				yes++
			}
		}
		a.fc[p] = float64(yes) / float64(cfg.Workers)
		a.truth[p] = isDup
	}
	return a
}

// FixedAnswers builds an answer set with prescribed crowd scores, used by
// tests replaying the paper's worked examples and by ablations that need
// exact f_c values. Ground truth for ErrorRate purposes is taken as
// fc > 0.5.
func FixedAnswers(scores map[record.Pair]float64, cfg Config) *AnswerSet {
	if cfg.Workers <= 0 {
		cfg = Config{Workers: 3, PairsPerHIT: 20, CentsPerHIT: 2}
	}
	a := &AnswerSet{
		fc:     make(map[record.Pair]float64, len(scores)),
		truth:  make(map[record.Pair]bool, len(scores)),
		config: cfg,
	}
	for p, fc := range scores {
		a.fc[p] = fc
		a.truth[p] = fc > 0.5
	}
	return a
}

// pairSeed derives a deterministic per-pair RNG seed.
func pairSeed(seed int64, p record.Pair) int64 {
	h := uint64(seed)*0x9e3779b97f4a7c15 + uint64(p.Lo)*0xbf58476d1ce4e5b9 + uint64(p.Hi)*0x94d049bb133111eb
	h ^= h >> 31
	h *= 0xd6e8feb86659fd93
	h ^= h >> 29
	return int64(h & 0x7fffffffffffffff)
}

// SetRecorder attaches a metrics recorder: every Score call — the oracle
// invocations of the simulated crowd — increments MetricOracleInvocations
// on it. Sessions created over this answer set inherit the recorder (see
// NewSession), so one SetRecorder call instruments a whole run. Must be
// called before the answer set is shared across goroutines.
func (a *AnswerSet) SetRecorder(rec *obs.Recorder) { a.rec = rec }

// Recorder implements RecorderCarrier.
func (a *AnswerSet) Recorder() *obs.Recorder { return a.rec }

// Score returns the crowd score f_c for a pair. Asking about a pair
// outside the candidate set panics: the algorithms only ever issue
// candidate pairs, so anything else is a bug.
func (a *AnswerSet) Score(p record.Pair) float64 {
	fc, ok := a.fc[p]
	if !ok {
		panic(fmt.Sprintf("crowd: pair %v was never posted (not a candidate)", p))
	}
	a.rec.Count(MetricOracleInvocations, 1)
	return fc
}

// ScoreChecked implements CheckedSource: it is Score without the panic,
// for the fault-tolerant path. Asking about a pair outside the candidate
// set returns ErrNotCandidate (and does not count an oracle invocation);
// the algorithms only ever issue candidates, so ReliableSource turns the
// error into a fallback instead of crashing the run.
func (a *AnswerSet) ScoreChecked(p record.Pair) (float64, error) {
	fc, ok := a.fc[p]
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrNotCandidate, p)
	}
	a.rec.Count(MetricOracleInvocations, 1)
	return fc, nil
}

// Has reports whether p is in the answer set.
func (a *AnswerSet) Has(p record.Pair) bool {
	_, ok := a.fc[p]
	return ok
}

// Len returns the number of answered pairs.
func (a *AnswerSet) Len() int { return len(a.fc) }

// Config returns the collection setting the answers were drawn under.
func (a *AnswerSet) Config() Config { return a.config }

// ErrorRate returns the fraction of pairs whose majority-vote answer
// (f_c > 0.5) disagrees with ground truth — the "crowd error rate"
// columns of Table 3.
func (a *AnswerSet) ErrorRate() float64 {
	if len(a.fc) == 0 {
		return 0
	}
	wrong := 0
	for p, fc := range a.fc {
		if (fc > 0.5) != a.truth[p] {
			wrong++
		}
	}
	return float64(wrong) / float64(len(a.fc))
}

// Stats summarizes the crowdsourcing overhead of one algorithm run, the
// three cost axes reported in Section 6: pairs crowdsourced (Figure 7),
// crowd iterations (Figures 5, 8), and, additionally, HITs and cents.
type Stats struct {
	// Pairs is the number of distinct record pairs issued to the crowd.
	Pairs int
	// Iterations is the number of batches (rounds of HITs posted and
	// waited on).
	Iterations int
	// HITs is the number of HITs, packing PairsPerHIT pairs per HIT
	// within each batch.
	HITs int
	// Cents is HITs × CentsPerHIT.
	Cents int
	// Votes is the total number of worker votes collected, when the
	// source tracks them (the VoteCounter interface); with fixed
	// allocation it equals Pairs × Workers.
	Votes int
}

// VoteCounter is implemented by sources that know how many worker votes
// each pair consumed (the adaptive allocation of BuildAdaptiveAnswers).
type VoteCounter interface {
	VoteCount(p record.Pair) int
}

// Source is anything that can produce a crowd score for a candidate
// pair: the replayed AnswerSet used throughout the experiments, a live
// crowdsourcing-platform adapter, or a test double. Score may block (a
// live crowd takes minutes); Config describes the collection setting for
// HIT and cost accounting.
type Source interface {
	// Score returns f_c for a candidate pair. Implementations may panic
	// on pairs outside the candidate set; algorithms only issue
	// candidates.
	Score(p record.Pair) float64
	// Config returns the collection setting (worker count, HIT packing,
	// reward).
	Config() Config
}

// Biller is implemented by sources that do their own HIT and cost
// accounting — the marketplace packs each batch into per-backend HITs
// with per-backend prices, so the session's uniform Config()-derived
// math (ceil(fresh/PairsPerHIT) × CentsPerHIT) would be wrong for it.
// After resolving a batch the session drains the bill and books it
// verbatim into Stats and the crowd/hits and crowd/cents metrics.
// Wrappers that delegate Score to an inner source (the incremental
// engine's sink, the progress adapter) should forward Bill to the inner
// source so billing survives wrapping.
type Biller interface {
	// Bill returns the HITs posted and cents spent since the last call
	// and resets both. ok=false means the source has no billing
	// information for the interval and the caller must fall back to
	// Config()-derived accounting.
	Bill() (hits, cents int, ok bool)
}

// SourceFunc adapts a function to the Source interface, for live-crowd
// adapters and tests.
type SourceFunc struct {
	// Fn answers a single pair.
	Fn func(record.Pair) float64
	// Setting is returned by Config.
	Setting Config
}

// Score implements Source.
func (s SourceFunc) Score(p record.Pair) float64 { return s.Fn(p) }

// Config implements Source.
func (s SourceFunc) Config() Config { return s.Setting }

// Session gives one algorithm run access to a crowd source while
// accounting for everything it asks. It also maintains the set A of
// already-crowdsourced pairs that the refinement phase consults
// (Equations 7–8 count exactly the pairs outside A).
type Session struct {
	answers Source
	known   map[record.Pair]float64
	order   []record.Pair // known pairs in first-crowdsourced order
	stats   Stats
	rec     *obs.Recorder
	ctx     context.Context // nil = never cancelled
	err     error           // sticky: set once the campaign is aborted
}

// NewSession starts an accounting session over a crowd source. If the
// source carries a metrics recorder (RecorderCarrier — AnswerSet with
// SetRecorder does), the session adopts it and mirrors its accounting
// into crowd/* metrics; SetRecorder overrides the inherited recorder.
func NewSession(answers Source) *Session {
	s := &Session{
		answers: answers,
		known:   make(map[record.Pair]float64),
	}
	if c, ok := answers.(RecorderCarrier); ok {
		s.rec = c.Recorder()
	}
	return s
}

// SetRecorder attaches (or, with nil, detaches) a metrics recorder,
// overriding any recorder inherited from the source. If the source also
// accepts a recorder (RecorderSetter — AnswerSet does), the recorder is
// pushed down so the oracle-invocation count stays in the same snapshot
// as the session's question accounting.
func (s *Session) SetRecorder(rec *obs.Recorder) {
	s.rec = rec
	if setter, ok := s.answers.(RecorderSetter); ok {
		setter.SetRecorder(rec)
	}
}

// Recorder returns the session's metrics recorder; nil when the session
// is uninstrumented (every obs method is nil-safe, so callers use the
// result without guarding). The crowd algorithms reach their recorder
// through here — the session already flows through every crowd phase.
func (s *Session) Recorder() *obs.Recorder { return s.rec }

// Bind attaches a cancellation context to the session. Once ctx is
// cancelled, every subsequent Ask returns zero scores without consulting
// the source or charging any accounting, and Err reports the
// cancellation — so the crowd iteration loops observe one failed batch
// and stop cleanly mid-campaign. A nil ctx detaches.
func (s *Session) Bind(ctx context.Context) { s.ctx = ctx }

// Err reports why the campaign aborted (context cancellation or a batch
// failure), or nil while the session is healthy. The crowd algorithms
// check it after every Ask; callers of the algorithms check it to tell a
// completed run from an interrupted one.
func (s *Session) Err() error { return s.err }

// abort marks the session failed; the first error sticks.
func (s *Session) abort(err error) {
	if s.err == nil {
		s.err = err
	}
}

// Ask issues a batch of pairs to the crowd as one crowd iteration and
// returns their scores in order. Pairs already known from earlier batches
// are answered from the session cache for free; duplicates within the
// batch are charged once. A batch with no new pairs costs nothing — not
// even an iteration — since no HITs would be posted.
func (s *Session) Ask(pairs []record.Pair) []float64 {
	// A cancelled or aborted campaign answers nothing: zero scores, no
	// accounting, no source contact. Callers observe Err and stop.
	if s.err == nil && s.ctx != nil {
		if cerr := s.ctx.Err(); cerr != nil {
			s.abort(cerr)
		}
	}
	if s.err != nil {
		return make([]float64, len(pairs))
	}

	// Identify the distinct pairs this batch actually needs answered.
	var fresh []record.Pair
	inBatch := make(map[record.Pair]struct{})
	for _, p := range pairs {
		if _, ok := s.known[p]; ok {
			continue
		}
		if _, dup := inBatch[p]; dup {
			continue
		}
		inBatch[p] = struct{}{}
		fresh = append(fresh, p)
	}

	if len(fresh) > 0 {
		// Resolve the whole batch at once when the source supports it
		// (live crowds pay their latency once per iteration, not per
		// pair). A bound context routes through the cancellable batch
		// path; a batch that fails mid-flight aborts the campaign and
		// charges nothing.
		var scores []float64
		if cbs, ok := s.answers.(ContextBatchSource); ok && s.ctx != nil {
			got, err := cbs.ScoreBatchCtx(s.ctx, fresh)
			if err != nil {
				s.abort(err)
				return make([]float64, len(pairs))
			}
			scores = got
		} else if bs, ok := s.answers.(BatchSource); ok {
			scores = bs.ScoreBatch(fresh)
		} else {
			scores = make([]float64, len(fresh))
			for i, p := range fresh {
				scores[i] = s.answers.Score(p)
			}
		}
		vc, _ := s.answers.(VoteCounter)
		votes := 0
		for i, p := range fresh {
			s.known[p] = scores[i]
			s.order = append(s.order, p)
			if vc != nil {
				votes += vc.VoteCount(p)
			} else {
				votes += s.answers.Config().Workers
			}
		}
		s.stats.Votes += votes
		s.stats.Pairs += len(fresh)
		s.stats.Iterations++
		// A self-billing source (the marketplace) reports the HITs and
		// cents this batch actually cost across its backends; everything
		// else is billed at the uniform Config() rate.
		hits, cents, billed := 0, 0, false
		if b, ok := s.answers.(Biller); ok {
			hits, cents, billed = b.Bill()
		}
		if !billed {
			cfg := s.answers.Config()
			hits = (len(fresh) + cfg.PairsPerHIT - 1) / cfg.PairsPerHIT
			cents = hits * cfg.CentsPerHIT
		}
		s.stats.HITs += hits
		s.stats.Cents += cents

		s.rec.Count(MetricQuestionsAnswered, int64(len(fresh)))
		s.rec.Count(MetricIterations, 1)
		s.rec.Count(MetricHITs, int64(hits))
		s.rec.Count(MetricCents, int64(cents))
		s.rec.Count(MetricVotes, int64(votes))
		s.rec.Observe(MetricBatchSize, float64(len(fresh)))
		if s.rec.Tracing() {
			s.rec.Trace("crowd.iteration", map[string]any{
				"fresh": len(fresh), "hits": hits, "iteration": s.stats.Iterations,
			})
		}
	}
	s.rec.Count(MetricQuestionsIssued, int64(len(pairs)))
	s.rec.Count(MetricQuestionsCached, int64(len(pairs)-len(fresh)))

	out := make([]float64, len(pairs))
	for i, p := range pairs {
		out[i] = s.known[p]
	}
	return out
}

// AskOne issues a single pair (a one-pair batch).
func (s *Session) AskOne(p record.Pair) float64 {
	return s.Ask([]record.Pair{p})[0]
}

// Prime inserts an already-known answer into the session's known set A
// without consulting the source and without charging any accounting or
// metrics — the seam that makes past answers free. The incremental
// engine uses it to seed each resolve pass with journal-replayed crowd
// answers and transitively inferred pairs, so a primed pair costs zero
// questions, zero HITs and zero oracle invocations when an algorithm
// later asks for it. Priming a pair the session already knows is a
// no-op: the first value sticks, matching Ask's cache semantics.
func (s *Session) Prime(p record.Pair, fc float64) {
	if _, ok := s.known[p]; ok {
		return
	}
	s.known[p] = fc
	s.order = append(s.order, p)
}

// Known returns the crowd score of p if this session has already
// crowdsourced it (membership in the set A).
func (s *Session) Known(p record.Pair) (float64, bool) {
	fc, ok := s.known[p]
	return fc, ok
}

// KnownCount returns |A| for this session.
func (s *Session) KnownCount() int { return len(s.known) }

// KnownOrdered returns the session's A as a slice in first-crowdsourced
// order. Because the algorithms issue pairs in a deterministic sequence,
// this order is reproducible across runs — unlike ranging over the
// KnownPairs map — so estimator rebuilds that consume it stay
// deterministic. The returned slice is a view; callers must not mutate
// it. Scores are read back through Known.
func (s *Session) KnownOrdered() []record.Pair { return s.order }

// KnownPairs returns a copy of the session's A as a map. Callers may
// mutate the returned map freely.
func (s *Session) KnownPairs() map[record.Pair]float64 {
	out := make(map[record.Pair]float64, len(s.known))
	for p, fc := range s.known {
		out[p] = fc
	}
	return out
}

// Stats returns the accumulated accounting.
func (s *Session) Stats() Stats { return s.stats }
