package crowd

import (
	"fmt"
	"math/rand"

	"acd/internal/record"
)

// This file implements the paper's stated future work (Section 8):
// "adaptively assigning more crowd workers to more difficult record
// pairs". The adaptive scheme first collects a small base vote on each
// pair; when the vote is narrow (the margin between yes and no votes is
// at most one), the pair is treated as difficult and escalated to a
// larger panel. Easy pairs therefore cost the base number of votes while
// the extra spending concentrates exactly where majority votes are most
// likely to flip.

// BuildAdaptiveAnswers simulates adaptive worker allocation: every pair
// receives cfg.Workers votes; pairs whose margin is ≤ 1 are escalated to
// maxWorkers votes (maxWorkers must be odd and ≥ cfg.Workers). The
// returned AnswerSet records each pair's final score and vote count;
// Session accounting picks the vote counts up through the VoteCount
// method.
func BuildAdaptiveAnswers(pairs []record.Pair, truth func(record.Pair) bool, difficulty func(record.Pair) float64, cfg Config, maxWorkers int) *AnswerSet {
	if cfg.Workers <= 0 || cfg.Workers%2 == 0 {
		panic(fmt.Sprintf("crowd: Workers must be odd and positive, got %d", cfg.Workers))
	}
	if maxWorkers < cfg.Workers || maxWorkers%2 == 0 {
		panic(fmt.Sprintf("crowd: maxWorkers must be odd and ≥ Workers, got %d", maxWorkers))
	}
	a := &AnswerSet{
		fc:     make(map[record.Pair]float64, len(pairs)),
		truth:  make(map[record.Pair]bool, len(pairs)),
		votes:  make(map[record.Pair]int, len(pairs)),
		config: cfg,
	}
	for _, p := range pairs {
		isDup := truth(p)
		d := difficulty(p)
		rng := rand.New(rand.NewSource(pairSeed(cfg.Seed, p)))
		yes := 0
		total := 0
		for ; total < cfg.Workers; total++ {
			if vote(rng, d, isDup) {
				yes++
			}
		}
		// Escalate narrow votes: margin |yes − no| = |2·yes − total|.
		if abs(2*yes-total) <= 1 {
			for ; total < maxWorkers; total++ {
				if vote(rng, d, isDup) {
					yes++
				}
			}
		}
		a.fc[p] = float64(yes) / float64(total)
		a.truth[p] = isDup
		a.votes[p] = total
	}
	return a
}

// vote draws one worker's answer: correct with probability 1−d.
func vote(rng *rand.Rand, d float64, isDup bool) bool {
	correct := rng.Float64() >= d
	return correct == isDup
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// VoteCount returns the number of worker votes collected for a pair
// (cfg.Workers for every pair of a fixed-allocation answer set).
func (a *AnswerSet) VoteCount(p record.Pair) int {
	if a.votes != nil {
		if v, ok := a.votes[p]; ok {
			return v
		}
	}
	return a.config.Workers
}

// TotalVotes sums the votes across all answered pairs — the cost axis
// the adaptive-allocation experiment reports.
func (a *AnswerSet) TotalVotes() int {
	total := 0
	for p := range a.fc {
		total += a.VoteCount(p)
	}
	return total
}
