package journal

import (
	"strings"
	"testing"
	"time"
)

func tailSeqs(tb TailBatch) []int64 {
	seqs := make([]int64, 0, len(tb.Events))
	for _, ev := range tb.Events {
		seqs = append(seqs, ev.Seq)
	}
	return seqs
}

func TestReadTailBasic(t *testing.T) {
	fs := NewMemFS()
	s, _, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, recordEv(0), recordEv(1), recordEv(2), answerEv(0, 1, 1.0))

	tb, err := ReadTail(fs, 1, s.DurableSeq(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Checkpoint != nil {
		t.Fatalf("unexpected checkpoint in tail: %+v", tb.Checkpoint)
	}
	got := tailSeqs(tb)
	if len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Fatalf("tail seqs = %v, want [1 2 3 4]", got)
	}

	// Cursor mid-stream.
	tb, err = ReadTail(fs, 3, s.DurableSeq(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := tailSeqs(tb); len(got) != 2 || got[0] != 3 {
		t.Fatalf("tail from 3 = %v, want [3 4]", got)
	}

	// Caught up: nothing past the durable watermark.
	tb, err = ReadTail(fs, 5, s.DurableSeq(), 0)
	if err != nil || len(tb.Events) != 0 {
		t.Fatalf("caught-up tail = %v, %v", tailSeqs(tb), err)
	}
}

func TestReadTailLimitAndBatch(t *testing.T) {
	fs := NewMemFS()
	s, _, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		mustAppend(t, s, recordEv(i))
	}

	// limit bounds the tail even though more events are on disk.
	tb, err := ReadTail(fs, 1, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := tailSeqs(tb); len(got) != 4 || got[3] != 4 {
		t.Fatalf("limited tail = %v, want [1 2 3 4]", got)
	}

	// maxEvents caps the batch.
	tb, err = ReadTail(fs, 1, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := tailSeqs(tb); len(got) != 2 || got[1] != 2 {
		t.Fatalf("capped tail = %v, want [1 2]", got)
	}

	// limit below the cursor ships nothing rather than everything.
	tb, err = ReadTail(fs, 5, 3, 0)
	if err != nil || len(tb.Events) != 0 || tb.Checkpoint != nil {
		t.Fatalf("tail beyond limit = %+v, %v", tb, err)
	}
}

func TestReadTailBufferedNotShipped(t *testing.T) {
	fs := NewMemFS()
	s, _, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, recordEv(0))
	if _, err := s.AppendBuffered(recordEv(1)); err != nil {
		t.Fatal(err)
	}
	if got := s.DurableSeq(); got != 1 {
		t.Fatalf("DurableSeq = %d with one buffered event, want 1", got)
	}
	tb, err := ReadTail(fs, 1, s.DurableSeq(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := tailSeqs(tb); len(got) != 1 || got[0] != 1 {
		t.Fatalf("tail = %v, want only the committed [1]", got)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := s.DurableSeq(); got != 2 {
		t.Fatalf("DurableSeq after commit = %d, want 2", got)
	}
}

func TestReadTailSpansRotation(t *testing.T) {
	fs := NewMemFS()
	s, _, err := OpenOptions(fs, Options{RotateBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustAppend(t, s, recordEv(i)) // every commit rotates
	}
	tb, err := ReadTail(fs, 1, s.DurableSeq(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := tailSeqs(tb); len(got) != 5 || got[0] != 1 || got[4] != 5 {
		t.Fatalf("tail across rotations = %v, want [1..5]", got)
	}
}

func TestReadTailCompactedFallsBackToCheckpoint(t *testing.T) {
	fs := NewMemFS()
	s, _, err := OpenOptions(fs, Options{RotateBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		mustAppend(t, s, recordEv(i))
	}
	cp := &Checkpoint{Seq: 3}
	if err := s.WriteCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, recordEv(4))

	// A cursor before the compaction horizon gets the checkpoint plus
	// the events after it.
	tb, err := ReadTail(fs, 1, s.DurableSeq(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Checkpoint == nil || tb.Checkpoint.Seq != 3 {
		t.Fatalf("expected checkpoint at seq 3, got %+v", tb.Checkpoint)
	}
	if got := tailSeqs(tb); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("post-checkpoint events = %v, want [4 5]", got)
	}

	// A cursor past the horizon still reads events directly.
	tb, err = ReadTail(fs, 4, s.DurableSeq(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Checkpoint != nil || len(tb.Events) != 2 {
		t.Fatalf("direct tail = %+v", tb)
	}
}

func TestReadTailTornTailIgnored(t *testing.T) {
	fs := NewMemFS()
	s, _, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, recordEv(0), recordEv(1))
	// Simulate a torn final line on the live segment.
	b, err := fs.ReadFile(s.curName)
	if err != nil {
		t.Fatal(err)
	}
	fs.Put(s.curName, append(b, []byte(`{"seq":3,"ty`)...))
	tb, err := ReadTail(fs, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := tailSeqs(tb); len(got) != 2 {
		t.Fatalf("tail with torn line = %v, want [1 2]", got)
	}
}

func TestReadTailGapIsLoud(t *testing.T) {
	fs := NewMemFS()
	fs.Put(segName(1), []byte(`{"seq":2,"type":"answer","answer":{"lo":0,"hi":1,"fc":1}}`+"\n"))
	_, err := ReadTail(fs, 1, 0, 0)
	if err == nil || !strings.Contains(err.Error(), "tail gap") {
		t.Fatalf("gap not detected: %v", err)
	}
}

func TestAppendShipped(t *testing.T) {
	leaderFS := NewMemFS()
	leader, _, err := Open(leaderFS)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, leader, recordEv(0), answerEv(0, 1, 1.0), recordEv(1))
	tb, err := ReadTail(leaderFS, 1, leader.DurableSeq(), 0)
	if err != nil {
		t.Fatal(err)
	}

	followerFS := NewMemFS()
	fol, _, err := Open(followerFS)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range tb.Events {
		if err := fol.AppendShipped(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := fol.Commit(); err != nil {
		t.Fatal(err)
	}
	if fol.NextSeq() != leader.NextSeq() {
		t.Fatalf("follower head %d, leader head %d", fol.NextSeq(), leader.NextSeq())
	}

	// A duplicated or future event is refused, not silently reordered.
	if err := fol.AppendShipped(tb.Events[0]); err == nil {
		t.Fatal("stale shipped event accepted")
	}
	future := recordEv(9)
	future.Seq = 99
	if err := fol.AppendShipped(future); err == nil {
		t.Fatal("future shipped event accepted")
	}

	// The replicated journal recovers identically to the leader's.
	lRec, fRec := reopen(t, leaderFS), reopen(t, followerFS)
	if len(lRec.Events) != len(fRec.Events) {
		t.Fatalf("leader recovered %d events, follower %d", len(lRec.Events), len(fRec.Events))
	}
}

func reopen(t *testing.T, fs FS) Recovered {
	t.Helper()
	s, rec, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	return rec
}

func TestInstallCheckpointJumpsHead(t *testing.T) {
	fs := NewMemFS()
	s, _, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, recordEv(0))
	cp := &Checkpoint{Seq: 10, Round: 2}
	if err := s.InstallCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	if s.NextSeq() != 11 {
		t.Fatalf("NextSeq after install = %d, want 11", s.NextSeq())
	}
	if s.DurableSeq() != 10 {
		t.Fatalf("DurableSeq after install = %d, want 10", s.DurableSeq())
	}
	ev := recordEv(5)
	ev.Seq = 11
	if err := s.AppendShipped(ev); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec.Checkpoint == nil || rec.Checkpoint.Seq != 10 || rec.Checkpoint.Round != 2 {
		t.Fatalf("recovered checkpoint %+v", rec.Checkpoint)
	}
	if len(rec.Events) != 1 || rec.Events[0].Seq != 11 {
		t.Fatalf("recovered events %+v", rec.Events)
	}

	// Regressing the head is refused.
	if err := s2.InstallCheckpoint(&Checkpoint{Seq: 4}); err == nil {
		t.Fatal("regressive checkpoint accepted")
	}
}

// TestInstallCheckpointGuards: the preconditions that keep a shipped
// checkpoint from corrupting a journal — no uncommitted buffered
// events underneath it, and no installs into a closed store. Shipped
// appends obey the same closed-store rule.
func TestInstallCheckpointGuards(t *testing.T) {
	fs := NewMemFS()
	s, _, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendBuffered(recordEv(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.InstallCheckpoint(&Checkpoint{Seq: 10}); err == nil {
		t.Fatal("checkpoint installed over uncommitted buffered events")
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.InstallCheckpoint(&Checkpoint{Seq: 10}); err != nil {
		t.Fatalf("install after commit: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.InstallCheckpoint(&Checkpoint{Seq: 20}); err == nil {
		t.Fatal("checkpoint installed into a closed store")
	}
	ev := recordEv(1)
	ev.Seq = 11
	if err := s.AppendShipped(ev); err == nil {
		t.Fatal("shipped event appended to a closed store")
	}

	// SetEpoch requires an initialized layout: a bare directory has no
	// meta.json to stamp.
	if _, err := SetEpoch(NewMemFS(), 1); err == nil {
		t.Fatal("SetEpoch stamped an uninitialized dir")
	}
}

func TestEpochStamp(t *testing.T) {
	tree := NewMemTree()
	if _, err := OpenLayout(tree, 2); err != nil {
		t.Fatal(err)
	}
	root := tree.Root()
	if e, err := ReadEpoch(root); err != nil || e != 0 {
		t.Fatalf("fresh epoch = %d, %v", e, err)
	}
	if e, err := SetEpoch(root, 3); err != nil || e != 3 {
		t.Fatalf("SetEpoch = %d, %v", e, err)
	}
	// Lower or equal stamps are no-ops.
	if e, err := SetEpoch(root, 2); err != nil || e != 3 {
		t.Fatalf("SetEpoch(2) after 3 = %d, %v", e, err)
	}
	if e, err := FenceEpoch(root, 0); err != nil || e != 4 {
		t.Fatalf("FenceEpoch = %d, %v", e, err)
	}
	if e, err := FenceEpoch(root, 9); err != nil || e != 9 {
		t.Fatalf("FenceEpoch(min 9) = %d, %v", e, err)
	}

	// The epoch survives reopen and rides the layout.
	l, err := OpenLayout(tree, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l.Epoch != 9 {
		t.Fatalf("layout epoch = %d, want 9", l.Epoch)
	}
	if l.Shards != 2 {
		t.Fatalf("shard count lost across epoch writes: %d", l.Shards)
	}

	// The fence is durable: a crash copy still shows it.
	crash := tree.CrashCopy()
	if e, err := ReadEpoch(crash.Root()); err != nil || e != 9 {
		t.Fatalf("epoch after crash = %d, %v", e, err)
	}

	// No meta.json means no epoch to fence.
	if _, err := FenceEpoch(NewMemFS(), 1); err == nil {
		t.Fatal("fencing an uninitialized dir succeeded")
	}
}

func TestDurableSeqGroupCommit(t *testing.T) {
	fs := NewMemFS()
	s, _, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCommitter(s, GroupPolicy{Window: time.Hour})
	var waits []<-chan error
	for i := 0; i < 3; i++ {
		_, ch, err := c.AppendAsync(recordEv(i))
		if err != nil {
			t.Fatal(err)
		}
		waits = append(waits, ch)
	}
	if got := s.DurableSeq(); got != 0 {
		t.Fatalf("DurableSeq before group sync = %d, want 0", got)
	}
	c.Expedite()
	for _, ch := range waits {
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}
	if got := s.DurableSeq(); got != 3 {
		t.Fatalf("DurableSeq after group sync = %d, want 3", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
