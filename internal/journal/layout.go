package journal

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"
)

// Tree abstracts a directory holding the sharded journal layout: a root
// (meta.json, or a legacy single-engine journal) plus named
// subdirectories, one per shard and one for the router. DirTree is the
// production implementation; MemTree runs the same layout in memory for
// crash tests.
type Tree interface {
	// Root returns the tree's root directory.
	Root() FS
	// Sub returns the named subdirectory, creating it if needed.
	Sub(name string) (FS, error)
}

// DirTree is the production Tree: a real directory on disk whose
// subdirectories are DirFS instances.
type DirTree struct {
	// Dir is the root directory; it must exist.
	Dir string
}

// NewDirTree creates dir (and parents) if needed and returns a DirTree
// rooted there.
func NewDirTree(dir string) (DirTree, error) {
	d, err := NewDirFS(dir)
	if err != nil {
		return DirTree{}, err
	}
	return DirTree{Dir: d.Dir}, nil
}

// Root implements Tree.
func (t DirTree) Root() FS { return DirFS{Dir: t.Dir} }

// Sub implements Tree.
func (t DirTree) Sub(name string) (FS, error) {
	fs, err := NewDirFS(filepath.Join(t.Dir, name))
	if err != nil {
		return nil, err
	}
	return fs, nil
}

// MemTree is an in-memory Tree for tests: a flat namespace of MemFS
// directories keyed by subdirectory name ("" is the root).
type MemTree struct {
	mu   sync.Mutex
	dirs map[string]*MemFS
}

// NewMemTree returns an empty in-memory tree.
func NewMemTree() *MemTree {
	return &MemTree{dirs: map[string]*MemFS{"": NewMemFS()}}
}

// Root implements Tree.
func (t *MemTree) Root() FS { return t.Dir("") }

// Sub implements Tree.
func (t *MemTree) Sub(name string) (FS, error) { return t.Dir(name), nil }

// Dir returns the named subdirectory ("" for the root), creating it if
// needed. Tests use it for direct byte surgery on a shard's files.
func (t *MemTree) Dir(name string) *MemFS {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dirs[name] == nil {
		t.dirs[name] = NewMemFS()
	}
	return t.dirs[name]
}

// CrashCopy returns a new MemTree holding only synced content in every
// directory — the disk state after a power loss.
func (t *MemTree) CrashCopy() *MemTree {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := &MemTree{dirs: map[string]*MemFS{}}
	for n, fs := range t.dirs {
		c.dirs[n] = fs.CrashCopy()
	}
	if c.dirs[""] == nil {
		c.dirs[""] = NewMemFS()
	}
	return c
}

// Meta is the layout descriptor stored as meta.json at the tree root.
// It pins the shard count: sharded journals cannot be reopened with a
// different count (re-sharding is a data migration, not a flag change).
type Meta struct {
	// Version is the layout format version (currently 1).
	Version int `json:"version"`
	// Shards is the number of shard directories.
	Shards int `json:"shards"`
	// Legacy marks a pre-sharding single-engine journal whose shard 0
	// lives at the tree root instead of shard-000/.
	Legacy bool `json:"legacy,omitempty"`
	// Epoch is the replication epoch stamped into the layout: it rises
	// monotonically at every failover and never resets. A promoted
	// follower fences the old leader by bumping the epoch in the OLD
	// tree's meta (FenceEpoch) before taking writes, so a revenant
	// process reopening that tree can see it has been superseded.
	Epoch int64 `json:"epoch,omitempty"`
}

// MetaName is the layout descriptor's file name at the tree root.
const MetaName = "meta.json"

// RouterDir is the router journal's subdirectory name.
const RouterDir = "router"

// ShardDirName returns shard i's subdirectory name.
func ShardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// MaxShards bounds the shard count a layout will accept.
const MaxShards = 256

// Layout is an opened sharded journal layout: one FS per shard plus the
// router's. OpenLayout resolves the three on-disk cases — existing
// sharded layout (meta.json), legacy single-engine journal (WAL files
// at the root), and fresh directory — and pins the shard count in
// meta.json so every reopen agrees.
type Layout struct {
	// Shards is the pinned shard count.
	Shards int
	// ShardFS holds each shard's journal directory, indexed by shard.
	ShardFS []FS
	// RouterFS is the router journal's directory.
	RouterFS FS
	// Legacy reports that shard 0 is a pre-sharding journal rooted at
	// the tree root.
	Legacy bool
	// Epoch is the replication epoch recorded in meta.json at open time
	// (0 when the layout predates replication or was never fenced).
	Epoch int64
}

// OpenLayout opens (or initializes) the sharded layout in tree. shards
// is the requested count; 0 means "whatever the directory already has"
// (defaulting to 1 when fresh). Opening an existing layout with a
// different nonzero count is an error.
func OpenLayout(tree Tree, shards int) (*Layout, error) {
	if shards < 0 || shards > MaxShards {
		return nil, fmt.Errorf("journal: shard count %d outside [0,%d]", shards, MaxShards)
	}
	root := tree.Root()
	meta, found, err := readMeta(root)
	if err != nil {
		return nil, err
	}
	if !found {
		legacy, err := hasJournalFiles(root)
		if err != nil {
			return nil, err
		}
		switch {
		case legacy && shards > 1:
			return nil, fmt.Errorf("journal: directory holds a single-engine journal; cannot open with %d shards (re-sharding requires migration)", shards)
		case legacy:
			meta = Meta{Version: 1, Shards: 1, Legacy: true}
		default:
			if shards == 0 {
				shards = 1
			}
			meta = Meta{Version: 1, Shards: shards}
		}
		if err := writeMeta(root, meta); err != nil {
			return nil, err
		}
	}
	if meta.Version != 1 {
		return nil, fmt.Errorf("journal: unsupported layout version %d", meta.Version)
	}
	if meta.Shards < 1 || meta.Shards > MaxShards {
		return nil, fmt.Errorf("journal: %s declares %d shards", MetaName, meta.Shards)
	}
	if meta.Legacy && meta.Shards != 1 {
		return nil, fmt.Errorf("journal: legacy layout must have exactly 1 shard, %s declares %d", MetaName, meta.Shards)
	}
	if shards != 0 && shards != meta.Shards {
		return nil, fmt.Errorf("journal: directory is laid out for %d shards, requested %d (re-sharding requires migration)", meta.Shards, shards)
	}

	l := &Layout{Shards: meta.Shards, Legacy: meta.Legacy, Epoch: meta.Epoch}
	if meta.Legacy {
		l.ShardFS = []FS{root}
	} else {
		l.ShardFS = make([]FS, meta.Shards)
		for i := range l.ShardFS {
			if l.ShardFS[i], err = tree.Sub(ShardDirName(i)); err != nil {
				return nil, fmt.Errorf("journal: opening %s: %w", ShardDirName(i), err)
			}
		}
	}
	if l.RouterFS, err = tree.Sub(RouterDir); err != nil {
		return nil, fmt.Errorf("journal: opening %s: %w", RouterDir, err)
	}
	return l, nil
}

// readMeta loads meta.json from root; found is false when absent.
func readMeta(root FS) (meta Meta, found bool, err error) {
	names, err := root.List()
	if err != nil {
		return meta, false, fmt.Errorf("journal: listing root: %w", err)
	}
	present := false
	for _, n := range names {
		if n == MetaName {
			present = true
		}
	}
	if !present {
		return meta, false, nil
	}
	b, err := root.ReadFile(MetaName)
	if err != nil {
		return meta, false, fmt.Errorf("journal: reading %s: %w", MetaName, err)
	}
	if err := json.Unmarshal(b, &meta); err != nil {
		return meta, false, fmt.Errorf("journal: corrupt %s: %w", MetaName, err)
	}
	return meta, true, nil
}

// writeMeta durably installs meta.json via tmp + sync + rename +
// dir-sync, the same discipline checkpoints use: a crash mid-install
// leaves either no meta (the directory re-initializes identically on
// the next open) or the complete one.
func writeMeta(root FS, meta Meta) error {
	b, err := json.MarshalIndent(meta, "", " ")
	if err != nil {
		return fmt.Errorf("journal: marshaling %s: %w", MetaName, err)
	}
	tmp := MetaName + tmpSuffix
	f, err := root.Create(tmp)
	if err != nil {
		return fmt.Errorf("journal: creating %s: %w", tmp, err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return fmt.Errorf("journal: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: closing %s: %w", tmp, err)
	}
	if err := root.Rename(tmp, MetaName); err != nil {
		return fmt.Errorf("journal: installing %s: %w", MetaName, err)
	}
	if err := root.SyncDir(); err != nil {
		return fmt.Errorf("journal: syncing dir after %s install: %w", MetaName, err)
	}
	return nil
}

// hasJournalFiles reports whether root contains WAL segments or
// checkpoints — the signature of a legacy single-engine journal.
func hasJournalFiles(root FS) (bool, error) {
	names, err := root.List()
	if err != nil {
		return false, fmt.Errorf("journal: listing root: %w", err)
	}
	for _, n := range names {
		if _, ok := parseName(n, segPrefix, segSuffix); ok {
			return true, nil
		}
		if _, ok := parseName(n, snapPrefix, snapSuffix); ok {
			return true, nil
		}
	}
	return false, nil
}
