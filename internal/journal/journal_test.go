package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func recordEv(id int) Event {
	return Event{Type: EventRecordAdded, Record: &RecordData{
		ID:     id,
		Fields: map[string]string{"name": fmt.Sprintf("record %d", id)},
	}}
}

func answerEv(lo, hi int, fc float64) Event {
	return Event{Type: EventAnswer, Answer: &AnswerData{Lo: lo, Hi: hi, FC: fc}}
}

func resolveEv(round, upTo int, clusters [][]int) Event {
	return Event{Type: EventResolve, Resolve: &ResolveData{
		Round: round, ResolvedUpTo: upTo, Clusters: clusters,
	}}
}

func mustAppend(t *testing.T, s *Store, evs ...Event) []int64 {
	t.Helper()
	seqs := make([]int64, len(evs))
	for i, ev := range evs {
		seq, err := s.Append(ev)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		seqs[i] = seq
	}
	return seqs
}

func TestAppendRecover(t *testing.T) {
	fs := NewMemFS()
	s, rec, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint != nil || len(rec.Events) != 0 {
		t.Fatalf("fresh journal recovered %+v", rec)
	}
	evs := []Event{
		recordEv(0), recordEv(1), answerEv(0, 1, 1.0),
		resolveEv(1, 2, [][]int{{0, 1}}),
	}
	seqs := mustAppend(t, s, evs...)
	for i, seq := range seqs {
		if seq != int64(i)+1 {
			t.Errorf("seq[%d] = %d, want %d", i, seq, i+1)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec2, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec2.Checkpoint != nil {
		t.Errorf("unexpected checkpoint %+v", rec2.Checkpoint)
	}
	if len(rec2.Events) != len(evs) {
		t.Fatalf("recovered %d events, want %d", len(rec2.Events), len(evs))
	}
	for i, got := range rec2.Events {
		want := evs[i]
		want.Seq = seqs[i]
		if !reflect.DeepEqual(got, want) {
			t.Errorf("event %d: got %+v want %+v", i, got, want)
		}
	}
	if s2.NextSeq() != seqs[len(seqs)-1]+1 {
		t.Errorf("NextSeq = %d", s2.NextSeq())
	}
}

func TestCheckpointRecovery(t *testing.T) {
	fs := NewMemFS()
	s, _, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, recordEv(0), recordEv(1), answerEv(0, 1, 1))
	cp := &Checkpoint{
		Seq:          3,
		Round:        1,
		ResolvedUpTo: 2,
		Records: []RecordData{
			{ID: 0, Fields: map[string]string{"name": "record 0"}},
			{ID: 1, Fields: map[string]string{"name": "record 1"}},
		},
		Answers:  []AnswerData{{Lo: 0, Hi: 1, FC: 1}},
		Clusters: [][]int{{0, 1}},
		Stats:    IndexStats{Records: 2, Postings: 4},
	}
	if err := s.WriteCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, recordEv(2))
	s.Close()

	_, rec, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint == nil {
		t.Fatal("checkpoint not recovered")
	}
	if !reflect.DeepEqual(rec.Checkpoint, cp) {
		t.Errorf("checkpoint changed:\n got %+v\nwant %+v", rec.Checkpoint, cp)
	}
	if len(rec.Events) != 1 || rec.Events[0].Seq != 4 || rec.Events[0].Type != EventRecordAdded {
		t.Errorf("post-checkpoint events = %+v", rec.Events)
	}
}

// TestCheckpointCompaction: installing a checkpoint removes the WAL
// segments and snapshots it covers, and leaves later events intact
// across the next recovery.
func TestCheckpointCompaction(t *testing.T) {
	fs := NewMemFS()
	s, _, _ := Open(fs)
	mustAppend(t, s, recordEv(0), recordEv(1))
	s.WriteCheckpoint(&Checkpoint{Seq: 1})
	s.Close()
	s, _, _ = Open(fs) // new segment; the old one holds only seq ≤ 2
	mustAppend(t, s, recordEv(2))
	if err := s.WriteCheckpoint(&Checkpoint{Seq: 3}); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List()
	var segs, snaps []string
	for _, n := range names {
		if strings.HasPrefix(n, segPrefix) {
			segs = append(segs, n)
		}
		if strings.HasPrefix(n, snapPrefix) {
			snaps = append(snaps, n)
		}
	}
	if len(snaps) != 1 || snaps[0] != snapName(3) {
		t.Errorf("snapshots after compaction: %v", snaps)
	}
	if len(segs) != 1 || segs[0] != s.curName {
		t.Errorf("segments after compaction: %v (current %s)", segs, s.curName)
	}
	s.Close()
	_, rec, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint == nil || rec.Checkpoint.Seq != 3 || len(rec.Events) != 0 {
		t.Errorf("recovery after compaction: %+v", rec)
	}
}

// TestTruncationSweep is the crash-tail contract: for EVERY byte prefix
// of a WAL segment, recovery succeeds and yields exactly the events
// whose final newline made it to disk.
func TestTruncationSweep(t *testing.T) {
	fs := NewMemFS()
	s, _, _ := Open(fs)
	var evs []Event
	for i := 0; i < 5; i++ {
		evs = append(evs, recordEv(i), answerEv(i, i+1, 0.5))
	}
	evs = append(evs, resolveEv(1, 6, [][]int{{0, 1, 2}, {3}, {4, 5}}))
	mustAppend(t, s, evs...)
	seg := s.curName
	full := fs.Bytes(seg)
	if len(full) == 0 {
		t.Fatal("segment empty")
	}

	for cut := 0; cut <= len(full); cut++ {
		crash := NewMemFS()
		crash.Put(seg, full[:cut])
		s2, rec, err := Open(crash)
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		s2.Close()
		wantN := bytes.Count(full[:cut], []byte("\n"))
		// A tail missing only its newline is still a complete, durable
		// event; recovery keeps it.
		if tail := full[bytes.LastIndexByte(full[:cut], '\n')+1 : cut]; len(tail) > 0 && json.Valid(tail) {
			wantN++
		}
		if len(rec.Events) != wantN {
			t.Fatalf("cut %d: recovered %d events, want %d", cut, len(rec.Events), wantN)
		}
		for i, got := range rec.Events {
			want := evs[i]
			want.Seq = int64(i) + 1
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("cut %d: event %d mismatch: %+v vs %+v", cut, i, got, want)
			}
		}
	}
}

// TestCorruptMiddleRejected: garbage anywhere but the final line is
// lost history, not a torn tail — recovery must fail loudly.
func TestCorruptMiddleRejected(t *testing.T) {
	fs := NewMemFS()
	s, _, _ := Open(fs)
	mustAppend(t, s, recordEv(0), recordEv(1), recordEv(2))
	seg := s.curName
	lines := bytes.SplitAfter(fs.Bytes(seg), []byte("\n"))
	corrupt := append(append([]byte(nil), lines[0]...), []byte("{garbage\n")...)
	corrupt = append(corrupt, lines[2]...)
	crash := NewMemFS()
	crash.Put(seg, corrupt)
	if _, _, err := Open(crash); err == nil {
		t.Fatal("mid-file corruption accepted")
	}

	// A torn tail in an earlier segment is tolerated per se — but here
	// the next segment does NOT resume at the dropped seq (2), so the
	// contiguity check flags the lost durable event.
	crash2 := NewMemFS()
	crash2.Put(segName(1), append(append([]byte(nil), lines[0]...), []byte("{garbage")...))
	crash2.Put(segName(5), lines[2])
	if _, _, err := Open(crash2); err == nil || !strings.Contains(err.Error(), "sequence gap") {
		t.Fatalf("lost durable event not flagged as gap: %v", err)
	}

	// Complete events with a hole between them (a durable event lost to
	// bit rot or manual deletion) are equally fatal.
	crash3 := NewMemFS()
	crash3.Put(segName(1), append(append([]byte(nil), lines[0]...), lines[2]...))
	if _, _, err := Open(crash3); err == nil || !strings.Contains(err.Error(), "sequence gap") {
		t.Fatalf("mid-journal seq hole not flagged as gap: %v", err)
	}
}

// TestTornTailDoubleCrash is the brick-avoidance regression: a crash
// leaves a torn tail, recovery opens a new segment and appends, and a
// SECOND crash (before any checkpoint compacts the torn segment) must
// still recover — the torn bytes stay behind in the old segment, whose
// dropped seq the new segment reuses.
func TestTornTailDoubleCrash(t *testing.T) {
	fs := NewMemFS()
	s, _, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, recordEv(0), recordEv(1))
	seg1 := s.curName
	full := fs.Bytes(seg1)

	// Crash 1: segment 1 holds events 1,2 and a torn half of event 3.
	crash1 := NewMemFS()
	crash1.Put(seg1, append(append([]byte(nil), full...), []byte(`{"seq":3,"ty`)...))
	s2, rec1, err := Open(crash1)
	if err != nil {
		t.Fatalf("first recovery: %v", err)
	}
	if len(rec1.Events) != 2 || s2.NextSeq() != 3 {
		t.Fatalf("first recovery: %d events, next seq %d", len(rec1.Events), s2.NextSeq())
	}
	mustAppend(t, s2, recordEv(2), recordEv(3)) // seqs 3,4 in segment wal-3

	// Crash 2: torn tail in the NEW segment too, old torn segment still
	// in place (no checkpoint ran).
	seg2 := s2.curName
	if seg2 == seg1 {
		t.Fatalf("recovery reused segment %s", seg1)
	}
	crash2 := NewMemFS()
	crash2.Put(seg1, crash1.Bytes(seg1))
	full2 := crash1.Bytes(seg2)
	crash2.Put(seg2, full2[:len(full2)-4]) // tear event 4 mid-line
	s3, rec2, err := Open(crash2)
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	defer s3.Close()
	if len(rec2.Events) != 3 || rec2.Events[2].Seq != 3 || s3.NextSeq() != 4 {
		t.Fatalf("second recovery: %+v, next seq %d", rec2.Events, s3.NextSeq())
	}
}

// TestSyncDirDiscipline asserts the directory-entry durability
// barriers: a new segment's create is followed by a syncdir before any
// append, and a checkpoint's rename is followed by a syncdir before
// compaction removes the segments it covers.
func TestSyncDirDiscipline(t *testing.T) {
	fs := NewMemFS()
	s, _, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	ops := fs.Ops()
	if len(ops) < 2 || ops[0] != "create "+s.curName || ops[1] != "syncdir" {
		t.Fatalf("segment create not followed by syncdir: %v", ops)
	}
	mustAppend(t, s, recordEv(0), recordEv(1))
	s.Close()
	s, _, _ = Open(fs) // old segment now compactable
	if err := s.WriteCheckpoint(&Checkpoint{Seq: 2}); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	renameAt, syncAt, removeAt := -1, -1, -1
	for i, op := range fs.Ops() {
		switch {
		case strings.HasPrefix(op, "rename ") && strings.Contains(op, snapName(2)+tmpSuffix):
			renameAt = i
		case op == "syncdir" && renameAt >= 0 && syncAt < 0:
			syncAt = i
		case strings.HasPrefix(op, "remove "+segPrefix) && removeAt < 0:
			removeAt = i
		}
	}
	if renameAt < 0 || removeAt < 0 {
		t.Fatalf("checkpoint install or compaction missing from ops: %v", fs.Ops())
	}
	if !(renameAt < syncAt && syncAt < removeAt) {
		t.Fatalf("segment removed without a syncdir after checkpoint rename (rename@%d sync@%d remove@%d): %v",
			renameAt, syncAt, removeAt, fs.Ops())
	}
}

func TestCorruptTmpTolerated(t *testing.T) {
	fs := NewMemFS()
	s, _, _ := Open(fs)
	mustAppend(t, s, recordEv(0))
	s.WriteCheckpoint(&Checkpoint{Seq: 1, Records: []RecordData{{ID: 0}}})
	s.Close()
	// A crash between checkpoint-write and rename leaves a .tmp file;
	// it must not disturb recovery.
	fs.Put(snapName(9)+tmpSuffix, []byte("{half a checkpoi"))
	_, rec, err := Open(fs)
	if err != nil {
		t.Fatalf("tmp leftover broke recovery: %v", err)
	}
	if rec.Checkpoint == nil || rec.Checkpoint.Seq != 1 {
		t.Errorf("recovered %+v", rec.Checkpoint)
	}

	// A corrupt OLDER snapshot (superseded, awaiting compaction) is
	// never read: the newest checkpoint still wins.
	fs.Put(snapName(0), []byte("{not json"))
	_, rec, err = Open(fs)
	if err != nil {
		t.Fatalf("corrupt superseded snapshot broke recovery: %v", err)
	}
	if rec.Checkpoint == nil || rec.Checkpoint.Seq != 1 {
		t.Errorf("recovered %+v with stale corrupt snapshot present", rec.Checkpoint)
	}

	// A corrupt NEWEST checkpoint is fatal: it was the durable state.
	fs.Put(snapName(9), []byte("{half a checkpoi"))
	if _, _, err := Open(fs); err == nil {
		t.Fatal("corrupt installed checkpoint accepted")
	}
}

func TestCheckpointSeqValidation(t *testing.T) {
	fs := NewMemFS()
	s, _, _ := Open(fs)
	mustAppend(t, s, recordEv(0))
	if err := s.WriteCheckpoint(&Checkpoint{Seq: 99}); err == nil {
		t.Error("checkpoint beyond journal head accepted")
	}
	fs.Put(snapName(7), mustJSON(t, &Checkpoint{Seq: 3}))
	if _, _, err := Open(fs); err == nil {
		t.Error("checkpoint with mismatched name/seq accepted")
	}
}

func mustJSON(t *testing.T, cp *Checkpoint) []byte {
	t.Helper()
	b, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestMemFSCrashSemantics(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("x")
	f.Write([]byte("synced"))
	f.Sync()
	f.Write([]byte(" lost"))
	// Live reads see the page cache; the crash copy sees only synced bytes.
	if b, _ := fs.ReadFile("x"); string(b) != "synced lost" {
		t.Errorf("live read = %q", b)
	}
	crash := fs.CrashCopy()
	if b, _ := crash.ReadFile("x"); string(b) != "synced" {
		t.Errorf("crash copy = %q", b)
	}
	if b := fs.Bytes("x"); string(b) != "synced" {
		t.Errorf("Bytes = %q", b)
	}
}

func TestAppendAfterCloseAndWriteFailure(t *testing.T) {
	fs := NewMemFS()
	s, _, _ := Open(fs)
	s.Close()
	if _, err := s.Append(recordEv(0)); !errors.Is(err, ErrClosed) {
		t.Errorf("Append after close: %v", err)
	}
	if err := s.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("Sync after close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}

	fs2 := NewMemFS()
	s2, _, _ := Open(fs2)
	fs2.FailAfterWrites(0)
	if _, err := s2.Append(recordEv(0)); err == nil {
		t.Error("write failure swallowed")
	}
}

// TestDirFS runs the full append/checkpoint/recover cycle against a
// real directory.
func TestDirFS(t *testing.T) {
	dir := t.TempDir() + "/journal"
	fs, err := NewDirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, rec, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint != nil || len(rec.Events) != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	mustAppend(t, s, recordEv(0), recordEv(1), answerEv(0, 1, 1))
	if err := s.WriteCheckpoint(&Checkpoint{Seq: 2}); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, resolveEv(1, 2, [][]int{{0, 1}}))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, _ := NewDirFS(dir)
	s2, rec2, err := Open(fs2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec2.Checkpoint == nil || rec2.Checkpoint.Seq != 2 {
		t.Fatalf("checkpoint lost: %+v", rec2.Checkpoint)
	}
	// Events 1 and 2 are under the checkpoint; 3 (answer) and 4
	// (resolve) replay on top.
	if len(rec2.Events) != 2 || rec2.Events[0].Seq != 3 || rec2.Events[1].Type != EventResolve {
		t.Fatalf("events = %+v", rec2.Events)
	}
	if got := rec2.Events[1].Resolve.Clusters; !reflect.DeepEqual(got, [][]int{{0, 1}}) {
		t.Errorf("resolve payload = %v", got)
	}
}

func TestParseName(t *testing.T) {
	for _, c := range []struct {
		name   string
		prefix string
		suffix string
		seq    int64
		ok     bool
	}{
		{segName(7), segPrefix, segSuffix, 7, true},
		{snapName(12), snapPrefix, snapSuffix, 12, true},
		{"wal-.log", segPrefix, segSuffix, 0, false},
		{"wal-12.log.tmp", segPrefix, segSuffix, 0, false},
		{"snap-x.json", snapPrefix, snapSuffix, 0, false},
		{"other.txt", segPrefix, segSuffix, 0, false},
	} {
		seq, ok := parseName(c.name, c.prefix, c.suffix)
		if ok != c.ok || (ok && seq != c.seq) {
			t.Errorf("parseName(%q) = (%d, %v), want (%d, %v)", c.name, seq, ok, c.seq, c.ok)
		}
	}
}
