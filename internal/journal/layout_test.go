package journal

import (
	"strings"
	"testing"
)

// TestLayoutFreshInit checks a fresh directory is laid out with the
// requested shard count, meta.json pins it, and the pin survives a
// crash right after initialization.
func TestLayoutFreshInit(t *testing.T) {
	tree := NewMemTree()
	l, err := OpenLayout(tree, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l.Shards != 3 || l.Legacy || len(l.ShardFS) != 3 || l.RouterFS == nil {
		t.Fatalf("fresh layout %+v", l)
	}

	// Reopen with 0 ("whatever is there") and with the pinned count.
	for _, req := range []int{0, 3} {
		got, err := OpenLayout(tree.CrashCopy(), req)
		if err != nil {
			t.Fatalf("reopen with %d: %v", req, err)
		}
		if got.Shards != 3 {
			t.Fatalf("reopen with %d found %d shards", req, got.Shards)
		}
	}

	// Any other count is a refused re-shard.
	if _, err := OpenLayout(tree, 2); err == nil || !strings.Contains(err.Error(), "re-sharding") {
		t.Fatalf("re-shard accepted: %v", err)
	}
}

// TestLayoutFreshDefaults checks shards=0 on an empty directory means
// one shard.
func TestLayoutFreshDefaults(t *testing.T) {
	l, err := OpenLayout(NewMemTree(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.Shards != 1 || l.Legacy {
		t.Fatalf("default layout %+v", l)
	}
}

// TestLayoutLegacyAdoption checks a root directory holding a plain
// single-engine journal is adopted as a 1-shard legacy layout: shard 0
// stays at the root, the adoption is recorded in meta.json, and
// multi-shard opens are refused.
func TestLayoutLegacyAdoption(t *testing.T) {
	tree := NewMemTree()
	store, _, err := Open(tree.Root())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Append(Event{Type: EventAnswer, Answer: &AnswerData{Lo: 0, Hi: 1, FC: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenLayout(tree, 2); err == nil || !strings.Contains(err.Error(), "re-sharding") {
		t.Fatalf("legacy journal opened with 2 shards: %v", err)
	}

	l, err := OpenLayout(tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Legacy || l.Shards != 1 {
		t.Fatalf("legacy adoption produced %+v", l)
	}
	if l.ShardFS[0] != tree.Root() {
		t.Fatal("legacy shard 0 must live at the tree root")
	}

	// The adoption is durable: meta.json now says legacy, and reopening
	// agrees even after a crash.
	meta, found, err := readMeta(tree.CrashCopy().Root())
	if err != nil || !found {
		t.Fatalf("meta after adoption: %+v found=%v err=%v", meta, found, err)
	}
	if !meta.Legacy || meta.Shards != 1 {
		t.Fatalf("adoption recorded as %+v", meta)
	}
}

// TestLayoutRejectsBadMeta checks corrupted or unsupported descriptors
// are refused rather than guessed at.
func TestLayoutRejectsBadMeta(t *testing.T) {
	cases := map[string]string{
		"corrupt":        "{not json",
		"version":        `{"version":9,"shards":1}`,
		"zero shards":    `{"version":1,"shards":0}`,
		"too many":       `{"version":1,"shards":999}`,
		"legacy sharded": `{"version":1,"shards":4,"legacy":true}`,
	}
	for name, content := range cases {
		tree := NewMemTree()
		tree.Dir("").Put(MetaName, []byte(content))
		if _, err := OpenLayout(tree, 0); err == nil {
			t.Errorf("%s meta accepted", name)
		}
	}
}

// TestLayoutShardCountBounds checks the request-side bounds.
func TestLayoutShardCountBounds(t *testing.T) {
	if _, err := OpenLayout(NewMemTree(), -1); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := OpenLayout(NewMemTree(), MaxShards+1); err == nil {
		t.Error("oversized shard count accepted")
	}
}
