package journal

import (
	"strconv"
	"testing"
)

// FuzzRecover hammers OpenOptions with arbitrary on-disk images: a
// checkpoint file plus two WAL segments, every byte attacker-chosen.
// Recovery must never panic, and whenever it accepts an image the
// result must honor the journal's contract: events strictly contiguous
// from the checkpoint (or from seq 1), a store head right past the
// last recovered event, and the store still able to append — a
// corrupted journal is either recovered gaplessly or refused with an
// error, never half-read.
func FuzzRecover(f *testing.F) {
	// Seeds cover the shapes recovery legitimately sees: a clean log, a
	// torn tail, a checkpoint with a post-checkpoint suffix, a rotated
	// pair of segments, and the corruption classes the scan must refuse
	// (mid-segment garbage, sequence gaps, checkpoint/name mismatches).
	ev := func(seq int64) []byte {
		return []byte(`{"seq":` + strconv.FormatInt(seq, 10) + `,"type":"record-added","record":{"id":` + strconv.FormatInt(seq-1, 10) + `,"fields":{"title":"x"}}}` + "\n")
	}
	cat := func(bs ...[]byte) []byte {
		var out []byte
		for _, b := range bs {
			out = append(out, b...)
		}
		return out
	}
	cp2 := []byte(`{"seq":2,"round":0,"resolvedUpTo":0,"records":[{"id":0,"fields":{"title":"x"}},{"id":1,"fields":{"title":"x"}}],"answers":null,"clusters":[[0],[1]],"stats":{}}`)

	f.Add([]byte{}, []byte{}, []byte{})                                  // empty dir
	f.Add([]byte{}, cat(ev(1), ev(2), ev(3)), []byte{})                  // clean single segment
	f.Add([]byte{}, cat(ev(1), ev(2), []byte(`{"seq":3,"ty`)), []byte{}) // torn tail
	f.Add(cp2, cat(ev(1), ev(2)), cat(ev(3), ev(4)))                     // checkpoint + rotated segments
	f.Add([]byte{}, cat(ev(1), []byte("{garbage}\n"), ev(3)), []byte{})  // mid-segment corruption
	f.Add([]byte{}, cat(ev(1), ev(3)), []byte{})                         // sequence gap
	f.Add([]byte("{not json"), cat(ev(3)), []byte{})                     // corrupt checkpoint
	f.Add(cp2, []byte{}, cat(ev(1), ev(2)))                              // stale events under a checkpoint

	f.Fuzz(func(t *testing.T, snap, seg1, seg2 []byte) {
		fs := NewMemFS()
		if len(snap) > 0 {
			fs.Put(snapName(2), snap)
		}
		fs.Put(segName(1), seg1)
		fs.Put(segName(3), seg2)

		st, rec, err := OpenOptions(fs, Options{})
		if err != nil {
			return // refused loudly: that is the contract for bad images
		}
		defer st.Close()

		last := int64(0)
		if rec.Checkpoint != nil {
			if rec.Checkpoint.Seq != 2 {
				t.Fatalf("accepted checkpoint claiming seq %d from %s", rec.Checkpoint.Seq, snapName(2))
			}
			last = rec.Checkpoint.Seq
		}
		for i, ev := range rec.Events {
			if ev.Seq != last+1 {
				t.Fatalf("recovered event %d has seq %d after %d — gap accepted", i, ev.Seq, last)
			}
			last = ev.Seq
		}
		if got := st.NextSeq(); got != last+1 {
			t.Fatalf("NextSeq() = %d after recovering through seq %d", got, last)
		}
		if got := st.DurableSeq(); got != last {
			t.Fatalf("DurableSeq() = %d after recovering through seq %d", got, last)
		}
		// The recovered store must still take writes at the right seq.
		seq, err := st.Append(Event{Type: EventAnswer, Answer: &AnswerData{Lo: 0, Hi: 1, FC: 1}})
		if err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if seq != last+1 {
			t.Fatalf("append after recovery assigned seq %d, want %d", seq, last+1)
		}
	})
}
