package journal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is the journal's view of an open writable file: sequential writes
// plus an explicit Sync barrier for the WAL's durability points.
type File interface {
	io.WriteCloser
	// Sync flushes buffered writes to stable storage. The journal calls
	// it after every event append (before acknowledging the event) and
	// before renaming a checkpoint into place.
	Sync() error
}

// FS abstracts the directory the journal lives in, so tests can run the
// full crash/recover cycle against an in-memory tree. All paths are
// names relative to the journal directory — no separators.
type FS interface {
	// Create truncates-or-creates a file for writing.
	Create(name string) (File, error)
	// Open opens a file and returns its full contents.
	ReadFile(name string) ([]byte, error)
	// List returns the names of all files in the directory, sorted.
	List() ([]string, error)
	// Rename atomically replaces newname with oldname's content.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// SyncDir flushes the directory itself to stable storage, making
	// preceding Create/Rename/Remove entry changes durable. The journal
	// calls it after creating a segment (before any append is acked) and
	// after installing a checkpoint (before compaction deletes the WAL
	// it covers).
	SyncDir() error
}

// DirFS is the production FS: a real directory on disk. Renames are
// atomic within the directory (same filesystem), and Sync maps to
// (*os.File).Sync.
type DirFS struct {
	// Dir is the journal directory; it must exist.
	Dir string
}

// NewDirFS creates dir (and parents) if needed and returns a DirFS
// rooted there.
func NewDirFS(dir string) (DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return DirFS{}, fmt.Errorf("journal: creating dir: %w", err)
	}
	return DirFS{Dir: dir}, nil
}

// Create implements FS.
func (d DirFS) Create(name string) (File, error) {
	return os.Create(filepath.Join(d.Dir, name))
}

// ReadFile implements FS.
func (d DirFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(d.Dir, name))
}

// List implements FS.
func (d DirFS) List() ([]string, error) {
	ents, err := os.ReadDir(d.Dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (d DirFS) Rename(oldname, newname string) error {
	return os.Rename(filepath.Join(d.Dir, oldname), filepath.Join(d.Dir, newname))
}

// Remove implements FS.
func (d DirFS) Remove(name string) error {
	return os.Remove(filepath.Join(d.Dir, name))
}

// SyncDir implements FS by fsyncing the directory file descriptor.
func (d DirFS) SyncDir() error {
	f, err := os.Open(d.Dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// MemFS is an in-memory FS for tests. It distinguishes written bytes
// from synced bytes: a "crash" (CrashCopy) keeps only what was synced,
// which is exactly the durability contract the journal relies on.
type MemFS struct {
	mu     sync.Mutex
	files  map[string][]byte // synced content
	dirty  map[string][]byte // written-but-unsynced tail, per open file
	failAt int               // countdown to injected write failure; 0 = off
	ops    []string          // directory-op trace for fsync-discipline tests
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: map[string][]byte{}, dirty: map[string][]byte{}}
}

// FailAfterWrites arms a fault: the n+1'th subsequent Write call returns
// an error. Used to check the journal surfaces write errors.
func (m *MemFS) FailAfterWrites(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failAt = n + 1
}

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = nil
	m.dirty[name] = nil
	m.ops = append(m.ops, "create "+name)
	return &memFile{fs: m, name: name}, nil
}

// ReadFile implements FS. It reads synced content plus any unsynced
// tail, like a live OS page cache would serve.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	synced, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("memfs: %s: %w", name, os.ErrNotExist)
	}
	return append(append([]byte(nil), synced...), m.dirty[name]...), nil
}

// List implements FS.
func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	content, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("memfs: %s: %w", oldname, os.ErrNotExist)
	}
	m.files[newname] = append(content, m.dirty[oldname]...)
	delete(m.files, oldname)
	delete(m.dirty, oldname)
	m.ops = append(m.ops, "rename "+oldname+" "+newname)
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("memfs: %s: %w", name, os.ErrNotExist)
	}
	delete(m.files, name)
	delete(m.dirty, name)
	m.ops = append(m.ops, "remove "+name)
	return nil
}

// SyncDir implements FS. The in-memory tree has no page cache for
// directory entries, so this only records the barrier for Ops().
func (m *MemFS) SyncDir() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ops = append(m.ops, "syncdir")
	return nil
}

// Ops returns the trace of directory operations (create/rename/remove/
// syncdir) in execution order. Tests use it to assert the journal's
// fsync discipline — e.g. that a checkpoint rename is followed by a
// syncdir before any covered segment is removed.
func (m *MemFS) Ops() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.ops...)
}

// Bytes returns the synced content of a file (what would survive a
// crash), or nil if absent.
func (m *MemFS) Bytes(name string) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.files[name]...)
}

// Put installs a file with the given synced content, overwriting any
// existing one. Tests use it to build crash images byte by byte.
func (m *MemFS) Put(name string, content []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = append([]byte(nil), content...)
	delete(m.dirty, name)
}

// CrashCopy returns a new MemFS holding only synced content — the disk
// state after a power loss. Unsynced tails vanish.
func (m *MemFS) CrashCopy() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewMemFS()
	for n, b := range m.files {
		c.files[n] = append([]byte(nil), b...)
	}
	return c
}

type memFile struct {
	fs     *MemFS
	name   string
	closed bool
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("memfs: write to closed file %s", f.name)
	}
	if f.fs.failAt > 0 {
		f.fs.failAt--
		if f.fs.failAt == 0 {
			return 0, fmt.Errorf("memfs: injected write failure on %s", f.name)
		}
	}
	f.fs.dirty[f.name] = append(f.fs.dirty[f.name], p...)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.fs.files[f.name] = append(f.fs.files[f.name], f.fs.dirty[f.name]...)
	f.fs.dirty[f.name] = nil
	return nil
}

func (f *memFile) Close() error {
	// os.File.Close is NOT a durability barrier: written-but-unsynced
	// bytes sit in the page cache and die with a power loss regardless
	// of the close. Mirror that — the dirty tail stays unsynced (still
	// visible to ReadFile, like the page cache) so CrashCopy drops it.
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.closed = true
	return nil
}
