// Package journal gives the incremental dedup engine a durable past: a
// write-ahead log of engine events (records added, crowd answers
// received, resolve effects applied) plus periodic compacted snapshots,
// so a crashed or restarted process recovers the exact clustering state
// it had — byte-identical — without re-asking the crowd a single
// question it already paid for.
//
// Layout on disk (one directory per engine):
//
//	wal-<firstseq>.log   JSONL event segments; a new segment per Open,
//	                     never appended after close, strictly increasing
//	                     sequence numbers across segments
//	snap-<seq>.json      compacted checkpoints (cluster assignment,
//	                     answer cache, index stats) written atomically
//	                     via tmp + fsync + rename
//
// Recovery loads the newest checkpoint (older snapshots are superseded
// garbage awaiting compaction and are never read), then replays every
// event with a sequence number above it, in order. A torn final line in
// any segment — the signature of a crash mid-append, which can only
// happen at the then-live segment's tail — is tolerated and dropped;
// the dropped sequence number is reused by the next segment, and replay
// insists on gapless sequence numbers, so corruption of a durable event
// is still an error: that means lost history rather than a lost tail.
// Directory entries are fsynced after a segment is created and after a
// checkpoint is renamed into place (before the WAL it covers is
// deleted), so an acknowledged append cannot vanish with its file.
//
// All I/O goes through the FS interface; DirFS is the real
// implementation, MemFS the in-memory one tests use to simulate crashes
// at every byte offset without touching a disk.
package journal
