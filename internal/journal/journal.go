package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"acd/internal/obs"
)

// Event types. The journal is an effect log: resolve events carry the
// resulting clustering itself, so replay applies recorded effects
// instead of re-running the (crowd-consuming) algorithm.
const (
	// EventRecordAdded logs one record entering the engine.
	EventRecordAdded = "record-added"
	// EventAnswer logs one crowd answer the engine received and cached.
	EventAnswer = "answer"
	// EventResolve logs a completed resolve pass and the clustering it
	// produced.
	EventResolve = "resolve"
)

// Event is one journal entry. Exactly one of Record, Answer, Resolve is
// set, matching Type. Seq is assigned by Append: strictly increasing,
// unique across the journal's lifetime including restarts.
type Event struct {
	// Seq is the event's sequence number.
	Seq int64 `json:"seq"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Record is the payload of an EventRecordAdded event.
	Record *RecordData `json:"record,omitempty"`
	// Answer is the payload of an EventAnswer event.
	Answer *AnswerData `json:"answer,omitempty"`
	// Resolve is the payload of an EventResolve event.
	Resolve *ResolveData `json:"resolve,omitempty"`
}

// RecordData is the journaled form of one input record.
type RecordData struct {
	// ID is the engine-assigned record id (dense, insertion order).
	ID int `json:"id"`
	// GID is the router-assigned global id when this journal belongs to
	// one shard of a sharded group; 0 (and ignored) for standalone
	// single-engine journals, where ID is the only id space.
	GID int `json:"gid,omitempty"`
	// Fields are the record's named fields.
	Fields map[string]string `json:"fields"`
	// Entity is the optional ground-truth entity label ("" = unknown).
	Entity string `json:"entity,omitempty"`
}

// AnswerData is the journaled form of one cached crowd answer.
type AnswerData struct {
	// Lo and Hi identify the pair, canonical Lo < Hi.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// FC is the fraction of workers answering "match".
	FC float64 `json:"fc"`
	// Source records answer provenance (e.g. "crowd", "machine",
	// "client"); empty means the default crowd source.
	Source string `json:"source,omitempty"`
}

// ResolveData is the journaled effect of one resolve pass.
type ResolveData struct {
	// Round numbers resolve passes from 1.
	Round int `json:"round"`
	// ResolvedUpTo is the count of records covered by this pass: all ids
	// < ResolvedUpTo are clustered.
	ResolvedUpTo int `json:"resolvedUpTo"`
	// Clusters is the full clustering after the pass, in the canonical
	// order cluster.Sets produces.
	Clusters [][]int `json:"clusters"`
}

// Recovered is what Open found on disk: the newest checkpoint (nil if
// none) and every event after it, in sequence order.
type Recovered struct {
	// Checkpoint is the newest readable checkpoint, or nil.
	Checkpoint *Checkpoint
	// Events are the events with Seq beyond the checkpoint, ascending.
	Events []Event
}

const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	snapPrefix = "snap-"
	snapSuffix = ".json"
	tmpSuffix  = ".tmp"
)

// Journal health metrics, reported through Options.Obs.
const (
	// MetricSyncDirErrors counts failed directory fsyncs during
	// compaction garbage collection. Removals are retried on the next
	// checkpoint, so a nonzero count is a disk-health warning, not data
	// loss — but it must not vanish silently.
	MetricSyncDirErrors = "journal/syncdir_errors"
	// MetricSegmentsRotated counts WAL segment rotations.
	MetricSegmentsRotated = "journal/segments_rotated"
	// MetricGroupCommits counts commit groups synced by a Committer.
	MetricGroupCommits = "journal/group_commits"
	// MetricGroupedEvents counts events acknowledged through group
	// commits; MetricGroupedEvents / MetricGroupCommits is the realized
	// batching factor.
	MetricGroupedEvents = "journal/grouped_events"
)

// Options tunes a Store beyond its filesystem. The zero value matches
// the historical behavior: no rotation, no metrics.
type Options struct {
	// RotateBytes rotates the live WAL segment once its committed size
	// reaches this many bytes; 0 disables rotation. Rotation happens
	// only at commit boundaries and syncs the outgoing segment's tail,
	// so every byte in a closed segment is durable (a pipelined
	// committer's next group may straddle the boundary; its events are
	// still acked only by their own group's sync).
	RotateBytes int64
	// Obs receives journal health metrics. Nil records nothing.
	Obs *obs.Recorder
}

// Store is an open journal: an append-side WAL segment plus checkpoint
// management. It is not safe for concurrent use; the engine (or a
// Committer) serializes access.
type Store struct {
	fs      FS
	opt     Options
	cur     File
	curName string
	nextSeq int64

	curBytes int64 // bytes written to the live segment
	pending  int   // events written but not yet committed
	err      error // sticky: a write/sync/rotate failure poisons the store

	// durable is the highest sequence number known to be on stable
	// storage (fsynced, or covered by an installed checkpoint). It is
	// the one Store field readable without external serialization:
	// replication streamers poll it from other goroutines to bound what
	// they ship.
	durable atomic.Int64
}

// Open recovers the journal in fs and opens a fresh WAL segment for
// appending, with default Options (no rotation, no metrics).
func Open(fs FS) (*Store, Recovered, error) {
	return OpenOptions(fs, Options{})
}

// OpenOptions recovers the journal in fs and opens a fresh WAL segment
// for appending. The returned Recovered holds everything needed to
// rebuild state: newest checkpoint plus post-checkpoint events. A torn
// final line in any segment is dropped (crash mid-append or mid-group —
// appends only ever tear at the live segment's tail, and recovery
// leaves the torn bytes behind when it opens the next segment); any
// other malformed content is an error.
func OpenOptions(fs FS, opt Options) (*Store, Recovered, error) {
	var rec Recovered
	names, err := fs.List()
	if err != nil {
		return nil, rec, fmt.Errorf("journal: listing dir: %w", err)
	}

	// Only the newest checkpoint is read: older snapshots are superseded
	// garbage awaiting compaction and never consulted, so their
	// corruption cannot block recovery. A corrupt newest checkpoint is
	// fatal — it was the durable state. Leftover .tmp files (crash
	// before rename) are ignored entirely.
	snapSeq := int64(-1)
	snapFile := ""
	for _, n := range names {
		if seq, ok := parseName(n, snapPrefix, snapSuffix); ok && seq > snapSeq {
			snapSeq, snapFile = seq, n
		}
	}
	if snapFile != "" {
		b, err := fs.ReadFile(snapFile)
		if err != nil {
			return nil, rec, fmt.Errorf("journal: reading %s: %w", snapFile, err)
		}
		cp := new(Checkpoint)
		if err := json.Unmarshal(b, cp); err != nil {
			return nil, rec, fmt.Errorf("journal: corrupt checkpoint %s: %w", snapFile, err)
		}
		if cp.Seq != snapSeq {
			return nil, rec, fmt.Errorf("journal: checkpoint %s claims seq %d", snapFile, cp.Seq)
		}
		rec.Checkpoint = cp
	}

	// Replay segments in order, keeping events past the checkpoint.
	var segs []string
	for _, n := range names {
		if _, ok := parseName(n, segPrefix, segSuffix); ok {
			segs = append(segs, n)
		}
	}
	lastSeq := snapSeq
	if lastSeq < 0 {
		lastSeq = 0 // no checkpoint: replay starts at seq 1
	}
	for _, n := range segs {
		b, err := fs.ReadFile(n)
		if err != nil {
			return nil, rec, fmt.Errorf("journal: reading %s: %w", n, err)
		}
		lines := bytes.Split(b, []byte("\n"))
		for li, line := range lines {
			if len(line) == 0 {
				continue
			}
			var ev Event
			if err := json.Unmarshal(line, &ev); err != nil {
				// An unparseable final line is a torn tail. The dropped
				// event's seq is reassigned to the next segment's first
				// event, so the contiguity check below still catches a
				// lost durable event.
				if li == len(lines)-1 {
					break
				}
				return nil, rec, fmt.Errorf("journal: corrupt event at %s line %d: %w", n, li+1, err)
			}
			if ev.Seq <= snapSeq {
				continue // compacted into the checkpoint already
			}
			if ev.Seq != lastSeq+1 {
				return nil, rec, fmt.Errorf("journal: sequence gap: event %d after %d in %s", ev.Seq, lastSeq, n)
			}
			lastSeq = ev.Seq
			rec.Events = append(rec.Events, ev)
		}
	}

	s := &Store{fs: fs, opt: opt, nextSeq: lastSeq + 1}
	if s.nextSeq < 1 {
		s.nextSeq = 1
	}
	s.durable.Store(s.nextSeq - 1)
	s.curName = segName(s.nextSeq)
	if s.cur, err = fs.Create(s.curName); err != nil {
		return nil, rec, fmt.Errorf("journal: opening segment: %w", err)
	}
	// The segment's directory entry must be durable before any append
	// is acknowledged: without this, a power loss could drop the whole
	// file even though every event in it was fsynced.
	if err := fs.SyncDir(); err != nil {
		s.cur.Close()
		return nil, rec, fmt.Errorf("journal: syncing dir after segment create: %w", err)
	}
	return s, rec, nil
}

// NextSeq returns the sequence number the next Append will assign.
func (s *Store) NextSeq() int64 { return s.nextSeq }

// DurableSeq returns the highest sequence number known to be on stable
// storage. Events at or below it survive a power loss; events above it
// may still be buffered. Unlike every other Store method it is safe to
// call concurrently with appends — replication reads it to decide how
// far it may ship.
func (s *Store) DurableSeq() int64 { return s.durable.Load() }

// Append assigns the event's sequence number, writes it to the current
// segment and syncs it to stable storage before returning. On return
// the event is durable. Equivalent to AppendBuffered followed by
// Commit — one fsync per event.
func (s *Store) Append(ev Event) (int64, error) {
	seq, err := s.AppendBuffered(ev)
	if err != nil {
		return 0, err
	}
	if err := s.Commit(); err != nil {
		return 0, err
	}
	return seq, nil
}

// AppendBuffered assigns the event's sequence number and writes it to
// the current segment WITHOUT forcing it to stable storage. The event
// becomes durable at the next Commit; until then a crash may lose it
// (a torn tail recovery drops silently). A write failure poisons the
// store: the buffered suffix's durability is unknown, so no further
// appends are accepted.
func (s *Store) AppendBuffered(ev Event) (int64, error) {
	if s.err != nil {
		return 0, s.err
	}
	if s.cur == nil {
		return 0, ErrClosed
	}
	ev.Seq = s.nextSeq
	b, err := json.Marshal(ev)
	if err != nil {
		return 0, fmt.Errorf("journal: marshaling event: %w", err)
	}
	b = append(b, '\n')
	if _, err := s.cur.Write(b); err != nil {
		s.err = fmt.Errorf("journal: appending event: %w", err)
		return 0, s.err
	}
	s.nextSeq++
	s.curBytes += int64(len(b))
	s.pending++
	return ev.Seq, nil
}

// Pending returns the number of buffered events not yet committed.
func (s *Store) Pending() int { return s.pending }

// Commit syncs every buffered event to stable storage — the single
// fsync a commit group shares — then rotates the live segment if it
// has outgrown Options.RotateBytes. On a nil return every preceding
// append is durable. A sync or rotation failure poisons the store.
func (s *Store) Commit() error {
	if s.err != nil {
		return s.err
	}
	if s.cur == nil {
		return ErrClosed
	}
	if s.pending == 0 {
		return nil
	}
	if err := s.cur.Sync(); err != nil {
		s.err = fmt.Errorf("journal: syncing commit group: %w", err)
		return s.err
	}
	s.pending = 0
	s.durable.Store(s.nextSeq - 1)
	if s.opt.RotateBytes > 0 && s.curBytes >= s.opt.RotateBytes {
		if err := s.rotate(); err != nil {
			s.err = err
			return s.err
		}
	}
	return nil
}

// rotate closes the full live segment and opens a fresh one named after
// the next sequence number. The old segment is synced before it closes:
// Close is not a durability barrier, and a pipelined committer may have
// appended events of the NEXT group to this segment during its
// out-of-lock group fsync — without the sync here, a power loss after
// rotation could lose those events even though their acks later ride
// the new segment's sync. After the sync nothing in the old segment is
// pending. The new segment's directory entry is made durable before
// any append into it is acknowledged, mirroring Open.
func (s *Store) rotate() error {
	if err := s.cur.Sync(); err != nil {
		return fmt.Errorf("journal: syncing rotated segment: %w", err)
	}
	s.pending = 0
	s.durable.Store(s.nextSeq - 1)
	if err := s.cur.Close(); err != nil {
		return fmt.Errorf("journal: closing rotated segment: %w", err)
	}
	name := segName(s.nextSeq)
	f, err := s.fs.Create(name)
	if err != nil {
		s.cur = nil
		return fmt.Errorf("journal: creating rotated segment: %w", err)
	}
	s.cur, s.curName, s.curBytes = f, name, 0
	if err := s.fs.SyncDir(); err != nil {
		return fmt.Errorf("journal: syncing dir after rotation: %w", err)
	}
	s.opt.Obs.Count(MetricSegmentsRotated, 1)
	return nil
}

// WriteCheckpoint durably installs a compacted snapshot via
// tmp + sync + rename, then drops WAL segments and snapshots it makes
// redundant. cp.Seq must be the seq of the last event the snapshot
// covers (its state is the fold of events 1..Seq).
func (s *Store) WriteCheckpoint(cp *Checkpoint) error {
	if s.err != nil {
		return s.err
	}
	if cp.Seq >= s.nextSeq {
		return fmt.Errorf("journal: checkpoint seq %d beyond journal head %d", cp.Seq, s.nextSeq-1)
	}
	if err := s.installSnapshot(cp); err != nil {
		return err
	}
	s.compact(cp.Seq)
	return nil
}

// installSnapshot durably writes the checkpoint file via tmp + sync +
// rename + dir-sync. It does not compact or touch the live segment.
func (s *Store) installSnapshot(cp *Checkpoint) error {
	b, err := json.MarshalIndent(cp, "", " ")
	if err != nil {
		return fmt.Errorf("journal: marshaling checkpoint: %w", err)
	}
	final := snapName(cp.Seq)
	tmp := final + tmpSuffix
	f, err := s.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("journal: creating checkpoint tmp: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return fmt.Errorf("journal: writing checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: syncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: closing checkpoint: %w", err)
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		return fmt.Errorf("journal: installing checkpoint: %w", err)
	}
	// Make the rename durable before compact deletes the WAL segments
	// the checkpoint covers — otherwise a power loss could lose both the
	// checkpoint (un-synced dir entry) and the events it replaced.
	if err := s.fs.SyncDir(); err != nil {
		return fmt.Errorf("journal: syncing dir after checkpoint install: %w", err)
	}
	return nil
}

// compact removes snapshots older than seq and WAL segments whose every
// event is covered by the snapshot at seq. Failures are ignored: the
// garbage is retried on the next checkpoint and harmless meanwhile.
func (s *Store) compact(seq int64) {
	names, err := s.fs.List()
	if err != nil {
		return
	}
	var segFirst []int64
	var segNames []string
	for _, n := range names {
		if sq, ok := parseName(n, snapPrefix, snapSuffix); ok && sq < seq {
			s.fs.Remove(n)
		}
		if strings.HasSuffix(n, tmpSuffix) {
			s.fs.Remove(n)
		}
		if sq, ok := parseName(n, segPrefix, segSuffix); ok {
			segFirst = append(segFirst, sq)
			segNames = append(segNames, n)
		}
	}
	// Segment i's events all precede segment i+1's first seq; it is
	// disposable once the checkpoint covers that whole range. The live
	// segment is never removed.
	for i := 0; i+1 < len(segNames); i++ {
		if segNames[i] != s.curName && segFirst[i+1] <= seq+1 {
			s.fs.Remove(segNames[i])
		}
	}
	// Removals are garbage collection; durability is best-effort and
	// retried on the next checkpoint. A failed barrier is still a disk
	// health signal, so it is counted rather than dropped.
	if err := s.fs.SyncDir(); err != nil {
		s.opt.Obs.Count(MetricSyncDirErrors, 1)
	}
}

// Sync forces the current segment to stable storage. Appends already
// sync; this exists for explicit barriers (e.g. before process exit).
func (s *Store) Sync() error {
	if s.err != nil {
		return s.err
	}
	if s.cur == nil {
		return ErrClosed
	}
	if err := s.cur.Sync(); err != nil {
		return err
	}
	s.durable.Store(s.nextSeq - 1)
	return nil
}

// Close syncs and closes the current segment (committing any buffered
// events on the way out). The store is unusable afterwards.
func (s *Store) Close() error {
	if s.cur == nil {
		return nil
	}
	var serr error
	if s.err == nil && s.pending > 0 {
		serr = s.cur.Sync()
		s.pending = 0
		if serr == nil {
			s.durable.Store(s.nextSeq - 1)
		}
	}
	err := s.cur.Close()
	s.cur = nil
	if serr != nil {
		return serr
	}
	return err
}

func segName(first int64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, first, segSuffix)
}

func snapName(seq int64) string {
	return fmt.Sprintf("%s%020d%s", snapPrefix, seq, snapSuffix)
}

// parseName extracts the sequence number from a journal file name of
// the form <prefix><seq><suffix>; ok is false for foreign names.
func parseName(name, prefix, suffix string) (int64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if mid == "" || strings.Contains(mid, ".") {
		return 0, false
	}
	seq, err := strconv.ParseInt(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// ErrClosed reports use of a closed store.
var ErrClosed = errors.New("journal: store closed")
