package journal

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"acd/internal/histogram"
)

// benchCommitter measures the append path through a Committer: many
// concurrent appenders, each blocking on its event's durability — the
// shape acdserve's ingest handlers produce. Group size 1 is the
// passthrough baseline (one fsync per event); 16 and 256 cap the commit
// group. Reported metrics: events/sec (the b.N rate) and p99 append
// latency in microseconds.
func benchCommitter(b *testing.B, fs FS, group int) {
	b.Helper()
	s, _, err := OpenOptions(fs, Options{})
	if err != nil {
		b.Fatal(err)
	}
	pol := GroupPolicy{}
	if group > 1 {
		pol = GroupPolicy{Window: 2 * time.Millisecond, MaxEvents: group}
	}
	c := NewCommitter(s, pol)
	defer c.Close()

	// Enough concurrent appenders that the size cap is reachable —
	// otherwise large groups degenerate to pure window pacing and the
	// ladder measures the timer, not the batching.
	workers := 2 * group
	if workers < 32 {
		workers = 32
	}
	lat := histogram.NewLatency()
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				t0 := time.Now()
				_, wait, err := c.AppendAsync(recordEv(i))
				if err != nil {
					b.Error(err)
					return
				}
				if err := <-wait; err != nil {
					b.Error(err)
					return
				}
				lat.Observe(time.Since(t0))
			}
		}()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(lat.Quantile(0.99))/float64(time.Microsecond), "p99-µs")
}

// BenchmarkJournalAppendMemFS: the group-commit ladder over the
// in-memory FS — isolates the batching/coordination overhead with
// fsync cost near zero.
func BenchmarkJournalAppendMemFS(b *testing.B) {
	for _, group := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("group%d", group), func(b *testing.B) {
			benchCommitter(b, NewMemFS(), group)
		})
	}
}

// BenchmarkJournalAppendDirFS: the same ladder against a real
// directory, where each commit pays an actual fsync — the number that
// justifies the group-commit default in docs/serving.md.
func BenchmarkJournalAppendDirFS(b *testing.B) {
	for _, group := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("group%d", group), func(b *testing.B) {
			fs, err := NewDirFS(b.TempDir() + "/journal")
			if err != nil {
				b.Fatal(err)
			}
			benchCommitter(b, fs, group)
		})
	}
}
