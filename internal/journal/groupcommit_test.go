package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"acd/internal/obs"
)

// TestCommitterPassthrough: a disabled policy (Window == 0) degrades to
// the plain one-fsync-per-event store, through the same API the batched
// mode uses.
func TestCommitterPassthrough(t *testing.T) {
	fs := NewMemFS()
	s, _, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCommitter(s, GroupPolicy{})
	seq, wait, err := c.AppendAsync(recordEv(0))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Errorf("seq = %d", seq)
	}
	select {
	case err := <-wait:
		if err != nil {
			t.Errorf("passthrough ack: %v", err)
		}
	default:
		t.Error("passthrough append not immediately durable")
	}
	if seq, err = c.Append(recordEv(1)); err != nil || seq != 2 {
		t.Fatalf("Append = (%d, %v)", seq, err)
	}
	// Both events survive a crash right now: they synced inline.
	_, rec, err := Open(fs.CrashCopy())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) != 2 {
		t.Errorf("crash copy recovered %d events, want 2", len(rec.Events))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.AppendAsync(recordEv(2)); err == nil {
		t.Error("append after close accepted")
	}
}

// TestGroupCommitConcurrent: concurrent appends share fsyncs (measurably
// fewer group commits than events), every ack arrives, and recovery
// yields all events in sequence order.
func TestGroupCommitConcurrent(t *testing.T) {
	fs := NewMemFS()
	rec := obs.New()
	s, _, err := OpenOptions(fs, Options{Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCommitter(s, GroupPolicy{Window: 50 * time.Millisecond, MaxEvents: 8})
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, wait, err := c.AppendAsync(recordEv(i))
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = <-wait
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	commits := rec.Counter(MetricGroupCommits)
	events := rec.Counter(MetricGroupedEvents)
	if events != n {
		t.Errorf("grouped events = %d, want %d", events, n)
	}
	if commits == 0 || commits >= n {
		t.Errorf("group commits = %d for %d events — no batching happened", commits, n)
	}
	_, got, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != n {
		t.Fatalf("recovered %d events, want %d", len(got.Events), n)
	}
	for i, ev := range got.Events {
		if ev.Seq != int64(i)+1 {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
}

// TestTornGroupTail: a crash before the group's fsync loses exactly the
// buffered (unacked) suffix — the committed prefix recovers intact and
// the journal stays writable after recovery.
func TestTornGroupTail(t *testing.T) {
	fs := NewMemFS()
	s, _, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.AppendBuffered(recordEv(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 5; i++ {
		if _, err := s.AppendBuffered(recordEv(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d", s.Pending())
	}
	// The live file sees all five; the crash copy only the synced group.
	if b, _ := fs.ReadFile(s.curName); bytes.Count(b, []byte("\n")) != 5 {
		t.Fatalf("live segment holds %d lines", bytes.Count(b, []byte("\n")))
	}
	s2, rec, err := Open(fs.CrashCopy())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) != 3 || s2.NextSeq() != 4 {
		t.Fatalf("recovered %d events, next seq %d; want 3, 4", len(rec.Events), s2.NextSeq())
	}
	if _, err := s2.Append(recordEv(3)); err != nil {
		t.Fatalf("append after torn-group recovery: %v", err)
	}
	s2.Close()
}

// TestGroupDurableBeforeAck: a crash between the group fsync and the
// acks still recovers the whole group — recovered state may exceed the
// acked floor, never undershoot it.
func TestGroupDurableBeforeAck(t *testing.T) {
	fs := NewMemFS()
	s, _, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.AppendBuffered(recordEv(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(); err != nil { // the group fsync; no ack ever delivered
		t.Fatal(err)
	}
	_, rec, err := Open(fs.CrashCopy())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) != 4 {
		t.Fatalf("recovered %d events, want the whole synced group (4)", len(rec.Events))
	}
}

// TestRotationSweep is the every-byte crash sweep extended across
// segment rotation: groups of three events commit with RotateBytes low
// enough to rotate repeatedly, then EVERY reachable disk state — all
// earlier segments complete, any byte prefix of the segment the writer
// was in, later segments absent — must recover exactly the durable
// prefix.
func TestRotationSweep(t *testing.T) {
	fs := NewMemFS()
	s, _, err := OpenOptions(fs, Options{RotateBytes: 150})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		if _, err := s.AppendBuffered(recordEv(i)); err != nil {
			t.Fatal(err)
		}
		if (i+1)%3 == 0 {
			if err := s.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	names, _ := fs.List()
	var segs []string
	for _, nm := range names {
		if _, ok := parseName(nm, segPrefix, segSuffix); ok {
			segs = append(segs, nm)
		}
	}
	if len(segs) < 3 {
		t.Fatalf("only %d segments; rotation did not happen (%v)", len(segs), segs)
	}

	prefixEvents := 0 // complete events in segments before the torn one
	for si, seg := range segs {
		full := fs.Bytes(seg)
		for cut := 0; cut <= len(full); cut++ {
			crash := NewMemFS()
			for _, prev := range segs[:si] {
				crash.Put(prev, fs.Bytes(prev))
			}
			crash.Put(seg, full[:cut])
			s2, rec, err := Open(crash)
			if err != nil {
				t.Fatalf("segment %s cut %d: recovery failed: %v", seg, cut, err)
			}
			s2.Close()
			wantN := prefixEvents + bytes.Count(full[:cut], []byte("\n"))
			if tail := full[bytes.LastIndexByte(full[:cut], '\n')+1 : cut]; len(tail) > 0 && json.Valid(tail) {
				wantN++
			}
			if len(rec.Events) != wantN {
				t.Fatalf("segment %s cut %d: recovered %d events, want %d", seg, cut, len(rec.Events), wantN)
			}
			for i, ev := range rec.Events {
				if ev.Seq != int64(i)+1 || ev.Record.ID != i {
					t.Fatalf("segment %s cut %d: event %d = %+v", seg, cut, i, ev)
				}
			}
		}
		prefixEvents += bytes.Count(full, []byte("\n"))
	}
	if prefixEvents != n {
		t.Fatalf("segments hold %d events total, want %d", prefixEvents, n)
	}
}

// TestRotationNeverTearsMidGroup: a segment boundary always falls on a
// commit boundary — no segment ends inside a commit group.
func TestRotationNeverTearsMidGroup(t *testing.T) {
	fs := NewMemFS()
	s, _, err := OpenOptions(fs, Options{RotateBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if _, err := s.AppendBuffered(recordEv(i)); err != nil {
			t.Fatal(err)
		}
		if (i+1)%3 == 0 {
			if err := s.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Close()
	names, _ := fs.List()
	for _, nm := range names {
		if _, ok := parseName(nm, segPrefix, segSuffix); !ok {
			continue
		}
		lines := bytes.Count(fs.Bytes(nm), []byte("\n"))
		if lines%3 != 0 {
			t.Errorf("segment %s holds %d events — boundary inside a 3-event group", nm, lines)
		}
	}
}

// TestRotationRecoveryAndCompaction: rotated segments replay in order
// across a restart, and a checkpoint compacts every rotated segment it
// covers while the live one survives.
func TestRotationRecoveryAndCompaction(t *testing.T) {
	fs := NewMemFS()
	rec := obs.New()
	s, _, err := OpenOptions(fs, Options{RotateBytes: 1, Obs: rec}) // rotate after every commit
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, recordEv(0), recordEv(1), recordEv(2))
	if got := rec.Counter(MetricSegmentsRotated); got != 3 {
		t.Errorf("segments rotated = %d, want 3", got)
	}
	s.Close()

	s2, got, err := OpenOptions(fs, Options{RotateBytes: 1, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 3 {
		t.Fatalf("recovered %d events across rotated segments, want 3", len(got.Events))
	}
	if err := s2.WriteCheckpoint(&Checkpoint{Seq: 3}); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List()
	var segs []string
	for _, nm := range names {
		if _, ok := parseName(nm, segPrefix, segSuffix); ok {
			segs = append(segs, nm)
		}
	}
	if len(segs) != 1 || segs[0] != s2.curName {
		t.Errorf("segments after checkpoint: %v (live %s)", segs, s2.curName)
	}
	s2.Close()
}

// TestMidRotationCrash: a crash after the old segment closed but before
// anything landed in the new one recovers the full committed history.
func TestMidRotationCrash(t *testing.T) {
	fs := NewMemFS()
	s, _, err := OpenOptions(fs, Options{RotateBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, recordEv(0), recordEv(1)) // second append rotates; new segment empty
	crash, recd, err := Open(fs.CrashCopy())
	if err != nil {
		t.Fatalf("mid-rotation recovery: %v", err)
	}
	defer crash.Close()
	if len(recd.Events) != 2 || crash.NextSeq() != 3 {
		t.Fatalf("recovered %d events, next seq %d", len(recd.Events), crash.NextSeq())
	}
	s.Close()
}

// TestCommitterSticky: a write failure poisons the store through the
// committer — later appends and flushes fail instead of risking an ack
// for an event whose durability is unknown.
func TestCommitterSticky(t *testing.T) {
	fs := NewMemFS()
	s, _, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCommitter(s, GroupPolicy{Window: time.Millisecond})
	fs.FailAfterWrites(0)
	if _, _, err := c.AppendAsync(recordEv(0)); err == nil {
		t.Fatal("failed write accepted")
	}
	if _, _, err := c.AppendAsync(recordEv(1)); err == nil {
		t.Error("append after poison accepted")
	}
	if err := c.Flush(); err == nil {
		t.Error("Flush after poison reported success")
	}
	if err := c.WriteCheckpoint(&Checkpoint{Seq: 0}); err == nil {
		t.Error("checkpoint after poison accepted")
	}
	c.Close()
}

// TestCommitterWindowAck: an async append with no concurrent traffic is
// acked once the window elapses — it does not wait for a size cap that
// never fills.
func TestCommitterWindowAck(t *testing.T) {
	fs := NewMemFS()
	s, _, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCommitter(s, GroupPolicy{Window: 5 * time.Millisecond})
	defer c.Close()
	_, wait, err := c.AppendAsync(recordEv(0))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-wait:
		if err != nil {
			t.Fatalf("window ack: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("append never acked after the window elapsed")
	}
}

// TestCommitterCheckpointCoversBuffered: a checkpoint through the
// committer may cover events whose group has not synced yet — the
// snapshot is their durable copy, and recovery from a crash right after
// the checkpoint still yields them.
func TestCommitterCheckpointCoversBuffered(t *testing.T) {
	fs := NewMemFS()
	s, _, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCommitter(s, GroupPolicy{Window: time.Hour}) // group never due on its own
	_, wait, err := c.AppendAsync(recordEv(0))
	if err != nil {
		t.Fatal(err)
	}
	cp := &Checkpoint{Seq: 1, Records: []RecordData{{ID: 0, Fields: map[string]string{"name": "record 0"}}}}
	if err := c.WriteCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	_, recd, err := Open(fs.CrashCopy())
	if err != nil {
		t.Fatal(err)
	}
	if recd.Checkpoint == nil || recd.Checkpoint.Seq != 1 || len(recd.Checkpoint.Records) != 1 {
		t.Fatalf("checkpoint did not carry the buffered event: %+v", recd.Checkpoint)
	}
	if err := c.Close(); err != nil { // flushes the still-buffered group
		t.Fatal(err)
	}
	if err := <-wait; err != nil {
		t.Fatalf("buffered event never acked: %v", err)
	}
}

// TestRotationSyncsPipelinedTail reproduces the committer's pipelined
// interleaving at the store level: a group fsync runs outside the
// committer lock, an append of the NEXT group lands in the old segment
// meanwhile, and the segment rotates at the following commit boundary.
// The rotated-away segment's tail must survive a crash even though its
// own group has not synced — Close is not a durability barrier, so
// rotate has to sync the outgoing segment first. Without that, the
// tail event's ack would later ride the NEW segment's sync while its
// bytes die with the old one: an acked event lost, plus a sequence gap
// recovery refuses.
func TestRotationSyncsPipelinedTail(t *testing.T) {
	fs := NewMemFS()
	s, _, err := OpenOptions(fs, Options{RotateBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendBuffered(recordEv(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil { // the group fsync, as the flusher runs it out of lock
		t.Fatal(err)
	}
	if _, err := s.AppendBuffered(recordEv(1)); err != nil { // next group, same segment
		t.Fatal(err)
	}
	if err := s.rotate(); err != nil { // flusher re-locks: segment over RotateBytes
		t.Fatal(err)
	}
	if s.Pending() != 0 {
		t.Errorf("pending = %d after rotation synced the tail, want 0", s.Pending())
	}
	_, rec, err := Open(fs.CrashCopy())
	if err != nil {
		t.Fatalf("crash right after rotation: %v", err)
	}
	if len(rec.Events) != 2 {
		t.Fatalf("recovered %d events, want 2 — rotated segment tail lost", len(rec.Events))
	}
	s.Close()
}

// TestGroupCommitRotationDurability: under the batched committer with
// rotation on, acked ⟹ durable must hold at every moment — including
// for groups that straddle a rotation. After all acks arrive, a power
// loss (CrashCopy, before any Close) must recover every event.
func TestGroupCommitRotationDurability(t *testing.T) {
	fs := NewMemFS()
	s, _, err := OpenOptions(fs, Options{RotateBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCommitter(s, GroupPolicy{Window: 100 * time.Microsecond, MaxEvents: 4})
	const n = 48
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, wait, err := c.AppendAsync(recordEv(i))
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = <-wait
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	_, rec, err := Open(fs.CrashCopy()) // crash NOW: no Close-side sync to hide behind
	if err != nil {
		t.Fatalf("crash recovery with all events acked: %v", err)
	}
	if len(rec.Events) != n {
		t.Fatalf("recovered %d events, want all %d acked ones", len(rec.Events), n)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// flakyDirFS injects SyncDir failures: the n-th SyncDir call after
// arming fails.
type flakyDirFS struct {
	*MemFS
	failAt int
}

func (f *flakyDirFS) SyncDir() error {
	if f.failAt > 0 {
		f.failAt--
		if f.failAt == 0 {
			return fmt.Errorf("injected syncdir failure")
		}
	}
	return f.MemFS.SyncDir()
}

// TestSyncDirErrorCounted: a failed directory barrier during compaction
// is surfaced as the journal/syncdir_errors counter instead of
// vanishing — and the checkpoint itself still succeeds (removals are
// retried on the next one).
func TestSyncDirErrorCounted(t *testing.T) {
	fs := &flakyDirFS{MemFS: NewMemFS()}
	rec := obs.New()
	s, _, err := OpenOptions(fs, Options{Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, recordEv(0), recordEv(1))
	s.Close()
	s, _, err = OpenOptions(fs, Options{Obs: rec}) // old segment now compactable
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// WriteCheckpoint's SyncDir sequence from here: #1 installs the
	// checkpoint rename (must succeed), #2 is compaction's best-effort
	// barrier — fail that one.
	fs.failAt = 2
	if err := s.WriteCheckpoint(&Checkpoint{Seq: 2}); err != nil {
		t.Fatalf("checkpoint failed on a compaction-side syncdir error: %v", err)
	}
	if got := rec.Counter(MetricSyncDirErrors); got != 1 {
		t.Errorf("syncdir_errors = %d, want 1", got)
	}
}

// TestGroupCommitDirFS drives the batched committer against a real
// directory: concurrent appends, close, reopen, verify.
func TestGroupCommitDirFS(t *testing.T) {
	dir := t.TempDir() + "/journal"
	dfs, err := NewDirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := OpenOptions(dfs, Options{RotateBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCommitter(s, GroupPolicy{Window: time.Millisecond, MaxEvents: 4})
	const n = 24
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, wait, err := c.AppendAsync(recordEv(i))
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = <-wait
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	dfs2, _ := NewDirFS(dir)
	names, _ := dfs2.List()
	segCount := 0
	for _, nm := range names {
		if strings.HasPrefix(nm, segPrefix) {
			segCount++
		}
	}
	if segCount < 2 {
		t.Errorf("expected rotation on disk, found %d segments", segCount)
	}
	s2, recd, err := Open(dfs2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(recd.Events) != n {
		t.Fatalf("recovered %d events, want %d", len(recd.Events), n)
	}
}

// gatedFS wraps MemFS so file fsyncs can be held at a gate and
// counted: the ack-ordering test below freezes the flusher mid-sync
// and proves nothing is acknowledged until the group's one fsync
// completes.
type gatedFS struct {
	*MemFS
	mu    sync.Mutex
	gate  chan struct{} // non-nil: Sync blocks until this closes
	syncs int           // segment fsyncs issued
}

func (g *gatedFS) Create(name string) (File, error) {
	f, err := g.MemFS.Create(name)
	if err != nil {
		return nil, err
	}
	return &gatedFile{File: f, fs: g}, nil
}

// hold installs a gate future Syncs block on; the returned func opens it.
func (g *gatedFS) hold() func() {
	g.mu.Lock()
	defer g.mu.Unlock()
	ch := make(chan struct{})
	g.gate = ch
	return func() {
		g.mu.Lock()
		g.gate = nil
		g.mu.Unlock()
		close(ch)
	}
}

func (g *gatedFS) syncCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.syncs
}

type gatedFile struct {
	File
	fs *gatedFS
}

func (f *gatedFile) Sync() error {
	f.fs.mu.Lock()
	f.fs.syncs++
	gate := f.fs.gate
	f.fs.mu.Unlock()
	if gate != nil {
		<-gate
	}
	return f.File.Sync()
}

// TestExpediteSharedSync: concurrent batched appends expedited into one
// group share exactly one fsync, and no appender is acknowledged
// before that fsync completes. The window is effectively infinite, so
// Expedite is the only thing that can start the flush; the fsync is
// held at a gate while the test confirms every ack is still pending.
func TestExpediteSharedSync(t *testing.T) {
	gfs := &gatedFS{MemFS: NewMemFS()}
	s, _, err := Open(gfs)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCommitter(s, GroupPolicy{Window: time.Hour, MaxEvents: 1 << 20})

	const n = 32
	acks := make(chan int, n)
	var appended, done sync.WaitGroup
	appended.Add(n)
	done.Add(n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer done.Done()
			_, wait, err := c.AppendAsync(recordEv(i))
			appended.Done()
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = <-wait
			acks <- i
		}(i)
	}
	appended.Wait()
	base := gfs.syncCount()

	// Freeze the fsync path, then expedite: the flusher must take the
	// whole group and start its single sync...
	release := gfs.hold()
	c.Expedite()
	deadline := time.Now().Add(2 * time.Second)
	for gfs.syncCount() == base {
		if time.Now().After(deadline) {
			t.Fatal("Expedite never started the group fsync")
		}
		time.Sleep(time.Millisecond)
	}
	// ...and with the sync still in flight, not one ack may have fired.
	time.Sleep(20 * time.Millisecond)
	select {
	case i := <-acks:
		t.Fatalf("append %d acknowledged while the group fsync was still in flight", i)
	default:
	}

	release()
	done.Wait()
	close(acks)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	got := 0
	for range acks {
		got++
	}
	if got != n {
		t.Fatalf("%d acks for %d appends", got, n)
	}
	if syncs := gfs.syncCount() - base; syncs != 1 {
		t.Fatalf("%d fsyncs for one expedited group of %d events, want 1", syncs, n)
	}
	if d := s.DurableSeq(); d != n {
		t.Fatalf("DurableSeq = %d after the group sync, want %d", d, n)
	}
	// Everything acked is on "disk": a crash now loses nothing.
	_, rec, err := Open(gfs.MemFS.CrashCopy())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) != n {
		t.Fatalf("crash copy recovered %d events, want %d", len(rec.Events), n)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
