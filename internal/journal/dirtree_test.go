package journal

import (
	"path/filepath"
	"testing"
	"time"
)

// TestDirTreeRoundTrip exercises the production on-disk Tree: layout
// init over a real directory, an append/commit/reopen cycle through
// DirFS, file removal, and the committer's default-filled policy.
func TestDirTreeRoundTrip(t *testing.T) {
	tree, err := NewDirTree(filepath.Join(t.TempDir(), "journals"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLayout(tree, 1); err != nil {
		t.Fatal(err)
	}
	if e, err := ReadEpoch(tree.Root()); err != nil || e != 0 {
		t.Fatalf("fresh on-disk epoch = %d, %v", e, err)
	}

	sub, err := tree.Sub(ShardDirName(0))
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := Open(sub)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, recordEv(0))
	c := NewCommitter(s, GroupPolicy{Window: time.Millisecond})
	if p := c.Policy(); p.Window != time.Millisecond || p.MaxEvents <= 0 || p.MaxBytes <= 0 {
		t.Fatalf("Policy() not default-filled: %+v", p)
	}
	if _, ack, err := c.AppendAsync(recordEv(1)); err != nil {
		t.Fatal(err)
	} else if err := <-ack; err != nil {
		t.Fatal(err)
	}
	// Closing the committer flushes and closes the underlying store.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec, err := Open(sub)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) != 2 {
		t.Fatalf("recovered %d events from disk, want 2", len(rec.Events))
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Remove is the compaction primitive; on DirFS it must actually
	// delete from the directory listing.
	names, err := sub.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("no files in the shard dir after appends")
	}
	if err := sub.Remove(names[0]); err != nil {
		t.Fatal(err)
	}
	after, err := sub.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(names)-1 {
		t.Fatalf("Remove left %d files, want %d", len(after), len(names)-1)
	}
}
