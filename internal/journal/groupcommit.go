package journal

import (
	"sync"
	"time"
)

// GroupPolicy configures group commit: how long and how large a commit
// group may grow before its single fsync. The zero value disables
// batching entirely (Window == 0), preserving one-fsync-per-event
// behavior.
type GroupPolicy struct {
	// Window is the maximum time an appended event waits for its group
	// to sync. 0 disables group commit: every append syncs inline.
	Window time.Duration
	// MaxEvents closes a group early once it holds this many events;
	// 0 means DefaultMaxEvents.
	MaxEvents int
	// MaxBytes closes a group early once its events span this many WAL
	// bytes; 0 means DefaultMaxBytes.
	MaxBytes int64
}

// Default group-size caps, applied when the corresponding GroupPolicy
// field is zero.
const (
	// DefaultMaxEvents is the default per-group event cap.
	DefaultMaxEvents = 256
	// DefaultMaxBytes is the default per-group byte cap (1 MiB).
	DefaultMaxBytes = 1 << 20
)

// Enabled reports whether the policy batches at all.
func (p GroupPolicy) Enabled() bool { return p.Window > 0 }

func (p GroupPolicy) withDefaults() GroupPolicy {
	if p.MaxEvents <= 0 {
		p.MaxEvents = DefaultMaxEvents
	}
	if p.MaxBytes <= 0 {
		p.MaxBytes = DefaultMaxBytes
	}
	return p
}

// Committer serializes all access to a Store and batches appends into
// commit groups: concurrent AppendAsync calls accumulate in one group
// that is flushed with a single fsync when the policy's window elapses
// or a size cap fills, and every caller's channel resolves only once
// the group holding its event is durable. With a disabled policy it
// degrades to a plain pass-through (append + inline sync), so callers
// need exactly one code path for both modes.
//
// The fsync runs on a background flusher goroutine outside the
// committer lock, so appends of the NEXT group proceed while the
// current group syncs — this is what pipelines acknowledgments instead
// of stalling the writer behind every disk barrier.
type Committer struct {
	st  *Store
	pol GroupPolicy

	mu      sync.Mutex
	ready   *sync.Cond     // signals the flusher: group due or closing
	waiters []chan<- error // the open group, in append order
	nev     int            // appended events in the open group (Flush joiners excluded)
	bytes   int64          // WAL bytes spanned by the open group
	due     bool           // window elapsed or size cap hit
	closed  bool
	timer   *time.Timer
	done    chan struct{} // flusher exit
}

// NewCommitter wraps a store in a group-commit layer. With a disabled
// policy (Window == 0) no goroutine is started and appends sync
// inline. Callers must route every append and checkpoint through the
// committer once it exists — it owns the store.
func NewCommitter(st *Store, pol GroupPolicy) *Committer {
	c := &Committer{st: st, pol: pol.withDefaults()}
	if !pol.Enabled() {
		return c
	}
	c.ready = sync.NewCond(&c.mu)
	c.done = make(chan struct{})
	c.timer = time.AfterFunc(time.Hour, c.windowUp)
	c.timer.Stop()
	go c.run()
	return c
}

// Policy returns the (default-filled) policy the committer runs.
func (c *Committer) Policy() GroupPolicy { return c.pol }

// AppendAsync appends one event and returns its sequence number plus a
// channel that resolves when the event is durable (or failed). The
// append itself — id assignment, WAL write, in-order sequencing — has
// happened by return time; only durability is deferred. An immediate
// error means the event was NOT appended.
func (c *Committer) AppendAsync(ev Event) (int64, <-chan error, error) {
	ch := make(chan error, 1)
	if !c.pol.Enabled() {
		seq, err := c.st.Append(ev)
		if err != nil {
			return 0, nil, err
		}
		ch <- nil
		return seq, ch, nil
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, nil, ErrClosed
	}
	before := c.st.curBytes
	seq, err := c.st.AppendBuffered(ev)
	if err != nil {
		c.mu.Unlock()
		return 0, nil, err
	}
	if len(c.waiters) == 0 {
		c.due = false
		c.timer.Reset(c.pol.Window)
	}
	c.waiters = append(c.waiters, ch)
	c.nev++
	c.bytes += c.st.curBytes - before
	if c.nev >= c.pol.MaxEvents || c.bytes >= c.pol.MaxBytes {
		c.due = true
		c.ready.Signal()
	}
	c.mu.Unlock()
	return seq, ch, nil
}

// Append appends one event and blocks until it is durable — the
// synchronous convenience over AppendAsync. The open group is
// expedited rather than waiting out the window (a sequential caller
// gains nothing from the delay), but the fsync is still shared with
// every concurrent appender in the group.
func (c *Committer) Append(ev Event) (int64, error) {
	seq, wait, err := c.AppendAsync(ev)
	if err != nil {
		return 0, err
	}
	c.Expedite()
	if err := <-wait; err != nil {
		return 0, err
	}
	return seq, nil
}

// Expedite marks the open group due immediately, so its fsync starts
// now instead of when the window elapses. Callers about to block on an
// AppendAsync ack use it to trade batching for latency; it is a no-op
// with batching disabled or no open group.
func (c *Committer) Expedite() {
	if !c.pol.Enabled() {
		return
	}
	c.mu.Lock()
	if len(c.waiters) > 0 {
		c.due = true
		c.ready.Signal()
	}
	c.mu.Unlock()
}

// Flush commits everything appended so far and blocks until it is
// durable — the barrier resolve, checkpoint, and shutdown use.
func (c *Committer) Flush() error {
	if !c.pol.Enabled() {
		return c.st.Commit()
	}
	c.mu.Lock()
	if c.st.err != nil {
		err := c.st.err
		c.mu.Unlock()
		return err
	}
	if c.closed || (len(c.waiters) == 0 && c.st.pending == 0) {
		c.mu.Unlock()
		return nil
	}
	ch := make(chan error, 1)
	c.waiters = append(c.waiters, ch)
	c.due = true
	c.ready.Signal()
	c.mu.Unlock()
	return <-ch
}

// WriteCheckpoint installs a compacted snapshot through the committer
// lock, so compaction never races the flusher's sync or rotation. The
// checkpoint may cover buffered events — the snapshot itself is their
// durable copy, and their acks still wait for the group sync.
func (c *Committer) WriteCheckpoint(cp *Checkpoint) error {
	if !c.pol.Enabled() {
		return c.st.WriteCheckpoint(cp)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.WriteCheckpoint(cp)
}

// Close flushes outstanding events, stops the flusher, and closes the
// underlying store.
func (c *Committer) Close() error {
	ferr := c.Flush()
	if c.pol.Enabled() {
		c.mu.Lock()
		if !c.closed {
			c.closed = true
			c.timer.Stop()
			c.ready.Signal()
		}
		c.mu.Unlock()
		<-c.done
	}
	cerr := c.st.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// windowUp marks the open group due when its window timer fires.
func (c *Committer) windowUp() {
	c.mu.Lock()
	c.due = true
	c.ready.Signal()
	c.mu.Unlock()
}

// run is the flusher: it waits for a due group, takes it, syncs the
// live segment OUTSIDE the lock (appends into the next group proceed
// meanwhile), rotates at the commit boundary if the segment is full,
// and resolves the group's waiters in append order.
func (c *Committer) run() {
	defer close(c.done)
	for {
		c.mu.Lock()
		for !c.closed && !(c.due && len(c.waiters) > 0) {
			c.ready.Wait()
		}
		if len(c.waiters) == 0 && c.closed {
			c.mu.Unlock()
			return
		}
		group := c.waiters
		nev := c.nev
		c.waiters = nil
		c.nev = 0
		c.bytes = 0
		c.due = false
		err := c.st.err
		f := c.st.cur
		if f == nil && err == nil {
			err = ErrClosed
		}
		c.mu.Unlock()

		if err == nil {
			// Concurrent writes to the live segment are safe against
			// Sync for both os.File and MemFS; events appended after
			// this group was captured may ride along early, which only
			// makes them durable sooner than promised.
			err = f.Sync()
		}

		c.mu.Lock()
		if err != nil {
			if c.st.err == nil {
				c.st.err = err
			}
		} else {
			if nev <= c.st.pending {
				c.st.pending -= nev
			} else {
				c.st.pending = 0
			}
			// Everything appended before the sync is durable; events that
			// arrived after the group was captured may or may not have
			// ridden along, so the watermark conservatively excludes the
			// still-pending suffix.
			c.st.durable.Store(c.st.nextSeq - 1 - int64(c.st.pending))
			if c.st.opt.RotateBytes > 0 && c.st.curBytes >= c.st.opt.RotateBytes {
				// rotate syncs the outgoing segment's tail before
				// closing it, so events of the NEXT group that landed
				// there during the out-of-lock fsync above survive a
				// power loss (Close alone is no durability barrier);
				// they are still acked only by their own group's sync.
				if rerr := c.st.rotate(); rerr != nil {
					// The group's events ARE durable (the sync above
					// succeeded), so its waiters are still acked; the
					// store is poisoned for future appends.
					c.st.err = rerr
				}
			}
			c.st.opt.Obs.Count(MetricGroupCommits, 1)
			c.st.opt.Obs.Count(MetricGroupedEvents, int64(nev))
		}
		c.mu.Unlock()
		for _, w := range group {
			w <- err
		}
	}
}
