package journal

// IndexStats summarizes the blocking index at checkpoint time, so a
// recovered engine can sanity-check its rebuilt index against what the
// snapshot expects.
type IndexStats struct {
	// Records is the number of records the index held.
	Records int `json:"records"`
	// Postings is the total (token, record) entry count.
	Postings int `json:"postings"`
}

// Checkpoint is a compacted snapshot of engine state: the fold of all
// journal events with Seq ≤ its Seq. Recovery loads the newest
// checkpoint and replays only the events after it.
type Checkpoint struct {
	// Seq is the sequence number of the last event this snapshot covers.
	Seq int64 `json:"seq"`
	// Round counts completed resolve passes.
	Round int `json:"round"`
	// ResolvedUpTo is the count of resolved records: every id below it
	// is covered by Clusters.
	ResolvedUpTo int `json:"resolvedUpTo"`
	// Records are all records added so far, in id order.
	Records []RecordData `json:"records"`
	// Answers is the cached answer set, in first-crowdsourced order.
	Answers []AnswerData `json:"answers"`
	// Clusters is the current clustering in canonical order.
	Clusters [][]int `json:"clusters"`
	// Stats describes the blocking index at snapshot time.
	Stats IndexStats `json:"stats"`
}
