package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
)

// This file is the journal's replication surface: reading a committed
// tail without opening the journal for writing (the leader's stream
// source), appending events that keep their leader-assigned sequence
// numbers (the follower's write path), and the epoch stamp in meta.json
// that fences a deposed leader at failover.

// TailBatch is one chunk of a journal's event stream, as read by
// ReadTail.
type TailBatch struct {
	// Checkpoint is non-nil when the requested start sequence has been
	// compacted away: it is the newest checkpoint, and Events then
	// continue from Checkpoint.Seq+1. The receiver must install the
	// checkpoint before applying the events.
	Checkpoint *Checkpoint
	// Events are contiguous events ascending from the requested
	// sequence (or from Checkpoint.Seq+1 when a checkpoint is shipped).
	Events []Event
}

// errTailGap reports that the scan could not find a contiguous run
// starting at the wanted sequence — either compaction removed the
// prefix (ReadTail falls back to the checkpoint) or the journal is
// genuinely damaged.
type errTailGap struct {
	want, found int64
	file        string
}

func (e errTailGap) Error() string {
	return fmt.Sprintf("journal: tail gap: wanted seq %d, found %d in %s", e.want, e.found, e.file)
}

// ReadTail reads the journal in fs starting at sequence from
// (inclusive) without opening it for writing — the leader's streaming
// read path, safe to run concurrently with an appender because it only
// ever reads files the appender has already made durable. Only events
// with seq <= limit are returned; callers pass the store's DurableSeq
// so un-synced tail bytes are never shipped (limit <= 0 disables the
// bound, which is only safe on a quiesced journal). maxEvents caps the
// batch size (0 = unbounded). When events at from have been compacted
// into a checkpoint, the newest checkpoint is returned and Events
// resume after it. A torn final line in any segment is ignored,
// mirroring recovery; any interior gap or corruption is an error.
func ReadTail(fs FS, from, limit int64, maxEvents int) (TailBatch, error) {
	var tb TailBatch
	if from < 1 {
		from = 1
	}
	if limit > 0 && limit < from {
		return tb, nil
	}
	names, err := fs.List()
	if err != nil {
		return tb, fmt.Errorf("journal: listing dir: %w", err)
	}
	snapSeq := int64(-1)
	snapFile := ""
	var segs []string
	for _, n := range names {
		if seq, ok := parseName(n, snapPrefix, snapSuffix); ok && seq > snapSeq {
			snapSeq, snapFile = seq, n
		}
		if _, ok := parseName(n, segPrefix, segSuffix); ok {
			segs = append(segs, n)
		}
	}

	evs, err := scanTail(fs, segs, from, limit, maxEvents)
	if err == nil && (len(evs) > 0 || snapSeq < from) {
		tb.Events = evs
		return tb, nil
	}
	// The segments do not reach back to from. If the newest checkpoint
	// covers the cursor, ship it and continue past it; otherwise the
	// gap is real (or the error was I/O) and the caller must see it.
	var gap errTailGap
	if err != nil && !errors.As(err, &gap) {
		return tb, err
	}
	if snapFile == "" || snapSeq < from {
		if err != nil {
			return tb, err
		}
		return tb, errTailGap{want: from, found: -1, file: "(no segment)"}
	}
	b, rerr := fs.ReadFile(snapFile)
	if rerr != nil {
		return tb, fmt.Errorf("journal: reading %s: %w", snapFile, rerr)
	}
	cp := new(Checkpoint)
	if err := json.Unmarshal(b, cp); err != nil {
		return tb, fmt.Errorf("journal: corrupt checkpoint %s: %w", snapFile, err)
	}
	if cp.Seq != snapSeq {
		return tb, fmt.Errorf("journal: checkpoint %s claims seq %d", snapFile, cp.Seq)
	}
	evs, err = scanTail(fs, segs, snapSeq+1, limit, maxEvents)
	if err != nil {
		return tb, err
	}
	tb.Checkpoint = cp
	tb.Events = evs
	return tb, nil
}

// scanTail walks the named segments in order collecting the contiguous
// event run [from, limit] (limit <= 0 unbounded), at most maxEvents
// long. Finding an event beyond the expected next sequence is an
// errTailGap; a torn final line in a segment is skipped.
func scanTail(fs FS, segs []string, from, limit int64, maxEvents int) ([]Event, error) {
	var evs []Event
	next := from
	for _, n := range segs {
		b, err := fs.ReadFile(n)
		if err != nil {
			return nil, fmt.Errorf("journal: reading %s: %w", n, err)
		}
		lines := bytes.Split(b, []byte("\n"))
		for li, line := range lines {
			if len(line) == 0 {
				continue
			}
			var ev Event
			if err := json.Unmarshal(line, &ev); err != nil {
				if li == len(lines)-1 {
					break // torn tail, same as recovery
				}
				return nil, fmt.Errorf("journal: corrupt event at %s line %d: %w", n, li+1, err)
			}
			if ev.Seq < next {
				continue
			}
			if limit > 0 && ev.Seq > limit {
				return evs, nil
			}
			if ev.Seq != next {
				return nil, errTailGap{want: next, found: ev.Seq, file: n}
			}
			evs = append(evs, ev)
			next++
			if maxEvents > 0 && len(evs) >= maxEvents {
				return evs, nil
			}
		}
	}
	return evs, nil
}

// AppendShipped buffers one event replicated from a leader, keeping
// its leader-assigned sequence number. The sequence must be exactly
// the store's next one — followers skip already-applied events and
// refuse to jump ahead, which makes replication idempotent under
// duplicated or re-sent batches. Call Commit to make the batch durable
// before acknowledging it upstream.
func (s *Store) AppendShipped(ev Event) error {
	if s.err != nil {
		return s.err
	}
	if s.cur == nil {
		return ErrClosed
	}
	if ev.Seq != s.nextSeq {
		return fmt.Errorf("journal: shipped event seq %d, journal expects %d", ev.Seq, s.nextSeq)
	}
	_, err := s.AppendBuffered(ev)
	return err
}

// InstallCheckpoint durably installs a checkpoint shipped from a
// leader whose retained WAL no longer reaches this journal's cursor
// (the follower fell behind a compaction). The live segment is closed
// and a fresh one is opened just past the checkpoint, mirroring
// rotation, and segments the checkpoint covers are compacted away.
// The checkpoint must not regress the journal head, and no buffered
// events may be outstanding.
func (s *Store) InstallCheckpoint(cp *Checkpoint) error {
	if s.err != nil {
		return s.err
	}
	if s.cur == nil {
		return ErrClosed
	}
	if s.pending > 0 {
		return fmt.Errorf("journal: installing checkpoint over %d uncommitted events", s.pending)
	}
	if cp.Seq < s.nextSeq {
		return fmt.Errorf("journal: shipped checkpoint seq %d behind journal head %d", cp.Seq, s.nextSeq-1)
	}
	if err := s.installSnapshot(cp); err != nil {
		return err
	}
	if err := s.cur.Close(); err != nil {
		s.err = fmt.Errorf("journal: closing segment before checkpoint jump: %w", err)
		return s.err
	}
	s.nextSeq = cp.Seq + 1
	name := segName(s.nextSeq)
	f, err := s.fs.Create(name)
	if err != nil {
		s.cur = nil
		s.err = fmt.Errorf("journal: creating segment after checkpoint jump: %w", err)
		return s.err
	}
	s.cur, s.curName, s.curBytes = f, name, 0
	if err := s.fs.SyncDir(); err != nil {
		s.err = fmt.Errorf("journal: syncing dir after checkpoint jump: %w", err)
		return s.err
	}
	s.durable.Store(cp.Seq)
	s.compact(cp.Seq)
	return nil
}

// ReadEpoch returns the replication epoch stamped in the layout's
// meta.json (0 when the file or field is absent).
func ReadEpoch(root FS) (int64, error) {
	meta, found, err := readMeta(root)
	if err != nil || !found {
		return 0, err
	}
	return meta.Epoch, nil
}

// SetEpoch durably raises the stored epoch to at least epoch, leaving
// it untouched if it is already as high — epochs only ever move
// forward. It returns the stored value. The layout's meta.json must
// already exist (epochs belong to initialized layouts).
func SetEpoch(root FS, epoch int64) (int64, error) {
	meta, found, err := readMeta(root)
	if err != nil {
		return 0, err
	}
	if !found {
		return 0, fmt.Errorf("journal: no %s to stamp an epoch into", MetaName)
	}
	if meta.Epoch >= epoch {
		return meta.Epoch, nil
	}
	meta.Epoch = epoch
	if err := writeMeta(root, meta); err != nil {
		return 0, err
	}
	return epoch, nil
}

// FenceEpoch durably bumps the epoch in root's meta.json past its
// stored value, and to at least min, returning the new epoch. This is
// the fsync fence a promotion drives into the OLD leader's tree before
// the new leader takes writes: any process that later reopens that
// tree sees an epoch above the one it led at and must stand down. The
// write uses the same tmp + sync + rename + dir-sync discipline as
// every meta install, so the fence itself survives a power loss.
func FenceEpoch(root FS, min int64) (int64, error) {
	meta, found, err := readMeta(root)
	if err != nil {
		return 0, err
	}
	if !found {
		return 0, fmt.Errorf("journal: no %s to fence", MetaName)
	}
	e := meta.Epoch + 1
	if e < min {
		e = min
	}
	meta.Epoch = e
	if err := writeMeta(root, meta); err != nil {
		return 0, err
	}
	return e, nil
}
