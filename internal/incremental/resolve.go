package incremental

import (
	"context"
	"math/rand"
	"sort"

	"acd/internal/blocking"
	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/journal"
	"acd/internal/pruning"
	"acd/internal/record"
	"acd/internal/refine"
	"acd/internal/unionfind"
)

// ResolveStats reports what one resolve pass did and — more to the
// point — what it avoided doing.
type ResolveStats struct {
	// Round is the pass number, from 1.
	Round int
	// Records is the universe size the pass covered.
	Records int
	// Pending is how many candidate pairs had accumulated since the
	// previous pass.
	Pending int
	// InferredPositive counts pairs answered positively by transitive
	// closure (the primed star edges) — zero crowd questions.
	InferredPositive int
	// InferredNegative counts previously-crowdsourced pairs excluded
	// because their endpoints sit in different resolved clusters.
	InferredNegative int
	// ClosureEdges is the number of star edges injected.
	ClosureEdges int
	// Residual is the count of pending pairs with no cached answer —
	// the only pairs that could cost crowd questions this pass.
	Residual int
	// QuestionsAsked is the number of fresh crowd questions the pass
	// actually paid for (== the session's oracle invocations).
	QuestionsAsked int
	// Iterations is the number of crowd iterations (batches).
	Iterations int
	// Clusters is the cluster count after the pass.
	Clusters int
}

// AnswerSink receives every fresh crowd answer the instant a resolve
// pass obtains it, before the algorithms act on it — the WAL seam. The
// engine's sink journals into its own store; the shard router's sink
// routes each answer to the shard owning the pair (or to the router
// journal for cross-shard pairs). Sinks must be idempotent: priming
// guarantees the session never re-asks a cached pair, but a sink may
// still see a pair it already knows.
type AnswerSink func(p record.Pair, fc float64, source string) error

// ResolveState is the complete input of one resolve pass over a record
// universe, with no reference back to any particular engine.
// Engine.Resolve fills it from its own state; the shard router fills it
// from the union of its shards plus the cross-shard handoff queue. Both
// callers then share RunResolve verbatim, which is what makes the
// sharded system provably ask the same questions as the single engine.
type ResolveState struct {
	// N is the number of records in the universe (dense ids 0..N-1).
	N int
	// Round is this pass's number, from 1 (completed passes + 1).
	Round int
	// ResolvedUpTo is the count of records covered by the previous pass.
	ResolvedUpTo int
	// Clusters is the current clustering over 0..ResolvedUpTo-1 (and any
	// still-singleton newer records). RunResolve reads it and returns
	// the merged result; it never mutates the forest.
	Clusters *unionfind.Growable
	// Pending is the candidate pairs accumulated since the previous
	// pass, with their machine scores. Order is irrelevant: the pass
	// consumes them as a score map.
	Pending []blocking.ScoredPair
	// Answered lists every pair with a cached answer, in any order
	// (RunResolve canonicalizes). Values are read back through Answer.
	Answered []record.Pair
	// Answer looks up a cached answer.
	Answer func(p record.Pair) (fc float64, ok bool)
	// Sink receives fresh answers as they are produced.
	Sink AnswerSink
	// Ctx cancels the pass mid-crowd-iteration; nil never cancels.
	Ctx context.Context
}

// RunResolve computes one resolve pass: candidate pairs that transitive
// closure over resolved clusters can answer are inferred for free, and
// only the residual flows through a scoped PC-Pivot + PC-Refine pass
// seeded with the existing clustering. It returns the merged clustering
// in canonical form and the pass accounting; committing the effect
// (journaling and applying the clusters) is the caller's job, which is
// how the engine and the shard router share this code while keeping
// their own durability layouts.
//
// Cached answers are primed in canonical pair order (closure stars
// first), so the pass depends only on the *set* of cached answers — not
// on the order they arrived in. That independence is load-bearing: the
// shard router cannot reconstruct a global arrival order from per-shard
// journals, and with canonical priming it does not need to.
func RunResolve(cfg Config, st ResolveState) (clusters [][]int, stats ResolveStats, err error) {
	stats = ResolveStats{Round: st.Round, Records: st.N, Pending: len(st.Pending)}

	// Scoped candidate set: pending pairs at their machine scores…
	scores := make(cluster.Scores, len(st.Pending))
	for _, sp := range st.Pending {
		scores[sp.Pair] = sp.Score
		if _, known := st.Answer(sp.Pair); !known {
			stats.Residual++
		}
	}

	// …plus closure stars re-asserting each resolved cluster a pending
	// pair touches. Star edges are genuine candidates (score 1.0) primed
	// positive, so the algorithms see the cluster as already merged at
	// zero cost, and every pair they can ask stays inside the candidate
	// set (sources may reject non-candidates).
	incident := make(map[int]bool)
	for _, sp := range st.Pending {
		if lo := int(sp.Pair.Lo); lo < st.ResolvedUpTo {
			incident[st.Clusters.Find(lo)] = true
		}
	}
	var closure []record.Pair
	for _, set := range st.Clusters.Sets(st.ResolvedUpTo) {
		if len(set) < 2 || !incident[set[0]] {
			continue
		}
		for _, m := range set[1:] {
			p := record.MakePair(record.ID(set[0]), record.ID(m))
			scores[p] = 1.0
			closure = append(closure, p)
		}
	}
	stats.ClosureEdges = len(closure)
	stats.InferredPositive = len(closure)

	// Previously-answered pairs whose endpoints now sit in different
	// resolved clusters are the negative half of the inference: they are
	// simply not candidates this pass, so they cannot be re-asked.
	// Canonical pair order makes the walk (and the priming below)
	// independent of answer arrival order.
	answered := append([]record.Pair(nil), st.Answered...)
	sort.Slice(answered, func(i, j int) bool {
		if answered[i].Lo != answered[j].Lo {
			return answered[i].Lo < answered[j].Lo
		}
		return answered[i].Hi < answered[j].Hi
	})
	for _, p := range answered {
		lo, hi := int(p.Lo), int(p.Hi)
		if _, inScope := scores[p]; !inScope && hi < st.ResolvedUpTo && !st.Clusters.Same(lo, hi) {
			stats.InferredNegative++
		}
	}

	// tau = -1 keeps every scoped pair: the blocking indexes already
	// enforced the engine's threshold, and closure edges must never be
	// pruned.
	cands := pruning.FromScores(st.N, scores, -1)

	sess, src := newResolveSession(cfg, scores, st.Sink)
	if st.Ctx != nil {
		sess.Bind(st.Ctx)
	}
	// Prime closure edges first (their inferred 1.0 outranks any cached
	// answer), then every cached answer that is a scoped candidate, in
	// canonical pair order. Priming never touches pairs outside the
	// candidate set: the refinement budget counts every session-known
	// pair as a candidate.
	for _, p := range closure {
		sess.Prime(p, 1.0)
	}
	for _, p := range answered {
		if cands.Contains(p) {
			fc, _ := st.Answer(p)
			sess.Prime(p, fc)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed + int64(st.Round-1)))
	c, _ := core.PCPivotPerm(cands, sess, cfg.effectiveEpsilon(), core.NewPermutation(st.N, rng))
	if sess.Err() == nil && !cfg.SkipRefinement {
		c = refine.PCRefine(c, cands, sess, cfg.RefineX)
	}
	if err := sess.Err(); err != nil {
		return nil, stats, err
	}
	if src.err != nil {
		return nil, stats, src.err
	}
	stats.QuestionsAsked = sess.Stats().Pairs
	stats.Iterations = sess.Stats().Iterations

	// Merge the scoped result into the prior clustering monotonically:
	// resolved merges are never undone (the journal records effects, and
	// effects only accumulate).
	merged := st.Clusters.Clone()
	merged.Grow(st.N)
	for _, set := range c.Sets() {
		for _, m := range set[1:] {
			merged.Union(int(set[0]), int(m))
		}
	}
	clusters = merged.Sets(st.N)
	stats.Clusters = len(clusters)

	cfg.Obs.Count(MetricResolves, 1)
	cfg.Obs.Count(MetricInferredPositive, int64(stats.InferredPositive))
	cfg.Obs.Count(MetricInferredNegative, int64(stats.InferredNegative))
	cfg.Obs.Count(MetricClosureEdges, int64(stats.ClosureEdges))
	cfg.Obs.Count(MetricResidualPairs, int64(stats.Residual))
	if cfg.Obs.Tracing() {
		cfg.Obs.Trace("incremental.resolve", map[string]any{
			"round": stats.Round, "records": stats.Records,
			"pending": stats.Pending, "residual": stats.Residual,
			"closure": stats.ClosureEdges, "questions": stats.QuestionsAsked,
			"clusters": stats.Clusters,
		})
	}
	return clusters, stats, nil
}

// Resolve folds all pending records into the clustering via RunResolve,
// then commits the effect: the full clustering is journaled (WAL
// discipline) before being applied, and pending state is cleared.
//
// ctx cancels the pass mid-crowd-iteration: the engine state is left
// exactly as before the call (answers already received remain cached
// and journaled — they were paid for), and the error is returned.
func (e *Engine) Resolve(ctx context.Context) (ResolveStats, error) {
	n := len(e.records)
	clusters, stats, err := RunResolve(e.cfg, ResolveState{
		N:            n,
		Round:        e.round + 1,
		ResolvedUpTo: e.resolvedUpTo,
		Clusters:     e.uf,
		Pending:      e.pending,
		Answered:     e.answerOrder,
		Answer: func(p record.Pair) (float64, bool) {
			fc, ok := e.answers[p]
			return fc, ok
		},
		Sink: func(p record.Pair, fc float64, source string) error {
			if _, known := e.answers[p]; known {
				return nil // the session never re-asks, but stay idempotent anyway
			}
			return e.cacheAnswer(p, fc, source, true)
		},
		Ctx: ctx,
	})
	if err != nil {
		return stats, err
	}

	// Journal the effect before applying it (WAL discipline): a crash
	// here recovers to the pre-resolve state with all answers cached, so
	// re-running the pass is free.
	if err := e.commitResolve(stats.Round, clusters); err != nil {
		return stats, err
	}
	return stats, nil
}

// ApplyResolve journals and applies an externally computed resolve
// effect covering every record the engine currently holds. The shard
// router uses it to fan a global resolve's clustering out to each
// shard: the router computes once, and every shard commits its own
// restriction to its own journal.
func (e *Engine) ApplyResolve(round int, clusters [][]int) error {
	return e.commitResolve(round, clusters)
}

// commitResolve writes the resolve effect to the journal and installs
// it: clusters replace the union-find, pending pairs are cleared, and
// the round and resolved watermark advance.
func (e *Engine) commitResolve(round int, clusters [][]int) error {
	n := len(e.records)
	err := e.append(journal.Event{Type: journal.EventResolve, Resolve: &journal.ResolveData{
		Round: round, ResolvedUpTo: n, Clusters: clusters,
	}})
	if err != nil {
		return err
	}
	if err := e.applyClusters(clusters); err != nil {
		return err
	}
	e.round = round
	e.resolvedUpTo = n
	e.pending = nil
	e.autoCheckpoint()
	return nil
}
