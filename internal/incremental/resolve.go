package incremental

import (
	"context"
	"math/rand"

	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/journal"
	"acd/internal/pruning"
	"acd/internal/record"
	"acd/internal/refine"
)

// ResolveStats reports what one resolve pass did and — more to the
// point — what it avoided doing.
type ResolveStats struct {
	// Round is the pass number, from 1.
	Round int
	// Records is the universe size the pass covered.
	Records int
	// Pending is how many candidate pairs had accumulated since the
	// previous pass.
	Pending int
	// InferredPositive counts pairs answered positively by transitive
	// closure (the primed star edges) — zero crowd questions.
	InferredPositive int
	// InferredNegative counts previously-crowdsourced pairs excluded
	// because their endpoints sit in different resolved clusters.
	InferredNegative int
	// ClosureEdges is the number of star edges injected.
	ClosureEdges int
	// Residual is the count of pending pairs with no cached answer —
	// the only pairs that could cost crowd questions this pass.
	Residual int
	// QuestionsAsked is the number of fresh crowd questions the pass
	// actually paid for (== the session's oracle invocations).
	QuestionsAsked int
	// Iterations is the number of crowd iterations (batches).
	Iterations int
	// Clusters is the cluster count after the pass.
	Clusters int
}

// Resolve folds all pending records into the clustering: candidate
// pairs that transitive closure over resolved clusters can answer are
// inferred for free, and only the residual flows through a scoped
// PC-Pivot + PC-Refine pass seeded with the existing clustering. The
// resulting merges are journaled as an effect (the full clustering)
// before being applied, then pending state is cleared.
//
// ctx cancels the pass mid-crowd-iteration: the engine state is left
// exactly as before the call (answers already received remain cached
// and journaled — they were paid for), and the error is returned.
func (e *Engine) Resolve(ctx context.Context) (ResolveStats, error) {
	n := len(e.records)
	stats := ResolveStats{Round: e.round + 1, Records: n, Pending: len(e.pending)}

	// Scoped candidate set: pending pairs at their machine scores…
	scores := make(cluster.Scores, len(e.pending))
	for _, sp := range e.pending {
		scores[sp.Pair] = sp.Score
		if _, known := e.answers[sp.Pair]; !known {
			stats.Residual++
		}
	}

	// …plus closure stars re-asserting each resolved cluster a pending
	// pair touches. Star edges are genuine candidates (score 1.0) primed
	// positive, so the algorithms see the cluster as already merged at
	// zero cost, and every pair they can ask stays inside the candidate
	// set (sources may reject non-candidates).
	incident := make(map[int]bool)
	for _, sp := range e.pending {
		if lo := int(sp.Pair.Lo); lo < e.resolvedUpTo {
			incident[e.uf.find(lo)] = true
		}
	}
	var closure []record.Pair
	for _, set := range e.uf.sets(e.resolvedUpTo) {
		if len(set) < 2 || !incident[set[0]] {
			continue
		}
		for _, m := range set[1:] {
			p := record.MakePair(record.ID(set[0]), record.ID(m))
			scores[p] = 1.0
			closure = append(closure, p)
		}
	}
	stats.ClosureEdges = len(closure)
	stats.InferredPositive = len(closure)

	// Previously-answered pairs whose endpoints now sit in different
	// resolved clusters are the negative half of the inference: they are
	// simply not candidates this pass, so they cannot be re-asked.
	for _, p := range e.answerOrder {
		lo, hi := int(p.Lo), int(p.Hi)
		if _, inScope := scores[p]; !inScope && hi < e.resolvedUpTo && !e.uf.same(lo, hi) {
			stats.InferredNegative++
		}
	}

	// tau = -1 keeps every scoped pair: the index already enforced the
	// engine's threshold, and closure edges must never be pruned.
	cands := pruning.FromScores(n, scores, -1)

	sess, js := e.resolveSession(scores)
	if ctx != nil {
		sess.Bind(ctx)
	}
	// Prime closure edges first (their inferred 1.0 outranks any cached
	// answer), then every cached answer that is a scoped candidate — in
	// first-crowdsourced order, so refinement's histogram rebuild walks
	// the same sequence on every run and after every recovery. Priming
	// never touches pairs outside the candidate set: the refinement
	// budget counts every session-known pair as a candidate.
	for _, p := range closure {
		sess.Prime(p, 1.0)
	}
	for _, p := range e.answerOrder {
		if cands.Contains(p) {
			sess.Prime(p, e.answers[p])
		}
	}

	rng := rand.New(rand.NewSource(e.cfg.Seed + int64(e.round)))
	c, _ := core.PCPivotPerm(cands, sess, e.cfg.effectiveEpsilon(), core.NewPermutation(n, rng))
	if sess.Err() == nil && !e.cfg.SkipRefinement {
		c = refine.PCRefine(c, cands, sess, e.cfg.RefineX)
	}
	if err := sess.Err(); err != nil {
		return stats, err
	}
	if js.err != nil {
		return stats, js.err
	}
	stats.QuestionsAsked = sess.Stats().Pairs
	stats.Iterations = sess.Stats().Iterations

	// Merge the scoped result into the global clustering monotonically:
	// resolved merges are never undone (the journal records effects, and
	// effects only accumulate).
	merged := e.uf.clone()
	merged.grow(n)
	for _, set := range c.Sets() {
		for _, m := range set[1:] {
			merged.union(int(set[0]), int(m))
		}
	}
	clusters := merged.sets(n)
	stats.Clusters = len(clusters)

	// Journal the effect before applying it (WAL discipline): a crash
	// here recovers to the pre-resolve state with all answers cached, so
	// re-running the pass is free.
	err := e.append(journal.Event{Type: journal.EventResolve, Resolve: &journal.ResolveData{
		Round: stats.Round, ResolvedUpTo: n, Clusters: clusters,
	}})
	if err != nil {
		return stats, err
	}
	e.uf = merged
	e.round = stats.Round
	e.resolvedUpTo = n
	e.pending = nil

	e.cfg.Obs.Count(MetricResolves, 1)
	e.cfg.Obs.Count(MetricInferredPositive, int64(stats.InferredPositive))
	e.cfg.Obs.Count(MetricInferredNegative, int64(stats.InferredNegative))
	e.cfg.Obs.Count(MetricClosureEdges, int64(stats.ClosureEdges))
	e.cfg.Obs.Count(MetricResidualPairs, int64(stats.Residual))
	if e.cfg.Obs.Tracing() {
		e.cfg.Obs.Trace("incremental.resolve", map[string]any{
			"round": stats.Round, "records": stats.Records,
			"pending": stats.Pending, "residual": stats.Residual,
			"closure": stats.ClosureEdges, "questions": stats.QuestionsAsked,
			"clusters": stats.Clusters,
		})
	}
	if err := e.maybeCheckpoint(); err != nil {
		return stats, err
	}
	return stats, nil
}
