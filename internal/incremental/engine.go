package incremental

import (
	"fmt"
	"math"

	"acd/internal/blocking"
	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/journal"
	"acd/internal/obs"
	"acd/internal/pruning"
	"acd/internal/record"
	"acd/internal/unionfind"
)

// Record is one input record for Engine.Add: raw fields plus an optional
// ground-truth entity label (used only by evaluation, never by the
// algorithms).
type Record struct {
	// Fields are the record's named attribute values.
	Fields map[string]string
	// Entity is the optional ground-truth entity label ("" = unknown).
	Entity string
	// GID is the record's global id when the engine is one shard of a
	// sharded group (the router assigns dense global ids across shards).
	// Standalone engines leave it 0; it is journaled but never consulted
	// by the engine itself.
	GID int
}

// Config configures an Engine.
type Config struct {
	// Tau is the pruning threshold for the incremental blocking index.
	// Unless TauSet is true, the zero value means pruning.DefaultTau.
	Tau float64
	// TauSet marks Tau as explicit (mirrors pruning.Options).
	TauSet bool
	// Epsilon is PC-Pivot's wasted-pair budget; 0 means
	// core.DefaultEpsilon.
	Epsilon float64
	// RefineX is PC-Refine's budget divisor; 0 means refine.DefaultX.
	RefineX int
	// SkipRefinement stops each resolve after cluster generation.
	SkipRefinement bool
	// Seed derives the per-round pivot permutation (round r uses
	// Seed + r), so a run is reproducible given the same input order.
	Seed int64
	// Source answers crowd questions. Nil falls back to the machine
	// similarity scores themselves (provenance "machine") — useful for
	// crowd-free operation and tests.
	Source crowd.Source
	// Obs, when set, receives engine and crowd metrics. Nil records
	// nothing.
	Obs *obs.Recorder
	// CheckpointEvery writes a compacted snapshot after this many
	// journal events; 0 disables automatic checkpoints. Ignored without
	// a journal.
	CheckpointEvery int
	// Commit is the journal group-commit policy. The zero value keeps
	// one fsync per event; a nonzero Window batches concurrent appends
	// into a single fsync per group and pipelines acknowledgments.
	Commit journal.GroupPolicy
	// RotateBytes rotates the journal's live WAL segment once it grows
	// past this size; 0 disables rotation.
	RotateBytes int64
}

// EffectiveTau resolves the configured pruning threshold: Tau when set
// (explicitly via TauSet or by being nonzero), pruning.DefaultTau
// otherwise. The shard router uses it to build its global probe index
// with exactly the threshold its shard engines use.
func (c Config) EffectiveTau() float64 {
	if c.TauSet || c.Tau != 0 {
		return c.Tau
	}
	return pruning.DefaultTau
}

func (c Config) effectiveEpsilon() float64 {
	if c.Epsilon != 0 {
		return c.Epsilon
	}
	return core.DefaultEpsilon
}

// Engine is a live deduplication engine: Add records at any time,
// Resolve to fold pending records into the clustering, and read the
// current clustering with Clusters. Engines are not safe for concurrent
// use; callers (acdserve) serialize access.
type Engine struct {
	cfg    Config
	tau    float64
	store  *journal.Store
	commit *journal.Committer // non-nil exactly when store is

	records []journal.RecordData
	index   *blocking.IncrementalIndex
	pending []blocking.ScoredPair // candidate pairs not yet covered by a resolve
	uf      *unionfind.Growable

	round        int
	resolvedUpTo int // records with id below this are clustered

	answers     map[record.Pair]float64
	answerOrder []record.Pair // first-crowdsourced order, for deterministic priming
	answerSrc   map[record.Pair]string

	sinceCheckpoint int
	cpErr           error // latest automatic-checkpoint failure; cleared by a successful checkpoint
}

// New returns an engine with no journal: state lives only in memory.
func New(cfg Config) *Engine {
	tau := cfg.EffectiveTau()
	return &Engine{
		cfg:       cfg,
		tau:       tau,
		index:     blocking.NewIncrementalIndex(tau),
		uf:        &unionfind.Growable{},
		answers:   make(map[record.Pair]float64),
		answerSrc: make(map[record.Pair]string),
	}
}

// Open recovers an engine from the journal in fs (empty directories
// start fresh) and attaches the journal so every subsequent state
// transition is logged. Close the engine to release the journal.
func Open(cfg Config, fs journal.FS) (*Engine, error) {
	store, recovered, err := journal.OpenOptions(fs, journal.Options{
		RotateBytes: cfg.RotateBytes,
		Obs:         cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	e, err := Rebuild(cfg, recovered.Checkpoint, recovered.Events)
	if err != nil {
		store.Close()
		return nil, err
	}
	e.store = store
	e.commit = journal.NewCommitter(store, cfg.Commit)
	return e, nil
}

// Rebuild constructs an engine in the exact state described by a
// checkpoint (nil for none) plus the events after it — the pure replay
// function recovery and the crash-point tests share. The result has no
// journal attached.
func Rebuild(cfg Config, cp *journal.Checkpoint, events []journal.Event) (*Engine, error) {
	e := New(cfg)
	if cp != nil {
		if err := e.applyCheckpoint(cp); err != nil {
			return nil, err
		}
	}
	for _, ev := range events {
		if err := e.applyEvent(ev); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Close flushes outstanding commit groups and detaches and closes the
// journal, if any. The engine remains readable but further mutations
// fail.
func (e *Engine) Close() error {
	if e.store == nil {
		return nil
	}
	return e.commit.Close() // flushes, stops the flusher, closes the store
}

// Len returns the number of records the engine holds.
func (e *Engine) Len() int { return len(e.records) }

// Round returns the number of completed resolve passes.
func (e *Engine) Round() int { return e.round }

// ResolvedUpTo returns the count of records covered by the latest
// resolve pass; records with higher ids are still singleton-pending.
func (e *Engine) ResolvedUpTo() int { return e.resolvedUpTo }

// PendingPairs returns the number of candidate pairs awaiting the next
// resolve pass.
func (e *Engine) PendingPairs() int { return len(e.pending) }

// PendingScored returns a copy of the scored candidate pairs awaiting
// the next resolve pass. The shard router gathers these (translated to
// global ids) when assembling a global ResolveState.
func (e *Engine) PendingScored() []blocking.ScoredPair {
	return append([]blocking.ScoredPair(nil), e.pending...)
}

// AnsweredPairs returns a copy of every pair with a cached answer, in
// first-cached order. Values are read back through Answer.
func (e *Engine) AnsweredPairs() []record.Pair {
	return append([]record.Pair(nil), e.answerOrder...)
}

// Record returns the stored form of record id.
func (e *Engine) Record(id int) journal.RecordData { return e.records[id] }

// Add appends records to the engine, assigns their dense ids, journals
// them, and feeds them through the blocking index. All records are
// buffered into the journal's open commit group first and the group is
// expedited once before blocking, so a multi-record Add shares one
// fsync across the batch (and a single-record Add never waits out the
// commit window). It returns the assigned ids; on return every
// reported id is durable, and on error ids holds the durably committed
// prefix.
func (e *Engine) Add(recs ...Record) ([]int, error) {
	type pend struct {
		id   int
		wait <-chan error
	}
	pends := make([]pend, 0, len(recs))
	var appendErr error
	for _, r := range recs {
		id, wait, err := e.AddBuffered(r)
		if err != nil {
			appendErr = err
			break
		}
		pends = append(pends, pend{id: id, wait: wait})
	}
	if e.commit != nil {
		e.commit.Expedite()
	}
	ids := make([]int, 0, len(pends))
	for _, p := range pends {
		if err := <-p.wait; err != nil {
			return ids, err
		}
		ids = append(ids, p.id)
	}
	return ids, appendErr
}

// AddBuffered appends one record — id assignment, WAL write, in-memory
// apply — without blocking on durability. The returned channel
// resolves once the commit group holding the record's journal event
// has synced; only then may the record be acknowledged. An immediate
// error means nothing was applied. Without a journal (or with
// batching disabled) the channel is already resolved on return.
//
// The record is applied to in-memory state before it is durable (local
// id assignment is order-dependent, so apply cannot wait for the
// fsync); if the commit later fails, the journal is poisoned and every
// subsequent mutation fails — restart to recover a consistent state.
func (e *Engine) AddBuffered(r Record) (int, <-chan error, error) {
	data := journal.RecordData{ID: len(e.records), GID: r.GID, Fields: r.Fields, Entity: r.Entity}
	wait, err := e.appendAsync(journal.Event{Type: journal.EventRecordAdded, Record: &data})
	if err != nil {
		return 0, nil, err
	}
	e.applyRecord(data)
	e.cfg.Obs.Count(MetricRecordsAdded, 1)
	e.autoCheckpoint()
	return data.ID, wait, nil
}

// ValidateAnswer checks whether (lo,hi,fc) is an answer AddAnswer would
// accept, without changing any state. Callers with a batch of answers
// validate the whole batch first so a rejection leaves nothing applied.
func (e *Engine) ValidateAnswer(lo, hi int, fc float64) error {
	if lo < 0 || lo >= hi || hi >= len(e.records) {
		return fmt.Errorf("incremental: answer pair (%d,%d) outside the record universe [0,%d)", lo, hi, len(e.records))
	}
	if math.IsNaN(fc) || math.IsInf(fc, 0) || fc < 0 || fc > 1 {
		return fmt.Errorf("incremental: answer fc %v outside [0,1]", fc)
	}
	return nil
}

// AddAnswer feeds an externally-obtained crowd answer into the engine
// cache, so future resolves get it for free. The first answer for a
// pair wins; re-adding a known pair is a silent no-op (idempotent
// replay). Source labels provenance; "" means crowd.DefaultSource.
func (e *Engine) AddAnswer(lo, hi int, fc float64, source string) error {
	if err := e.ValidateAnswer(lo, hi, fc); err != nil {
		return err
	}
	p := record.MakePair(record.ID(lo), record.ID(hi))
	if _, known := e.answers[p]; known {
		return nil
	}
	return e.cacheAnswer(p, fc, source, true)
}

// AddAnswerBuffered is AddAnswer without blocking on durability: the
// answer is journaled and cached immediately, and the returned channel
// resolves once its commit group syncs — only then may the answer be
// acknowledged. Known pairs resolve instantly (idempotent no-op). An
// immediate error means nothing was applied.
func (e *Engine) AddAnswerBuffered(lo, hi int, fc float64, source string) (<-chan error, error) {
	if err := e.ValidateAnswer(lo, hi, fc); err != nil {
		return nil, err
	}
	p := record.MakePair(record.ID(lo), record.ID(hi))
	if _, known := e.answers[p]; known {
		ch := make(chan error, 1)
		ch <- nil
		return ch, nil
	}
	if source == crowd.DefaultSource {
		source = ""
	}
	wait, err := e.appendAsync(journal.Event{Type: journal.EventAnswer, Answer: &journal.AnswerData{
		Lo: int(p.Lo), Hi: int(p.Hi), FC: fc, Source: source,
	}})
	if err != nil {
		return nil, err
	}
	e.applyAnswer(p, fc, source)
	e.autoCheckpoint()
	return wait, nil
}

// Answer returns the cached crowd answer for a pair, if any.
func (e *Engine) Answer(lo, hi int) (fc float64, ok bool) {
	if lo < 0 || lo >= hi {
		return 0, false
	}
	fc, ok = e.answers[record.MakePair(record.ID(lo), record.ID(hi))]
	return fc, ok
}

// AnswerCount returns the number of cached crowd answers.
func (e *Engine) AnswerCount() int { return len(e.answers) }

// Clusters returns the current clustering over all records in canonical
// form (members ascending, clusters by first member). Records added
// since the last resolve appear as singletons.
func (e *Engine) Clusters() [][]int {
	e.uf.Grow(len(e.records))
	return e.uf.Sets(len(e.records))
}

// Snapshot captures the engine's full durable state as a checkpoint.
// Two engines are in identical state exactly when their snapshots are
// byte-identical after zeroing Seq (which tracks journal position, not
// engine state).
func (e *Engine) Snapshot() *journal.Checkpoint {
	var seq int64
	if e.store != nil {
		seq = e.store.NextSeq() - 1
	}
	answers := make([]journal.AnswerData, 0, len(e.answerOrder))
	for _, p := range e.answerOrder {
		answers = append(answers, journal.AnswerData{
			Lo: int(p.Lo), Hi: int(p.Hi),
			FC:     e.answers[p],
			Source: e.answerSrc[p],
		})
	}
	return &journal.Checkpoint{
		Seq:          seq,
		Round:        e.round,
		ResolvedUpTo: e.resolvedUpTo,
		Records:      append([]journal.RecordData(nil), e.records...),
		Answers:      answers,
		Clusters:     e.Clusters(),
		Stats:        journal.IndexStats{Records: e.index.Len(), Postings: e.index.Postings()},
	}
}

// Checkpoint writes a compacted snapshot to the journal now, letting it
// drop fully-covered WAL segments. No-op without a journal.
func (e *Engine) Checkpoint() error {
	if e.store == nil {
		return nil
	}
	if err := e.commit.WriteCheckpoint(e.Snapshot()); err != nil {
		return err
	}
	e.sinceCheckpoint = 0
	e.cpErr = nil
	e.cfg.Obs.Count(MetricCheckpoints, 1)
	return nil
}

// CheckpointErr returns the latest automatic-checkpoint failure, or nil.
// Auto-checkpoints piggyback on mutations whose own append and apply
// already succeeded, so their failure must not fail (or un-ack) the
// mutation — the WAL still holds every event a missed snapshot would
// have covered, and the checkpoint is retried on the next eligible
// mutation. The error is held here (and counted as
// MetricCheckpointErrors) instead of vanishing; a later successful
// checkpoint clears it.
func (e *Engine) CheckpointErr() error { return e.cpErr }

// Flush blocks until every buffered journal event is durable — the
// barrier the shard layer takes before a resolve or checkpoint. No-op
// without a journal or with batching disabled.
func (e *Engine) Flush() error {
	if e.store == nil {
		return nil
	}
	return e.commit.Flush()
}

// append journals one event and waits for durability; a no-op without
// a journal.
func (e *Engine) append(ev journal.Event) error {
	if e.store == nil {
		return nil
	}
	if _, err := e.commit.Append(ev); err != nil {
		return err
	}
	e.sinceCheckpoint++
	e.cfg.Obs.Count(MetricJournalEvents, 1)
	return nil
}

// appendAsync journals one event without blocking on durability,
// returning a channel resolved when its commit group syncs. Without a
// journal the returned channel is already resolved.
func (e *Engine) appendAsync(ev journal.Event) (<-chan error, error) {
	if e.store == nil {
		ch := make(chan error, 1)
		ch <- nil
		return ch, nil
	}
	_, wait, err := e.commit.AppendAsync(ev)
	if err != nil {
		return nil, err
	}
	e.sinceCheckpoint++
	e.cfg.Obs.Count(MetricJournalEvents, 1)
	return wait, nil
}

// autoCheckpoint writes the periodic compacted snapshot once enough
// events have accumulated. Failures are demoted to CheckpointErr (plus
// a metric): the caller's mutation is already journaled and applied, so
// surfacing the failure as the mutation's error would make callers
// treat a durable, applied event as failed (the shard group would skip
// its gid registration and wedge the shard). sinceCheckpoint is left
// untouched on failure, so the next eligible mutation retries.
func (e *Engine) autoCheckpoint() {
	if e.store == nil || e.cfg.CheckpointEvery <= 0 || e.sinceCheckpoint < e.cfg.CheckpointEvery {
		return
	}
	if err := e.Checkpoint(); err != nil {
		e.cpErr = err
		e.cfg.Obs.Count(MetricCheckpointErrors, 1)
	}
}

// applyRecord is the journal-free half of Add, shared with replay.
func (e *Engine) applyRecord(data journal.RecordData) {
	e.records = append(e.records, data)
	text := record.New(record.ID(data.ID), data.Fields).Text()
	e.pending = append(e.pending, e.index.Add(text)...)
	e.uf.Grow(len(e.records))
}

// cacheAnswer stores a fresh answer, journaling it first when asked to
// (WAL discipline: an answer is durable before anything depends on it).
func (e *Engine) cacheAnswer(p record.Pair, fc float64, source string, journalIt bool) error {
	if source == crowd.DefaultSource {
		source = ""
	}
	if journalIt {
		err := e.append(journal.Event{Type: journal.EventAnswer, Answer: &journal.AnswerData{
			Lo: int(p.Lo), Hi: int(p.Hi), FC: fc, Source: source,
		}})
		if err != nil {
			return err
		}
	}
	e.applyAnswer(p, fc, source)
	if journalIt {
		e.autoCheckpoint()
	}
	return nil
}

// applyAnswer is the journal-free half of answer caching. source must
// already be normalized ("" for the default crowd source).
func (e *Engine) applyAnswer(p record.Pair, fc float64, source string) {
	e.answers[p] = fc
	e.answerOrder = append(e.answerOrder, p)
	if source != "" {
		e.answerSrc[p] = source
	}
	e.cfg.Obs.Count(MetricAnswersCached, 1)
}

// answerSource returns a pair's provenance label (crowd.DefaultSource
// when it was never overridden).
func (e *Engine) answerSource(p record.Pair) string {
	if s, ok := e.answerSrc[p]; ok {
		return s
	}
	return crowd.DefaultSource
}

// newResolveSession builds the crowd session a resolve pass uses: the
// configured source (or the machine fallback over the scoped scores)
// wrapped so every fresh answer flows through the sink before the
// algorithms consume it.
func newResolveSession(cfg Config, scores map[record.Pair]float64, sink AnswerSink) (*crowd.Session, *sinkSource) {
	var inner crowd.Source
	label := ""
	if cfg.Source != nil {
		inner = cfg.Source
	} else {
		inner = machineSource{scores: scores}
		label = SourceMachine
	}
	ss := &sinkSource{inner: inner, label: label, sink: sink}
	sess := crowd.NewSession(ss)
	if cfg.Obs != nil {
		sess.SetRecorder(cfg.Obs)
	}
	return sess, ss
}

// SourceMachine is the provenance label for answers synthesized from
// machine similarity scores (Config.Source == nil).
const SourceMachine = "machine"

// sinkSource wraps the configured crowd source so that every oracle
// invocation is captured: the answer is pushed through the caller's
// AnswerSink (which journals and caches it) the moment it is produced,
// before the algorithm acts on it. A crash after the answer but before
// the resolve effect therefore recovers with the answer cached — and
// the next resolve primes it for free, preserving questions_answered ==
// oracle_invocations across restarts.
type sinkSource struct {
	inner crowd.Source
	label string
	sink  AnswerSink
	err   error // first sink failure, surfaced after the pass
}

// Score implements crowd.Source.
func (j *sinkSource) Score(p record.Pair) float64 {
	fc := j.inner.Score(p)
	j.record(p, fc)
	return fc
}

// ScoreBatch implements crowd.BatchSource, forwarding to the inner
// source's batch path when it has one. Scores are identical either way;
// batching only changes latency for live crowds.
func (j *sinkSource) ScoreBatch(pairs []record.Pair) []float64 {
	var scores []float64
	if bs, ok := j.inner.(crowd.BatchSource); ok {
		scores = bs.ScoreBatch(pairs)
	} else {
		scores = make([]float64, len(pairs))
		for i, p := range pairs {
			scores[i] = j.inner.Score(p)
		}
	}
	for i, p := range pairs {
		j.record(p, scores[i])
	}
	return scores
}

func (j *sinkSource) record(p record.Pair, fc float64) {
	if j.sink == nil {
		return
	}
	if err := j.sink(p, fc, j.label); err != nil && j.err == nil {
		j.err = err
	}
}

// Config implements crowd.Source.
func (j *sinkSource) Config() crowd.Config { return j.inner.Config() }

// VoteCount implements crowd.VoteCounter so session vote accounting
// matches a direct (unwrapped) run of the same source.
func (j *sinkSource) VoteCount(p record.Pair) int {
	if vc, ok := j.inner.(crowd.VoteCounter); ok {
		return vc.VoteCount(p)
	}
	return j.inner.Config().Workers
}

// Bill implements crowd.Biller, forwarding to the inner source so a
// self-billing marketplace's per-backend accounting survives the sink
// wrapper instead of being re-derived from the uniform Config() rate.
func (j *sinkSource) Bill() (hits, cents int, ok bool) {
	if b, ok := j.inner.(crowd.Biller); ok {
		return b.Bill()
	}
	return 0, 0, false
}

// SetRecorder implements crowd.RecorderSetter, pushing the session's
// recorder down to the wrapped source.
func (j *sinkSource) SetRecorder(rec *obs.Recorder) {
	if s, ok := j.inner.(crowd.RecorderSetter); ok {
		s.SetRecorder(rec)
	}
}

// Recorder implements crowd.RecorderCarrier.
func (j *sinkSource) Recorder() *obs.Recorder {
	if c, ok := j.inner.(crowd.RecorderCarrier); ok {
		return c.Recorder()
	}
	return nil
}

// machineSource is the crowd-free fallback: it answers a pair with its
// machine similarity score from the scoped candidate set (0 for
// non-candidates, matching the paper's pruning convention).
type machineSource struct {
	scores map[record.Pair]float64
}

// Score implements crowd.Source.
func (m machineSource) Score(p record.Pair) float64 { return m.scores[p] }

// Config implements crowd.Source.
func (m machineSource) Config() crowd.Config { return crowd.ThreeWorker(0) }

var _ crowd.BatchSource = (*sinkSource)(nil)
var _ crowd.VoteCounter = (*sinkSource)(nil)
var _ crowd.Biller = (*sinkSource)(nil)

// Evaluate scores the engine's current clustering against the journaled
// ground-truth entity labels (records with empty labels are each their
// own entity). It returns precision, recall and F1 over record pairs.
func (e *Engine) Evaluate() (precision, recall, f1 float64) {
	var tp, fp, fn float64
	n := len(e.records)
	e.uf.Grow(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			same := e.uf.Same(i, j)
			ei, ej := e.records[i].Entity, e.records[j].Entity
			truth := ei != "" && ei == ej
			switch {
			case same && truth:
				tp++
			case same && !truth:
				fp++
			case !same && truth:
				fn++
			}
		}
	}
	if tp+fp > 0 {
		precision = tp / (tp + fp)
	}
	if tp+fn > 0 {
		recall = tp / (tp + fn)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}
