package incremental

// unionFind is a growable min-root disjoint-set forest: the root of
// every set is its smallest member, so canonical cluster listings fall
// out of the structure with no extra bookkeeping. (The fixed-size
// internal/unionfind is sized at construction; the engine's universe
// grows with every Add.)
type unionFind struct {
	parent []int
}

// grow extends the forest with singletons up to n elements.
func (u *unionFind) grow(n int) {
	for len(u.parent) < n {
		u.parent = append(u.parent, len(u.parent))
	}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if ra < rb {
		u.parent[rb] = ra
	} else {
		u.parent[ra] = rb
	}
}

func (u *unionFind) same(a, b int) bool { return u.find(a) == u.find(b) }

func (u *unionFind) clone() *unionFind {
	return &unionFind{parent: append([]int(nil), u.parent...)}
}

// sets returns the partition of 0..n-1 in canonical form: members
// ascending within each set, sets ordered by their smallest member.
func (u *unionFind) sets(n int) [][]int {
	bySet := make(map[int][]int)
	var roots []int
	for i := 0; i < n; i++ {
		r := u.find(i)
		if _, ok := bySet[r]; !ok {
			roots = append(roots, r)
		}
		bySet[r] = append(bySet[r], i)
	}
	// Min-root makes every root its set's first member, and roots were
	// discovered in ascending order of that first member.
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, bySet[r])
	}
	return out
}
