package incremental

import (
	"fmt"

	"acd/internal/journal"
)

// This file is the engine's replication surface: a follower's warm
// standby folds a leader's journal events into volatile engines through
// these entry points, reusing exactly the recovery fold so standby
// state is byte-identical to what a restart would rebuild.

// ApplyLogged folds one replicated journal event into the engine — the
// follower standby's apply-from-stream entry point, identical to
// recovery's per-event fold. Only volatile engines (no attached
// journal) accept it: applying a shipped event to a journaled engine
// would mutate state the engine never logged.
func (e *Engine) ApplyLogged(ev journal.Event) error {
	if e.store != nil {
		return fmt.Errorf("incremental: ApplyLogged on a journaled engine")
	}
	return e.applyEvent(ev)
}

// ApplyLoggedCheckpoint installs a shipped checkpoint into an empty
// volatile engine — the follower standby's catch-up path when the
// leader compacted past its cursor.
func (e *Engine) ApplyLoggedCheckpoint(cp *journal.Checkpoint) error {
	if e.store != nil {
		return fmt.Errorf("incremental: ApplyLoggedCheckpoint on a journaled engine")
	}
	if len(e.records) != 0 || e.round != 0 || len(e.answers) != 0 {
		return fmt.Errorf("incremental: checkpoint applied to a non-empty engine")
	}
	return e.applyCheckpoint(cp)
}

// DurableSeq returns the journal's durable watermark: every event at or
// below it is on stable storage. 0 without a journal. Safe to call
// concurrently with mutations — replication streamers poll it.
func (e *Engine) DurableSeq() int64 {
	if e.store == nil {
		return 0
	}
	return e.store.DurableSeq()
}
