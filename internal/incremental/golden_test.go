package incremental

import (
	"context"
	"reflect"
	"strconv"
	"testing"

	"acd/internal/cluster"
	"acd/internal/core"
	"acd/internal/crowd"
	"acd/internal/dataset"
	"acd/internal/obs"
	"acd/internal/pruning"
	"acd/internal/record"
)

// TestPrefixSplitGolden is the tentpole guarantee: feeding the
// Restaurant dataset in two halves through the incremental engine
// reaches the batch pipeline's F1 envelope while the second wave asks
// strictly fewer crowd questions than a from-scratch batch run — the
// saved questions are exactly what transitive inference over the
// wave-one clustering answers for free.
func TestPrefixSplitGolden(t *testing.T) {
	ds := dataset.Restaurant(1)
	truth := ds.TruthFn()
	n := len(ds.Records)
	half := n / 2
	const seed = 42

	// Batch reference over the full dataset: the answer file F covers
	// every full-set candidate pair, so both pipelines replay the same
	// simulated crowd.
	candsAll := pruning.Prune(ds.Records, pruning.Options{})
	answers := crowd.BuildAnswers(candsAll.PairList(), truth, crowd.UniformDifficulty(0), crowd.ThreeWorker(7))
	recBatch := obs.New()
	outBatch := core.ACD(candsAll, answers, core.Config{Seed: seed, Obs: recBatch})
	if outBatch.Err != nil {
		t.Fatal(outBatch.Err)
	}
	f1Batch := cluster.Evaluate(outBatch.Clusters, ds.Truth()).F1
	qBatch := outBatch.Stats.Pairs
	if qBatch == 0 || f1Batch < 0.8 {
		t.Fatalf("batch reference degenerate: %d questions, F1 %.3f", qBatch, f1Batch)
	}

	// Incremental: same answers, same seed, two waves.
	recInc := obs.New()
	eng := New(Config{Source: answers, Obs: recInc, Seed: seed})
	addRange := func(lo, hi int) {
		t.Helper()
		for _, r := range ds.Records[lo:hi] {
			if _, err := eng.Add(Record{Fields: r.Fields, Entity: strconv.Itoa(r.Entity)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	addRange(0, half)
	st1, err := eng.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	q1 := recInc.Counter(crowd.MetricQuestionsAnswered)

	// Wave one had no prior state, so it must reproduce a batch run over
	// the prefix exactly: same candidate set, same permutation seed,
	// same answers — same clustering, question for question.
	// (The reference run gets its own recorder: the shared AnswerSet is a
	// RecorderCarrier, and letting this run adopt recInc would pollute
	// the incremental question counter.)
	candsPre := pruning.Prune(ds.Records[:half], pruning.Options{})
	outPre := core.ACD(candsPre, answers, core.Config{Seed: seed, Obs: obs.New()})
	if outPre.Err != nil {
		t.Fatal(outPre.Err)
	}
	preSets := toIntSets(outPre.Clusters.Sets())
	if got := eng.Clusters(); !reflect.DeepEqual(got, preSets) {
		t.Errorf("wave-1 clustering differs from batch-over-prefix")
	}
	if int(q1) != outPre.Stats.Pairs {
		t.Errorf("wave 1 asked %d questions, batch-over-prefix asked %d", q1, outPre.Stats.Pairs)
	}

	addRange(half, n)
	st2, err := eng.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	q2 := recInc.Counter(crowd.MetricQuestionsAnswered) - q1

	// The headline claim: wave 2 asks strictly fewer questions than
	// redoing the whole dataset from scratch.
	if q2 >= int64(qBatch) {
		t.Errorf("wave 2 asked %d questions, batch asks %d — no incremental saving", q2, qBatch)
	}
	// And the saving is driven by inference, not by luck: wave 2 both
	// primed closure edges and excluded resolved non-candidates.
	if st2.ClosureEdges == 0 || st2.InferredPositive == 0 {
		t.Errorf("wave 2 inferred nothing: %+v", st2)
	}
	if st1.Records != half || st2.Records != n {
		t.Errorf("wave stats: %+v / %+v", st1, st2)
	}

	// F1 envelope: the incremental result must hold the batch quality.
	_, _, f1Inc := eng.Evaluate()
	if f1Inc < f1Batch-0.02 {
		t.Errorf("incremental F1 %.4f below batch envelope (batch %.4f)", f1Inc, f1Batch)
	}
	t.Logf("batch: %d questions, F1 %.4f; incremental: %d+%d questions, F1 %.4f (closure %d, inferred- %d)",
		qBatch, f1Batch, q1, q2, f1Inc, st2.ClosureEdges, st2.InferredNegative)

	// Accounting invariant: the engine's sessions are the only path to
	// the oracle, so distinct questions == oracle invocations.
	if qa, oi := recInc.Counter(crowd.MetricQuestionsAnswered), recInc.Counter(crowd.MetricOracleInvocations); qa != oi {
		t.Errorf("questions_answered %d != oracle_invocations %d", qa, oi)
	}
}

func toIntSets(sets [][]record.ID) [][]int {
	out := make([][]int, len(sets))
	for i, s := range sets {
		out[i] = make([]int, len(s))
		for j, id := range s {
			out[i][j] = int(id)
		}
	}
	return out
}
