package incremental

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"strconv"
	"testing"

	"acd/internal/dataset"
	"acd/internal/journal"
	"acd/internal/obs"
	"acd/internal/record"
)

// six records: {0,1} and {2,3} are near-duplicates, 4 and 5 are loners.
func sixRecords() []Record {
	texts := []string{
		"golden dragon palace chinese broadway",
		"golden dragon palace chinese broadway ave",
		"chez olive bistro french sunset blvd",
		"chez olive bistro french sunset",
		"harbor seafood grill market st",
		"casa pepper mexican mission dr",
	}
	out := make([]Record, len(texts))
	for i, s := range texts {
		out[i] = Record{Fields: map[string]string{"text": s}}
	}
	return out
}

func snapJSON(t *testing.T, e *Engine) string {
	t.Helper()
	cp := e.Snapshot()
	cp.Seq = 0 // journal position, not engine state
	b, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestEngineMachineFallback(t *testing.T) {
	e := New(Config{Seed: 1})
	ids, err := e.Add(sixRecords()...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []int{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("ids = %v", ids)
	}
	if e.Len() != 6 || e.ResolvedUpTo() != 0 || e.Round() != 0 {
		t.Fatalf("state = %d/%d/%d", e.Len(), e.ResolvedUpTo(), e.Round())
	}
	if e.PendingPairs() == 0 {
		t.Fatal("no pending pairs for near-duplicate records")
	}
	st, err := e.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1}, {2, 3}, {4}, {5}}
	if got := e.Clusters(); !reflect.DeepEqual(got, want) {
		t.Fatalf("clusters = %v, want %v", got, want)
	}
	if st.Round != 1 || e.ResolvedUpTo() != 6 || e.PendingPairs() != 0 {
		t.Errorf("post-resolve state: %+v, upTo %d, pending %d", st, e.ResolvedUpTo(), e.PendingPairs())
	}
	if st.QuestionsAsked == 0 {
		t.Errorf("machine fallback answered no questions: %+v", st)
	}

	// A second wave: one more listing of the first restaurant merges
	// into the existing cluster; the cluster's internal pair is not
	// re-asked (closure edge primed).
	if _, err := e.Add(Record{Fields: map[string]string{"text": "golden dragon palace chinese broadway blvd"}}); err != nil {
		t.Fatal(err)
	}
	st2, err := e.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want2 := [][]int{{0, 1, 6}, {2, 3}, {4}, {5}}
	if got := e.Clusters(); !reflect.DeepEqual(got, want2) {
		t.Fatalf("wave-2 clusters = %v, want %v", got, want2)
	}
	if st2.ClosureEdges == 0 || st2.InferredPositive == 0 {
		t.Errorf("wave 2 inferred nothing: %+v", st2)
	}
	if e.Round() != 2 {
		t.Errorf("round = %d", e.Round())
	}
}

func TestResolveEmptyEngine(t *testing.T) {
	e := New(Config{})
	st, err := e.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 0 || st.Clusters != 0 || len(e.Clusters()) != 0 {
		t.Errorf("empty resolve: %+v, clusters %v", st, e.Clusters())
	}
}

func TestAddAnswerValidation(t *testing.T) {
	e := New(Config{})
	if _, err := e.Add(sixRecords()...); err != nil {
		t.Fatal(err)
	}
	for name, call := range map[string]func() error{
		"negative lo":   func() error { return e.AddAnswer(-1, 2, 0.5, "") },
		"non-canonical": func() error { return e.AddAnswer(3, 2, 0.5, "") },
		"self pair":     func() error { return e.AddAnswer(2, 2, 0.5, "") },
		"beyond n":      func() error { return e.AddAnswer(0, 6, 0.5, "") },
		"nan":           func() error { return e.AddAnswer(0, 1, math.NaN(), "") },
		"inf":           func() error { return e.AddAnswer(0, 1, math.Inf(1), "") },
		"above one":     func() error { return e.AddAnswer(0, 1, 1.5, "") },
		"below zero":    func() error { return e.AddAnswer(0, 1, -0.5, "") },
	} {
		if call() == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if err := e.AddAnswer(0, 1, 0.9, "client"); err != nil {
		t.Fatal(err)
	}
	// Keep-first: a second answer for the same pair is ignored.
	if err := e.AddAnswer(0, 1, 0.1, ""); err != nil {
		t.Fatal(err)
	}
	if fc, ok := e.Answer(0, 1); !ok || fc != 0.9 {
		t.Errorf("Answer(0,1) = %v,%v, want 0.9", fc, ok)
	}
	if _, ok := e.Answer(2, 3); ok {
		t.Error("unknown pair reported known")
	}
	if e.AnswerCount() != 1 {
		t.Errorf("AnswerCount = %d", e.AnswerCount())
	}
	if src := e.answerSource(record.MakePair(0, 1)); src != "client" {
		t.Errorf("source = %q", src)
	}
}

func TestResolveCancelled(t *testing.T) {
	e := New(Config{Seed: 1})
	if _, err := e.Add(sixRecords()...); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pendingBefore := e.PendingPairs()
	if _, err := e.Resolve(ctx); err == nil {
		t.Fatal("cancelled resolve succeeded")
	}
	if e.Round() != 0 || e.ResolvedUpTo() != 0 || e.PendingPairs() != pendingBefore {
		t.Errorf("cancelled resolve mutated state: round %d upTo %d pending %d",
			e.Round(), e.ResolvedUpTo(), e.PendingPairs())
	}
	// The engine is still usable: a healthy context completes the pass.
	if _, err := e.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e.Round() != 1 {
		t.Errorf("round = %d after recovery from cancellation", e.Round())
	}
}

func TestJournalRoundTrip(t *testing.T) {
	fs := journal.NewMemFS()
	cfg := Config{Seed: 3}
	e, err := Open(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Add(sixRecords()...); err != nil {
		t.Fatal(err)
	}
	if err := e.AddAnswer(4, 5, 0.0, "client"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := snapJSON(t, e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := snapJSON(t, e2); got != want {
		t.Fatalf("recovered state differs:\n got %s\nwant %s", got, want)
	}
	// The recovered engine keeps working: add one more duplicate and
	// resolve again.
	if _, err := e2.Add(Record{Fields: map[string]string{"text": "harbor seafood grill market st s"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := e2.Clusters(); !reflect.DeepEqual(got, [][]int{{0, 1}, {2, 3}, {4, 6}, {5}}) {
		t.Fatalf("post-recovery clusters = %v", got)
	}
}

// TestCheckpointRecovery: automatic checkpoints compact the journal and
// recovery from checkpoint + tail events lands in the identical state.
func TestCheckpointRecovery(t *testing.T) {
	fs := journal.NewMemFS()
	cfg := Config{Seed: 5, CheckpointEvery: 4}
	e, err := Open(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Restaurant(2)
	for _, r := range ds.Records[:40] {
		if _, err := e.Add(Record{Fields: r.Fields, Entity: strconv.Itoa(r.Entity)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := snapJSON(t, e)
	e.Close()

	names, _ := fs.List()
	hasSnap := false
	for _, n := range names {
		if len(n) > 5 && n[:5] == "snap-" {
			hasSnap = true
		}
	}
	if !hasSnap {
		t.Fatalf("CheckpointEvery=4 wrote no snapshot; files: %v", names)
	}

	e2, err := Open(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := snapJSON(t, e2); got != want {
		t.Fatalf("checkpoint recovery differs:\n got %s\nwant %s", got, want)
	}
}

// TestAutoCheckpointFailureKeepsMutationsAcked: an automatic-checkpoint
// failure must not fail the mutation that triggered it — the record's
// append and apply already succeeded, and callers (the shard group's
// gid bookkeeping) must see it acked. The failure lands in
// CheckpointErr and a counter instead, and the next eligible mutation
// retries the checkpoint.
func TestAutoCheckpointFailureKeepsMutationsAcked(t *testing.T) {
	fs := journal.NewMemFS()
	rec := obs.New()
	e, err := Open(Config{Seed: 1, CheckpointEvery: 2, Obs: rec}, fs)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	six := sixRecords()
	if _, err := e.Add(six[0]); err != nil {
		t.Fatal(err)
	}
	// The next write (record 1's WAL append) succeeds; the one after it
	// (the checkpoint's tmp file) fails.
	fs.FailAfterWrites(1)
	id, wait, err := e.AddBuffered(six[1])
	if err != nil {
		t.Fatalf("AddBuffered surfaced the auto-checkpoint failure as an append error: %v", err)
	}
	if err := <-wait; err != nil {
		t.Fatalf("durable record not acked: %v", err)
	}
	if id != 1 {
		t.Fatalf("id = %d, want 1", id)
	}
	if e.CheckpointErr() == nil {
		t.Error("auto-checkpoint failure vanished: CheckpointErr is nil")
	}
	if got := rec.Counter(MetricCheckpointErrors); got != 1 {
		t.Errorf("checkpoint_errors = %d, want 1", got)
	}
	// The engine keeps accepting mutations; the retried checkpoint
	// succeeds and clears the sticky error.
	if _, err := e.Add(six[2]); err != nil {
		t.Fatalf("add after auto-checkpoint failure: %v", err)
	}
	if err := e.CheckpointErr(); err != nil {
		t.Errorf("sticky error survived a successful checkpoint: %v", err)
	}
	if got := rec.Counter(MetricCheckpoints); got < 1 {
		t.Errorf("checkpoints = %d, want ≥ 1 (the retry)", got)
	}
}

func TestRebuildRejectsCorruptHistory(t *testing.T) {
	if _, err := Rebuild(Config{}, nil, []journal.Event{
		{Seq: 1, Type: journal.EventRecordAdded, Record: &journal.RecordData{ID: 5}},
	}); err == nil {
		t.Error("out-of-order record id accepted")
	}
	if _, err := Rebuild(Config{}, nil, []journal.Event{
		{Seq: 1, Type: "bogus"},
	}); err == nil {
		t.Error("unknown event type accepted")
	}
	if _, err := Rebuild(Config{}, nil, []journal.Event{
		{Seq: 1, Type: journal.EventResolve, Resolve: &journal.ResolveData{Round: 1, ResolvedUpTo: 3}},
	}); err == nil {
		t.Error("resolve covering absent records accepted")
	}
	if _, err := Rebuild(Config{}, &journal.Checkpoint{Seq: 1, ResolvedUpTo: 9}, nil); err == nil {
		t.Error("checkpoint with resolvedUpTo beyond records accepted")
	}
	if _, err := Rebuild(Config{}, &journal.Checkpoint{
		Seq:     1,
		Records: []journal.RecordData{{ID: 0, Fields: map[string]string{"a": "b"}}},
		Stats:   journal.IndexStats{Records: 99},
	}, nil); err == nil {
		t.Error("checkpoint with wrong index stats accepted")
	}
}
