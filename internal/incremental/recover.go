package incremental

import (
	"fmt"

	"acd/internal/blocking"
	"acd/internal/journal"
	"acd/internal/record"
	"acd/internal/unionfind"
)

// applyCheckpoint installs a compacted snapshot: records re-feed the
// blocking index (pending pairs are derived, not stored — every pending
// pair has its Hi side at or beyond ResolvedUpTo, since resolves always
// cover a prefix of the id space), answers repopulate the cache, and
// the clustering is applied directly.
func (e *Engine) applyCheckpoint(cp *journal.Checkpoint) error {
	for i, data := range cp.Records {
		if data.ID != i {
			return fmt.Errorf("incremental: checkpoint record %d carries id %d", i, data.ID)
		}
		e.applyRecord(data)
	}
	if cp.ResolvedUpTo < 0 || cp.ResolvedUpTo > len(e.records) {
		return fmt.Errorf("incremental: checkpoint resolvedUpTo %d outside [0,%d]", cp.ResolvedUpTo, len(e.records))
	}
	e.round = cp.Round
	e.resolvedUpTo = cp.ResolvedUpTo
	e.pending = filterPending(e.pending, cp.ResolvedUpTo)
	for _, a := range cp.Answers {
		p := record.MakePair(record.ID(a.Lo), record.ID(a.Hi))
		if err := e.cacheAnswer(p, a.FC, a.Source, false); err != nil {
			return err
		}
	}
	if err := e.applyClusters(cp.Clusters); err != nil {
		return fmt.Errorf("incremental: checkpoint clusters: %w", err)
	}
	if got := (journal.IndexStats{Records: e.index.Len(), Postings: e.index.Postings()}); got != cp.Stats {
		return fmt.Errorf("incremental: rebuilt index %+v does not match checkpoint stats %+v", got, cp.Stats)
	}
	return nil
}

// applyEvent replays one journaled event without re-journaling it.
// Replay is a pure fold: the state after applying a prefix of events is
// exactly the state the live engine had when the last of them was
// appended — which is what makes crash-point recovery byte-identical.
func (e *Engine) applyEvent(ev journal.Event) error {
	switch ev.Type {
	case journal.EventRecordAdded:
		if ev.Record == nil {
			return fmt.Errorf("incremental: event %d: record-added without payload", ev.Seq)
		}
		if ev.Record.ID != len(e.records) {
			return fmt.Errorf("incremental: event %d: record id %d, expected %d", ev.Seq, ev.Record.ID, len(e.records))
		}
		e.applyRecord(*ev.Record)
	case journal.EventAnswer:
		a := ev.Answer
		if a == nil {
			return fmt.Errorf("incremental: event %d: answer without payload", ev.Seq)
		}
		p := record.MakePair(record.ID(a.Lo), record.ID(a.Hi))
		if _, known := e.answers[p]; known {
			return nil // keep-first, same as the live path
		}
		return e.cacheAnswer(p, a.FC, a.Source, false)
	case journal.EventResolve:
		d := ev.Resolve
		if d == nil {
			return fmt.Errorf("incremental: event %d: resolve without payload", ev.Seq)
		}
		if d.ResolvedUpTo != len(e.records) {
			return fmt.Errorf("incremental: event %d: resolve covers %d records, engine has %d", ev.Seq, d.ResolvedUpTo, len(e.records))
		}
		if err := e.applyClusters(d.Clusters); err != nil {
			return fmt.Errorf("incremental: event %d: %w", ev.Seq, err)
		}
		e.round = d.Round
		e.resolvedUpTo = d.ResolvedUpTo
		e.pending = filterPending(e.pending, d.ResolvedUpTo)
	default:
		return fmt.Errorf("incremental: event %d: unknown type %q", ev.Seq, ev.Type)
	}
	return nil
}

// applyClusters replaces the union-find with the journaled partition —
// the effect-application at the heart of recovery. Resolve effects are
// monotone (clusters only ever merge), so installing the latest
// clustering loses nothing from earlier ones.
func (e *Engine) applyClusters(clusters [][]int) error {
	uf := &unionfind.Growable{}
	uf.Grow(len(e.records))
	for _, set := range clusters {
		for _, m := range set {
			if m < 0 || m >= len(e.records) {
				return fmt.Errorf("cluster member %d outside universe [0,%d)", m, len(e.records))
			}
		}
		for _, m := range set[1:] {
			uf.Union(set[0], m)
		}
	}
	e.uf = uf
	return nil
}

// filterPending keeps the candidate pairs not covered by a resolve up
// to resolvedUpTo. New records always take the Hi side of their pairs
// (ids are dense and increasing), so coverage is a pure Hi test.
func filterPending(pending []blocking.ScoredPair, resolvedUpTo int) []blocking.ScoredPair {
	var out []blocking.ScoredPair
	for _, sp := range pending {
		if int(sp.Pair.Hi) >= resolvedUpTo {
			out = append(out, sp)
		}
	}
	return out
}
