// Package incremental hosts the live dedup engine: a clustering that
// stays current while records stream in, instead of being recomputed
// from scratch per batch.
//
// The engine keeps three pieces of state in lockstep. An incremental
// blocking index (internal/blocking.IncrementalIndex) turns each added
// record into candidate pairs against everything before it. A growable
// union-find holds the resolved clustering, merged monotonically across
// resolve passes. And an answer cache remembers every crowd answer ever
// paid for, so no pair is crowdsourced twice in the engine's lifetime —
// across resolve passes and across process restarts.
//
// Resolve runs the paper's machinery (PC-Pivot, Algorithm 3, then
// PC-Refine, Algorithm 5) over a scoped candidate set: the pending pairs
// the index produced since the last pass, plus zero-cost "closure" star
// edges that re-assert each already-resolved cluster touched by a
// pending pair. Transitive inference does the rest for free — pairs
// inside a resolved cluster are primed positive without a question, and
// pairs across resolved clusters are simply not candidates (the paper
// prunes f_c to 0 outside the candidate set), so the crowd only ever
// sees genuinely new pairs. The golden test pins the payoff: on a
// half/half split of the Restaurant dataset, the second wave asks
// strictly fewer questions than a from-scratch batch run, at batch-level
// F1.
//
// When configured with a journal (internal/journal), every state
// transition is logged before it is applied — records, answers, and
// resolve effects (the resulting clustering itself, so recovery replays
// recorded effects rather than re-running crowd algorithms). Open
// rebuilds an engine from the journal to exactly the state the log
// prefix describes, at any crash point.
package incremental
