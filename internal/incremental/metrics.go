package incremental

// Metric names the engine emits through its configured obs.Recorder.
// The crowd-side funnel (crowd/questions_answered etc.) comes from the
// sessions each resolve pass runs; these add the engine's own ledger on
// top, most importantly the inference counters that explain why a
// resolve pass asked as little as it did.
const (
	// MetricRecordsAdded counts records accepted by Add.
	MetricRecordsAdded = "incremental/records_added"
	// MetricAnswersCached counts answers entering the engine cache, from
	// any provenance (resolve-time crowdsourcing, AddAnswer, recovery).
	MetricAnswersCached = "incremental/answers_cached"
	// MetricResolves counts completed resolve passes.
	MetricResolves = "incremental/resolves"
	// MetricInferredPositive counts pairs answered positively by
	// transitive closure over resolved clusters — zero crowd cost.
	MetricInferredPositive = "incremental/inferred_positive"
	// MetricInferredNegative counts previously-crowdsourced pairs whose
	// endpoints sit in different resolved clusters, excluded from the
	// scoped candidate set instead of being re-asked.
	MetricInferredNegative = "incremental/inferred_negative"
	// MetricClosureEdges counts the star edges injected to re-assert
	// resolved clusters inside a scoped resolve.
	MetricClosureEdges = "incremental/closure_edges"
	// MetricResidualPairs counts pending pairs that actually needed the
	// crowd machinery (no cached answer).
	MetricResidualPairs = "incremental/residual_pairs"
	// MetricJournalEvents counts events appended to the journal.
	MetricJournalEvents = "incremental/journal_events"
	// MetricCheckpoints counts compacted snapshots written.
	MetricCheckpoints = "incremental/checkpoints"
	// MetricCheckpointErrors counts failed automatic checkpoints. The
	// triggering mutation is journaled and applied regardless (the WAL
	// still covers the state a snapshot would have), and the checkpoint
	// retries on the next eligible mutation — but the failure must not
	// vanish; Engine.CheckpointErr holds the latest one.
	MetricCheckpointErrors = "incremental/checkpoint_errors"
)
