package incremental

import (
	"testing"
	"time"

	"acd/internal/journal"
)

// TestReplicationSurface: the follower-facing entry points. A volatile
// engine folds shipped events and checkpoints exactly like recovery; a
// journaled engine refuses both (applying unlogged state would fork it
// from its own journal) and exposes its durable watermark.
func TestReplicationSurface(t *testing.T) {
	// Produce a real event + checkpoint stream from a journaled leader.
	fs := journal.NewMemFS()
	leader, err := Open(Config{}, fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Add(
		Record{Fields: map[string]string{"title": "alpha beta"}},
		Record{Fields: map[string]string{"title": "alpha beta gamma"}},
	); err != nil {
		t.Fatal(err)
	}
	if leader.DurableSeq() != 2 {
		t.Fatalf("leader DurableSeq = %d after 2 logged adds", leader.DurableSeq())
	}
	if err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// The journaled engine must refuse the volatile-only surface.
	_, rec, err := journal.OpenOptions(fs.CrashCopy(), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.ApplyLogged(journal.Event{}); err == nil {
		t.Fatal("ApplyLogged accepted on a journaled engine")
	}
	if err := leader.ApplyLoggedCheckpoint(rec.Checkpoint); err == nil {
		t.Fatal("ApplyLoggedCheckpoint accepted on a journaled engine")
	}
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}

	// A volatile standby installs the shipped checkpoint once, refuses a
	// second (non-empty engine), and matches the leader's state.
	standby := New(Config{})
	if standby.DurableSeq() != 0 {
		t.Fatalf("volatile DurableSeq = %d, want 0", standby.DurableSeq())
	}
	if err := standby.ApplyLoggedCheckpoint(rec.Checkpoint); err != nil {
		t.Fatal(err)
	}
	if err := standby.ApplyLoggedCheckpoint(rec.Checkpoint); err == nil {
		t.Fatal("checkpoint installed twice into the same standby")
	}
	if got, want := len(standby.Snapshot().Records), 2; got != want {
		t.Fatalf("standby records = %d, want %d", got, want)
	}

	// Fold one more shipped event and reject garbage loudly.
	if err := standby.ApplyLogged(journal.Event{
		Seq:  3,
		Type: journal.EventRecordAdded,
		Record: &journal.RecordData{
			ID:     2,
			Fields: map[string]string{"title": "delta"},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if got := len(standby.Snapshot().Records); got != 3 {
		t.Fatalf("standby records = %d after folding a shipped add", got)
	}
	if err := standby.ApplyLogged(journal.Event{Seq: 4, Type: "no-such-type"}); err == nil {
		t.Fatal("unknown shipped event type folded silently")
	}
}

// TestRouterSurface: the accessors and fan-out entry points the shard
// router drives — scored-pending snapshots, the answer ledger, stored
// record lookup, buffered answers with the durability barrier, and an
// externally computed resolve applied through ApplyResolve.
func TestRouterSurface(t *testing.T) {
	e, err := Open(Config{Commit: journal.GroupPolicy{Window: time.Millisecond}}, journal.NewMemFS())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ids, err := e.Add(
		Record{Fields: map[string]string{"title": "alpha beta gamma"}},
		Record{Fields: map[string]string{"title": "alpha beta gamma delta"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Record(ids[1]).Fields["title"]; got != "alpha beta gamma delta" {
		t.Fatalf("Record(%d) title = %q", ids[1], got)
	}
	if got, want := len(e.PendingScored()), e.PendingPairs(); got != want {
		t.Fatalf("PendingScored returned %d pairs, PendingPairs says %d", got, want)
	}

	ack, err := e.AddAnswerBuffered(ids[0], ids[1], 1.0, "test")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := <-ack; err != nil {
		t.Fatal(err)
	}
	// Re-answering a known pair is an idempotent instant ack.
	ack2, err := e.AddAnswerBuffered(ids[0], ids[1], 0.0, "test")
	if err != nil {
		t.Fatal(err)
	}
	if err := <-ack2; err != nil {
		t.Fatal(err)
	}
	if got := e.AnsweredPairs(); len(got) != 1 {
		t.Fatalf("AnsweredPairs = %v, want exactly the one cached pair", got)
	}

	if err := e.ApplyResolve(1, [][]int{{ids[0], ids[1]}}); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	if snap.Round != 1 || len(snap.Clusters) != 1 || len(snap.Clusters[0]) != 2 {
		t.Fatalf("after ApplyResolve: round %d clusters %v", snap.Round, snap.Clusters)
	}
	if e.PendingPairs() != 0 {
		t.Fatalf("pending pairs survived a resolve: %d", e.PendingPairs())
	}
}
