package incremental

import (
	"bytes"
	"context"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"acd/internal/crowd"
	"acd/internal/dataset"
	"acd/internal/journal"
	"acd/internal/obs"
	"acd/internal/pruning"
)

// TestCrashPointSweep cuts the WAL at every byte offset and opens an
// engine from each truncated image. Recovery must succeed at every cut
// (the torn tail is the only tolerated corruption) and land in exactly
// the state a pure replay of the surviving complete events produces —
// the byte-identical-recovery guarantee, exhaustively.
func TestCrashPointSweep(t *testing.T) {
	fs := journal.NewMemFS()
	cfg := Config{Seed: 2}
	e, err := Open(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	// A script exercising all three event types across two waves.
	if _, err := e.Add(sixRecords()...); err != nil {
		t.Fatal(err)
	}
	if err := e.AddAnswer(4, 5, 0.0, "client"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Add(Record{Fields: map[string]string{"text": "golden dragon palace chinese broadway blvd"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := snapJSON(t, e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// No CheckpointEvery, one Open: everything lives in one segment.
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	var seg string
	for _, n := range names {
		if strings.HasPrefix(n, "wal-") {
			if seg != "" {
				t.Fatalf("expected one segment, found %v", names)
			}
			seg = n
		}
	}
	if seg == "" {
		t.Fatalf("no segment in %v", names)
	}
	full := fs.Bytes(seg)
	if len(full) == 0 {
		t.Fatal("empty segment")
	}

	// The reference event sequence, straight from the bytes.
	var events []journal.Event
	for _, line := range bytes.Split(full, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var ev journal.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	if len(events) < 10 {
		t.Fatalf("script produced only %d events — sweep too weak", len(events))
	}

	for cut := 0; cut <= len(full); cut++ {
		prefix := full[:cut]
		crashFS := journal.NewMemFS()
		crashFS.Put(seg, prefix)

		re, err := Open(cfg, crashFS)
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		// Complete events in the prefix: one per newline, plus a torn
		// final line that happens to be complete JSON short of its
		// newline — recovery keeps that one too.
		k := bytes.Count(prefix, []byte("\n"))
		if tail := prefix[bytes.LastIndexByte(prefix, '\n')+1:]; len(tail) > 0 && json.Valid(tail) {
			k++
		}
		ref, err := Rebuild(cfg, nil, events[:k])
		if err != nil {
			t.Fatalf("cut %d: rebuild of %d events failed: %v", cut, k, err)
		}
		got, wantRef := snapJSON(t, re), snapJSON(t, ref)
		if got != wantRef {
			t.Fatalf("cut %d (%d events): recovered state differs from pure replay:\n got %s\nwant %s", cut, k, got, wantRef)
		}
		if cut == len(full) && got != want {
			t.Fatalf("full-journal recovery differs from live state:\n got %s\nwant %s", got, want)
		}
		re.Close()
	}
}

// TestOracleInvariantAcrossRestart restarts a journaled engine between
// waves and checks two things: the crowd accounting invariant holds on
// the fresh recorder (replayed answers are free — primed, not re-asked),
// and the restarted engine's state is identical to a twin that never
// restarted.
func TestOracleInvariantAcrossRestart(t *testing.T) {
	ds := dataset.Restaurant(3)
	recs := ds.Records[:80]
	half := 40
	cands := pruning.Prune(recs, pruning.Options{})
	answers := crowd.BuildAnswers(cands.PairList(), ds.TruthFn(), crowd.UniformDifficulty(0), crowd.ThreeWorker(5))

	addRange := func(t *testing.T, e *Engine, lo, hi int) {
		t.Helper()
		for _, r := range recs[lo:hi] {
			if _, err := e.Add(Record{Fields: r.Fields, Entity: strconv.Itoa(r.Entity)}); err != nil {
				t.Fatal(err)
			}
		}
	}

	fs := journal.NewMemFS()
	e1, err := Open(Config{Source: answers, Seed: 7}, fs)
	if err != nil {
		t.Fatal(err)
	}
	addRange(t, e1, 0, half)
	if _, err := e1.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart with a fresh recorder: only wave-2 questions may count.
	rec2 := obs.New()
	e2, err := Open(Config{Source: answers, Seed: 7, Obs: rec2}, fs)
	if err != nil {
		t.Fatal(err)
	}
	addRange(t, e2, half, len(recs))
	st2, err := e2.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	qa := rec2.Counter(crowd.MetricQuestionsAnswered)
	oi := rec2.Counter(crowd.MetricOracleInvocations)
	if qa != oi {
		t.Errorf("questions_answered %d != oracle_invocations %d after restart", qa, oi)
	}
	if int(qa) != st2.QuestionsAsked {
		t.Errorf("recorder counted %d questions, stats say %d", qa, st2.QuestionsAsked)
	}
	got := snapJSON(t, e2)
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}

	// The never-restarted twin (its own recorder, so the shared
	// AnswerSet doesn't leak counts between runs).
	twin := New(Config{Source: answers, Seed: 7, Obs: obs.New()})
	addRange(t, twin, 0, half)
	if _, err := twin.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	addRange(t, twin, half, len(recs))
	if _, err := twin.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	if want := snapJSON(t, twin); got != want {
		t.Fatalf("restarted engine differs from never-restarted twin:\n got %s\nwant %s", got, want)
	}
}
