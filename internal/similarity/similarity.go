package similarity

import (
	"math"
	"strings"

	"acd/internal/record"
)

// Metric scores the similarity of two strings in [0, 1].
type Metric func(a, b string) float64

// Jaccard returns |tokens(a) ∩ tokens(b)| / |tokens(a) ∪ tokens(b)|.
// Two empty token sets are considered identical (score 1).
func Jaccard(a, b string) float64 {
	sa := record.TokenSet(a)
	sb := record.TokenSet(b)
	return JaccardSets(sa, sb)
}

// JaccardSets computes Jaccard similarity over pre-tokenized sets. It is
// the hot path used by the blocking package, which tokenizes once per
// record instead of once per pair.
func JaccardSets(sa, sb map[string]struct{}) float64 {
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	if len(sb) < len(sa) {
		sa, sb = sb, sa
	}
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	return float64(inter) / float64(union)
}

// JaccardSorted computes Jaccard similarity over two sorted, de-duplicated
// token slices via a linear merge. Used with record.SortedTokens.
func JaccardSorted(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// Overlap returns the overlap coefficient |A ∩ B| / min(|A|, |B|) over
// token sets.
func Overlap(a, b string) float64 {
	sa := record.TokenSet(a)
	sb := record.TokenSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	if len(sb) < len(sa) {
		sa, sb = sb, sa
	}
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(sa))
}

// Cosine returns the cosine similarity of the token-frequency vectors of
// a and b.
func Cosine(a, b string) float64 {
	fa := tokenFreq(a)
	fb := tokenFreq(b)
	if len(fa) == 0 && len(fb) == 0 {
		return 1
	}
	if len(fa) == 0 || len(fb) == 0 {
		return 0
	}
	var dot, na, nb float64
	for t, ca := range fa {
		na += float64(ca) * float64(ca)
		if cb, ok := fb[t]; ok {
			dot += float64(ca) * float64(cb)
		}
	}
	for _, cb := range fb {
		nb += float64(cb) * float64(cb)
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

func tokenFreq(s string) map[string]int {
	freq := make(map[string]int)
	for _, t := range record.Tokens(s) {
		freq[t]++
	}
	return freq
}

// Levenshtein returns a similarity derived from edit distance:
// 1 − dist(a, b) / max(len(a), len(b)), computed over normalized forms.
func Levenshtein(a, b string) float64 {
	na, nb := record.Normalize(a), record.Normalize(b)
	if na == "" && nb == "" {
		return 1
	}
	d := EditDistance(na, nb)
	m := len(na)
	if len(nb) > m {
		m = len(nb)
	}
	return 1 - float64(d)/float64(m)
}

// EditDistance returns the Levenshtein edit distance between a and b,
// using a two-row dynamic program (O(min(|a|,|b|)) space).
func EditDistance(a, b string) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// JaroWinkler returns the Jaro-Winkler similarity with the standard
// prefix scale of 0.1 and a maximum common-prefix credit of 4 characters.
func JaroWinkler(a, b string) float64 {
	j := jaro(a, b)
	if j == 0 {
		return 0
	}
	prefix := 0
	for prefix < len(a) && prefix < len(b) && prefix < 4 && a[prefix] == b[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

func jaro(a, b string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	window := len(a)
	if len(b) > window {
		window = len(b)
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, len(a))
	matchB := make([]bool, len(b))
	matches := 0
	for i := 0; i < len(a); i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > len(b) {
			hi = len(b)
		}
		for j := lo; j < hi; j++ {
			if !matchB[j] && a[i] == b[j] {
				matchA[i] = true
				matchB[j] = true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions between matched characters.
	trans := 0
	j := 0
	for i := 0; i < len(a); i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if a[i] != b[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(len(a)) + m/float64(len(b)) + (m-float64(trans)/2)/m) / 3
}

// NGram returns the Jaccard similarity of the character n-gram multiset
// boundaries of the normalized inputs, with n = 3 (trigrams). Strings
// shorter than n are compared as whole tokens.
func NGram(a, b string) float64 {
	ga := trigrams(record.Normalize(a))
	gb := trigrams(record.Normalize(b))
	return JaccardSets(ga, gb)
}

func trigrams(s string) map[string]struct{} {
	set := make(map[string]struct{})
	if s == "" {
		return set
	}
	if len(s) < 3 {
		set[s] = struct{}{}
		return set
	}
	for i := 0; i+3 <= len(s); i++ {
		set[s[i:i+3]] = struct{}{}
	}
	return set
}

// Phonetic returns 1 if every token of a and b maps to the same sequence
// of phonetic keys, and otherwise the Jaccard similarity of the two key
// sets. The key function is a simplified Metaphone in the spirit of [39].
func Phonetic(a, b string) float64 {
	ka := phoneticKeySet(a)
	kb := phoneticKeySet(b)
	return JaccardSets(ka, kb)
}

func phoneticKeySet(s string) map[string]struct{} {
	set := make(map[string]struct{})
	for _, t := range record.Tokens(s) {
		set[PhoneticKey(t)] = struct{}{}
	}
	return set
}

// PhoneticKey computes a simplified Metaphone-style key for a single
// normalized token: it keeps the first letter, drops vowels elsewhere,
// collapses doubled letters, and applies a handful of classic consonant
// foldings (ph→f, ck→k, c→k, q→k, x→ks, z→s, gh→"").
func PhoneticKey(token string) string {
	t := strings.ToLower(token)
	// Digraph foldings first.
	t = strings.ReplaceAll(t, "ph", "f")
	t = strings.ReplaceAll(t, "gh", "")
	t = strings.ReplaceAll(t, "ck", "k")
	var b strings.Builder
	var last byte
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch c {
		case 'c', 'q':
			c = 'k'
		case 'z':
			c = 's'
		case 'x':
			if last != 'k' {
				b.WriteByte('k')
			}
			c = 's'
		}
		isVowel := c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u'
		if isVowel && i > 0 {
			continue
		}
		if c == last {
			continue
		}
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
			b.WriteByte(c)
			last = c
		}
	}
	return b.String()
}

// Combined returns a weighted blend of token Jaccard and character
// Levenshtein similarity. It is a reasonable general-purpose default for
// the f function on mixed text fields.
func Combined(a, b string) float64 {
	return 0.7*Jaccard(a, b) + 0.3*Levenshtein(a, b)
}

// MongeElkan computes the (symmetrized) Monge-Elkan similarity: each
// token of one string is matched to its best Jaro-Winkler counterpart in
// the other, and the per-token bests are averaged. Symmetrization takes
// the mean of both directions so the metric satisfies
// MongeElkan(a,b) == MongeElkan(b,a). It tolerates token-level typos
// that exact-token metrics (Jaccard) punish fully.
func MongeElkan(a, b string) float64 {
	ta := record.Tokens(a)
	tb := record.Tokens(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	return (mongeElkanDirected(ta, tb) + mongeElkanDirected(tb, ta)) / 2
}

func mongeElkanDirected(from, to []string) float64 {
	sum := 0.0
	for _, x := range from {
		best := 0.0
		for _, y := range to {
			if s := JaroWinkler(x, y); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(len(from))
}

// ByName resolves a metric by name ("jaccard", "levenshtein",
// "jaro-winkler", "cosine", "ngram", "overlap", "phonetic", "combined").
// It returns nil for unknown names.
func ByName(name string) Metric {
	switch strings.ToLower(name) {
	case "jaccard":
		return Jaccard
	case "levenshtein":
		return Levenshtein
	case "jaro-winkler", "jarowinkler":
		return JaroWinkler
	case "cosine":
		return Cosine
	case "ngram", "trigram":
		return NGram
	case "overlap":
		return Overlap
	case "phonetic":
		return Phonetic
	case "combined":
		return Combined
	case "monge-elkan", "mongeelkan":
		return MongeElkan
	default:
		return nil
	}
}
