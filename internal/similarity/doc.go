// Package similarity implements the machine-based similarity metrics used
// by the pruning phase of ACD and by the baseline algorithms.
//
// The paper's experiments use token Jaccard with threshold τ = 0.3
// (Section 6.1, "Pruning Phase Setting"); the other metrics here cover the
// families cited in Section 2.1: character-based (Levenshtein [32],
// Jaro-Winkler), token-based (Jaccard, cosine, overlap [12]), n-gram, and
// phonetic (a Metaphone-style key [39]).
//
// All metric functions are symmetric and return scores in [0, 1], with 1
// meaning identical under the metric's notion of equality. ByName maps
// the CLI flag spellings ("jaccard", "levenshtein", ...) to metrics.
package similarity
