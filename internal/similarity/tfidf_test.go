package similarity

import (
	"testing"
	"testing/quick"

	"acd/internal/record"
)

func corpusOf(texts ...string) *Corpus {
	recs := make([]record.Record, len(texts))
	for i, s := range texts {
		recs[i] = record.New(record.ID(i), map[string]string{"t": s})
	}
	return NewCorpus(recs)
}

func TestIDFOrdering(t *testing.T) {
	c := corpusOf(
		"the quick fox",
		"the lazy dog",
		"the hungry kdl40v2500",
	)
	if c.IDF("the") >= c.IDF("fox") {
		t.Errorf("ubiquitous token should weigh less: the=%v fox=%v", c.IDF("the"), c.IDF("fox"))
	}
	if c.IDF("unseen") < c.IDF("fox") {
		t.Errorf("unseen tokens should get maximum weight")
	}
}

func TestWeightedJaccardDownweightsStopwords(t *testing.T) {
	// Corpus where "proceedings of conference" appear everywhere.
	var texts []string
	for i := 0; i < 50; i++ {
		texts = append(texts, "proceedings of conference paper"+string(rune('a'+i%26)))
	}
	texts = append(texts, "proceedings of conference neural networks")
	texts = append(texts, "proceedings of conference genetic algorithms")
	c := corpusOf(texts...)

	// The two specific papers share only boilerplate; unweighted Jaccard
	// sees 3/7 ≈ 0.43, but IDF weighting must push it down hard.
	a := "proceedings of conference neural networks"
	b := "proceedings of conference genetic algorithms"
	plain := Jaccard(a, b)
	weighted := c.WeightedJaccard(a, b)
	if weighted >= plain/2 {
		t.Errorf("weighted %v not well below plain %v", weighted, plain)
	}

	// Conversely, sharing a rare token keeps the weighted score high.
	x := "proceedings of conference neural networks"
	y := "neural networks survey"
	if c.WeightedJaccard(x, y) <= Jaccard(x, y) {
		t.Errorf("rare-token overlap should score higher weighted: %v vs %v",
			c.WeightedJaccard(x, y), Jaccard(x, y))
	}
}

func TestWeightedJaccardEdges(t *testing.T) {
	c := corpusOf("a b", "c d")
	if got := c.WeightedJaccard("", ""); got != 1 {
		t.Errorf("empty-empty = %v", got)
	}
	if got := c.WeightedJaccard("a", ""); got != 0 {
		t.Errorf("empty-one = %v", got)
	}
	if got := c.WeightedJaccard("a b", "a b"); got != 1 {
		t.Errorf("identical = %v", got)
	}
}

func TestWeightedJaccardMetricProperties(t *testing.T) {
	c := corpusOf("alpha beta gamma", "beta gamma delta", "epsilon zeta")
	m := c.AsMetric()
	sym := func(a, b string) bool {
		x, y := m(a, b), m(b, a)
		return close(x, y) && x >= 0 && x <= 1+1e-9
	}
	if err := quick.Check(sym, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("symmetry/bounds: %v", err)
	}
	self := func(a string) bool { return close(m(a, a), 1) }
	if err := quick.Check(self, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("self-similarity: %v", err)
	}
}
